package hprefetch

import (
	"strings"
	"testing"

	"hprefetch/internal/harness"
)

func quickOpt() *Options {
	return &Options{
		WarmInstructions:    800_000,
		MeasureInstructions: 1_200_000,
		Workloads:           []string{"gin"},
	}
}

func TestSimulateBaselineAndHier(t *testing.T) {
	base, err := Simulate("gin", FDIP, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if base.IPC <= 0 || base.SpeedupOverFDIP != 0 {
		t.Errorf("baseline stats wrong: %+v", base)
	}
	hier, err := Simulate("gin", Hierarchical, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if hier.IPC <= 0 {
		t.Error("zero IPC")
	}
	if hier.AvgPrefetchDistance <= 0 || hier.CoverageL1 <= 0 {
		t.Errorf("prefetch metrics missing: %+v", hier)
	}
	if base.StatsDigest == "" || hier.StatsDigest == "" {
		t.Error("runs carry no stats digest")
	}
	if base.StatsDigest == hier.StatsDigest {
		t.Error("different schemes share a digest; fingerprint too coarse")
	}
	// Determinism at the public API: repeating a run reproduces the
	// digest exactly (the underlying simulation is cached, but the
	// digest is recomputed from its counters either way).
	again, err := Simulate("gin", Hierarchical, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if again.StatsDigest != hier.StatsDigest {
		t.Errorf("digest drifted across identical Simulate calls: %q vs %q",
			hier.StatsDigest, again.StatsDigest)
	}
}

func TestSimulateUnknownWorkload(t *testing.T) {
	if _, err := Simulate("nope", FDIP, quickOpt()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunExperimentFig1(t *testing.T) {
	tbl, err := RunExperiment("fig1", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "Figure 1" || len(tbl.Rows) == 0 {
		t.Errorf("bad table: %+v", tbl)
	}
	if !strings.Contains(tbl.String(), "Figure 1") {
		t.Error("rendering broken")
	}
}

func TestExperimentIDsCoverPaper(t *testing.T) {
	ids := ExperimentIDs()
	want := map[string]bool{"fig1": true, "fig9": true, "fig17": true, "table2": true, "table4": true}
	seen := map[string]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	for w := range want {
		if !seen[w] {
			t.Errorf("experiment %s missing", w)
		}
	}
}

func TestAnalyzeWorkload(t *testing.T) {
	r, err := AnalyzeWorkload("gin")
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalFunctions < 10_000 {
		t.Errorf("gin should be a large binary, got %d functions", r.TotalFunctions)
	}
	if r.Entries == 0 || r.EntryFraction <= 0 || r.EntryFraction > 0.2 {
		t.Errorf("entry stats implausible: %+v", r)
	}
	if r.TaggedInstructions < r.Entries {
		t.Error("every entry has at least its return tagged")
	}
	if r.ThresholdBytes != 200<<10 {
		t.Errorf("threshold %d, want the paper's 200KB", r.ThresholdBytes)
	}
}

func TestWorkloadsAndSchemes(t *testing.T) {
	if len(Workloads()) != 11 {
		t.Errorf("paper evaluates 11 workloads, got %d", len(Workloads()))
	}
	if len(Schemes()) != 5 {
		t.Errorf("5 schemes expected, got %d", len(Schemes()))
	}
	if MachineDescription() == "" {
		t.Error("empty machine description")
	}
}

func TestNilOptions(t *testing.T) {
	// nil options must fall back to defaults without panicking; use the
	// cheapest call path (analysis needs no simulation).
	if _, err := AnalyzeWorkload("gorm"); err != nil {
		t.Fatal(err)
	}
	var o *Options
	rc, err := o.runConfig()
	if err != nil {
		t.Fatal(err)
	}
	if rc.MeasureInstr == 0 {
		t.Error("nil options produced empty config")
	}
}

func TestFaultOptionParsing(t *testing.T) {
	o := &Options{Fault: "tag-flip:0.001:7"}
	rc, err := o.runConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Fault.Enabled() || rc.Fault.Rate != 0.001 || rc.Fault.Seed != 7 {
		t.Errorf("fault spec misparsed: %+v", rc.Fault)
	}
	bad := &Options{Fault: "no-such-class"}
	if _, err := bad.runConfig(); err == nil {
		t.Error("invalid fault spec accepted")
	}
	if _, err := Simulate("gin", FDIP, bad); err == nil {
		t.Error("Simulate accepted an invalid fault spec")
	}
}

func TestSimulateUnderFault(t *testing.T) {
	o := quickOpt()
	o.Fault = "bundle-corrupt"
	st, err := Simulate("gin", Hierarchical, o)
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC <= 0 {
		t.Error("zero IPC under injection")
	}
	if st.TagDrops == 0 {
		t.Error("bundle corruption dropped no tags — injection inert?")
	}
}

// TestParallelSweepByteIdentical drives the public -parallel path:
// pre-warmed concurrent sweeps must render exactly the tables a serial
// sweep renders.
func TestParallelSweepByteIdentical(t *testing.T) {
	opt := &Options{
		WarmInstructions:    60_000,
		MeasureInstructions: 120_000,
		Workloads:           []string{"gin", "tidb-tpcc"},
	}
	ids := []string{"fig9", "table2"}
	render := func(o *Options) string {
		var b strings.Builder
		for _, id := range ids {
			tbl, err := RunExperiment(id, o)
			if err != nil {
				t.Fatal(err)
			}
			b.WriteString(tbl.String())
		}
		return b.String()
	}

	harness.DropCache()
	serial := render(opt)

	par := *opt
	par.Parallel = 4
	harness.DropCache()
	parallel := render(&par)

	if serial != parallel {
		t.Fatalf("parallel sweep output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}
