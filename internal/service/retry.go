package service

import (
	"time"

	"hprefetch/internal/xrand"
)

// RetryPolicy shapes the server's response to transient job failures
// (injected faults, worker panics, deadlines that expired under load):
// exponential backoff with decorrelated jitter, bounded by a per-job
// retry budget. Permanent failures — bad workload, unknown scheme —
// never retry. Jitter draws from a seeded xrand stream so tests can
// reproduce the exact retry schedule.
type RetryPolicy struct {
	// MaxRetries is the default extra attempts per job beyond the first
	// (0 picks the documented default of 2; negative disables retries).
	// Requests override it per job via "max_retries".
	MaxRetries int
	// BaseDelay is the first backoff (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps every backoff (default 5s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	switch {
	case p.MaxRetries == 0:
		p.MaxRetries = 2
	case p.MaxRetries < 0:
		p.MaxRetries = 0
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// Next computes the backoff before the next attempt given the previous
// one (zero for the first retry): decorrelated jitter — a uniform draw
// from [base, 3·prev], capped — which spreads retry storms without the
// synchronisation full exponential ladders suffer. Exported because the
// fleet coordinator re-dispatches failed work under the same policy.
func (p RetryPolicy) Next(rng *xrand.RNG, prev time.Duration) time.Duration {
	lo := int64(p.BaseDelay)
	hi := 3 * int64(prev)
	if hi <= lo {
		hi = lo + 1
	}
	d := time.Duration(lo + int64(rng.Uint64()%uint64(hi-lo)))
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}
