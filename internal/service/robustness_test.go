package service

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hprefetch/internal/fault"
	"hprefetch/internal/xrand"
)

// fastRetry keeps test retry schedules in the milliseconds.
var fastRetry = RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

// TestRetryTransientExhaustsBudget drives every attempt into an injected
// transient failure: the job must retry exactly maxRetries times and
// then fail terminally with the attempt count visible in its view.
func TestRetryTransientExhaustsBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4, Retry: fastRetry,
		Chaos: fault.Config{Class: fault.ClassJobTransient, Rate: 1, Seed: 1},
	})
	v := submit(t, ts, tinyRun("FDIP"))
	done := await(t, ts, v.ID, 30*time.Second)
	if done.State != JobFailed {
		t.Fatalf("job finished %s (%s)", done.State, done.Error)
	}
	if done.Attempts != 3 || done.MaxRetries != 2 {
		t.Fatalf("attempts=%d max_retries=%d, want 3/2", done.Attempts, done.MaxRetries)
	}
	if got := s.Metrics().Retried.Load(); got != 2 {
		t.Fatalf("retried counter %d, want 2", got)
	}
	if got := s.Metrics().Failed.Load(); got != 1 {
		t.Fatalf("failed counter %d, want 1 (exactly-once terminal accounting)", got)
	}
}

// TestRetryBudgetPerRequest checks the max_retries request knob:
// negative disables retries entirely.
func TestRetryBudgetPerRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4, Retry: fastRetry,
		Chaos: fault.Config{Class: fault.ClassJobTransient, Rate: 1, Seed: 1},
	})
	req := tinyRun("FDIP")
	req.MaxRetries = -1
	done := await(t, ts, submit(t, ts, req).ID, 30*time.Second)
	if done.State != JobFailed || done.Attempts != 1 {
		t.Fatalf("no-retry job: state=%s attempts=%d, want failed/1", done.State, done.Attempts)
	}
	if got := s.Metrics().Retried.Load(); got != 0 {
		t.Fatalf("retried counter %d, want 0", got)
	}
}

// TestWorkerKillRecovery panics every worker attempt via chaos: the pool
// must survive (panic recovered, counted, retried) and still execute a
// clean job afterwards.
func TestWorkerKillRecovery(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 2, QueueDepth: 8, Retry: fastRetry,
		Chaos: fault.Config{Class: fault.ClassWorkerKill, Rate: 1, Seed: 1},
	})
	done := await(t, ts, submit(t, ts, tinyRun("FDIP")).ID, 30*time.Second)
	if done.State != JobFailed || done.Attempts != 3 {
		t.Fatalf("killed job: state=%s attempts=%d (%s)", done.State, done.Attempts, done.Error)
	}
	if got := s.Metrics().WorkerPanics.Load(); got != 3 {
		t.Fatalf("worker panics %d, want 3", got)
	}
	// Disarm chaos (test seam: drop the injector) and prove the same
	// workers still run jobs — no goroutine died with the panics.
	s.chaosMu.Lock()
	s.chaos = nil
	s.chaosMu.Unlock()
	if done := await(t, ts, submit(t, ts, tinyRun("FDIP")).ID, 2*time.Minute); done.State != JobDone {
		t.Fatalf("post-panic job finished %s (%s)", done.State, done.Error)
	}
}

// TestBreakerUnit drives the breaker state machine directly with a fake
// clock.
func TestBreakerUnit(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(8, 4, 0.5, 10*time.Second)
	b.now = func() time.Time { return now }

	if ok, _ := b.Allow(); !ok {
		t.Fatal("fresh breaker not closed")
	}
	// 3 failures of 4 samples ≥ 50% → open.
	b.Record(true)
	b.Record(false)
	b.Record(true)
	if b.Status().State != "closed" {
		t.Fatalf("breaker opened below minSamples: %+v", b.Status())
	}
	b.Record(true)
	if st := b.Status(); st.State != "open" || st.Opens != 1 {
		t.Fatalf("breaker state %+v, want open/1", st)
	}
	if ok, wait := b.Allow(); ok || wait != 10*time.Second {
		t.Fatalf("open breaker admitted (wait %v)", wait)
	}
	// Stragglers during open are ignored.
	b.Record(true)
	// Cooldown elapses → half-open probe; failure re-opens.
	now = now.Add(11 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("breaker not half-open after cooldown")
	}
	b.Record(true)
	if st := b.Status(); st.State != "open" || st.Opens != 2 {
		t.Fatalf("half-open failure: %+v, want open/2", st)
	}
	// Second probe succeeds → closed, window reset.
	now = now.Add(11 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("breaker not half-open after second cooldown")
	}
	b.Record(false)
	if st := b.Status(); st.State != "closed" {
		t.Fatalf("half-open success: %+v, want closed", st)
	}
	// The window restarted: three fresh failures are below minSamples.
	b.Record(true)
	b.Record(true)
	b.Record(true)
	if b.Status().State != "closed" {
		t.Fatal("window not reset after close")
	}
}

// TestBreakerHalfOpenSingleProbe hammers the half-open probe slot from
// concurrent submissions: exactly one Allow wins the probe, everyone
// else keeps being shed until the probe resolves, a failed probe
// re-opens the breaker for a FULL new cooldown, and a probe that never
// reports (cancelled mid-flight) stops wedging the breaker after one
// cooldown.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	b := NewBreaker(8, 4, 0.5, 10*time.Second)
	b.now = clock
	trip := func() {
		for i := 0; i < 4; i++ {
			b.Record(true)
		}
		if st := b.Status(); st.State != "open" {
			t.Fatalf("breaker %s after 4/4 failures, want open", st.State)
		}
	}
	trip()
	advance(10 * time.Second) // cooldown elapsed: the next Allow is the probe

	const goroutines = 32
	var admitted atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if ok, _ := b.Allow(); ok {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent submissions, want exactly 1 probe", got)
	}
	// While the probe is outstanding every further Allow is shed.
	if ok, wait := b.Allow(); ok || wait <= 0 {
		t.Fatalf("second probe admitted while first outstanding (ok=%v wait=%v)", ok, wait)
	}
	// The probe fails: re-open for a FULL cooldown, not the remainder of
	// the old one.
	advance(3 * time.Second)
	b.Record(true)
	if st := b.Status(); st.State != "open" || st.Opens != 2 {
		t.Fatalf("failed probe left breaker %+v, want open/2", st)
	}
	if ok, wait := b.Allow(); ok || wait != 10*time.Second {
		t.Fatalf("re-opened breaker: ok=%v wait=%v, want a full 10s cooldown", ok, wait)
	}
	advance(9 * time.Second)
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker admitted before the new cooldown elapsed")
	}
	advance(2 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("breaker did not re-probe after the new cooldown")
	}
	b.Record(false)
	if st := b.Status(); st.State != "closed" {
		t.Fatalf("successful probe left breaker %s, want closed", st.State)
	}
	// A probe that never reports must not wedge the breaker shut: after a
	// whole further cooldown a new probe is admitted.
	trip()
	advance(10 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("probe not admitted after cooldown")
	}
	advance(10 * time.Second) // the probe was cancelled and never recorded
	if ok, _ := b.Allow(); !ok {
		t.Fatal("stale probe wedged the breaker shut")
	}
}

// TestBreakerSheds503 opens the breaker through real failing jobs and
// asserts submissions shed with 503 + Retry-After.
func TestBreakerSheds503(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, Retry: RetryPolicy{MaxRetries: -1},
		BreakerWindow: 8, BreakerMinSamples: 2, BreakerThreshold: 0.9,
		BreakerCooldown: time.Hour, // no probe during the test
		Chaos:           fault.Config{Class: fault.ClassJobTransient, Rate: 1, Seed: 1},
	})
	for i := 0; i < 2; i++ {
		if done := await(t, ts, submit(t, ts, tinyRun("FDIP")).ID, 30*time.Second); done.State != JobFailed {
			t.Fatalf("chaos job %d finished %s", i, done.State)
		}
	}
	resp := postJSON(t, ts.URL+"/v1/runs", tinyRun("FDIP"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker returned %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("503 Retry-After %q", resp.Header.Get("Retry-After"))
	}
	if got := s.Metrics().BreakerRejected.Load(); got != 1 {
		t.Fatalf("breaker-rejected counter %d", got)
	}
	if s.breaker.Status().Opens != 1 {
		t.Fatalf("breaker opens %d, want 1", s.breaker.Status().Opens)
	}
}

// TestRetryAfterHeader seeds latency history, fills the queue, and
// checks the 429's Retry-After is derived from the observed p90 rather
// than the old constant "1".
func TestRetryAfterHeader(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Observed history: p90 lands in the ≤2500ms bucket.
	for i := 0; i < 20; i++ {
		s.metrics.ObserveLatency("FDIP", 2_000)
	}
	running := submit(t, ts, hugeRun(600_000))
	awaitState(t, ts, running.ID, JobRunning, 30*time.Second)
	submit(t, ts, hugeRun(600_000)) // fills the 1-deep queue

	resp := postJSON(t, ts.URL+"/v1/runs", hugeRun(600_000))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue returned %d", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", resp.Header.Get("Retry-After"))
	}
	// p90 = 2500ms bucket bound, queue 1 + worker 1 → 2 waves → base 5s,
	// plus anti-lockstep jitter of at most half the base again.
	if ra < 5 || ra > 7 {
		t.Fatalf("Retry-After %d, want 5..7 (p90 2500ms × 2 waves + jitter)", ra)
	}
	if ra > int(s.cfg.MaxRetryAfter/time.Second) {
		t.Fatalf("Retry-After %d exceeds cap", ra)
	}
}

// TestRetryDelayDistribution pins the decorrelated-jitter maths: delays
// stay within [base, cap] and are reproducible for a fixed seed.
func TestRetryDelayDistribution(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}.withDefaults()
	seq := func(seed uint64) []time.Duration {
		rng := xrand.New(seed)
		var prev time.Duration
		var out []time.Duration
		for i := 0; i < 64; i++ {
			prev = p.Next(rng, prev)
			out = append(out, prev)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("retry schedule is not reproducible for a fixed seed")
		}
		if a[i] < p.BaseDelay || a[i] > p.MaxDelay {
			t.Fatalf("delay %v outside [%v, %v]", a[i], p.BaseDelay, p.MaxDelay)
		}
	}
	grew := false
	for i := 1; i < len(a); i++ {
		if a[i] > a[i-1] {
			grew = true
			break
		}
	}
	if !grew {
		t.Fatal("backoff never grew beyond the base delay")
	}
}

// TestQueuedCancelRace hammers the submit→immediate-cancel window: the
// cancel can land while the worker dequeues the job, and whoever wins,
// the job must reach exactly one terminal state and the terminal metric
// counters must add up to the accepted total.
func TestQueuedCancelRace(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	// Warm the cache so raced runs return in microseconds.
	if done := await(t, ts, submit(t, ts, tinyRun("FDIP")).ID, 2*time.Minute); done.State != JobDone {
		t.Fatalf("warmup finished %s", done.State)
	}
	const n = 25
	for i := 0; i < n; i++ {
		v := submit(t, ts, tinyRun("FDIP"))
		cresp := postJSON(t, ts.URL+"/v1/runs/"+v.ID+"/cancel", nil)
		if cresp.StatusCode != http.StatusAccepted && cresp.StatusCode != http.StatusConflict {
			t.Fatalf("cancel %s returned %d", v.ID, cresp.StatusCode)
		}
		cresp.Body.Close()
		done := await(t, ts, v.ID, 30*time.Second)
		if !done.State.Terminal() {
			t.Fatalf("raced job %s left %s", v.ID, done.State)
		}
	}
	// Give in-flight settle paths a moment, then audit the books.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := s.Metrics()
		total := m.Completed.Load() + m.Failed.Load() + m.Canceled.Load()
		if total == m.Accepted.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("terminal counters %d != accepted %d (done=%d failed=%d canceled=%d): a job was double-counted or lost",
				total, m.Accepted.Load(), m.Completed.Load(), m.Failed.Load(), m.Canceled.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRetryAfterSecondsFormula pins the header derivation across queue
// depths without HTTP.
func TestRetryAfterSecondsFormula(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("no history: Retry-After %d, want floor 1", got)
	}
	for i := 0; i < 10; i++ {
		s.metrics.ObserveLatency("x", 40_000) // ≤60000 bucket
	}
	// Empty queue: 1 wave of p90=60s, capped at MaxRetryAfter (60s).
	if got, want := s.retryAfterSeconds(), 60; got != want {
		t.Fatalf("Retry-After %d, want %d (cap)", got, want)
	}
	if got := fmt.Sprintf("%d", ceilSeconds(1500*time.Millisecond)); got != "2" {
		t.Fatalf("ceilSeconds(1.5s) = %s", got)
	}
	if got := ceilSeconds(0); got != 1 {
		t.Fatalf("ceilSeconds(0) = %d", got)
	}
}
