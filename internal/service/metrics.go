package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hprefetch/internal/harness"
)

// latencyBucketsMS are the histogram upper bounds (milliseconds,
// exponential-ish). The final implicit bucket is +Inf.
var latencyBucketsMS = []float64{
	1, 2, 5, 10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 30_000, 60_000, 300_000,
}

// histogram is a fixed-bucket latency histogram. Guarded by the owning
// Metrics' mutex.
type histogram struct {
	counts []uint64 // len(latencyBucketsMS)+1; last slot is +Inf
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBucketsMS)+1)}
}

func (h *histogram) observe(ms float64) {
	i := sort.SearchFloat64s(latencyBucketsMS, ms)
	h.counts[i]++
	h.sum += ms
	h.total++
}

// quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of
// the bucket where the cumulative count crosses q. The +Inf bucket
// reports the largest finite bound — a floor, but an honest one.
func (h *histogram) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(latencyBucketsMS) {
				return latencyBucketsMS[i]
			}
			return latencyBucketsMS[len(latencyBucketsMS)-1]
		}
	}
	return latencyBucketsMS[len(latencyBucketsMS)-1]
}

// Metrics holds the server's self-observation counters. Scalar counters
// are atomics (hot path: one Add per event); histograms share one mutex
// (touched once per completed job, far off the simulation's critical
// path).
type Metrics struct {
	Accepted  atomic.Uint64 // jobs admitted to the queue
	Rejected  atomic.Uint64 // submissions bounced with 429 (queue full)
	Completed atomic.Uint64 // jobs finished successfully
	Failed    atomic.Uint64 // jobs finished with an error
	Canceled  atomic.Uint64 // jobs cancelled before or during execution

	mu sync.Mutex
	// latency histograms keyed by label: the scheme for run jobs,
	// "experiment:<id>" for experiment jobs.
	hist map[string]*histogram
}

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{hist: map[string]*histogram{}}
}

// ObserveLatency records a completed job's execution latency.
func (m *Metrics) ObserveLatency(label string, ms float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hist[label]
	if !ok {
		h = newHistogram()
		m.hist[label] = h
	}
	h.observe(ms)
}

// LatencySummary is one label's latency digest.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Snapshot is the JSON form of /metrics.
type Snapshot struct {
	Jobs struct {
		Accepted  uint64 `json:"accepted"`
		Rejected  uint64 `json:"rejected"`
		Completed uint64 `json:"completed"`
		Failed    uint64 `json:"failed"`
		Canceled  uint64 `json:"canceled"`
	} `json:"jobs"`
	QueueDepth int `json:"queue_depth"`
	Workers    int `json:"workers"`
	Cache      struct {
		Hits        uint64 `json:"hits"`
		SharedWaits uint64 `json:"shared_waits"`
		Misses      uint64 `json:"misses"`
		Evictions   uint64 `json:"evictions"`
		Entries     int    `json:"entries"`
		InFlight    int    `json:"in_flight"`
	} `json:"cache"`
	Latency map[string]LatencySummary `json:"latency"`
}

// Snapshot captures every counter plus the shared Runner's cache stats.
func (m *Metrics) Snapshot(queueDepth, workers int, cache harness.RunnerStats) Snapshot {
	var s Snapshot
	s.Jobs.Accepted = m.Accepted.Load()
	s.Jobs.Rejected = m.Rejected.Load()
	s.Jobs.Completed = m.Completed.Load()
	s.Jobs.Failed = m.Failed.Load()
	s.Jobs.Canceled = m.Canceled.Load()
	s.QueueDepth = queueDepth
	s.Workers = workers
	s.Cache.Hits = cache.Hits
	s.Cache.SharedWaits = cache.SharedWaits
	s.Cache.Misses = cache.Misses
	s.Cache.Evictions = cache.Evictions
	s.Cache.Entries = cache.Entries
	s.Cache.InFlight = cache.InFlight
	s.Latency = map[string]LatencySummary{}
	m.mu.Lock()
	defer m.mu.Unlock()
	for label, h := range m.hist {
		mean := 0.0
		if h.total > 0 {
			mean = h.sum / float64(h.total)
		}
		s.Latency[label] = LatencySummary{
			Count:  h.total,
			MeanMS: mean,
			P50MS:  h.quantile(0.50),
			P99MS:  h.quantile(0.99),
		}
	}
	return s
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format (stdlib only — no client library).
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("hpserved_jobs_accepted_total", "Jobs admitted to the queue.", s.Jobs.Accepted)
	counter("hpserved_jobs_rejected_total", "Submissions rejected with 429 (queue full).", s.Jobs.Rejected)
	counter("hpserved_jobs_completed_total", "Jobs finished successfully.", s.Jobs.Completed)
	counter("hpserved_jobs_failed_total", "Jobs finished with an error.", s.Jobs.Failed)
	counter("hpserved_jobs_canceled_total", "Jobs cancelled before or during execution.", s.Jobs.Canceled)
	gauge("hpserved_queue_depth", "Jobs currently waiting in the queue.", s.QueueDepth)
	gauge("hpserved_workers", "Size of the worker pool.", s.Workers)
	counter("hpserved_cache_hits_total", "Simulations served from the result cache.", s.Cache.Hits)
	counter("hpserved_cache_shared_waits_total", "Callers that shared an in-flight identical simulation.", s.Cache.SharedWaits)
	counter("hpserved_cache_misses_total", "Simulations actually performed.", s.Cache.Misses)
	counter("hpserved_cache_evictions_total", "Results displaced by the LRU bound.", s.Cache.Evictions)
	gauge("hpserved_cache_entries", "Results currently cached.", s.Cache.Entries)
	gauge("hpserved_cache_in_flight", "Simulations currently executing.", s.Cache.InFlight)

	labels := make([]string, 0, len(s.Latency))
	for l := range s.Latency {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	if len(labels) > 0 {
		b.WriteString("# HELP hpserved_job_latency_ms Job execution latency quantiles (bucket-estimated).\n")
		b.WriteString("# TYPE hpserved_job_latency_ms summary\n")
		for _, l := range labels {
			d := s.Latency[l]
			fmt.Fprintf(&b, "hpserved_job_latency_ms{label=%q,quantile=\"0.5\"} %g\n", l, d.P50MS)
			fmt.Fprintf(&b, "hpserved_job_latency_ms{label=%q,quantile=\"0.99\"} %g\n", l, d.P99MS)
			fmt.Fprintf(&b, "hpserved_job_latency_ms_sum{label=%q} %g\n", l, d.MeanMS*float64(d.Count))
			fmt.Fprintf(&b, "hpserved_job_latency_ms_count{label=%q} %d\n", l, d.Count)
		}
	}
	return b.String()
}
