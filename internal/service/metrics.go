package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hprefetch/internal/harness"
)

// latencyBucketsMS are the histogram upper bounds (milliseconds,
// exponential-ish). The final implicit bucket is +Inf.
var latencyBucketsMS = []float64{
	1, 2, 5, 10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 30_000, 60_000, 300_000,
}

// histogram is a fixed-bucket latency histogram. Guarded by the owning
// Metrics' mutex.
type histogram struct {
	counts []uint64 // len(latencyBucketsMS)+1; last slot is +Inf
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBucketsMS)+1)}
}

func (h *histogram) observe(ms float64) {
	i := sort.SearchFloat64s(latencyBucketsMS, ms)
	h.counts[i]++
	h.sum += ms
	h.total++
}

// quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of
// the bucket where the cumulative count crosses q. The +Inf bucket
// reports the largest finite bound — a floor, but an honest one.
func (h *histogram) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(latencyBucketsMS) {
				return latencyBucketsMS[i]
			}
			return latencyBucketsMS[len(latencyBucketsMS)-1]
		}
	}
	return latencyBucketsMS[len(latencyBucketsMS)-1]
}

// Metrics holds the server's self-observation counters. Scalar counters
// are atomics (hot path: one Add per event); histograms share one mutex
// (touched once per completed job, far off the simulation's critical
// path).
type Metrics struct {
	Accepted  atomic.Uint64 // jobs admitted to the queue
	Rejected  atomic.Uint64 // submissions bounced with 429 (queue full)
	Completed atomic.Uint64 // jobs finished successfully
	Failed    atomic.Uint64 // jobs finished with an error
	Canceled  atomic.Uint64 // jobs cancelled before or during execution

	Retried         atomic.Uint64 // transient failures sent back to the queue
	Replayed        atomic.Uint64 // jobs re-admitted from the journal at startup
	WorkerPanics    atomic.Uint64 // panics recovered in the worker pool
	JournalErrors   atomic.Uint64 // best-effort journal appends that failed
	BreakerRejected atomic.Uint64 // submissions bounced with 503 (breaker open)

	// Feedback-governor aggregates across every governed run served:
	// decision intervals elapsed and state transitions in each direction.
	GovIntervals atomic.Uint64
	GovStepUps   atomic.Uint64
	GovStepDowns atomic.Uint64

	mu sync.Mutex
	// latency histograms keyed by label: the scheme for run jobs,
	// "experiment:<id>" for experiment jobs.
	hist map[string]*histogram
}

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{hist: map[string]*histogram{}}
}

// ObserveLatency records a completed job's execution latency.
func (m *Metrics) ObserveLatency(label string, ms float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hist[label]
	if !ok {
		h = newHistogram()
		m.hist[label] = h
	}
	h.observe(ms)
}

// QuantileAllMS estimates the q-quantile of job execution latency across
// every label by merging the per-label histograms bucket-wise. The
// admission layer uses the p90 to derive an honest Retry-After.
func (m *Metrics) QuantileAllMS(q float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	merged := newHistogram()
	for _, h := range m.hist {
		for i, c := range h.counts {
			merged.counts[i] += c
		}
		merged.sum += h.sum
		merged.total += h.total
	}
	if merged.total == 0 {
		return 0
	}
	return merged.quantile(q)
}

// LatencySummary is one label's latency digest.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Snapshot is the JSON form of /metrics.
type Snapshot struct {
	Jobs struct {
		Accepted        uint64 `json:"accepted"`
		Rejected        uint64 `json:"rejected"`
		Completed       uint64 `json:"completed"`
		Failed          uint64 `json:"failed"`
		Canceled        uint64 `json:"canceled"`
		Retried         uint64 `json:"retried"`
		Replayed        uint64 `json:"replayed"`
		WorkerPanics    uint64 `json:"worker_panics"`
		BreakerRejected uint64 `json:"breaker_rejected"`
	} `json:"jobs"`
	QueueDepth    int           `json:"queue_depth"`
	Workers       int           `json:"workers"`
	Breaker       BreakerStatus `json:"breaker"`
	JournalErrors uint64        `json:"journal_errors"`
	// Governor aggregates feedback-throttling activity over all governed
	// runs this server executed.
	Governor struct {
		Intervals uint64 `json:"intervals"`
		StepUps   uint64 `json:"step_ups"`
		StepDowns uint64 `json:"step_downs"`
	} `json:"governor"`
	// LatencyP90MS is the cross-label p90 execution latency that drives
	// Retry-After on load shedding.
	LatencyP90MS float64 `json:"latency_p90_ms"`
	Cache        struct {
		Hits        uint64 `json:"hits"`
		SharedWaits uint64 `json:"shared_waits"`
		Misses      uint64 `json:"misses"`
		Evictions   uint64 `json:"evictions"`
		Entries     int    `json:"entries"`
		InFlight    int    `json:"in_flight"`
	} `json:"cache"`
	Latency map[string]LatencySummary `json:"latency"`
}

// Snapshot captures every counter plus the shared Runner's cache stats
// and the admission breaker's state.
func (m *Metrics) Snapshot(queueDepth, workers int, cache harness.RunnerStats, breaker BreakerStatus) Snapshot {
	var s Snapshot
	s.Jobs.Accepted = m.Accepted.Load()
	s.Jobs.Rejected = m.Rejected.Load()
	s.Jobs.Completed = m.Completed.Load()
	s.Jobs.Failed = m.Failed.Load()
	s.Jobs.Canceled = m.Canceled.Load()
	s.Jobs.Retried = m.Retried.Load()
	s.Jobs.Replayed = m.Replayed.Load()
	s.Jobs.WorkerPanics = m.WorkerPanics.Load()
	s.Jobs.BreakerRejected = m.BreakerRejected.Load()
	s.JournalErrors = m.JournalErrors.Load()
	s.Governor.Intervals = m.GovIntervals.Load()
	s.Governor.StepUps = m.GovStepUps.Load()
	s.Governor.StepDowns = m.GovStepDowns.Load()
	s.QueueDepth = queueDepth
	s.Workers = workers
	s.Breaker = breaker
	s.LatencyP90MS = m.QuantileAllMS(0.90)
	s.Cache.Hits = cache.Hits
	s.Cache.SharedWaits = cache.SharedWaits
	s.Cache.Misses = cache.Misses
	s.Cache.Evictions = cache.Evictions
	s.Cache.Entries = cache.Entries
	s.Cache.InFlight = cache.InFlight
	s.Latency = map[string]LatencySummary{}
	m.mu.Lock()
	defer m.mu.Unlock()
	for label, h := range m.hist {
		mean := 0.0
		if h.total > 0 {
			mean = h.sum / float64(h.total)
		}
		s.Latency[label] = LatencySummary{
			Count:  h.total,
			MeanMS: mean,
			P50MS:  h.quantile(0.50),
			P99MS:  h.quantile(0.99),
		}
	}
	return s
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format (stdlib only — no client library).
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("hpserved_jobs_accepted_total", "Jobs admitted to the queue.", s.Jobs.Accepted)
	counter("hpserved_jobs_rejected_total", "Submissions rejected with 429 (queue full).", s.Jobs.Rejected)
	counter("hpserved_jobs_completed_total", "Jobs finished successfully.", s.Jobs.Completed)
	counter("hpserved_jobs_failed_total", "Jobs finished with an error.", s.Jobs.Failed)
	counter("hpserved_jobs_canceled_total", "Jobs cancelled before or during execution.", s.Jobs.Canceled)
	counter("hpserved_jobs_retried_total", "Transient failures sent back to the queue with backoff.", s.Jobs.Retried)
	counter("hpserved_jobs_replayed_total", "Jobs re-admitted from the journal at startup.", s.Jobs.Replayed)
	counter("hpserved_worker_panics_total", "Panics recovered in the worker pool.", s.Jobs.WorkerPanics)
	counter("hpserved_jobs_breaker_rejected_total", "Submissions rejected with 503 (circuit breaker open).", s.Jobs.BreakerRejected)
	counter("hpserved_journal_errors_total", "Best-effort journal appends that failed.", s.JournalErrors)
	counter("hpserved_governor_intervals_total", "Feedback-governor decision intervals across governed runs.", s.Governor.Intervals)
	counter("hpserved_governor_step_ups_total", "Feedback-governor transitions toward aggressive.", s.Governor.StepUps)
	counter("hpserved_governor_step_downs_total", "Feedback-governor transitions toward conservative.", s.Governor.StepDowns)
	counter("hpserved_breaker_opens_total", "Circuit breaker closed-to-open transitions.", s.Breaker.Opens)
	open := 0
	if s.Breaker.State == "open" {
		open = 1
	}
	gauge("hpserved_breaker_open", "Whether the admission circuit breaker is open.", open)
	gauge("hpserved_queue_depth", "Jobs currently waiting in the queue.", s.QueueDepth)
	gauge("hpserved_workers", "Size of the worker pool.", s.Workers)
	counter("hpserved_cache_hits_total", "Simulations served from the result cache.", s.Cache.Hits)
	counter("hpserved_cache_shared_waits_total", "Callers that shared an in-flight identical simulation.", s.Cache.SharedWaits)
	counter("hpserved_cache_misses_total", "Simulations actually performed.", s.Cache.Misses)
	counter("hpserved_cache_evictions_total", "Results displaced by the LRU bound.", s.Cache.Evictions)
	gauge("hpserved_cache_entries", "Results currently cached.", s.Cache.Entries)
	gauge("hpserved_cache_in_flight", "Simulations currently executing.", s.Cache.InFlight)
	fmt.Fprintf(&b, "# HELP hpserved_job_latency_p90_ms Cross-label p90 job latency (drives Retry-After).\n"+
		"# TYPE hpserved_job_latency_p90_ms gauge\nhpserved_job_latency_p90_ms %g\n", s.LatencyP90MS)

	labels := make([]string, 0, len(s.Latency))
	for l := range s.Latency {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	if len(labels) > 0 {
		b.WriteString("# HELP hpserved_job_latency_ms Job execution latency quantiles (bucket-estimated).\n")
		b.WriteString("# TYPE hpserved_job_latency_ms summary\n")
		for _, l := range labels {
			d := s.Latency[l]
			fmt.Fprintf(&b, "hpserved_job_latency_ms{label=%q,quantile=\"0.5\"} %g\n", l, d.P50MS)
			fmt.Fprintf(&b, "hpserved_job_latency_ms{label=%q,quantile=\"0.99\"} %g\n", l, d.P99MS)
			fmt.Fprintf(&b, "hpserved_job_latency_ms_sum{label=%q} %g\n", l, d.MeanMS*float64(d.Count))
			fmt.Fprintf(&b, "hpserved_job_latency_ms_count{label=%q} %d\n", l, d.Count)
		}
	}
	return b.String()
}
