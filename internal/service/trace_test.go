package service

import (
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"hprefetch/internal/harness"
)

// TestTracePathRun submits a run replaying a server-side trace and
// checks the service-level guarantee: the replayed job's digest equals
// the live job's. Directory submissions (TraceDir semantics) and the
// rejection paths ride along.
func TestTracePathRun(t *testing.T) {
	rc := harness.DefaultRunConfig()
	rc.WarmInstr = 50_000
	rc.MeasureInstr = 100_000
	dir := t.TempDir()
	path := filepath.Join(dir, "gin"+harness.TraceExt)
	if _, err := harness.RecordTrace("gin", path, rc); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	live := await(t, ts, submit(t, ts, tinyRun("Hierarchical")).ID, 2*time.Minute)
	if live.State != JobDone {
		t.Fatalf("live job finished %s (%s)", live.State, live.Error)
	}

	replayReq := tinyRun("Hierarchical")
	replayReq.TracePath = path
	replay := await(t, ts, submit(t, ts, replayReq).ID, 2*time.Minute)
	if replay.State != JobDone {
		t.Fatalf("replay job finished %s (%s)", replay.State, replay.Error)
	}
	if replay.Result.StatsDigest != live.Result.StatsDigest {
		t.Fatalf("replayed digest %s != live digest %s",
			replay.Result.StatsDigest, live.Result.StatsDigest)
	}

	// A directory resolves per workload (TraceDir semantics).
	dirReq := tinyRun("Hierarchical")
	dirReq.TracePath = dir
	fromDir := await(t, ts, submit(t, ts, dirReq).ID, 2*time.Minute)
	if fromDir.State != JobDone || fromDir.Result.StatsDigest != live.Result.StatsDigest {
		t.Fatalf("directory replay: state %s digest %s, want done/%s",
			fromDir.State, fromDir.Result.StatsDigest, live.Result.StatsDigest)
	}

	// Rejections happen at submission, with 400s, before any job exists.
	for name, req := range map[string]RunRequest{
		"missing file": func() RunRequest {
			r := tinyRun("FDIP")
			r.TracePath = filepath.Join(dir, "absent.hpt")
			return r
		}(),
		"trace with fault": func() RunRequest {
			r := tinyRun("FDIP")
			r.TracePath = path
			r.Fault = "tag-flip:0.001"
			return r
		}(),
	} {
		resp := postJSON(t, ts.URL+"/v1/runs", req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: submission returned %d, want 400", name, resp.StatusCode)
		}
	}
}
