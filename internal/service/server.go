// Package service turns the experiment harness into a long-lived serving
// system: an HTTP/JSON API over a bounded job queue and a worker pool,
// with single-flight result caching (shared with every other harness
// consumer in the process), per-job deadlines plumbed into the
// simulator's cycle loop, and self-observation via /metrics.
//
// The flow: POST /v1/runs (or /v1/experiments/{id}) validates the
// request, admits it to the queue — or bounces with 429 + Retry-After
// when the queue is full, the server's backpressure signal — and returns
// a job id. Workers (one per core by default) pull jobs, execute them
// under a context deadline through harness.Run, and record the outcome;
// clients poll GET /v1/runs/{id} (optionally blocking with ?wait=2s) and
// may POST /v1/runs/{id}/cancel at any point before completion.
//
// Durability and self-healing: with a journal configured
// (Config.JournalPath, hpserved -journal), every submit/start/terminal
// transition is written ahead to an append-only log, so a restarted
// server replays the jobs that were queued or in flight when the
// process died — determinism guarantees the replayed run produces the
// identical StatsDigest. Transient failures (injected faults, worker
// panics, deadlines expired under load) retry with exponential backoff
// and decorrelated jitter up to a per-job budget; permanent failures do
// not. A circuit breaker over the worker failure rate sheds admissions
// with 503 while the pool is only producing failures, and queue-full
// 429 responses carry a Retry-After derived from the observed p90 job
// latency rather than a constant.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hprefetch/internal/fault"
	"hprefetch/internal/harness"
	"hprefetch/internal/tracefile"
	"hprefetch/internal/workloads"
	"hprefetch/internal/xrand"
)

// Config sizes the server. Zero fields take the documented defaults.
type Config struct {
	// Workers is the worker-pool size (default runtime.NumCPU()).
	Workers int
	// QueueDepth bounds the job queue; a full queue rejects submissions
	// with 429 (default 64).
	QueueDepth int
	// CacheEntries re-bounds the shared harness result cache (default
	// harness.DefaultCacheEntries).
	CacheEntries int
	// DefaultTimeout applies to jobs that specify none (default 15m);
	// MaxTimeout clamps client-requested deadlines (default 1h).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxJobsRetained bounds how many finished jobs stay pollable
	// (default 1024).
	MaxJobsRetained int

	// JournalPath enables the write-ahead job journal: submits, starts
	// and terminal transitions are logged there and pending jobs replay
	// on restart. Empty disables durability.
	JournalPath string
	// Retry shapes transient-failure retries (see RetryPolicy).
	Retry RetryPolicy
	// RetrySeed seeds the backoff jitter stream (deterministic tests).
	RetrySeed uint64
	// MaxRequestRetries clamps client-requested max_retries (default 10).
	MaxRequestRetries int

	// Breaker knobs: the admission circuit breaker opens when at least
	// BreakerMinSamples (default 8) of the last BreakerWindow (default
	// 32) terminal outcomes are failures at a rate ≥ BreakerThreshold
	// (default 0.9), and half-opens after BreakerCooldown (default 10s).
	BreakerWindow     int
	BreakerMinSamples int
	BreakerThreshold  float64
	BreakerCooldown   time.Duration

	// MaxRetryAfter caps the base Retry-After hint on shed load
	// (default 60s); anti-lockstep jitter may add up to half the base
	// again on top.
	MaxRetryAfter time.Duration

	// Chaos injects service-level faults into job execution
	// (fault.ServiceClasses); dev/test only. The zero value disables it.
	Chaos fault.Config

	// CorpusDir resolves jobs without an explicit trace_path through a
	// shared content-addressed trace corpus (see internal/corpus):
	// workloads with a published object replay from it, damaged objects
	// self-heal, everything else runs live. Empty disables corpus
	// resolution.
	CorpusDir string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = harness.DefaultCacheEntries
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 15 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = time.Hour
	}
	if c.MaxJobsRetained <= 0 {
		c.MaxJobsRetained = 1024
	}
	c.Retry = c.Retry.withDefaults()
	if c.MaxRequestRetries <= 0 {
		c.MaxRequestRetries = 10
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 32
	}
	if c.BreakerMinSamples <= 0 {
		c.BreakerMinSamples = 8
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 0.9
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 60 * time.Second
	}
	return c
}

// Server is the simulation-serving subsystem. Create with New, expose
// via Handler, stop with Close.
type Server struct {
	cfg     Config
	queue   chan *Job
	store   *jobStore
	metrics *Metrics
	breaker *Breaker
	start   time.Time
	nextID  atomic.Uint64

	// journal is the write-ahead log (nil when durability is off);
	// draining suppresses terminal journal records during Close so
	// shutdown-cancelled jobs stay pending and replay on restart.
	journal  *Journal
	draining atomic.Bool

	// retryRNG drives backoff jitter; chaos makes the service-level
	// fault decisions. Both are single streams shared across workers,
	// hence the mutexes.
	retryMu  sync.Mutex
	retryRNG *xrand.RNG
	chaosMu  sync.Mutex
	chaos    *fault.Injector

	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
}

// New builds a Server, replays its journal (when configured), and
// starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	harness.SetCacheLimit(cfg.CacheEntries)
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		store:    newJobStore(cfg.MaxJobsRetained),
		metrics:  NewMetrics(),
		breaker:  NewBreaker(cfg.BreakerWindow, cfg.BreakerMinSamples, cfg.BreakerThreshold, cfg.BreakerCooldown),
		retryRNG: xrand.New(xrand.Mix(cfg.RetrySeed, 0x5E77)),
		start:    time.Now(),
		closed:   make(chan struct{}),
	}
	if cfg.Chaos.Enabled() {
		inj, err := fault.New(cfg.Chaos)
		if err != nil {
			return nil, err
		}
		s.chaos = inj
	}

	var replayed []*Job
	if cfg.JournalPath != "" {
		jl, pending, maxSeq, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = jl
		s.nextID.Store(maxSeq)
		for _, rj := range pending {
			j, err := s.jobFromReplay(rj)
			if err != nil {
				// The journaled request no longer validates (workload
				// renamed, scheme removed): fail it terminally — and
				// journal that, so it never replays again.
				dead := &Job{
					ID: rj.ID, Kind: rj.Kind, Req: rj.Req,
					state: JobQueued, attempts: rj.Attempts,
					submitted: time.Now(), done: make(chan struct{}),
				}
				dead.finish(JobFailed, fmt.Sprintf("journal replay: %v", err))
				s.store.put(dead)
				s.journalFinish(dead)
				s.metrics.Failed.Add(1)
				continue
			}
			s.store.put(j)
			replayed = append(replayed, j)
		}
		s.metrics.Replayed.Add(uint64(len(replayed)))
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if len(replayed) > 0 {
		// Feed replayed jobs from a goroutine so New never blocks on a
		// queue shallower than the replay set; they are already in the
		// store, hence pollable, while they wait.
		go func() {
			for _, j := range replayed {
				select {
				case s.queue <- j:
				case <-s.closed:
					return
				case <-j.Done():
				}
			}
		}()
	}
	return s, nil
}

// jobFromReplay revalidates a journaled pending job and rebuilds its
// executable form (the harness config is derived state, not journaled).
func (s *Server) jobFromReplay(rj ReplayJob) (*Job, error) {
	req := rj.Req
	switch rj.Kind {
	case "run":
		if req.Workload == "" {
			return nil, fmt.Errorf("run job without workload")
		}
		if _, err := workloads.Get(req.Workload); err != nil {
			return nil, err
		}
		if req.Scheme == "" {
			req.Scheme = string(harness.SchemeHier)
		}
		if !validSchemes()[req.Scheme] {
			return nil, fmt.Errorf("unknown scheme %q (known: %s)", req.Scheme, harness.SchemeNames())
		}
	case "experiment":
		if !experimentKnown(req.Experiment) {
			return nil, fmt.Errorf("unknown experiment %q", req.Experiment)
		}
	default:
		return nil, fmt.Errorf("unknown job kind %q", rj.Kind)
	}
	rc, timeout, err := s.buildRunConfig(&req)
	if err != nil {
		return nil, err
	}
	j := s.newJob(rj.Kind, req, rc, timeout)
	j.ID = rj.ID
	j.attempts = rj.Attempts
	return j, nil
}

// Metrics exposes the server's counters (tests and embedders).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops accepting work, cancels every live job, waits for the
// workers to drain, and seals the journal. Shutdown cancellations are
// deliberately NOT journaled as terminal: a job cut short by Close is
// still pending from the journal's point of view and replays when a
// server reopens the same journal.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		close(s.closed)
		// Cancel whatever is queued or running; workers observe the
		// cancellation cooperatively and exit. Queued jobs go terminal
		// right here.
		for _, v := range s.store.list() {
			if j, ok := s.store.get(v.ID); ok {
				if j.requestCancel() == cancelledQueued {
					s.metrics.Canceled.Add(1)
				}
			}
		}
	})
	s.wg.Wait()
	// Drain job pointers the workers never reached (their jobs are
	// already terminal from the cancellation sweep above).
	for {
		select {
		case j := <-s.queue:
			if j.finish(JobCanceled, "server closed") {
				s.metrics.Canceled.Add(1)
			}
		default:
			if s.journal != nil {
				s.journal.Close() //nolint:errcheck // sticky error already counted
			}
			return
		}
	}
}

// worker executes queued jobs until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case j := <-s.queue:
			s.executeGuarded(j)
		}
	}
}

// executeGuarded wraps execute with panic recovery so a crashing job
// takes down neither its worker nor the pool; a recovered panic is a
// transient failure and follows the retry path.
func (s *Server) executeGuarded(j *Job) {
	started := time.Now()
	defer func() {
		if r := recover(); r != nil {
			s.metrics.WorkerPanics.Add(1)
			s.settle(j, harness.MarkTransient(fmt.Errorf("worker panic: %v", r)), started)
		}
	}()
	s.execute(j, started)
}

// execute runs one job attempt under its deadline and records the
// outcome.
func (s *Server) execute(j *Job, started time.Time) {
	ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
	defer cancel()
	attempt, ok := j.begin(cancel)
	if !ok {
		// Cancelled while queued; requestCancel already finished and
		// counted it.
		return
	}
	s.journalStart(j, attempt)

	if s.chaosKillWorker() {
		// Simulate the worker goroutine dying mid-job; executeGuarded's
		// recover turns this into a transient failure + pool survival.
		panic(fmt.Sprintf("chaos: worker killed during %s", j.ID))
	}

	var err error
	switch {
	case s.chaosFailJob():
		err = harness.MarkTransient(fmt.Errorf("chaos: injected job failure (attempt %d)", attempt))
	case j.Kind == "run":
		err = s.execRun(ctx, j)
	case j.Kind == "experiment":
		err = s.execExperiment(ctx, j)
	default:
		err = fmt.Errorf("unknown job kind %q", j.Kind)
	}
	s.settle(j, err, started)
}

// settle decides a finished attempt's fate: success, cooperative
// cancellation, a retry (transient error with budget left), or terminal
// failure. Exactly one terminal metrics increment happens per job.
func (s *Server) settle(j *Job, err error, started time.Time) {
	switch {
	case err == nil:
		if j.finish(JobDone, "") {
			s.journalFinish(j)
			s.metrics.Completed.Add(1)
			s.breaker.Record(false)
			s.metrics.ObserveLatency(j.latencyLabel(), float64(time.Since(started).Microseconds())/1000)
		}
		return
	case errors.Is(err, context.Canceled):
		if j.finish(JobCanceled, err.Error()) {
			s.journalFinish(j)
			s.metrics.Canceled.Add(1)
		}
		return
	}

	attempts, budget := j.retryBudget()
	if harness.IsTransient(err) && attempts <= budget && !s.draining.Load() {
		if s.scheduleRetry(j, err) {
			return
		}
	}
	if j.finish(JobFailed, err.Error()) {
		s.journalFinish(j)
		s.metrics.Failed.Add(1)
		s.breaker.Record(true)
	}
}

// scheduleRetry moves a transiently-failed job back to queued and
// re-enqueues it after a decorrelated-jitter backoff. Returns false when
// the job can no longer retry (cancelled, terminal) — the caller
// finishes it instead.
func (s *Server) scheduleRetry(j *Job, cause error) bool {
	s.retryMu.Lock()
	delay := s.cfg.Retry.Next(s.retryRNG, j.prevBackoff())
	s.retryMu.Unlock()
	if !j.retryReset(fmt.Sprintf("retrying after transient failure: %v", cause), delay) {
		return false
	}
	s.metrics.Retried.Add(1)
	timer := time.AfterFunc(delay, func() {
		select {
		case s.queue <- j:
		case <-s.closed:
			// Shutdown during backoff: leave the job queued (pending in
			// the journal) so a restart replays it; Close's sweep has
			// already run, so cancel it here for this process's books.
			if j.finish(JobCanceled, "server closed during retry backoff") {
				s.metrics.Canceled.Add(1)
			}
		case <-j.Done():
			// Cancelled during backoff; nothing to enqueue.
		}
	})
	// Tie the timer to server shutdown so tests closing quickly don't
	// leak armed timers (the AfterFunc body itself handles the race).
	go func() {
		select {
		case <-s.closed:
			if timer.Stop() {
				if j.finish(JobCanceled, "server closed during retry backoff") {
					s.metrics.Canceled.Add(1)
				}
			}
		case <-j.Done():
			timer.Stop()
		}
	}()
	return true
}

// chaosFailJob asks the chaos injector whether this attempt should fail
// transiently (dev/test only; nil injector means never). The injector is
// a single seeded stream shared across workers, hence the mutex — which
// also guards the nil check because tests disarm chaos mid-run.
func (s *Server) chaosFailJob() bool {
	s.chaosMu.Lock()
	defer s.chaosMu.Unlock()
	return s.chaos != nil && s.chaos.FailJob()
}

// chaosKillWorker asks the chaos injector whether this attempt should
// panic mid-execution.
func (s *Server) chaosKillWorker() bool {
	s.chaosMu.Lock()
	defer s.chaosMu.Unlock()
	return s.chaos != nil && s.chaos.KillWorker()
}

// journalSubmit records an admitted job; submission fails if the record
// cannot be made durable (the journal is the source of truth).
func (s *Server) journalSubmit(j *Job) error {
	if s.journal == nil {
		return nil
	}
	return s.journal.Append(journalRecord{Op: opSubmit, ID: j.ID, Kind: j.Kind, Req: j.Req})
}

// journalStart records an execution attempt beginning (best effort: a
// failed append degrades recovery precision, not correctness).
func (s *Server) journalStart(j *Job, attempt int) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(journalRecord{Op: opStart, ID: j.ID, Attempt: uint32(attempt)}); err != nil {
		s.metrics.JournalErrors.Add(1)
	}
}

// journalFinish records a terminal transition (best effort), including
// the result digest for completed runs so recovery checks can compare
// digests across lives. Suppressed while draining: shutdown-cancelled
// jobs must stay pending and replay.
func (s *Server) journalFinish(j *Job) {
	if s.journal == nil || s.draining.Load() {
		return
	}
	v := j.View()
	rec := journalRecord{Op: opFinish, ID: j.ID, State: v.State, ErrMsg: v.Error}
	if v.Result != nil {
		rec.Digest = v.Result.StatsDigest
	}
	if err := s.journal.Append(rec); err != nil {
		s.metrics.JournalErrors.Add(1)
	}
}

// latencyLabel buckets a job for the latency histograms: the scheme for
// runs, "experiment:<id>" for experiments.
func (j *Job) latencyLabel() string {
	if j.Kind == "experiment" {
		return "experiment:" + j.Req.Experiment
	}
	return j.Req.Scheme
}

// ComputeRunResult performs a (workload, scheme) simulation plus its
// FDIP baseline (for the speedup column) through the shared Runner and
// assembles the API result. Exported so the fleet coordinator's local
// execution path produces values identical to a backend job's — the
// determinism guarantee that makes fleet digest cross-checks exact.
func ComputeRunResult(ctx context.Context, workload, scheme string, rc harness.RunConfig) (*RunResult, error) {
	rc.Ctx = ctx
	sc := harness.Scheme(scheme)
	r, err := harness.Run(workload, sc, rc)
	if err != nil {
		return nil, err
	}
	out := &RunResult{
		Workload:         workload,
		Scheme:           scheme,
		IPC:              r.Stats.IPC(),
		Instructions:     r.Stats.Instructions,
		BranchMPKI:       r.Stats.MPKI(),
		L1IMPKI:          r.Stats.L1IMPKI(),
		PrefetchAccuracy: r.Stats.PFAccuracy(),
		CoverageL1:       r.Stats.PFCoverageL1(),
		CoverageL2:       r.Stats.PFCoverageL2(),
		LateFraction:     r.Stats.PFLateFraction(),
		AvgDistance:      r.Stats.PFAvgDistance(),
		StatsDigest:      r.Stats.Digest(),
		TraceSource:      r.TraceSource,
		CorpusHealed:     r.CorpusHealed,
		TLBMissFraction:  r.Stats.PFTLBMissFraction(),
		TLBDropped:       r.Stats.PFTLBDropped,
		Governor:         r.Governor,
	}
	if r.Sample != nil {
		out.SampleIntervals = r.Sample.Intervals
		out.SampleIPCMean = r.Sample.IPCMean
		out.SampleIPCStdErr = r.Sample.IPCStdErr
		out.SampleDetailedFrac = r.Sample.DetailedFrac
	}
	if sc != harness.SchemeFDIP {
		sp, err := harness.Speedup(workload, sc, rc)
		if err != nil {
			return nil, err
		}
		out.SpeedupOverFDIP = sp
	}
	return out, nil
}

// execRun performs a (workload, scheme) simulation plus its FDIP
// baseline (for the speedup column) through the shared Runner.
func (s *Server) execRun(ctx context.Context, j *Job) error {
	out, err := ComputeRunResult(ctx, j.Req.Workload, j.Req.Scheme, j.rc)
	if err != nil {
		return err
	}
	if out.Governor != nil {
		s.metrics.GovIntervals.Add(out.Governor.Intervals)
		s.metrics.GovStepUps.Add(out.Governor.StepUps)
		s.metrics.GovStepDowns.Add(out.Governor.StepDowns)
	}
	j.mu.Lock()
	j.run = out
	j.mu.Unlock()
	return nil
}

// execExperiment regenerates one paper table; the deadline reaches every
// simulation the experiment performs via rc.Ctx.
func (s *Server) execExperiment(ctx context.Context, j *Job) error {
	rc := j.rc
	rc.Ctx = ctx
	tbl, err := harness.Experiment(j.Req.Experiment, rc)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.table = &TableResult{
		ID:     tbl.ID,
		Title:  tbl.Title,
		Header: tbl.Header,
		Rows:   tbl.Rows,
		Notes:  tbl.Notes,
		Text:   tbl.String(),
	}
	j.mu.Unlock()
	return nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handlePollRun)
	mux.HandleFunc("POST /v1/runs/{id}/cancel", s.handleCancelRun)
	mux.HandleFunc("POST /v1/experiments/{id}", s.handleSubmitExperiment)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// validSchemes is the accepted Scheme set — the harness registry, so a
// scheme added there is immediately servable.
func validSchemes() map[string]bool {
	out := map[string]bool{}
	for _, sc := range harness.AllSchemes() {
		out[string(sc)] = true
	}
	return out
}

// buildRunConfig validates req and resolves it into a harness
// configuration plus the job deadline.
func (s *Server) buildRunConfig(req *RunRequest) (harness.RunConfig, time.Duration, error) {
	rc := harness.DefaultRunConfig()
	if len(req.Schemes) > 0 {
		return rc, 0, fmt.Errorf("schemes is a fleet-coordinator sweep field; a single server takes one scheme per run")
	}
	if req.Quick {
		rc = harness.QuickRunConfig()
		rc.Workloads = nil // Quick trims run length; workloads stay explicit
	}
	if req.WarmInstr > 0 {
		rc.WarmInstr = req.WarmInstr
	}
	if req.MeasureInstr > 0 {
		rc.MeasureInstr = req.MeasureInstr
	}
	if len(req.Workloads) > 0 {
		for _, w := range req.Workloads {
			if _, err := workloads.Get(w); err != nil {
				return rc, 0, err
			}
		}
		rc.Workloads = req.Workloads
	}
	if req.Fault != "" {
		cfg, err := fault.ParseSpec(req.Fault)
		if err != nil {
			return rc, 0, err
		}
		rc.Fault = cfg
	}
	if req.TracePath != "" {
		if req.Fault != "" {
			return rc, 0, fmt.Errorf("trace_path cannot be combined with fault injection")
		}
		st, err := os.Stat(req.TracePath)
		switch {
		case err != nil:
			return rc, 0, fmt.Errorf("trace_path: %w", err)
		case st.IsDir():
			rc.TraceDir = req.TracePath
		default:
			// Validate the file up front so a corrupt or foreign trace is
			// rejected at submission, not buried in a failed job.
			if _, err := tracefile.Stat(req.TracePath); err != nil {
				return rc, 0, fmt.Errorf("trace_path: %w", err)
			}
			rc.TracePath = req.TracePath
		}
	}
	if req.Sample != "" {
		sp, err := harness.ParseSampleSpec(req.Sample)
		if err != nil {
			return rc, 0, fmt.Errorf("sample: %w", err)
		}
		rc.Sample = sp
	}
	if req.PFDegree < 0 {
		return rc, 0, fmt.Errorf("pf_degree must be non-negative, got %d", req.PFDegree)
	}
	rc.PFDegree = req.PFDegree
	rc.Governed = req.Governed
	if s.cfg.CorpusDir != "" && !req.NoCorpus {
		// Corpus resolution is a fallback, not an override: an explicit
		// trace_path wins, and the harness skips the corpus for faulted
		// or recording runs.
		rc.CorpusDir = s.cfg.CorpusDir
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return rc, timeout, nil
}

// submit admits a validated job to the queue, or sheds it: 503 when
// closing or the circuit breaker is open, 429 when the queue is full
// (backpressure). Both shed paths carry an honest Retry-After.
func (s *Server) submit(w http.ResponseWriter, j *Job) {
	select {
	case <-s.closed:
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	default:
	}
	if ok, wait := s.breaker.Allow(); !ok {
		s.metrics.BreakerRejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterJitter(ceilSeconds(wait))))
		writeError(w, http.StatusServiceUnavailable,
			"circuit breaker open (worker failure rate too high); retry later")
		return
	}
	// Shed on a full queue BEFORE journaling: a rejected submission must
	// leave no journal trace (it never became a job).
	if len(s.queue) >= cap(s.queue) {
		s.shedQueueFull(w)
		return
	}
	if err := s.journalSubmit(j); err != nil {
		s.metrics.JournalErrors.Add(1)
		writeError(w, http.StatusInternalServerError, "journal append failed: %v", err)
		return
	}
	select {
	case s.queue <- j:
		s.store.put(j)
		s.metrics.Accepted.Add(1)
		w.Header().Set("Location", "/v1/runs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.View())
	default:
		// Lost the race for the last slot after the submit record landed;
		// journal the rejection so the id never replays.
		j.finish(JobFailed, "queue full at admission")
		s.journalFinish(j)
		s.shedQueueFull(w)
	}
}

// shedQueueFull writes the 429 backpressure response.
func (s *Server) shedQueueFull(w http.ResponseWriter) {
	s.metrics.Rejected.Add(1)
	w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterJitter(s.retryAfterSeconds())))
	writeError(w, http.StatusTooManyRequests,
		"queue full (%d jobs waiting); retry later", len(s.queue))
}

// retryAfterSeconds derives the Retry-After hint for queue-full shedding
// from observed behaviour instead of a constant: the p90 job latency
// times the number of queue "waves" ahead of a new arrival — how long
// until the backlog has likely drained enough to admit it.
func (s *Server) retryAfterSeconds() int {
	p90 := s.metrics.QuantileAllMS(0.90)
	if p90 <= 0 {
		return 1 // no history yet; the old constant is the honest floor
	}
	waves := (len(s.queue) + s.cfg.Workers) / s.cfg.Workers
	secs := int((p90*float64(waves) + 999) / 1000)
	if secs < 1 {
		secs = 1
	}
	if max := int(s.cfg.MaxRetryAfter / time.Second); secs > max {
		secs = max
	}
	return secs
}

// retryAfterJitter spreads a Retry-After hint upward by as much as half
// its base value, drawn from the seeded retry stream. Clients shed in
// the same instant (queue full, breaker open) would otherwise all come
// back in the same second and collide again; jitter never shortens the
// hint, so it stays honest.
func (s *Server) retryAfterJitter(secs int) int {
	if secs < 1 {
		secs = 1
	}
	s.retryMu.Lock()
	secs += s.retryRNG.IntN(secs/2 + 1)
	s.retryMu.Unlock()
	return secs
}

// ceilSeconds rounds a duration up to whole seconds (minimum 1) for
// Retry-After headers.
func ceilSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeBody(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Workload == "" {
		writeError(w, http.StatusBadRequest, "workload is required (one of %s)",
			strings.Join(workloads.AllSorted(), ", "))
		return
	}
	if _, err := workloads.Get(req.Workload); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Scheme == "" {
		req.Scheme = string(harness.SchemeHier)
	}
	if !validSchemes()[req.Scheme] {
		writeError(w, http.StatusBadRequest, "unknown scheme %q (known: %s)", req.Scheme, harness.SchemeNames())
		return
	}
	rc, timeout, err := s.buildRunConfig(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.submit(w, s.newJob("run", req, rc, timeout))
}

func (s *Server) handleSubmitExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !experimentKnown(id) {
		writeError(w, http.StatusNotFound, "unknown experiment %q (one of %s)",
			id, strings.Join(harness.ExperimentIDs(), ", "))
		return
	}
	var req RunRequest
	if err := decodeBody(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req.Experiment = id
	req.Workload, req.Scheme = "", "" // experiment jobs name no single pair
	rc, timeout, err := s.buildRunConfig(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.submit(w, s.newJob("experiment", req, rc, timeout))
}

// newJob allocates a Job with the next id and its resolved retry budget.
func (s *Server) newJob(kind string, req RunRequest, rc harness.RunConfig, timeout time.Duration) *Job {
	return &Job{
		ID:         newJobID(s.nextID.Add(1)),
		Kind:       kind,
		Req:        req,
		rc:         rc,
		timeout:    timeout,
		state:      JobQueued,
		submitted:  time.Now(),
		maxRetries: s.resolveRetries(req),
		done:       make(chan struct{}),
	}
}

// resolveRetries turns a request's max_retries into the job's budget:
// 0 keeps the server default, negative disables retries, positive values
// are clamped to MaxRequestRetries.
func (s *Server) resolveRetries(req RunRequest) int {
	switch {
	case req.MaxRetries == 0:
		return s.cfg.Retry.MaxRetries
	case req.MaxRetries < 0:
		return 0
	case req.MaxRetries > s.cfg.MaxRequestRetries:
		return s.cfg.MaxRequestRetries
	}
	return req.MaxRetries
}

func (s *Server) handlePollRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, err := time.ParseDuration(waitSpec)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait duration %q: %v", waitSpec, err)
			return
		}
		if d > 30*time.Second {
			d = 30 * time.Second
		}
		select {
		case <-j.Done():
		case <-time.After(d):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	switch j.requestCancel() {
	case cancelNoop:
		writeJSON(w, http.StatusConflict, j.View())
	case cancelledQueued:
		s.journalFinish(j)
		s.metrics.Canceled.Add(1)
		writeJSON(w, http.StatusAccepted, j.View())
	case cancellingRunning:
		writeJSON(w, http.StatusAccepted, j.View())
	}
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.list()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"workers":     s.cfg.Workers,
		"queue_depth": len(s.queue),
		"uptime_ms":   time.Since(s.start).Milliseconds(),
		"journal":     s.journal != nil,
		"breaker":     s.breaker.Status().State,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot(len(s.queue), s.cfg.Workers, harness.CacheStats(), s.breaker.Status())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, snap.Prometheus()) //nolint:errcheck // client went away
}

// decodeBody parses an optional JSON body (empty bodies are fine) and
// rejects unknown fields so typos fail loudly.
func decodeBody(body io.Reader, v *RunRequest) error {
	data, err := io.ReadAll(io.LimitReader(body, 1<<20))
	if err != nil {
		return err
	}
	if len(strings.TrimSpace(string(data))) == 0 {
		return nil
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// experimentKnown reports whether id is a valid experiment identifier.
func experimentKnown(id string) bool {
	for _, e := range harness.ExperimentIDs() {
		if e == id {
			return true
		}
	}
	return false
}
