// Package service turns the experiment harness into a long-lived serving
// system: an HTTP/JSON API over a bounded job queue and a worker pool,
// with single-flight result caching (shared with every other harness
// consumer in the process), per-job deadlines plumbed into the
// simulator's cycle loop, and self-observation via /metrics.
//
// The flow: POST /v1/runs (or /v1/experiments/{id}) validates the
// request, admits it to the queue — or bounces with 429 + Retry-After
// when the queue is full, the server's backpressure signal — and returns
// a job id. Workers (one per core by default) pull jobs, execute them
// under a context deadline through harness.Run, and record the outcome;
// clients poll GET /v1/runs/{id} (optionally blocking with ?wait=2s) and
// may POST /v1/runs/{id}/cancel at any point before completion.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hprefetch/internal/fault"
	"hprefetch/internal/harness"
	"hprefetch/internal/workloads"
)

// Config sizes the server. Zero fields take the documented defaults.
type Config struct {
	// Workers is the worker-pool size (default runtime.NumCPU()).
	Workers int
	// QueueDepth bounds the job queue; a full queue rejects submissions
	// with 429 (default 64).
	QueueDepth int
	// CacheEntries re-bounds the shared harness result cache (default
	// harness.DefaultCacheEntries).
	CacheEntries int
	// DefaultTimeout applies to jobs that specify none (default 15m);
	// MaxTimeout clamps client-requested deadlines (default 1h).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxJobsRetained bounds how many finished jobs stay pollable
	// (default 1024).
	MaxJobsRetained int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = harness.DefaultCacheEntries
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 15 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = time.Hour
	}
	if c.MaxJobsRetained <= 0 {
		c.MaxJobsRetained = 1024
	}
	return c
}

// Server is the simulation-serving subsystem. Create with New, expose
// via Handler, stop with Close.
type Server struct {
	cfg     Config
	queue   chan *Job
	store   *jobStore
	metrics *Metrics
	start   time.Time
	nextID  atomic.Uint64

	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	harness.SetCacheLimit(cfg.CacheEntries)
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.QueueDepth),
		store:   newJobStore(cfg.MaxJobsRetained),
		metrics: NewMetrics(),
		start:   time.Now(),
		closed:  make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the server's counters (tests and embedders).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops accepting work, cancels every live job, and waits for the
// workers to drain.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		// Cancel whatever is queued or running; workers observe the
		// cancellation cooperatively and exit. Queued jobs go terminal
		// right here.
		for _, v := range s.store.list() {
			if j, ok := s.store.get(v.ID); ok {
				if j.requestCancel() == cancelledQueued {
					s.metrics.Canceled.Add(1)
				}
			}
		}
	})
	s.wg.Wait()
	// Drain job pointers the workers never reached (their jobs are
	// already terminal from the cancellation sweep above).
	for {
		select {
		case j := <-s.queue:
			if j.finish(JobCanceled, "server closed") {
				s.metrics.Canceled.Add(1)
			}
		default:
			return
		}
	}
}

// worker executes queued jobs until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case j := <-s.queue:
			s.execute(j)
		}
	}
}

// execute runs one job under its deadline and records the outcome.
func (s *Server) execute(j *Job) {
	ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
	defer cancel()
	if !j.begin(cancel) {
		// Cancelled while queued; requestCancel already finished and
		// counted it.
		return
	}
	started := time.Now()

	var err error
	switch j.Kind {
	case "run":
		err = s.execRun(ctx, j)
	case "experiment":
		err = s.execExperiment(ctx, j)
	default:
		err = fmt.Errorf("unknown job kind %q", j.Kind)
	}

	switch {
	case err == nil:
		j.finish(JobDone, "")
		s.metrics.Completed.Add(1)
		s.metrics.ObserveLatency(j.latencyLabel(), float64(time.Since(started).Microseconds())/1000)
	case errors.Is(err, context.Canceled):
		j.finish(JobCanceled, err.Error())
		s.metrics.Canceled.Add(1)
	default:
		j.finish(JobFailed, err.Error())
		s.metrics.Failed.Add(1)
	}
}

// latencyLabel buckets a job for the latency histograms: the scheme for
// runs, "experiment:<id>" for experiments.
func (j *Job) latencyLabel() string {
	if j.Kind == "experiment" {
		return "experiment:" + j.Req.Experiment
	}
	return j.Req.Scheme
}

// execRun performs a (workload, scheme) simulation plus its FDIP
// baseline (for the speedup column) through the shared Runner.
func (s *Server) execRun(ctx context.Context, j *Job) error {
	rc := j.rc
	rc.Ctx = ctx
	scheme := harness.Scheme(j.Req.Scheme)
	r, err := harness.Run(j.Req.Workload, scheme, rc)
	if err != nil {
		return err
	}
	out := &RunResult{
		Workload:         j.Req.Workload,
		Scheme:           j.Req.Scheme,
		IPC:              r.Stats.IPC(),
		Instructions:     r.Stats.Instructions,
		BranchMPKI:       r.Stats.MPKI(),
		L1IMPKI:          r.Stats.L1IMPKI(),
		PrefetchAccuracy: r.Stats.PFAccuracy(),
		CoverageL1:       r.Stats.PFCoverageL1(),
		CoverageL2:       r.Stats.PFCoverageL2(),
		LateFraction:     r.Stats.PFLateFraction(),
		AvgDistance:      r.Stats.PFAvgDistance(),
		StatsDigest:      r.Stats.Digest(),
	}
	if scheme != harness.SchemeFDIP {
		sp, err := harness.Speedup(j.Req.Workload, scheme, rc)
		if err != nil {
			return err
		}
		out.SpeedupOverFDIP = sp
	}
	j.mu.Lock()
	j.run = out
	j.mu.Unlock()
	return nil
}

// execExperiment regenerates one paper table; the deadline reaches every
// simulation the experiment performs via rc.Ctx.
func (s *Server) execExperiment(ctx context.Context, j *Job) error {
	rc := j.rc
	rc.Ctx = ctx
	tbl, err := harness.Experiment(j.Req.Experiment, rc)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.table = &TableResult{
		ID:     tbl.ID,
		Title:  tbl.Title,
		Header: tbl.Header,
		Rows:   tbl.Rows,
		Notes:  tbl.Notes,
		Text:   tbl.String(),
	}
	j.mu.Unlock()
	return nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handlePollRun)
	mux.HandleFunc("POST /v1/runs/{id}/cancel", s.handleCancelRun)
	mux.HandleFunc("POST /v1/experiments/{id}", s.handleSubmitExperiment)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// validSchemes is the accepted Scheme set.
func validSchemes() map[string]bool {
	out := map[string]bool{string(harness.SchemePerfect): true}
	for _, sc := range harness.Schemes() {
		out[string(sc)] = true
	}
	return out
}

// buildRunConfig validates req and resolves it into a harness
// configuration plus the job deadline.
func (s *Server) buildRunConfig(req *RunRequest) (harness.RunConfig, time.Duration, error) {
	rc := harness.DefaultRunConfig()
	if req.Quick {
		rc = harness.QuickRunConfig()
		rc.Workloads = nil // Quick trims run length; workloads stay explicit
	}
	if req.WarmInstr > 0 {
		rc.WarmInstr = req.WarmInstr
	}
	if req.MeasureInstr > 0 {
		rc.MeasureInstr = req.MeasureInstr
	}
	if len(req.Workloads) > 0 {
		for _, w := range req.Workloads {
			if _, err := workloads.Get(w); err != nil {
				return rc, 0, err
			}
		}
		rc.Workloads = req.Workloads
	}
	if req.Fault != "" {
		cfg, err := fault.ParseSpec(req.Fault)
		if err != nil {
			return rc, 0, err
		}
		rc.Fault = cfg
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return rc, timeout, nil
}

// submit admits a validated job to the queue, or rejects it with 429
// when the queue is full (backpressure) / 503 when closing.
func (s *Server) submit(w http.ResponseWriter, j *Job) {
	select {
	case <-s.closed:
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	default:
	}
	select {
	case s.queue <- j:
		s.store.put(j)
		s.metrics.Accepted.Add(1)
		w.Header().Set("Location", "/v1/runs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.View())
	default:
		s.metrics.Rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"queue full (%d jobs waiting); retry later", len(s.queue))
	}
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeBody(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Workload == "" {
		writeError(w, http.StatusBadRequest, "workload is required (one of %s)",
			strings.Join(workloads.Names(), ", "))
		return
	}
	if _, err := workloads.Get(req.Workload); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Scheme == "" {
		req.Scheme = string(harness.SchemeHier)
	}
	if !validSchemes()[req.Scheme] {
		writeError(w, http.StatusBadRequest, "unknown scheme %q", req.Scheme)
		return
	}
	rc, timeout, err := s.buildRunConfig(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.submit(w, s.newJob("run", req, rc, timeout))
}

func (s *Server) handleSubmitExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !experimentKnown(id) {
		writeError(w, http.StatusNotFound, "unknown experiment %q (one of %s)",
			id, strings.Join(harness.ExperimentIDs(), ", "))
		return
	}
	var req RunRequest
	if err := decodeBody(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req.Experiment = id
	req.Workload, req.Scheme = "", "" // experiment jobs name no single pair
	rc, timeout, err := s.buildRunConfig(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.submit(w, s.newJob("experiment", req, rc, timeout))
}

// newJob allocates a Job with the next id.
func (s *Server) newJob(kind string, req RunRequest, rc harness.RunConfig, timeout time.Duration) *Job {
	return &Job{
		ID:        newJobID(s.nextID.Add(1)),
		Kind:      kind,
		Req:       req,
		rc:        rc,
		timeout:   timeout,
		state:     JobQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
}

func (s *Server) handlePollRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, err := time.ParseDuration(waitSpec)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait duration %q: %v", waitSpec, err)
			return
		}
		if d > 30*time.Second {
			d = 30 * time.Second
		}
		select {
		case <-j.Done():
		case <-time.After(d):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	switch j.requestCancel() {
	case cancelNoop:
		writeJSON(w, http.StatusConflict, j.View())
	case cancelledQueued:
		s.metrics.Canceled.Add(1)
		writeJSON(w, http.StatusAccepted, j.View())
	case cancellingRunning:
		writeJSON(w, http.StatusAccepted, j.View())
	}
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.list()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"workers":     s.cfg.Workers,
		"queue_depth": len(s.queue),
		"uptime_ms":   time.Since(s.start).Milliseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot(len(s.queue), s.cfg.Workers, harness.CacheStats())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, snap.Prometheus()) //nolint:errcheck // client went away
}

// decodeBody parses an optional JSON body (empty bodies are fine) and
// rejects unknown fields so typos fail loudly.
func decodeBody(body io.Reader, v *RunRequest) error {
	data, err := io.ReadAll(io.LimitReader(body, 1<<20))
	if err != nil {
		return err
	}
	if len(strings.TrimSpace(string(data))) == 0 {
		return nil
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// experimentKnown reports whether id is a valid experiment identifier.
func experimentKnown(id string) bool {
	for _, e := range harness.ExperimentIDs() {
		if e == id {
			return true
		}
	}
	return false
}
