package service

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleRecords is a representative record mix covering every op and
// every RunRequest field.
func sampleRecords() []journalRecord {
	return []journalRecord{
		{Op: opSeq, Seq: 41},
		{Op: opSubmit, ID: "job-000042", Kind: "run", Req: RunRequest{
			Workload: "gin", Scheme: "Hierarchical",
			WarmInstr: 1000, MeasureInstr: 2000,
			Quick: true, Fault: "tag-flip:0.001:7", TimeoutMS: 5000, MaxRetries: 3,
			TracePath: "/var/traces/gin.hpt",
			Schemes:   []string{"FDIP", "Hierarchical"},
		}},
		{Op: opStart, ID: "job-000042", Attempt: 1},
		{Op: opSubmit, ID: "job-000043", Kind: "experiment", Req: RunRequest{
			Experiment: "fig9", Workloads: []string{"gin", "etcd"},
		}},
		{Op: opStart, ID: "job-000042", Attempt: 2},
		{Op: opAssign, ID: "job-000043", Key: "gin/FDIP", Backend: "http://127.0.0.1:19001"},
		{Op: opFinish, ID: "job-000042", State: JobDone, Digest: "fnv1a64:dead"},
		{Op: opFinish, ID: "job-000043", State: JobFailed, ErrMsg: "boom"},
	}
}

func encodeAll(t *testing.T, recs []journalRecord) []byte {
	t.Helper()
	buf := journalHeader()
	for _, rec := range recs {
		payload, err := encodeJournalPayload(rec)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		buf = append(buf, frameRecord(payload)...)
	}
	return buf
}

func TestJournalRecordRoundTrip(t *testing.T) {
	recs := sampleRecords()
	data := encodeAll(t, recs)
	got, n, err := decodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) {
		t.Fatalf("decoded %d of %d bytes", n, len(data))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		a, b := recs[i], got[i]
		if a.Op != b.Op || a.ID != b.ID || a.Kind != b.Kind || a.Attempt != b.Attempt ||
			a.State != b.State || a.ErrMsg != b.ErrMsg || a.Digest != b.Digest || a.Seq != b.Seq ||
			a.Key != b.Key || a.Backend != b.Backend {
			t.Fatalf("record %d: %+v != %+v", i, a, b)
		}
		if a.Op == opSubmit {
			ae, _ := encodeJournalPayload(a)
			be, _ := encodeJournalPayload(b)
			if !bytes.Equal(ae, be) {
				t.Fatalf("record %d request drifted through the codec", i)
			}
		}
	}
}

// TestJournalTornTail proves corruption after a valid prefix never
// poisons replay: the prefix decodes, the tail is discarded.
func TestJournalTornTail(t *testing.T) {
	recs := sampleRecords()
	data := encodeAll(t, recs)

	// Truncations anywhere keep a (possibly shorter) valid prefix.
	for cut := 0; cut < len(data); cut += 7 {
		got, n, err := decodeJournal(data[:cut])
		if err != nil && cut >= journalHeaderSize {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if n > cut {
			t.Fatalf("cut=%d: decoder claims %d bytes", cut, n)
		}
		if len(got) > len(recs) {
			t.Fatalf("cut=%d: conjured records", cut)
		}
	}

	// A flipped byte mid-file stops the scan at the damaged record.
	for _, pos := range []int{journalHeaderSize + 2, len(data) / 2, len(data) - 3} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		got, _, err := decodeJournal(mut)
		if err != nil {
			t.Fatalf("pos=%d: %v", pos, err)
		}
		if len(got) >= len(recs) {
			// The flip may hit string content and still CRC-fail; only a
			// full-length decode would mean the corruption went unnoticed.
			ok := false
			for i := range got {
				a, _ := encodeJournalPayload(recs[i])
				b, _ := encodeJournalPayload(got[i])
				if !bytes.Equal(a, b) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("pos=%d: corrupt journal decoded fully and identically", pos)
			}
		}
	}

	// Bad magic is the one hard error.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, _, err := decodeJournal(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestJournalVersionMismatch pins the upgrade failure mode: a journal
// written by another format version is rejected at startup with an
// error naming the version found, the version this build speaks, and
// the remediation — not a bare decode failure.
func TestJournalVersionMismatch(t *testing.T) {
	data := journalHeader()
	binary.LittleEndian.PutUint16(data[8:], journalVersion-1)
	_, _, err := decodeJournal(data)
	if err == nil {
		t.Fatal("old-version journal accepted")
	}
	for _, want := range []string{
		fmt.Sprintf("format v%d found", journalVersion-1),
		fmt.Sprintf("reads/writes v%d", journalVersion),
		"delete the journal file",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("version error %q missing %q", err, want)
		}
	}
	// The on-disk startup path surfaces the same story.
	path := filepath.Join(t.TempDir(), "jobs.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "format v") {
		t.Fatalf("OpenJournal on old-version journal: %v", err)
	}
	// Bad magic stays its own, distinct error.
	bad := journalHeader()
	bad[0] ^= 0xFF
	if _, _, err := decodeJournal(bad); err == nil || strings.Contains(err.Error(), "format v") {
		t.Fatalf("bad magic error: %v", err)
	}
}

func TestPendingFromRecords(t *testing.T) {
	pending, maxSeq := pendingFromRecords(sampleRecords())
	if len(pending) != 0 {
		t.Fatalf("all jobs finished, but %d pending: %+v", len(pending), pending)
	}
	if maxSeq != 43 {
		t.Fatalf("maxSeq %d, want 43", maxSeq)
	}

	// Drop the finish records: both jobs replay, with attempts and
	// backend assignments preserved.
	recs := sampleRecords()[:6]
	pending, maxSeq = pendingFromRecords(recs)
	if len(pending) != 2 || maxSeq != 43 {
		t.Fatalf("pending %+v maxSeq %d", pending, maxSeq)
	}
	if pending[0].ID != "job-000042" || pending[0].Attempts != 2 {
		t.Fatalf("orphaned job %+v, want attempts 2", pending[0])
	}
	if pending[1].ID != "job-000043" || pending[1].Attempts != 0 {
		t.Fatalf("queued job %+v, want attempts 0", pending[1])
	}
	if got := pending[1].Assignments["gin/FDIP"]; got != "http://127.0.0.1:19001" {
		t.Fatalf("assignment not folded into replay: %+v", pending[1].Assignments)
	}
	if pending[0].Assignments != nil {
		t.Fatalf("job without assign records grew assignments: %+v", pending[0].Assignments)
	}

	// Order independence: a finish before its submit still terminates.
	shuffled := []journalRecord{
		{Op: opFinish, ID: "job-000001", State: JobCanceled},
		{Op: opSubmit, ID: "job-000001", Kind: "run", Req: RunRequest{Workload: "gin"}},
		{Op: opSubmit, ID: "job-000002", Kind: "run", Req: RunRequest{Workload: "gin"}},
	}
	pending, maxSeq = pendingFromRecords(shuffled)
	if len(pending) != 1 || pending[0].ID != "job-000002" || maxSeq != 2 {
		t.Fatalf("shuffled fold: pending %+v maxSeq %d", pending, maxSeq)
	}
}

// TestJournalAppendReplayCompact exercises the full disk lifecycle:
// append through the group-commit path, reopen, observe pending jobs,
// and verify compaction discarded the finished history.
func TestJournalAppendReplayCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	jl, pending, maxSeq, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 || maxSeq != 0 {
		t.Fatalf("fresh journal: pending %+v maxSeq %d", pending, maxSeq)
	}
	for _, rec := range sampleRecords()[:6] { // two submits + an assign, no finishes
		if err := jl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	jl2, pending, maxSeq, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 || maxSeq != 43 {
		t.Fatalf("reopen: pending %+v maxSeq %d", pending, maxSeq)
	}
	if got := pending[1].Assignments["gin/FDIP"]; got != "http://127.0.0.1:19001" {
		t.Fatalf("assignment lost across reopen+compaction: %+v", pending[1].Assignments)
	}
	// Finish both; the next open must compact to an empty pending set
	// while preserving the sequence high-water mark.
	for _, id := range []string{"job-000042", "job-000043"} {
		if err := jl2.Append(journalRecord{Op: opFinish, ID: id, State: JobCanceled}); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl2.Close(); err != nil {
		t.Fatal(err)
	}

	before, _ := os.ReadFile(path)
	jl3, pending, maxSeq, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl3.Close()
	if len(pending) != 0 || maxSeq != 43 {
		t.Fatalf("compacted: pending %+v maxSeq %d", pending, maxSeq)
	}
	after, _ := os.ReadFile(path)
	if len(after) >= len(before) {
		t.Fatalf("compaction did not shrink the journal: %d -> %d bytes", len(before), len(after))
	}
	// ID reuse guard: a server against the compacted journal continues
	// from the high-water mark even though no job records remain.
	if maxSeq != 43 {
		t.Fatalf("sequence high-water lost across compaction: %d", maxSeq)
	}
}

// TestJournalTornTailOnDisk simulates a crash mid-append: a half-written
// frame at the file tail must not prevent the journal from opening, and
// the valid prefix must replay.
func TestJournalTornTailOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	jl, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Append(journalRecord{Op: opSubmit, ID: "job-000001", Kind: "run",
		Req: RunRequest{Workload: "gin", Scheme: "FDIP"}}); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	// Append garbage: a plausible length prefix with no body behind it.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := binary.LittleEndian.AppendUint32(nil, 500)
	torn = append(torn, 0xDE, 0xAD)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jl2, pending, _, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail bricked startup: %v", err)
	}
	defer jl2.Close()
	if len(pending) != 1 || pending[0].ID != "job-000001" {
		t.Fatalf("pending after torn tail: %+v", pending)
	}
}

// FuzzJournalDecode mirrors binfmt.FuzzDecode for the journal format:
// arbitrary input must never panic, and every record the decoder accepts
// must re-encode to exactly the bytes it was decoded from (canonical
// representation — no parser differentials).
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(journalHeader())
	data := journalHeader()
	for _, rec := range sampleRecords() {
		payload, _ := encodeJournalPayload(rec)
		data = append(data, frameRecord(payload)...)
	}
	f.Add(data)
	f.Add(data[:len(data)-3])
	mut := append([]byte(nil), data...)
	mut[journalHeaderSize+6] ^= 0x10
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n, err := decodeJournal(data)
		if err != nil {
			return // unrecognisable header; nothing accepted
		}
		if n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		// Re-encode the accepted prefix; it must reproduce data[:n]
		// byte for byte.
		out := journalHeader()
		for _, rec := range recs {
			payload, err := encodeJournalPayload(rec)
			if err != nil {
				t.Fatalf("accepted record %+v does not re-encode: %v", rec, err)
			}
			out = append(out, frameRecord(payload)...)
		}
		if len(recs) > 0 || n >= journalHeaderSize {
			if !bytes.Equal(out, data[:n]) {
				t.Fatalf("accepted prefix is not canonical:\n got %x\nwant %x", out, data[:n])
			}
		}
		// The fold must tolerate any accepted record sequence.
		pendingFromRecords(recs)
	})
}
