package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
)

// The write-ahead job journal. Every job lifecycle transition — submit,
// start (one per attempt), terminal — is appended as a length-prefixed,
// CRC-guarded record before the transition is acknowledged, so a server
// restarted against the same journal can replay every job that was
// queued or in flight when the process died. Determinism makes the
// replay exact: a re-executed job produces the identical StatsDigest
// the lost attempt would have.
//
// File layout: a 10-byte header (u64 magic, u16 version), then records.
// Each record is
//
//	u32 payload length | payload | u32 CRC-32 (IEEE) of payload
//
// with the payload encoded by the same overflow-safe little-endian
// conventions as internal/binfmt (bounds-checked reads, canonical
// booleans, length prefixes sanity-checked against the remaining
// input). Decoding stops at the first torn or corrupt record: the valid
// prefix replays, the tail is discarded — a crash mid-append never
// poisons startup.
//
// Appends are group-committed: concurrent Append calls coalesce into
// one write + one fsync performed by a dedicated flusher goroutine, and
// every call returns only after the batch containing its record is
// durable.

// journalMagic identifies the journal format ("HPJL" + version byte
// packed, same style as binfmt.Magic).
const journalMagic = 0x4850_4A4C_0001_0001

// journalVersion is the current journal format version. v2 added
// RunRequest.TracePath to submit records; v3 added RunRequest.Schemes
// (fleet sweep jobs) and the opAssign backend-assignment record; v4
// added RunRequest.Sample (interval-sampled runs); v5 added
// RunRequest.NoCorpus (the coordinator's corpus-bypass re-dispatch
// flag); v6 added RunRequest.PFDegree and RunRequest.Governed (the
// feedback-throttling subsystem's static-degree override and adaptive
// flag). Decoding is exact-consumption, so journals from other
// versions are rejected at startup — with an error naming both
// versions and the remediation — rather than misread (operators drain
// or delete the old journal before upgrading).
const journalVersion = 6

const journalHeaderSize = 10

// journalOp discriminates record payloads.
type journalOp uint8

const (
	// opSubmit records a validated, admitted job and its full request.
	opSubmit journalOp = 1
	// opStart records one execution attempt beginning (1-based attempt).
	opStart journalOp = 2
	// opFinish records a terminal transition; jobs with a finish record
	// are never replayed.
	opFinish journalOp = 3
	// opSeq preserves the high-water job sequence number across
	// compaction, so restarted servers never reissue an id.
	opSeq journalOp = 4
	// opAssign records a backend assignment made by a fleet coordinator:
	// the sub-job Key of job ID was dispatched to Backend. Replay uses
	// the last assignment per key to prefer the same (cache-warm)
	// backend. Plain hpserved jobs never write these.
	opAssign journalOp = 5
)

// journalRecord is the decoded form of one journal entry. Only the
// fields relevant to the record's Op are meaningful.
type journalRecord struct {
	Op journalOp
	ID string

	// opSubmit
	Kind string
	Req  RunRequest

	// opStart
	Attempt uint32

	// opFinish
	State  JobState
	ErrMsg string
	Digest string

	// opSeq
	Seq uint64

	// opAssign
	Key     string
	Backend string
}

// jwriter serialises with little-endian fixed-width fields
// (binfmt-style).
type jwriter struct{ buf []byte }

func (w *jwriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *jwriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *jwriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *jwriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *jwriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *jwriter) boolean(b bool) {
	if b {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// jreader decodes with bounds checking; a hostile length prefix cannot
// overflow the cursor or force a huge allocation.
type jreader struct {
	buf []byte
	off int
	err error
}

func (r *jreader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.err = fmt.Errorf("journal: truncated payload at offset %d (need %d of %d)", r.off, n, len(r.buf))
		return false
	}
	return true
}
func (r *jreader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}
func (r *jreader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}
func (r *jreader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}
func (r *jreader) i64() int64 { return int64(r.u64()) }
func (r *jreader) str() string {
	n := int(r.u32())
	if !r.need(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// boolean accepts only canonical 0/1, keeping the encoding strict so
// every accepted journal re-encodes to identical bytes.
func (r *jreader) boolean() bool {
	b := r.u8()
	if r.err == nil && b > 1 {
		r.err = fmt.Errorf("journal: invalid boolean byte %#x at offset %d", b, r.off-1)
	}
	return b != 0
}

// count reads a length prefix and sanity-checks it against the bytes
// remaining, assuming minElem bytes per element.
func (r *jreader) count(minElem int) int {
	n := int64(r.u32())
	if r.err == nil && n*int64(minElem) > int64(len(r.buf)-r.off) {
		r.err = fmt.Errorf("journal: implausible element count %d at offset %d", n, r.off)
		return 0
	}
	return int(n)
}

// finishStateCode maps terminal states to their wire codes.
func finishStateCode(s JobState) (uint8, bool) {
	switch s {
	case JobDone:
		return 1, true
	case JobFailed:
		return 2, true
	case JobCanceled:
		return 3, true
	}
	return 0, false
}

func finishStateFromCode(c uint8) (JobState, bool) {
	switch c {
	case 1:
		return JobDone, true
	case 2:
		return JobFailed, true
	case 3:
		return JobCanceled, true
	}
	return "", false
}

// encodeJournalPayload serialises one record payload (without framing).
func encodeJournalPayload(rec journalRecord) ([]byte, error) {
	w := &jwriter{buf: make([]byte, 0, 64)}
	w.u8(uint8(rec.Op))
	w.str(rec.ID)
	switch rec.Op {
	case opSubmit:
		w.str(rec.Kind)
		q := &rec.Req
		w.str(q.Workload)
		w.str(q.Scheme)
		w.str(q.Experiment)
		w.u64(q.WarmInstr)
		w.u64(q.MeasureInstr)
		w.u32(uint32(len(q.Workloads)))
		for _, wl := range q.Workloads {
			w.str(wl)
		}
		w.boolean(q.Quick)
		w.str(q.Fault)
		w.i64(q.TimeoutMS)
		w.i64(int64(q.MaxRetries))
		w.str(q.TracePath)
		w.u32(uint32(len(q.Schemes)))
		for _, sc := range q.Schemes {
			w.str(sc)
		}
		w.str(q.Sample)
		w.boolean(q.NoCorpus)
		w.i64(int64(q.PFDegree))
		w.boolean(q.Governed)
	case opStart:
		w.u32(rec.Attempt)
	case opFinish:
		code, ok := finishStateCode(rec.State)
		if !ok {
			return nil, fmt.Errorf("journal: finish record with non-terminal state %q", rec.State)
		}
		w.u8(code)
		w.str(rec.ErrMsg)
		w.str(rec.Digest)
	case opSeq:
		w.u64(rec.Seq)
	case opAssign:
		w.str(rec.Key)
		w.str(rec.Backend)
	default:
		return nil, fmt.Errorf("journal: unknown op %d", rec.Op)
	}
	return w.buf, nil
}

// decodeJournalPayload parses one record payload; the whole payload must
// be consumed (trailing bytes mean corruption).
func decodeJournalPayload(payload []byte) (journalRecord, error) {
	r := &jreader{buf: payload}
	rec := journalRecord{Op: journalOp(r.u8())}
	rec.ID = r.str()
	switch rec.Op {
	case opSubmit:
		rec.Kind = r.str()
		q := &rec.Req
		q.Workload = r.str()
		q.Scheme = r.str()
		q.Experiment = r.str()
		q.WarmInstr = r.u64()
		q.MeasureInstr = r.u64()
		n := r.count(4)
		if n > 0 {
			q.Workloads = make([]string, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				q.Workloads = append(q.Workloads, r.str())
			}
		}
		q.Quick = r.boolean()
		q.Fault = r.str()
		q.TimeoutMS = r.i64()
		q.MaxRetries = int(r.i64())
		q.TracePath = r.str()
		ns := r.count(4)
		if ns > 0 {
			q.Schemes = make([]string, 0, ns)
			for i := 0; i < ns && r.err == nil; i++ {
				q.Schemes = append(q.Schemes, r.str())
			}
		}
		q.Sample = r.str()
		q.NoCorpus = r.boolean()
		q.PFDegree = int(r.i64())
		q.Governed = r.boolean()
	case opStart:
		rec.Attempt = r.u32()
	case opFinish:
		state, ok := finishStateFromCode(r.u8())
		if r.err == nil && !ok {
			r.err = fmt.Errorf("journal: invalid finish state code")
		}
		rec.State = state
		rec.ErrMsg = r.str()
		rec.Digest = r.str()
	case opSeq:
		rec.Seq = r.u64()
	case opAssign:
		rec.Key = r.str()
		rec.Backend = r.str()
	default:
		return rec, fmt.Errorf("journal: unknown op %d", rec.Op)
	}
	if r.err != nil {
		return rec, r.err
	}
	if r.off != len(payload) {
		return rec, fmt.Errorf("journal: %d trailing payload bytes", len(payload)-r.off)
	}
	return rec, nil
}

// frameRecord wraps an encoded payload in the on-disk framing.
func frameRecord(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+8)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
}

// journalHeader returns the encoded file header.
func journalHeader() []byte {
	w := &jwriter{buf: make([]byte, 0, journalHeaderSize)}
	w.u64(journalMagic)
	w.buf = binary.LittleEndian.AppendUint16(w.buf, journalVersion)
	return w.buf
}

// errJournalHeader marks a journal whose header identifies a different
// file format entirely — startup refuses to touch it.
var errJournalHeader = errors.New("journal: bad magic (not a job journal?)")

// versionError explains a journal written by a different format version:
// it names the version found, the version this build writes, and the
// remediation, so the operator is not left staring at a bare decode
// failure.
func versionError(found uint16) error {
	return fmt.Errorf("journal: format v%d found, this build reads/writes v%d; "+
		"finish or cancel its pending jobs with the matching build, or delete the journal file, before upgrading",
		found, journalVersion)
}

// decodeJournal parses a journal image. It returns every record in the
// longest valid prefix plus the number of bytes that prefix occupies;
// corruption past the header stops the scan without erroring (the tail
// is a torn write, the prefix is the journal). Only an unrecognisable
// header or a version mismatch is an error. Inputs shorter than a header
// decode as an empty journal — a crash during creation must not brick
// the next start.
func decodeJournal(data []byte) ([]journalRecord, int, error) {
	if len(data) < journalHeaderSize {
		return nil, 0, nil
	}
	if binary.LittleEndian.Uint64(data) != journalMagic {
		return nil, 0, errJournalHeader
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != journalVersion {
		return nil, 0, versionError(v)
	}
	var recs []journalRecord
	off := journalHeaderSize
	for {
		if len(data)-off < 4 {
			break
		}
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		if n > int64(len(data)-off-8) {
			break // torn tail
		}
		payload := data[off+4 : off+4+int(n)]
		sum := binary.LittleEndian.Uint32(data[off+4+int(n):])
		if crc32.ChecksumIEEE(payload) != sum {
			break // bit rot
		}
		rec, err := decodeJournalPayload(payload)
		if err != nil {
			break // structurally invalid payload
		}
		recs = append(recs, rec)
		off += 4 + int(n) + 4
	}
	return recs, off, nil
}

// ReplayJob is one journaled job that never reached a terminal state and
// must be re-admitted on startup (by hpserved's worker pool, or by a
// fleet coordinator re-running a sweep).
type ReplayJob struct {
	ID   string
	Kind string
	Req  RunRequest
	// Attempts is the highest attempt number journaled; >0 means the job
	// was in flight (orphaned) when the process died.
	Attempts int
	// Assignments maps sub-job keys to the backend each was last
	// dispatched to (fleet coordinator jobs only; nil otherwise). A
	// recovering coordinator prefers the journaled backend so re-run
	// work lands on caches the lost life already warmed.
	Assignments map[string]string
}

// pendingFromRecords folds a record sequence into the pending-job set
// and the high-water job sequence number. The fold is order-independent
// per job id (a finish anywhere marks the id terminal), which makes
// replay robust to batches landing out of submit order.
func pendingFromRecords(recs []journalRecord) ([]ReplayJob, uint64) {
	type slot struct {
		job  ReplayJob
		seen bool
	}
	byID := map[string]*slot{}
	var order []string
	terminal := map[string]bool{}
	attempts := map[string]int{}
	assigns := map[string]map[string]string{}
	var maxSeq uint64

	noteSeq := func(id string) {
		var n uint64
		if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
		if _, err := fmt.Sscanf(id, "swp-%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
	}
	for _, rec := range recs {
		switch rec.Op {
		case opSubmit:
			noteSeq(rec.ID)
			if s, ok := byID[rec.ID]; ok && s.seen {
				continue // duplicate submit: keep the first
			}
			byID[rec.ID] = &slot{job: ReplayJob{ID: rec.ID, Kind: rec.Kind, Req: rec.Req}, seen: true}
			order = append(order, rec.ID)
		case opStart:
			noteSeq(rec.ID)
			if int(rec.Attempt) > attempts[rec.ID] {
				attempts[rec.ID] = int(rec.Attempt)
			}
		case opFinish:
			noteSeq(rec.ID)
			terminal[rec.ID] = true
		case opSeq:
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		case opAssign:
			if assigns[rec.ID] == nil {
				assigns[rec.ID] = map[string]string{}
			}
			assigns[rec.ID][rec.Key] = rec.Backend // last assignment wins
		}
	}
	var pending []ReplayJob
	for _, id := range order {
		if terminal[id] {
			continue
		}
		j := byID[id].job
		j.Attempts = attempts[id]
		j.Assignments = assigns[id]
		pending = append(pending, j)
	}
	return pending, maxSeq
}

// Journal is the open, append-only write-ahead log. Safe for concurrent
// use; create with OpenJournal.
type Journal struct {
	path string

	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	pending []byte        // encoded frames awaiting the next group commit
	round   chan struct{} // closed when the batch holding current pending is durable
	err     error         // first write/sync failure, sticky
	closed  bool

	flusherDone chan struct{}
}

// OpenJournal opens (or creates) the journal at path, replays its
// records, and compacts it: the rewritten file holds only the header, a
// sequence high-water record, and the still-pending jobs, so the
// journal's size is bounded by the live job set rather than by history.
// It returns the open journal, the jobs to re-admit (submit order), and
// the highest job sequence number ever issued against this journal.
func OpenJournal(path string) (*Journal, []ReplayJob, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, 0, fmt.Errorf("journal: read %s: %w", path, err)
	}
	var pending []ReplayJob
	var maxSeq uint64
	if len(data) > 0 {
		recs, _, derr := decodeJournal(data)
		if derr != nil {
			return nil, nil, 0, fmt.Errorf("journal: %s: %w", path, derr)
		}
		pending, maxSeq = pendingFromRecords(recs)
	}

	// Compact via temp file + atomic rename; a crash at any point leaves
	// either the old journal or the complete new one.
	tmp := path + ".tmp"
	buf := journalHeader()
	if seqPayload, err := encodeJournalPayload(journalRecord{Op: opSeq, Seq: maxSeq}); err == nil {
		buf = append(buf, frameRecord(seqPayload)...)
	}
	for _, rj := range pending {
		payload, err := encodeJournalPayload(journalRecord{Op: opSubmit, ID: rj.ID, Kind: rj.Kind, Req: rj.Req})
		if err != nil {
			return nil, nil, 0, err
		}
		buf = append(buf, frameRecord(payload)...)
		if rj.Attempts > 0 {
			payload, err := encodeJournalPayload(journalRecord{Op: opStart, ID: rj.ID, Attempt: uint32(rj.Attempts)})
			if err != nil {
				return nil, nil, 0, err
			}
			buf = append(buf, frameRecord(payload)...)
		}
		// Assignments survive compaction (sorted for a canonical file).
		keys := make([]string, 0, len(rj.Assignments))
		for k := range rj.Assignments {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			payload, err := encodeJournalPayload(journalRecord{Op: opAssign, ID: rj.ID, Key: k, Backend: rj.Assignments[k]})
			if err != nil {
				return nil, nil, 0, err
			}
			buf = append(buf, frameRecord(payload)...)
		}
	}
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return nil, nil, 0, fmt.Errorf("journal: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, 0, fmt.Errorf("journal: rename: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: open %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("journal: sync %s: %w", path, err)
	}

	jl := &Journal{
		path:        path,
		f:           f,
		round:       make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	jl.cond = sync.NewCond(&jl.mu)
	go jl.flusher()
	return jl, pending, maxSeq, nil
}

// Path returns the journal's file path.
func (jl *Journal) Path() string { return jl.path }

// Append encodes rec and blocks until the group commit containing it is
// written and fsynced (or until the journal hits a sticky I/O error).
func (jl *Journal) Append(rec journalRecord) error {
	payload, err := encodeJournalPayload(rec)
	if err != nil {
		return err
	}
	frame := frameRecord(payload)

	jl.mu.Lock()
	if jl.closed {
		jl.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	if jl.err != nil {
		err := jl.err
		jl.mu.Unlock()
		return err
	}
	jl.pending = append(jl.pending, frame...)
	round := jl.round
	jl.cond.Signal()
	jl.mu.Unlock()

	<-round

	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.err
}

// flusher is the single writer goroutine: it drains every frame pending
// at wake-up into one write + one fsync (group commit), then releases
// all the appenders waiting on that round.
func (jl *Journal) flusher() {
	defer close(jl.flusherDone)
	for {
		jl.mu.Lock()
		for len(jl.pending) == 0 && !jl.closed {
			jl.cond.Wait()
		}
		if len(jl.pending) == 0 && jl.closed {
			jl.mu.Unlock()
			return
		}
		batch := jl.pending
		jl.pending = nil
		round := jl.round
		jl.round = make(chan struct{})
		f := jl.f
		jl.mu.Unlock()

		_, werr := f.Write(batch)
		serr := f.Sync()

		jl.mu.Lock()
		if jl.err == nil {
			if werr != nil {
				jl.err = werr
			} else {
				jl.err = serr
			}
		}
		jl.mu.Unlock()
		close(round)
	}
}

// The exported Append helpers let other packages (the fleet coordinator)
// drive the same write-ahead log the server uses, without exposing the
// wire-level record type.

// AppendSubmit journals an admitted job and its full request.
func (jl *Journal) AppendSubmit(id, kind string, req RunRequest) error {
	return jl.Append(journalRecord{Op: opSubmit, ID: id, Kind: kind, Req: req})
}

// AppendStart journals one execution attempt beginning (1-based).
func (jl *Journal) AppendStart(id string, attempt int) error {
	return jl.Append(journalRecord{Op: opStart, ID: id, Attempt: uint32(attempt)})
}

// AppendAssign journals a backend assignment: sub-job key of job id was
// dispatched to backend. Recovery replays the last assignment per key.
func (jl *Journal) AppendAssign(id, key, backend string) error {
	return jl.Append(journalRecord{Op: opAssign, ID: id, Key: key, Backend: backend})
}

// AppendFinish journals a terminal transition (state must be terminal);
// digest carries the result fingerprint for completed work.
func (jl *Journal) AppendFinish(id string, state JobState, errMsg, digest string) error {
	return jl.Append(journalRecord{Op: opFinish, ID: id, State: state, ErrMsg: errMsg, Digest: digest})
}

// Close drains pending appends, fsyncs, and closes the file. Safe to
// call more than once.
func (jl *Journal) Close() error {
	jl.mu.Lock()
	if jl.closed {
		err := jl.err
		jl.mu.Unlock()
		return err
	}
	jl.closed = true
	jl.cond.Signal()
	jl.mu.Unlock()

	<-jl.flusherDone

	jl.mu.Lock()
	defer jl.mu.Unlock()
	if err := jl.f.Close(); err != nil && jl.err == nil {
		jl.err = err
	}
	return jl.err
}
