package service

import (
	"sync"
	"time"
)

// The admission circuit breaker. It watches terminal outcomes over a
// sliding window; when the failure rate crosses the threshold, the
// breaker opens and admissions bounce with 503 + Retry-After instead of
// joining a queue that is only producing failures. After a cooldown the
// breaker half-opens: exactly ONE probe admission is let through and its
// terminal outcome decides — success closes the breaker, failure
// re-opens it for another full cooldown. Concurrent submissions racing
// the probe are still rejected until the probe resolves (or a whole
// cooldown elapses without it resolving — a cancelled probe must not
// wedge the breaker shut forever). Cancellations are neutral and
// recorded nowhere.
//
// The same type guards the fleet coordinator's per-backend health: probe
// results and dispatch outcomes feed Record, and Allow gates routing.

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// BreakerStatus is the breaker's externally visible state (/metrics).
type BreakerStatus struct {
	// State is "closed", "open", or "half-open".
	State string `json:"state"`
	// Opens counts closed→open transitions since startup.
	Opens uint64 `json:"opens"`
}

// Breaker is a sliding-window failure-rate circuit breaker. Create with
// NewBreaker; safe for concurrent use.
type Breaker struct {
	mu         sync.Mutex
	window     []bool // ring buffer of outcomes; true = failure
	idx, n     int
	fails      int
	minSamples int
	threshold  float64
	cooldown   time.Duration
	state      breakerState
	openedAt   time.Time
	// probeAt is when the half-open probe slot was claimed; while a probe
	// is outstanding (and younger than one cooldown) no second admission
	// passes.
	probeAt       time.Time
	probeInFlight bool
	opens         uint64
	now           func() time.Time // test seam
}

// NewBreaker builds a breaker over a window of the given size that opens
// once at least minSamples outcomes are recorded and the failure rate
// reaches threshold, and half-opens after cooldown.
func NewBreaker(window, minSamples int, threshold float64, cooldown time.Duration) *Breaker {
	return &Breaker{
		window:     make([]bool, window),
		minSamples: minSamples,
		threshold:  threshold,
		cooldown:   cooldown,
		now:        time.Now,
	}
}

// Allow reports whether an admission may proceed; when it may not, it
// also returns how long the caller should wait before retrying. In the
// half-open state exactly one caller wins the probe slot; everyone else
// keeps being shed until the probe's outcome is recorded.
func (b *Breaker) Allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if remaining := b.cooldown - b.now().Sub(b.openedAt); remaining > 0 {
			return false, remaining
		}
		// Cooldown elapsed: this caller becomes the half-open probe.
		b.state = breakerHalfOpen
		b.probeInFlight = true
		b.probeAt = b.now()
		return true, 0
	default: // breakerHalfOpen
		if b.probeInFlight && b.now().Sub(b.probeAt) < b.cooldown {
			// A probe is outstanding; shed until it resolves.
			return false, b.cooldown - b.now().Sub(b.probeAt)
		}
		// The previous probe never reported (cancelled, lost): let a new
		// one through rather than staying wedged.
		b.probeInFlight = true
		b.probeAt = b.now()
		return true, 0
	}
}

// Record feeds one terminal outcome into the window.
func (b *Breaker) Record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		// Stragglers from admissions before the trip; ignore.
		return
	case breakerHalfOpen:
		b.probeInFlight = false
		if failure {
			b.trip()
		} else {
			b.state = breakerClosed
			b.reset()
		}
		return
	}
	if b.n == len(b.window) {
		if b.window[b.idx] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.window[b.idx] = failure
	if failure {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.window)
	if b.n >= b.minSamples && float64(b.fails) >= b.threshold*float64(b.n) {
		b.trip()
	}
}

// trip opens the breaker (caller holds b.mu).
func (b *Breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.opens++
	b.reset()
}

// reset clears the outcome window (caller holds b.mu).
func (b *Breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.n, b.fails = 0, 0, 0
}

// Status snapshots the breaker for metrics endpoints.
func (b *Breaker) Status() BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Surface an elapsed cooldown as half-open: that is what the next
	// Allow() will decide.
	st := b.state
	if st == breakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		st = breakerHalfOpen
	}
	return BreakerStatus{State: st.String(), Opens: b.opens}
}
