package service

import (
	"sync"
	"time"
)

// The admission circuit breaker. It watches terminal job outcomes over
// a sliding window; when the worker pool's failure rate crosses the
// threshold, the breaker opens and submissions bounce with 503 +
// Retry-After instead of joining a queue that is only producing
// failures. After a cooldown the breaker half-opens: submissions are
// admitted again and the first terminal outcome decides — success
// closes the breaker, failure re-opens it for another cooldown.
// Cancellations are neutral and recorded nowhere.

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// BreakerStatus is the breaker's externally visible state (/metrics).
type BreakerStatus struct {
	// State is "closed", "open", or "half-open".
	State string `json:"state"`
	// Opens counts closed→open transitions since startup.
	Opens uint64 `json:"opens"`
}

type breaker struct {
	mu         sync.Mutex
	window     []bool // ring buffer of outcomes; true = failure
	idx, n     int
	fails      int
	minSamples int
	threshold  float64
	cooldown   time.Duration
	state      breakerState
	openedAt   time.Time
	opens      uint64
	now        func() time.Time // test seam
}

func newBreaker(window, minSamples int, threshold float64, cooldown time.Duration) *breaker {
	return &breaker{
		window:     make([]bool, window),
		minSamples: minSamples,
		threshold:  threshold,
		cooldown:   cooldown,
		now:        time.Now,
	}
}

// allow reports whether a submission may be admitted; when it may not,
// it also returns how long the client should wait before retrying.
func (b *breaker) allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return true, 0
	}
	if remaining := b.cooldown - b.now().Sub(b.openedAt); remaining > 0 {
		return false, remaining
	}
	b.state = breakerHalfOpen
	return true, 0
}

// record feeds one terminal job outcome into the window.
func (b *breaker) record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		// Stragglers from admissions before the trip; ignore.
		return
	case breakerHalfOpen:
		if failure {
			b.trip()
		} else {
			b.state = breakerClosed
			b.reset()
		}
		return
	}
	if b.n == len(b.window) {
		if b.window[b.idx] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.window[b.idx] = failure
	if failure {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.window)
	if b.n >= b.minSamples && float64(b.fails) >= b.threshold*float64(b.n) {
		b.trip()
	}
}

// trip opens the breaker (caller holds b.mu).
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.opens++
	b.reset()
}

// reset clears the outcome window (caller holds b.mu).
func (b *breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.n, b.fails = 0, 0, 0
}

func (b *breaker) status() BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Surface an elapsed cooldown as half-open: that is what the next
	// allow() will decide.
	st := b.state
	if st == breakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		st = breakerHalfOpen
	}
	return BreakerStatus{State: st.String(), Opens: b.opens}
}
