package service

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hprefetch/internal/fault"
	"hprefetch/internal/harness"
	"hprefetch/internal/xrand"
)

// TestJournalKillRestartRecovery is the crash-recovery acceptance test:
// a server dies (Close, which journals nothing terminal for live jobs)
// with one job mid-execution and one queued; a second server against the
// same journal replays both to completion, and the recovered digests
// match a direct harness run performed before either server existed —
// the replayed execution is the lost execution, bit for bit.
func TestJournalKillRestartRecovery(t *testing.T) {
	harness.DropCache()
	mediumReq := RunRequest{Workload: "gin", Scheme: "FDIP", WarmInstr: 50_000, MeasureInstr: 10_000_000}
	queuedReq := RunRequest{Workload: "gin", Scheme: "EIP", WarmInstr: 50_000, MeasureInstr: 100_000}

	// Ground truth, computed first and then dropped from the cache so the
	// replayed jobs must re-simulate from scratch.
	digest := func(req RunRequest) string {
		rc := harness.DefaultRunConfig()
		rc.WarmInstr, rc.MeasureInstr = req.WarmInstr, req.MeasureInstr
		r, err := harness.Run(req.Workload, harness.Scheme(req.Scheme), rc)
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats.Digest()
	}
	wantMedium, wantQueued := digest(mediumReq), digest(queuedReq)
	harness.DropCache()

	path := filepath.Join(t.TempDir(), "jobs.wal")
	s1, err := New(Config{Workers: 1, QueueDepth: 4, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	running := submit(t, ts1, mediumReq)
	awaitState(t, ts1, running.ID, JobRunning, 30*time.Second)
	queued := submit(t, ts1, queuedReq)
	s1.Close() // the "kill": in-flight work is cut short, journal stays pending
	ts1.Close()

	if j, ok := s1.store.get(running.ID); !ok || j.State() != JobCanceled {
		t.Fatalf("running job not drain-cancelled in the dead server")
	}

	s2, err := New(Config{Workers: 1, QueueDepth: 4, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	if got := s2.Metrics().Replayed.Load(); got != 2 {
		t.Fatalf("replayed %d jobs, want 2", got)
	}

	rec := await(t, ts2, running.ID, 4*time.Minute)
	if rec.State != JobDone {
		t.Fatalf("orphaned job replayed to %s (%s)", rec.State, rec.Error)
	}
	if rec.Attempts < 2 {
		t.Fatalf("orphaned job attempts %d: the lost life's attempt was forgotten", rec.Attempts)
	}
	if rec.Result.StatsDigest != wantMedium {
		t.Fatalf("orphaned job digest %q != direct run %q", rec.Result.StatsDigest, wantMedium)
	}
	qrec := await(t, ts2, queued.ID, 2*time.Minute)
	if qrec.State != JobDone || qrec.Result.StatsDigest != wantQueued {
		t.Fatalf("queued job replayed to %s, digest %q want %q", qrec.State, qrec.Result.StatsDigest, wantQueued)
	}
	// Same ids across lives — replay resumes, it does not duplicate.
	if rec.ID != running.ID || qrec.ID != queued.ID {
		t.Fatal("replay changed job ids")
	}
}

// journalPending reads the journal file directly and returns the set of
// job ids that would replay.
func journalPending(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := decodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	pending, _ := pendingFromRecords(recs)
	out := map[string]bool{}
	for _, p := range pending {
		out[p.ID] = true
	}
	return out
}

// TestChaosSoak composes the failure modes into restart cycles: each
// cycle opens a server on the same journal under a different chaos class
// (transient job faults, worker kills), submits jobs with randomized
// schemes, simulator-level fault specs and immediate cancels, then
// closes mid-flight. Invariants across all lives:
//
//   - no job is lost: every submitted id eventually reaches exactly one
//     genuinely-terminal state (drain cancellations don't count — those
//     must replay);
//   - no job is duplicated: an id never goes terminal twice, and fresh
//     submissions never reuse an id from any earlier life;
//   - completed runs reproduce their digests: identical requests yield
//     identical StatsDigests across cycles, chaos or not.
func TestChaosSoak(t *testing.T) {
	harness.DropCache()
	path := filepath.Join(t.TempDir(), "jobs.wal")
	rng := xrand.New(0xC4A05)

	schemes := []string{"FDIP", "EFetch", "EIP", "Hierarchical"}
	chaosByCycle := []fault.Config{
		{Class: fault.ClassJobTransient, Rate: 0.4, Seed: 11},
		{Class: fault.ClassWorkerKill, Rate: 0.4, Seed: 12},
		{Class: fault.ClassJobTransient, Rate: 0.4, Seed: 13},
		{Class: fault.ClassWorkerKill, Rate: 0.4, Seed: 14},
	}

	submitted := map[string]RunRequest{} // every id ever issued
	finalState := map[string]JobState{}  // genuinely-terminal outcomes
	digests := map[string]string{}       // request key → StatsDigest
	expectReplay := 0

	reqKey := func(r RunRequest) string { return r.Scheme + "|" + r.Fault }

	// audit records every genuinely-terminal job after a cycle's close:
	// terminal in the store AND terminal in the journal. A terminal store
	// state that the journal still holds pending is a drain cancellation
	// and must replay.
	audit := func(s *Server) {
		t.Helper()
		pending := journalPending(t, path)
		for id, req := range submitted {
			if _, done := finalState[id]; done {
				if pending[id] {
					t.Fatalf("job %s is terminal (%s) but the journal still holds it pending", id, finalState[id])
				}
				continue
			}
			j, ok := s.store.get(id)
			if !ok {
				continue // submitted in an earlier life, replaying later
			}
			st := j.State()
			if pending[id] {
				continue // will replay next cycle (drain-cancelled or unfinished)
			}
			if !st.Terminal() {
				t.Fatalf("job %s is non-terminal (%s) yet journaled finished", id, st)
			}
			finalState[id] = st
			if st == JobDone && j.Kind == "run" {
				v := j.View()
				key := reqKey(req)
				if prev, ok := digests[key]; ok && prev != v.Result.StatsDigest {
					t.Fatalf("digest drift for %s: %q vs %q", key, prev, v.Result.StatsDigest)
				}
				digests[key] = v.Result.StatsDigest
			}
		}
		expectReplay = len(journalPending(t, path))
	}

	for cycle, chaos := range chaosByCycle {
		s, err := New(Config{
			Workers: 2, QueueDepth: 32, Retry: fastRetry,
			JournalPath: path, Chaos: chaos,
		})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if got := int(s.Metrics().Replayed.Load()); got != expectReplay {
			t.Fatalf("cycle %d replayed %d jobs, want %d", cycle, got, expectReplay)
		}
		ts := httptest.NewServer(s.Handler())

		var ids []string
		for i := 0; i < 6; i++ {
			req := tinyRun(schemes[rng.Range(0, len(schemes)-1)])
			if rng.Bool(0.25) {
				req.Fault = "prefetch-drop:0.3:5" // compose a simulator fault
			}
			v := submit(t, ts, req)
			if _, dup := submitted[v.ID]; dup {
				t.Fatalf("cycle %d reissued id %s from an earlier life", cycle, v.ID)
			}
			submitted[v.ID] = req
			ids = append(ids, v.ID)
			if rng.Bool(0.2) {
				cresp := postJSON(t, ts.URL+"/v1/runs/"+v.ID+"/cancel", nil)
				cresp.Body.Close()
			}
		}
		// Let roughly half the batch settle, then cut the power.
		for _, id := range ids[:3] {
			await(t, ts, id, 2*time.Minute)
		}
		ts.Close()
		s.Close()
		audit(s)
	}

	// Final chaos-free cycle: everything still pending replays and runs
	// to completion.
	s, err := New(Config{Workers: 2, QueueDepth: 32, Retry: fastRetry, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	if got := int(s.Metrics().Replayed.Load()); got != expectReplay {
		t.Fatalf("final cycle replayed %d jobs, want %d", got, expectReplay)
	}
	for id := range submitted {
		if _, done := finalState[id]; done {
			continue
		}
		await(t, ts, id, 4*time.Minute)
	}
	ts.Close()
	s.Close()
	audit(s)

	// Every job ever submitted is accounted for exactly once, and the
	// journal holds nothing pending.
	for id := range submitted {
		if _, ok := finalState[id]; !ok {
			t.Errorf("job %s was lost: never reached a journaled terminal state", id)
		}
	}
	if left := journalPending(t, path); len(left) != 0 {
		t.Fatalf("journal still pending after clean shutdown: %v", left)
	}
	if len(digests) == 0 {
		t.Fatal("soak completed no runs — chaos rates drowned the test")
	}
	t.Logf("soak: %d jobs across %d lives, %d distinct request digests, outcomes %v",
		len(submitted), len(chaosByCycle)+1, len(digests), countStates(finalState))
}

func countStates(m map[string]JobState) map[JobState]int {
	out := map[JobState]int{}
	for _, st := range m {
		out[st]++
	}
	return out
}
