package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hprefetch/internal/harness"
)

// newTestServer builds a Server plus its HTTP front door and registers
// cleanup. The shared harness cache is cleared first so cache-metric
// assertions see only this test's runs.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	harness.DropCache()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// tinyRun is a fast real simulation request (a few hundred ms).
func tinyRun(scheme string) RunRequest {
	return RunRequest{
		Workload:     "gin",
		Scheme:       scheme,
		WarmInstr:    50_000,
		MeasureInstr: 100_000,
	}
}

// hugeRun is a request that cannot finish in test time without
// cancellation or a deadline.
func hugeRun(timeoutMS int64) RunRequest {
	r := tinyRun("FDIP")
	r.MeasureInstr = 4_000_000_000
	r.TimeoutMS = timeoutMS
	return r
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// submit posts a run and returns its job view, asserting 202.
func submit(t *testing.T, ts *httptest.Server, req RunRequest) JobView {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusAccepted {
		defer resp.Body.Close()
		var e apiError
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		t.Fatalf("submit returned %d: %s", resp.StatusCode, e.Error)
	}
	return decode[JobView](t, resp)
}

// await polls a job until terminal or the deadline passes.
func await(t *testing.T, ts *httptest.Server, id string, within time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		v := decode[JobView](t, resp)
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.State, within)
		}
	}
}

// awaitState polls until the job reaches the wanted (non-terminal)
// state.
func awaitState(t *testing.T, ts *httptest.Server, id string, want JobState, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		v := decode[JobView](t, resp)
		if v.State == want {
			return
		}
		if v.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s, wanted %s", id, v.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	v := submit(t, ts, tinyRun("Hierarchical"))
	if v.State != JobQueued || v.ID == "" {
		t.Fatalf("submit view %+v", v)
	}
	done := await(t, ts, v.ID, 2*time.Minute)
	if done.State != JobDone {
		t.Fatalf("job finished %s (%s)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.IPC <= 0 {
		t.Fatalf("missing result: %+v", done.Result)
	}
	if done.Result.Scheme != "Hierarchical" {
		t.Fatalf("result scheme %q", done.Result.Scheme)
	}
	if done.Result.StatsDigest == "" {
		t.Fatal("run response carries no stats digest")
	}
	// An identical resubmission must reproduce the digest exactly — the
	// service-level determinism guarantee.
	again := await(t, ts, submit(t, ts, tinyRun("Hierarchical")).ID, 2*time.Minute)
	if again.State != JobDone || again.Result.StatsDigest != done.Result.StatsDigest {
		t.Fatalf("digest drifted across identical submissions: %q vs %q",
			done.Result.StatsDigest, again.Result.StatsDigest)
	}
}

// TestSingleFlightDedup is the acceptance demo in miniature: concurrent
// identical submissions perform exactly one simulation; everyone else is
// a cache hit or shares the in-flight run.
func TestSingleFlightDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 16})
	const n = 8
	views := make([]JobView, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/runs", tinyRun("FDIP"))
			if resp.StatusCode != http.StatusAccepted {
				resp.Body.Close()
				t.Errorf("submission %d: %d", i, resp.StatusCode)
				return
			}
			views[i] = decode[JobView](t, resp)
		}(i)
	}
	wg.Wait()
	for i := range views {
		if v := await(t, ts, views[i].ID, 2*time.Minute); v.State != JobDone {
			t.Fatalf("job %s finished %s (%s)", v.ID, v.State, v.Error)
		}
	}
	st := harness.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("%d identical jobs performed %d simulations, want 1 (stats %+v)", n, st.Misses, st)
	}
	if st.Hits+st.SharedWaits != n-1 {
		t.Fatalf("dedup served %d of %d duplicates (stats %+v)", st.Hits+st.SharedWaits, n-1, st)
	}
	if got := s.Metrics().Completed.Load(); got != n {
		t.Fatalf("completed %d of %d", got, n)
	}
}

// TestBackpressure429 fills the queue and expects a 429 with Retry-After
// — then frees it via cancellation of both the running and queued jobs.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	running := submit(t, ts, hugeRun(600_000))
	awaitState(t, ts, running.ID, JobRunning, 30*time.Second)
	queued := submit(t, ts, hugeRun(600_000))

	resp := postJSON(t, ts.URL+"/v1/runs", hugeRun(600_000))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp.Body.Close()
	if got := s.Metrics().Rejected.Load(); got != 1 {
		t.Fatalf("rejected counter %d", got)
	}

	// Cancel the queued job: it must go terminal without ever running.
	cresp := postJSON(t, ts.URL+"/v1/runs/"+queued.ID+"/cancel", nil)
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued returned %d", cresp.StatusCode)
	}
	if cv := decode[JobView](t, cresp); cv.State != JobCanceled || cv.Started != nil {
		t.Fatalf("queued cancel view %+v", cv)
	}

	// Cancel the running job: cooperative, should land quickly.
	cresp = postJSON(t, ts.URL+"/v1/runs/"+running.ID+"/cancel", nil)
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running returned %d", cresp.StatusCode)
	}
	cresp.Body.Close()
	if v := await(t, ts, running.ID, 30*time.Second); v.State != JobCanceled {
		t.Fatalf("running job finished %s (%s)", v.State, v.Error)
	}

	// The worker survived: a normal job still completes.
	v := submit(t, ts, tinyRun("FDIP"))
	if done := await(t, ts, v.ID, 2*time.Minute); done.State != JobDone {
		t.Fatalf("post-cancel job finished %s (%s)", done.State, done.Error)
	}
	if got := s.Metrics().Canceled.Load(); got != 2 {
		t.Fatalf("canceled counter %d, want 2", got)
	}
}

// TestDeadlineExceeded submits an impossible run with a tiny deadline:
// it must fail cleanly (no hang, no leaked worker). Deadline expiry is
// classified transient, so the default retry budget is consumed first.
func TestDeadlineExceeded(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	v := submit(t, ts, hugeRun(100))
	done := await(t, ts, v.ID, 60*time.Second)
	if done.State != JobFailed {
		t.Fatalf("deadline job finished %s (%s)", done.State, done.Error)
	}
	if !strings.Contains(done.Error, "deadline") {
		t.Fatalf("deadline job error %q", done.Error)
	}
	if done.Attempts != 3 || done.MaxRetries != 2 {
		t.Fatalf("deadline job attempts=%d max_retries=%d, want 3/2", done.Attempts, done.MaxRetries)
	}
	if got := s.Metrics().Retried.Load(); got != 2 {
		t.Fatalf("retried counter %d, want 2", got)
	}
	// The worker is free again.
	v = submit(t, ts, tinyRun("FDIP"))
	if done := await(t, ts, v.ID, 2*time.Minute); done.State != JobDone {
		t.Fatalf("post-deadline job finished %s (%s)", done.State, done.Error)
	}
}

func TestExperimentJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})
	req := RunRequest{
		Workloads:    []string{"gin"},
		WarmInstr:    50_000,
		MeasureInstr: 100_000,
	}
	resp := postJSON(t, ts.URL+"/v1/experiments/fig9", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("experiment submit returned %d", resp.StatusCode)
	}
	v := decode[JobView](t, resp)
	done := await(t, ts, v.ID, 5*time.Minute)
	if done.State != JobDone {
		t.Fatalf("experiment finished %s (%s)", done.State, done.Error)
	}
	if done.Table == nil || done.Table.ID != "Figure 9" || len(done.Table.Rows) == 0 {
		t.Fatalf("experiment table %+v", done.Table)
	}
	if !strings.Contains(done.Table.Text, "Figure 9") {
		t.Fatal("rendered table text missing")
	}
}

func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"missing workload", "/v1/runs", RunRequest{}, http.StatusBadRequest},
		{"unknown workload", "/v1/runs", RunRequest{Workload: "nope"}, http.StatusBadRequest},
		{"unknown scheme", "/v1/runs", RunRequest{Workload: "gin", Scheme: "nope"}, http.StatusBadRequest},
		{"bad fault spec", "/v1/runs", RunRequest{Workload: "gin", Fault: "nope"}, http.StatusBadRequest},
		{"unknown experiment", "/v1/experiments/fig99", RunRequest{}, http.StatusNotFound},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+c.url, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: got %d want %d", c.name, resp.StatusCode, c.want)
		}
		resp.Body.Close()
	}
	// Unknown fields fail loudly.
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"gin","shceme":"FDIP"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("typo field: got %d want 400", resp.StatusCode)
	}
	resp.Body.Close()
	// Unknown job id.
	gresp, err := http.Get(ts.URL + "/v1/runs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: got %d want 404", gresp.StatusCode)
	}
	gresp.Body.Close()
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})
	v := submit(t, ts, tinyRun("EFetch"))
	if done := await(t, ts, v.ID, 2*time.Minute); done.State != JobDone {
		t.Fatalf("job finished %s (%s)", done.State, done.Error)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[map[string]any](t, resp)
	if h["status"] != "ok" {
		t.Fatalf("healthz %+v", h)
	}

	// Prometheus text format.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"hpserved_jobs_accepted_total 1",
		"hpserved_jobs_completed_total 1",
		"hpserved_cache_misses_total",
		`hpserved_job_latency_ms_count{label="EFetch"} 1`,
		"# TYPE hpserved_queue_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}

	// JSON format.
	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	snap := decode[Snapshot](t, resp)
	if snap.Jobs.Completed != 1 || snap.Workers != 2 {
		t.Fatalf("json metrics %+v", snap)
	}
	if d, ok := snap.Latency["EFetch"]; !ok || d.Count != 1 || d.P50MS <= 0 {
		t.Fatalf("latency digest %+v", snap.Latency)
	}
	if got := s.Metrics().Accepted.Load(); got != 1 {
		t.Fatalf("accepted %d", got)
	}
}

// TestConcurrentMixedLoad exercises genuinely concurrent *different*
// simulations under -race: distinct schemes across parallel workers.
func TestConcurrentMixedLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 16})
	schemes := []string{"FDIP", "EFetch", "MANA", "EIP", "Hierarchical"}
	views := make([]JobView, len(schemes))
	for i, sc := range schemes {
		views[i] = submit(t, ts, tinyRun(sc))
	}
	for i, v := range views {
		done := await(t, ts, v.ID, 4*time.Minute)
		if done.State != JobDone {
			t.Fatalf("%s finished %s (%s)", schemes[i], done.State, done.Error)
		}
		if done.Result.IPC <= 0 {
			t.Fatalf("%s IPC %f", schemes[i], done.Result.IPC)
		}
	}
	// The run list endpoint sees them all.
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[map[string][]JobView](t, resp)
	if len(list["jobs"]) != len(schemes) {
		t.Fatalf("list has %d jobs, want %d", len(list["jobs"]), len(schemes))
	}
}

// TestServerClose verifies Close cancels live work and leaves every job
// terminal.
func TestServerClose(t *testing.T) {
	harness.DropCache()
	s, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	running := submit(t, ts, hugeRun(600_000))
	awaitState(t, ts, running.ID, JobRunning, 30*time.Second)
	queued := submit(t, ts, hugeRun(600_000))

	start := time.Now()
	s.Close()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("Close took %v", elapsed)
	}
	for _, id := range []string{running.ID, queued.ID} {
		j, ok := s.store.get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st := j.State(); !st.Terminal() {
			t.Fatalf("job %s left %s after Close", id, st)
		}
	}
	// Submission after Close is refused.
	resp := postJSON(t, ts.URL+"/v1/runs", tinyRun("FDIP"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-Close submit returned %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestJobStoreRetention verifies finished jobs are trimmed past the
// bound while live ones survive.
func TestJobStoreRetention(t *testing.T) {
	st := newJobStore(2)
	mk := func(id string, state JobState) *Job {
		j := &Job{ID: id, state: state, done: make(chan struct{})}
		if state.Terminal() {
			close(j.done)
		}
		return j
	}
	st.put(mk("a", JobDone))
	st.put(mk("b", JobDone))
	st.put(mk("c", JobQueued))
	if _, ok := st.get("a"); ok {
		t.Fatal("oldest finished job not trimmed")
	}
	if _, ok := st.get("c"); !ok {
		t.Fatal("live job trimmed")
	}
	if len(st.list()) != 2 {
		t.Fatalf("list %+v", st.list())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 99; i++ {
		h.observe(3) // → bucket ≤5
	}
	h.observe(40_000) // → bucket ≤60000
	if p50 := h.quantile(0.50); p50 != 5 {
		t.Fatalf("p50 %g want 5", p50)
	}
	if p99 := h.quantile(0.99); p99 != 5 {
		t.Fatalf("p99 %g want 5", p99)
	}
	if p100 := h.quantile(1.0); p100 != 60_000 {
		t.Fatalf("p100 %g want 60000", p100)
	}
	if h.quantile(0.5) != 5 || h.total != 100 {
		t.Fatalf("histogram state %+v", h)
	}
	var empty histogram
	if empty.quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}
