package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hprefetch/internal/harness"
	"hprefetch/internal/prefetch/feedback"
)

// JobState is a job's lifecycle position.
type JobState string

// The job lifecycle: queued → running → one of the three terminal
// states. Cancellation hits queued jobs before they ever run and running
// jobs through their context.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether s is a final state.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// RunRequest is the wire form of a simulation submission
// (POST /v1/runs). The zero value of every optional field keeps the
// harness default.
type RunRequest struct {
	// Workload and Scheme name the pair to simulate (run jobs only).
	Workload string `json:"workload,omitempty"`
	Scheme   string `json:"scheme,omitempty"`
	// Experiment is the figure/table id (experiment jobs only).
	Experiment string `json:"experiment,omitempty"`
	// WarmInstr / MeasureInstr override run length.
	WarmInstr    uint64 `json:"warm_instr,omitempty"`
	MeasureInstr uint64 `json:"measure_instr,omitempty"`
	// Workloads restricts an experiment's workload set.
	Workloads []string `json:"workloads,omitempty"`
	// Quick selects the scaled-down smoke configuration.
	Quick bool `json:"quick,omitempty"`
	// Fault is a fault-injection spec ("class[:rate[:seed]]").
	Fault string `json:"fault,omitempty"`
	// TimeoutMS bounds the job's wall-clock execution; 0 uses the
	// server default, and values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxRetries overrides the server's transient-failure retry budget
	// for this job: 0 keeps the server default, negative disables
	// retries, positive values are clamped to the server maximum.
	MaxRetries int `json:"max_retries,omitempty"`
	// TracePath names a server-side recorded trace: a trace file to
	// replay the named workload from, or a directory of
	// <workload>.hpt files for experiments (workloads without a trace
	// run live). Validated at submission; incompatible with Fault.
	TracePath string `json:"trace_path,omitempty"`
	// Schemes is the scheme axis of a fleet sweep (coordinator jobs
	// only). Plain run/experiment submissions must leave it empty — a
	// single hpserved names one scheme via Scheme.
	Schemes []string `json:"schemes,omitempty"`
	// Sample enables interval-sampled simulation instead of exact
	// measurement, as "warm,measure,skip[,seed]" in instructions (see
	// the harness sampling docs). Validated at submission; empty runs
	// exact.
	Sample string `json:"sample,omitempty"`
	// NoCorpus skips the server's corpus resolution (-corpus) for this
	// job, forcing live interpretation when no explicit trace_path is
	// given. The fleet coordinator sets it when re-dispatching a job
	// whose shard reported a quarantined corpus object, so the retry
	// cannot trip over shared damaged storage again.
	NoCorpus bool `json:"no_corpus,omitempty"`
	// PFDegree overrides the scheme's static prefetch degree (GHB issue
	// degree, Hierarchical replay burst budget); 0 keeps the default.
	PFDegree int `json:"pf_degree,omitempty"`
	// Governed wraps the scheme's prefetcher with the feedback-directed
	// throttling governor (adaptive degree/lookahead). Schemes without a
	// tunable prefetcher reject it at execution.
	Governed bool `json:"governed,omitempty"`
}

// RunResult summarises a completed simulation for the API.
type RunResult struct {
	Workload        string  `json:"workload"`
	Scheme          string  `json:"scheme"`
	IPC             float64 `json:"ipc"`
	SpeedupOverFDIP float64 `json:"speedup_over_fdip"`
	Instructions    uint64  `json:"instructions"`
	BranchMPKI      float64 `json:"branch_mpki"`
	L1IMPKI         float64 `json:"l1i_mpki"`
	// Prefetcher metrics (zero for FDIP/PerfectL1I).
	PrefetchAccuracy float64 `json:"prefetch_accuracy,omitempty"`
	CoverageL1       float64 `json:"coverage_l1,omitempty"`
	CoverageL2       float64 `json:"coverage_l2,omitempty"`
	LateFraction     float64 `json:"late_fraction,omitempty"`
	AvgDistance      float64 `json:"avg_prefetch_distance,omitempty"`
	// StatsDigest fingerprints every counter of the run; identical
	// requests to any server instance return identical digests, so
	// clients can verify reproducibility end to end.
	StatsDigest string `json:"stats_digest"`
	// Sampled-run metrics (RunRequest.Sample): interval count, mean and
	// standard error of per-interval IPC, and the detailed-instruction
	// fraction. Zero/absent for exact runs.
	SampleIntervals    int     `json:"sample_intervals,omitempty"`
	SampleIPCMean      float64 `json:"sample_ipc_mean,omitempty"`
	SampleIPCStdErr    float64 `json:"sample_ipc_stderr,omitempty"`
	SampleDetailedFrac float64 `json:"sample_detailed_frac,omitempty"`
	// TraceSource reports where the run's event stream came from
	// ("live", "replay", "corpus", "record"); empty on results computed
	// by builds that predate it. CorpusHealed marks runs that found
	// their corpus object damaged and self-healed (quarantine +
	// re-record) — the statistics are identical to a clean run's.
	TraceSource  string `json:"trace_source,omitempty"`
	CorpusHealed bool   `json:"corpus_healed,omitempty"`
	// TLB-aware prefetch metrics: the share of issued prefetches whose
	// page missed the ITLB at issue, and the count a TLB-aware scheme
	// withheld instead of issuing blind.
	TLBMissFraction float64 `json:"tlb_miss_fraction,omitempty"`
	TLBDropped      uint64  `json:"tlb_dropped,omitempty"`
	// Governor is the feedback governor's end-of-run summary (level,
	// transition counters, schedule); absent on ungoverned runs.
	Governor *feedback.Summary `json:"governor,omitempty"`
}

// TableResult is a rendered experiment table for the API.
type TableResult struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	Text   string     `json:"text"`
}

// Job is one queued unit of work and its eventual outcome. All mutable
// fields are guarded by mu; done closes exactly once on entering a
// terminal state.
type Job struct {
	ID string
	// Kind is "run" or "experiment".
	Kind string
	Req  RunRequest
	// rc is the resolved harness configuration (validated at submit).
	rc harness.RunConfig
	// timeout is the resolved per-job deadline.
	timeout time.Duration

	mu        sync.Mutex
	state     JobState
	err       string
	run       *RunResult
	table     *TableResult
	submitted time.Time
	started   time.Time
	finished  time.Time
	// cancelRequested marks a cancel that arrived while queued; the
	// worker skips the job instead of running it.
	cancelRequested bool
	// cancel aborts the running simulation's context.
	cancel context.CancelFunc
	// attempts counts execution attempts begun (journal-replayed jobs
	// start with the attempts their previous life recorded); maxRetries
	// is the job's transient-failure retry budget beyond the first
	// attempt of each life.
	attempts   int
	maxRetries int
	// lastBackoff remembers the previous retry delay for decorrelated
	// jitter.
	lastBackoff time.Duration

	done chan struct{}
}

// JobView is the JSON projection of a Job (GET /v1/runs/{id}).
type JobView struct {
	ID        string       `json:"id"`
	Kind      string       `json:"kind"`
	State     JobState     `json:"state"`
	Request   RunRequest   `json:"request"`
	Error     string       `json:"error,omitempty"`
	Result    *RunResult   `json:"result,omitempty"`
	Table     *TableResult `json:"table,omitempty"`
	Submitted time.Time    `json:"submitted"`
	Started   *time.Time   `json:"started,omitempty"`
	Finished  *time.Time   `json:"finished,omitempty"`
	// WaitMS and RunMS are queue latency and execution latency.
	WaitMS int64 `json:"wait_ms,omitempty"`
	RunMS  int64 `json:"run_ms,omitempty"`
	// Attempts counts execution attempts begun; MaxRetries is the job's
	// transient-failure retry budget.
	Attempts   int `json:"attempts,omitempty"`
	MaxRetries int `json:"max_retries,omitempty"`
}

// View snapshots the job for serialisation.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.ID,
		Kind:       j.Kind,
		State:      j.state,
		Request:    j.Req,
		Error:      j.err,
		Result:     j.run,
		Table:      j.table,
		Submitted:  j.submitted,
		Attempts:   j.attempts,
		MaxRetries: j.maxRetries,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
		v.WaitMS = j.started.Sub(j.submitted).Milliseconds()
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
		if !j.started.IsZero() {
			v.RunMS = j.finished.Sub(j.started).Milliseconds()
		}
	}
	return v
}

// State returns the current lifecycle position.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// begin transitions queued → running, returning the 1-based attempt
// number, or false when the job was cancelled while waiting (the worker
// must skip it).
func (j *Job) begin(cancel context.CancelFunc) (int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelRequested || j.state.Terminal() {
		return 0, false
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.attempts++
	return j.attempts, true
}

// retryBudget snapshots the attempt counters for the retry decision.
func (j *Job) retryBudget() (attempts, maxRetries int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts, j.maxRetries
}

// prevBackoff returns the previous retry delay (decorrelated jitter
// input).
func (j *Job) prevBackoff() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastBackoff
}

// retryReset moves a running job back to the queue for another attempt
// after a transient failure, remembering the failure message and the
// chosen backoff. It refuses (false) when the job is no longer running
// or a cancel arrived — the caller must finish it instead.
func (j *Job) retryReset(cause string, backoff time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobRunning || j.cancelRequested {
		return false
	}
	j.state = JobQueued
	j.cancel = nil
	// Surface the transient error while the job waits for its retry; a
	// later terminal transition overwrites it.
	j.err = cause
	j.lastBackoff = backoff
	return true
}

// finish moves the job to a terminal state, reporting whether this call
// performed the transition (false when already terminal — callers use
// that to count each outcome exactly once).
func (j *Job) finish(state JobState, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finishLocked(state, errMsg)
}

func (j *Job) finishLocked(state JobState, errMsg string) bool {
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.err = errMsg
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
	return true
}

// cancelOutcome reports what requestCancel did.
type cancelOutcome int

const (
	// cancelNoop: the job was already terminal.
	cancelNoop cancelOutcome = iota
	// cancelledQueued: the job never ran; it is terminal now and the
	// caller owns the metrics increment.
	cancelledQueued
	// cancellingRunning: the running job's context was cancelled; the
	// worker finishes (and counts) it when the simulator notices.
	cancellingRunning
)

// requestCancel asks the job to stop. A queued job goes terminal
// immediately (its worker will skip it); a running job gets its context
// cancelled and finishes cooperatively.
func (j *Job) requestCancel() cancelOutcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return cancelNoop
	}
	j.cancelRequested = true
	if j.state == JobQueued {
		j.finishLocked(JobCanceled, "canceled while queued")
		return cancelledQueued
	}
	if j.cancel != nil {
		j.cancel()
	}
	return cancellingRunning
}

// jobStore is the id → Job map with bounded retention of finished jobs.
type jobStore struct {
	mu sync.Mutex
	m  map[string]*Job
	// order remembers insertion order for retention trimming.
	order []string
	max   int
}

func newJobStore(max int) *jobStore {
	return &jobStore{m: map[string]*Job{}, max: max}
}

func (s *jobStore) put(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[j.ID] = j
	s.order = append(s.order, j.ID)
	// Trim oldest *terminal* jobs past the bound; live jobs are never
	// dropped, so the store can transiently exceed max while the queue
	// is deep.
	for len(s.m) > s.max {
		trimmed := false
		for i, id := range s.order {
			if jb, ok := s.m[id]; ok && jb.State().Terminal() {
				delete(s.m, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				trimmed = true
				break
			}
		}
		if !trimmed {
			break
		}
	}
}

func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.m[id]
	return j, ok
}

// list returns views of every retained job, newest first.
func (s *jobStore) list() []JobView {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.m))
	for i := len(s.order) - 1; i >= 0; i-- {
		if j, ok := s.m[s.order[i]]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	return out
}

// newJobID formats a monotonic job identifier.
func newJobID(n uint64) string { return fmt.Sprintf("job-%06d", n) }
