package tracefile

import (
	"bytes"
	"testing"

	"hprefetch/internal/isa"
)

// fuzzSeedBody builds a canonical frame body from a short hand-rolled
// event sequence exercising every encoding path: fall-through,
// conditional, call/return, tagged edges, address jumps, function
// changes and every attribute-delta kind.
func fuzzSeedBody(tb testing.TB) []byte {
	tb.Helper()
	mk := func(addr isa.Addr, n uint16, br isa.BranchKind, target isa.Addr, fn isa.FuncID, taken, tagged bool) isa.BlockEvent {
		ev := isa.BlockEvent{Addr: addr, NumInstr: n, Branch: br, Func: fn, Taken: taken, Tagged: tagged}
		if br == isa.BrNone {
			ev.Target = ev.EndAddr()
		} else {
			ev.Target = target
			ev.BrPC = ev.EndAddr() - isa.InstrSize
		}
		return ev
	}
	events := []isa.BlockEvent{
		mk(0x400000, 16, isa.BrNone, 0, 0, false, false),
		mk(0x400040, 3, isa.BrCond, 0x400100, 0, true, false),
		mk(0x400100, 8, isa.BrCall, 0x410000, 0, false, true),
		mk(0x410000, 2, isa.BrRet, 0x400120, 7, false, true),
		mk(0x400120, 5, isa.BrJump, 0x400000, 0, false, false),
	}
	attrs := []Attrs{
		{Requests: 1, Type: 0, Stage: -1, Depth: 0, Request: 3},
		{Requests: 1, Type: 0, Stage: 2, Depth: 0, Request: 3},
		{Requests: 1, Type: 0, Stage: 2, Depth: 1, Request: 1}, // backwards id hop (interleaving)
		{Requests: 1, Type: 0, Stage: 2, Depth: 0, Request: 1, Done: true},
		{Requests: 2, Type: 1, Stage: -1, Depth: 0, Request: 4},
	}
	start := frameStart{Instr: 123, A: Attrs{Requests: 1, Type: 0, Stage: -1, Depth: 0, Request: 2}}
	return encodeFrameBody(start, events, attrs)
}

// FuzzTraceDecode throws arbitrary bytes at the frame decoder. The
// invariants: no panic, and — because the encoding is canonical (minimal
// varints, no zero deltas under change flags, footer cross-checks) —
// any accepted body re-encodes to exactly itself.
func FuzzTraceDecode(f *testing.F) {
	seed := fuzzSeedBody(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:3])
	f.Add([]byte{})
	// A hostile event count right at the front.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})

	f.Fuzz(func(t *testing.T, data []byte) {
		start, events, attrs, err := decodeFrameBody(data)
		if err != nil {
			return
		}
		out := encodeFrameBody(start, events, attrs)
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted frame body is not canonical: in %d bytes, out %d bytes", len(data), len(out))
		}
		// Decoded events must satisfy the stream invariants the writer
		// enforces, so a decoded frame is always re-recordable.
		for i := range events {
			ev := &events[i]
			if ev.NumInstr == 0 || ev.NumInstr > isa.InstrPerBlock {
				t.Fatalf("event %d: instruction count %d escaped validation", i, ev.NumInstr)
			}
			if ev.Branch == isa.BrNone && (ev.Target != ev.EndAddr() || ev.BrPC != 0) {
				t.Fatalf("event %d: fall-through invariant violated", i)
			}
			if ev.Branch != isa.BrNone && ev.BrPC != ev.EndAddr()-isa.InstrSize {
				t.Fatalf("event %d: branch PC invariant violated", i)
			}
		}
	})
}

// TestFuzzSeedRoundTrips pins the seed corpus itself (the fuzz target
// only proves it for inputs the fuzzer happens to accept).
func TestFuzzSeedRoundTrips(t *testing.T) {
	body := fuzzSeedBody(t)
	start, events, attrs, err := decodeFrameBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 || len(attrs) != 5 {
		t.Fatalf("decoded %d events, %d attrs", len(events), len(attrs))
	}
	if start.Instr != 123 {
		t.Fatalf("start instr %d", start.Instr)
	}
	if !bytes.Equal(encodeFrameBody(start, events, attrs), body) {
		t.Fatal("seed body does not round-trip")
	}
}
