package tracefile

import (
	"hprefetch/internal/isa"
)

// The frame body codec. A frame is a self-contained slice of the event
// stream: its header carries the engine counters as they stood before
// the frame's first event (so attribution deltas have a base and replay
// can resume mid-stream), its footer repeats the running instruction
// and request counts for integrity, and each event is delta-encoded
// against its predecessor:
//
//	u8 flags      branch kind (bits 0-2), taken, tagged, func-changed,
//	              attrs-changed, addr-jump
//	uvarint       NumInstr
//	[addr-jump]   zigzag Addr − previous Target (omitted when the event
//	              continues where the last one pointed — the common case)
//	[branch≠none] zigzag Target − EndAddr
//	[func-chg]    zigzag Func − previous Func
//	[attrs-chg]   u8 attr bits, then per set bit: requests delta (uvarint,
//	              ≥1), new type (uvarint), new stage (zigzag), depth
//	              delta (zigzag, ≠0), request-id delta (zigzag, ≠0; ids
//	              hop backwards when an interleaver switches lanes), done
//	              flip (no payload — the bit itself toggles the flag)
//
// BrPC and a BrNone event's Target are derived from Addr and NumInstr,
// never stored. The decoder enforces canonical form throughout —
// minimal varints, no set flag with a zero delta, in-range values, a
// footer matching the recomputed totals — so any accepted body
// re-encodes to identical bytes (FuzzTraceDecode checks exactly this).

// Event flag bits.
const (
	evBranchMask byte = 0x07
	evTaken      byte = 1 << 3
	evTagged     byte = 1 << 4
	evFuncDelta  byte = 1 << 5
	evAttrDelta  byte = 1 << 6
	evAddrJump   byte = 1 << 7
)

// Attribute-change bits.
const (
	atRequests byte = 1 << 0
	atType     byte = 1 << 1
	atStage    byte = 1 << 2
	atDepth    byte = 1 << 3
	atRequest  byte = 1 << 4
	atDone     byte = 1 << 5
)

// Sanity bounds for decoded attribution values: generous multiples of
// anything the engine produces, tight enough that corrupt input cannot
// smuggle absurd state into a replayed run.
const (
	maxTypeValue = 1 << 20
	maxDepth     = 1 << 20
	// maxRequestID keeps request-id arithmetic inside int64 range so the
	// zigzag deltas below can never overflow.
	maxRequestID = uint64(1) << 62
)

// frameStart is the engine-observable state immediately before a
// frame's first event.
type frameStart struct {
	Instr uint64
	A     Attrs
}

// encodeFrameBody serialises one frame (uncompressed form).
// len(attrs) must equal len(events).
func encodeFrameBody(start frameStart, events []isa.BlockEvent, attrs []Attrs) []byte {
	w := &bwriter{buf: make([]byte, 0, 6*len(events)+64)}
	w.uvarint(uint64(len(events)))
	w.uvarint(start.Instr)
	w.uvarint(start.A.Requests)
	w.uvarint(uint64(start.A.Type))
	w.zigzag(int64(start.A.Stage))
	w.uvarint(uint64(start.A.Depth))
	w.uvarint(start.A.Request)
	done := byte(0)
	if start.A.Done {
		done = 1
	}
	w.u8(done)

	prevTarget := isa.Addr(0)
	prevFunc := isa.FuncID(0)
	prev := start.A
	instr := start.Instr
	for i := range events {
		ev := &events[i]
		a := attrs[i]
		flags := byte(ev.Branch) & evBranchMask
		if ev.Taken {
			flags |= evTaken
		}
		if ev.Tagged {
			flags |= evTagged
		}
		addrDelta := int64(ev.Addr) - int64(prevTarget)
		if addrDelta != 0 {
			flags |= evAddrJump
		}
		funcDelta := int64(ev.Func) - int64(prevFunc)
		if funcDelta != 0 {
			flags |= evFuncDelta
		}
		var ab byte
		if a.Requests != prev.Requests {
			ab |= atRequests
		}
		if a.Type != prev.Type {
			ab |= atType
		}
		if a.Stage != prev.Stage {
			ab |= atStage
		}
		if a.Depth != prev.Depth {
			ab |= atDepth
		}
		if a.Request != prev.Request {
			ab |= atRequest
		}
		if a.Done != prev.Done {
			ab |= atDone
		}
		if ab != 0 {
			flags |= evAttrDelta
		}

		w.u8(flags)
		w.uvarint(uint64(ev.NumInstr))
		if addrDelta != 0 {
			w.zigzag(addrDelta)
		}
		if ev.Branch != isa.BrNone {
			w.zigzag(int64(ev.Target) - int64(ev.EndAddr()))
		}
		if funcDelta != 0 {
			w.zigzag(funcDelta)
		}
		if ab != 0 {
			w.u8(ab)
			if ab&atRequests != 0 {
				w.uvarint(a.Requests - prev.Requests)
			}
			if ab&atType != 0 {
				w.uvarint(uint64(a.Type))
			}
			if ab&atStage != 0 {
				w.zigzag(int64(a.Stage))
			}
			if ab&atDepth != 0 {
				w.zigzag(int64(a.Depth) - int64(prev.Depth))
			}
			if ab&atRequest != 0 {
				w.zigzag(int64(a.Request) - int64(prev.Request))
			}
			// atDone carries no payload: the bit is the toggle.
		}

		prevTarget = ev.Target
		prevFunc = ev.Func
		prev = a
		instr += uint64(ev.NumInstr)
	}
	w.uvarint(instr)
	w.uvarint(prev.Requests)
	return w.buf
}

// decodeFrameBody parses one frame body, enforcing canonical encoding.
// It never panics on corrupt input.
func decodeFrameBody(body []byte) (frameStart, []isa.BlockEvent, []Attrs, error) {
	return decodeFrameBodyInto(body, nil, nil)
}

// decodeFrameBodyInto is decodeFrameBody appending into caller-provided
// slices — the Reader's steady-state path, which reuses its frame
// buffers so replay allocates nothing per frame.
func decodeFrameBodyInto(body []byte, events []isa.BlockEvent, attrs []Attrs) (frameStart, []isa.BlockEvent, []Attrs, error) {
	r := &breader{buf: body}
	var start frameStart
	count := r.uvarint()
	start.Instr = r.uvarint()
	start.A.Requests = r.uvarint()
	typ := r.uvarint()
	stage := r.zigzag()
	depth := r.uvarint()
	req := r.uvarint()
	done := r.u8()
	if r.err == nil {
		switch {
		case count > maxFrameEvents:
			r.fail("implausible frame event count %d", count)
		case 2*count > uint64(len(body)-r.off):
			r.fail("frame event count %d exceeds payload", count)
		case typ > maxTypeValue:
			r.fail("start type %d out of range", typ)
		case stage < -32768 || stage > 32767:
			r.fail("start stage %d out of range", stage)
		case depth > maxDepth:
			r.fail("start depth %d out of range", depth)
		case req > maxRequestID:
			r.fail("start request id %d out of range", req)
		case done > 1:
			r.fail("start done flag %d out of range", done)
		}
	}
	if r.err != nil {
		return start, nil, nil, r.err
	}
	start.A.Type = int(typ)
	start.A.Stage = int16(stage)
	start.A.Depth = int(depth)
	start.A.Request = req
	start.A.Done = done == 1

	if uint64(cap(events)) < count {
		events = make([]isa.BlockEvent, 0, count)
	}
	if uint64(cap(attrs)) < count {
		attrs = make([]Attrs, 0, count)
	}
	prevTarget := isa.Addr(0)
	prevFunc := isa.FuncID(0)
	prev := start.A
	instr := start.Instr
	for i := uint64(0); i < count && r.err == nil; i++ {
		flags := r.u8()
		var ev isa.BlockEvent
		ev.Branch = isa.BranchKind(flags & evBranchMask)
		if ev.Branch > isa.BrRet {
			r.fail("event %d: branch kind %d out of range", i, ev.Branch)
			break
		}
		ev.Taken = flags&evTaken != 0
		ev.Tagged = flags&evTagged != 0
		n := r.uvarint()
		if r.err == nil && (n == 0 || n > isa.InstrPerBlock) {
			r.fail("event %d: instruction count %d out of range", i, n)
			break
		}
		ev.NumInstr = uint16(n)
		addr := int64(prevTarget)
		if flags&evAddrJump != 0 {
			d := r.zigzag()
			if r.err == nil && d == 0 {
				r.fail("event %d: addr-jump flag with zero delta", i)
				break
			}
			addr += d
		}
		if addr < 0 {
			r.fail("event %d: negative address", i)
			break
		}
		ev.Addr = isa.Addr(addr)
		end := ev.EndAddr()
		if ev.Branch != isa.BrNone {
			tgt := int64(end) + r.zigzag()
			if tgt < 0 {
				r.fail("event %d: negative branch target", i)
				break
			}
			ev.Target = isa.Addr(tgt)
			ev.BrPC = end - isa.InstrSize
		} else {
			ev.Target = end
		}
		fn := int64(prevFunc)
		if flags&evFuncDelta != 0 {
			d := r.zigzag()
			if r.err == nil && d == 0 {
				r.fail("event %d: func-changed flag with zero delta", i)
				break
			}
			fn += d
		}
		if fn < 0 || fn > int64(^uint32(0)) {
			r.fail("event %d: function id out of range", i)
			break
		}
		ev.Func = isa.FuncID(fn)

		a := prev
		if flags&evAttrDelta != 0 {
			ab := r.u8()
			if r.err == nil && (ab == 0 || ab&^(atRequests|atType|atStage|atDepth|atRequest|atDone) != 0) {
				r.fail("event %d: invalid attr bits %#x", i, ab)
				break
			}
			if ab&atRequests != 0 {
				d := r.uvarint()
				if r.err == nil && d == 0 {
					r.fail("event %d: request flag with zero delta", i)
					break
				}
				a.Requests += d
			}
			if ab&atType != 0 {
				t := r.uvarint()
				if r.err == nil && (t == uint64(prev.Type) || t > maxTypeValue) {
					r.fail("event %d: non-canonical type %d", i, t)
					break
				}
				a.Type = int(t)
			}
			if ab&atStage != 0 {
				s := r.zigzag()
				if r.err == nil && (s == int64(prev.Stage) || s < -32768 || s > 32767) {
					r.fail("event %d: non-canonical stage %d", i, s)
					break
				}
				a.Stage = int16(s)
			}
			if ab&atDepth != 0 {
				d := r.zigzag()
				nd := int64(prev.Depth) + d
				if r.err == nil && (d == 0 || nd < 0 || nd > maxDepth) {
					r.fail("event %d: non-canonical depth delta %d", i, d)
					break
				}
				a.Depth = int(nd)
			}
			if ab&atRequest != 0 {
				d := r.zigzag()
				nr := int64(prev.Request) + d
				if r.err == nil && (d == 0 || nr < 0 || uint64(nr) > maxRequestID) {
					r.fail("event %d: non-canonical request-id delta %d", i, d)
					break
				}
				a.Request = uint64(nr)
			}
			if ab&atDone != 0 {
				a.Done = !prev.Done
			}
		}

		events = append(events, ev)
		attrs = append(attrs, a)
		prevTarget = ev.Target
		prevFunc = ev.Func
		prev = a
		instr += uint64(ev.NumInstr)
	}
	if r.err != nil {
		return start, nil, nil, r.err
	}
	endInstr := r.uvarint()
	endReq := r.uvarint()
	if r.err == nil && (endInstr != instr || endReq != prev.Requests) {
		r.fail("frame footer mismatch: instructions %d/%d, requests %d/%d",
			endInstr, instr, endReq, prev.Requests)
	}
	if err := r.done(); err != nil {
		return start, nil, nil, err
	}
	return start, events, attrs, nil
}
