// Package tracefile persists the execution engine's retired block-event
// stream (isa.BlockEvent plus the engine's per-event attribution) as a
// compact, self-describing on-disk trace, and replays it as a streaming
// event source. Recording decouples the expensive stream generation
// (interpreting the synthetic program) from the fast timing simulation:
// record once, replay many — every replayed run is observationally
// identical to the live run it was captured from, so statistics digests
// match bit for bit.
//
// File layout:
//
//	u64 magic | u16 version                  fixed 10-byte prefix
//	u32 len | header payload | u32 CRC-32    workload, seed, target
//	frame record*                            ~64K events each
//	index record                             per-frame offsets + totals
//	u64 index offset | u64 trailer magic     fixed 16-byte trailer
//
// Every record is framed journal-style (u32 payload length, payload,
// u32 CRC-32/IEEE of the payload); the payload's first byte is the
// record type. A frame record carries the uncompressed body length and
// a flate-compressed frame body; the body itself is varint + delta
// encoded (see frame.go) and starts with the running instruction and
// request counters, so each frame decodes independently and the index
// makes any instruction position seekable without decoding the prefix.
//
// A trace cut mid-write stays readable: the reader replays every event
// up to the last complete frame and then reports ErrTruncated (the
// journal's torn-tail semantics). A complete trace ends with the index
// record, after which the reader reports ErrExhausted.
package tracefile

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hprefetch/internal/isa"
)

const (
	// traceMagic identifies the trace format ("HPTR" + version packing,
	// journal-style).
	traceMagic uint64 = 0x4850_5452_0001_0001
	// traceVersion is the current format version. Version 2 added the
	// per-request boundary marks (Attrs.Request/Done) that per-request
	// tail metrics replay from; version-1 traces are rejected with a
	// re-record hint.
	traceVersion uint16 = 2
	// headerPrefixSize is the fixed magic + version prefix.
	headerPrefixSize = 10
	// trailerMagic terminates a completely written trace.
	trailerMagic uint64 = 0x4850_5452_1D8E_7A11
	// trailerSize is the fixed index-offset + magic trailer.
	trailerSize = 16

	// recTypeFrame and recTypeIndex discriminate record payloads.
	recTypeFrame byte = 1
	recTypeIndex byte = 2

	// DefaultFrameEvents is how many events a frame holds before it is
	// compressed and flushed.
	DefaultFrameEvents = 65536
	// maxFrameEvents bounds the per-frame event count a decoder will
	// accept (a hostile count cannot force a huge allocation).
	maxFrameEvents = 1 << 21
	// maxRecordBytes bounds a single record's framed payload.
	maxRecordBytes = 1 << 28
)

// TailEvents is how many events past the recording target a recorder
// appends before closing the trace. The simulator's lookahead ring
// pulls a handful of events beyond the last retired instruction, and
// different schemes (and the FDIP baseline of a speedup comparison)
// pull slightly different amounts — the tail lets one recorded trace
// feed any scheme's lookahead across the same warm+measure window.
const TailEvents = 4096

// ErrTruncated reports a trace whose tail is torn or missing — a clean
// EOF mid-record, the signature of a recording interrupted mid-write.
// Every event up to the last complete frame was replayed; the readable
// prefix is trustworthy, only the tail is gone.
var ErrTruncated = errors.New("tracefile: truncated trace")

// ErrCorrupt reports a trace whose bytes are damaged in place: a record
// checksum that does not match its payload, a malformed or non-minimal
// varint, a frame-counter footer disagreeing with the decoded events, a
// stream discontinuity between frames, or structural damage inside a
// sealed (trailer-carrying) file. Unlike ErrTruncated, corruption means
// the readable prefix cannot be trusted either — consumers must fail
// stop and never replay a prefix of a corrupt trace.
var ErrCorrupt = errors.New("tracefile: corrupt trace")

// ErrExhausted reports reading past the clean end of a complete trace.
var ErrExhausted = errors.New("tracefile: trace exhausted")

// corruptf wraps ErrCorrupt with a located description.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Meta identifies what a trace was recorded from. Replay validates
// workload and seed so a trace can never silently stand in for a
// different stream.
type Meta struct {
	// Workload is the workload preset name.
	Workload string
	// Seed is the engine seed the stream was generated with.
	Seed uint64
	// TargetInstructions is the instruction count the recording aimed to
	// cover (advisory; the actual stream runs TailEvents further).
	TargetInstructions uint64
}

// Attrs is the engine's observable attribution state sampled after an
// event: the counters the simulator and the Figure 1 instrumentation
// read between Next calls. Recording them per event is what makes
// replayed per-request-type and per-stage views identical to live ones.
type Attrs struct {
	// Requests is the number of requests started so far.
	Requests uint64
	// Type is the request type being processed.
	Type int
	// Stage is the effective pipeline stage (program.NoStage outside one).
	Stage int16
	// Depth is the simulated call-stack depth.
	Depth int
	// Request is the id of the request the event belongs to. Under an
	// interleaving source (microservice load generation) ids are unique
	// per in-flight request but not monotonic in the stream.
	Request uint64
	// Done marks the event as its request's last: the fetch-stall
	// accumulated for Request is complete once this event retires.
	Done bool
}

// Source is the event-stream interface a Recorder tees: sim.EventSource
// plus the sim.RequestMarker per-request marks. trace.Engine, Reader and
// Recorder all satisfy both.
type Source interface {
	Next() isa.BlockEvent
	Instructions() uint64
	Requests() uint64
	CurrentType() int
	Stage() int16
	Depth() int
	CurrentRequest() uint64
	RequestDone() bool
}

// bwriter builds varint-encoded payloads.
type bwriter struct{ buf []byte }

func (w *bwriter) u8(v byte)        { w.buf = append(w.buf, v) }
func (w *bwriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *bwriter) zigzag(v int64)   { w.uvarint(uint64(v)<<1 ^ uint64(v>>63)) }
func (w *bwriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// breader decodes varint payloads with bounds checking and strict
// canonical form: non-minimal varint encodings are rejected, so every
// accepted payload re-encodes to identical bytes.
type breader struct {
	buf []byte
	off int
	err error
}

func (r *breader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("tracefile: "+format, args...)
	}
}

func (r *breader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("unexpected end of payload at offset %d", r.off)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *breader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	if n > 1 && r.buf[r.off+n-1] == 0 {
		r.fail("non-minimal varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *breader) zigzag() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (r *breader) str(maxLen int) string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(maxLen) || n > uint64(len(r.buf)-r.off) {
		r.fail("implausible string length %d at offset %d", n, r.off)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// done reports full consumption; trailing bytes mean corruption.
func (r *breader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("tracefile: %d trailing payload bytes", len(r.buf)-r.off)
	}
	return nil
}

// encodeMeta serialises the header payload.
func encodeMeta(m Meta) []byte {
	w := &bwriter{buf: make([]byte, 0, len(m.Workload)+24)}
	w.str(m.Workload)
	w.uvarint(m.Seed)
	w.uvarint(m.TargetInstructions)
	return w.buf
}

// decodeMeta parses the header payload.
func decodeMeta(payload []byte) (Meta, error) {
	r := &breader{buf: payload}
	var m Meta
	m.Workload = r.str(1 << 12)
	m.Seed = r.uvarint()
	m.TargetInstructions = r.uvarint()
	return m, r.done()
}
