package tracefile

import (
	"errors"
	"fmt"

	"hprefetch/internal/isa"
)

// Loaded is a fully decoded in-memory trace. Decoding (CRC checks,
// inflate, varint/delta reconstruction) happens once in Load; Replay
// then hands out independent cursors whose Next is an array read —
// strictly cheaper than regenerating the stream live. This is the
// intended shape for replay-backed experiments, where one recorded
// trace feeds every scheme of a comparison: decode once, replay many.
type Loaded struct {
	meta       Meta
	startInstr uint64
	startAttrs Attrs
	events     []isa.BlockEvent
	attrs      []Attrs
	// Struct-of-arrays view of the per-event request marks, built once
	// at load time so the simulator's batch fast path reads two flat
	// arrays instead of chasing Attrs structs per event.
	reqID []uint64
	done  []bool
	term  error // terminal condition: ErrExhausted, or wraps ErrTruncated
}

// Load decodes an entire trace into memory. A torn tail is not an
// error here either: the intact prefix loads and every cursor reports
// the truncation (via Err) once it runs past the end, mirroring the
// streaming Reader's contract. Corruption is different: a trace whose
// decode ends in ErrCorrupt fails Load outright — a damaged trace must
// never yield a replayable prefix.
func Load(path string) (*Loaded, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	l := &Loaded{
		meta:       r.Meta(),
		startInstr: r.Instructions(),
		startAttrs: r.cur,
	}
	if r.index != nil {
		l.events = make([]isa.BlockEvent, 0, r.total.Events)
		l.attrs = make([]Attrs, 0, r.total.Events)
	}
	for {
		ev := r.Next()
		if ev.NumInstr == 0 {
			break
		}
		l.events = append(l.events, ev)
		l.attrs = append(l.attrs, r.cur)
	}
	if errors.Is(r.Err(), ErrCorrupt) {
		return nil, fmt.Errorf("tracefile: %s: %w", path, r.Err())
	}
	l.term = r.Err()
	l.reqID = make([]uint64, len(l.events))
	l.done = make([]bool, len(l.events))
	for i := range l.attrs {
		l.reqID[i] = l.attrs[i].Request
		l.done[i] = l.attrs[i].Done
	}
	return l, nil
}

// Meta returns the trace's identity header.
func (l *Loaded) Meta() Meta { return l.meta }

// Events returns the number of decoded events.
func (l *Loaded) Events() int { return len(l.events) }

// Complete reports whether the decoded stream reached the trace's
// clean end (false for a truncated file's intact prefix).
func (l *Loaded) Complete() bool { return l.term == ErrExhausted }

// Replay returns a fresh cursor positioned at the recorded pre-stream
// state. Cursors are independent; any number may stream concurrently.
func (l *Loaded) Replay() *MemReader {
	return &MemReader{l: l, instr: l.startInstr, cur: l.startAttrs}
}

// MemReader streams a Loaded trace as an event source (it satisfies
// Source and sim.EventSource) with the same sentinel-and-Err contract
// as the file-backed Reader.
type MemReader struct {
	l     *Loaded
	pos   int
	instr uint64
	cur   Attrs
}

// Next returns the next event, or a zero event once the stream has
// ended — inspect Err for whether the end was clean.
func (m *MemReader) Next() isa.BlockEvent {
	if m.pos >= len(m.l.events) {
		return isa.BlockEvent{}
	}
	ev := m.l.events[m.pos]
	m.cur = m.l.attrs[m.pos]
	m.pos++
	m.instr += uint64(ev.NumInstr)
	return ev
}

// Err mirrors Reader.Err: nil while events remain, then the loaded
// trace's terminal condition.
func (m *MemReader) Err() error {
	if m.pos < len(m.l.events) {
		return nil
	}
	return m.l.term
}

// Instructions, Requests, CurrentType, Stage, Depth, CurrentRequest and
// RequestDone follow the engine's sampling contract (state after the
// most recent event).
func (m *MemReader) Instructions() uint64   { return m.instr }
func (m *MemReader) Requests() uint64       { return m.cur.Requests }
func (m *MemReader) CurrentType() int       { return m.cur.Type }
func (m *MemReader) Stage() int16           { return m.cur.Stage }
func (m *MemReader) Depth() int             { return m.cur.Depth }
func (m *MemReader) CurrentRequest() uint64 { return m.cur.Request }
func (m *MemReader) RequestDone() bool      { return m.cur.Done }

// Batch returns the undelivered remainder of the stream as flat
// parallel slices — the events, each event's request id, and its
// request-done flip — satisfying sim.BatchSource. The slices alias the
// Loaded trace and must not be mutated; a consumer that takes the batch
// view owns the cursor and must not interleave Next calls.
func (m *MemReader) Batch() (ev []isa.BlockEvent, req []uint64, done []bool) {
	return m.l.events[m.pos:], m.l.reqID[m.pos:], m.l.done[m.pos:]
}

// BatchRequests returns what Requests would read after n more events
// had been delivered through Next — the batch consumer samples it at
// its pull high-water for digest parity with the interface path.
func (m *MemReader) BatchRequests(n int) uint64 {
	i := m.pos + n
	if i <= 0 {
		return m.l.startAttrs.Requests
	}
	if i > len(m.l.attrs) {
		i = len(m.l.attrs)
	}
	return m.l.attrs[i-1].Requests
}

// BatchConsume advances the cursor past the first n events of the most
// recent Batch view, as if Next had been called n times. The batch
// consumer calls it on exhaustion so Instructions and Err report the
// same terminal state the interface path would.
func (m *MemReader) BatchConsume(n int) {
	end := m.pos + n
	if end > len(m.l.events) {
		end = len(m.l.events)
	}
	for ; m.pos < end; m.pos++ {
		m.instr += uint64(m.l.events[m.pos].NumInstr)
	}
	if m.pos > 0 {
		m.cur = m.l.attrs[m.pos-1]
	}
}
