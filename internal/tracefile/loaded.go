package tracefile

import (
	"hprefetch/internal/isa"
)

// Loaded is a fully decoded in-memory trace. Decoding (CRC checks,
// inflate, varint/delta reconstruction) happens once in Load; Replay
// then hands out independent cursors whose Next is an array read —
// strictly cheaper than regenerating the stream live. This is the
// intended shape for replay-backed experiments, where one recorded
// trace feeds every scheme of a comparison: decode once, replay many.
type Loaded struct {
	meta       Meta
	startInstr uint64
	startAttrs Attrs
	events     []isa.BlockEvent
	attrs      []Attrs
	term       error // terminal condition: ErrExhausted, or wraps ErrTruncated
}

// Load decodes an entire trace into memory. A torn tail is not an
// error here either: the intact prefix loads and every cursor reports
// the truncation (via Err) once it runs past the end, mirroring the
// streaming Reader's contract.
func Load(path string) (*Loaded, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	l := &Loaded{
		meta:       r.Meta(),
		startInstr: r.Instructions(),
		startAttrs: r.cur,
	}
	if r.index != nil {
		l.events = make([]isa.BlockEvent, 0, r.total.Events)
		l.attrs = make([]Attrs, 0, r.total.Events)
	}
	for {
		ev := r.Next()
		if ev.NumInstr == 0 {
			break
		}
		l.events = append(l.events, ev)
		l.attrs = append(l.attrs, r.cur)
	}
	l.term = r.Err()
	return l, nil
}

// Meta returns the trace's identity header.
func (l *Loaded) Meta() Meta { return l.meta }

// Events returns the number of decoded events.
func (l *Loaded) Events() int { return len(l.events) }

// Complete reports whether the decoded stream reached the trace's
// clean end (false for a truncated file's intact prefix).
func (l *Loaded) Complete() bool { return l.term == ErrExhausted }

// Replay returns a fresh cursor positioned at the recorded pre-stream
// state. Cursors are independent; any number may stream concurrently.
func (l *Loaded) Replay() *MemReader {
	return &MemReader{l: l, instr: l.startInstr, cur: l.startAttrs}
}

// MemReader streams a Loaded trace as an event source (it satisfies
// Source and sim.EventSource) with the same sentinel-and-Err contract
// as the file-backed Reader.
type MemReader struct {
	l     *Loaded
	pos   int
	instr uint64
	cur   Attrs
}

// Next returns the next event, or a zero event once the stream has
// ended — inspect Err for whether the end was clean.
func (m *MemReader) Next() isa.BlockEvent {
	if m.pos >= len(m.l.events) {
		return isa.BlockEvent{}
	}
	ev := m.l.events[m.pos]
	m.cur = m.l.attrs[m.pos]
	m.pos++
	m.instr += uint64(ev.NumInstr)
	return ev
}

// Err mirrors Reader.Err: nil while events remain, then the loaded
// trace's terminal condition.
func (m *MemReader) Err() error {
	if m.pos < len(m.l.events) {
		return nil
	}
	return m.l.term
}

// Instructions, Requests, CurrentType, Stage, Depth, CurrentRequest and
// RequestDone follow the engine's sampling contract (state after the
// most recent event).
func (m *MemReader) Instructions() uint64   { return m.instr }
func (m *MemReader) Requests() uint64       { return m.cur.Requests }
func (m *MemReader) CurrentType() int       { return m.cur.Type }
func (m *MemReader) Stage() int16           { return m.cur.Stage }
func (m *MemReader) Depth() int             { return m.cur.Depth }
func (m *MemReader) CurrentRequest() uint64 { return m.cur.Request }
func (m *MemReader) RequestDone() bool      { return m.cur.Done }
