package tracefile

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"hprefetch/internal/isa"
)

// Reader streams a recorded trace back as an event source (it satisfies
// Source and sim.EventSource). Frames are decoded one at a time —
// memory stays bounded by the frame size, not the trace length — and
// the next frame loads eagerly when the current one drains, so the
// terminal condition is visible through Err before a zero event is ever
// returned:
//
//	ev := r.Next()
//	if ev.NumInstr == 0 { /* stream over: inspect r.Err() */ }
//
// Err is ErrExhausted after the clean end of a complete trace, wraps
// ErrTruncated when the file was cut mid-write (every event of the
// intact prefix has been delivered by then), and wraps ErrCorrupt when
// the bytes are damaged in place — a failed record checksum, a bad
// varint, a footer mismatch, or a frame discontinuity. Corruption is
// fail-stop: the prefix already delivered must not be trusted.
type Reader struct {
	f    *os.File
	meta Meta
	size int64

	events []isa.BlockEvent
	attrs  []Attrs
	pos    int

	// Per-frame scratch, reused across loads so steady-state replay
	// allocates nothing: the raw record, the inflated body, and the
	// flate decompressor itself (reset, not reallocated).
	rec  []byte
	body []byte
	zsrc bytes.Reader
	zr   io.ReadCloser

	instr  uint64
	cur    Attrs
	loaded bool // a first frame has been adopted (continuity checks on)

	off    int64 // next unread record offset
	first  int64 // offset of the first frame record
	frames int   // frames decoded so far
	sealed bool  // file ends with a valid trailer (completely written)
	index  []frameEntry
	total  Summary // valid when index != nil
	err    error   // terminal condition, sticky
}

// Open opens a trace for streaming replay. The header must be intact;
// a torn or missing frame tail is not an error here — the reader
// delivers the intact prefix and reports ErrTruncated at its end.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r := &Reader{f: f, size: st.Size()}
	r.sealed = r.probeSealed()

	prefix := make([]byte, headerPrefixSize)
	if _, err := io.ReadFull(f, prefix); err != nil {
		f.Close()
		return nil, fmt.Errorf("tracefile: %s: %w (unreadable header)", path, ErrTruncated)
	}
	if binary.LittleEndian.Uint64(prefix) != traceMagic {
		f.Close()
		return nil, fmt.Errorf("tracefile: %s: bad magic (not a trace file?)", path)
	}
	if v := binary.LittleEndian.Uint16(prefix[8:]); v != traceVersion {
		f.Close()
		return nil, fmt.Errorf("tracefile: %s: trace format version %d, this build reads version %d — re-record the trace",
			path, v, traceVersion)
	}
	r.off = headerPrefixSize
	payload, err := r.readRecord()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tracefile: %s: header: %w", path, err)
	}
	meta, err := decodeMeta(payload)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tracefile: %s: header: %w", path, err)
	}
	r.meta = meta
	r.first = r.off

	r.loadIndex()
	r.loadFrame(false)
	return r, nil
}

// Close releases the file.
func (r *Reader) Close() error { return r.f.Close() }

// Meta returns the trace's identity header.
func (r *Reader) Meta() Meta { return r.meta }

// Indexed reports whether the trace carries a complete frame index
// (false for truncated files, which fall back to sequential decoding).
func (r *Reader) Indexed() bool { return r.index != nil }

// Err returns the terminal condition once the stream has ended:
// ErrExhausted after a complete trace, an error wrapping ErrTruncated
// after a torn one, an error wrapping ErrCorrupt after in-place damage,
// nil while events remain.
func (r *Reader) Err() error {
	if r.pos < len(r.events) {
		return nil
	}
	return r.err
}

// Next returns the next event, or a zero event (NumInstr == 0) once the
// stream has ended — see Err for why.
func (r *Reader) Next() isa.BlockEvent {
	if r.pos >= len(r.events) {
		return isa.BlockEvent{}
	}
	ev := r.events[r.pos]
	r.cur = r.attrs[r.pos]
	r.pos++
	r.instr += uint64(ev.NumInstr)
	if r.pos >= len(r.events) {
		r.loadFrame(true)
	}
	return ev
}

// Instructions, Requests, CurrentType, Stage, Depth, CurrentRequest and
// RequestDone mirror the engine's sampling contract: they describe the
// state after the most recently returned event (before any Next: the
// recorded pre-stream state).
func (r *Reader) Instructions() uint64   { return r.instr }
func (r *Reader) Requests() uint64       { return r.cur.Requests }
func (r *Reader) CurrentType() int       { return r.cur.Type }
func (r *Reader) Stage() int16           { return r.cur.Stage }
func (r *Reader) Depth() int             { return r.cur.Depth }
func (r *Reader) CurrentRequest() uint64 { return r.cur.Request }
func (r *Reader) RequestDone() bool      { return r.cur.Done }

// SkipToInstruction advances the stream until Instructions() >= n,
// using the frame index to seek past whole frames without decoding
// them. It returns the stream's terminal error if the trace ends first.
func (r *Reader) SkipToInstruction(n uint64) error {
	if r.index != nil {
		// Find the last frame starting at or before n; jump only if it
		// is ahead of the frame currently loaded (the reader streams
		// forward only).
		best := -1
		for i, fr := range r.index {
			if fr.StartInstr <= n {
				best = i
			}
		}
		if best >= 0 && r.index[best].StartInstr > r.instr {
			fr := r.index[best]
			r.off = fr.Off
			r.err = nil
			r.events = r.events[:0]
			r.attrs = r.attrs[:0]
			r.pos = 0
			r.instr = fr.StartInstr
			r.loaded = false
			r.loadFrame(false)
		}
	}
	for r.instr < n {
		if ev := r.Next(); ev.NumInstr == 0 {
			return r.err
		}
	}
	return nil
}

// fail latches the terminal condition.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// probeSealed reports whether the file ends with a valid trailer. A
// sealed file was completely written, so a record that later runs past
// EOF cannot be a torn tail — it is corruption (a damaged length field
// mid-file), and readRecord classifies it as such.
func (r *Reader) probeSealed() bool {
	if r.size < headerPrefixSize+trailerSize {
		return false
	}
	var tr [trailerSize]byte
	if _, err := r.f.ReadAt(tr[:], r.size-trailerSize); err != nil {
		return false
	}
	return binary.LittleEndian.Uint64(tr[8:]) == trailerMagic
}

// tornOrCorrupt classifies a record that runs past EOF: in an unsealed
// file that is the torn tail of an interrupted recording (ErrTruncated);
// in a sealed file every record was once whole, so it is damage in place
// (ErrCorrupt).
func (r *Reader) tornOrCorrupt(what string) error {
	if r.sealed {
		return corruptf("%s inside a sealed trace at offset %d", what, r.off)
	}
	return fmt.Errorf("%w (%s at offset %d)", ErrTruncated, what, r.off)
}

// readRecord reads the length-prefixed, CRC-guarded record at r.off and
// advances past it. The returned slice aliases the reader's scratch
// buffer and is valid only until the next call. Errors distinguish a
// torn tail (wrapping ErrTruncated: the record runs past a clean EOF in
// an unsealed file) from damage in place (wrapping ErrCorrupt: a failed
// checksum, an implausible length field, or structural damage inside a
// sealed file).
func (r *Reader) readRecord() ([]byte, error) {
	var lenBuf [4]byte
	if _, err := r.f.ReadAt(lenBuf[:], r.off); err != nil {
		return nil, r.tornOrCorrupt("file ends at record boundary")
	}
	n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
	if n > maxRecordBytes {
		return nil, corruptf("implausible record length %d at offset %d", n, r.off)
	}
	if n > r.size-r.off-8 {
		return nil, r.tornOrCorrupt("torn record")
	}
	if int64(cap(r.rec)) < n+4 {
		r.rec = make([]byte, n+4)
	}
	buf := r.rec[:n+4]
	if _, err := r.f.ReadAt(buf, r.off+4); err != nil {
		return nil, r.tornOrCorrupt("torn record")
	}
	payload := buf[:n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[n:]) {
		return nil, corruptf("bad checksum at offset %d", r.off)
	}
	r.off += 4 + n + 4
	return payload, nil
}

// loadIndex probes the trailer and, when the trace is complete, loads
// the frame index. Any failure silently degrades to sequential reading.
func (r *Reader) loadIndex() {
	if r.size < r.first+trailerSize {
		return
	}
	var tr [trailerSize]byte
	if _, err := r.f.ReadAt(tr[:], r.size-trailerSize); err != nil {
		return
	}
	if binary.LittleEndian.Uint64(tr[8:]) != trailerMagic {
		return
	}
	indexOff := int64(binary.LittleEndian.Uint64(tr[:8]))
	if indexOff < r.first || indexOff >= r.size-trailerSize {
		return
	}
	saved := r.off
	r.off = indexOff
	payload, err := r.readRecord()
	r.off = saved
	if err != nil {
		return
	}
	entries, total, err := decodeIndex(payload)
	if err != nil {
		return
	}
	r.index = entries
	r.total = total
}

// loadFrame decodes the record at r.off into the event buffer. With
// sync set it verifies stream continuity against the running counters
// (sequential reads); without, it adopts the frame's start state (the
// first frame, or a seek landing).
func (r *Reader) loadFrame(sync bool) {
	if r.err != nil {
		return
	}
	payload, err := r.readRecord()
	if err != nil {
		r.fail(err) // already wraps ErrTruncated or ErrCorrupt
		return
	}
	if len(payload) == 0 {
		r.fail(corruptf("empty record at offset %d", r.off))
		return
	}
	switch payload[0] {
	case recTypeIndex:
		r.fail(ErrExhausted)
		return
	case recTypeFrame:
	default:
		r.fail(corruptf("unknown record type %d at offset %d", payload[0], r.off))
		return
	}
	br := &breader{buf: payload, off: 1}
	bodyLen := br.uvarint()
	if br.err != nil || bodyLen > maxRecordBytes {
		r.fail(corruptf("corrupt frame length at offset %d", r.off))
		return
	}
	if uint64(cap(r.body)) < bodyLen {
		r.body = make([]byte, bodyLen)
	}
	body := r.body[:bodyLen]
	r.zsrc.Reset(payload[br.off:])
	if r.zr == nil {
		r.zr = flate.NewReader(&r.zsrc)
	} else if err := r.zr.(flate.Resetter).Reset(&r.zsrc, nil); err != nil {
		r.fail(corruptf("resetting decompressor: %v", err))
		return
	}
	if _, err := io.ReadFull(r.zr, body); err != nil {
		r.fail(corruptf("corrupt frame data: %v", err))
		return
	}
	var over [1]byte
	if n, _ := r.zr.Read(over[:]); n != 0 {
		r.fail(corruptf("frame longer than declared"))
		return
	}
	start, events, attrs, err := decodeFrameBodyInto(body, r.events[:0], r.attrs[:0])
	if err != nil {
		r.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
		return
	}
	if len(events) == 0 {
		r.fail(corruptf("empty frame"))
		return
	}
	if sync || r.loaded {
		if start.Instr != r.instr || start.A != r.cur {
			r.fail(corruptf("frame discontinuity at instruction %d", r.instr))
			return
		}
	} else {
		r.instr = start.Instr
		r.cur = start.A
		r.loaded = true
	}
	r.events = events
	r.attrs = attrs
	r.pos = 0
	r.frames++
}

// HeaderFingerprint returns a cheap content identity for the trace at
// path: its byte size joined with a CRC over the file prefix and the
// header record's length and payload (magic, version, meta). Unlike
// size+mtime, it distinguishes an in-place re-record within one mtime
// tick on coarse-timestamp filesystems, because a different recording
// carries a different header (or a different length). It reads only
// the header — no frame is decoded.
//
// The record's own trailing CRC is deliberately excluded from the
// hashed region: a CRC computed over a message with its CRC appended
// is a constant residue, so including it would make every well-formed
// header fingerprint to the same value.
func HeaderFingerprint(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return "", err
	}
	var lenBuf [4]byte
	if _, err := f.ReadAt(lenBuf[:], headerPrefixSize); err != nil {
		return "", fmt.Errorf("tracefile: %s: %w (unreadable header)", path, ErrTruncated)
	}
	n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
	if n > maxRecordBytes || n > st.Size()-headerPrefixSize-8 {
		return "", fmt.Errorf("tracefile: %s: %w (torn header)", path, ErrTruncated)
	}
	buf := make([]byte, headerPrefixSize+4+n)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(len(buf))), buf); err != nil {
		return "", fmt.Errorf("tracefile: %s: %w (unreadable header)", path, ErrTruncated)
	}
	return fmt.Sprintf("%d:%08x", st.Size(), crc32.ChecksumIEEE(buf)), nil
}

// Info describes a trace file without replaying it into a simulator.
type Info struct {
	Meta   Meta
	Frames int
	// Events, Instructions and Requests are stream totals — for a
	// truncated trace, totals of the readable prefix.
	Events       uint64
	Instructions uint64
	Requests     uint64
	FileBytes    int64
	// Indexed reports a complete, seekable trace; Truncated a torn one.
	Indexed   bool
	Truncated bool
}

// Stat summarises a trace file. Complete traces answer from the index;
// truncated ones are decoded sequentially to measure the intact prefix.
func Stat(path string) (Info, error) {
	r, err := Open(path)
	if err != nil {
		return Info{}, err
	}
	defer r.Close()
	info := Info{Meta: r.meta, FileBytes: r.size, Indexed: r.Indexed()}
	if r.index != nil {
		info.Frames = r.total.Frames
		info.Events = r.total.Events
		info.Instructions = r.total.Instructions
		info.Requests = r.total.Requests
		return info, nil
	}
	var events uint64
	for {
		ev := r.Next()
		if ev.NumInstr == 0 {
			break
		}
		events++
	}
	info.Frames = r.frames
	info.Events = events
	info.Instructions = r.instr
	info.Requests = r.cur.Requests
	info.Truncated = errors.Is(r.err, ErrTruncated)
	if !info.Truncated && !errors.Is(r.err, ErrExhausted) {
		return info, r.err
	}
	return info, nil
}
