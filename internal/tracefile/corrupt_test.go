package tracefile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// layoutFor records a small multi-frame trace and returns its bytes and
// structural layout.
func layoutFor(t *testing.T, workload string) (string, []byte, FileLayout, Summary) {
	t.Helper()
	path, sum := recordSmall(t, workload, 30_000, 256)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := LayoutOf(data)
	if err != nil {
		t.Fatalf("LayoutOf on a clean trace: %v", err)
	}
	if len(lo.Frames) < 3 {
		t.Fatalf("need several frames for interior corruption, got %d", len(lo.Frames))
	}
	if len(lo.Frames) != sum.Frames {
		t.Fatalf("layout found %d frames, summary says %d", len(lo.Frames), sum.Frames)
	}
	return path, data, lo, sum
}

// writeVariant writes a mutated copy of a trace image.
func writeVariant(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// drain streams a reader to its end and returns the delivered event
// count and terminal error.
func drain(t *testing.T, path string) (int, error) {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	n := 0
	for {
		if ev := r.Next(); ev.NumInstr == 0 {
			break
		}
		n++
	}
	return n, r.Err()
}

// TestInteriorFlipIsCorrupt is the regression test for the
// ErrCorrupt/ErrTruncated split: a single flipped byte in an interior
// frame must abort replay with ErrCorrupt — never ErrTruncated, which
// the prefix-replay path tolerates, and never a silently shortened
// stream.
func TestInteriorFlipIsCorrupt(t *testing.T) {
	_, data, lo, sum := layoutFor(t, "gin")
	dir := t.TempDir()

	mid := lo.Frames[len(lo.Frames)/2]
	flipped := append([]byte(nil), data...)
	flipped[mid.Off+4+mid.Len/2] ^= 0x10 // interior payload byte
	p := writeVariant(t, dir, "flip.hpt", flipped)

	n, err := drain(t, p)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior flip: terminal error %v, want ErrCorrupt", err)
	}
	if errors.Is(err, ErrTruncated) {
		t.Fatalf("interior flip still satisfies errors.Is(_, ErrTruncated): %v", err)
	}
	if uint64(n) >= sum.Events {
		t.Fatalf("corrupt trace delivered the full stream (%d events)", n)
	}

	// Load must fail-stop: no prefix is handed out for a corrupt trace.
	if _, err := Load(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of a corrupt trace: err=%v, want ErrCorrupt", err)
	}

	// A genuinely torn tail keeps its truncation semantics (and Load
	// still serves the intact prefix).
	torn := data[:lo.Frames[len(lo.Frames)-1].Off+7]
	tp := writeVariant(t, dir, "torn.hpt", torn)
	if _, err := drain(t, tp); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn tail: terminal error %v, want ErrTruncated", err)
	}
	if l, err := Load(tp); err != nil {
		t.Fatalf("Load of a torn trace: %v", err)
	} else if l.Complete() {
		t.Fatal("torn trace loaded as complete")
	}
}

// TestLengthFieldFlipIsCorrupt flips a byte of an interior record's
// length prefix. Before the split this read as a torn tail; in a sealed
// trace it must be corruption.
func TestLengthFieldFlipIsCorrupt(t *testing.T) {
	_, data, lo, _ := layoutFor(t, "echo")
	mid := lo.Frames[len(lo.Frames)/2]
	for _, bit := range []byte{0x01, 0x80} {
		mut := append([]byte(nil), data...)
		mut[mid.Off+1] ^= bit
		p := writeVariant(t, t.TempDir(), "len.hpt", mut)
		if _, err := drain(t, p); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("length-field flip (bit %#x): terminal error %v, want ErrCorrupt", bit, err)
		}
	}
}

// TestSwappedFramesAreCorrupt swaps two adjacent frame records. Every
// record stays checksum-clean, so only the frame-continuity check can
// catch it — and must, as corruption.
func TestSwappedFramesAreCorrupt(t *testing.T) {
	_, data, lo, _ := layoutFor(t, "gin")
	a, b := lo.Frames[1], lo.Frames[2]
	mut := append([]byte(nil), data[:a.Off]...)
	mut = append(mut, data[b.Off:b.Off+b.Len]...)
	mut = append(mut, data[a.Off:a.Off+a.Len]...)
	mut = append(mut, data[b.Off+b.Len:]...)
	p := writeVariant(t, t.TempDir(), "swap.hpt", mut)
	if _, err := drain(t, p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("swapped frames: terminal error %v, want ErrCorrupt", err)
	}
}

// TestVerifyDeep checks the deep verifier: clean traces pass with
// totals matching the recording, any damage fails.
func TestVerifyDeep(t *testing.T) {
	path, data, lo, sum := layoutFor(t, "gin")
	info, err := VerifyDeep(path)
	if err != nil {
		t.Fatalf("VerifyDeep on a clean trace: %v", err)
	}
	if info.Events != sum.Events || info.Instructions != sum.Instructions || info.Frames != sum.Frames {
		t.Fatalf("VerifyDeep totals %+v disagree with summary %+v", info, sum)
	}

	dir := t.TempDir()
	flip := append([]byte(nil), data...)
	flip[lo.Frames[0].Off+6] ^= 0x04
	if _, err := VerifyDeep(writeVariant(t, dir, "flip.hpt", flip)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyDeep on a flipped trace: %v, want ErrCorrupt", err)
	}
	if _, err := VerifyDeep(writeVariant(t, dir, "torn.hpt", data[:len(data)-trailerSize-3])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("VerifyDeep on a torn trace: %v, want ErrTruncated", err)
	}
	// Trailer damage on an otherwise intact file: the index is
	// unreachable, which VerifyDeep refuses (the trace cannot vouch for
	// its own completeness).
	tr := append([]byte(nil), data...)
	tr[len(tr)-1] ^= 0xFF
	if _, err := VerifyDeep(writeVariant(t, dir, "trailer.hpt", tr)); err == nil {
		t.Fatal("VerifyDeep accepted a damaged trailer")
	}
}

// TestLayoutOfRejectsDamage spot-checks the shallow structural walk.
func TestLayoutOfRejectsDamage(t *testing.T) {
	_, data, lo, _ := layoutFor(t, "echo")
	end := lo.Frames[0].Off + lo.Frames[0].Len
	variants := map[string][]byte{
		"flip":    append(append([]byte(nil), data[:end-2]...), data[end-2:]...),
		"torn":    data[:len(data)-4],
		"magic":   append([]byte(nil), data...),
		"trailer": append([]byte(nil), data...),
	}
	variants["flip"][lo.Frames[0].Off+9] ^= 0x01
	variants["magic"][0] ^= 0x01
	variants["trailer"][len(data)-2] ^= 0x01
	for name, mut := range variants {
		if _, err := LayoutOf(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("LayoutOf(%s): err=%v, want ErrCorrupt", name, err)
		}
	}
}
