package tracefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Span locates one framed record inside a trace file's byte image.
type Span struct {
	// Off is the offset of the record's u32 length prefix.
	Off int64
	// Len is the record's total framed length: 4 (length prefix) +
	// payload + 4 (CRC).
	Len int64
	// CRC is the stored payload checksum.
	CRC uint32
}

// FileLayout is the structural map of a sealed trace file's byte image:
// where each record lives and what checksum it carries. The corpus
// manifest persists the frame spans as its per-frame CRC index, and the
// storage-fault injector uses them to place span-aligned corruption.
type FileLayout struct {
	Header Span
	Frames []Span
	Index  Span
	// DataEnd is the offset of the trailer (end of the record area).
	DataEnd int64
}

// LayoutOf walks the record structure of a complete trace image and
// verifies it shallowly: magic, version, a valid trailer, every record
// whole and checksum-clean, the index record last. It does not inflate
// or decode frame bodies — VerifyDeep does that. Any structural or
// checksum problem wraps ErrCorrupt (an unsealed image has no layout to
// speak of: this is the integrity view, not the replay view).
func LayoutOf(data []byte) (FileLayout, error) {
	var lo FileLayout
	if len(data) < headerPrefixSize+trailerSize {
		return lo, corruptf("image too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint64(data) != traceMagic {
		return lo, corruptf("bad magic")
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != traceVersion {
		return lo, corruptf("trace format version %d, this build reads version %d", v, traceVersion)
	}
	end := int64(len(data)) - trailerSize
	if binary.LittleEndian.Uint64(data[end+8:]) != trailerMagic {
		return lo, corruptf("missing trailer (unsealed or torn image)")
	}
	lo.DataEnd = end
	indexOff := int64(binary.LittleEndian.Uint64(data[end:]))

	off := int64(headerPrefixSize)
	sawIndex := false
	for off < end {
		if end-off < 8 {
			return lo, corruptf("trailing garbage at offset %d", off)
		}
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		if n > maxRecordBytes || n > end-off-8 {
			return lo, corruptf("implausible record length %d at offset %d", n, off)
		}
		payload := data[off+4 : off+4+n]
		crc := binary.LittleEndian.Uint32(data[off+4+n:])
		if crc32.ChecksumIEEE(payload) != crc {
			return lo, corruptf("bad checksum at offset %d", off)
		}
		sp := Span{Off: off, Len: 4 + n + 4, CRC: crc}
		switch {
		case off == headerPrefixSize:
			lo.Header = sp
		case len(payload) > 0 && payload[0] == recTypeFrame:
			if sawIndex {
				return lo, corruptf("frame record after index at offset %d", off)
			}
			lo.Frames = append(lo.Frames, sp)
		case len(payload) > 0 && payload[0] == recTypeIndex:
			if sawIndex {
				return lo, corruptf("duplicate index record at offset %d", off)
			}
			if off != indexOff {
				return lo, corruptf("index record at offset %d but trailer points at %d", off, indexOff)
			}
			sawIndex = true
			lo.Index = sp
		default:
			return lo, corruptf("unknown record type at offset %d", off)
		}
		off += sp.Len
	}
	if !sawIndex {
		return lo, corruptf("no index record (trailer offset %d)", indexOff)
	}
	if len(lo.Frames) == 0 {
		return lo, corruptf("no frame records")
	}
	return lo, nil
}

// VerifyDeep fully decodes the trace at path: every record checksum,
// every frame body (inflate, canonical varints, counter footers, frame
// continuity), and — because a verified trace must be complete — the
// frame index, whose totals must match the decoded stream exactly. A
// trace that passes VerifyDeep replays its complete stream bit for bit.
// Failures wrap ErrCorrupt (in-place damage) or ErrTruncated (torn
// tail); either way the trace is not fit to serve.
func VerifyDeep(path string) (Info, error) {
	r, err := Open(path)
	if err != nil {
		return Info{}, err
	}
	defer r.Close()
	info := Info{Meta: r.meta, FileBytes: r.size, Indexed: r.Indexed()}
	if !r.Indexed() {
		if !r.sealed {
			return info, fmt.Errorf("tracefile: %s: %w (no trailer: torn or unfinished recording)", path, ErrTruncated)
		}
		return info, fmt.Errorf("tracefile: %s: %w: sealed but index unreadable", path, ErrCorrupt)
	}
	var events uint64
	for {
		ev := r.Next()
		if ev.NumInstr == 0 {
			break
		}
		events++
	}
	info.Frames = r.frames
	info.Events = events
	info.Instructions = r.instr
	info.Requests = r.cur.Requests
	if !errors.Is(r.err, ErrExhausted) {
		return info, fmt.Errorf("tracefile: %s: %w", path, r.err)
	}
	if r.frames != r.total.Frames || events != r.total.Events ||
		r.instr != r.total.Instructions || r.cur.Requests != r.total.Requests {
		return info, fmt.Errorf("tracefile: %s: %w: index totals (%d frames, %d events, %d instr, %d req) disagree with decoded stream (%d, %d, %d, %d)",
			path, ErrCorrupt,
			r.total.Frames, r.total.Events, r.total.Instructions, r.total.Requests,
			r.frames, events, r.instr, r.cur.Requests)
	}
	return info, nil
}
