package tracefile

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"hprefetch/internal/isa"
)

// Options tunes trace writing.
type Options struct {
	// FrameEvents is how many events each compressed frame holds
	// (default DefaultFrameEvents; tests use small frames to exercise
	// frame boundaries cheaply).
	FrameEvents int
}

func (o Options) frameEvents() int {
	if o.FrameEvents > 0 {
		return o.FrameEvents
	}
	return DefaultFrameEvents
}

// Summary describes a finished recording.
type Summary struct {
	Frames       int
	Events       uint64
	Instructions uint64
	Requests     uint64
	// Bytes is the total file size, header and index included.
	Bytes int64
}

// frameEntry is one frame's index entry.
type frameEntry struct {
	Off           int64
	Events        uint64
	StartInstr    uint64
	StartRequests uint64
}

// Writer serialises an event stream to the trace format. Create one
// with NewWriter (caller-owned io.Writer) or Create (owned file), feed
// it with Append, and Close it to seal the index and trailer — a trace
// missing its index is read as truncated.
type Writer struct {
	w   io.Writer
	f   *os.File // non-nil when Create owns the file
	opt Options

	off    int64
	frames []frameEntry

	start  frameStart
	events []isa.BlockEvent
	attrs  []Attrs

	prev   Attrs
	instr  uint64
	total  uint64
	closed bool
	err    error
}

// NewWriter starts a trace on w. start must be the source's observable
// state before its first event (sample it before any Next call).
func NewWriter(w io.Writer, meta Meta, start Attrs, opt Options) (*Writer, error) {
	tw := &Writer{
		w:      w,
		opt:    opt,
		start:  frameStart{A: start},
		prev:   start,
		events: make([]isa.BlockEvent, 0, opt.frameEvents()),
		attrs:  make([]Attrs, 0, opt.frameEvents()),
	}
	hdr := make([]byte, 0, headerPrefixSize)
	hdr = binary.LittleEndian.AppendUint64(hdr, traceMagic)
	hdr = binary.LittleEndian.AppendUint16(hdr, traceVersion)
	if _, err := w.Write(hdr); err != nil {
		tw.err = err
		return nil, err
	}
	tw.off = headerPrefixSize
	if err := tw.writeFramed(encodeMeta(meta)); err != nil {
		return nil, err
	}
	return tw, nil
}

// Create starts a trace file at path; Close syncs and closes it.
func Create(path string, meta Meta, start Attrs, opt Options) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, meta, start, opt)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.f = f
	return w, nil
}

// Err returns the writer's first I/O or encoding failure, if any.
func (w *Writer) Err() error { return w.err }

// Append records one event and the source attribution sampled after it.
// Events the format cannot represent exactly (violating the engine's
// stream invariants) are rejected rather than silently mangled.
func (w *Writer) Append(ev isa.BlockEvent, a Attrs) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("tracefile: append after close")
	}
	switch {
	case ev.NumInstr == 0 || ev.NumInstr > isa.InstrPerBlock:
		w.err = fmt.Errorf("tracefile: event with %d instructions not representable", ev.NumInstr)
	case ev.Branch > isa.BrRet:
		w.err = fmt.Errorf("tracefile: branch kind %d not representable", ev.Branch)
	case ev.Branch == isa.BrNone && (ev.Target != ev.EndAddr() || ev.BrPC != 0):
		w.err = fmt.Errorf("tracefile: fall-through event with explicit target or branch PC")
	case ev.Branch != isa.BrNone && ev.BrPC != ev.EndAddr()-isa.InstrSize:
		w.err = fmt.Errorf("tracefile: branch PC %s not at end of region", ev.BrPC)
	case a.Requests < w.prev.Requests:
		w.err = fmt.Errorf("tracefile: request counter went backwards (%d -> %d)", w.prev.Requests, a.Requests)
	case a.Type < 0 || a.Type > maxTypeValue || a.Depth < 0 || a.Depth > maxDepth:
		w.err = fmt.Errorf("tracefile: attribution out of range (type %d, depth %d)", a.Type, a.Depth)
	case a.Request > maxRequestID:
		w.err = fmt.Errorf("tracefile: request id %d not representable", a.Request)
	}
	if w.err != nil {
		return w.err
	}
	w.events = append(w.events, ev)
	w.attrs = append(w.attrs, a)
	w.prev = a
	w.total++
	w.instr += uint64(ev.NumInstr)
	if len(w.events) >= w.opt.frameEvents() {
		return w.flushFrame()
	}
	return nil
}

// flushFrame compresses and writes the pending frame.
func (w *Writer) flushFrame() error {
	if w.err != nil {
		return w.err
	}
	if len(w.events) == 0 {
		return nil
	}
	body := encodeFrameBody(w.start, w.events, w.attrs)
	var buf bytes.Buffer
	buf.WriteByte(recTypeFrame)
	var lenBuf [binary.MaxVarintLen64]byte
	buf.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(body)))])
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		w.err = err
		return err
	}
	if _, err := fw.Write(body); err != nil {
		w.err = err
		return err
	}
	if err := fw.Close(); err != nil {
		w.err = err
		return err
	}
	entry := frameEntry{
		Off:           w.off,
		Events:        uint64(len(w.events)),
		StartInstr:    w.start.Instr,
		StartRequests: w.start.A.Requests,
	}
	if err := w.writeFramed(buf.Bytes()); err != nil {
		return err
	}
	w.frames = append(w.frames, entry)
	w.start = frameStart{Instr: w.instr, A: w.prev}
	w.events = w.events[:0]
	w.attrs = w.attrs[:0]
	return nil
}

// writeFramed writes one length-prefixed, CRC-guarded record.
func (w *Writer) writeFramed(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	rec := make([]byte, 0, len(payload)+8)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(rec); err != nil {
		w.err = err
		return err
	}
	w.off += int64(len(rec))
	return nil
}

// Close flushes the pending frame, writes the index record and the
// trailer, and (for Create writers) syncs and closes the file.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.flushFrame()
	indexOff := w.off
	if w.err == nil {
		w.writeFramed(w.encodeIndex())
	}
	if w.err == nil {
		tr := make([]byte, 0, trailerSize)
		tr = binary.LittleEndian.AppendUint64(tr, uint64(indexOff))
		tr = binary.LittleEndian.AppendUint64(tr, trailerMagic)
		if _, err := w.w.Write(tr); err != nil {
			w.err = err
		}
		w.off += trailerSize
	}
	if w.f != nil {
		if err := w.f.Sync(); err != nil && w.err == nil {
			w.err = err
		}
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
	}
	return w.err
}

// Summary reports what has been written so far.
func (w *Writer) Summary() Summary {
	return Summary{
		Frames:       len(w.frames),
		Events:       w.total,
		Instructions: w.instr,
		Requests:     w.prev.Requests,
		Bytes:        w.off,
	}
}

// encodeIndex serialises the frame index: per-frame entries
// (delta-encoded) followed by stream totals.
func (w *Writer) encodeIndex() []byte {
	bw := &bwriter{buf: make([]byte, 0, 16*len(w.frames)+32)}
	bw.u8(recTypeIndex)
	bw.uvarint(uint64(len(w.frames)))
	var prevOff int64
	var prevInstr, prevReq uint64
	for _, fr := range w.frames {
		bw.uvarint(uint64(fr.Off - prevOff))
		bw.uvarint(fr.Events)
		bw.uvarint(fr.StartInstr - prevInstr)
		bw.uvarint(fr.StartRequests - prevReq)
		prevOff, prevInstr, prevReq = fr.Off, fr.StartInstr, fr.StartRequests
	}
	bw.uvarint(w.total)
	bw.uvarint(w.instr)
	bw.uvarint(w.prev.Requests)
	return bw.buf
}

// decodeIndex parses an index payload (including the leading type byte).
func decodeIndex(payload []byte) ([]frameEntry, Summary, error) {
	r := &breader{buf: payload}
	if t := r.u8(); r.err == nil && t != recTypeIndex {
		return nil, Summary{}, fmt.Errorf("tracefile: record type %d is not an index", t)
	}
	n := r.uvarint()
	if r.err == nil && 4*n > uint64(len(payload)) {
		r.fail("implausible index frame count %d", n)
	}
	if r.err != nil {
		return nil, Summary{}, r.err
	}
	entries := make([]frameEntry, 0, n)
	var off int64
	var instr, req uint64
	for i := uint64(0); i < n && r.err == nil; i++ {
		off += int64(r.uvarint())
		ev := r.uvarint()
		instr += r.uvarint()
		req += r.uvarint()
		entries = append(entries, frameEntry{Off: off, Events: ev, StartInstr: instr, StartRequests: req})
	}
	var sum Summary
	sum.Frames = len(entries)
	sum.Events = r.uvarint()
	sum.Instructions = r.uvarint()
	sum.Requests = r.uvarint()
	if err := r.done(); err != nil {
		return nil, Summary{}, err
	}
	return entries, sum, nil
}

// Recorder tees an event source to a trace file while passing the
// stream through unchanged: hand it to the simulator in place of the
// engine and the run both executes live and leaves a replayable trace.
// It satisfies Source (and sim.EventSource) itself. Write failures are
// latched, not surfaced per event — the stream keeps flowing from the
// live source and Finish reports the failure.
type Recorder struct {
	src Source
	w   *Writer
}

// NewRecorder tees src to w (sampling src's pre-stream state — call it
// before any Next on src).
func NewRecorder(src Source, w io.Writer, meta Meta, opt Options) (*Recorder, error) {
	tw, err := NewWriter(w, meta, sample(src), opt)
	if err != nil {
		return nil, err
	}
	return &Recorder{src: src, w: tw}, nil
}

// RecordTo tees src to a new trace file at path.
func RecordTo(path string, src Source, meta Meta, opt Options) (*Recorder, error) {
	tw, err := Create(path, meta, sample(src), opt)
	if err != nil {
		return nil, err
	}
	return &Recorder{src: src, w: tw}, nil
}

func sample(src Source) Attrs {
	return Attrs{
		Requests: src.Requests(),
		Type:     src.CurrentType(),
		Stage:    src.Stage(),
		Depth:    src.Depth(),
		Request:  src.CurrentRequest(),
		Done:     src.RequestDone(),
	}
}

// Next pulls one event from the source, recording it and the
// attribution sampled after it.
func (r *Recorder) Next() isa.BlockEvent {
	ev := r.src.Next()
	if r.w.err == nil {
		r.w.Append(ev, sample(r.src)) //nolint:errcheck // latched in w.err, surfaced by Finish
	}
	return ev
}

// Instructions, Requests, CurrentType, Stage, Depth, CurrentRequest and
// RequestDone delegate to the live source.
func (r *Recorder) Instructions() uint64   { return r.src.Instructions() }
func (r *Recorder) Requests() uint64       { return r.src.Requests() }
func (r *Recorder) CurrentType() int       { return r.src.CurrentType() }
func (r *Recorder) Stage() int16           { return r.src.Stage() }
func (r *Recorder) Depth() int             { return r.src.Depth() }
func (r *Recorder) CurrentRequest() uint64 { return r.src.CurrentRequest() }
func (r *Recorder) RequestDone() bool      { return r.src.RequestDone() }

// Finish pulls tail extra events from the still-live source (see
// TailEvents) and seals the trace, returning its summary.
func (r *Recorder) Finish(tail int) (Summary, error) {
	for i := 0; i < tail && r.w.err == nil; i++ {
		r.Next()
	}
	err := r.w.Close()
	return r.w.Summary(), err
}

// Abort discards the recording: the file (if owned) is closed as-is,
// without index or trailer, and reads back as truncated.
func (r *Recorder) Abort() {
	r.w.closed = true
	if r.w.f != nil {
		r.w.f.Close() //nolint:errcheck // the recording is being discarded
	}
}

// Record drives src through a new trace file at path until at least
// minInstructions are covered, appends the lookahead tail, and seals
// the trace.
func Record(path string, src Source, meta Meta, minInstructions uint64, tail int, opt Options) (Summary, error) {
	rec, err := RecordTo(path, src, meta, opt)
	if err != nil {
		return Summary{}, err
	}
	for src.Instructions() < minInstructions && rec.w.err == nil {
		rec.Next()
	}
	return rec.Finish(tail)
}
