package tracefile

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"unsafe"

	"hprefetch/internal/isa"
	"hprefetch/internal/trace"
	"hprefetch/internal/workloads"
)

// engineFor builds a fresh live engine for a workload.
func engineFor(tb testing.TB, name string) (*trace.Engine, uint64) {
	tb.Helper()
	built, err := workloads.Build(name)
	if err != nil {
		tb.Fatal(err)
	}
	return trace.New(built.Loaded, built.Workload.TraceSeed), built.Workload.TraceSeed
}

// recordSmall records a short multi-frame trace and returns its path.
func recordSmall(tb testing.TB, workload string, instructions uint64, frameEvents int) (string, Summary) {
	tb.Helper()
	eng, seed := engineFor(tb, workload)
	path := filepath.Join(tb.TempDir(), workload+".hpt")
	meta := Meta{Workload: workload, Seed: seed, TargetInstructions: instructions}
	sum, err := Record(path, eng, meta, instructions, 64, Options{FrameEvents: frameEvents})
	if err != nil {
		tb.Fatal(err)
	}
	return path, sum
}

// TestReplayMatchesEngine replays a recorded trace against a fresh
// engine: every event and every attribution sample must be identical —
// the observational-equivalence property everything else rests on.
func TestReplayMatchesEngine(t *testing.T) {
	const instructions = 200_000
	path, sum := recordSmall(t, "gin", instructions, 512)
	if sum.Frames < 3 {
		t.Fatalf("expected several frames at FrameEvents=512, got %d", sum.Frames)
	}
	if sum.Instructions < instructions {
		t.Fatalf("recorded %d instructions, want >= %d", sum.Instructions, instructions)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Indexed() {
		t.Fatal("sealed trace should carry an index")
	}
	eng, seed := engineFor(t, "gin")
	if m := r.Meta(); m.Workload != "gin" || m.Seed != seed || m.TargetInstructions != instructions {
		t.Fatalf("meta mismatch: %+v", m)
	}

	// Pre-stream state must match the engine's.
	if r.Instructions() != eng.Instructions() || r.Requests() != eng.Requests() ||
		r.CurrentType() != eng.CurrentType() || r.Stage() != eng.Stage() || r.Depth() != eng.Depth() {
		t.Fatal("pre-stream attribution differs from a fresh engine")
	}

	var n uint64
	for {
		got := r.Next()
		if got.NumInstr == 0 {
			break
		}
		want := eng.Next()
		if got != want {
			t.Fatalf("event %d diverges:\n trace %+v\n live  %+v", n, got, want)
		}
		if r.Instructions() != eng.Instructions() || r.Requests() != eng.Requests() ||
			r.CurrentType() != eng.CurrentType() || r.Stage() != eng.Stage() || r.Depth() != eng.Depth() {
			t.Fatalf("attribution after event %d diverges: trace (i%d r%d t%d s%d d%d), live (i%d r%d t%d s%d d%d)",
				n, r.Instructions(), r.Requests(), r.CurrentType(), r.Stage(), r.Depth(),
				eng.Instructions(), eng.Requests(), eng.CurrentType(), eng.Stage(), eng.Depth())
		}
		n++
	}
	if n != sum.Events {
		t.Fatalf("replayed %d events, recorded %d", n, sum.Events)
	}
	if !errors.Is(r.Err(), ErrExhausted) {
		t.Fatalf("terminal condition = %v, want ErrExhausted", r.Err())
	}
	// Continued Next calls stay at the zero-event sentinel.
	if ev := r.Next(); ev.NumInstr != 0 {
		t.Fatal("Next after exhaustion returned a non-zero event")
	}
}

// TestStat checks the index fast path against the recording summary.
func TestStat(t *testing.T) {
	path, sum := recordSmall(t, "echo", 100_000, 1024)
	info, err := Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Indexed || info.Truncated {
		t.Fatalf("sealed trace: Indexed=%v Truncated=%v", info.Indexed, info.Truncated)
	}
	if info.Events != sum.Events || info.Instructions != sum.Instructions ||
		info.Requests != sum.Requests || info.Frames != sum.Frames || info.FileBytes != sum.Bytes {
		t.Fatalf("Stat %+v disagrees with recording summary %+v", info, sum)
	}
}

// TestTruncatedReplaysPrefix cuts a trace at many byte offsets. Every
// cut must open (or fail) cleanly, replay a strict prefix of the full
// stream, and report ErrTruncated unless every event survived the cut.
func TestTruncatedReplaysPrefix(t *testing.T) {
	path, sum := recordSmall(t, "gin", 30_000, 256)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Reference stream from the intact file.
	var refEvents []isa.BlockEvent
	var refAttrs []Attrs
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for {
		ev := r.Next()
		if ev.NumInstr == 0 {
			break
		}
		refEvents = append(refEvents, ev)
		refAttrs = append(refAttrs, Attrs{Requests: r.Requests(), Type: r.CurrentType(), Stage: r.Stage(), Depth: r.Depth()})
	}
	r.Close()
	if uint64(len(refEvents)) != sum.Events {
		t.Fatalf("reference replay has %d events, summary says %d", len(refEvents), sum.Events)
	}

	cuts := []int{0, 5, headerPrefixSize, headerPrefixSize + 3}
	for cut := headerPrefixSize + 8; cut < len(full); cut += 211 {
		cuts = append(cuts, cut)
	}
	cuts = append(cuts, len(full)-1, len(full)-trailerSize, len(full)-trailerSize-1)

	dir := t.TempDir()
	for _, cut := range cuts {
		cutPath := filepath.Join(dir, fmt.Sprintf("cut-%d.hpt", cut))
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cr, err := Open(cutPath)
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: Open error %v does not wrap ErrTruncated", cut, err)
			}
			continue
		}
		var n int
		for {
			ev := cr.Next()
			if ev.NumInstr == 0 {
				break
			}
			if n >= len(refEvents) || ev != refEvents[n] {
				t.Fatalf("cut %d: event %d is not a prefix of the full stream", cut, n)
			}
			a := Attrs{Requests: cr.Requests(), Type: cr.CurrentType(), Stage: cr.Stage(), Depth: cr.Depth()}
			if a != refAttrs[n] {
				t.Fatalf("cut %d: attribution %d diverges from the full stream", cut, n)
			}
			n++
		}
		terr := cr.Err()
		cr.Close()
		if n < len(refEvents) {
			if !errors.Is(terr, ErrTruncated) {
				t.Fatalf("cut %d: delivered %d/%d events but Err=%v, want ErrTruncated",
					cut, n, len(refEvents), terr)
			}
		} else if !errors.Is(terr, ErrTruncated) && !errors.Is(terr, ErrExhausted) {
			t.Fatalf("cut %d: full stream delivered but Err=%v", cut, terr)
		}
	}
}

// TestSkipToInstruction checks that index-assisted seeking lands on the
// same state as stepping events one by one.
func TestSkipToInstruction(t *testing.T) {
	const instructions = 60_000
	path, _ := recordSmall(t, "gin", instructions, 256)

	seq, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	skip, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer skip.Close()
	if !skip.Indexed() {
		t.Fatal("trace should be indexed")
	}

	const target = instructions / 2
	for seq.Instructions() < target {
		if ev := seq.Next(); ev.NumInstr == 0 {
			t.Fatal("sequential reader ran out before the target")
		}
	}
	if err := skip.SkipToInstruction(target); err != nil {
		t.Fatal(err)
	}
	if seq.Instructions() != skip.Instructions() {
		t.Fatalf("instruction counters diverge: seq %d, skip %d", seq.Instructions(), skip.Instructions())
	}
	// The remainder of both streams must be identical.
	for i := 0; ; i++ {
		a, b := seq.Next(), skip.Next()
		if a != b {
			t.Fatalf("post-seek event %d diverges: %+v vs %+v", i, a, b)
		}
		if a.NumInstr == 0 {
			break
		}
		if seq.Requests() != skip.Requests() || seq.CurrentType() != skip.CurrentType() ||
			seq.Stage() != skip.Stage() || seq.Depth() != skip.Depth() {
			t.Fatalf("post-seek attribution %d diverges", i)
		}
	}
}

// TestCompactEncoding records a 4M-instruction trace and checks it lands
// far below the naive binary dump (unsafe.Sizeof(BlockEvent) per event).
func TestCompactEncoding(t *testing.T) {
	if testing.Short() {
		t.Skip("records a 4M-instruction trace")
	}
	path, sum := recordSmall(t, "gin", 4_000_000, 0)
	naive := int64(sum.Events) * int64(unsafe.Sizeof(isa.BlockEvent{}))
	if sum.Bytes*4 >= naive {
		t.Fatalf("trace is %d bytes for %d events; naive dump %d — want at least 4x smaller",
			sum.Bytes, sum.Events, naive)
	}
	t.Logf("4M instructions: %d events, %d bytes on disk (naive %d, %.1fx smaller, %.2f bits/instr)",
		sum.Events, sum.Bytes, naive, float64(naive)/float64(sum.Bytes),
		float64(sum.Bytes*8)/float64(sum.Instructions))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != sum.Bytes {
		t.Fatalf("summary bytes %d != file size %d", sum.Bytes, st.Size())
	}
}

// TestWriterRejectsUnrepresentable exercises Append's invariant checks.
func TestWriterRejectsUnrepresentable(t *testing.T) {
	valid := func() isa.BlockEvent {
		ev := isa.BlockEvent{Addr: 0x400000, NumInstr: 4}
		ev.Target = ev.EndAddr()
		return ev
	}
	cases := []struct {
		name string
		ev   func() isa.BlockEvent
		a    Attrs
	}{
		{"zero instructions", func() isa.BlockEvent { ev := valid(); ev.NumInstr = 0; return ev }, Attrs{}},
		{"too many instructions", func() isa.BlockEvent { ev := valid(); ev.NumInstr = isa.InstrPerBlock + 1; return ev }, Attrs{}},
		{"branch kind out of range", func() isa.BlockEvent { ev := valid(); ev.Branch = isa.BrRet + 1; return ev }, Attrs{}},
		{"fall-through with target", func() isa.BlockEvent { ev := valid(); ev.Target = 0x1000; return ev }, Attrs{}},
		{"fall-through with branch PC", func() isa.BlockEvent { ev := valid(); ev.BrPC = ev.Addr; return ev }, Attrs{}},
		{"branch PC not at end", func() isa.BlockEvent {
			ev := valid()
			ev.Branch = isa.BrJump
			ev.Target = 0x500000
			ev.BrPC = ev.Addr // should be EndAddr()-InstrSize
			return ev
		}, Attrs{}},
		{"negative type", func() isa.BlockEvent { return valid() }, Attrs{Type: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := NewWriter(&bytes.Buffer{}, Meta{Workload: "x"}, Attrs{}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append(tc.ev(), tc.a); err == nil {
				t.Fatal("Append accepted an unrepresentable event")
			}
		})
	}

	t.Run("requests going backwards", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, Meta{Workload: "x"}, Attrs{Requests: 5}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(valid(), Attrs{Requests: 4}); err == nil {
			t.Fatal("Append accepted a regressing request counter")
		}
	})
	t.Run("append after close", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, Meta{Workload: "x"}, Attrs{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(valid(), Attrs{}); err == nil {
			t.Fatal("Append accepted an event after Close")
		}
	})
}

// TestOpenRejectsForeignFile checks the magic gate.
func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-trace")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xAB}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a non-trace file")
	} else if errors.Is(err, ErrTruncated) {
		t.Fatalf("bad magic misreported as truncation: %v", err)
	}
}
