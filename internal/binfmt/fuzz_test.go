package binfmt

import (
	"bytes"
	"testing"

	"hprefetch/internal/isa"
)

// fuzzSeedImage hand-builds a tiny image exercising every record type —
// small enough (a few hundred bytes) for the mutator to stay fast.
func fuzzSeedImage(tb testing.TB) []byte {
	tb.Helper()
	im := &Image{
		Name:         "fuzz-seed",
		Seed:         7,
		Entry:        0,
		TextBase:     0x400000,
		TextSize:     0x1000,
		RequestTypes: 2,
		TypeWeights:  []float64{0.75, 0.25},
		Funcs: []FuncRecord{
			{Addr: 0x400000, Size: 64, Seed: 1, Kind: 1, Stage: 0,
				Calls: []CallRecord{{Off: 8, Callee: 1, Prob: 0x8000, Repeat: 1}}},
			{Addr: 0x400040, Size: 32, Seed: 2, Kind: 2, Stage: -1,
				Calls: []CallRecord{{Off: 4, Callee: 0, Targets: 1, Prob: 0xFFFF}}},
		},
		TargetSets: []TargetSetRecord{{ByType: true, Funcs: []isa.FuncID{0, 1}}},
		Stages:     []StageRecord{{Name: "parse", Func: 0, Diverges: true, Handlers: []isa.FuncID{1}}},
		Bundles: BundleSegment{
			Threshold:   200 << 10,
			Entries:     []isa.FuncID{1},
			TaggedAddrs: []isa.Addr{0x400010, 0x400044},
		},
	}
	return im.Marshal()
}

// FuzzDecode throws arbitrary bytes at Unmarshal. The invariants: no
// panic, no runaway allocation (count() caps every length prefix against
// the input size), and — because the encoding is canonical and trailing
// bytes are rejected — any accepted input re-marshals to itself.
func FuzzDecode(f *testing.F) {
	seed := fuzzSeedImage(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:11])
	f.Add([]byte{})
	// A hostile length prefix right after the magic+version header.
	hostile := append([]byte(nil), seed[:10]...)
	hostile = append(hostile, 0xFF, 0xFF, 0xFF, 0xFF)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := Unmarshal(data)
		if err != nil {
			if im != nil {
				t.Fatal("Unmarshal returned both an image and an error")
			}
			return
		}
		out := im.Marshal()
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted image is not canonical: in %d bytes, out %d bytes", len(data), len(out))
		}
		// The reconstructed program must also survive without panicking.
		_ = im.Program()
	})
}
