package binfmt

import (
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/program"
)

func testProgram(t *testing.T) *program.Program {
	t.Helper()
	cfg := program.DefaultConfig()
	cfg.Name = "binfmt-test"
	cfg.Seed = 21
	cfg.OrphanFuncs = 150
	p, err := program.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRoundTripUnlinked(t *testing.T) {
	p := testProgram(t)
	im := FromProgram(p)
	data := im.Marshal()
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	q := back.Program()
	if q.Name != p.Name || q.Seed != p.Seed || q.Entry != p.Entry ||
		q.RequestTypes != p.RequestTypes || q.NumFuncs() != p.NumFuncs() {
		t.Fatal("program header fields did not round-trip")
	}
	for i := range p.Funcs {
		a, b := &p.Funcs[i], &q.Funcs[i]
		if a.Size != b.Size || a.Seed != b.Seed || a.Kind != b.Kind || a.Stage != b.Stage || a.Addr != b.Addr {
			t.Fatalf("function %d fields differ after round-trip", i)
		}
		if len(a.Calls) != len(b.Calls) {
			t.Fatalf("function %d call count differs", i)
		}
		for j := range a.Calls {
			if a.Calls[j] != b.Calls[j] {
				t.Fatalf("function %d call %d differs", i, j)
			}
		}
	}
	if len(q.TargetSets) != len(p.TargetSets) || len(q.Stages) != len(p.Stages) {
		t.Fatal("target sets or stages lost")
	}
	for i := range p.TargetSets {
		if p.TargetSets[i].ByType != q.TargetSets[i].ByType ||
			len(p.TargetSets[i].Funcs) != len(q.TargetSets[i].Funcs) {
			t.Fatalf("target set %d differs", i)
		}
	}
	for i := range p.TypeWeights {
		if p.TypeWeights[i] != q.TypeWeights[i] {
			t.Fatalf("type weight %d differs", i)
		}
	}
}

func TestBundleSegmentRoundTrip(t *testing.T) {
	p := testProgram(t)
	im := FromProgram(p)
	im.Bundles = BundleSegment{
		Threshold:   200 << 10,
		Entries:     []isa.FuncID{1, 5, 9},
		TaggedAddrs: []isa.Addr{0x400010, 0x400404, 0x408800},
	}
	back, err := Unmarshal(im.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Bundles.Threshold != im.Bundles.Threshold {
		t.Error("threshold lost")
	}
	if len(back.Bundles.Entries) != 3 || back.Bundles.Entries[1] != 5 {
		t.Errorf("entries lost: %v", back.Bundles.Entries)
	}
	if len(back.Bundles.TaggedAddrs) != 3 || back.Bundles.TaggedAddrs[2] != 0x408800 {
		t.Errorf("tagged addrs lost: %v", back.Bundles.TaggedAddrs)
	}
	if im.Bundles.Empty() {
		t.Error("non-empty segment reported empty")
	}
	var empty BundleSegment
	if !empty.Empty() {
		t.Error("empty segment reported non-empty")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := testProgram(t)
	data := FromProgram(p).Marshal()

	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Unmarshal(data[:len(data)/2]); err == nil {
		t.Error("truncated image accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
	trailing := append(append([]byte(nil), data...), 0xAA)
	if _, err := Unmarshal(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Corrupt a length prefix deep inside: name length made absurd.
	absurd := append([]byte(nil), data...)
	absurd[10] = 0xFF
	absurd[11] = 0xFF
	absurd[12] = 0xFF
	absurd[13] = 0x7F
	if _, err := Unmarshal(absurd); err == nil {
		t.Error("absurd length prefix accepted")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	p := testProgram(t)
	a := FromProgram(p).Marshal()
	b := FromProgram(p).Marshal()
	if string(a) != string(b) {
		t.Error("Marshal is not deterministic")
	}
}
