// Package binfmt defines the binary image format of the synthetic
// applications: an ELF-like container holding the code layout, symbol and
// call-site tables needed to reconstruct the static call graph, plus the
// .bundles segment the linker appends with the Bundle entry points and the
// tagged call/return instruction addresses — the paper's software→hardware
// channel (§5.2). The loader consumes this segment to set the reserved
// tag bit on the flagged instructions.
package binfmt

import (
	"encoding/binary"
	"fmt"
	"math"

	"hprefetch/internal/isa"
	"hprefetch/internal/program"
)

// Magic identifies the image format ("HPBin" packed).
const Magic = 0x4850_4249_4E01

// Version is the current format version.
const Version = 1

// Image is a decoded binary image. It carries everything the analysis
// tools and the loader need: the program structure and, once linked, the
// .bundles segment.
type Image struct {
	// Name is the workload name.
	Name string
	// Seed is the program's master generation seed.
	Seed uint64
	// Entry is the program entry function.
	Entry isa.FuncID
	// TextBase and TextSize describe the linked text segment.
	TextBase isa.Addr
	TextSize uint64
	// RequestTypes and TypeWeights describe the request mix baked into
	// the workload driver section.
	RequestTypes int
	TypeWeights  []float64
	// Funcs is the symbol + call-site table, indexed by FuncID.
	Funcs []FuncRecord
	// TargetSets holds indirect-call dispatch tables.
	TargetSets []TargetSetRecord
	// Stages describes the request pipeline.
	Stages []StageRecord
	// Bundles is the linker-added segment (empty before linking).
	Bundles BundleSegment
}

// FuncRecord is one symbol-table entry with its call sites.
type FuncRecord struct {
	Addr  isa.Addr
	Size  uint32
	Seed  uint64
	Kind  uint8
	Stage int16
	Calls []CallRecord
}

// CallRecord mirrors program.Call in the image.
type CallRecord struct {
	Off     uint32
	Callee  isa.FuncID
	Targets uint32
	Prob    uint16
	Repeat  uint8
}

// TargetSetRecord mirrors program.TargetSet.
type TargetSetRecord struct {
	ByType bool
	Funcs  []isa.FuncID
}

// StageRecord mirrors program.Stage.
type StageRecord struct {
	Name     string
	Func     isa.FuncID
	Diverges bool
	Handlers []isa.FuncID
}

// BundleSegment is the .bundles section: the output of the link-time
// Bundle identification pass.
type BundleSegment struct {
	// Threshold is the divergence threshold used (bytes).
	Threshold uint64
	// Entries lists Bundle entry functions in ascending order.
	Entries []isa.FuncID
	// TaggedAddrs lists the call/return instruction addresses to tag,
	// in ascending order.
	TaggedAddrs []isa.Addr
}

// Empty reports whether the segment is absent (unlinked image).
func (b *BundleSegment) Empty() bool {
	return len(b.Entries) == 0 && len(b.TaggedAddrs) == 0
}

// FromProgram builds an image from a program (linked or not).
func FromProgram(p *program.Program) *Image {
	im := &Image{
		Name:         p.Name,
		Seed:         p.Seed,
		Entry:        p.Entry,
		TextBase:     p.TextBase,
		TextSize:     p.TextSize,
		RequestTypes: p.RequestTypes,
		TypeWeights:  append([]float64(nil), p.TypeWeights...),
	}
	im.Funcs = make([]FuncRecord, len(p.Funcs))
	for i := range p.Funcs {
		f := &p.Funcs[i]
		fr := FuncRecord{Addr: f.Addr, Size: f.Size, Seed: f.Seed, Kind: uint8(f.Kind), Stage: f.Stage}
		fr.Calls = make([]CallRecord, len(f.Calls))
		for j, c := range f.Calls {
			fr.Calls[j] = CallRecord{Off: c.Off, Callee: c.Callee, Targets: c.Targets, Prob: c.Prob, Repeat: c.Repeat}
		}
		im.Funcs[i] = fr
	}
	im.TargetSets = make([]TargetSetRecord, len(p.TargetSets))
	for i, ts := range p.TargetSets {
		im.TargetSets[i] = TargetSetRecord{ByType: ts.ByType, Funcs: append([]isa.FuncID(nil), ts.Funcs...)}
	}
	im.Stages = make([]StageRecord, len(p.Stages))
	for i, s := range p.Stages {
		im.Stages[i] = StageRecord{Name: s.Name, Func: s.Func, Diverges: s.Diverges, Handlers: append([]isa.FuncID(nil), s.Handlers...)}
	}
	return im
}

// Program reconstructs the program structure from the image.
func (im *Image) Program() *program.Program {
	p := &program.Program{
		Name:         im.Name,
		Seed:         im.Seed,
		Entry:        im.Entry,
		TextBase:     im.TextBase,
		TextSize:     im.TextSize,
		RequestTypes: im.RequestTypes,
		TypeWeights:  append([]float64(nil), im.TypeWeights...),
	}
	p.Funcs = make([]program.Function, len(im.Funcs))
	for i := range im.Funcs {
		fr := &im.Funcs[i]
		f := program.Function{Addr: fr.Addr, Size: fr.Size, Seed: fr.Seed, Kind: program.FuncKind(fr.Kind), Stage: fr.Stage}
		f.Calls = make([]program.Call, len(fr.Calls))
		for j, c := range fr.Calls {
			f.Calls[j] = program.Call{Off: c.Off, Callee: c.Callee, Targets: c.Targets, Prob: c.Prob, Repeat: c.Repeat}
		}
		p.Funcs[i] = f
	}
	p.TargetSets = make([]program.TargetSet, len(im.TargetSets))
	for i, ts := range im.TargetSets {
		p.TargetSets[i] = program.TargetSet{ByType: ts.ByType, Funcs: append([]isa.FuncID(nil), ts.Funcs...)}
	}
	p.Stages = make([]program.Stage, len(im.Stages))
	for i, s := range im.Stages {
		p.Stages[i] = program.Stage{Name: s.Name, Func: s.Func, Diverges: s.Diverges, Handlers: append([]isa.FuncID(nil), s.Handlers...)}
	}
	if p.Linked() {
		p.BuildAddrIndex()
	}
	return p
}

// writer serialises with little-endian fixed-width fields.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

// Marshal encodes the image.
func (im *Image) Marshal() []byte {
	w := &writer{buf: make([]byte, 0, 64+len(im.Funcs)*40)}
	w.u64(Magic)
	w.u16(Version)
	w.str(im.Name)
	w.u64(im.Seed)
	w.u32(uint32(im.Entry))
	w.u64(uint64(im.TextBase))
	w.u64(im.TextSize)
	w.u32(uint32(im.RequestTypes))
	w.u32(uint32(len(im.TypeWeights)))
	for _, v := range im.TypeWeights {
		w.f64(v)
	}
	w.u32(uint32(len(im.Funcs)))
	for i := range im.Funcs {
		f := &im.Funcs[i]
		w.u64(uint64(f.Addr))
		w.u32(f.Size)
		w.u64(f.Seed)
		w.u8(f.Kind)
		w.u16(uint16(f.Stage))
		w.u32(uint32(len(f.Calls)))
		for _, c := range f.Calls {
			w.u32(c.Off)
			w.u32(uint32(c.Callee))
			w.u32(c.Targets)
			w.u16(c.Prob)
			w.u8(c.Repeat)
		}
	}
	w.u32(uint32(len(im.TargetSets)))
	for _, ts := range im.TargetSets {
		if ts.ByType {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.u32(uint32(len(ts.Funcs)))
		for _, f := range ts.Funcs {
			w.u32(uint32(f))
		}
	}
	w.u32(uint32(len(im.Stages)))
	for _, s := range im.Stages {
		w.str(s.Name)
		w.u32(uint32(s.Func))
		if s.Diverges {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.u32(uint32(len(s.Handlers)))
		for _, h := range s.Handlers {
			w.u32(uint32(h))
		}
	}
	// .bundles segment.
	w.u64(im.Bundles.Threshold)
	w.u32(uint32(len(im.Bundles.Entries)))
	for _, e := range im.Bundles.Entries {
		w.u32(uint32(e))
	}
	w.u32(uint32(len(im.Bundles.TaggedAddrs)))
	for _, a := range im.Bundles.TaggedAddrs {
		w.u64(uint64(a))
	}
	return w.buf
}

// reader decodes with bounds checking.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	// n < 0 catches 32-bit int overflow of a hostile u32 length prefix;
	// the subtraction form avoids overflowing r.off+n.
	if n < 0 || n > len(r.buf)-r.off {
		r.err = fmt.Errorf("binfmt: truncated image at offset %d (need %d of %d)", r.off, n, len(r.buf))
		return false
	}
	return true
}
func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}
func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}
func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}
func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}
func (r *reader) str() string {
	n := int(r.u32())
	if !r.need(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// boolean accepts only the canonical 0/1 encodings, keeping the format
// strict: every accepted image re-marshals to the identical bytes.
func (r *reader) boolean() bool {
	b := r.u8()
	if r.err == nil && b > 1 {
		r.err = fmt.Errorf("binfmt: invalid boolean byte %#x at offset %d", b, r.off-1)
	}
	return b != 0
}

// count reads a length prefix and sanity-checks it against the remaining
// bytes, assuming each element needs at least minElem bytes, preventing
// huge allocations from corrupt images.
func (r *reader) count(minElem int) int {
	// 64-bit math throughout: a hostile prefix near 2^32 must not wrap
	// the product (or the int conversion) on 32-bit platforms.
	n := int64(r.u32())
	if r.err == nil && n*int64(minElem) > int64(len(r.buf)-r.off) {
		r.err = fmt.Errorf("binfmt: implausible element count %d at offset %d", n, r.off)
		return 0
	}
	return int(n)
}

// Unmarshal decodes an image, validating structure but not semantics.
func Unmarshal(data []byte) (*Image, error) {
	r := &reader{buf: data}
	if r.u64() != Magic {
		return nil, fmt.Errorf("binfmt: bad magic")
	}
	if v := r.u16(); v != Version {
		return nil, fmt.Errorf("binfmt: unsupported version %d", v)
	}
	im := &Image{}
	im.Name = r.str()
	im.Seed = r.u64()
	im.Entry = isa.FuncID(r.u32())
	im.TextBase = isa.Addr(r.u64())
	im.TextSize = r.u64()
	im.RequestTypes = int(r.u32())
	nw := r.count(8)
	im.TypeWeights = make([]float64, 0, nw)
	for i := 0; i < nw; i++ {
		im.TypeWeights = append(im.TypeWeights, r.f64())
	}
	nf := r.count(27)
	im.Funcs = make([]FuncRecord, 0, nf)
	for i := 0; i < nf && r.err == nil; i++ {
		var f FuncRecord
		f.Addr = isa.Addr(r.u64())
		f.Size = r.u32()
		f.Seed = r.u64()
		f.Kind = r.u8()
		f.Stage = int16(r.u16())
		nc := r.count(15)
		f.Calls = make([]CallRecord, 0, nc)
		for j := 0; j < nc; j++ {
			f.Calls = append(f.Calls, CallRecord{
				Off:     r.u32(),
				Callee:  isa.FuncID(r.u32()),
				Targets: r.u32(),
				Prob:    r.u16(),
				Repeat:  r.u8(),
			})
		}
		im.Funcs = append(im.Funcs, f)
	}
	nts := r.count(5)
	im.TargetSets = make([]TargetSetRecord, 0, nts)
	for i := 0; i < nts && r.err == nil; i++ {
		var ts TargetSetRecord
		ts.ByType = r.boolean()
		n := r.count(4)
		ts.Funcs = make([]isa.FuncID, 0, n)
		for j := 0; j < n; j++ {
			ts.Funcs = append(ts.Funcs, isa.FuncID(r.u32()))
		}
		im.TargetSets = append(im.TargetSets, ts)
	}
	ns := r.count(13)
	im.Stages = make([]StageRecord, 0, ns)
	for i := 0; i < ns && r.err == nil; i++ {
		var s StageRecord
		s.Name = r.str()
		s.Func = isa.FuncID(r.u32())
		s.Diverges = r.boolean()
		n := r.count(4)
		s.Handlers = make([]isa.FuncID, 0, n)
		for j := 0; j < n; j++ {
			s.Handlers = append(s.Handlers, isa.FuncID(r.u32()))
		}
		im.Stages = append(im.Stages, s)
	}
	im.Bundles.Threshold = r.u64()
	ne := r.count(4)
	im.Bundles.Entries = make([]isa.FuncID, 0, ne)
	for i := 0; i < ne; i++ {
		im.Bundles.Entries = append(im.Bundles.Entries, isa.FuncID(r.u32()))
	}
	na := r.count(8)
	im.Bundles.TaggedAddrs = make([]isa.Addr, 0, na)
	for i := 0; i < na; i++ {
		im.Bundles.TaggedAddrs = append(im.Bundles.TaggedAddrs, isa.Addr(r.u64()))
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("binfmt: %d trailing bytes", len(data)-r.off)
	}
	return im, nil
}
