package core

import (
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch/prefetchtest"
)

// TestRejectsTagOnNonCallRet asserts a Bundle tag carried by a plain
// block terminator (a flipped reserved bit) is ignored and counted, not
// trusted as a boundary.
func TestRejectsTagOnNonCallRet(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)

	ev := &isa.BlockEvent{Addr: 0x1000, NumInstr: 16, Tagged: true} // BrNone
	p.OnRetire(ev)
	if p.Counters.Boundaries != 0 {
		t.Errorf("corrupt tag started a Bundle (Boundaries = %d)", p.Counters.Boundaries)
	}
	if p.Counters.BundleRejects != 1 {
		t.Errorf("BundleRejects = %d, want 1", p.Counters.BundleRejects)
	}

	// A genuine tagged call still works.
	p.OnRetire(tag(0xAAAA00))
	if p.Counters.Boundaries != 1 {
		t.Errorf("valid tag rejected (Boundaries = %d)", p.Counters.Boundaries)
	}
}

// TestRejectsBoundaryOutsideText asserts that, with text bounds armed,
// a boundary target outside the text segment is treated as corrupted
// metadata.
func TestRejectsBoundaryOutsideText(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	p.SetTextBounds(0x400000, 0x800000)

	p.OnRetire(tag(0x500000)) // inside: accepted
	p.OnRetire(tag(0x900000)) // outside: rejected
	p.OnRetire(tag(0x3FFFFF)) // below base: rejected
	if p.Counters.Boundaries != 1 {
		t.Errorf("Boundaries = %d, want 1", p.Counters.Boundaries)
	}
	if p.Counters.BundleRejects != 2 {
		t.Errorf("BundleRejects = %d, want 2", p.Counters.BundleRejects)
	}
}

// TestReplaySkipsOutOfTextRegions asserts replay never prefetches from
// recorded regions that fall outside the armed text bounds, while
// in-bounds regions still stream.
func TestReplaySkipsOutOfTextRegions(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	base := isa.Addr(0x400000)
	// Bound the text to cover the recorded footprint below but not the
	// rogue high blocks.
	p.SetTextBounds(base, base+1<<20)

	good := seqBlocks(base.Block(), 40)
	rogue := seqBlocks((base + 2<<20).Block(), 40) // outside text

	blocks := append(append([]isa.Block{}, good...), rogue...)
	runBundle(p, m, 0x480000, blocks)
	runBundle(p, m, 0x480100, seqBlocks(base.Block()+5000, 5))

	m.Issued = nil
	runBundle(p, m, 0x480000, blocks) // replay pass
	issued := m.IssuedSet()
	for _, b := range rogue {
		if issued[b] {
			t.Fatalf("replay prefetched out-of-text block %v", b)
		}
	}
	coveredGood := 0
	for _, b := range good {
		if issued[b] {
			coveredGood++
		}
	}
	if coveredGood == 0 {
		t.Error("degraded mode suppressed in-bounds replay entirely")
	}
	if p.Counters.BundleRejects == 0 {
		t.Error("out-of-text regions were not counted as rejects")
	}
}

