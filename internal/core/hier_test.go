package core

import (
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch/prefetchtest"
)

// tag emits a tagged call event whose target determines the Bundle ID.
func tag(target isa.Addr) *isa.BlockEvent {
	return &isa.BlockEvent{
		Addr: 0x100, NumInstr: 4,
		Branch: isa.BrCall, BrPC: 0x10C, Target: target, Tagged: true,
	}
}

func evb(b isa.Block) *isa.BlockEvent {
	return &isa.BlockEvent{Addr: b.Addr(), NumInstr: 16}
}

// runBundle feeds one Bundle: a tagged entry followed by a block walk.
func runBundle(p *Hier, m *prefetchtest.MockMachine, entry isa.Addr, blocks []isa.Block) {
	p.OnRetire(tag(entry))
	for _, b := range blocks {
		m.InstrSeqV += 16
		m.NowV += 4 * 48
		m.BlockSeqV++
		p.OnRetire(evb(b))
	}
}

func seqBlocks(base isa.Block, n int) []isa.Block {
	out := make([]isa.Block, n)
	for i := range out {
		out[i] = base + isa.Block(i)
	}
	return out
}

func TestRecordThenReplay(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	blocks := seqBlocks(1000, 300)

	runBundle(p, m, 0xAAAA00, blocks) // first execution: record only
	firstIssued := len(m.Issued)
	runBundle(p, m, 0xBBBB00, seqBlocks(50_000, 10)) // boundary closes record
	if firstIssued != 0 {
		t.Fatalf("replay fired before any record existed (%d issues)", firstIssued)
	}

	m.Issued = nil
	runBundle(p, m, 0xAAAA00, blocks) // second execution: replay
	issued := m.IssuedSet()
	covered := 0
	for _, b := range blocks {
		if issued[b] {
			covered++
		}
	}
	if covered < len(blocks)*8/10 {
		t.Fatalf("replay covered %d of %d recorded blocks", covered, len(blocks))
	}
	if p.Counters.MATHits == 0 {
		t.Error("MAT never hit")
	}
}

func TestReplayIsMostRecentExecution(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	oldSet := seqBlocks(1000, 100)
	newSet := seqBlocks(9000, 100)

	runBundle(p, m, 0xAAAA00, oldSet)
	runBundle(p, m, 0xBBBB00, seqBlocks(50_000, 5))
	runBundle(p, m, 0xAAAA00, newSet) // supersedes the old record
	runBundle(p, m, 0xBBBB00, seqBlocks(50_000, 5))

	m.Issued = nil
	runBundle(p, m, 0xAAAA00, newSet)
	issued := m.IssuedSet()
	for _, b := range oldSet {
		if issued[b] {
			t.Fatalf("stale block %v replayed after record superseded", b)
		}
	}
	coveredNew := 0
	for _, b := range newSet {
		if issued[b] {
			coveredNew++
		}
	}
	if coveredNew < 80 {
		t.Errorf("only %d of 100 fresh blocks replayed", coveredNew)
	}
}

func TestBundleIDFromNextInstruction(t *testing.T) {
	p := New(DefaultConfig(), prefetchtest.NewMockMachine())
	a := p.bundleID(0x400000)
	b := p.bundleID(0x400004)
	if a == b {
		t.Error("adjacent targets hash to the same Bundle ID")
	}
	if a >= 1<<24 || b >= 1<<24 {
		t.Error("Bundle ID exceeds 24 bits")
	}
}

func TestStorageBudgetMatchesPaper(t *testing.T) {
	p := New(DefaultConfig(), prefetchtest.NewMockMachine())
	if p.StorageBits() != 15872 {
		t.Errorf("on-chip storage = %d bits, paper says 15872 (1.94KB)", p.StorageBits())
	}
	if p.Name() != "Hierarchical" {
		t.Error("name")
	}
}

func TestMetadataTrafficCharged(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	blocks := seqBlocks(1000, 400)
	runBundle(p, m, 0xAAAA00, blocks)
	runBundle(p, m, 0xBBBB00, seqBlocks(50_000, 5))
	if m.MetaWrites == 0 {
		t.Error("record produced no metadata writes")
	}
	reads := m.MetaReads
	runBundle(p, m, 0xAAAA00, blocks)
	if m.MetaReads == reads {
		t.Error("replay produced no metadata reads")
	}
}

func TestMetadataLatencyGatesReplay(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	m.MetaDelay = 1 << 40 // metadata effectively never arrives
	p := New(DefaultConfig(), m)
	blocks := seqBlocks(1000, 100)
	runBundle(p, m, 0xAAAA00, blocks)
	runBundle(p, m, 0xBBBB00, seqBlocks(50_000, 5))
	m.Issued = nil
	runBundle(p, m, 0xAAAA00, blocks)
	if len(m.Issued) != 0 {
		t.Error("replay issued prefetches before metadata arrived")
	}
}

func TestRecordLengthCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSegments = 2
	m := prefetchtest.NewMockMachine()
	p := New(cfg, m)
	// A huge bundle: scattered blocks forcing many regions.
	var blocks []isa.Block
	for i := 0; i < 500; i++ {
		blocks = append(blocks, isa.Block(i*64)) // one region each
	}
	runBundle(p, m, 0xAAAA00, blocks)
	runBundle(p, m, 0xBBBB00, seqBlocks(900_000, 5))
	m.Issued = nil
	runBundle(p, m, 0xAAAA00, blocks)
	// Replay can cover at most MaxSegments * RegionsPerSegment regions.
	max := cfg.MaxSegments * cfg.RegionsPerSegment * 32
	if len(m.Issued) > max {
		t.Errorf("replayed %d blocks despite a %d-segment cap", len(m.Issued), cfg.MaxSegments)
	}
}

func TestMATCapacityEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MATEntries = 16
	cfg.MATWays = 2
	m := prefetchtest.NewMockMachine()
	p := New(cfg, m)
	// Touch far more bundles than MAT entries.
	for i := 0; i < 200; i++ {
		entry := isa.Addr(0x100000 + i*0x1000)
		runBundle(p, m, entry, seqBlocks(isa.Block(1000+i*10), 5))
	}
	hits := p.Counters.MATHits
	if hits != 0 {
		t.Logf("unexpected (but harmless) MAT hits from aliasing: %d", hits)
	}
	// Revisit the last few — they should still be tracked.
	m.Issued = nil
	before := p.Counters.MATHits
	for i := 195; i < 200; i++ {
		entry := isa.Addr(0x100000 + i*0x1000)
		runBundle(p, m, entry, seqBlocks(isa.Block(1000+i*10), 5))
	}
	if p.Counters.MATHits == before {
		t.Error("recently recorded bundles already evicted from a 16-entry MAT")
	}
}

func TestBundleSummaryTracksStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrackStats = true
	m := prefetchtest.NewMockMachine()
	p := New(cfg, m)
	blocks := seqBlocks(1000, 50)
	for i := 0; i < 4; i++ {
		runBundle(p, m, 0xAAAA00, blocks)
		runBundle(p, m, 0xBBBB00, seqBlocks(70_000, 20))
	}
	sum := p.BundleSummary()
	if sum.DistinctBundles != 2 {
		t.Fatalf("distinct = %d", sum.DistinctBundles)
	}
	if sum.Executions < 6 {
		t.Errorf("executions = %d", sum.Executions)
	}
	// Identical executions: Jaccard must be 1.
	if sum.AvgJaccard < 0.999 {
		t.Errorf("identical footprints scored Jaccard %.3f", sum.AvgJaccard)
	}
	wantKB := float64(50*isa.BlockSize) / 1024
	if sum.AvgFootprintKB < wantKB/2 {
		t.Errorf("footprint %.2fKB, expected around %.2f+", sum.AvgFootprintKB, wantKB)
	}
}

func TestNoStatsWithoutTracking(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	runBundle(p, m, 0xAAAA00, seqBlocks(1000, 10))
	if sum := p.BundleSummary(); sum.DistinctBundles != 0 {
		t.Error("stats collected without TrackStats")
	}
}

func TestSegmentWrapInvalidation(t *testing.T) {
	// A tiny metadata buffer forces circular reclamation; replay must
	// survive chains being overwritten (no panics, chain-broken counted
	// or replay simply ends).
	cfg := DefaultConfig()
	cfg.MetadataKB = 4 // ~10 segments
	m := prefetchtest.NewMockMachine()
	p := New(cfg, m)
	for i := 0; i < 50; i++ {
		entry := isa.Addr(0x100000 + (i%7)*0x1000)
		var blocks []isa.Block
		for j := 0; j < 200; j++ {
			blocks = append(blocks, isa.Block(1000+i*7+j*64))
		}
		runBundle(p, m, entry, blocks)
	}
	// Reaching here without panic is the main assertion; the buffer is
	// far too small for 7 interleaved bundles, so replays must have
	// been cut short at least once.
	if p.Counters.ChainBroken == 0 && p.Counters.MATHits > 10 {
		t.Log("note: no chain breaks observed; wrap pressure may be low")
	}
}

func TestRecordOnceKeepsStaleFootprint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordOnce = true
	m := prefetchtest.NewMockMachine()
	p := New(cfg, m)
	oldSet := seqBlocks(1000, 80)
	newSet := seqBlocks(9000, 80)

	runBundle(p, m, 0xAAAA00, oldSet)
	runBundle(p, m, 0xBBBB00, seqBlocks(50_000, 5))
	runBundle(p, m, 0xAAAA00, newSet) // would supersede in default mode
	runBundle(p, m, 0xBBBB00, seqBlocks(50_000, 5))

	m.Issued = nil
	runBundle(p, m, 0xAAAA00, newSet)
	issued := m.IssuedSet()
	stale := 0
	for _, b := range oldSet {
		if issued[b] {
			stale++
		}
	}
	if stale < len(oldSet)/2 {
		t.Errorf("record-once replayed only %d stale blocks; first footprint not retained", stale)
	}
	fresh := 0
	for _, b := range newSet {
		if issued[b] {
			fresh++
		}
	}
	if fresh > len(newSet)/4 {
		t.Errorf("record-once learned %d fresh blocks; it should not re-record", fresh)
	}
}

func TestDisablePacingStreamsEagerly(t *testing.T) {
	// With pacing off, the whole recorded footprint streams as soon as
	// the metadata arrives, regardless of execution progress. Scattered
	// blocks (one spatial region each) force a multi-segment record.
	blocks := make([]isa.Block, 200)
	for i := range blocks {
		blocks[i] = isa.Block(1000 + i*64)
	}
	record := func(cfg Config) int {
		m := prefetchtest.NewMockMachine()
		p := New(cfg, m)
		runBundle(p, m, 0xAAAA00, blocks)
		runBundle(p, m, 0xBBBB00, seqBlocks(900_000, 5))
		m.Issued = nil
		// Re-enter the bundle but execute only the first quarter:
		// pacing must hold later segments back; unpaced must not.
		p.OnRetire(tag(0xAAAA00))
		for i := 0; i < 50; i++ {
			m.InstrSeqV += 16
			p.OnRetire(evb(blocks[i]))
		}
		return len(m.Issued)
	}
	paced := record(DefaultConfig())
	cfg := DefaultConfig()
	cfg.DisablePacing = true
	unpaced := record(cfg)
	if unpaced <= paced {
		t.Errorf("unpaced replay issued %d <= paced %d", unpaced, paced)
	}
}

// TestSetAggressivenessKnobs: the Tunable hooks retarget the replay
// burst budget and free-segment pacing window, with clamping at both
// ends; an ungoverned Hier keeps the paper's defaults.
func TestSetAggressivenessKnobs(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	if p.burst != DefaultConfig().BurstPrefetches || p.freeSegs != 1 {
		t.Fatalf("ungoverned defaults wrong: burst %d freeSegs %d", p.burst, p.freeSegs)
	}
	p.SetAggressiveness(4, 2)
	if p.burst != 4 || p.freeSegs != 2 {
		t.Fatalf("knobs not applied: burst %d freeSegs %d", p.burst, p.freeSegs)
	}
	p.SetAggressiveness(0, 0)
	if p.burst != 1 || p.freeSegs != 1 {
		t.Fatalf("low clamp: burst %d freeSegs %d", p.burst, p.freeSegs)
	}
	p.SetAggressiveness(1, 1<<20)
	if p.freeSegs != len(p.segs) {
		t.Fatalf("high clamp: freeSegs %d, want %d", p.freeSegs, len(p.segs))
	}
}

// TestBurstBudgetThrottlesReplay: a burst budget of 1 issues at most one
// prefetch per retired event during replay, while the default budget
// streams a whole segment's worth; both replay the same recording.
func TestBurstBudgetThrottlesReplay(t *testing.T) {
	record := func(p *Hier, m *prefetchtest.MockMachine) {
		blocks := seqBlocks(1000, 120)
		runBundle(p, m, 0x4000, blocks)
		runBundle(p, m, 0x8000, seqBlocks(5000, 4)) // close the first recording
	}
	issuedWith := func(burst int) (total, maxPerEvent int) {
		m := prefetchtest.NewMockMachine()
		p := New(DefaultConfig(), m)
		record(p, m)
		if burst > 0 {
			p.SetAggressiveness(burst, 1)
		}
		m.Issued = nil
		p.OnRetire(tag(0x4000)) // replay trigger
		for _, b := range seqBlocks(1000, 20) {
			before := len(m.Issued)
			m.InstrSeqV += 16
			m.NowV += 4 * 48
			m.BlockSeqV++
			p.OnRetire(evb(b))
			if d := len(m.Issued) - before; d > maxPerEvent {
				maxPerEvent = d
			}
		}
		return len(m.Issued), maxPerEvent
	}
	oneTotal, onePeak := issuedWith(1)
	defTotal, _ := issuedWith(0)
	if onePeak > 1 {
		t.Fatalf("burst 1 issued %d prefetches in one event", onePeak)
	}
	if defTotal <= oneTotal {
		t.Fatalf("default burst total (%d) not above burst-1 total (%d)", defTotal, oneTotal)
	}
}
