// Package core implements the paper's contribution: the Hierarchical
// Prefetcher (§5.3). Software (the linker's Bundle identification pass)
// tags the call/return instructions that begin coarse-grained
// functionalities; at commit time the hardware described here reacts to
// those tags. Each tagged instruction starts a new Bundle whose ID is
// hashed from the address of the next instruction. The prefetcher then
//
//   - records the Bundle's retired instruction footprint, compressed into
//     spatial regions by a 16-entry Compression Buffer (§5.3.1), into an
//     in-memory Metadata Buffer organised as segments of 32 regions in an
//     implicit linked list (§5.3.2), superseding the previous record; and
//   - replays the footprint recorded by the previous execution of the
//     same Bundle, located through the on-chip Metadata Address Table
//     (§5.3.3), streaming it into the L1-I segment by segment, paced by
//     each segment's num-insts mark so the prefetched content tracks
//     execution without overflowing the cache (§5.3.5).
//
// Replay is non-speculative (it starts only when the tagged instruction
// commits) and deliberately takes no corrective action on intra-Bundle
// control-flow variation, which is what lets it run arbitrarily far ahead
// of fetch — the property that produces the paper's coverage and
// timeliness results. Metadata reads and writes are charged through the
// simulated LLC/memory path.
package core

import (
	"sort"

	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch"
)

// Config sizes the Hierarchical Prefetcher (defaults per §5.3/§6.3).
type Config struct {
	// CompressionEntries sizes the Compression Buffer (paper: 16).
	CompressionEntries int
	// MATEntries and MATWays size the Metadata Address Table
	// (paper: 512 entries, 8-way — 1.94KB on chip).
	MATEntries, MATWays int
	// BundleIDBits is the Bundle ID width (paper: 24).
	BundleIDBits int
	// MetadataKB is the in-memory Metadata Buffer capacity (paper: 512).
	MetadataKB int
	// RegionsPerSegment is the segment payload (paper: 32 spatial
	// regions per segment, ~0.37KB).
	RegionsPerSegment int
	// MaxSegments caps one Bundle's record length.
	MaxSegments int
	// BurstPrefetches bounds replay issue per retired event.
	BurstPrefetches int
	// TrackStats enables the per-Bundle instrumentation behind the
	// Table 4 statistics (footprints, execution cycles, Jaccard).
	TrackStats bool

	// RecordOnce is an ablation: keep the first recorded footprint of
	// each Bundle forever instead of superseding it with the most
	// recent execution (§5.3.4 argues for replay-latest because it
	// quickly unlearns sporadic paths).
	RecordOnce bool
	// DisablePacing is an ablation: stream the whole recorded footprint
	// as fast as the queue allows instead of pacing segments by their
	// num-insts marks (§5.3.5 argues pacing keeps the stream within
	// L1-I capacity).
	DisablePacing bool
}

// DefaultConfig mirrors the paper's configuration.
func DefaultConfig() Config {
	return Config{
		CompressionEntries: 16,
		MATEntries:         512,
		MATWays:            8,
		BundleIDBits:       24,
		MetadataKB:         512,
		RegionsPerSegment:  32,
		MaxSegments:        96,
		BurstPrefetches:    8,
	}
}

// segmentHeaderBytes models next-seg, num-insts and Bundle ID storage.
const segmentHeaderBytes = 12

// regionBytes models one stored spatial region (base + bit vector).
const regionBytes = 12

// metadataBase is where the Metadata Buffer lives in the simulated
// physical address space (disjoint from any text segment).
const metadataBase = isa.Addr(0x7F00_0000_0000)

// segment is one Metadata Buffer segment.
type segment struct {
	regions  []prefetch.Region
	next     int32  // chain link, -1 at the tail
	numInsts uint64 // instructions from Bundle start at creation
	owner    uint32 // owning Bundle ID
	isHead   bool
	valid    bool
}

// matEntry is one Metadata Address Table way.
type matEntry struct {
	tag   uint32
	head  int32
	valid bool
	age   uint8
}

// BundleStat aggregates one Bundle's dynamic behaviour (TrackStats mode).
type BundleStat struct {
	// Execs counts completed executions.
	Execs uint64
	// BlocksSum accumulates per-execution footprint sizes in blocks.
	BlocksSum uint64
	// CyclesSum accumulates per-execution durations in cycles.
	CyclesSum uint64
	// JaccardSum and JaccardCount aggregate consecutive-execution
	// footprint similarity.
	JaccardSum   float64
	JaccardCount uint64

	prev map[isa.Block]struct{}
	cur  map[isa.Block]struct{}
}

// Hier is the Hierarchical Prefetcher.
type Hier struct {
	cfg Config
	m   prefetch.Machine

	mat     []matEntry
	matSets int

	segs  []segment
	alloc int

	// Record state.
	recActive bool
	recFull   bool
	recBundle uint32
	recHead   int32
	recCur    int32
	recSegs   int
	recStart  uint64 // InstrSeq at Bundle start
	cb        *prefetch.RegionBuffer

	// Replay state.
	repActive  bool
	repBundle  uint32
	repSeg     int32
	repOrdinal int
	fifo       []prefetch.Region
	fifoIdx    int
	bitIdx     int
	readyAt    uint64
	repStart   uint64 // InstrSeq at Bundle start
	paceMark   uint64 // numInsts of the current segment

	// Aggressiveness knobs (prefetch.Tunable): burst is the replay issue
	// budget per retired event (initialised from cfg.BurstPrefetches);
	// freeSegs is how many segments stream unpaced at the start of a
	// replay before the num-insts rule engages (1 = the paper's policy:
	// first and second segments go immediately).
	burst    int
	freeSegs int

	// Instrumentation.
	stats      map[uint32]*BundleStat
	curStat    *BundleStat
	statStartC uint64

	// Degraded-mode text bounds: tagged targets and replayed regions
	// outside [textBase, textEnd) are treated as corrupted metadata.
	// Zero bounds disable the check (trusting mode, the default).
	textBase, textEnd isa.Addr

	// Counters is cheap always-on diagnostics.
	Counters struct {
		Boundaries    uint64 // tagged instructions seen
		MATHits       uint64 // replays started
		ReplayEnds    uint64 // replays that ran a chain to its end
		ChainBroken   uint64 // replays killed by reclaimed segments
		SegsLoaded    uint64 // segments streamed
		PrefIssued    uint64 // prefetches handed to the machine
		PaceStalls    uint64 // advance attempts blocked by pacing
		LeadSum       uint64 // sum of per-advance replay leads (instr)
		LeadCount     uint64
		BundleRejects uint64 // malformed hints ignored (degraded mode)
	}
}

// New builds a Hierarchical Prefetcher attached to machine m.
func New(cfg Config, m prefetch.Machine) *Hier {
	nSegs := cfg.MetadataKB * 1024 / (segmentHeaderBytes + cfg.RegionsPerSegment*regionBytes)
	if nSegs < 4 {
		nSegs = 4
	}
	h := &Hier{
		cfg:      cfg,
		m:        m,
		mat:      make([]matEntry, cfg.MATEntries),
		matSets:  cfg.MATEntries / cfg.MATWays,
		segs:     make([]segment, nSegs),
		cb:       prefetch.NewRegionBuffer(cfg.CompressionEntries),
		burst:    cfg.BurstPrefetches,
		freeSegs: 1,
	}
	if cfg.TrackStats {
		h.stats = make(map[uint32]*BundleStat)
	}
	return h
}

// Name identifies the scheme.
func (h *Hier) Name() string { return "Hierarchical" }

// SetAggressiveness retargets the bundle-issue policy (prefetch.Tunable):
// degree becomes the per-event replay burst budget and lookahead the
// number of segments streamed before pacing engages. Ungoverned runs
// keep cfg.BurstPrefetches and the paper's one-free-segment policy.
func (h *Hier) SetAggressiveness(degree, lookahead int) {
	if degree < 1 {
		degree = 1
	}
	if lookahead < 1 {
		lookahead = 1
	}
	if lookahead > len(h.segs) {
		lookahead = len(h.segs)
	}
	h.burst, h.freeSegs = degree, lookahead
}

// SetTextBounds arms degraded-mode validation: the prefetcher is given
// the text segment [base, end) and treats any Bundle hint pointing
// outside it — or carried by a non-call/return instruction — as
// corrupted metadata to ignore (counted in Counters.BundleRejects)
// rather than trust. This is the hardware side of the channel contract:
// bad software metadata degrades the prefetcher to FDIP, it never
// redirects it.
func (h *Hier) SetTextBounds(base, end isa.Addr) {
	h.textBase, h.textEnd = base, end
}

// validBoundary vets a tagged retired event before it is allowed to
// start a Bundle. The loader only tags call and return instructions
// (§5.2); a tag on anything else, or a boundary target outside the text
// segment, is a corrupted hint.
func (h *Hier) validBoundary(ev *isa.BlockEvent) bool {
	if !ev.Branch.IsCall() && ev.Branch != isa.BrRet {
		return false
	}
	return h.inText(ev.Target)
}

// inText reports whether addr falls inside the armed text bounds
// (always true in trusting mode).
func (h *Hier) inText(addr isa.Addr) bool {
	if h.textEnd <= h.textBase {
		return true
	}
	return addr >= h.textBase && addr < h.textEnd
}

// NumSegments returns the Metadata Buffer capacity in segments.
func (h *Hier) NumSegments() int { return len(h.segs) }

// StorageBits reports the on-chip budget. The paper counts the Metadata
// Address Table: 18-bit tag + 11-bit pointer + valid per entry plus one
// LRU bit per way — 15872 bits (1.94KB) at the default 512x8
// configuration. The 16-entry Compression Buffer is the only other
// on-chip state and is reported by its own StorageBits.
func (h *Hier) StorageBits() int {
	return h.cfg.MATEntries*(18+11+1) + h.cfg.MATEntries
}

// bundleID hashes the address following the tagged instruction into the
// configured ID width (§5.3: "a Bundle ID hashed from the address of the
// next instruction following the tagged one").
func (h *Hier) bundleID(next isa.Addr) uint32 {
	v := uint64(next) >> 2
	v ^= v >> 23
	v *= 0x2545F4914F6CDD1D
	v ^= v >> 29
	return uint32(v) & (1<<uint(h.cfg.BundleIDBits) - 1)
}

// segAddr returns the simulated memory address of a segment.
func (h *Hier) segAddr(idx int32) isa.Addr {
	segBytes := segmentHeaderBytes + h.cfg.RegionsPerSegment*regionBytes
	return metadataBase + isa.Addr(int(idx)*segBytes)
}

func (h *Hier) segBytes() int {
	return segmentHeaderBytes + h.cfg.RegionsPerSegment*regionBytes
}

// OnRetire drives everything: footprint recording, Bundle boundaries,
// and the replay pump.
func (h *Hier) OnRetire(ev *isa.BlockEvent) {
	if h.recActive && !h.recFull {
		if evicted, ok := h.cb.Insert(ev.Block()); ok {
			h.appendRegion(evicted)
		}
	}
	if h.curStat != nil {
		h.curStat.cur[ev.Block()] = struct{}{}
	}

	h.pumpReplay()

	if ev.Tagged {
		if !h.validBoundary(ev) {
			h.Counters.BundleRejects++
		} else {
			h.Counters.Boundaries++
			h.onBundleBoundary(ev.Target)
		}
	}
}

// onBundleBoundary ends the current Bundle and starts the next one:
// finish the record, look the new ID up in the MAT, and start replay
// (on a hit) plus a fresh record.
func (h *Hier) onBundleBoundary(next isa.Addr) {
	h.finishRecord()
	id := h.bundleID(next)

	if head, ok := h.matLookup(id); ok && h.segs[head].valid && h.segs[head].owner == id {
		h.Counters.MATHits++
		h.startReplay(id, head)
		if h.cfg.RecordOnce {
			h.recActive = false
		} else {
			h.startRecord(id, head)
		}
	} else {
		h.repActive = false
		seg := h.allocSegment(id, true)
		h.matInsert(id, seg)
		h.startRecordFresh(id, seg)
	}

	if h.stats != nil {
		s := h.stats[id]
		if s == nil {
			s = &BundleStat{}
			h.stats[id] = s
		}
		s.cur = make(map[isa.Block]struct{}, 256)
		h.curStat = s
		h.statStartC = h.m.Now()
	}
}

// startRecord begins re-recording over an existing chain, superseding
// the previous record (§5.3.4).
func (h *Hier) startRecord(id uint32, head int32) {
	h.recActive = true
	h.recFull = false
	h.recBundle = id
	h.recHead = head
	h.recCur = head
	h.recSegs = 1
	h.recStart = h.m.InstrSeq()
	s := &h.segs[head]
	s.regions = s.regions[:0]
	s.numInsts = 0
	s.owner = id
	s.isHead = true
	h.cb.Flush() // discard residue from the previous Bundle
}

// startRecordFresh begins recording into a newly allocated head segment.
func (h *Hier) startRecordFresh(id uint32, head int32) {
	h.startRecord(id, head)
}

// appendRegion stores one evicted spatial region into the record chain.
func (h *Hier) appendRegion(r prefetch.Region) {
	if !h.recActive || h.recFull {
		return
	}
	s := &h.segs[h.recCur]
	if len(s.regions) >= h.cfg.RegionsPerSegment {
		if h.recSegs >= h.cfg.MaxSegments {
			// Record length threshold exceeded (§5.3): stop recording.
			h.recFull = true
			return
		}
		// The segment is complete: write it back and advance, reusing
		// the existing chain where possible.
		h.m.MetadataWrite(h.segAddr(h.recCur), h.segBytes())
		next := s.next
		if next >= 0 && h.segs[next].valid && h.segs[next].owner == h.recBundle && !h.segs[next].isHead {
			h.recCur = next
			ns := &h.segs[next]
			ns.regions = ns.regions[:0]
			ns.numInsts = h.m.InstrSeq() - h.recStart
		} else {
			idx := h.allocSegment(h.recBundle, false)
			h.segs[h.recCur].next = idx
			h.recCur = idx
			h.segs[idx].numInsts = h.m.InstrSeq() - h.recStart
		}
		h.recSegs++
		s = &h.segs[h.recCur]
	}
	s.regions = append(s.regions, r)
}

// finishRecord flushes the Compression Buffer, truncates the chain at
// the current segment, and writes the tail back.
func (h *Hier) finishRecord() {
	if h.recActive {
		for _, r := range h.cb.Flush() {
			h.appendRegion(r)
			if h.recFull {
				break
			}
		}
		h.segs[h.recCur].next = -1
		h.m.MetadataWrite(h.segAddr(h.recCur), h.segBytes())
		h.recActive = false
	}
	h.closeStat()
}

// closeStat finalises per-Bundle instrumentation for the ending Bundle.
func (h *Hier) closeStat() {
	if h.curStat == nil {
		return
	}
	s := h.curStat
	h.curStat = nil
	s.Execs++
	s.BlocksSum += uint64(len(s.cur))
	s.CyclesSum += (h.m.Now() - h.statStartC) / h.m.CycleScale()
	if s.prev != nil {
		var inter int
		for b := range s.cur {
			if _, ok := s.prev[b]; ok {
				inter++
			}
		}
		union := len(s.cur) + len(s.prev) - inter
		if union > 0 {
			s.JaccardSum += float64(inter) / float64(union)
			s.JaccardCount++
		}
	}
	s.prev = s.cur
	s.cur = nil
}

// allocSegment takes the next segment from the circular Metadata Buffer,
// invalidating whatever Bundle owned it (§5.3.2).
func (h *Hier) allocSegment(owner uint32, isHead bool) int32 {
	for tries := 0; tries < len(h.segs); tries++ {
		idx := int32(h.alloc)
		h.alloc = (h.alloc + 1) % len(h.segs)
		s := &h.segs[idx]
		if s.valid && s.owner == owner {
			// Never cannibalise the Bundle being recorded/replayed.
			continue
		}
		if s.valid {
			if s.isHead {
				h.matInvalidate(s.owner)
			}
			if h.repActive && s.owner == h.repBundle {
				// The replaying Bundle's chain is being overwritten.
				h.repActive = false
			}
		}
		*s = segment{regions: s.regions[:0], next: -1, owner: owner, isHead: isHead, valid: true}
		return idx
	}
	// Every segment belongs to the current Bundle (tiny buffers only):
	// reuse the head's successor arbitrarily.
	h.recFull = true
	return h.recHead
}

// startReplay begins streaming the recorded footprint of a Bundle
// (§5.3.5): the head segment is read from the Metadata Buffer (charged
// through the LLC), its regions enter the FIFO, and pacing state arms.
func (h *Hier) startReplay(id uint32, head int32) {
	h.repActive = true
	h.repBundle = id
	h.repSeg = head
	h.repOrdinal = 0
	h.repStart = h.m.InstrSeq()
	h.loadSegment(head)
}

// loadSegment snapshots a segment's regions into the replay FIFO and
// charges the metadata read latency.
func (h *Hier) loadSegment(idx int32) {
	s := &h.segs[idx]
	h.Counters.SegsLoaded++
	h.fifo = append(h.fifo[:0], s.regions...)
	h.fifoIdx = 0
	h.bitIdx = 0
	h.paceMark = s.numInsts
	h.readyAt = h.m.MetadataRead(h.segAddr(idx), segmentHeaderBytes+len(s.regions)*regionBytes)
}

// pumpReplay issues up to BurstPrefetches block prefetches from the
// replay FIFO, honouring the metadata latency gate and the num-insts
// pacing rule: segment N+1 may start once execution has passed segment
// N's creation mark (the first two segments go immediately).
func (h *Hier) pumpReplay() {
	if !h.repActive || h.m.Now() < h.readyAt {
		return
	}
	budget := h.burst
	if space := h.m.PrefetchSpace(); space < budget {
		budget = space
	}
	for budget > 0 {
		if h.fifoIdx >= len(h.fifo) {
			if !h.advanceSegment() {
				return
			}
			continue
		}
		r := &h.fifo[h.fifoIdx]
		if h.bitIdx == 0 && !h.inText(r.Base.Addr()) {
			// A replayed region pointing outside the text segment is
			// corrupted metadata (a reclaimed or bit-rotted record):
			// skip it instead of prefetching garbage addresses.
			h.Counters.BundleRejects++
			h.fifoIdx++
			continue
		}
		for h.bitIdx < prefetch.RegionBlocks {
			bit := h.bitIdx
			h.bitIdx++
			if r.Vec&(1<<uint(bit)) != 0 {
				h.Counters.PrefIssued++
				h.m.Prefetch(r.Base + isa.Block(bit))
				budget--
				if budget == 0 {
					return
				}
			}
		}
		h.fifoIdx++
		h.bitIdx = 0
	}
}

// advanceSegment moves replay to the next segment when the chain and the
// pacing rule allow it.
func (h *Hier) advanceSegment() bool {
	s := &h.segs[h.repSeg]
	next := s.next
	if next < 0 {
		h.Counters.ReplayEnds++
		h.repActive = false
		return false
	}
	if !h.segs[next].valid || h.segs[next].owner != h.repBundle {
		h.Counters.ChainBroken++
		h.repActive = false
		return false
	}
	// Pacing: the (N+1)th segment is triggered when the instructions
	// executed in this Bundle surpass the Nth segment's num-insts mark
	// (snapshotted at load, so the concurrent re-record cannot race it);
	// the first and second segments stream immediately. Because segment
	// N's mark is where the *previous* execution started filling N,
	// replay reaches each segment about one segment ahead of the
	// re-record overwriting it.
	if h.repOrdinal >= h.freeSegs && !h.cfg.DisablePacing {
		executed := h.m.InstrSeq() - h.repStart
		if executed <= h.paceMark {
			h.Counters.PaceStalls++
			return false
		}
	}
	h.repOrdinal++
	h.repSeg = next
	// Replay lead: where execution will be when the re-record reaches
	// this segment (its old creation mark) minus where execution is now.
	if mark := h.segs[next].numInsts; mark > 0 {
		executed := h.m.InstrSeq() - h.repStart
		if mark > executed {
			h.Counters.LeadSum += mark - executed
			h.Counters.LeadCount++
		}
	}
	h.loadSegment(next)
	return h.m.Now() >= h.readyAt
}

// OnResteer is a no-op by design: Bundle replay is decoupled from the
// fetch stream and takes no corrective action on control-flow variation.
func (h *Hier) OnResteer() {}

// OnDemandMiss is a no-op: if a fetched block is not in the recorded
// footprint, the prefetcher does nothing (the record is updated for next
// time as part of normal recording).
func (h *Hier) OnDemandMiss(isa.Block, uint64) {}

// --- Metadata Address Table ---

func (h *Hier) matSet(id uint32) int { return int(id) % h.matSets }

func (h *Hier) matLookup(id uint32) (int32, bool) {
	base := h.matSet(id) * h.cfg.MATWays
	for w := 0; w < h.cfg.MATWays; w++ {
		e := &h.mat[base+w]
		if e.valid && e.tag == id {
			h.matTouch(base, w)
			return e.head, true
		}
	}
	return 0, false
}

func (h *Hier) matInsert(id uint32, head int32) {
	base := h.matSet(id) * h.cfg.MATWays
	victim := 0
	for w := 0; w < h.cfg.MATWays; w++ {
		e := &h.mat[base+w]
		if e.valid && e.tag == id {
			e.head = head
			h.matTouch(base, w)
			return
		}
		if !e.valid {
			victim = w
			break
		}
		if e.age > h.mat[base+victim].age {
			victim = w
		}
	}
	e := &h.mat[base+victim]
	if !e.valid {
		e.age = 255
	}
	e.tag = id
	e.head = head
	e.valid = true
	h.matTouch(base, victim)
}

func (h *Hier) matInvalidate(id uint32) {
	base := h.matSet(id) * h.cfg.MATWays
	for w := 0; w < h.cfg.MATWays; w++ {
		e := &h.mat[base+w]
		if e.valid && e.tag == id {
			e.valid = false
			return
		}
	}
}

func (h *Hier) matTouch(base, way int) {
	old := h.mat[base+way].age
	for w := 0; w < h.cfg.MATWays; w++ {
		if h.mat[base+w].age < old {
			h.mat[base+w].age++
		}
	}
	h.mat[base+way].age = 0
}

// --- Table 4 instrumentation ---

// Summary is the aggregate Bundle behaviour of a run (TrackStats mode).
type Summary struct {
	// DistinctBundles is the number of distinct Bundle IDs executed.
	DistinctBundles int
	// AvgFootprintKB is the mean per-execution footprint (per-Bundle
	// averages, averaged over Bundles, like Table 4).
	AvgFootprintKB float64
	// AvgExecCycles is the mean Bundle execution time in cycles.
	AvgExecCycles float64
	// AvgJaccard is the mean consecutive-execution Jaccard index.
	AvgJaccard float64
	// Executions is the total Bundle executions observed.
	Executions uint64
}

// BundleSummary aggregates the per-Bundle statistics. It requires
// TrackStats; otherwise the zero Summary is returned.
func (h *Hier) BundleSummary() Summary {
	var out Summary
	if h.stats == nil {
		return out
	}
	ids := make([]uint32, 0, len(h.stats))
	for id, s := range h.stats {
		if s.Execs == 0 {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var fp, cyc, jac float64
	var jacN int
	for _, id := range ids {
		s := h.stats[id]
		fp += float64(s.BlocksSum) / float64(s.Execs) * isa.BlockSize / 1024
		cyc += float64(s.CyclesSum) / float64(s.Execs)
		if s.JaccardCount > 0 {
			jac += s.JaccardSum / float64(s.JaccardCount)
			jacN++
		}
		out.Executions += s.Execs
	}
	n := len(ids)
	out.DistinctBundles = n
	if n > 0 {
		out.AvgFootprintKB = fp / float64(n)
		out.AvgExecCycles = cyc / float64(n)
	}
	if jacN > 0 {
		out.AvgJaccard = jac / float64(jacN)
	}
	return out
}

var (
	_ prefetch.Prefetcher = (*Hier)(nil)
	_ prefetch.Tunable    = (*Hier)(nil)
)
