// Package program models the synthetic server applications that stand in
// for the paper's 11 real server workloads (§6.2). A Program is a static
// artifact: a set of functions with code sizes and call sites arranged in
// the layered shape the paper's motivation describes (Figure 1) — a request
// loop calling a pipeline of stages, stages dispatching by request type to
// per-type handler subtrees, everything leaning on a shared library pool,
// plus large amounts of statically-reachable-but-cold code (error paths,
// unused library surface) that inflates static reachable sizes exactly the
// way real binaries do (the paper notes dynamic footprints are 3-10x
// smaller than the 200KB static bundle threshold).
//
// The static side (sizes and call edges) is materialised eagerly so the
// linker can build the call graph; the fine-grained intra-function control
// flow (filler branches and loops between call sites) is derived lazily and
// deterministically from per-function seeds by the body builder.
package program

import (
	"fmt"
	"sort"

	"hprefetch/internal/isa"
)

// FuncKind describes a function's structural role in the synthetic
// application. It drives name synthesis and body-generation style only;
// the simulator and analyses treat all functions uniformly.
type FuncKind uint8

const (
	// KindRoot is the request loop (program entry).
	KindRoot FuncKind = iota
	// KindStage is a pipeline-stage function (Read, Dispatch, ...).
	KindStage
	// KindHandler is a per-request-type handler root inside a stage.
	KindHandler
	// KindHelper is an internal node of a handler subtree.
	KindHelper
	// KindLib is a shared library routine (allocator, codec, lock, ...).
	KindLib
	// KindCold is statically reachable code that never executes
	// (error paths, unused features).
	KindCold
)

func (k FuncKind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindStage:
		return "stage"
	case KindHandler:
		return "handler"
	case KindHelper:
		return "helper"
	case KindLib:
		return "lib"
	case KindCold:
		return "cold"
	default:
		return fmt.Sprintf("FuncKind(%d)", uint8(k))
	}
}

// NoStage marks functions that do not belong to a pipeline stage.
const NoStage = int16(-1)

// probScale is the fixed-point denominator for Call.Prob and branch biases.
const probScale = 65535

// Call is a static call site within a function.
type Call struct {
	// Off is the byte offset of the call instruction from the function
	// start. Call sites are stored in increasing offset order.
	Off uint32
	// Callee is the direct callee, or isa.NoFunc for an indirect call.
	Callee isa.FuncID
	// Targets indexes Program.TargetSets for indirect calls.
	Targets uint32
	// Prob is the per-invocation execution probability of the call in
	// fixed point (0..probScale). Cold edges carry Prob 0: statically
	// present, never executed.
	Prob uint16
	// Repeat is the loop trip count when the call sits inside a small
	// callee-invoking loop (1 = straight-line call).
	Repeat uint8
}

// Probability returns the call's execution probability in [0,1].
func (c *Call) Probability() float64 { return float64(c.Prob) / probScale }

// Indirect reports whether the call dispatches through a target set.
func (c *Call) Indirect() bool { return c.Callee == isa.NoFunc }

// TargetSet is the set of possible targets of an indirect call site.
type TargetSet struct {
	// ByType selects Funcs[requestType % len(Funcs)] when true (a
	// request-type dispatch table); otherwise the executor picks a
	// target pseudo-randomly with strong locality.
	ByType bool
	// Funcs are the possible targets.
	Funcs []isa.FuncID
}

// Function is one function of the synthetic program. Addr is zero until
// the linker assigns the final layout.
type Function struct {
	// Size is the code size in bytes (multiple of isa.InstrSize; at
	// least MinFuncSize).
	Size uint32
	// Addr is the linked base address (0 before linking).
	Addr isa.Addr
	// Seed drives deterministic lazy body generation.
	Seed uint64
	// Kind is the structural role.
	Kind FuncKind
	// Stage is the pipeline stage this function belongs to, or NoStage.
	Stage int16
	// Calls are the static call sites in offset order.
	Calls []Call
}

// RetOff returns the offset of the function's return instruction (the
// last instruction slot of the function).
func (f *Function) RetOff() uint32 { return f.Size - isa.InstrSize }

// MinFuncSize is the smallest generated function size in bytes: room for
// at least a couple of instructions plus the return.
const MinFuncSize = 4 * isa.InstrSize

// Stage describes one pipeline stage of the application.
type Stage struct {
	// Name is the stage label (e.g. "Exec").
	Name string
	// Func is the stage's top-level function.
	Func isa.FuncID
	// Diverges reports whether the stage dispatches to per-request-type
	// handlers (a coarse divergence point in the paper's terms).
	Diverges bool
	// Handlers lists the per-type handler roots (empty if !Diverges).
	Handlers []isa.FuncID
}

// Program is a complete synthetic server application before or after
// linking.
type Program struct {
	// Name labels the workload this program models.
	Name string
	// Seed is the master generation seed.
	Seed uint64
	// Funcs holds every function, indexed by isa.FuncID.
	Funcs []Function
	// Entry is the request-loop root function.
	Entry isa.FuncID
	// Stages is the request pipeline in execution order.
	Stages []Stage
	// TargetSets holds the indirect-call dispatch tables.
	TargetSets []TargetSet
	// RequestTypes is the number of distinct request types.
	RequestTypes int
	// TypeWeights holds the request mix (len == RequestTypes, sums to 1).
	TypeWeights []float64
	// TextSize is the total linked code size in bytes (0 before linking).
	TextSize uint64
	// TextBase is the linked base address (0 before linking).
	TextBase isa.Addr

	// addrIndex holds function IDs sorted by linked address; the linker
	// shuffles layout, so ID order is not address order.
	addrIndex []isa.FuncID
}

// NumFuncs returns the total number of functions.
func (p *Program) NumFuncs() int { return len(p.Funcs) }

// Func returns the function with the given ID.
func (p *Program) Func(id isa.FuncID) *Function { return &p.Funcs[id] }

// FuncName synthesises a stable human-readable name for a function.
// Names are derived rather than stored: with hundreds of thousands of
// functions per program, storing strings would dominate memory.
func (p *Program) FuncName(id isa.FuncID) string {
	f := p.Func(id)
	switch f.Kind {
	case KindRoot:
		return "serve_loop"
	case KindStage:
		if int(f.Stage) < len(p.Stages) {
			return "stage_" + p.Stages[f.Stage].Name
		}
		return fmt.Sprintf("stage_%d", f.Stage)
	case KindHandler:
		if int(f.Stage) < len(p.Stages) {
			return fmt.Sprintf("%s_handler_%d", p.Stages[f.Stage].Name, id)
		}
		return fmt.Sprintf("handler_%d", id)
	case KindHelper:
		return fmt.Sprintf("helper_%d", id)
	case KindLib:
		return fmt.Sprintf("lib_%d", id)
	case KindCold:
		return fmt.Sprintf("cold_%d", id)
	default:
		return fmt.Sprintf("func_%d", id)
	}
}

// Linked reports whether the program has been laid out by the linker.
func (p *Program) Linked() bool { return p.TextSize != 0 }

// BuildAddrIndex (re)builds the address-sorted function index used by
// FuncAt. The linker calls it after assigning the layout; image decoding
// calls it for linked images.
func (p *Program) BuildAddrIndex() {
	p.addrIndex = make([]isa.FuncID, len(p.Funcs))
	for i := range p.addrIndex {
		p.addrIndex[i] = isa.FuncID(i)
	}
	sort.Slice(p.addrIndex, func(a, b int) bool {
		return p.Funcs[p.addrIndex[a]].Addr < p.Funcs[p.addrIndex[b]].Addr
	})
}

// FuncAt returns the function containing addr, or (NoFunc, false) when
// addr is outside any function's linked range. Requires a linked program
// with a built address index.
func (p *Program) FuncAt(addr isa.Addr) (isa.FuncID, bool) {
	if !p.Linked() || len(p.addrIndex) == 0 {
		return isa.NoFunc, false
	}
	// Binary search for the last function starting at or before addr.
	lo, hi := 0, len(p.addrIndex)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Funcs[p.addrIndex[mid]].Addr <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return isa.NoFunc, false
	}
	id := p.addrIndex[lo-1]
	f := &p.Funcs[id]
	if addr >= f.Addr+isa.Addr(f.Size) {
		return isa.NoFunc, false
	}
	return id, true
}

// StaticText returns the sum of all function sizes in bytes.
func (p *Program) StaticText() uint64 {
	var total uint64
	for i := range p.Funcs {
		total += uint64(p.Funcs[i].Size)
	}
	return total
}
