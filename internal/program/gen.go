package program

import (
	"fmt"

	"hprefetch/internal/isa"
	"hprefetch/internal/xrand"
)

// StageSpec configures one pipeline stage of a generated application.
type StageSpec struct {
	// Name labels the stage ("Read", "Exec", ...).
	Name string
	// Diverges marks the stage as a request-type dispatch point: it
	// calls a per-type handler subtree through an indirect call.
	Diverges bool
	// CommonFuncs is the size (in functions) of the stage-common helper
	// tree executed for every request regardless of type.
	CommonFuncs int
	// HandlerFuncs is the approximate size (in functions) of each
	// per-type handler subtree (only used when Diverges).
	HandlerFuncs int
}

// Config parameterises the synthetic application generator. The eleven
// workload presets in internal/workloads are instances of this Config.
type Config struct {
	// Name labels the workload.
	Name string
	// Seed is the master generation seed.
	Seed uint64
	// RequestTypes is the number of distinct request types (statement
	// kinds, endpoint classes, ...).
	RequestTypes int
	// TypeZipf skews the request mix (0 = uniform; ~0.8 = realistic).
	TypeZipf float64
	// Stages is the request pipeline.
	Stages []StageSpec
	// LibFuncs is the shared library pool size.
	LibFuncs int
	// LibCallsMin/Max bound how many library callees each hot function
	// gets.
	LibCallsMin, LibCallsMax int
	// ColdTrees is the number of shared cold subtrees (error paths,
	// unused features) hanging off hot code with probability-zero edges.
	ColdTrees int
	// ColdTreeFuncs is the approximate function count per cold subtree.
	ColdTreeFuncs int
	// OrphanFuncs is the count of additional functions forming separate
	// static call-graph roots (registered callbacks, dead library
	// surface). They pad the static function count the way real
	// binaries do and exercise the multi-root rule of Algorithm 1.
	OrphanFuncs int
	// OrphanTreeFuncs is the approximate size of each orphan tree; the
	// orphan pool is carved into trees of about this size.
	OrphanTreeFuncs int
	// FuncSizeMin/Max bound generated function code sizes in bytes.
	FuncSizeMin, FuncSizeMax int
	// HandlerDepthMin/Max bound handler-subtree depth.
	HandlerDepthMin, HandlerDepthMax int
	// HandlerFanoutMin/Max bound handler-subtree fanout.
	HandlerFanoutMin, HandlerFanoutMax int
	// CallProbMin/Max bound the execution probability of hot call
	// edges; the gap below 1.0 is what makes successive executions of
	// the same functionality differ slightly (the paper's intra-Bundle
	// control-flow variation).
	CallProbMin, CallProbMax float64
	// CrossLinkProb adds occasional calls between sibling handler
	// subtrees (shared sub-functionality across request types).
	CrossLinkProb float64
}

// Validate reports the first configuration problem found, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("program: config needs a name")
	case c.RequestTypes < 1:
		return fmt.Errorf("program %s: RequestTypes must be >= 1", c.Name)
	case len(c.Stages) == 0:
		return fmt.Errorf("program %s: at least one stage required", c.Name)
	case c.FuncSizeMin < MinFuncSize:
		return fmt.Errorf("program %s: FuncSizeMin %d below minimum %d", c.Name, c.FuncSizeMin, MinFuncSize)
	case c.FuncSizeMax < c.FuncSizeMin:
		return fmt.Errorf("program %s: FuncSizeMax below FuncSizeMin", c.Name)
	case c.CallProbMin <= 0 || c.CallProbMax > 1 || c.CallProbMax < c.CallProbMin:
		return fmt.Errorf("program %s: call probability bounds invalid", c.Name)
	case c.HandlerDepthMin < 1 || c.HandlerDepthMax < c.HandlerDepthMin:
		return fmt.Errorf("program %s: handler depth bounds invalid", c.Name)
	case c.HandlerFanoutMin < 1 || c.HandlerFanoutMax < c.HandlerFanoutMin:
		return fmt.Errorf("program %s: handler fanout bounds invalid", c.Name)
	}
	return nil
}

// DefaultConfig returns a mid-sized server application configuration,
// useful as a starting point for custom workloads and in examples.
func DefaultConfig() Config {
	return Config{
		Name:         "default",
		Seed:         1,
		RequestTypes: 10,
		TypeZipf:     0.70,
		Stages: []StageSpec{
			{Name: "Read", CommonFuncs: 165},
			{Name: "Dispatch", Diverges: true, CommonFuncs: 90, HandlerFuncs: 70},
			{Name: "Compile", CommonFuncs: 420},
			{Name: "Exec", Diverges: true, CommonFuncs: 150, HandlerFuncs: 95},
			{Name: "Finish", CommonFuncs: 150},
		},
		LibFuncs:         1100,
		LibCallsMin:      1,
		LibCallsMax:      2,
		ColdTrees:        8,
		ColdTreeFuncs:    350,
		OrphanFuncs:      3000,
		OrphanTreeFuncs:  60,
		FuncSizeMin:      64,
		FuncSizeMax:      512,
		HandlerDepthMin:  3,
		HandlerDepthMax:  5,
		HandlerFanoutMin: 2,
		HandlerFanoutMax: 4,
		CallProbMin:      0.90,
		CallProbMax:      0.97,
		CrossLinkProb:    0.08,
	}
}

// builder holds the in-progress program during generation.
type builder struct {
	cfg   *Config
	rng   *xrand.RNG
	prog  *Program
	libs  []isa.FuncID // shared library pool
	colds []isa.FuncID // cold subtree roots
}

// Generate builds the synthetic application described by cfg. The result
// is unlinked: function addresses are assigned later by the linker.
func Generate(cfg Config) (*Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &builder{
		cfg: &cfg,
		rng: xrand.New(xrand.Mix(cfg.Seed, 0xC0FFEE)),
		prog: &Program{
			Name:         cfg.Name,
			Seed:         cfg.Seed,
			RequestTypes: cfg.RequestTypes,
		},
	}
	b.prog.TypeWeights = xrand.ZipfWeights(cfg.RequestTypes, cfg.TypeZipf)

	// Library pool first conceptually, but IDs must be layered so that
	// dynamic execution never recurses: every call edge goes to a
	// strictly larger FuncID. We therefore reserve the library and cold
	// pools up front by generating them after the hot structure and
	// only handing out their IDs. Easiest correct order: pre-create the
	// pools at the END of the ID space by generating hot code first and
	// recording forward references. To keep generation single-pass, we
	// instead create pools first as "placeholders" — but placeholders
	// complicate sizing. The pragmatic layering used here:
	//
	//	root < stages < handlers/helpers < cold < libs < orphans
	//
	// Hot code references cold/lib IDs that do not exist yet; we know
	// exactly how many hot functions there will be only after building
	// them, so library references are patched in a second pass.
	b.buildHot()
	b.buildColdAndLibs()
	b.patchPoolRefs()
	b.buildOrphans()
	return b.prog, nil
}

// Placeholder callee values patched to real pool FuncIDs after the pools
// are generated. Values below refBase are real FuncIDs.
const (
	refBase = isa.FuncID(0xF0000000)
	refLib  = refBase + 0
	refCold = refBase + 1
)

// newFunc appends a function and returns its ID.
func (b *builder) newFunc(kind FuncKind, stage int16, size uint32) isa.FuncID {
	id := isa.FuncID(len(b.prog.Funcs))
	b.prog.Funcs = append(b.prog.Funcs, Function{
		Size:  size,
		Seed:  xrand.Mix(b.cfg.Seed, uint64(id), 0xB0D7),
		Kind:  kind,
		Stage: stage,
	})
	return id
}

// funcSize draws a function size in bytes, aligned to the instruction
// size, with room for at least nCalls call sites.
func (b *builder) funcSize(nCalls int) uint32 {
	sz := b.rng.Range(b.cfg.FuncSizeMin, b.cfg.FuncSizeMax)
	min := (nCalls + 3) * 4 * isa.InstrSize
	if sz < min {
		sz = min
	}
	return uint32(sz+isa.InstrSize-1) &^ (isa.InstrSize - 1)
}

// prob draws a hot-edge execution probability in fixed point. Most call
// sites execute almost always (their guards predict well); a minority
// draw from the configured variable band, which is what makes successive
// executions of the same functionality touch slightly different code —
// the paper's intra-Bundle control-flow variation.
func (b *builder) prob() uint16 {
	if b.rng.Bool(0.70) {
		return uint16((0.975 + 0.02*b.rng.Float64()) * probScale)
	}
	p := b.cfg.CallProbMin + b.rng.Float64()*(b.cfg.CallProbMax-b.cfg.CallProbMin)
	return uint16(p * probScale)
}

// buildHot creates the root, the stages, and every handler subtree.
func (b *builder) buildHot() {
	cfg := b.cfg
	root := b.newFunc(KindRoot, NoStage, 256)
	b.prog.Entry = root

	// Stage top-level functions, created first so the root can call
	// them in pipeline order with near-certain probability.
	stageIDs := make([]isa.FuncID, len(cfg.Stages))
	for i, ss := range cfg.Stages {
		stageIDs[i] = b.newFunc(KindStage, int16(i), b.funcSize(6))
		b.prog.Stages = append(b.prog.Stages, Stage{Name: ss.Name, Func: stageIDs[i], Diverges: ss.Diverges})
	}
	rootCalls := make([]Call, 0, len(stageIDs))
	for _, sid := range stageIDs {
		rootCalls = append(rootCalls, Call{Callee: sid, Prob: fixedProb(0.995), Repeat: 1})
	}
	b.setCalls(root, rootCalls)

	for i, ss := range cfg.Stages {
		b.buildStage(i, ss, stageIDs[i])
	}
}

// buildStage populates one stage: its common helper tree and, for
// diverging stages, the per-type handler subtrees plus the dispatch table.
func (b *builder) buildStage(idx int, ss StageSpec, stageFn isa.FuncID) {
	var calls []Call

	// Stage-common helpers: executed for every request.
	if ss.CommonFuncs > 0 {
		commonRoot := b.buildTree(KindHelper, int16(idx), ss.CommonFuncs, 0.97)
		calls = append(calls, Call{Callee: commonRoot, Prob: fixedProb(0.99), Repeat: 1})
	}

	if ss.Diverges {
		handlers := make([]isa.FuncID, b.cfg.RequestTypes)
		for t := range handlers {
			handlers[t] = b.buildTree(KindHandler, int16(idx), ss.HandlerFuncs, 0)
		}
		b.prog.Stages[idx].Handlers = handlers
		tsIdx := uint32(len(b.prog.TargetSets))
		b.prog.TargetSets = append(b.prog.TargetSets, TargetSet{ByType: true, Funcs: handlers})
		calls = append(calls, Call{Callee: isa.NoFunc, Targets: tsIdx, Prob: fixedProb(0.995), Repeat: 1})
		b.crossLink(handlers)
	}

	// Every hot function also leans on the shared libraries and hangs
	// cold error paths; those references are patched after the pools
	// exist.
	calls = b.addPoolRefs(calls, true)
	b.setCalls(stageFn, calls)
}

// buildTree creates a helper subtree of roughly n functions and returns
// its root. rootKind tags the root (handler roots differ from plain
// helpers). hotness overrides call probabilities when > 0.
func (b *builder) buildTree(rootKind FuncKind, stage int16, n int, hotness float64) isa.FuncID {
	cfg := b.cfg
	depth := b.rng.Range(cfg.HandlerDepthMin, cfg.HandlerDepthMax)
	// Build top-down, breadth-first, spending the function budget.
	rootID := b.newFunc(rootKind, stage, b.funcSize(4))
	type node struct {
		id    isa.FuncID
		depth int
	}
	frontier := []node{{rootID, 0}}
	budget := n - 1
	for len(frontier) > 0 && budget > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		if cur.depth >= depth {
			continue
		}
		fanout := b.rng.Range(cfg.HandlerFanoutMin, cfg.HandlerFanoutMax)
		if fanout > budget {
			fanout = budget
		}
		var calls []Call
		children := make([]isa.FuncID, 0, fanout)
		for i := 0; i < fanout; i++ {
			child := b.newFunc(KindHelper, stage, b.funcSize(3))
			budget--
			children = append(children, child)
			frontier = append(frontier, node{child, cur.depth + 1})
		}
		// A share of the children hang off polymorphic (data-dependent
		// indirect) call sites invoked several times per visit: the
		// dynamic target sequence is unpredictable, but across a few
		// invocations the union of touched code is stable. This is the
		// paper's central workload property — fine-grained triggers see
		// divergent futures while coarse Bundle footprints stay similar
		// (Figure 4 vs Table 4).
		if len(children) >= 2 && b.rng.Bool(0.30) {
			tsIdx := uint32(len(b.prog.TargetSets))
			b.prog.TargetSets = append(b.prog.TargetSets, TargetSet{Funcs: children})
			// Invoked about once per target (random phase, see the
			// engine): the per-invocation target is unpredictable but
			// the union per visit is nearly complete, so coarse
			// footprints stay stable while fine-grained sequence
			// predictors see divergent futures.
			calls = append(calls, Call{
				Callee:  isa.NoFunc,
				Targets: tsIdx,
				Prob:    fixedProb(0.99),
				Repeat:  uint8(2 * len(children)),
			})
		} else {
			for _, child := range children {
				p := b.prob()
				if hotness > 0 {
					p = uint16(hotness * probScale)
				}
				// Mostly single calls; occasional small repeats add
				// function-level reuse without compounding depth-wise.
				rep := uint8(1)
				if b.rng.Bool(0.2) {
					rep = uint8(b.rng.Range(2, 3))
				}
				calls = append(calls, Call{Callee: child, Prob: p, Repeat: rep})
			}
		}
		calls = b.addPoolRefs(calls, cur.depth <= 1)
		b.setCalls(cur.id, calls)
	}
	// Leaves left in the frontier get only library/cold references.
	for _, leaf := range frontier {
		b.setCalls(leaf.id, b.addPoolRefs(nil, false))
	}
	return rootID
}

// crossLink adds occasional shared-functionality calls between sibling
// handler subtrees (request types reusing each other's helpers).
func (b *builder) crossLink(handlers []isa.FuncID) {
	if b.cfg.CrossLinkProb <= 0 || len(handlers) < 2 {
		return
	}
	for i, h := range handlers {
		if !b.rng.Bool(b.cfg.CrossLinkProb * float64(len(handlers))) {
			continue
		}
		other := handlers[(i+1+b.rng.IntN(len(handlers)-1))%len(handlers)]
		// The link must preserve the caller<callee ID layering; swap
		// direction if needed.
		from, to := h, other
		if from > to {
			from, to = to, from
		}
		b.addCall(from, Call{Callee: to, Prob: fixedProb(0.25), Repeat: 1})
	}
}

// addCall appends a call site to an already-finalised function, growing
// it if needed and recomputing all call-site offsets.
func (b *builder) addCall(id isa.FuncID, c Call) {
	f := &b.prog.Funcs[id]
	calls := append(f.Calls, c)
	need := uint32((len(calls) + 3) * 4 * isa.InstrSize)
	if f.Size < need {
		f.Size = need
	}
	AssignCallOffsets(f.Seed, f.Size, calls)
	f.Calls = calls
}

// addPoolRefs appends placeholder library and cold-path references to a
// call list. withCold controls whether cold edges are attached (upper
// hot nodes carry them; attaching them everywhere would balloon static
// reachable sizes uniformly and erase divergence structure).
func (b *builder) addPoolRefs(calls []Call, withCold bool) []Call {
	nLibs := b.rng.Range(b.cfg.LibCallsMin, b.cfg.LibCallsMax)
	for i := 0; i < nLibs; i++ {
		rep := uint8(1)
		if b.rng.Bool(0.4) {
			rep = uint8(b.rng.Range(2, 5))
		}
		calls = append(calls, Call{Callee: refLib, Targets: uint32(b.rng.Uint64()), Prob: b.prob(), Repeat: rep})
	}
	if withCold && b.cfg.ColdTrees > 0 && b.rng.Bool(0.8) {
		calls = append(calls, Call{Callee: refCold, Targets: uint32(b.rng.Uint64()), Prob: 0, Repeat: 1})
	}
	return calls
}

// setCalls finalises a function's call list: sizes the function to fit,
// orders the sites, and assigns instruction-aligned offsets. Each
// function's calls are finalised exactly once; later additions go
// through addCall.
func (b *builder) setCalls(id isa.FuncID, calls []Call) {
	f := &b.prog.Funcs[id]
	need := uint32((len(calls) + 3) * 4 * isa.InstrSize)
	if f.Size < need {
		f.Size = need
	}
	AssignCallOffsets(f.Seed, f.Size, calls)
	f.Calls = calls
}

// AssignCallOffsets deterministically places call sites within a function
// body: sites are spread across the usable range in order, with seeded
// jitter. Each site owns a CallRegionBytes region (guard branch, call,
// repeat backedge); regions never overlap each other, the prologue, or
// the return slot. Exported for the body builder and tests, which must
// agree with the linker on call-instruction addresses.
func AssignCallOffsets(seed uint64, size uint32, calls []Call) {
	n := len(calls)
	if n == 0 {
		return
	}
	s := xrand.Mix(seed, 0x0FF5)
	lo := uint32(isa.InstrSize)                  // after prologue
	hi := size - isa.InstrSize - CallRegionBytes // region fits before return slot
	span := hi - lo
	slot := span / uint32(n)
	prev := int64(lo) - int64(CallRegionBytes)
	for i := range calls {
		base := lo + uint32(i)*slot
		maxJitter := uint64(slot / 2)
		if maxJitter < isa.InstrSize {
			maxJitter = isa.InstrSize
		}
		jitter := uint32(xrand.SplitMix64(&s) % maxJitter)
		off := (base + jitter) &^ (isa.InstrSize - 1)
		if int64(off) < prev+CallRegionBytes {
			off = uint32(prev) + CallRegionBytes
		}
		if off > hi {
			off = hi
		}
		calls[i].Off = off
		prev = int64(off)
	}
}

// buildColdAndLibs creates the shared cold subtrees and the library pool.
func (b *builder) buildColdAndLibs() {
	cfg := b.cfg
	// Cold subtrees: high fan-out trees of never-executed code. Their
	// internal structure deliberately contains its own divergence
	// points so that static Bundle identification, exactly like on a
	// real binary, marks entries in code that never runs.
	for t := 0; t < cfg.ColdTrees; t++ {
		root := b.buildColdTree(cfg.ColdTreeFuncs)
		b.colds = append(b.colds, root)
	}
	// Library pool: flat-ish, occasionally calling deeper libraries.
	start := len(b.prog.Funcs)
	for i := 0; i < cfg.LibFuncs; i++ {
		b.libs = append(b.libs, b.newFunc(KindLib, NoStage, b.funcSize(2)))
	}
	for i := 0; i < cfg.LibFuncs; i++ {
		id := isa.FuncID(start + i)
		var calls []Call
		// Libraries call strictly deeper libraries, keeping the edge
		// layering acyclic for dynamic execution.
		remaining := cfg.LibFuncs - i - 1
		if remaining > 0 && b.rng.Bool(0.35) {
			n := 1
			if remaining > 1 && b.rng.Bool(0.3) {
				n = 2
			}
			for j := 0; j < n; j++ {
				callee := isa.FuncID(start + i + 1 + b.rng.IntN(remaining))
				calls = append(calls, Call{Callee: callee, Prob: b.prob(), Repeat: 1})
			}
		}
		b.setCalls(id, calls)
	}
}

// buildColdTree creates one never-executed subtree and returns its root.
func (b *builder) buildColdTree(n int) isa.FuncID {
	root := b.newFunc(KindCold, NoStage, b.funcSize(6))
	ids := []isa.FuncID{root}
	// Breadth-first expansion: every parent is finalised exactly once.
	for next := 0; len(ids) < n; next++ {
		parent := ids[next]
		fanout := b.rng.Range(2, 6)
		var calls []Call
		for i := 0; i < fanout && len(ids) < n; i++ {
			child := b.newFunc(KindCold, NoStage, b.funcSize(2))
			ids = append(ids, child)
			calls = append(calls, Call{Callee: child, Prob: 0, Repeat: 1})
		}
		b.setCalls(parent, calls)
	}
	return root
}

// patchPoolRefs rewrites the placeholder library/cold references created
// during hot-structure generation into real pool FuncIDs, chosen with
// per-caller locality (each hot function repeatedly uses the same small
// library working set, like real code does).
func (b *builder) patchPoolRefs() {
	for i := range b.prog.Funcs {
		f := &b.prog.Funcs[i]
		for j := range f.Calls {
			c := &f.Calls[j]
			switch c.Callee {
			case refLib:
				if len(b.libs) == 0 {
					c.Callee = isa.FuncID(i) // degenerate: drop to self-free no-op below
					f.Calls[j].Prob = 0
					continue
				}
				// Locality: hash the caller with the placeholder salt
				// so the same caller always picks the same libraries.
				h := xrand.Mix(f.Seed, uint64(c.Targets))
				c.Callee = b.libs[h%uint64(len(b.libs))]
				c.Targets = 0
			case refCold:
				if len(b.colds) == 0 {
					c.Prob = 0
					c.Callee = isa.FuncID(i)
					continue
				}
				h := xrand.Mix(f.Seed, uint64(c.Targets), 0xC01D)
				c.Callee = b.colds[h%uint64(len(b.colds))]
				c.Targets = 0
			}
		}
	}
}

// buildOrphans creates separate static call-graph roots: registered but
// never-invoked code that pads the binary like real library surface.
// Orphan trees link into the big shared cold trees the way all code in a
// real binary statically reaches the language runtime: that shared mass
// pushes their reachable sizes past the Bundle threshold, so the static
// analysis finds entry points inside never-executed code too — the
// paper's 2-6% static-bundle fractions come mostly from such code.
func (b *builder) buildOrphans() {
	remaining := b.cfg.OrphanFuncs
	treeSize := b.cfg.OrphanTreeFuncs
	if treeSize < 2 {
		treeSize = 2
	}
	for remaining > 0 {
		n := treeSize
		if n > remaining {
			n = remaining
		}
		root := b.buildColdTree(n)
		if len(b.colds) > 0 {
			// The root reaches several shared cold trees (as all real
			// code statically reaches the language runtime) and one
			// interior node reaches a different subset, creating
			// genuine static divergences inside never-executed code.
			for i := 0; i < 3; i++ {
				c := b.colds[b.rng.IntN(len(b.colds))]
				b.addCall(root, Call{Callee: c, Prob: 0, Repeat: 1})
			}
			interior := root + isa.FuncID(1+b.rng.IntN(n))
			if int(interior) < len(b.prog.Funcs) {
				for i := 0; i < 2; i++ {
					c := b.colds[b.rng.IntN(len(b.colds))]
					b.addCall(interior, Call{Callee: c, Prob: 0, Repeat: 1})
				}
			}
		}
		remaining -= n
	}
}

// fixedProb converts a probability to the fixed-point call encoding.
func fixedProb(p float64) uint16 { return uint16(p * probScale) }
