package program

import (
	"testing"
	"testing/quick"

	"hprefetch/internal/isa"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Name = "test"
	cfg.Seed = 7
	cfg.OrphanFuncs = 200
	cfg.LibFuncs = 80
	cfg.ColdTrees = 3
	cfg.ColdTreeFuncs = 40
	return cfg
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumFuncs() != b.NumFuncs() {
		t.Fatalf("function counts differ: %d vs %d", a.NumFuncs(), b.NumFuncs())
	}
	for i := range a.Funcs {
		fa, fb := &a.Funcs[i], &b.Funcs[i]
		if fa.Size != fb.Size || fa.Seed != fb.Seed || fa.Kind != fb.Kind || len(fa.Calls) != len(fb.Calls) {
			t.Fatalf("function %d differs between identical generations", i)
		}
		for j := range fa.Calls {
			if fa.Calls[j] != fb.Calls[j] {
				t.Fatalf("function %d call %d differs", i, j)
			}
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	p, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0 || p.Funcs[p.Entry].Kind != KindRoot {
		t.Error("entry must be the root function")
	}
	if len(p.Stages) != 5 {
		t.Fatalf("got %d stages, want 5", len(p.Stages))
	}
	for i, s := range p.Stages {
		if p.Funcs[s.Func].Kind != KindStage {
			t.Errorf("stage %d function has kind %v", i, p.Funcs[s.Func].Kind)
		}
		if s.Diverges {
			if len(s.Handlers) != p.RequestTypes {
				t.Errorf("stage %s has %d handlers, want %d", s.Name, len(s.Handlers), p.RequestTypes)
			}
			for _, h := range s.Handlers {
				if p.Funcs[h].Kind != KindHandler {
					t.Errorf("handler %d has kind %v", h, p.Funcs[h].Kind)
				}
			}
		} else if len(s.Handlers) != 0 {
			t.Errorf("non-diverging stage %s has handlers", s.Name)
		}
	}
}

func TestGenerateLayering(t *testing.T) {
	// Dynamic execution relies on hot call edges never pointing to a
	// lower (or equal) FuncID, which guarantees acyclic hot execution.
	p, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Funcs {
		f := &p.Funcs[i]
		for _, c := range f.Calls {
			if c.Prob == 0 {
				continue // cold edges may point anywhere
			}
			if c.Indirect() {
				for _, tgt := range p.TargetSets[c.Targets].Funcs {
					if int(tgt) <= i {
						t.Fatalf("func %d hot indirect edge to non-deeper %d", i, tgt)
					}
				}
			} else if int(c.Callee) <= i {
				t.Fatalf("func %d hot edge to non-deeper %d", i, c.Callee)
			}
		}
	}
}

func TestCallSiteInvariants(t *testing.T) {
	p, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Funcs {
		f := &p.Funcs[i]
		prev := int64(-int64(CallRegionBytes))
		for j, c := range f.Calls {
			if c.Off%isa.InstrSize != 0 {
				t.Fatalf("func %d call %d offset %d unaligned", i, j, c.Off)
			}
			if int64(c.Off) < prev+CallRegionBytes {
				t.Fatalf("func %d call %d at %d overlaps previous at %d", i, j, c.Off, prev)
			}
			if c.Off < isa.InstrSize || c.Off+CallRegionBytes > f.RetOff() {
				t.Fatalf("func %d call %d offset %d out of body (size %d)", i, j, c.Off, f.Size)
			}
			prev = int64(c.Off)
			if !c.Indirect() && int(c.Callee) >= p.NumFuncs() {
				t.Fatalf("func %d call %d dangling callee %d", i, j, c.Callee)
			}
			if c.Indirect() && int(c.Targets) >= len(p.TargetSets) {
				t.Fatalf("func %d call %d dangling target set", i, j)
			}
		}
		if f.Size%isa.InstrSize != 0 || f.Size < MinFuncSize {
			t.Fatalf("func %d size %d invalid", i, f.Size)
		}
	}
}

func TestBodyCoversFunction(t *testing.T) {
	p, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Funcs {
		f := &p.Funcs[i]
		items := Body(f)
		if len(items) == 0 {
			t.Fatalf("func %d has empty body", i)
		}
		cur := uint32(0)
		callIdx := 0
		for k, it := range items {
			if it.Off != cur {
				t.Fatalf("func %d item %d at %d, expected contiguous %d", i, k, it.Off, cur)
			}
			switch it.Kind {
			case ItemCall:
				if int(it.Arg) != callIdx {
					t.Fatalf("func %d call order broken", i)
				}
				if it.Off != f.Calls[callIdx].Off {
					t.Fatalf("func %d call %d body offset %d != static %d",
						i, callIdx, it.Off, f.Calls[callIdx].Off)
				}
				callIdx++
			case ItemRet:
				if k != len(items)-1 || it.Off != f.RetOff() {
					t.Fatalf("func %d return misplaced", i)
				}
			case ItemCondRun:
				if it.Bytes < 2*isa.InstrSize {
					t.Fatalf("func %d cond-run too small", i)
				}
			case ItemLoopRun:
				if it.Arg < 2 || it.Bytes < isa.InstrSize {
					t.Fatalf("func %d loop invalid", i)
				}
			}
			cur = it.Off + it.Bytes
		}
		if cur != f.Size {
			t.Fatalf("func %d body covers %d bytes of %d", i, cur, f.Size)
		}
		if callIdx != len(f.Calls) {
			t.Fatalf("func %d body has %d calls, static %d", i, callIdx, len(f.Calls))
		}
	}
}

func TestBodyDeterminism(t *testing.T) {
	p, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := &p.Funcs[p.Stages[1].Func]
	a, b := Body(f), Body(f)
	if len(a) != len(b) {
		t.Fatal("body lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("body item %d differs across builds", i)
		}
	}
}

func TestAssignCallOffsetsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, extra uint16) bool {
		n := int(nRaw%20) + 1
		size := uint32((n+3)*4*isa.InstrSize) + uint32(extra%4096)&^3
		calls := make([]Call, n)
		AssignCallOffsets(seed, size, calls)
		prev := int64(-int64(CallRegionBytes))
		for _, c := range calls {
			if c.Off%isa.InstrSize != 0 ||
				int64(c.Off) < prev+CallRegionBytes ||
				c.Off < isa.InstrSize ||
				c.Off+CallRegionBytes+isa.InstrSize > size {
				return false
			}
			prev = int64(c.Off)
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 500}
}

func TestFuncAtUnlinked(t *testing.T) {
	p, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.FuncAt(0x1000); ok {
		t.Error("FuncAt must fail on unlinked programs")
	}
}

func TestTypeWeights(t *testing.T) {
	p, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TypeWeights) != p.RequestTypes {
		t.Fatalf("weights %d != types %d", len(p.TypeWeights), p.RequestTypes)
	}
	var sum float64
	for _, w := range p.TypeWeights {
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.RequestTypes = 0 },
		func(c *Config) { c.Stages = nil },
		func(c *Config) { c.FuncSizeMin = 4 },
		func(c *Config) { c.FuncSizeMax = c.FuncSizeMin - 4 },
		func(c *Config) { c.CallProbMin = 0 },
		func(c *Config) { c.CallProbMax = 1.2 },
		func(c *Config) { c.HandlerDepthMin = 0 },
		func(c *Config) { c.HandlerFanoutMax = 0 },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestFuncNameStability(t *testing.T) {
	p, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.FuncName(p.Entry) != "serve_loop" {
		t.Errorf("root name = %q", p.FuncName(p.Entry))
	}
	for i := 0; i < p.NumFuncs(); i += 97 {
		id := isa.FuncID(i)
		if p.FuncName(id) != p.FuncName(id) || p.FuncName(id) == "" {
			t.Fatalf("unstable or empty name for %d", i)
		}
	}
}
