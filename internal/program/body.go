package program

import (
	"hprefetch/internal/isa"
	"hprefetch/internal/xrand"
)

// The body builder expands a function's static shape (size + call sites)
// into a concrete intra-function layout: straight-line runs, biased
// conditional skips, small loops, call regions, and the final return.
// Expansion is a pure function of the function's seed, so the linker, the
// loader and the execution engine all agree on every instruction address
// without the program ever storing full bodies for its hundreds of
// thousands of functions.

// ItemKind classifies a body item.
type ItemKind uint8

const (
	// ItemRun is straight-line code of Bytes bytes starting at Off.
	ItemRun ItemKind = iota
	// ItemCondRun is a conditional branch at Off guarding a run over
	// [Off+4, Off+Bytes); "taken" skips the run (target Off+Bytes).
	// Bias is the fixed-point probability that the run executes.
	ItemCondRun
	// ItemLoopRun is a run over [Off, Off+Bytes) executed Arg times on
	// average, with the backedge branch in the last instruction slot.
	ItemLoopRun
	// ItemCall is a call region of CallRegionBytes at Off: a guard
	// branch (Off), the call instruction (Off+4) and, for repeated
	// calls, a backedge branch (Off+8). Arg indexes Function.Calls.
	ItemCall
	// ItemRet is the function's return instruction at Off.
	ItemRet
)

// CallRegionBytes is the code footprint of one call site: guard branch,
// call instruction, repeat backedge slot.
const CallRegionBytes = 3 * isa.InstrSize

// CallInstrOff is the offset of the call instruction within its region.
const CallInstrOff = isa.InstrSize

// Item is one element of an expanded function body.
type Item struct {
	// Off is the item's start offset within the function.
	Off uint32
	// Bytes is the region length for run-like items.
	Bytes uint32
	// Arg is the call index (ItemCall) or mean trip count (ItemLoopRun).
	Arg uint32
	// Bias is the fixed-point execute/taken probability for ItemCondRun.
	Bias uint16
	// Kind classifies the item.
	Kind ItemKind
}

// Body expands the function into its deterministic item list. The result
// for a given function value never changes; callers cache it.
func Body(f *Function) []Item {
	items := make([]Item, 0, len(f.Calls)*2+8)
	s := xrand.Mix(f.Seed, 0xB0D135)
	rng := xrand.New(s)
	cur := uint32(0)
	for i := range f.Calls {
		off := f.Calls[i].Off
		items = fillGap(rng, items, cur, off)
		items = append(items, Item{Off: off, Bytes: CallRegionBytes, Arg: uint32(i), Kind: ItemCall})
		cur = off + CallRegionBytes
	}
	items = fillGap(rng, items, cur, f.RetOff())
	items = append(items, Item{Off: f.RetOff(), Bytes: isa.InstrSize, Kind: ItemRet})
	return items
}

// fillGap populates [start, end) with filler structure: runs broken by
// biased conditional skips and small loops. All offsets stay instruction
// aligned; the gap is covered exactly.
func fillGap(rng *xrand.RNG, items []Item, start, end uint32) []Item {
	const minStruct = 12 * isa.InstrSize // below this, just emit a run
	for start < end {
		rem := end - start
		if rem < minStruct {
			items = append(items, Item{Off: start, Bytes: rem, Kind: ItemRun})
			return items
		}
		chunk := uint32(rng.Range(4, 48)) * isa.InstrSize
		if chunk > rem {
			chunk = rem
		}
		switch {
		case rng.Bool(0.30) && chunk >= 4*isa.InstrSize:
			// Conditional skip. The bias mix matches real server code
			// as branch predictors see it: mostly strongly biased
			// (highly predictable), some moderately biased, and a few
			// data-dependent branches that defeat direction prediction.
			var bias float64
			switch r := rng.Float64(); {
			case r < 0.80:
				bias = 0.96 + 0.035*rng.Float64()
			case r < 0.95:
				bias = 0.85 + 0.11*rng.Float64()
			default:
				bias = 0.55 + 0.30*rng.Float64()
			}
			items = append(items, Item{
				Off:   start,
				Bytes: chunk,
				Bias:  uint16(bias * probScale),
				Kind:  ItemCondRun,
			})
		case rng.Bool(0.15) && chunk >= 4*isa.InstrSize:
			// Loops carry fixed per-site trip counts: with a global
			// history long enough to hold the taken run, a gshare-class
			// predictor learns the exit, as real predictors do.
			iters := uint32(rng.Range(3, 6))
			items = append(items, Item{Off: start, Bytes: chunk, Arg: iters, Kind: ItemLoopRun})
		default:
			items = append(items, Item{Off: start, Bytes: chunk, Kind: ItemRun})
		}
		start += chunk
	}
	return items
}
