package program

import (
	"fmt"

	"hprefetch/internal/isa"
	"hprefetch/internal/xrand"
)

// ChainConfig parameterises the microservice chain generator: a tree of
// per-service code regions connected by RPC-style handoff edges. Each
// service is materialised as its own pipeline stage — a distinct
// instruction footprint (common helper tree plus per-request-type
// handler subtrees) entered through one stage function — and every
// request walks the whole service tree, so Stage() transitions mark the
// RPC hops. Unlike the monolithic Config pipeline, where the root calls
// every stage in sequence, chain services nest: the root calls only the
// frontend service and each service calls its children, which is what
// gives chained requests their depth-proportional footprint churn.
type ChainConfig struct {
	// Base supplies everything except the pipeline shape: pools, sizes,
	// probabilities, request mix, Name and Seed. Base.Stages is ignored
	// (the chain synthesises one stage per service).
	Base Config
	// Depth is the number of services along each root-to-leaf path (>= 1).
	Depth int
	// Fanout is how many downstream services each non-leaf service
	// calls (>= 1; 1 yields a linear chain).
	Fanout int
	// ServiceCommonFuncs sizes each service's request-independent helper
	// tree (functions).
	ServiceCommonFuncs int
	// ServiceHandlerFuncs sizes each per-request-type handler subtree
	// within a service (functions).
	ServiceHandlerFuncs int
}

// maxChainServices bounds the service tree (stages are int16-indexed and
// every service multiplies the hot footprint).
const maxChainServices = 64

// Services returns the total service count of the configured tree.
func (c *ChainConfig) Services() int {
	if c.Depth < 1 || c.Fanout < 1 {
		return 0
	}
	if c.Fanout == 1 {
		return c.Depth
	}
	n, layer := 0, 1
	for d := 0; d < c.Depth; d++ {
		n += layer
		if n > maxChainServices {
			return n
		}
		layer *= c.Fanout
	}
	return n
}

// Validate reports the first chain-configuration problem found, or nil.
func (c *ChainConfig) Validate() error {
	switch {
	case c.Depth < 1:
		return fmt.Errorf("program %s: chain depth must be >= 1", c.Base.Name)
	case c.Fanout < 1:
		return fmt.Errorf("program %s: chain fanout must be >= 1", c.Base.Name)
	case c.ServiceCommonFuncs < 1:
		return fmt.Errorf("program %s: ServiceCommonFuncs must be >= 1", c.Base.Name)
	case c.ServiceHandlerFuncs < 1:
		return fmt.Errorf("program %s: ServiceHandlerFuncs must be >= 1", c.Base.Name)
	}
	if n := c.Services(); n > maxChainServices {
		return fmt.Errorf("program %s: chain of depth %d fanout %d needs %d services (max %d)",
			c.Base.Name, c.Depth, c.Fanout, n, maxChainServices)
	}
	return nil
}

// GenerateChain builds the synthetic microservice application described
// by c. The result is unlinked, exactly like Generate's, and reuses the
// same pools (libraries, cold trees, orphans), so every downstream
// consumer — linker, Bundle analysis, loader, engine — works unchanged.
func GenerateChain(c ChainConfig) (*Program, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cfg := c.Base
	// One synthesised stage per service, breadth-first: the stage index
	// IS the service id, so Stage() samples identify the running service.
	n := c.Services()
	cfg.Stages = make([]StageSpec, n)
	for i := range cfg.Stages {
		cfg.Stages[i] = StageSpec{
			Name:         fmt.Sprintf("svc%02d", i),
			Diverges:     true,
			CommonFuncs:  c.ServiceCommonFuncs,
			HandlerFuncs: c.ServiceHandlerFuncs,
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &builder{
		cfg: &cfg,
		rng: xrand.New(xrand.Mix(cfg.Seed, 0xC4A1)),
		prog: &Program{
			Name:         cfg.Name,
			Seed:         cfg.Seed,
			RequestTypes: cfg.RequestTypes,
		},
	}
	b.prog.TypeWeights = xrand.ZipfWeights(cfg.RequestTypes, cfg.TypeZipf)
	b.buildChainHot(&c)
	b.buildColdAndLibs()
	b.patchPoolRefs()
	b.buildOrphans()
	return b.prog, nil
}

// buildChainHot creates the root, every service entry, and each
// service's body. All entries are created first, in breadth-first
// order, so every RPC edge (parent entry -> child entry) and every body
// edge (entry -> trees created later) respects the caller<callee ID
// layering dynamic execution requires.
func (b *builder) buildChainHot(c *ChainConfig) {
	root := b.newFunc(KindRoot, NoStage, 256)
	b.prog.Entry = root

	n := len(b.cfg.Stages)
	entries := make([]isa.FuncID, n)
	for i := range entries {
		entries[i] = b.newFunc(KindStage, int16(i), b.funcSize(6))
		b.prog.Stages = append(b.prog.Stages, Stage{
			Name:     b.cfg.Stages[i].Name,
			Func:     entries[i],
			Diverges: true,
		})
	}
	// The request loop calls only the frontend service; everything else
	// is reached through RPC handoff.
	b.setCalls(root, []Call{{Callee: entries[0], Prob: fixedProb(0.995), Repeat: 1}})

	for i := range entries {
		b.buildService(c, i, entries)
	}
}

// buildService populates service idx: its common helper tree, the
// per-type handler dispatch, and the RPC edges to its children in the
// breadth-first service tree.
func (b *builder) buildService(c *ChainConfig, idx int, entries []isa.FuncID) {
	var calls []Call

	commonRoot := b.buildTree(KindHelper, int16(idx), c.ServiceCommonFuncs, 0.97)
	calls = append(calls, Call{Callee: commonRoot, Prob: fixedProb(0.99), Repeat: 1})

	handlers := make([]isa.FuncID, b.cfg.RequestTypes)
	for t := range handlers {
		handlers[t] = b.buildTree(KindHandler, int16(idx), c.ServiceHandlerFuncs, 0)
	}
	b.prog.Stages[idx].Handlers = handlers
	tsIdx := uint32(len(b.prog.TargetSets))
	b.prog.TargetSets = append(b.prog.TargetSets, TargetSet{ByType: true, Funcs: handlers})
	calls = append(calls, Call{Callee: isa.NoFunc, Targets: tsIdx, Prob: fixedProb(0.995), Repeat: 1})
	b.crossLink(handlers)

	// RPC handoff: near-certain calls to each child service, so every
	// request walks the full tree and the instruction stream hops
	// between service footprints mid-request.
	for j := idx*c.Fanout + 1; j <= idx*c.Fanout+c.Fanout && j < len(entries); j++ {
		calls = append(calls, Call{Callee: entries[j], Prob: fixedProb(0.995), Repeat: 1})
	}

	calls = b.addPoolRefs(calls, true)
	b.setCalls(entries[idx], calls)
}
