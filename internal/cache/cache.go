// Package cache provides the storage structures of the simulated memory
// hierarchy (Table 1): set-associative LRU tables used for the I-cache
// hierarchy levels and the I-TLB, and the MSHR file that tracks in-flight
// fills (whose residual latency is how late prefetches are detected). The
// timing policy — who fills what, when, and at what cost — lives in the
// simulator that composes these structures.
package cache

import (
	"errors"
	"fmt"
	"math/bits"

	"hprefetch/internal/isa"
)

// Origin says what caused a line to be brought in; it drives the
// accuracy/coverage bookkeeping.
type Origin uint8

const (
	// OriginDemand is a demand fetch fill.
	OriginDemand Origin = iota
	// OriginFDIP is a fill issued by the FDIP front-end.
	OriginFDIP
	// OriginPF is a fill issued by the evaluated prefetcher.
	OriginPF
)

func (o Origin) String() string {
	switch o {
	case OriginDemand:
		return "demand"
	case OriginFDIP:
		return "fdip"
	case OriginPF:
		return "prefetch"
	default:
		return fmt.Sprintf("Origin(%d)", uint8(o))
	}
}

// LineMeta is the per-line bookkeeping carried through the hierarchy.
type LineMeta struct {
	// Origin says who installed the line.
	Origin Origin
	// Used marks that a demand access hit the line after installation.
	Used bool
	// IssueSeq is the retired-block sequence number when the installing
	// request was issued; the prefetch-distance metric is the delta to
	// the first use.
	IssueSeq uint64
}

// Config sizes one table.
type Config struct {
	// Name labels the table in statistics.
	Name string
	// Sets and Ways give the organisation; Sets must be a power of two.
	Sets, Ways int
}

// SizeBlocks returns the capacity in entries.
func (c Config) SizeBlocks() int { return c.Sets * c.Ways }

// Table is a set-associative LRU table keyed by a 64-bit key (cache block
// index or page number).
//
// Each set stores its resident lines as a recency-ordered prefix of the
// set's way slots: keys[base] is the MRU line, keys[base+cnt-1] the LRU
// one, and slots past cnt are empty. This move-to-front layout is
// observationally identical to a per-line LRU age field (the ages such a
// scheme maintains are exactly the recency ranks this layout stores
// positionally) but makes the two hottest operations cheap: lookups
// usually find their line in the first way or two, and refreshing
// recency is a short prefix rotate instead of a full-set age walk.
type Table struct {
	cfg  Config
	mask uint64
	ways int
	keys []uint64
	meta []LineMeta
	cnt  []uint8 // per-set occupancy (valid lines form a prefix)

	// Hits and Misses count Lookup outcomes.
	Hits, Misses uint64
}

// New builds a table. Sets must be a power of two and Ways at least 1.
func New(cfg Config) (*Table, error) {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: sets %d not a positive power of two", cfg.Name, cfg.Sets)
	}
	if cfg.Ways <= 0 || cfg.Ways > 255 {
		return nil, fmt.Errorf("cache %s: ways %d out of range", cfg.Name, cfg.Ways)
	}
	n := cfg.Sets * cfg.Ways
	return &Table{
		cfg:  cfg,
		mask: uint64(cfg.Sets - 1),
		ways: cfg.Ways,
		keys: make([]uint64, n),
		meta: make([]LineMeta, n),
		cnt:  make([]uint8, cfg.Sets),
	}, nil
}

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// Lookup probes for key; on a hit it refreshes LRU, counts the hit, and
// returns a pointer to the line's metadata (valid until the next
// operation on the same set).
func (t *Table) Lookup(key uint64) (*LineMeta, bool) {
	set := key & t.mask
	base := int(set) * t.ways
	n := int(t.cnt[set])
	for w := 0; w < n; w++ {
		if t.keys[base+w] == key {
			t.touch(base, w)
			t.Hits++
			return &t.meta[base], true
		}
	}
	t.Misses++
	return nil, false
}

// Contains probes without touching LRU or counting statistics.
func (t *Table) Contains(key uint64) bool {
	set := key & t.mask
	base := int(set) * t.ways
	n := int(t.cnt[set])
	for w := 0; w < n; w++ {
		if t.keys[base+w] == key {
			return true
		}
	}
	return false
}

// Peek returns the metadata without touching LRU or statistics. The
// pointer is valid until the next operation on the same set.
func (t *Table) Peek(key uint64) (*LineMeta, bool) {
	set := key & t.mask
	base := int(set) * t.ways
	n := int(t.cnt[set])
	for w := 0; w < n; w++ {
		if t.keys[base+w] == key {
			return &t.meta[base+w], true
		}
	}
	return nil, false
}

// Insert installs key with the given metadata, returning the evicted key
// and metadata if a valid line was displaced. Inserting an existing key
// refreshes its metadata and LRU position instead; the resident line's
// Used bit survives the refresh — a re-install must not strip usefulness
// credit already earned by a demand hit.
func (t *Table) Insert(key uint64, meta LineMeta) (evictedKey uint64, evictedMeta LineMeta, evicted bool) {
	set := key & t.mask
	base := int(set) * t.ways
	n := int(t.cnt[set])
	for w := 0; w < n; w++ {
		if t.keys[base+w] == key {
			meta.Used = meta.Used || t.meta[base+w].Used
			t.meta[base+w] = meta
			t.touch(base, w)
			return 0, LineMeta{}, false
		}
	}
	if n == t.ways {
		// Set full: the LRU line (last in recency order) is displaced.
		evictedKey, evictedMeta, evicted = t.keys[base+n-1], t.meta[base+n-1], true
		n--
	} else {
		t.cnt[set]++
	}
	// Shift the survivors down one slot and install at the MRU front.
	copy(t.keys[base+1:base+n+1], t.keys[base:base+n])
	copy(t.meta[base+1:base+n+1], t.meta[base:base+n])
	t.keys[base] = key
	t.meta[base] = meta
	return evictedKey, evictedMeta, evicted
}

// Invalidate removes key if present, returning its metadata.
func (t *Table) Invalidate(key uint64) (LineMeta, bool) {
	set := key & t.mask
	base := int(set) * t.ways
	n := int(t.cnt[set])
	for w := 0; w < n; w++ {
		if t.keys[base+w] == key {
			meta := t.meta[base+w]
			copy(t.keys[base+w:base+n-1], t.keys[base+w+1:base+n])
			copy(t.meta[base+w:base+n-1], t.meta[base+w+1:base+n])
			t.cnt[set]--
			return meta, true
		}
	}
	return LineMeta{}, false
}

// touch moves the line at way to the MRU front of its set by rotating
// the prefix above it down one slot.
func (t *Table) touch(base, way int) {
	if way == 0 {
		return
	}
	k := t.keys[base+way]
	m := t.meta[base+way]
	copy(t.keys[base+1:base+way+1], t.keys[base:base+way])
	copy(t.meta[base+1:base+way+1], t.meta[base:base+way])
	t.keys[base] = k
	t.meta[base] = m
}

// Reset clears contents and statistics.
func (t *Table) Reset() {
	clear(t.cnt)
	t.Hits, t.Misses = 0, 0
}

// MSHR is one in-flight fill.
type MSHR struct {
	// Block is the cache block being filled.
	Block isa.Block
	// FillAt is the cycle the data arrives.
	FillAt uint64
	// Origin says who issued the request.
	Origin Origin
	// IssueSeq is the retired-block sequence number at issue.
	IssueSeq uint64
	// Level records which hierarchy level serves the fill (2, 3, 4).
	Level uint8
}

// MSHRFile tracks in-flight fills with bounded capacity. It is a fixed
// array sized once at construction — hardware MSHR files are a handful
// of entries, so linear probes beat a map on the simulator's hottest
// path, steady-state operation never allocates, and (unlike a Go map)
// every traversal order is deterministic: Drain retires completed fills
// in (FillAt, Block) order, so downstream L1-I install and eviction
// order is identical on every run of the same trace. Occupancy is kept
// as a bitmask so probes walk only the live entries (typically a small
// fraction of capacity) in ascending slot order, instead of scanning
// the whole backing array.
type MSHRFile struct {
	entries []MSHR   // fixed backing store, len == capacity
	live    []uint64 // occupancy bitmask, bit i: entries[i] is in flight
	n       int      // current occupancy
	drain   []MSHR   // scratch for Drain, reused across calls
}

// NewMSHRFile builds a file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity < 1 {
		capacity = 1
	}
	return &MSHRFile{
		entries: make([]MSHR, capacity),
		live:    make([]uint64, (capacity+63)/64),
		drain:   make([]MSHR, 0, capacity),
	}
}

// Lookup returns the in-flight entry for block, if any. The pointer
// aims into the file's backing store: it is valid until the entry is
// removed (or drained) and its slot reused by a later Add.
func (m *MSHRFile) Lookup(b isa.Block) (*MSHR, bool) {
	for wi, word := range m.live {
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if m.entries[i].Block == b {
				return &m.entries[i], true
			}
		}
	}
	return nil, false
}

// Full reports whether no entry can be allocated.
func (m *MSHRFile) Full() bool { return m.n >= len(m.entries) }

// Len returns the current occupancy.
func (m *MSHRFile) Len() int { return m.n }

// ErrMSHROverflow and ErrMSHRDuplicate are the MSHR allocation
// failures. Callers are expected to check Full/Lookup first (hardware
// does), so hitting either at runtime means the caller's accounting has
// drifted; surfacing it as an error lets a simulation run fail cleanly
// instead of taking the whole process down.
var (
	ErrMSHROverflow  = errors.New("cache: MSHR file overflow")
	ErrMSHRDuplicate = errors.New("cache: duplicate MSHR")
)

// Add allocates an entry (copying *e into the file). It returns
// ErrMSHROverflow when the file is full and ErrMSHRDuplicate when the
// block is already tracked.
func (m *MSHRFile) Add(e *MSHR) error {
	if m.Full() {
		return fmt.Errorf("%w (cap %d, block %#x)", ErrMSHROverflow, len(m.entries), uint64(e.Block))
	}
	if _, dup := m.Lookup(e.Block); dup {
		return fmt.Errorf("%w (block %#x)", ErrMSHRDuplicate, uint64(e.Block))
	}
	// Lowest free slot (matches the old first-free linear scan).
	free := -1
	for wi, word := range m.live {
		if hole := ^word; hole != 0 {
			free = wi<<6 + bits.TrailingZeros64(hole)
			break
		}
	}
	if free < 0 || free >= len(m.entries) {
		// Unreachable given the Full check, but stay safe.
		return fmt.Errorf("%w (cap %d, block %#x)", ErrMSHROverflow, len(m.entries), uint64(e.Block))
	}
	m.entries[free] = *e
	m.live[free>>6] |= 1 << uint(free&63)
	m.n++
	return nil
}

// Remove deallocates the entry for block. The slot's contents stay in
// place until a later Add reuses it, so a pointer obtained from Lookup
// just before Remove still reads the removed entry's fields.
func (m *MSHRFile) Remove(b isa.Block) {
	for wi, word := range m.live {
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if m.entries[i].Block == b {
				m.live[wi] &^= 1 << uint(i&63)
				m.n--
				return
			}
		}
	}
}

// Drain calls fn for every entry whose fill has completed by now and
// removes it. Completed entries are handed to fn in (FillAt, Block)
// order — the order the fills actually arrive, ties broken by block —
// so the caller's install/eviction sequence is deterministic. Entries
// are deallocated before the first callback, so fn may Add.
func (m *MSHRFile) Drain(now uint64, fn func(*MSHR)) {
	done := m.drain[:0]
	for wi, word := range m.live {
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if m.entries[i].FillAt <= now {
				m.live[wi] &^= 1 << uint(i&63)
				m.n--
				done = append(done, m.entries[i])
			}
		}
	}
	// Insertion sort: the file holds a handful of entries and completed
	// batches are near-sorted already.
	for i := 1; i < len(done); i++ {
		for j := i; j > 0 && earlier(&done[j], &done[j-1]); j-- {
			done[j], done[j-1] = done[j-1], done[j]
		}
	}
	for i := range done {
		fn(&done[i])
	}
	m.drain = done[:0]
}

// earlier orders completed fills by arrival time, then block.
func earlier(a, b *MSHR) bool {
	if a.FillAt != b.FillAt {
		return a.FillAt < b.FillAt
	}
	return a.Block < b.Block
}

// Reset clears all entries.
func (m *MSHRFile) Reset() {
	clear(m.live)
	m.n = 0
}
