package cache

import (
	"errors"
	"testing"
	"testing/quick"

	"hprefetch/internal/isa"
	"hprefetch/internal/xrand"
)

// mustNew builds a table, failing the test on a bad configuration.
func mustNew(t *testing.T, cfg Config) *Table {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Name: "x", Sets: 3, Ways: 2}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New(Config{Name: "x", Sets: 4, Ways: 0}); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := New(Config{Name: "x", Sets: 0, Ways: 2}); err == nil {
		t.Error("zero sets accepted")
	}
}

func TestLookupInsert(t *testing.T) {
	c := mustNew(t, Config{Name: "l1i", Sets: 64, Ways: 8})
	if _, ok := c.Lookup(100); ok {
		t.Error("cold hit")
	}
	c.Insert(100, LineMeta{Origin: OriginFDIP})
	m, ok := c.Lookup(100)
	if !ok || m.Origin != OriginFDIP {
		t.Fatalf("lookup = %v,%v", m, ok)
	}
	m.Used = true
	if m2, _ := c.Peek(100); !m2.Used {
		t.Error("metadata pointer not live")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestInsertEvictsLRU(t *testing.T) {
	c := mustNew(t, Config{Name: "t", Sets: 1, Ways: 2})
	c.Insert(1, LineMeta{})
	c.Insert(2, LineMeta{})
	c.Lookup(1) // make 2 the LRU
	k, _, ev := c.Insert(3, LineMeta{})
	if !ev || k != 2 {
		t.Errorf("evicted %d,%v; want 2", k, ev)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Error("post-eviction contents wrong")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := mustNew(t, Config{Name: "t", Sets: 1, Ways: 2})
	c.Insert(1, LineMeta{Origin: OriginDemand})
	c.Insert(2, LineMeta{})
	if _, _, ev := c.Insert(1, LineMeta{Origin: OriginPF}); ev {
		t.Error("re-insert evicted")
	}
	m, _ := c.Peek(1)
	if m.Origin != OriginPF {
		t.Error("re-insert did not refresh metadata")
	}
	// 1 is now MRU; inserting a third key must evict 2.
	if k, _, ev := c.Insert(3, LineMeta{}); !ev || k != 2 {
		t.Errorf("evicted %d,%v", k, ev)
	}
}

func TestInsertRefreshPreservesUsed(t *testing.T) {
	c := mustNew(t, Config{Name: "t", Sets: 1, Ways: 2})
	c.Insert(1, LineMeta{Origin: OriginPF, IssueSeq: 5})
	m, _ := c.Lookup(1)
	m.Used = true
	// A re-install (e.g. a redundant fill completing) must not strip the
	// usefulness credit the line already earned.
	c.Insert(1, LineMeta{Origin: OriginPF, IssueSeq: 9})
	m2, ok := c.Peek(1)
	if !ok || !m2.Used {
		t.Fatalf("refresh dropped Used bit: %+v", m2)
	}
	if m2.IssueSeq != 9 {
		t.Errorf("refresh kept stale IssueSeq %d, want 9", m2.IssueSeq)
	}
	// An unused line stays unused across a refresh.
	c.Insert(2, LineMeta{Origin: OriginFDIP})
	c.Insert(2, LineMeta{Origin: OriginFDIP})
	if m3, _ := c.Peek(2); m3.Used {
		t.Error("refresh invented a Used bit")
	}
}

// TestInsertVictimDeterminism pins the deterministic victim choice:
// fills into a non-full set never evict, and a full set always evicts
// the least-recently-touched line — the recency order is total, so
// there is no tie to break and every process picks the same victim.
func TestInsertVictimDeterminism(t *testing.T) {
	c := mustNew(t, Config{Name: "t", Sets: 1, Ways: 4})
	for _, k := range []uint64{10, 20, 30, 40} {
		if _, _, ev := c.Insert(k, LineMeta{}); ev {
			t.Fatalf("fill of %d into non-full set evicted", k)
		}
	}
	// Recency now 40>30>20>10; touch 10 and 30, leaving 20 as LRU.
	c.Lookup(10)
	c.Lookup(30)
	k, _, ev := c.Insert(99, LineMeta{})
	if !ev || k != 20 {
		t.Errorf("eviction took %d (evicted=%v), want LRU key 20", k, ev)
	}
	// The survivors and the new line are all resident.
	for _, want := range []uint64{10, 30, 40, 99} {
		if !c.Contains(want) {
			t.Errorf("key %d missing after eviction", want)
		}
	}
}

func TestInvalidate(t *testing.T) {
	c := mustNew(t, Config{Name: "t", Sets: 4, Ways: 2})
	c.Insert(9, LineMeta{Origin: OriginPF})
	m, ok := c.Invalidate(9)
	if !ok || m.Origin != OriginPF {
		t.Error("invalidate lost metadata")
	}
	if c.Contains(9) {
		t.Error("key survives invalidate")
	}
	if _, ok := c.Invalidate(9); ok {
		t.Error("double invalidate succeeded")
	}
}

// TestLRUAgainstReference compares the table against a reference LRU
// model over random traffic.
func TestLRUAgainstReference(t *testing.T) {
	const sets, ways = 4, 4
	c := mustNew(t, Config{Name: "ref", Sets: sets, Ways: ways})
	// Reference: per set, ordered slice of keys (front = MRU).
	ref := make([][]uint64, sets)
	rng := xrand.New(77)
	find := func(s []uint64, k uint64) int {
		for i, v := range s {
			if v == k {
				return i
			}
		}
		return -1
	}
	for i := 0; i < 200000; i++ {
		key := uint64(rng.IntN(64))
		set := int(key % sets)
		if rng.Bool(0.6) {
			_, hit := c.Lookup(key)
			j := find(ref[set], key)
			if hit != (j >= 0) {
				t.Fatalf("step %d: hit=%v ref=%v", i, hit, j >= 0)
			}
			if j >= 0 {
				k := ref[set][j]
				ref[set] = append(ref[set][:j], ref[set][j+1:]...)
				ref[set] = append([]uint64{k}, ref[set]...)
			}
		} else {
			_, _, ev := c.Insert(key, LineMeta{})
			j := find(ref[set], key)
			if j >= 0 {
				if ev {
					t.Fatalf("step %d: refresh evicted", i)
				}
				k := ref[set][j]
				ref[set] = append(ref[set][:j], ref[set][j+1:]...)
				ref[set] = append([]uint64{k}, ref[set]...)
			} else {
				if len(ref[set]) == ways {
					ref[set] = ref[set][:ways-1] // drop LRU
				}
				ref[set] = append([]uint64{key}, ref[set]...)
				_ = ev
			}
		}
	}
	// Final contents must agree.
	for set := range ref {
		for _, k := range ref[set] {
			if !c.Contains(k) {
				t.Fatalf("reference key %d missing", k)
			}
		}
	}
}

func TestTableProperty(t *testing.T) {
	// After inserting any sequence, a just-inserted key is always
	// present and total valid entries never exceed capacity.
	f := func(seed uint64, n uint16) bool {
		c := mustNew(t, Config{Name: "q", Sets: 8, Ways: 2})
		rng := xrand.New(seed)
		for i := 0; i < int(n%512); i++ {
			k := uint64(rng.IntN(1000))
			c.Insert(k, LineMeta{})
			if !c.Contains(k) {
				return false
			}
		}
		count := 0
		for k := uint64(0); k < 1000; k++ {
			if c.Contains(k) {
				count++
			}
		}
		return count <= c.Config().SizeBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, Config{Name: "t", Sets: 2, Ways: 2})
	c.Insert(1, LineMeta{})
	c.Lookup(1)
	c.Reset()
	if c.Contains(1) || c.Hits != 0 || c.Misses != 0 {
		t.Error("reset incomplete")
	}
}

func TestMSHRFile(t *testing.T) {
	m := NewMSHRFile(2)
	if err := m.Add(&MSHR{Block: 1, FillAt: 10}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(&MSHR{Block: 2, FillAt: 20}); err != nil {
		t.Fatal(err)
	}
	if !m.Full() || m.Len() != 2 {
		t.Error("capacity accounting wrong")
	}
	if e, ok := m.Lookup(1); !ok || e.FillAt != 10 {
		t.Error("lookup failed")
	}
	drained := map[isa.Block]bool{}
	m.Drain(15, func(e *MSHR) { drained[e.Block] = true })
	if !drained[1] || drained[2] || m.Len() != 1 {
		t.Errorf("drain wrong: %v len=%d", drained, m.Len())
	}
	m.Remove(2)
	if m.Len() != 0 {
		t.Error("remove failed")
	}
}

// TestMSHRDrainOrder pins the deterministic retirement order: completed
// fills come back sorted by (FillAt, Block) regardless of insertion
// order — the property the L1-I install/eviction sequence depends on.
func TestMSHRDrainOrder(t *testing.T) {
	perms := [][]MSHR{
		{{Block: 9, FillAt: 30}, {Block: 2, FillAt: 10}, {Block: 7, FillAt: 10}, {Block: 5, FillAt: 20}, {Block: 1, FillAt: 40}},
		{{Block: 1, FillAt: 40}, {Block: 5, FillAt: 20}, {Block: 7, FillAt: 10}, {Block: 2, FillAt: 10}, {Block: 9, FillAt: 30}},
		{{Block: 7, FillAt: 10}, {Block: 9, FillAt: 30}, {Block: 1, FillAt: 40}, {Block: 5, FillAt: 20}, {Block: 2, FillAt: 10}},
	}
	want := []isa.Block{2, 7, 5, 9} // (10,2) (10,7) (20,5) (30,9); block 1 still in flight
	for pi, entries := range perms {
		m := NewMSHRFile(8)
		for i := range entries {
			if err := m.Add(&entries[i]); err != nil {
				t.Fatal(err)
			}
		}
		var got []isa.Block
		m.Drain(30, func(e *MSHR) { got = append(got, e.Block) })
		if len(got) != len(want) {
			t.Fatalf("perm %d: drained %v, want %v", pi, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("perm %d: drained %v, want %v", pi, got, want)
			}
		}
		if m.Len() != 1 {
			t.Errorf("perm %d: %d entries left, want 1", pi, m.Len())
		}
	}
}

// TestMSHRSlotReuse exercises the fixed-capacity file through
// remove/re-add churn: slots free and refill without losing entries.
func TestMSHRSlotReuse(t *testing.T) {
	m := NewMSHRFile(3)
	for b := isa.Block(1); b <= 3; b++ {
		if err := m.Add(&MSHR{Block: b, FillAt: uint64(b) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	m.Remove(2)
	if m.Full() || m.Len() != 2 {
		t.Fatalf("after remove: len=%d full=%v", m.Len(), m.Full())
	}
	if err := m.Add(&MSHR{Block: 4, FillAt: 40}); err != nil {
		t.Fatal(err)
	}
	for _, b := range []isa.Block{1, 3, 4} {
		if _, ok := m.Lookup(b); !ok {
			t.Errorf("block %d lost across slot reuse", b)
		}
	}
	if _, ok := m.Lookup(2); ok {
		t.Error("removed block still tracked")
	}
	// Drain callbacks may allocate: slots are freed before fn runs.
	m.Drain(1<<62, func(e *MSHR) {
		if e.Block == 1 {
			if err := m.Add(&MSHR{Block: 8, FillAt: 80}); err != nil {
				t.Errorf("Add during Drain: %v", err)
			}
		}
	})
	if _, ok := m.Lookup(8); !ok || m.Len() != 1 {
		t.Errorf("entry added during drain lost: len=%d", m.Len())
	}
	m.Reset()
	if m.Len() != 0 || m.Full() {
		t.Error("reset incomplete")
	}
}

// TestMSHRAddErrors asserts allocation failures come back as typed
// errors rather than panics, and that a failed Add leaves the file
// unchanged.
func TestMSHRAddErrors(t *testing.T) {
	m := NewMSHRFile(1)
	if err := m.Add(&MSHR{Block: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(&MSHR{Block: 2}); !errors.Is(err, ErrMSHROverflow) {
		t.Errorf("overflow Add: err = %v, want ErrMSHROverflow", err)
	}
	if m.Len() != 1 {
		t.Errorf("failed Add changed occupancy: len = %d", m.Len())
	}
	if _, ok := m.Lookup(2); ok {
		t.Error("failed Add installed the entry")
	}

	m2 := NewMSHRFile(4)
	if err := m2.Add(&MSHR{Block: 3, FillAt: 7}); err != nil {
		t.Fatal(err)
	}
	if err := m2.Add(&MSHR{Block: 3}); !errors.Is(err, ErrMSHRDuplicate) {
		t.Errorf("duplicate Add: err = %v, want ErrMSHRDuplicate", err)
	}
	if e, ok := m2.Lookup(3); !ok || e.FillAt != 7 {
		t.Error("duplicate Add clobbered the original entry")
	}
}
