// Package corpus is the content-addressed trace store behind
// replay-only sweeps: record a workload's event stream once, ingest it,
// and every scheme of every later experiment replays from the shared
// object instead of regenerating the stream live. Objects are keyed on
// tracefile.HeaderFingerprint, so re-ingesting the same recording is a
// no-op and two different recordings can never collide silently.
//
// Layout under the store root:
//
//	objects/<key>.hpt       the trace image, immutable once published
//	objects/<key>.json      its manifest (identity, totals, CRC index)
//	quarantine/             objects scrub or replay found damaged
//	tmp/                    ingest staging (crash leftovers; see GC)
//
// Every publish is write-temp → fsync → rename, manifest strictly after
// object, so a torn write or a crash mid-ingest never yields a visible
// object: an object exists exactly when its manifest does, and the
// manifest was renamed in last. The manifest carries a whole-file CRC
// and a per-frame CRC index, so the scrubber detects any byte-level
// damage — including damage (like swapped frames or a torn tail) that
// leaves every record checksum intact.
//
// The store is safe for concurrent use by multiple processes sharing
// one directory (fleet backends mounting a common corpus): readers see
// only atomically published objects, quarantine is an atomic rename,
// and losing a publish race simply means the winner's identical bytes
// are already there. Only GC assumes no ingest is concurrently staging.
package corpus

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hprefetch/internal/tracefile"
)

// TraceExt is the object file extension (same as harness trace files).
const TraceExt = ".hpt"

// FrameCRC locates one frame record and its stored checksum — the
// manifest's per-frame integrity index, verified by Store.Verify
// without decoding frame bodies.
type FrameCRC struct {
	Off int64  `json:"off"`
	Len int64  `json:"len"`
	CRC uint32 `json:"crc"`
}

// Entry is one published object's manifest: identity, stream totals
// measured by the deep verification at ingest, and the CRC index the
// scrubber checks against.
type Entry struct {
	// Key is the content address: tracefile.HeaderFingerprint with the
	// ':' made filename-safe ('-').
	Key string `json:"key"`
	// Workload, Seed and TargetInstructions mirror the trace header.
	Workload           string `json:"workload"`
	Seed               uint64 `json:"seed"`
	TargetInstructions uint64 `json:"target_instructions"`
	// Frames, Events, Instructions and Requests are the decoded stream
	// totals (cross-checked against the trace's own index at ingest).
	Frames       int    `json:"frames"`
	Events       uint64 `json:"events"`
	Instructions uint64 `json:"instructions"`
	Requests     uint64 `json:"requests"`
	// Bytes and FileCRC fingerprint the whole object image.
	Bytes   int64  `json:"bytes"`
	FileCRC uint32 `json:"file_crc"`
	// FrameCRCs indexes every frame record's span and checksum.
	FrameCRCs []FrameCRC `json:"frame_crcs"`
}

// Store is a corpus rooted at one directory. The zero value is not
// valid — use Open. Methods are safe for concurrent use.
type Store struct {
	root string
	// quarMu serialises quarantine-name probing within this process;
	// cross-process races fall back on rename atomicity.
	quarMu sync.Mutex
}

// Key converts a tracefile.HeaderFingerprint into its object key.
func Key(fingerprint string) string { return strings.ReplaceAll(fingerprint, ":", "-") }

// Open opens (creating if needed) the corpus rooted at dir.
func Open(dir string) (*Store, error) {
	s := &Store{root: dir}
	for _, d := range []string{s.objectsDir(), s.quarantineDir(), s.tmpDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) objectsDir() string    { return filepath.Join(s.root, "objects") }
func (s *Store) quarantineDir() string { return filepath.Join(s.root, "quarantine") }
func (s *Store) tmpDir() string        { return filepath.Join(s.root, "tmp") }

// ObjectPath returns where the object for key lives (whether or not it
// currently exists).
func (s *Store) ObjectPath(key string) string {
	return filepath.Join(s.objectsDir(), key+TraceExt)
}

func (s *Store) manifestPath(key string) string {
	return filepath.Join(s.objectsDir(), key+".json")
}

// testHookBetweenPublishes, when non-nil, runs after the object rename
// and before the manifest rename — the widest crash window in a
// publish. The crash-consistency test uses it to SIGKILL the process at
// that instant; nothing outside tests ever sets it.
var testHookBetweenPublishes func()

// Ingest verifies the trace at path deeply and publishes it under its
// content address. Re-ingesting bytes already in the store is a no-op
// (added=false). Corrupt, torn or unsealed traces never become
// addressable: verification precedes publication.
func (s *Store) Ingest(path string) (Entry, bool, error) {
	fp, err := tracefile.HeaderFingerprint(path)
	if err != nil {
		return Entry{}, false, fmt.Errorf("corpus: ingest %s: %w", path, err)
	}
	key := Key(fp)
	if e, err := s.Manifest(key); err == nil {
		// Already published. Trust but verify cheaply: the object must
		// exist at its manifest size.
		if st, err := os.Stat(s.ObjectPath(key)); err == nil && st.Size() == e.Bytes {
			return e, false, nil
		}
	}

	data, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, false, fmt.Errorf("corpus: ingest: %w", err)
	}
	lo, err := tracefile.LayoutOf(data)
	if err != nil {
		return Entry{}, false, fmt.Errorf("corpus: ingest %s: %w", path, err)
	}
	info, err := tracefile.VerifyDeep(path)
	if err != nil {
		return Entry{}, false, fmt.Errorf("corpus: ingest %s: %w", path, err)
	}
	e := Entry{
		Key:                key,
		Workload:           info.Meta.Workload,
		Seed:               info.Meta.Seed,
		TargetInstructions: info.Meta.TargetInstructions,
		Frames:             info.Frames,
		Events:             info.Events,
		Instructions:       info.Instructions,
		Requests:           info.Requests,
		Bytes:              int64(len(data)),
		FileCRC:            crc32.ChecksumIEEE(data),
	}
	for _, fr := range lo.Frames {
		e.FrameCRCs = append(e.FrameCRCs, FrameCRC{Off: fr.Off, Len: fr.Len, CRC: fr.CRC})
	}
	man, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return Entry{}, false, err
	}
	// Object first, manifest second: a crash between the renames leaves
	// an orphan object no reader resolves (GC sweeps it), never a
	// manifest pointing at nothing.
	if err := s.publish(s.ObjectPath(key), data); err != nil {
		return Entry{}, false, fmt.Errorf("corpus: ingest: %w", err)
	}
	if testHookBetweenPublishes != nil {
		testHookBetweenPublishes()
	}
	if err := s.publish(s.manifestPath(key), man); err != nil {
		return Entry{}, false, fmt.Errorf("corpus: ingest: %w", err)
	}
	return e, true, nil
}

// publish atomically installs content at target: temp file in tmp/,
// fsync, rename into place, fsync the containing directory.
func (s *Store) publish(target string, content []byte) error {
	f, err := os.CreateTemp(s.tmpDir(), filepath.Base(target)+".*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(content); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, target)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if d, derr := os.Open(filepath.Dir(target)); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Manifest loads one key's manifest.
func (s *Store) Manifest(key string) (Entry, error) {
	raw, err := os.ReadFile(s.manifestPath(key))
	if err != nil {
		return Entry{}, err
	}
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return Entry{}, fmt.Errorf("corpus: manifest %s: %w", key, err)
	}
	if e.Key != key {
		return Entry{}, fmt.Errorf("corpus: manifest %s names key %q", key, e.Key)
	}
	return e, nil
}

// List returns every published entry, sorted by key. Manifests that
// fail to parse or lack their object are skipped — they are GC's and
// the scrubber's business, not a reason to fail a listing.
func (s *Store) List() ([]Entry, error) {
	names, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	var out []Entry
	for _, de := range names {
		name := de.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		key := strings.TrimSuffix(name, ".json")
		e, err := s.Manifest(key)
		if err != nil {
			continue
		}
		if _, err := os.Stat(s.ObjectPath(key)); err != nil {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Resolve picks the best object for a workload: the one whose recording
// target covers at least minInstructions, preferring the longest
// recording (ties broken by key, so every process picks the same
// object).
func (s *Store) Resolve(workload string, minInstructions uint64) (Entry, bool) {
	entries, err := s.List()
	if err != nil {
		return Entry{}, false
	}
	var best Entry
	found := false
	for _, e := range entries {
		if e.Workload != workload || e.TargetInstructions < minInstructions {
			continue
		}
		if !found || e.TargetInstructions > best.TargetInstructions ||
			(e.TargetInstructions == best.TargetInstructions && e.Key < best.Key) {
			best, found = e, true
		}
	}
	return best, found
}

// Verify checks one entry's object against its manifest and the trace
// format itself: byte size, whole-file CRC, every frame span and CRC in
// the index, then a full decode (checksums, varints, footers, frame
// continuity, index totals). Any mismatch is corruption.
func (s *Store) Verify(e Entry) error {
	path := s.ObjectPath(e.Key)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("corpus: %s: %w", e.Key, err)
	}
	if int64(len(data)) != e.Bytes {
		return fmt.Errorf("corpus: %s: %w: object is %d bytes, manifest says %d",
			e.Key, tracefile.ErrCorrupt, len(data), e.Bytes)
	}
	if crc := crc32.ChecksumIEEE(data); crc != e.FileCRC {
		return fmt.Errorf("corpus: %s: %w: file CRC %08x, manifest says %08x",
			e.Key, tracefile.ErrCorrupt, crc, e.FileCRC)
	}
	lo, err := tracefile.LayoutOf(data)
	if err != nil {
		return fmt.Errorf("corpus: %s: %w", e.Key, err)
	}
	if len(lo.Frames) != len(e.FrameCRCs) {
		return fmt.Errorf("corpus: %s: %w: %d frame records, manifest indexes %d",
			e.Key, tracefile.ErrCorrupt, len(lo.Frames), len(e.FrameCRCs))
	}
	for i, fr := range lo.Frames {
		if want := e.FrameCRCs[i]; fr.Off != want.Off || fr.Len != want.Len || fr.CRC != want.CRC {
			return fmt.Errorf("corpus: %s: %w: frame %d span/CRC disagrees with manifest",
				e.Key, tracefile.ErrCorrupt, i)
		}
	}
	info, err := tracefile.VerifyDeep(path)
	if err != nil {
		return fmt.Errorf("corpus: %s: %w", e.Key, err)
	}
	if info.Meta.Workload != e.Workload || info.Meta.Seed != e.Seed ||
		info.Frames != e.Frames || info.Events != e.Events ||
		info.Instructions != e.Instructions || info.Requests != e.Requests {
		return fmt.Errorf("corpus: %s: %w: decoded identity/totals disagree with manifest",
			e.Key, tracefile.ErrCorrupt)
	}
	return nil
}

// ScrubFailure is one quarantined object.
type ScrubFailure struct {
	Key    string `json:"key"`
	Reason string `json:"reason"`
}

// ScrubReport summarises a scrub pass.
type ScrubReport struct {
	Scanned     int            `json:"scanned"`
	OK          int            `json:"ok"`
	Quarantined int            `json:"quarantined"`
	Failures    []ScrubFailure `json:"failures,omitempty"`
}

// Scrub verifies every published object with parallel workers and
// quarantines each failure. The report lists failures sorted by key.
func (s *Store) Scrub(parallel int) (ScrubReport, error) {
	if parallel < 1 {
		parallel = 1
	}
	entries, err := s.List()
	if err != nil {
		return ScrubReport{}, err
	}
	rep := ScrubReport{Scanned: len(entries)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallel)
	var firstErr error
	for _, e := range entries {
		wg.Add(1)
		sem <- struct{}{}
		go func(e Entry) {
			defer wg.Done()
			defer func() { <-sem }()
			verr := s.Verify(e)
			mu.Lock()
			defer mu.Unlock()
			if verr == nil {
				rep.OK++
				return
			}
			rep.Failures = append(rep.Failures, ScrubFailure{Key: e.Key, Reason: verr.Error()})
			if _, qerr := s.QuarantineKey(e.Key, verr.Error()); qerr != nil {
				if firstErr == nil {
					firstErr = qerr
				}
			} else {
				rep.Quarantined++
			}
		}(e)
	}
	wg.Wait()
	sort.Slice(rep.Failures, func(i, j int) bool { return rep.Failures[i].Key < rep.Failures[j].Key })
	return rep, firstErr
}

// QuarantineKey moves an object (and its manifest) out of the
// addressable store into quarantine/, recording why in a .reason file.
// Quarantining an already-removed object is not an error — under
// concurrent detection, first mover wins. It returns where the object
// went ("" if another process already took it).
func (s *Store) QuarantineKey(key, reason string) (string, error) {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	// Pick a free quarantine slot: <key>.hpt, then <key>.2.hpt, ...
	var dst string
	for i := 1; ; i++ {
		base := key
		if i > 1 {
			base = fmt.Sprintf("%s.%d", key, i)
		}
		dst = filepath.Join(s.quarantineDir(), base+TraceExt)
		if _, err := os.Stat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		if i > 1000 {
			return "", fmt.Errorf("corpus: quarantine of %s: no free slot", key)
		}
	}
	moved := false
	if err := os.Rename(s.ObjectPath(key), dst); err == nil {
		moved = true
	} else if !errors.Is(err, fs.ErrNotExist) {
		return "", fmt.Errorf("corpus: quarantine %s: %w", key, err)
	}
	manDst := strings.TrimSuffix(dst, TraceExt) + ".json"
	if err := os.Rename(s.manifestPath(key), manDst); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return "", fmt.Errorf("corpus: quarantine %s: %w", key, err)
	}
	if !moved {
		return "", nil
	}
	_ = os.WriteFile(strings.TrimSuffix(dst, TraceExt)+".reason", []byte(reason+"\n"), 0o644)
	return dst, nil
}

// QuarantinePath quarantines the object whose published path is p
// (as returned by ObjectPath/Resolve).
func (s *Store) QuarantinePath(p, reason string) (string, error) {
	base := filepath.Base(p)
	if !strings.HasSuffix(base, TraceExt) || filepath.Dir(p) != s.objectsDir() {
		return "", fmt.Errorf("corpus: %s is not a corpus object path", p)
	}
	return s.QuarantineKey(strings.TrimSuffix(base, TraceExt), reason)
}

// GCReport summarises a garbage collection.
type GCReport struct {
	TempFiles       int `json:"temp_files"`
	OrphanObjects   int `json:"orphan_objects"`
	OrphanManifests int `json:"orphan_manifests"`
}

// GC removes ingest leftovers: everything in tmp/ (staging files a
// crash abandoned), objects without a manifest (a crash between the
// two publish renames), and manifests without an object (a partially
// completed quarantine). It assumes no ingest is running concurrently
// in any process — run it from an administrative context.
func (s *Store) GC() (GCReport, error) {
	var rep GCReport
	tmp, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return rep, fmt.Errorf("corpus: %w", err)
	}
	for _, de := range tmp {
		if err := os.Remove(filepath.Join(s.tmpDir(), de.Name())); err == nil {
			rep.TempFiles++
		}
	}
	names, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return rep, fmt.Errorf("corpus: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, TraceExt):
			key := strings.TrimSuffix(name, TraceExt)
			if _, err := os.Stat(s.manifestPath(key)); errors.Is(err, fs.ErrNotExist) {
				if os.Remove(s.ObjectPath(key)) == nil {
					rep.OrphanObjects++
				}
			}
		case strings.HasSuffix(name, ".json"):
			key := strings.TrimSuffix(name, ".json")
			if _, err := os.Stat(s.ObjectPath(key)); errors.Is(err, fs.ErrNotExist) {
				if os.Remove(s.manifestPath(key)) == nil {
					rep.OrphanManifests++
				}
			}
		}
	}
	return rep, nil
}
