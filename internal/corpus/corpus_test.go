package corpus

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"hprefetch/internal/fault"
	"hprefetch/internal/tracefile"
	"hprefetch/internal/workloads"
)

// recordTrace writes a small sealed trace for workload and returns its
// path. Small frames keep multi-frame structure cheap (the storage
// fault classes need at least two frames to have anything to damage).
func recordTrace(t *testing.T, dir, workload string, instr uint64) string {
	t.Helper()
	built, err := workloads.Build(workload)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, workload+TraceExt)
	meta := tracefile.Meta{Workload: workload, Seed: built.Workload.TraceSeed, TargetInstructions: instr}
	if _, err := tracefile.Record(path, built.NewEngine(), meta, instr, 64, tracefile.Options{FrameEvents: 256}); err != nil {
		t.Fatal(err)
	}
	return path
}

// cleanTraceBytes memoises one recorded trace per workload across tests.
var (
	traceOnce  sync.Mutex
	traceBytes = map[string][]byte{}
)

func traceFixture(t *testing.T, workload string, instr uint64) []byte {
	t.Helper()
	key := workload
	traceOnce.Lock()
	defer traceOnce.Unlock()
	if b, ok := traceBytes[key]; ok {
		return b
	}
	path := recordTrace(t, t.TempDir(), workload, instr)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	traceBytes[key] = b
	return b
}

func writeFixture(t *testing.T, workload string, instr uint64) string {
	t.Helper()
	b := traceFixture(t, workload, instr)
	path := filepath.Join(t.TempDir(), workload+TraceExt)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIngestDedupAndResolve(t *testing.T) {
	store, err := Open(filepath.Join(t.TempDir(), "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	path := writeFixture(t, "gin", 30_000)

	e, added, err := store.Ingest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatal("first ingest reported dedup")
	}
	if e.Workload != "gin" || e.Instructions == 0 || e.Frames < 2 || len(e.FrameCRCs) != e.Frames {
		t.Fatalf("implausible entry: %+v", e)
	}
	fp, err := tracefile.HeaderFingerprint(path)
	if err != nil {
		t.Fatal(err)
	}
	if e.Key != Key(fp) {
		t.Fatalf("entry key %q, want content address %q", e.Key, Key(fp))
	}
	if _, err := os.Stat(store.ObjectPath(e.Key)); err != nil {
		t.Fatalf("object not published: %v", err)
	}

	// Re-ingesting identical bytes is a no-op returning the same entry.
	e2, added, err := store.Ingest(path)
	if err != nil {
		t.Fatal(err)
	}
	if added || e2.Key != e.Key || e2.FileCRC != e.FileCRC {
		t.Fatalf("re-ingest not a dedup no-op: added=%v %+v", added, e2)
	}

	if got, ok := store.Resolve("gin", e.TargetInstructions); !ok || got.Key != e.Key {
		t.Fatalf("Resolve(gin, %d) = %+v, %v", e.TargetInstructions, got, ok)
	}
	if _, ok := store.Resolve("gin", e.TargetInstructions+1); ok {
		t.Fatal("Resolve found an object that does not cover the window")
	}
	if _, ok := store.Resolve("echo", 0); ok {
		t.Fatal("Resolve crossed workloads")
	}
	if err := store.Verify(e); err != nil {
		t.Fatalf("Verify(clean): %v", err)
	}
}

func TestIngestRejectsCorrupt(t *testing.T) {
	store, err := Open(filepath.Join(t.TempDir(), "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	path := writeFixture(t, "gin", 30_000)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Ingest(path); !errors.Is(err, tracefile.ErrCorrupt) {
		t.Fatalf("ingesting a flipped-byte trace: err=%v, want ErrCorrupt", err)
	}
	entries, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("corrupt input became addressable: %+v", entries)
	}
}

// TestScrubQuarantinesEveryStorageClass damages a published object with
// each deterministic storage fault class in turn and requires the
// scrubber to catch 100% of them.
func TestScrubQuarantinesEveryStorageClass(t *testing.T) {
	clean := traceFixture(t, "gin", 30_000)
	for _, class := range fault.StorageClasses() {
		t.Run(string(class), func(t *testing.T) {
			store, err := Open(filepath.Join(t.TempDir(), "corpus"))
			if err != nil {
				t.Fatal(err)
			}
			path := writeFixture(t, "gin", 30_000)
			e, _, err := store.Ingest(path)
			if err != nil {
				t.Fatal(err)
			}

			in, err := fault.New(fault.Config{Class: class, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			damaged, err := in.PerturbTrace(append([]byte(nil), clean...))
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(damaged, clean) {
				t.Fatalf("%s left the trace untouched", class)
			}
			if err := os.WriteFile(store.ObjectPath(e.Key), damaged, 0o644); err != nil {
				t.Fatal(err)
			}

			rep, err := store.Scrub(4)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Scanned != 1 || rep.OK != 0 || rep.Quarantined != 1 {
				t.Fatalf("scrub report %+v, want 1 scanned, 1 quarantined", rep)
			}
			if len(rep.Failures) != 1 || rep.Failures[0].Key != e.Key {
				t.Fatalf("scrub failures %+v, want key %s", rep.Failures, e.Key)
			}
			if entries, _ := store.List(); len(entries) != 0 {
				t.Fatalf("quarantined object still listed: %+v", entries)
			}
			if _, ok := store.Resolve("gin", 0); ok {
				t.Fatal("quarantined object still resolvable")
			}

			// Healing: re-ingesting the clean bytes restores the object at
			// the identical content address.
			if err := os.WriteFile(path, clean, 0o644); err != nil {
				t.Fatal(err)
			}
			e2, added, err := store.Ingest(path)
			if err != nil {
				t.Fatal(err)
			}
			if !added || e2.Key != e.Key {
				t.Fatalf("re-ingest after quarantine: added=%v key=%s, want fresh publish at %s", added, e2.Key, e.Key)
			}
		})
	}
}

func TestQuarantineIsIdempotent(t *testing.T) {
	store, err := Open(filepath.Join(t.TempDir(), "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	path := writeFixture(t, "gin", 30_000)
	e, _, err := store.Ingest(path)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := store.QuarantineKey(e.Key, "test damage")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Fatalf("quarantined object missing: %v", err)
	}
	reason, err := os.ReadFile(strings.TrimSuffix(dst, TraceExt) + ".reason")
	if err != nil || !strings.Contains(string(reason), "test damage") {
		t.Fatalf("reason file: %q, %v", reason, err)
	}
	// Second quarantine of a gone object is a no-op, not an error.
	if _, err := store.QuarantineKey(e.Key, "again"); err != nil {
		t.Fatalf("re-quarantine: %v", err)
	}
}

func TestGCSweepsIngestLeftovers(t *testing.T) {
	root := filepath.Join(t.TempDir(), "corpus")
	store, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	path := writeFixture(t, "gin", 30_000)
	e, _, err := store.Ingest(path)
	if err != nil {
		t.Fatal(err)
	}
	// Manufacture each leftover class: an abandoned staging file, an
	// object whose manifest never landed, and a manifest whose object
	// was removed mid-quarantine.
	if err := os.WriteFile(filepath.Join(root, "tmp", "stale.hpt.123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "objects", "9999-deadbeef"+TraceExt), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "objects", "8888-deadbeef.json"), []byte(`{"key":"8888-deadbeef"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TempFiles != 1 || rep.OrphanObjects != 1 || rep.OrphanManifests != 1 {
		t.Fatalf("GC report %+v, want 1/1/1", rep)
	}
	// The published pair survives.
	if got, ok := store.Resolve("gin", 0); !ok || got.Key != e.Key {
		t.Fatalf("GC removed a live object: %+v, %v", got, ok)
	}
}

// TestIngestCrashHelper is the subprocess body for
// TestIngestCrashNoPartialObject: it arms the between-publishes hook to
// SIGKILL the process — object installed, manifest not yet — and runs
// one ingest. It is skipped unless launched by the parent test.
func TestIngestCrashHelper(t *testing.T) {
	dir := os.Getenv("HPCORPUS_CRASH_DIR")
	if dir == "" {
		t.Skip("subprocess helper; driven by TestIngestCrashNoPartialObject")
	}
	testHookBetweenPublishes = func() {
		syscall.Kill(os.Getpid(), syscall.SIGKILL) //nolint:errcheck
		select {} // unreachable: the kill is synchronous for our own pid
	}
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.Ingest(os.Getenv("HPCORPUS_CRASH_TRACE")) //nolint:errcheck
	t.Fatal("ingest survived the SIGKILL hook")
}

// TestIngestCrashNoPartialObject kills a real process between the
// object rename and the manifest rename — the widest window a crash can
// hit — and requires the store to stay consistent: nothing resolvable,
// the orphan swept by GC, and a re-ingest completing the publish.
func TestIngestCrashNoPartialObject(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	trace := writeFixture(t, "gin", 30_000)

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=TestIngestCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "HPCORPUS_CRASH_DIR="+dir, "HPCORPUS_CRASH_TRACE="+trace)
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if err == nil || !errors.As(err, &ee) {
		t.Fatalf("helper was not killed (err=%v):\n%s", err, out)
	}
	if status, ok := ee.Sys().(syscall.WaitStatus); !ok || !status.Signaled() || status.Signal() != syscall.SIGKILL {
		t.Fatalf("helper exited %v, want SIGKILL:\n%s", ee, out)
	}

	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The half-published object must be invisible to every reader.
	if entries, err := store.List(); err != nil || len(entries) != 0 {
		t.Fatalf("partial object visible after crash: %+v, %v", entries, err)
	}
	if _, ok := store.Resolve("gin", 0); ok {
		t.Fatal("partial object resolvable after crash")
	}
	// GC sweeps exactly the orphan the crash left.
	rep, err := store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrphanObjects != 1 {
		t.Fatalf("GC report %+v, want 1 orphan object", rep)
	}
	// The interrupted publish completes idempotently.
	e, added, err := store.Ingest(trace)
	if err != nil || !added {
		t.Fatalf("re-ingest after crash: added=%v err=%v", added, err)
	}
	if err := store.Verify(e); err != nil {
		t.Fatalf("re-ingested object fails verification: %v", err)
	}
}

// FuzzCorpusIngest holds the store's two safety properties under
// arbitrary input bytes: an accepted trace verifies cleanly and
// re-ingests as a dedup no-op; a rejected one leaves no trace of
// itself in the store.
func FuzzCorpusIngest(f *testing.F) {
	clean := func() []byte {
		built, err := workloads.Build("gin")
		if err != nil {
			f.Fatal(err)
		}
		path := filepath.Join(f.TempDir(), "gin"+TraceExt)
		meta := tracefile.Meta{Workload: "gin", Seed: built.Workload.TraceSeed, TargetInstructions: 30_000}
		if _, err := tracefile.Record(path, built.NewEngine(), meta, 30_000, 64, tracefile.Options{FrameEvents: 256}); err != nil {
			f.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}()
	f.Add(clean)
	f.Add(clean[:len(clean)/2])
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("not a trace"))

	f.Fuzz(func(t *testing.T, data []byte) {
		root := filepath.Join(t.TempDir(), "corpus")
		store, err := Open(root)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "in"+TraceExt)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		e, added, err := store.Ingest(path)
		if err != nil {
			// Rejected: nothing may have become addressable.
			if entries, lerr := store.List(); lerr != nil || len(entries) != 0 {
				t.Fatalf("rejected input left state: %+v, %v", entries, lerr)
			}
			return
		}
		if !added {
			t.Fatal("first ingest into an empty store reported dedup")
		}
		if verr := store.Verify(e); verr != nil {
			t.Fatalf("accepted object fails verification: %v", verr)
		}
		e2, added2, err := store.Ingest(path)
		if err != nil || added2 || e2.Key != e.Key {
			t.Fatalf("re-ingest not a no-op: %+v added=%v err=%v", e2, added2, err)
		}
	})
}
