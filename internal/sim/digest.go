package sim

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
)

// DigestPrefix tags the digest algorithm so a future change of hash or
// canonical form cannot be mistaken for a behaviour change.
const DigestPrefix = "fnv1a64"

// Canonical renders the statistics in a stable text form: one
// `name=value` line per field, in struct declaration order, with array
// and slice fields as comma-separated element lists. Every field is a
// counter (integers only), so the form is bit-exact across platforms;
// two runs are behaviourally identical if and only if their canonical
// forms match. Adding, removing or renaming a Stats field changes the
// canonical form by construction — reflection walks the struct — which
// is deliberate: golden digests must flag any change in what a run
// measures, intended or not.
func (s *Stats) Canonical() string {
	var b strings.Builder
	v := reflect.ValueOf(*s)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		fmt.Fprintf(&b, "%s=", t.Field(i).Name)
		switch f.Kind() {
		case reflect.Slice, reflect.Array:
			for j := 0; j < f.Len(); j++ {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%v", f.Index(j).Interface())
			}
		default:
			fmt.Fprintf(&b, "%v", f.Interface())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Digest returns a short stable fingerprint ("fnv1a64:<16 hex>") of the
// canonical form. Two processes simulating the same workload, scheme
// and configuration must produce identical digests; any drift means the
// simulation is no longer deterministic or its behaviour changed.
func (s *Stats) Digest() string {
	h := fnv.New64a()
	h.Write([]byte(s.Canonical())) //nolint:errcheck // hash writes cannot fail
	return fmt.Sprintf("%s:%016x", DigestPrefix, h.Sum64())
}
