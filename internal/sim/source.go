package sim

import "hprefetch/internal/isa"

// EventSource feeds the machine its retired block-event stream. The
// live implementation is trace.Engine (interpreting the synthetic
// program); tracefile.Reader replays a recorded stream and
// tracefile.Recorder tees a live one to disk — all three satisfy this
// interface structurally, so the machine cannot tell record, replay and
// live apart (which is exactly the digest-equality guarantee).
//
// The counters follow the engine's sampling contract: they describe
// the state after the most recently returned event and are only
// meaningful between Next calls.
//
// A live engine's stream is unbounded. A finite source (a trace file)
// signals its end by returning a zero event (NumInstr == 0) from Next;
// sources that can also explain why should implement
//
//	Err() error
//
// which the machine consults to report the cause (e.g. a truncated
// trace) instead of a bare exhaustion error.
type EventSource interface {
	// Next returns the next retired block event.
	Next() isa.BlockEvent
	// Instructions is the total instructions emitted so far.
	Instructions() uint64
	// Requests is how many requests have been started so far.
	Requests() uint64
	// CurrentType is the request type being processed.
	CurrentType() int
	// Stage is the effective pipeline stage (program.NoStage outside one).
	Stage() int16
	// Depth is the current simulated call-stack depth.
	Depth() int
}

// BatchSource is the optional flat fast-path interface for fully
// decoded in-memory sources (tracefile.MemReader). The machine, on
// seeing it, reads the remaining stream as struct-of-arrays slices and
// runs its cycle loop by direct indexing — no per-event interface
// dispatch, ring copies, or marker lookups. Live and teeing sources
// keep the interface path; behavior (and hence every digest) is
// identical between the two.
//
// Handing a source to a batch consumer transfers cursor ownership: the
// consumer indexes the Batch view and only syncs the source's own
// cursor (BatchConsume) when the stream runs out, so Instructions/Err
// report the same terminal state the interface path would.
type BatchSource interface {
	EventSource
	// Batch returns the undelivered remainder of the stream as flat
	// parallel slices: the events, each event's request id, and its
	// request-done flip. The slices alias the source's decoded storage
	// and must not be mutated.
	Batch() (ev []isa.BlockEvent, req []uint64, done []bool)
	// BatchRequests returns what Requests would read after n more
	// events had been delivered; the machine samples it at its pull
	// high-water at Run boundaries for digest parity.
	BatchRequests(n int) uint64
	// BatchConsume advances the source's cursor past the first n events
	// of the most recent Batch view, as if Next had been called n times.
	BatchConsume(n int)
}

// RequestMarker is the optional per-request boundary interface. Sources
// that implement it (trace.Engine, the tracefile readers and Recorder,
// the microservice interleaver) let the machine attribute fetch stall
// to individual requests and fill the per-request tail histogram; plain
// synthetic sources without it still simulate, just without tail stats.
//
// Both methods follow the sampling contract above: they describe the
// most recently returned event.
type RequestMarker interface {
	// CurrentRequest is the id of the request the event belongs to.
	// Ids are unique per in-flight request; an interleaving source may
	// return non-monotonic ids as it hops between concurrent requests.
	CurrentRequest() uint64
	// RequestDone reports whether the event was its request's last.
	RequestDone() bool
}
