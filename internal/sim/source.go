package sim

import "hprefetch/internal/isa"

// EventSource feeds the machine its retired block-event stream. The
// live implementation is trace.Engine (interpreting the synthetic
// program); tracefile.Reader replays a recorded stream and
// tracefile.Recorder tees a live one to disk — all three satisfy this
// interface structurally, so the machine cannot tell record, replay and
// live apart (which is exactly the digest-equality guarantee).
//
// The counters follow the engine's sampling contract: they describe
// the state after the most recently returned event and are only
// meaningful between Next calls.
//
// A live engine's stream is unbounded. A finite source (a trace file)
// signals its end by returning a zero event (NumInstr == 0) from Next;
// sources that can also explain why should implement
//
//	Err() error
//
// which the machine consults to report the cause (e.g. a truncated
// trace) instead of a bare exhaustion error.
type EventSource interface {
	// Next returns the next retired block event.
	Next() isa.BlockEvent
	// Instructions is the total instructions emitted so far.
	Instructions() uint64
	// Requests is how many requests have been started so far.
	Requests() uint64
	// CurrentType is the request type being processed.
	CurrentType() int
	// Stage is the effective pipeline stage (program.NoStage outside one).
	Stage() int16
	// Depth is the current simulated call-stack depth.
	Depth() int
}

// RequestMarker is the optional per-request boundary interface. Sources
// that implement it (trace.Engine, the tracefile readers and Recorder,
// the microservice interleaver) let the machine attribute fetch stall
// to individual requests and fill the per-request tail histogram; plain
// synthetic sources without it still simulate, just without tail stats.
//
// Both methods follow the sampling contract above: they describe the
// most recently returned event.
type RequestMarker interface {
	// CurrentRequest is the id of the request the event belongs to.
	// Ids are unique per in-flight request; an interleaving source may
	// return non-monotonic ids as it hops between concurrent requests.
	CurrentRequest() uint64
	// RequestDone reports whether the event was its request's last.
	RequestDone() bool
}
