package sim

import (
	"errors"
	"strings"
	"testing"

	"hprefetch/internal/isa"
)

// drySource emits a short straight-line stream and then runs dry — the
// shape of a trace file cut shorter than the requested run.
type drySource struct {
	events int
	addr   isa.Addr
	instr  uint64
	cause  error
}

func (s *drySource) Next() isa.BlockEvent {
	if s.events == 0 {
		return isa.BlockEvent{}
	}
	s.events--
	ev := isa.BlockEvent{Addr: s.addr, NumInstr: isa.InstrPerBlock}
	ev.Target = ev.EndAddr()
	s.addr = ev.Target
	s.instr += uint64(ev.NumInstr)
	return ev
}
func (s *drySource) Instructions() uint64 { return s.instr }
func (s *drySource) Requests() uint64     { return 0 }
func (s *drySource) CurrentType() int     { return 0 }
func (s *drySource) Stage() int16         { return -1 }
func (s *drySource) Depth() int           { return 0 }
func (s *drySource) Err() error           { return s.cause }

// TestRunFailsOnExhaustedSource: a finite event source that runs dry
// mid-run must produce a clean error carrying the source's own
// explanation — never an infinite loop or a panic.
func TestRunFailsOnExhaustedSource(t *testing.T) {
	cause := errors.New("drysource: torn tail")
	m, err := New(DefaultParams(), &drySource{events: 100, addr: 0x400000, cause: cause}, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(1_000_000)
	if err == nil {
		t.Fatal("Run succeeded against a source that ran dry")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("Run error %v does not wrap the source's terminal error", err)
	}
	// The error is sticky: further runs fail immediately.
	if err2 := m.Run(1); !errors.Is(err2, cause) {
		t.Fatalf("second Run returned %v, want the latched error", err2)
	}
}

// TestRunFailsOnSilentExhaustion covers sources without an Err method
// (the interface is optional): the machine still reports a useful error.
type silentDry struct{ drySource }

func (s *silentDry) Err() {} // shadows drySource.Err with a non-matching signature

func TestRunFailsOnSilentExhaustion(t *testing.T) {
	src := &silentDry{drySource{events: 50, addr: 0x400000}}
	m, err := New(DefaultParams(), src, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(1_000_000)
	if err == nil {
		t.Fatal("Run succeeded against a dry source")
	}
	if !strings.Contains(err.Error(), "ended after") {
		t.Fatalf("error %q does not describe the exhaustion point", err)
	}
}

// TestRunCompletesWithinFiniteSource: a source holding more events than
// the run needs behaves exactly like an unbounded one.
func TestRunCompletesWithinFiniteSource(t *testing.T) {
	m, err := New(DefaultParams(), &drySource{events: 10_000, addr: 0x400000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000); err != nil {
		t.Fatalf("Run failed despite sufficient events: %v", err)
	}
	if got := m.Stats().Instructions; got < 1_000 {
		t.Fatalf("ran %d instructions, want >= 1000", got)
	}
}
