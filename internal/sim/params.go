// Package sim is the timing simulator: a trace-driven, cycle-accounting
// model of the decoupled FDIP front-end and the instruction-side memory
// hierarchy of Table 1. It wires the execution engine's retired-event
// stream through a prediction cursor (BTB + direction + indirect + RAS),
// a fetch target queue that drives FDIP prefetching, the L1-I/L2/LLC
// hierarchy with MSHRs and an I-TLB, and an optional prefetcher under
// evaluation, producing the metrics every experiment in the paper reports.
package sim

import "hprefetch/internal/bpu"

// CycleScale is the number of scaled time units per CPU cycle. All
// internal times are in scaled units so fractional per-instruction fetch
// costs stay integral (48 is divisible by every fetch width up to 8).
const CycleScale = 48

// Params configures the simulated core and memory hierarchy. The zero
// value is not valid; start from DefaultParams.
type Params struct {
	// FetchWidth is the fetch/commit width in instructions per cycle.
	FetchWidth int
	// FTQEntries bounds how far the prediction cursor runs ahead of
	// fetch, in fetch regions (paper: 24).
	FTQEntries int
	// MispredictPenalty is the pipeline refill cost of a resolved
	// branch misprediction, in cycles.
	MispredictPenalty uint64
	// BTBMissPenalty is the front-end re-steer cost when a taken branch
	// was invisible to the BTB (discovered at decode), in cycles.
	BTBMissPenalty uint64
	// BaseCPI models the back-end: cycles per instruction added on top
	// of fetch throughput and front-end stalls, in 1/CycleScale units
	// per instruction (e.g. 24 = 0.5 CPI).
	BaseCPIUnits uint64
	// StallOverlap is the percentage (0-100) of instruction-miss stall
	// latency actually exposed; an out-of-order back-end hides a little
	// of the front-end bubble.
	StallOverlap int

	// BP configures the branch prediction unit.
	BP bpu.Config

	// L1ISets/L1IWays: the L1 instruction cache (paper: 32KB, 8-way).
	L1ISets, L1IWays int
	// L1ILatency is the L1-I hit latency in cycles (pipelined; charged
	// only as part of the fill path base).
	L1ILatency uint64
	// MSHRs bounds outstanding L1-I fills.
	MSHRs int
	// L2Sets/L2Ways: unified L2 (paper: 512KB, 8-way). Only the
	// instruction-side footprint occupies it here; the data side is
	// modelled as bandwidth, not occupancy.
	L2Sets, L2Ways int
	// L2Latency is the L2 hit latency in cycles.
	L2Latency uint64
	// LLCSets/LLCWays: shared last-level cache (paper: 2MB/core, 16-way).
	LLCSets, LLCWays int
	// LLCLatency is the LLC hit latency in cycles.
	LLCLatency uint64
	// MemLatency is the DRAM access latency in cycles.
	MemLatency uint64

	// ITLBEntries/ITLBWays size the instruction TLB.
	ITLBEntries, ITLBWays int
	// TLBWalkLatency is the page-walk cost in cycles on an I-TLB miss.
	TLBWalkLatency uint64

	// PrefetchPerCycle bounds prefetch issue bandwidth (requests per
	// cycle, shared by FDIP and the evaluated prefetcher).
	PrefetchPerCycle int
	// PFQueueEntries sizes the evaluated prefetcher's request queue
	// (requests wait here for free MSHRs instead of being dropped).
	PFQueueEntries int
	// PrefetchToL2 directs evaluated-prefetcher fills into the L2
	// instead of the L1-I (the §7.8 study).
	PrefetchToL2 bool
	// PerfectL1I makes every instruction fetch hit (the upper bound in
	// §7.1).
	PerfectL1I bool
	// DisableFDIP turns off FDIP prefetch issue (the FTQ still paces
	// the cursor); used for ablations.
	DisableFDIP bool
}

// DefaultParams mirrors Table 1: an Ice-Lake-like core at 4GHz with a
// 32KB L1-I, 512KB L2, 2MB LLC and FDIP with a 24-entry FTQ.
func DefaultParams() Params {
	return Params{
		FetchWidth:        4,
		FTQEntries:        24,
		MispredictPenalty: 17,
		BTBMissPenalty:    9,
		BaseCPIUnits:      22, // ~0.46 CPI back-end contribution
		StallOverlap:      80,
		BP:                bpu.DefaultConfig(),
		L1ISets:           64, // 64 sets x 8 ways x 64B = 32KB
		L1IWays:           8,
		L1ILatency:        2,
		MSHRs:             16,
		L2Sets:            1024, // 1024 x 8 x 64B = 512KB
		L2Ways:            8,
		L2Latency:         14,
		LLCSets:           2048, // 2048 x 16 x 64B = 2MB
		LLCWays:           16,
		LLCLatency:        50,
		MemLatency:        210,
		ITLBEntries:       512,
		ITLBWays:          4,
		TLBWalkLatency:    35,
		PrefetchPerCycle:  2,
		PFQueueEntries:    64,
	}
}

// L1ISizeKB returns the configured L1-I capacity in KB.
func (p *Params) L1ISizeKB() int { return p.L1ISets * p.L1IWays * 64 / 1024 }
