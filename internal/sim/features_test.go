package sim_test

import (
	"testing"

	"hprefetch/internal/cache"
	"hprefetch/internal/core"
	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch"
	"hprefetch/internal/sim"
)

func TestPrefetchToL2Mode(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	mk := func(m prefetch.Machine) prefetch.Prefetcher { return core.New(core.DefaultConfig(), m) }
	l1 := runScheme(t, 81, scheme{name: "HP", mk: mk}, nil)
	l2 := runScheme(t, 81, scheme{name: "HP", mk: mk}, func(p *sim.Params) { p.PrefetchToL2 = true })

	// In L2 mode the prefetcher cannot produce L1-I hits of its own...
	if l2.PFUseful > l1.PFUseful/10 {
		t.Errorf("L2-directed prefetching still yields %d L1 useful fills (L1 mode: %d)",
			l2.PFUseful, l1.PFUseful)
	}
	// ...but must cover plenty of L2-level misses.
	if l2.PFCoverageL2() <= 0.05 {
		t.Errorf("L2-directed coverage %.2f too low", l2.PFCoverageL2())
	}
	base := runScheme(t, 81, scheme{name: "FDIP"}, nil)
	if l2.IPC() <= base.IPC() {
		t.Errorf("L2-directed HP (%.3f) does not beat FDIP (%.3f)", l2.IPC(), base.IPC())
	}
}

func TestDisableFDIPAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	on := runScheme(t, 82, scheme{name: "FDIP"}, nil)
	off := runScheme(t, 82, scheme{name: "FDIP"}, func(p *sim.Params) { p.DisableFDIP = true })
	if off.FDIPIssued != 0 {
		t.Error("DisableFDIP still issued prefetches")
	}
	if off.IPC() >= on.IPC() {
		t.Errorf("disabling FDIP did not hurt: %.3f vs %.3f", off.IPC(), on.IPC())
	}
	// Without FDIP all misses are clean.
	if off.L1ILateHits != 0 {
		t.Error("late hits without any prefetching")
	}
	if off.L1IDemandMisses <= on.L1IDemandMisses {
		t.Error("clean misses did not increase without FDIP")
	}
}

func TestMetadataAccountingFlowsThroughStats(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	st := runScheme(t, 83, scheme{
		name: "HP",
		mk:   func(m prefetch.Machine) prefetch.Prefetcher { return core.New(core.DefaultConfig(), m) },
	}, nil)
	if st.MetaReads == 0 || st.MetaWrites == 0 {
		t.Errorf("metadata traffic missing: reads=%d writes=%d", st.MetaReads, st.MetaWrites)
	}
	if st.MetaReadBlocks == 0 || st.MetaWriteBlocks == 0 {
		t.Error("metadata block accounting missing")
	}
	// Bandwidth attribution: metadata must appear in the memory-block
	// ledger at least occasionally (cold segments miss the LLC).
	if st.MemBlocksMeta == 0 {
		t.Error("metadata never reached memory")
	}
}

func TestFTQSizeMonotonicityAtLowEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tiny := runScheme(t, 84, scheme{name: "FDIP"}, func(p *sim.Params) { p.FTQEntries = 2 })
	norm := runScheme(t, 84, scheme{name: "FDIP"}, nil)
	if tiny.IPC() >= norm.IPC() {
		t.Errorf("2-entry FTQ (%.3f) not worse than 24-entry (%.3f)", tiny.IPC(), norm.IPC())
	}
}

func TestMachinePrefetchAPI(t *testing.T) {
	m, err := sim.New(sim.DefaultParams(), newEngine(t, 85), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(50_000)
	if m.PrefetchSpace() <= 0 {
		t.Error("no prefetch space on an idle queue")
	}
	// Issue a prefetch for a far-away block: must be accepted once, then
	// be redundant.
	blk := isa.Block(0xDEAD00)
	if !m.Prefetch(blk) {
		t.Fatal("fresh prefetch rejected")
	}
	if m.Prefetch(blk) {
		t.Error("duplicate prefetch accepted")
	}
	if !m.Resident(blk) {
		t.Error("in-flight block not reported resident")
	}
	if _, ok := m.BlockAgo(10 * sim.CycleScale); !ok {
		t.Error("history empty after 50k instructions")
	}
	if m.AvgMissLatency() == 0 {
		t.Error("zero miss latency estimate")
	}
	// Metadata path sanity.
	ready := m.MetadataRead(0x7F00_0000_0000, 400)
	if ready < m.Now() {
		t.Error("metadata ready before now")
	}
	m.MetadataWrite(0x7F00_0000_0000, 400)
	if m.Stats().MetaWrites != 1 || m.Stats().MetaReads != 1 {
		t.Error("metadata ops not counted")
	}
	_ = cache.OriginPF
}
