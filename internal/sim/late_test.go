package sim

import (
	"testing"

	"hprefetch/internal/isa"
)

// TestLatePrefetchCountsLatePF forces the late-prefetch path: a demand
// access hits a block whose evaluated-prefetcher fill is still in
// flight. This must surface in LatePF — and therefore in
// PFLateFraction and the PFCoverageL1 denominator — the metric that was
// silently zero while the dead PFLate field absorbed nothing.
func TestLatePrefetchCountsLatePF(t *testing.T) {
	m, err := New(DefaultParams(), testEngine(t, 66), nil)
	if err != nil {
		t.Fatal(err)
	}
	blk := isa.Block(0x1234)
	if !m.Prefetch(blk) {
		t.Fatal("prefetch rejected on an empty machine")
	}
	e, ok := m.mshr.Lookup(blk)
	if !ok {
		t.Fatal("prefetch allocated no in-flight fill")
	}
	if e.FillAt <= m.now {
		t.Fatalf("fill completes instantly (FillAt=%d now=%d); cannot be late", e.FillAt, m.now)
	}

	m.demandAccess(blk)

	st := m.Stats()
	if st.LatePF != 1 {
		t.Fatalf("LatePF = %d after demand hit an in-flight PF fill, want 1", st.LatePF)
	}
	if st.L1ILateHits != 1 {
		t.Errorf("L1ILateHits = %d, want 1", st.L1ILateHits)
	}
	if got := st.PFLateFraction(); got != 1.0 {
		t.Errorf("PFLateFraction() = %v, want 1.0 (the only prefetch was late)", got)
	}
	if got := st.PFCoverageL1(); got != 0 {
		t.Errorf("PFCoverageL1() = %v; a late prefetch is not full coverage", got)
	}
	if st.LatePFStallSum == 0 {
		t.Error("late prefetch charged no residual stall")
	}
	if st.LatePFByLevel[e.Level] != 1 {
		t.Errorf("LatePFByLevel[%d] = %d, want 1", e.Level, st.LatePFByLevel[e.Level])
	}

	// The line was installed; its first (late) use must not also count
	// as fully useful.
	if st.PFUseful != 0 {
		t.Errorf("PFUseful = %d for a late-only prefetch, want 0", st.PFUseful)
	}
	if !m.l1i.Contains(uint64(blk)) {
		t.Error("late fill never installed into the L1-I")
	}
}
