package sim_test

// Determinism tests: the paper's per-prefetch usefulness metrics only
// mean something if two runs of the same trace agree on every counter,
// not just IPC. These tests build everything fresh twice — engine,
// machine, prefetcher — exactly as two separate processes would, and
// require the *full* Stats to match bit for bit.

import (
	"reflect"
	"strings"
	"testing"

	"hprefetch/internal/prefetch"
	"hprefetch/internal/sim"
)

// runFresh performs a short warm+measure run on a newly built stack.
func runFresh(t *testing.T, seed uint64, s scheme) *sim.Stats {
	t.Helper()
	m, err := sim.New(sim.DefaultParams(), newEngine(t, seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	var pf prefetch.Prefetcher
	if s.mk != nil {
		pf = s.mk(m)
	}
	if pf != nil {
		m.SetPrefetcher(pf)
	}
	if err := m.Run(600_000); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	if err := m.Run(1_200_000); err != nil {
		t.Fatal(err)
	}
	return m.Stats()
}

func TestFullStatsDeterministicAcrossFreshMachines(t *testing.T) {
	for _, s := range schemes() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			a := runFresh(t, 91, s)
			b := runFresh(t, 91, s)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("full Stats diverged between identical fresh runs:\n--- run A\n%s--- run B\n%s",
					a.Canonical(), b.Canonical())
			}
			if da, db := a.Digest(), b.Digest(); da != db {
				t.Errorf("digests diverged: %s vs %s", da, db)
			}
		})
	}
}

func TestDigestReflectsEveryCounter(t *testing.T) {
	a, b := sim.NewStats(), sim.NewStats()
	if a.Digest() != b.Digest() {
		t.Fatal("identical zero stats produced different digests")
	}
	b.PFUseless++
	if a.Digest() == b.Digest() {
		t.Error("digest blind to a counter change")
	}
	b.PFUseless--
	b.PFDistHist[3]++
	if a.Digest() == b.Digest() {
		t.Error("digest blind to a histogram change")
	}
	// The canonical form names every field, so a digest mismatch can be
	// diffed down to the counter that moved.
	typ := reflect.TypeOf(sim.Stats{})
	canon := a.Canonical()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if !fieldNamed(canon, name) {
			t.Errorf("canonical form missing field %s", name)
		}
	}
}

// fieldNamed reports whether the canonical form has a "name=" line.
func fieldNamed(canon, name string) bool {
	return strings.HasPrefix(canon, name+"=") || strings.Contains(canon, "\n"+name+"=")
}
