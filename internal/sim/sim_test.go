package sim

import (
	"testing"

	"hprefetch/internal/linker"
	"hprefetch/internal/loader"
	"hprefetch/internal/program"
	"hprefetch/internal/trace"
)

func testEngine(t testing.TB, seed uint64) *trace.Engine {
	t.Helper()
	cfg := program.DefaultConfig()
	cfg.Name = "sim-test"
	cfg.Seed = seed
	cfg.OrphanFuncs = 100
	p, err := program.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := linker.Link(p, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return trace.New(loader.LoadLinked(p, l.Image), 1)
}

func TestBaselineRunSanity(t *testing.T) {
	m, err := New(DefaultParams(), testEngine(t, 61), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2_000_000)
	m.ResetStats()
	m.Run(1_000_000)
	st := m.Stats()

	if st.Instructions < 1_000_000 {
		t.Fatalf("ran %d instructions", st.Instructions)
	}
	ipc := st.IPC()
	if ipc < 0.3 || ipc > 4.0 {
		t.Errorf("baseline IPC %.3f outside sane range", ipc)
	}
	mpki := st.MPKI()
	if mpki > 25 {
		t.Errorf("branch MPKI %.2f absurdly high", mpki)
	}
	if mpki == 0 {
		t.Error("no branch mispredictions at all; predictor unrealistically perfect")
	}
	l1mpki := st.L1IMPKI()
	if l1mpki == 0 {
		t.Error("no L1-I misses; working set fits or caches broken")
	}
	if l1mpki > 120 {
		t.Errorf("L1-I MPKI %.1f absurd", l1mpki)
	}
	if st.FDIPIssued == 0 || st.FDIPUseful == 0 {
		t.Error("FDIP never issued or never helped")
	}
	t.Logf("baseline: IPC=%.3f brMPKI=%.2f L1I-MPKI=%.2f BTBredir/KI=%.2f fdipIssued=%d useful=%d late=%d served L2/LLC/mem=%d/%d/%d",
		ipc, mpki, l1mpki,
		float64(st.BTBMissRedirects)*1000/float64(st.Instructions),
		st.FDIPIssued, st.FDIPUseful, st.LateFDIP,
		st.ServedL2, st.ServedLLC, st.ServedMem)
}

func TestPerfectL1IBeatsBaseline(t *testing.T) {
	base, err := New(DefaultParams(), testEngine(t, 62), nil)
	if err != nil {
		t.Fatal(err)
	}
	base.Run(2_000_000)
	base.ResetStats()
	base.Run(2_000_000)

	prm := DefaultParams()
	prm.PerfectL1I = true
	perf, err := New(prm, testEngine(t, 62), nil)
	if err != nil {
		t.Fatal(err)
	}
	perf.Run(2_000_000)
	perf.ResetStats()
	perf.Run(2_000_000)

	bi, pi := base.Stats().IPC(), perf.Stats().IPC()
	if pi <= bi {
		t.Errorf("perfect L1-I IPC %.3f not above baseline %.3f", pi, bi)
	}
	gain := pi/bi - 1
	t.Logf("perfect-L1I gain over FDIP: %.1f%% (base %.3f perfect %.3f)", gain*100, bi, pi)
	if gain < 0.02 {
		t.Errorf("perfect-L1I gain %.3f too small: front-end not a bottleneck", gain)
	}
	if gain > 0.8 {
		t.Errorf("perfect-L1I gain %.3f too large: front-end dominates absurdly", gain)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := New(DefaultParams(), testEngine(t, 63), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(DefaultParams(), testEngine(t, 63), nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(300_000)
	b.Run(300_000)
	sa, sb := a.Stats(), b.Stats()
	if sa.ScaledCycles != sb.ScaledCycles || sa.Instructions != sb.Instructions ||
		sa.L1IDemandMisses != sb.L1IDemandMisses || sa.CondMispredicts != sb.CondMispredicts {
		t.Error("identical configurations diverged")
	}
}

func TestInfiniteBTBImprovesBaseline(t *testing.T) {
	base, err := New(DefaultParams(), testEngine(t, 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	base.Run(2_500_000)
	base.ResetStats()
	base.Run(2_000_000)

	prm := DefaultParams()
	prm.BP.BTBInfinite = true
	inf, err := New(prm, testEngine(t, 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	inf.Run(2_500_000)
	inf.ResetStats()
	inf.Run(2_000_000)

	if inf.Stats().BTBMissRedirects >= base.Stats().BTBMissRedirects {
		t.Errorf("infinite BTB redirects %d not below finite %d",
			inf.Stats().BTBMissRedirects, base.Stats().BTBMissRedirects)
	}
	bi, ii := base.Stats().IPC(), inf.Stats().IPC()
	t.Logf("finite BTB IPC %.3f, infinite %.3f (+%.1f%%), redirects/KI %.2f -> %.2f",
		bi, ii, (ii/bi-1)*100,
		float64(base.Stats().BTBMissRedirects)*1000/float64(base.Stats().Instructions),
		float64(inf.Stats().BTBMissRedirects)*1000/float64(inf.Stats().Instructions))
	if ii <= bi {
		t.Error("infinite BTB did not improve IPC; BTB pressure missing")
	}
}

func TestStatsAccessors(t *testing.T) {
	s := NewStats()
	if s.IPC() != 0 || s.PFAccuracy() != 0 || s.PFCoverageL1() != 0 ||
		s.PFLateFraction() != 0 || s.PFAvgDistance() != 0 || s.MPKI() != 0 {
		t.Error("zero stats must yield zero metrics, not NaN")
	}
	s.Instructions = 1000
	s.ScaledCycles = 1000 * CycleScale
	if got := s.IPC(); got != 1.0 {
		t.Errorf("IPC = %v", got)
	}
	s.PFIssued = 10
	s.PFUseful = 5
	if got := s.PFAccuracy(); got != 0.5 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestBadParams(t *testing.T) {
	eng := testEngine(t, 65)
	bad := DefaultParams()
	bad.FetchWidth = 5 // does not divide CycleScale=48? 48/5 no
	if _, err := New(bad, eng, nil); err == nil {
		t.Error("non-dividing fetch width accepted")
	}
	bad = DefaultParams()
	bad.FTQEntries = 0
	if _, err := New(bad, eng, nil); err == nil {
		t.Error("zero FTQ accepted")
	}
}
