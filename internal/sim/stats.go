package sim

// DistanceBuckets are the prefetch-distance histogram bucket upper bounds
// (in cache blocks), matching the Figure 2c analysis.
var DistanceBuckets = []uint64{2, 4, 8, 16, 32, 64, 128, 256, 1 << 62}

// ReqStallBuckets are the per-request fetch-stall histogram bucket upper
// bounds, in cycles: a power-of-two ladder from stall-free requests up
// through the deep tail, with a catch-all final bucket. A request lands
// in the first bucket whose bound is >= its total fetch stall.
var ReqStallBuckets = []uint64{
	0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
	8192, 16384, 32768, 65536, 131072, 262144, 524288, 1 << 62,
}

// Stats aggregates everything a run measures. All times are in scaled
// units (CycleScale per cycle) unless the accessor converts.
type Stats struct {
	// Instructions and ScaledCycles drive the IPC metric.
	Instructions uint64
	ScaledCycles uint64
	// Requests counts completed request-loop iterations.
	Requests uint64

	// Front-end redirects.
	CondMispredicts     uint64
	IndirectMispredicts uint64
	RASMispredicts      uint64
	BTBMissRedirects    uint64
	Branches            uint64

	// Demand instruction-fetch outcomes at the L1-I.
	L1IDemandHits   uint64
	L1IDemandMisses uint64 // clean misses (no prefetch in flight)
	L1ILateHits     uint64 // demand hit an in-flight fill (by origin below)

	// Where clean demand misses were served, with latency sums (scaled).
	ServedL2, ServedLLC, ServedMem             uint64
	LatencyL2Sum, LatencyLLCSum, LatencyMemSum uint64
	LateFDIP, LatePF                           uint64
	LateFDIPStallSum, LatePFStallSum           uint64
	LateFDIPByLevel, LatePFByLevel             [5]uint64
	StallScaled                                uint64 // total fetch stall (post-overlap)
	TLBMisses, TLBHits                         uint64

	// FDIP prefetch accounting.
	FDIPIssued, FDIPUseful, FDIPUseless uint64

	// Evaluated-prefetcher accounting. Late prefetches (a demand access
	// arriving while the PF fill is still in flight) are counted once,
	// in LatePF above, which the accessors below share.
	PFIssued     uint64 // requests that allocated an MSHR/fill
	PFRedundant  uint64 // dropped: already resident or in flight
	PFDropped    uint64 // dropped: MSHR pressure
	PFUseful     uint64 // first demand hit on a PF line (L1-I)
	PFUseless    uint64 // PF line evicted unused
	PFDistSum    uint64 // sum of distances (blocks) at first use
	PFDistCount  uint64
	PFDistHist   []uint64 // per DistanceBuckets: uses at that distance
	PFDistUseful []uint64 // useful at that distance
	PFTLBMiss    uint64   // issued PF whose page missed the ITLB at issue
	PFTLBDropped uint64   // PF withheld by a TLB-aware scheme (no translation)

	// Coverage bookkeeping at the L2 (long-range view).
	L2CoveredByPF uint64 // demand L2 hits on PF-installed lines
	L2Beyond      uint64 // demand misses that went past the L2

	// Fault-injection accounting (zero when no injector is attached).
	FaultPFDrops       uint64 // prefetch issues lost at the machine boundary
	FaultPFDelays      uint64 // prefetch fills given extra latency
	FaultJitteredFills uint64 // LLC/memory fills with jittered latency
	FaultMSHRBlocks    uint64 // allocations blocked by injected starvation
	FaultTagFlips      uint64 // retired events with an inverted Bundle tag

	// Bandwidth in blocks transferred from memory.
	MemBlocksDemand uint64
	MemBlocksFDIP   uint64
	MemBlocksPF     uint64
	MemBlocksMeta   uint64
	MetaReads       uint64
	MetaWrites      uint64
	MetaReadBlocks  uint64
	MetaWriteBlocks uint64

	// Per-request fetch-stall attribution, filled only when the event
	// source implements RequestMarker. A request's stall is every scaled
	// unit its demand accesses added to StallScaled between its first
	// and last event; the histogram (per ReqStallBuckets, in cycles) is
	// what the tail percentiles read.
	ReqCompleted uint64
	ReqStallSum  uint64 // scaled units over completed requests
	ReqStallMax  uint64 // scaled units, worst completed request
	ReqStallHist []uint64
}

// NewStats returns a Stats with histogram storage allocated.
func NewStats() *Stats {
	return &Stats{
		PFDistHist:   make([]uint64, len(DistanceBuckets)),
		PFDistUseful: make([]uint64, len(DistanceBuckets)),
		ReqStallHist: make([]uint64, len(ReqStallBuckets)),
	}
}

// AddFrom accumulates o into s field by field: counters and latency
// sums add, histograms add element-wise, and ReqStallMax takes the
// maximum. Interval sampling folds each measured interval's statistics
// into one aggregate with it.
func (s *Stats) AddFrom(o *Stats) {
	s.Instructions += o.Instructions
	s.ScaledCycles += o.ScaledCycles
	s.Requests += o.Requests
	s.CondMispredicts += o.CondMispredicts
	s.IndirectMispredicts += o.IndirectMispredicts
	s.RASMispredicts += o.RASMispredicts
	s.BTBMissRedirects += o.BTBMissRedirects
	s.Branches += o.Branches
	s.L1IDemandHits += o.L1IDemandHits
	s.L1IDemandMisses += o.L1IDemandMisses
	s.L1ILateHits += o.L1ILateHits
	s.ServedL2 += o.ServedL2
	s.ServedLLC += o.ServedLLC
	s.ServedMem += o.ServedMem
	s.LatencyL2Sum += o.LatencyL2Sum
	s.LatencyLLCSum += o.LatencyLLCSum
	s.LatencyMemSum += o.LatencyMemSum
	s.LateFDIP += o.LateFDIP
	s.LatePF += o.LatePF
	s.LateFDIPStallSum += o.LateFDIPStallSum
	s.LatePFStallSum += o.LatePFStallSum
	for i := range s.LateFDIPByLevel {
		s.LateFDIPByLevel[i] += o.LateFDIPByLevel[i]
		s.LatePFByLevel[i] += o.LatePFByLevel[i]
	}
	s.StallScaled += o.StallScaled
	s.TLBMisses += o.TLBMisses
	s.TLBHits += o.TLBHits
	s.FDIPIssued += o.FDIPIssued
	s.FDIPUseful += o.FDIPUseful
	s.FDIPUseless += o.FDIPUseless
	s.PFIssued += o.PFIssued
	s.PFRedundant += o.PFRedundant
	s.PFDropped += o.PFDropped
	s.PFUseful += o.PFUseful
	s.PFUseless += o.PFUseless
	s.PFDistSum += o.PFDistSum
	s.PFDistCount += o.PFDistCount
	for i := range s.PFDistHist {
		if i < len(o.PFDistHist) {
			s.PFDistHist[i] += o.PFDistHist[i]
			s.PFDistUseful[i] += o.PFDistUseful[i]
		}
	}
	s.PFTLBMiss += o.PFTLBMiss
	s.PFTLBDropped += o.PFTLBDropped
	s.L2CoveredByPF += o.L2CoveredByPF
	s.L2Beyond += o.L2Beyond
	s.FaultPFDrops += o.FaultPFDrops
	s.FaultPFDelays += o.FaultPFDelays
	s.FaultJitteredFills += o.FaultJitteredFills
	s.FaultMSHRBlocks += o.FaultMSHRBlocks
	s.FaultTagFlips += o.FaultTagFlips
	s.MemBlocksDemand += o.MemBlocksDemand
	s.MemBlocksFDIP += o.MemBlocksFDIP
	s.MemBlocksPF += o.MemBlocksPF
	s.MemBlocksMeta += o.MemBlocksMeta
	s.MetaReads += o.MetaReads
	s.MetaWrites += o.MetaWrites
	s.MetaReadBlocks += o.MetaReadBlocks
	s.MetaWriteBlocks += o.MetaWriteBlocks
	s.ReqCompleted += o.ReqCompleted
	s.ReqStallSum += o.ReqStallSum
	if o.ReqStallMax > s.ReqStallMax {
		s.ReqStallMax = o.ReqStallMax
	}
	for i := range s.ReqStallHist {
		if i < len(o.ReqStallHist) {
			s.ReqStallHist[i] += o.ReqStallHist[i]
		}
	}
}

// Cycles returns elapsed cycles.
func (s *Stats) Cycles() float64 { return float64(s.ScaledCycles) / CycleScale }

// IPC returns instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.ScaledCycles == 0 {
		return 0
	}
	return float64(s.Instructions) * CycleScale / float64(s.ScaledCycles)
}

// MPKI returns branch mispredictions per kilo-instruction.
func (s *Stats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	mis := s.CondMispredicts + s.IndirectMispredicts + s.RASMispredicts
	return float64(mis) * 1000 / float64(s.Instructions)
}

// L1IMPKI returns clean demand misses per kilo-instruction.
func (s *Stats) L1IMPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.L1IDemandMisses) * 1000 / float64(s.Instructions)
}

// PFAccuracy returns useful / issued for the evaluated prefetcher,
// counting late prefetches as issued-but-not-fully-useful, matching the
// paper's "prefetches that yield an L1-I hit for a demand fetch".
func (s *Stats) PFAccuracy() float64 {
	if s.PFIssued == 0 {
		return 0
	}
	return float64(s.PFUseful) / float64(s.PFIssued)
}

// PFCoverageL1 returns the fraction of would-be L1-I misses (beyond what
// FDIP already covers) eliminated by the evaluated prefetcher.
func (s *Stats) PFCoverageL1() float64 {
	den := s.PFUseful + s.LatePF + s.L1IDemandMisses
	if den == 0 {
		return 0
	}
	return float64(s.PFUseful) / float64(den)
}

// PFCoverageL2 returns the fraction of L2-level instruction misses
// eliminated by prefetcher-installed L2 lines.
func (s *Stats) PFCoverageL2() float64 {
	den := s.L2CoveredByPF + s.L2Beyond
	if den == 0 {
		return 0
	}
	return float64(s.L2CoveredByPF) / float64(den)
}

// PFLateFraction returns the share of useful+late prefetches that were
// late (Figure 10).
func (s *Stats) PFLateFraction() float64 {
	den := s.PFUseful + s.LatePF
	if den == 0 {
		return 0
	}
	return float64(s.LatePF) / float64(den)
}

// PFTLBMissFraction returns the share of issued prefetches whose target
// page was absent from the ITLB at issue — translation-blocked prefetches
// (Jamet et al.), a failure class distinct from ordinary uselessness.
func (s *Stats) PFTLBMissFraction() float64 {
	if s.PFIssued == 0 {
		return 0
	}
	return float64(s.PFTLBMiss) / float64(s.PFIssued)
}

// PFAvgDistance returns the mean prefetch distance in blocks at first use.
func (s *Stats) PFAvgDistance() float64 {
	if s.PFDistCount == 0 {
		return 0
	}
	return float64(s.PFDistSum) / float64(s.PFDistCount)
}

// AvgMissLatencyCycles returns the average latency paid by clean demand
// misses, in cycles.
func (s *Stats) AvgMissLatencyCycles() float64 {
	n := s.ServedL2 + s.ServedLLC + s.ServedMem
	if n == 0 {
		return 0
	}
	sum := s.LatencyL2Sum + s.LatencyLLCSum + s.LatencyMemSum
	return float64(sum) / float64(n) / CycleScale
}

// TotalMissLatencyCycles returns the total stall attributable to
// instruction misses (clean miss latency plus late-fill residuals), in
// cycles — the quantity Figure 11 compares.
func (s *Stats) TotalMissLatencyCycles() float64 {
	sum := s.LatencyL2Sum + s.LatencyLLCSum + s.LatencyMemSum +
		s.LateFDIPStallSum + s.LatePFStallSum
	return float64(sum) / CycleScale
}

// MemBlocksTotal returns all blocks fetched from memory.
func (s *Stats) MemBlocksTotal() uint64 {
	return s.MemBlocksDemand + s.MemBlocksFDIP + s.MemBlocksPF + s.MemBlocksMeta
}

// ReqStallMeanCycles returns the mean fetch stall per completed request,
// in cycles.
func (s *Stats) ReqStallMeanCycles() float64 {
	if s.ReqCompleted == 0 {
		return 0
	}
	return float64(s.ReqStallSum) / float64(s.ReqCompleted) / CycleScale
}

// ReqStallPercentileCycles returns the q-th percentile (q in [0,1]) of
// the per-request fetch-stall distribution, in cycles, interpolated
// linearly within the histogram bucket holding that rank. Display only:
// digests pin the integer histogram, not this derived value.
func (s *Stats) ReqStallPercentileCycles(q float64) float64 {
	if s.ReqCompleted == 0 || len(s.ReqStallHist) == 0 {
		return 0
	}
	// Clamp the rank into [0,1]; a NaN q (a caller's 0/0) reads as 0.
	if q != q || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.ReqCompleted)
	var cum uint64
	for i, n := range s.ReqStallHist {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := float64(0)
			if i > 0 && i-1 < len(ReqStallBuckets) {
				lo = float64(ReqStallBuckets[i-1])
			}
			var hi float64
			if i == len(s.ReqStallHist)-1 || i >= len(ReqStallBuckets) {
				// Catch-all (or out-of-spec trailing) bucket: the worst
				// observed request bounds it. A single-bucket histogram
				// lands here too and interpolates from 0 to that bound.
				hi = float64(s.ReqStallMax) / CycleScale
				if hi < lo {
					hi = lo
				}
			} else {
				hi = float64(ReqStallBuckets[i])
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return float64(s.ReqStallMax) / CycleScale
}
