package sim_test

import (
	"testing"

	"hprefetch/internal/core"
	"hprefetch/internal/prefetch"
)

func TestHPDiagnostics(t *testing.T) {
	var hp *core.Hier
	st := runScheme(t, 71, scheme{
		name: "HP",
		mk: func(m prefetch.Machine) prefetch.Prefetcher {
			hp = core.New(core.DefaultConfig(), m)
			return hp
		},
	}, nil)
	c := hp.Counters
	t.Logf("boundaries=%d matHits=%d replayEnds=%d chainBroken=%d segsLoaded=%d prefIssued=%d paceStalls=%d",
		c.Boundaries, c.MATHits, c.ReplayEnds, c.ChainBroken, c.SegsLoaded, c.PrefIssued, c.PaceStalls)
	if c.LeadCount > 0 {
		t.Logf("avg replay lead at segment advance: %d instr over %d advances", c.LeadSum/c.LeadCount, c.LeadCount)
	}
	t.Logf("PF: issued=%d redundant=%d dropped=%d useful=%d late=%d useless=%d dist=%.1f",
		st.PFIssued, st.PFRedundant, st.PFDropped, st.PFUseful, st.LatePF, st.PFUseless, st.PFAvgDistance())
	t.Logf("demand: hits=%d misses=%d lateHits=%d | fdip issued=%d useful=%d late=%d",
		st.L1IDemandHits, st.L1IDemandMisses, st.L1ILateHits, st.FDIPIssued, st.FDIPUseful, st.LateFDIP)
	t.Logf("dist hist (buckets 2,4,8,16,32,64,128,256,inf): %v", st.PFDistHist)
	t.Logf("stall sums (cycles): fdipLate=%d pfLate=%d L2=%d LLC=%d mem=%d",
		st.LateFDIPStallSum/48, st.LatePFStallSum/48, st.LatencyL2Sum/48, st.LatencyLLCSum/48, st.LatencyMemSum/48)
}
