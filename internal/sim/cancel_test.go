package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunContextCancel verifies cooperative cancellation: a cancelled
// context stops Run with ctx.Err() long before the instruction target,
// and the machine stays usable afterwards.
func TestRunContextCancel(t *testing.T) {
	m, err := New(DefaultParams(), testEngine(t, 71), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.SetContext(ctx)
	if err := m.Run(100_000_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under cancelled context returned %v", err)
	}
	if got := m.Stats().Instructions; got >= 100_000_000 {
		t.Fatalf("cancelled run still retired %d instructions", got)
	}
	// Detach and continue: the simulation itself is not poisoned.
	m.SetContext(nil)
	before := m.Stats().Instructions
	if err := m.Run(50_000); err != nil {
		t.Fatalf("Run after detach: %v", err)
	}
	if m.Stats().Instructions < before+50_000 {
		t.Fatal("machine did not resume after cancellation")
	}
}

// TestRunContextDeadline verifies a deadline interrupts a run mid-flight
// instead of hanging until the instruction target is met.
func TestRunContextDeadline(t *testing.T) {
	m, err := New(DefaultParams(), testEngine(t, 72), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	m.SetContext(ctx)
	start := time.Now()
	err = m.Run(5_000_000_000) // far beyond what 30ms can simulate
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run under expired deadline returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, not cooperative", elapsed)
	}
}
