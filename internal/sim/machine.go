package sim

import (
	"context"
	"errors"
	"fmt"

	"hprefetch/internal/bpu"
	"hprefetch/internal/cache"
	"hprefetch/internal/fault"
	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch"
)

// blockKind classifies why the prediction cursor stopped.
type blockKind uint8

const (
	notBlocked blockKind = iota
	blockMispredict
	blockBTBMiss
	blockIndirect
	blockRAS
)

// historyLen sizes the retired-block history used for latency-aware
// trigger selection (EIP's training input).
const historyLen = 512

// pfReq is a queued evaluated-prefetcher request.
type pfReq struct {
	block isa.Block
	seq   uint64 // blockSeq at request (trigger) time
}

// Machine is one simulated core: execution engine, decoupled front-end,
// instruction-side memory hierarchy, and an optional prefetcher under
// evaluation.
type Machine struct {
	prm Params
	eng EventSource
	bp  *bpu.Unit
	pf  prefetch.Prefetcher
	st  *Stats

	// inj is the optional fault injector perturbing prefetch issue,
	// fill latency and MSHR availability; nil injects nothing.
	inj *fault.Injector
	// err latches the first internal failure (e.g. MSHR bookkeeping
	// drift); Run stops and returns it instead of panicking.
	err error
	// ctx, when non-nil, is polled every ctxCheckInterval retired events;
	// cancellation or deadline expiry stops Run cleanly with the
	// context's error. Statistics up to the stop stay valid.
	ctx context.Context

	specHist, archHist bpu.History
	specRAS, archRAS   *bpu.RAS
	specSynced         bool

	l1i, l2, llc, itlb *cache.Table
	mshr               *cache.MSHRFile

	// Two clocks: `now` is the front-end clock (fetch throughput plus
	// exposed front-end stalls) — it times prefetch issue, fills and
	// demand accesses, so FDIP's lookahead is bounded by real fetch
	// time, not by back-end execution. `backendExtra` accumulates the
	// back-end's base CPI contribution; total runtime for IPC is the
	// sum (a serialised first-order model of a front-end-bound core).
	now          uint64 // scaled front-end cycles
	backendExtra uint64
	statsBase    uint64 // total time at the last ResetStats
	cursorClock  uint64 // prediction bandwidth: 1 fetch region per cycle
	blockSeq     uint64
	lastBlock    isa.Block
	haveLast     bool
	nextPFSlot   uint64
	missLatEst   uint64

	// Lookahead ring: ring[head..head+count) are events pulled from the
	// engine but not yet fetched. The first predOff of them are in the
	// FTQ (the cursor has passed them).
	ring    []isa.BlockEvent
	head    int
	count   int
	predOff int
	blocked blockKind

	// Per-request stall attribution (active when the source implements
	// RequestMarker). ringReq/ringDone shadow the lookahead ring with the
	// marks sampled as each event was pulled; curReq/curDone are the
	// marks of the event currently being fetched; reqStall accumulates
	// each in-flight request's exposed fetch stall. The map deliberately
	// survives ResetStats so a request spanning the warmup/measure
	// boundary completes with its full stall.
	marker   RequestMarker
	ringReq  []uint64
	ringDone []bool
	curReq   uint64
	curDone  bool
	reqStall map[uint64]uint64

	// srcErr is the source's optional Err method, resolved once at
	// construction so the run loop's exhaustion path never type-asserts.
	srcErr func() error

	// Batch fast path (source implements BatchSource): the lookahead
	// window indexes the decoded arrays directly — bpos is the fetch
	// cursor, bpos+predOff the prediction cursor, and bpull the pull
	// high-water (how many events the interface path would have pulled
	// into its ring), sampled at Run boundaries for Requests parity.
	bsrc    BatchSource
	bev     []isa.BlockEvent
	breq    []uint64
	bdone   []bool
	bpos    int
	bpull   int
	scratch isa.BlockEvent // fault-injection copy, so flips never touch bev

	// Evaluated-prefetcher request queue: requests park here when the
	// MSHR file is full and drain as fills complete. Each remembers the
	// block sequence at request time (the paper measures prefetch
	// distance from the trigger, not from eventual issue).
	pfQueue []pfReq

	// LateHook, when set, is called on every late demand fill with the
	// block, the origin of the in-flight request, and the serving
	// level. It exists for diagnostics and tests only.
	LateHook func(blk isa.Block, origin cache.Origin, level uint8)

	// Retired-block history ring (monotonic times).
	histBlocks []isa.Block
	histTimes  []uint64
	histLen    int
	histHead   int
}

// New builds a machine over any event source — the live engine, a
// trace-file reader, or a recorder teeing one to disk. pf may be nil
// (FDIP-only baseline).
func New(prm Params, eng EventSource, pf prefetch.Prefetcher) (*Machine, error) {
	if prm.FetchWidth <= 0 || CycleScale%prm.FetchWidth != 0 {
		return nil, fmt.Errorf("sim: fetch width %d must divide %d", prm.FetchWidth, CycleScale)
	}
	if prm.FTQEntries <= 0 {
		return nil, fmt.Errorf("sim: FTQ must have at least one entry")
	}
	if prm.PrefetchPerCycle <= 0 {
		return nil, fmt.Errorf("sim: prefetch bandwidth must be positive")
	}
	if prm.MSHRs <= 0 {
		return nil, fmt.Errorf("sim: MSHR file must have at least one entry")
	}
	if prm.ITLBWays <= 0 || prm.ITLBEntries%prm.ITLBWays != 0 {
		return nil, fmt.Errorf("sim: ITLB %d entries not divisible into %d ways", prm.ITLBEntries, prm.ITLBWays)
	}
	l1i, err := cache.New(cache.Config{Name: "L1I", Sets: prm.L1ISets, Ways: prm.L1IWays})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	l2, err := cache.New(cache.Config{Name: "L2", Sets: prm.L2Sets, Ways: prm.L2Ways})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	llc, err := cache.New(cache.Config{Name: "LLC", Sets: prm.LLCSets, Ways: prm.LLCWays})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	itlb, err := cache.New(cache.Config{Name: "ITLB", Sets: prm.ITLBEntries / prm.ITLBWays, Ways: prm.ITLBWays})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	m := &Machine{
		prm:        prm,
		eng:        eng,
		bp:         bpu.New(prm.BP),
		pf:         pf,
		st:         NewStats(),
		specRAS:    bpu.NewRAS(prm.BP.RASDepth),
		archRAS:    bpu.NewRAS(prm.BP.RASDepth),
		l1i:        l1i,
		l2:         l2,
		llc:        llc,
		itlb:       itlb,
		mshr:       cache.NewMSHRFile(prm.MSHRs),
		missLatEst: prm.LLCLatency * CycleScale,
		ring:       make([]isa.BlockEvent, prm.FTQEntries+2),
		histBlocks: make([]isa.Block, historyLen),
		histTimes:  make([]uint64, historyLen),
	}
	if rm, ok := eng.(RequestMarker); ok {
		m.marker = rm
		m.ringReq = make([]uint64, len(m.ring))
		m.ringDone = make([]bool, len(m.ring))
		m.reqStall = make(map[uint64]uint64)
	}
	if es, ok := eng.(interface{ Err() error }); ok {
		m.srcErr = es.Err
	}
	if bs, ok := eng.(BatchSource); ok {
		m.bsrc = bs
		m.bev, m.breq, m.bdone = bs.Batch()
	}
	return m, nil
}

// Stats returns the current statistics.
func (m *Machine) Stats() *Stats { return m.st }

// SetPrefetcher attaches the prefetcher under evaluation. Prefetchers
// need the machine at construction time, so the usual sequence is
// New(prm, eng, nil) followed by SetPrefetcher.
func (m *Machine) SetPrefetcher(pf prefetch.Prefetcher) { m.pf = pf }

// SetFaults attaches a fault injector (nil detaches). The injector is
// deliberately kept out of Params so machine configuration stays a
// plain comparable value.
func (m *Machine) SetFaults(inj *fault.Injector) { m.inj = inj }

// Err returns the first internal failure latched by the machine, if
// any. Run also returns it.
func (m *Machine) Err() error { return m.err }

// ctxCheckInterval is how many fetch iterations pass between context
// polls during Run. Checking every iteration would put an atomic load on
// the simulator's hottest loop; at ~10M simulated instructions/second a
// few thousand iterations keeps cancellation latency well under a
// millisecond.
const ctxCheckInterval = 4096

// SetContext attaches a context to the machine. Run polls it
// periodically and stops with ctx.Err() once it is cancelled or its
// deadline passes (nil detaches, the default). The machine itself stays
// valid — only the caller's patience ran out, not the simulation.
func (m *Machine) SetContext(ctx context.Context) { m.ctx = ctx }

// fail latches the first internal error; Run surfaces it.
func (m *Machine) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

// Params returns the machine configuration.
func (m *Machine) Params() Params { return m.prm }

// ResetStats discards statistics while keeping all warmed-up state
// (caches, predictors, prefetcher metadata) — the paper's warmup/measure
// protocol.
func (m *Machine) ResetStats() {
	m.st = NewStats()
	m.statsBase = m.now + m.backendExtra
	m.l1i.Hits, m.l1i.Misses = 0, 0
	m.l2.Hits, m.l2.Misses = 0, 0
	m.llc.Hits, m.llc.Misses = 0, 0
	m.itlb.Hits, m.itlb.Misses = 0, 0
}

// Run simulates until at least n more instructions have retired. It
// stops early and reports the failure if the machine's internal
// bookkeeping ever breaks (statistics up to that point stay valid).
func (m *Machine) Run(n uint64) error {
	if m.bsrc != nil {
		return m.runBatch(n)
	}
	target := m.st.Instructions + n
	startReq := m.eng.Requests()
	var ctxErr error
	var steps uint64
	for m.st.Instructions < target && m.err == nil {
		if m.ctx != nil && steps%ctxCheckInterval == 0 {
			if ctxErr = m.ctx.Err(); ctxErr != nil {
				break
			}
		}
		steps++
		m.advanceCursor()
		if m.err != nil {
			break
		}
		ev, wasInFTQ := m.popEvent()
		if m.err != nil {
			break
		}
		m.fetch(&ev, wasInFTQ)
	}
	m.st.Requests += m.eng.Requests() - startReq
	m.st.ScaledCycles = m.now + m.backendExtra - m.statsBase
	if m.err != nil {
		return m.err
	}
	return ctxErr
}

// runBatch is Run over a batch source: the identical cycle loop with
// the lookahead window indexed straight into the decoded event arrays —
// no per-event interface dispatch, ring copies, or marker lookups. The
// interface and batch paths are observationally equivalent, so digests
// never depend on which one ran.
func (m *Machine) runBatch(n uint64) error {
	target := m.st.Instructions + n
	startReq := m.bsrc.BatchRequests(m.bpull)
	var ctxErr error
	var steps uint64
	for m.st.Instructions < target && m.err == nil {
		if m.ctx != nil && steps%ctxCheckInterval == 0 {
			if ctxErr = m.ctx.Err(); ctxErr != nil {
				break
			}
		}
		steps++
		m.advanceCursorBatch()
		if m.err != nil {
			break
		}
		// Pop the oldest event in place (popEvent without the ring).
		if m.bpos >= len(m.bev) {
			m.batchDry()
			break
		}
		if m.bpos+1 > m.bpull {
			m.bpull = m.bpos + 1
		}
		ev := &m.bev[m.bpos]
		if m.marker != nil {
			m.curReq = m.breq[m.bpos]
			m.curDone = m.bdone[m.bpos]
		}
		m.bpos++
		wasInFTQ := false
		if m.predOff > 0 {
			m.predOff--
			wasInFTQ = true
		}
		if m.inj != nil {
			// fetch may flip the Tagged bit under fault injection; give
			// it a scratch copy so the shared decoded arrays stay intact.
			m.scratch = *ev
			ev = &m.scratch
		}
		m.fetch(ev, wasInFTQ)
	}
	m.st.Requests += m.bsrc.BatchRequests(m.bpull) - startReq
	m.st.ScaledCycles = m.now + m.backendExtra - m.statsBase
	if m.err != nil {
		return m.err
	}
	return ctxErr
}

// advanceCursorBatch is advanceCursor over the decoded arrays.
func (m *Machine) advanceCursorBatch() {
	for m.blocked == notBlocked && m.predOff < m.prm.FTQEntries {
		if !m.specSynced {
			m.specHist = m.archHist
			m.specRAS.CopyFrom(m.archRAS)
			m.specSynced = true
		}
		i := m.bpos + m.predOff
		if i >= len(m.bev) {
			m.batchDry()
			return
		}
		if i+1 > m.bpull {
			m.bpull = i + 1
		}
		ev := &m.bev[i]
		m.predOff++
		// The branch predictor produces one fetch region per cycle;
		// FTQ refill after a flush is not instantaneous.
		if m.cursorClock < m.now {
			m.cursorClock = m.now
		}
		m.cursorClock += CycleScale
		if !m.prm.DisableFDIP && !m.prm.PerfectL1I {
			if m.issueFill(ev.Block(), cache.OriginFDIP, m.cursorClock) {
				m.st.FDIPIssued++
			}
		}
		m.blocked = m.predictSpec(ev)
	}
}

// batchDry latches the end-of-stream error exactly as ensure does,
// first syncing the source cursor so its Instructions/Err report the
// exhausted position, and raising the pull high-water to the full
// stream as the interface path's failed pull would.
func (m *Machine) batchDry() {
	// The source cursor never moved while the batch path indexed the
	// arrays; consume the whole view to reach the exhausted position.
	m.bsrc.BatchConsume(len(m.bev))
	m.bpos = len(m.bev)
	m.bpull = len(m.bev)
	cause := errors.New("event source ran dry")
	if m.srcErr != nil {
		if err := m.srcErr(); err != nil {
			cause = err
		}
	}
	m.fail(fmt.Errorf("sim: event stream ended after %d instructions: %w",
		m.eng.Instructions(), cause))
}

// SkipFunctional advances the stream by at least n instructions without
// timed simulation: every skipped event trains the architectural
// predictors (BTB, direction, indirect, RAS) and functionally touches
// the instruction-side hierarchy (ITLB, L1I, L2, LLC with LRU updates),
// but no cycles, stalls, fills-in-flight, or per-request attribution
// accrue. Interval (SMARTS-style) sampling alternates SkipFunctional
// with short timed Run sections; the warm microarchitectural state
// carries across the skip so each measured interval starts plausibly.
// Speculative front-end state is squashed and in-flight fills retire
// instantly at entry; statistics touched during a skip are garbage and
// callers are expected to ResetStats (after a detailed re-warm) before
// measuring. It returns the latched source-exhaustion error, if any.
func (m *Machine) SkipFunctional(n uint64) error {
	if m.err != nil {
		return m.err
	}
	m.predOff = 0
	m.blocked = notBlocked
	m.specSynced = false
	m.mshr.Drain(^uint64(0), func(e *cache.MSHR) {
		m.installL1I(e.Block, e.Origin, e.IssueSeq, false, false)
	})
	m.pfQueue = m.pfQueue[:0]
	if m.marker != nil {
		// Requests in flight across a skip lose their stall attribution;
		// dropping them beats mis-charging a later interval.
		clear(m.reqStall)
	}
	var done uint64
	if m.bsrc != nil {
		for done < n {
			if m.bpos >= len(m.bev) {
				m.batchDry()
				return m.err
			}
			if m.bpos+1 > m.bpull {
				m.bpull = m.bpos + 1
			}
			ev := &m.bev[m.bpos]
			m.bpos++
			done += uint64(ev.NumInstr)
			m.warmEvent(ev)
		}
		return nil
	}
	for done < n {
		ev, _ := m.popEvent()
		if m.err != nil {
			return m.err
		}
		done += uint64(ev.NumInstr)
		m.warmEvent(&ev)
	}
	return nil
}

// warmEvent functionally touches the instruction-side hierarchy and
// trains the architectural predictors for one skipped event.
func (m *Machine) warmEvent(ev *isa.BlockEvent) {
	blk := ev.Block()
	if !m.haveLast || blk != m.lastBlock {
		m.lastBlock = blk
		m.haveLast = true
		m.blockSeq++
		page := uint64(blk.Page())
		if _, hit := m.itlb.Lookup(page); !hit {
			m.itlb.Insert(page, cache.LineMeta{})
		}
		key := uint64(blk)
		if _, hit := m.l1i.Lookup(key); !hit {
			if _, h2 := m.l2.Lookup(key); !h2 {
				if _, h3 := m.llc.Lookup(key); !h3 {
					m.llc.Insert(key, cache.LineMeta{Origin: cache.OriginDemand})
				}
				m.l2Fill(key, cache.LineMeta{Origin: cache.OriginDemand})
			}
			m.l1i.Insert(key, cache.LineMeta{Origin: cache.OriginDemand, Used: true})
		}
	}
	m.trainArch(ev)
}

// ensure pulls source events until ring position i exists. A finite
// source running dry (zero event) latches an error instead of feeding
// the ring garbage — replaying a trace shorter than the run is a
// failure, not a silent stall.
func (m *Machine) ensure(i int) {
	for m.count <= i {
		ev := m.eng.Next()
		if ev.NumInstr == 0 {
			cause := errors.New("event source ran dry")
			if m.srcErr != nil {
				if err := m.srcErr(); err != nil {
					cause = err
				}
			}
			m.fail(fmt.Errorf("sim: event stream ended after %d instructions: %w",
				m.eng.Instructions(), cause))
			return
		}
		idx := (m.head + m.count) % len(m.ring)
		m.ring[idx] = ev
		if m.marker != nil {
			m.ringReq[idx] = m.marker.CurrentRequest()
			m.ringDone[idx] = m.marker.RequestDone()
		}
		m.count++
	}
}

// popEvent removes the oldest event, reporting whether the cursor had
// already passed it (it was in the FTQ).
func (m *Machine) popEvent() (isa.BlockEvent, bool) {
	m.ensure(0)
	if m.count == 0 {
		return isa.BlockEvent{}, false
	}
	ev := m.ring[m.head]
	if m.marker != nil {
		m.curReq = m.ringReq[m.head]
		m.curDone = m.ringDone[m.head]
	}
	m.head = (m.head + 1) % len(m.ring)
	m.count--
	if m.predOff > 0 {
		m.predOff--
		return ev, true
	}
	return ev, false
}

// advanceCursor runs the prediction cursor ahead of fetch, enqueuing
// fetch regions into the FTQ (each enqueue is an FDIP prefetch) until the
// FTQ fills, a prediction fails, or a taken branch is invisible to the
// BTB — the fundamental FDIP lookahead limits (§2.1).
func (m *Machine) advanceCursor() {
	for m.blocked == notBlocked && m.predOff < m.prm.FTQEntries {
		if !m.specSynced {
			m.specHist = m.archHist
			m.specRAS.CopyFrom(m.archRAS)
			m.specSynced = true
		}
		m.ensure(m.predOff)
		if m.count <= m.predOff {
			return // source ran dry; the error is latched
		}
		ev := &m.ring[(m.head+m.predOff)%len(m.ring)]
		m.predOff++
		// The branch predictor produces one fetch region per cycle;
		// FTQ refill after a flush is not instantaneous.
		if m.cursorClock < m.now {
			m.cursorClock = m.now
		}
		m.cursorClock += CycleScale
		if !m.prm.DisableFDIP && !m.prm.PerfectL1I {
			if m.issueFill(ev.Block(), cache.OriginFDIP, m.cursorClock) {
				m.st.FDIPIssued++
			}
		}
		m.blocked = m.predictSpec(ev)
	}
}

// predictSpec evaluates whether the front-end can follow ev's terminator,
// updating speculative history/RAS along the predicted (== actual, when
// correct) path. It returns the blocking kind on failure.
func (m *Machine) predictSpec(ev *isa.BlockEvent) blockKind {
	switch ev.Branch {
	case isa.BrNone:
		return notBlocked
	case isa.BrCond:
		target, btbHit := m.bp.BTBLookup(ev.BrPC)
		if !btbHit {
			// The branch is invisible: implicit fall-through.
			if ev.Taken {
				return blockBTBMiss
			}
			m.specHist = m.specHist.Update(false)
			return notBlocked
		}
		pred := m.bp.PredictDir(ev.BrPC, m.specHist)
		if pred != ev.Taken || (ev.Taken && target != ev.Target) {
			return blockMispredict
		}
		m.specHist = m.specHist.Update(ev.Taken)
		return notBlocked
	case isa.BrJump:
		if _, hit := m.bp.BTBLookup(ev.BrPC); !hit {
			return blockBTBMiss
		}
		return notBlocked
	case isa.BrCall:
		if _, hit := m.bp.BTBLookup(ev.BrPC); !hit {
			return blockBTBMiss
		}
		m.specRAS.Push(ev.BrPC + isa.InstrSize)
		return notBlocked
	case isa.BrIndCall:
		tgt, ok := m.bp.PredictIndirect(ev.BrPC, m.specHist)
		m.specHist = m.specHist.UpdatePath(ev.Target)
		if !ok || tgt != ev.Target {
			return blockIndirect
		}
		m.specRAS.Push(ev.BrPC + isa.InstrSize)
		return notBlocked
	case isa.BrRet:
		tgt, ok := m.specRAS.Pop()
		if !ok || tgt != ev.Target {
			return blockRAS
		}
		return notBlocked
	}
	return notBlocked
}

// fetch retires one event: demand-accesses its block, charges fetch and
// back-end time, resolves its terminator, and feeds the prefetcher.
func (m *Machine) fetch(ev *isa.BlockEvent, wasInFTQ bool) {
	// Demand access once per distinct consecutive block.
	blk := ev.Block()
	if !m.haveLast || blk != m.lastBlock {
		stallBefore := m.st.StallScaled
		m.demandAccess(blk)
		if m.marker != nil {
			if d := m.st.StallScaled - stallBefore; d != 0 {
				m.reqStall[m.curReq] += d
			}
		}
		m.lastBlock = blk
		m.haveLast = true
		m.blockSeq++
		h := m.histHead
		m.histBlocks[h] = blk
		m.histTimes[h] = m.now
		m.histHead = (h + 1) % historyLen
		if m.histLen < historyLen {
			m.histLen++
		}
	}

	if len(m.pfQueue) > 0 {
		m.drainMSHR()
		m.drainPFQueue()
	}

	// Fetch throughput on the front-end clock; the back-end's base CPI
	// accrues on its own account.
	m.now += uint64(ev.NumInstr) * CycleScale / uint64(m.prm.FetchWidth)
	m.backendExtra += uint64(ev.NumInstr) * m.prm.BaseCPIUnits
	m.st.Instructions += uint64(ev.NumInstr)

	// Resolve the terminator.
	var fail blockKind
	if wasInFTQ {
		if m.blocked != notBlocked && m.predOff == 0 {
			// This event is where the cursor stalled.
			fail = m.blocked
			m.blocked = notBlocked
			m.specSynced = false
		}
	} else {
		// The cursor never evaluated this event (it was at fetch);
		// evaluate with architectural state.
		fail = m.predictArch(ev)
	}
	m.trainArch(ev)
	if fail != notBlocked {
		m.redirect(fail)
	}

	if m.pf != nil {
		// Runtime tag fault: the Bundle-entry bit the prefetcher sees
		// is inverted (ev is a local copy, so the flip is confined to
		// this observation).
		if m.inj != nil && m.inj.FlipTag() {
			ev.Tagged = !ev.Tagged
			m.st.FaultTagFlips++
		}
		m.pf.OnRetire(ev)
	}

	// Request completion: fold the finished request's accumulated stall
	// into the per-request tail statistics.
	if m.marker != nil && m.curDone {
		total := m.reqStall[m.curReq]
		delete(m.reqStall, m.curReq)
		m.st.ReqCompleted++
		m.st.ReqStallSum += total
		if total > m.st.ReqStallMax {
			m.st.ReqStallMax = total
		}
		m.st.ReqStallHist[reqStallBucket(total/CycleScale)]++
	}
}

// predictArch evaluates a terminator with architectural predictor state
// (used when fetch has caught up with the cursor).
func (m *Machine) predictArch(ev *isa.BlockEvent) blockKind {
	switch ev.Branch {
	case isa.BrNone:
		return notBlocked
	case isa.BrCond:
		target, btbHit := m.bp.BTBLookup(ev.BrPC)
		if !btbHit {
			if ev.Taken {
				return blockBTBMiss
			}
			return notBlocked
		}
		pred := m.bp.PredictDir(ev.BrPC, m.archHist)
		if pred != ev.Taken || (ev.Taken && target != ev.Target) {
			return blockMispredict
		}
		return notBlocked
	case isa.BrJump:
		if _, hit := m.bp.BTBLookup(ev.BrPC); !hit {
			return blockBTBMiss
		}
		return notBlocked
	case isa.BrCall:
		if _, hit := m.bp.BTBLookup(ev.BrPC); !hit {
			return blockBTBMiss
		}
		return notBlocked
	case isa.BrIndCall:
		tgt, ok := m.bp.PredictIndirect(ev.BrPC, m.archHist)
		if !ok || tgt != ev.Target {
			return blockIndirect
		}
		return notBlocked
	case isa.BrRet:
		tgt, ok := m.archRAS.Peek()
		if !ok || tgt != ev.Target {
			return blockRAS
		}
		return notBlocked
	}
	return notBlocked
}

// trainArch updates the architectural predictor state with the resolved
// terminator.
func (m *Machine) trainArch(ev *isa.BlockEvent) {
	switch ev.Branch {
	case isa.BrNone:
		return
	case isa.BrCond:
		m.bp.TrainDir(ev.BrPC, m.archHist, ev.Taken)
		m.archHist = m.archHist.Update(ev.Taken)
		if ev.Taken {
			m.bp.BTBInsert(ev.BrPC, ev.Target)
		}
	case isa.BrJump:
		m.bp.BTBInsert(ev.BrPC, ev.Target)
	case isa.BrCall:
		m.bp.BTBInsert(ev.BrPC, ev.Target)
		m.archRAS.Push(ev.BrPC + isa.InstrSize)
	case isa.BrIndCall:
		m.bp.TrainIndirect(ev.BrPC, m.archHist, ev.Target)
		m.archHist = m.archHist.UpdatePath(ev.Target)
		m.archRAS.Push(ev.BrPC + isa.InstrSize)
	case isa.BrRet:
		m.archRAS.Pop()
	}
	m.st.Branches++
}

// redirect charges the front-end penalty for a failed prediction and
// flushes the FTQ.
func (m *Machine) redirect(kind blockKind) {
	switch kind {
	case blockBTBMiss:
		m.now += m.prm.BTBMissPenalty * CycleScale
		m.st.BTBMissRedirects++
	case blockMispredict:
		m.now += m.prm.MispredictPenalty * CycleScale
		m.st.CondMispredicts++
	case blockIndirect:
		m.now += m.prm.MispredictPenalty * CycleScale
		m.st.IndirectMispredicts++
	case blockRAS:
		m.now += m.prm.MispredictPenalty * CycleScale
		m.st.RASMispredicts++
	}
	// Squash anything the cursor did beyond fetch.
	m.predOff = 0
	m.blocked = notBlocked
	m.specSynced = false
	if m.pf != nil && kind != blockBTBMiss {
		m.pf.OnResteer()
	}
}

// demandAccess performs the instruction fetch for a block, charging any
// exposed miss latency.
func (m *Machine) demandAccess(blk isa.Block) {
	// I-TLB: translation happens even with a perfect I-cache.
	page := uint64(blk.Page())
	if _, hit := m.itlb.Lookup(page); hit {
		m.st.TLBHits++
	} else {
		m.st.TLBMisses++
		m.stall(m.prm.TLBWalkLatency * CycleScale)
		m.itlb.Insert(page, cache.LineMeta{})
	}
	if m.prm.PerfectL1I {
		m.st.L1IDemandHits++
		return
	}

	if meta, hit := m.l1i.Lookup(uint64(blk)); hit {
		m.st.L1IDemandHits++
		m.recordUse(meta, false)
		return
	}

	if e, ok := m.mshr.Lookup(blk); ok {
		if e.FillAt <= m.now {
			// Fill already completed; install lazily and hit.
			m.mshr.Remove(blk)
			m.installL1I(blk, e.Origin, e.IssueSeq, false, true)
			m.st.L1IDemandHits++
			return
		}
		// Late prefetch: stall for the residual latency.
		residual := e.FillAt - m.now
		m.stall(residual)
		if m.LateHook != nil {
			m.LateHook(blk, e.Origin, e.Level)
		}
		m.mshr.Remove(blk)
		m.installL1I(blk, e.Origin, e.IssueSeq, true, true)
		m.st.L1ILateHits++
		switch e.Origin {
		case cache.OriginFDIP:
			m.st.LateFDIP++
			m.st.LateFDIPStallSum += residual
			m.st.LateFDIPByLevel[e.Level]++
		case cache.OriginPF:
			m.st.LatePF++
			m.st.LatePFStallSum += residual
			m.st.LatePFByLevel[e.Level]++
		}
		return
	}

	// Clean miss: walk the hierarchy.
	m.st.L1IDemandMisses++
	lat, level := m.fillPath(blk, cache.OriginDemand, true)
	scaled := lat * CycleScale
	m.stall(scaled)
	switch level {
	case 2:
		m.st.ServedL2++
		m.st.LatencyL2Sum += scaled
	case 3:
		m.st.ServedLLC++
		m.st.LatencyLLCSum += scaled
	default:
		m.st.ServedMem++
		m.st.LatencyMemSum += scaled
	}
	m.missLatEst = m.missLatEst - m.missLatEst/8 + scaled/8
	_, victim, evicted := m.l1i.Insert(uint64(blk), cache.LineMeta{Origin: cache.OriginDemand, Used: true})
	m.noteEviction(victim, evicted)
	if m.pf != nil {
		m.pf.OnDemandMiss(blk, scaled)
	}
}

// recordUse marks first demand use of a line, crediting its installer.
func (m *Machine) recordUse(meta *cache.LineMeta, late bool) {
	if meta.Used {
		return
	}
	meta.Used = true
	switch meta.Origin {
	case cache.OriginFDIP:
		m.st.FDIPUseful++
	case cache.OriginPF:
		dist := m.blockSeq - meta.IssueSeq
		m.st.PFDistSum += dist
		m.st.PFDistCount++
		b := distBucket(dist)
		m.st.PFDistHist[b]++
		if !late {
			m.st.PFUseful++
			m.st.PFDistUseful[b]++
		}
	}
}

// installL1I inserts a filled line, handling eviction bookkeeping.
// demand reports that a demand fetch is consuming the line right now
// (completed-in-place or late-hit installs): only those count as use.
// Fills retired by the background drain stay unused until a demand
// fetch actually hits them — or are evicted unused, which is what the
// FDIPUseless/PFUseless pollution counters measure.
func (m *Machine) installL1I(blk isa.Block, origin cache.Origin, issueSeq uint64, late, demand bool) {
	meta := cache.LineMeta{Origin: origin, IssueSeq: issueSeq}
	_, victim, evicted := m.l1i.Insert(uint64(blk), meta)
	m.noteEviction(victim, evicted)
	if !demand {
		return
	}
	if p, ok := m.l1i.Peek(uint64(blk)); ok {
		m.recordUse(p, late)
	}
}

// noteEviction counts unused prefetched lines displaced from the L1-I.
func (m *Machine) noteEviction(victim cache.LineMeta, evicted bool) {
	if !evicted || victim.Used {
		return
	}
	switch victim.Origin {
	case cache.OriginFDIP:
		m.st.FDIPUseless++
	case cache.OriginPF:
		m.st.PFUseless++
	}
}

// fillPath looks up the L2→LLC→memory path for a block, filling the
// levels it passes through, and returns the latency (cycles) and the
// serving level (2, 3, or 4=memory). demandLike requests (demand fetches
// and FDIP, the baseline front-end) participate in the L2 coverage
// metric.
func (m *Machine) fillPath(blk isa.Block, origin cache.Origin, demandLike bool) (uint64, int) {
	key := uint64(blk)
	if meta, hit := m.l2.Lookup(key); hit {
		if demandLike && meta.Origin == cache.OriginPF && !meta.Used {
			meta.Used = true
			m.st.L2CoveredByPF++
		}
		return m.prm.L2Latency, 2
	}
	if demandLike {
		m.st.L2Beyond++
	}
	if _, hit := m.llc.Lookup(key); hit {
		m.l2Fill(key, cache.LineMeta{Origin: origin})
		return m.faultLatency(m.prm.LLCLatency), 3
	}
	switch origin {
	case cache.OriginDemand:
		m.st.MemBlocksDemand++
	case cache.OriginFDIP:
		m.st.MemBlocksFDIP++
	case cache.OriginPF:
		m.st.MemBlocksPF++
	}
	m.llc.Insert(key, cache.LineMeta{Origin: origin})
	m.l2Fill(key, cache.LineMeta{Origin: origin})
	return m.faultLatency(m.prm.MemLatency), 4
}

// faultLatency applies injected LLC/memory latency jitter to a fill.
func (m *Machine) faultLatency(lat uint64) uint64 {
	if m.inj == nil {
		return lat
	}
	if j := m.inj.JitterLatency(lat); j != lat {
		m.st.FaultJitteredFills++
		return j
	}
	return lat
}

// mshrFull reports whether no MSHR can currently be allocated, folding
// in injected starvation (a co-runner holding entries).
func (m *Machine) mshrFull() bool {
	if m.mshr.Full() {
		return true
	}
	if m.inj != nil && m.mshr.Len() >= m.prm.MSHRs-m.inj.MSHRReserve(m.prm.MSHRs) {
		m.st.FaultMSHRBlocks++
		return true
	}
	return false
}

// l2Fill inserts into the L2, spilling the victim line into the LLC so
// instruction blocks age through the hierarchy instead of silently
// falling to memory (victim-fill, as a non-inclusive LLC behaves).
func (m *Machine) l2Fill(key uint64, meta cache.LineMeta) {
	victim, vmeta, evicted := m.l2.Insert(key, meta)
	if evicted && !m.llc.Contains(victim) {
		m.llc.Insert(victim, cache.LineMeta{Origin: vmeta.Origin})
	}
}

// stall advances time by the exposed fraction of a front-end stall.
func (m *Machine) stall(scaled uint64) {
	exposed := scaled * uint64(m.prm.StallOverlap) / 100
	m.now += exposed
	m.st.StallScaled += exposed
}

// issueFill requests an asynchronous block fill (FDIP or evaluated
// prefetcher). It returns true if a new fill was actually started.
func (m *Machine) issueFill(blk isa.Block, origin cache.Origin, earliest uint64) bool {
	return m.issueFillSeq(blk, origin, earliest, m.blockSeq)
}

// issueFillSeq is issueFill with an explicit trigger sequence number for
// distance accounting.
func (m *Machine) issueFillSeq(blk isa.Block, origin cache.Origin, earliest uint64, seq uint64) bool {
	if m.l1i.Contains(uint64(blk)) {
		if origin == cache.OriginPF {
			m.st.PFRedundant++
		}
		return false
	}
	if _, inflight := m.mshr.Lookup(blk); inflight {
		if origin == cache.OriginPF {
			m.st.PFRedundant++
		}
		return false
	}
	if m.mshrFull() {
		// Opportunistically retire completed fills, then give up.
		m.drainMSHR()
		if m.mshrFull() {
			if origin == cache.OriginPF {
				m.st.PFDropped++
			}
			return false
		}
	}
	issueAt := m.now
	if earliest > issueAt {
		issueAt = earliest
	}
	if origin == cache.OriginPF {
		// The evaluated prefetcher has its own issue port; FDIP fills
		// ride the prediction cursor and never queue behind it.
		if m.nextPFSlot > issueAt {
			issueAt = m.nextPFSlot
		}
		m.nextPFSlot = issueAt + CycleScale/uint64(m.prm.PrefetchPerCycle)
	}

	// Prefetches translate through the I-TLB too (the replay engine
	// dispatches base addresses to the TLB, §5.3.5); they warm it
	// rather than stalling fetch.
	page := uint64(blk.Page())
	if !m.itlb.Contains(page) {
		if origin == cache.OriginPF {
			// Translation-blocked prefetch (Jamet et al.): the fill went
			// out without a resident ITLB entry — a failure class the
			// TLB-aware schemes avoid by gating on PrefetchMapped.
			m.st.PFTLBMiss++
		}
		m.itlb.Insert(page, cache.LineMeta{})
	}

	lat, level := m.fillPath(blk, origin, origin == cache.OriginFDIP)
	if origin == cache.OriginPF && m.inj != nil {
		if d := m.inj.DelayPrefetch(); d > 0 {
			lat += d
			m.st.FaultPFDelays++
		}
	}

	if m.prm.PrefetchToL2 && origin == cache.OriginPF {
		// §7.8: direct the evaluated prefetcher at the L2. fillPath has
		// already installed the line there; only bandwidth was charged.
		return true
	}
	if err := m.mshr.Add(&cache.MSHR{
		Block:    blk,
		FillAt:   issueAt + lat*CycleScale,
		Origin:   origin,
		IssueSeq: seq,
		Level:    uint8(level),
	}); err != nil {
		// Full/Lookup were checked above, so this means the machine's
		// occupancy accounting has drifted; fail the run cleanly.
		m.fail(fmt.Errorf("sim: %s fill of block %#x: %w", origin, uint64(blk), err))
		return false
	}
	return true
}

// drainMSHR retires completed fills into the L1-I.
func (m *Machine) drainMSHR() {
	m.mshr.Drain(m.now, func(e *cache.MSHR) {
		m.installL1I(e.Block, e.Origin, e.IssueSeq, false, false)
	})
}

// distBucket maps a distance to its histogram bucket.
func distBucket(d uint64) int {
	for i, hi := range DistanceBuckets {
		if d <= hi {
			return i
		}
	}
	return len(DistanceBuckets) - 1
}

// reqStallBucket maps a per-request stall (cycles) to its histogram bucket.
func reqStallBucket(cycles uint64) int {
	for i, hi := range ReqStallBuckets {
		if cycles <= hi {
			return i
		}
	}
	return len(ReqStallBuckets) - 1
}

// --- prefetch.Machine interface ---

// Now returns the current scaled time.
func (m *Machine) Now() uint64 { return m.now }

// CycleScale returns scaled units per cycle.
func (m *Machine) CycleScale() uint64 { return CycleScale }

// BlockSeq returns retired distinct-block count.
func (m *Machine) BlockSeq() uint64 { return m.blockSeq }

// InstrSeq returns retired instructions.
func (m *Machine) InstrSeq() uint64 { return m.st.Instructions }

// Resident reports whether blk is cached or in flight.
func (m *Machine) Resident(blk isa.Block) bool {
	if m.l1i.Contains(uint64(blk)) {
		return true
	}
	_, ok := m.mshr.Lookup(blk)
	return ok
}

// Prefetch issues an evaluated-prefetcher fill, queueing it when the
// MSHR file is busy. It returns false only when the request was dropped
// (queue full) or redundant; prefetchers use that as back-pressure.
func (m *Machine) Prefetch(blk isa.Block) bool {
	if m.prm.PerfectL1I {
		return false
	}
	if m.inj != nil && m.inj.DropPrefetch() {
		// Injected interconnect fault: the issue is silently lost.
		m.st.FaultPFDrops++
		return false
	}
	if m.l1i.Contains(uint64(blk)) {
		m.st.PFRedundant++
		return false
	}
	if _, inflight := m.mshr.Lookup(blk); inflight {
		m.st.PFRedundant++
		return false
	}
	if len(m.pfQueue) > 0 || m.mshrFull() {
		m.drainMSHR()
		m.drainPFQueue()
	}
	if len(m.pfQueue) == 0 && !m.mshrFull() {
		if m.issueFillSeq(blk, cache.OriginPF, m.now, m.blockSeq) {
			m.st.PFIssued++
			return true
		}
		return false
	}
	if len(m.pfQueue) >= m.prm.PFQueueEntries {
		m.st.PFDropped++
		return false
	}
	m.pfQueue = append(m.pfQueue, pfReq{block: blk, seq: m.blockSeq})
	return true
}

// PrefetchMapped is the TLB-gated issue path: when the target block's
// page has no ITLB translation the prefetch is withheld and counted in
// PFTLBDropped instead of reaching the fill path.
func (m *Machine) PrefetchMapped(blk isa.Block) bool {
	if m.prm.PerfectL1I {
		return false
	}
	if !m.itlb.Contains(uint64(blk.Page())) {
		m.st.PFTLBDropped++
		return false
	}
	return m.Prefetch(blk)
}

// PrefetchSpace returns how many more Prefetch calls can currently be
// accepted without dropping.
func (m *Machine) PrefetchSpace() int {
	return m.prm.PFQueueEntries - len(m.pfQueue)
}

// drainPFQueue issues queued prefetches as MSHRs free up.
func (m *Machine) drainPFQueue() {
	for len(m.pfQueue) > 0 && !m.mshrFull() {
		r := m.pfQueue[0]
		m.pfQueue = m.pfQueue[1:]
		if m.issueFillSeq(r.block, cache.OriginPF, m.now, r.seq) {
			m.st.PFIssued++
		}
	}
}

// PFSignals exposes the feedback counters a throttling governor samples:
// issued, useful, late and useless evaluated-prefetcher events so far.
// Counts are monotonic within a measurement window; ResetStats restarts
// them (governors must resync when a sample goes backwards).
func (m *Machine) PFSignals() (issued, useful, late, useless uint64) {
	return m.st.PFIssued, m.st.PFUseful, m.st.LatePF, m.st.PFUseless
}

// AvgMissLatency returns the demand miss latency estimate (scaled).
func (m *Machine) AvgMissLatency() uint64 { return m.missLatEst }

// BlockAgo returns the retired block closest to `scaled` units ago.
func (m *Machine) BlockAgo(scaled uint64) (isa.Block, bool) {
	if m.histLen == 0 {
		return 0, false
	}
	var cutoff uint64
	if m.now > scaled {
		cutoff = m.now - scaled
	}
	// Walk backwards from the most recent entry to the first one at or
	// before the cutoff.
	idx := (m.histHead - 1 + historyLen) % historyLen
	for i := 0; i < m.histLen; i++ {
		if m.histTimes[idx] <= cutoff {
			return m.histBlocks[idx], true
		}
		idx = (idx - 1 + historyLen) % historyLen
	}
	// Everything in the window is newer; return the oldest we have.
	oldest := (m.histHead - m.histLen + historyLen) % historyLen
	return m.histBlocks[oldest], true
}

// MetadataRead charges a prefetcher metadata read through the LLC/memory
// path and returns its completion time.
func (m *Machine) MetadataRead(addr isa.Addr, n int) uint64 {
	if n <= 0 {
		return m.now
	}
	first := addr.Block()
	last := (addr + isa.Addr(n) - 1).Block()
	var worst uint64 = m.prm.LLCLatency
	for b := first; b <= last; b++ {
		if _, hit := m.llc.Lookup(uint64(b)); !hit {
			m.llc.Insert(uint64(b), cache.LineMeta{})
			m.st.MemBlocksMeta++
			worst = m.prm.MemLatency
		}
		m.st.MetaReadBlocks++
	}
	m.st.MetaReads++
	blocks := uint64(last - first + 1)
	return m.now + worst*CycleScale + blocks*CycleScale/2
}

// MetadataWrite charges a prefetcher metadata writeback.
func (m *Machine) MetadataWrite(addr isa.Addr, n int) {
	if n <= 0 {
		return
	}
	first := addr.Block()
	last := (addr + isa.Addr(n) - 1).Block()
	for b := first; b <= last; b++ {
		if _, hit := m.llc.Lookup(uint64(b)); !hit {
			m.llc.Insert(uint64(b), cache.LineMeta{})
		}
		// Writebacks eventually reach memory; charge them as they are
		// produced.
		m.st.MemBlocksMeta++
		m.st.MetaWriteBlocks++
	}
	m.st.MetaWrites++
}

var _ prefetch.Machine = (*Machine)(nil)
