package sim

import (
	"math"
	"testing"
)

// hist builds a ReqStallHist-sized histogram from sparse (bucket, count)
// pairs so the tables below stay readable.
func hist(pairs ...[2]uint64) []uint64 {
	h := make([]uint64, len(ReqStallBuckets))
	for _, p := range pairs {
		h[p[0]] = p[1]
	}
	return h
}

func TestReqStallPercentileCycles(t *testing.T) {
	last := uint64(len(ReqStallBuckets) - 1)
	for _, tc := range []struct {
		name      string
		completed uint64
		hist      []uint64
		max       uint64 // scaled units
		q         float64
		want      float64
	}{
		{
			name: "zero completed returns zero",
			hist: hist(), q: 0.99, want: 0,
		},
		{
			name: "zero completed with stale hist returns zero",
			hist: hist([2]uint64{3, 5}), q: 0.5, want: 0,
		},
		{
			name:      "nil histogram returns zero",
			completed: 10, hist: nil, q: 0.5, want: 0,
		},
		{
			name:      "single bucket interpolates to bucket bound",
			completed: 4, hist: hist([2]uint64{2, 4}), max: 2 * CycleScale,
			q: 1, want: 2, // bucket 2's bound is 2 cycles
		},
		{
			name:      "single zero-bucket stays at zero",
			completed: 7, hist: hist([2]uint64{0, 7}), max: 0,
			q: 0.999, want: 0,
		},
		{
			name:      "catch-all bucket bounded by worst request",
			completed: 1, hist: hist([2]uint64{last, 1}), max: 5_000_000 * CycleScale,
			q: 1, want: 5_000_000,
		},
		{
			name:      "catch-all never interpolates above max",
			completed: 2, hist: hist([2]uint64{last, 2}), max: 100 * CycleScale,
			q: 0.5, want: float64(ReqStallBuckets[last-1]), // hi clamps up to lo, collapsing the bucket
		},
		{
			name:      "nan rank reads as zeroth percentile",
			completed: 3, hist: hist([2]uint64{1, 3}), max: CycleScale,
			q: math.NaN(), want: 0,
		},
		{
			name:      "negative rank clamps to zero",
			completed: 3, hist: hist([2]uint64{1, 3}), max: CycleScale,
			q: -0.5, want: 0,
		},
		{
			name:      "rank above one clamps to the tail",
			completed: 2, hist: hist([2]uint64{2, 2}), max: 2 * CycleScale,
			q: 1.5, want: 2,
		},
		{
			name:      "median interpolates within bucket",
			completed: 2, hist: hist([2]uint64{0, 1}, [2]uint64{3, 1}), max: 4 * CycleScale,
			// rank 1.0 lands at the end of the first bucket: exactly 0.
			q: 0.5, want: 0,
		},
		{
			name:      "tail percentile lands in later bucket",
			completed: 10, hist: hist([2]uint64{0, 9}, [2]uint64{4, 1}), max: 8 * CycleScale,
			// rank 9.9 → 0.9 through bucket 4, which spans (4, 8].
			q: 0.99, want: 4 + 0.9*(8-4),
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := &Stats{ReqCompleted: tc.completed, ReqStallHist: tc.hist, ReqStallMax: tc.max}
			got := s.ReqStallPercentileCycles(tc.q)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("q=%v returned non-finite %v", tc.q, got)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("q=%v = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

// TestReqStallPercentileMonotonic pins that the percentile curve never
// decreases in q and never panics, across a busy multi-bucket histogram.
func TestReqStallPercentileMonotonic(t *testing.T) {
	s := &Stats{
		ReqCompleted: 100,
		ReqStallHist: hist([2]uint64{0, 40}, [2]uint64{3, 25}, [2]uint64{7, 20},
			[2]uint64{12, 14}, [2]uint64{uint64(len(ReqStallBuckets) - 1), 1}),
		ReqStallMax: 3_000_000 * CycleScale,
	}
	prev := -1.0
	for q := 0.0; q <= 1.0+1e-9; q += 0.01 {
		got := s.ReqStallPercentileCycles(q)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("q=%.2f returned non-finite %v", q, got)
		}
		if got < prev {
			t.Fatalf("percentile decreased: q=%.2f gave %v after %v", q, got, prev)
		}
		prev = got
	}
	if worst := s.ReqStallPercentileCycles(1); worst != 3_000_000 {
		t.Errorf("q=1 = %v, want the worst observed request (3000000)", worst)
	}
}

// TestRatioAccessorsZeroDenominator pins every derived-ratio accessor to
// a finite zero on a zero-valued Stats: a scheme that never issues a
// prefetch (or a run that retires no instruction) must render as 0, not
// NaN/Inf, in tables, digests-adjacent JSON and the serving layer. The
// numerator variants prove the guards sit on the denominator, not on
// accidental all-zero structs.
func TestRatioAccessorsZeroDenominator(t *testing.T) {
	accessors := []struct {
		name string
		get  func(*Stats) float64
	}{
		{"IPC", (*Stats).IPC},
		{"MPKI", (*Stats).MPKI},
		{"L1IMPKI", (*Stats).L1IMPKI},
		{"PFAccuracy", (*Stats).PFAccuracy},
		{"PFCoverageL1", (*Stats).PFCoverageL1},
		{"PFCoverageL2", (*Stats).PFCoverageL2},
		{"PFLateFraction", (*Stats).PFLateFraction},
		{"PFTLBMissFraction", (*Stats).PFTLBMissFraction},
		{"PFAvgDistance", (*Stats).PFAvgDistance},
		{"AvgMissLatencyCycles", (*Stats).AvgMissLatencyCycles},
		{"ReqStallMeanCycles", (*Stats).ReqStallMeanCycles},
		{"ReqStallP99", func(s *Stats) float64 { return s.ReqStallPercentileCycles(0.99) }},
	}

	cases := []struct {
		name string
		st   Stats
	}{
		{"zero value", Stats{}},
		// Counters that look like numerators set without their
		// denominators: the exact states a half-initialised or
		// partially-deserialised Stats lands in.
		{"instructions without cycles", Stats{Instructions: 1000}},
		{"mispredicts without instructions", Stats{CondMispredicts: 5, RASMispredicts: 3}},
		{"useful without issued", Stats{PFUseful: 10}},
		{"tlb misses without issued", Stats{PFTLBMiss: 4}},
		{"late without useful", Stats{LatePF: 7}},
		{"distance sum without count", Stats{PFDistSum: 123}},
		{"latency sums without serves", Stats{LatencyL2Sum: 99, LatencyMemSum: 7}},
		{"stall sum without requests", Stats{ReqStallSum: 55}},
	}
	for _, tc := range cases {
		for _, a := range accessors {
			got := a.get(&tc.st)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("%s/%s = %v, want finite", tc.name, a.name, got)
			}
		}
	}

	// The guards must not clamp real ratios: a populated Stats still
	// divides.
	full := Stats{
		Instructions: 2000, ScaledCycles: 1000 * CycleScale,
		PFIssued: 100, PFUseful: 60, LatePF: 20, PFTLBMiss: 10,
		PFDistSum: 500, PFDistCount: 50,
	}
	if got := full.IPC(); got != 2 {
		t.Errorf("IPC = %v, want 2", got)
	}
	if got := full.PFAccuracy(); got != 0.6 {
		t.Errorf("PFAccuracy = %v, want 0.6", got)
	}
	if got := full.PFLateFraction(); got != 0.25 {
		t.Errorf("PFLateFraction = %v, want 0.25", got)
	}
	if got := full.PFTLBMissFraction(); got != 0.1 {
		t.Errorf("PFTLBMissFraction = %v, want 0.1", got)
	}
	if got := full.PFAvgDistance(); got != 10 {
		t.Errorf("PFAvgDistance = %v, want 10", got)
	}
}
