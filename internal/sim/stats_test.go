package sim

import (
	"math"
	"testing"
)

// hist builds a ReqStallHist-sized histogram from sparse (bucket, count)
// pairs so the tables below stay readable.
func hist(pairs ...[2]uint64) []uint64 {
	h := make([]uint64, len(ReqStallBuckets))
	for _, p := range pairs {
		h[p[0]] = p[1]
	}
	return h
}

func TestReqStallPercentileCycles(t *testing.T) {
	last := uint64(len(ReqStallBuckets) - 1)
	for _, tc := range []struct {
		name      string
		completed uint64
		hist      []uint64
		max       uint64 // scaled units
		q         float64
		want      float64
	}{
		{
			name: "zero completed returns zero",
			hist: hist(), q: 0.99, want: 0,
		},
		{
			name: "zero completed with stale hist returns zero",
			hist: hist([2]uint64{3, 5}), q: 0.5, want: 0,
		},
		{
			name:      "nil histogram returns zero",
			completed: 10, hist: nil, q: 0.5, want: 0,
		},
		{
			name:      "single bucket interpolates to bucket bound",
			completed: 4, hist: hist([2]uint64{2, 4}), max: 2 * CycleScale,
			q: 1, want: 2, // bucket 2's bound is 2 cycles
		},
		{
			name:      "single zero-bucket stays at zero",
			completed: 7, hist: hist([2]uint64{0, 7}), max: 0,
			q: 0.999, want: 0,
		},
		{
			name:      "catch-all bucket bounded by worst request",
			completed: 1, hist: hist([2]uint64{last, 1}), max: 5_000_000 * CycleScale,
			q: 1, want: 5_000_000,
		},
		{
			name:      "catch-all never interpolates above max",
			completed: 2, hist: hist([2]uint64{last, 2}), max: 100 * CycleScale,
			q: 0.5, want: float64(ReqStallBuckets[last-1]), // hi clamps up to lo, collapsing the bucket
		},
		{
			name:      "nan rank reads as zeroth percentile",
			completed: 3, hist: hist([2]uint64{1, 3}), max: CycleScale,
			q: math.NaN(), want: 0,
		},
		{
			name:      "negative rank clamps to zero",
			completed: 3, hist: hist([2]uint64{1, 3}), max: CycleScale,
			q: -0.5, want: 0,
		},
		{
			name:      "rank above one clamps to the tail",
			completed: 2, hist: hist([2]uint64{2, 2}), max: 2 * CycleScale,
			q: 1.5, want: 2,
		},
		{
			name:      "median interpolates within bucket",
			completed: 2, hist: hist([2]uint64{0, 1}, [2]uint64{3, 1}), max: 4 * CycleScale,
			// rank 1.0 lands at the end of the first bucket: exactly 0.
			q: 0.5, want: 0,
		},
		{
			name:      "tail percentile lands in later bucket",
			completed: 10, hist: hist([2]uint64{0, 9}, [2]uint64{4, 1}), max: 8 * CycleScale,
			// rank 9.9 → 0.9 through bucket 4, which spans (4, 8].
			q: 0.99, want: 4 + 0.9*(8-4),
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := &Stats{ReqCompleted: tc.completed, ReqStallHist: tc.hist, ReqStallMax: tc.max}
			got := s.ReqStallPercentileCycles(tc.q)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("q=%v returned non-finite %v", tc.q, got)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("q=%v = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

// TestReqStallPercentileMonotonic pins that the percentile curve never
// decreases in q and never panics, across a busy multi-bucket histogram.
func TestReqStallPercentileMonotonic(t *testing.T) {
	s := &Stats{
		ReqCompleted: 100,
		ReqStallHist: hist([2]uint64{0, 40}, [2]uint64{3, 25}, [2]uint64{7, 20},
			[2]uint64{12, 14}, [2]uint64{uint64(len(ReqStallBuckets) - 1), 1}),
		ReqStallMax: 3_000_000 * CycleScale,
	}
	prev := -1.0
	for q := 0.0; q <= 1.0+1e-9; q += 0.01 {
		got := s.ReqStallPercentileCycles(q)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("q=%.2f returned non-finite %v", q, got)
		}
		if got < prev {
			t.Fatalf("percentile decreased: q=%.2f gave %v after %v", q, got, prev)
		}
		prev = got
	}
	if worst := s.ReqStallPercentileCycles(1); worst != 3_000_000 {
		t.Errorf("q=1 = %v, want the worst observed request (3000000)", worst)
	}
}
