package sim_test

import (
	"testing"

	"hprefetch/internal/core"
	"hprefetch/internal/prefetch"
	"hprefetch/internal/sim"
)

func ledger(t *testing.T, name string, st *sim.Stats) {
	cyc := float64(st.ScaledCycles) / 48
	t.Logf("%-6s IPC=%.3f cyc=%.0fk | stallShare=%.1f%% | fdipLateStall=%.0fk pfLateStall=%.0fk cleanL2=%.0fk cleanLLC=%.0fk cleanMem=%.0fk | tlbMiss=%d (%.0fk cyc) | redirects=%d mispred=%d | fdipIssued=%d fdipLate=%d | pfIssued=%d useful=%d useless=%d late=%d",
		name, st.IPC(), cyc/1000,
		float64(st.StallScaled)/float64(st.ScaledCycles)*100,
		float64(st.LateFDIPStallSum)/48e3, float64(st.LatePFStallSum)/48e3,
		float64(st.LatencyL2Sum)/48e3, float64(st.LatencyLLCSum)/48e3, float64(st.LatencyMemSum)/48e3,
		st.TLBMisses, float64(st.TLBMisses)*35/1000,
		st.BTBMissRedirects, st.CondMispredicts+st.IndirectMispredicts+st.RASMispredicts,
		st.FDIPIssued, st.LateFDIP, st.PFIssued, st.PFUseful, st.PFUseless, st.LatePF)
	t.Logf("   late-FDIP by level L2/LLC/mem: %d/%d/%d  late-PF: %d/%d/%d",
		st.LateFDIPByLevel[2], st.LateFDIPByLevel[3], st.LateFDIPByLevel[4],
		st.LatePFByLevel[2], st.LatePFByLevel[3], st.LatePFByLevel[4])
}

func TestStallLedger(t *testing.T) {
	base := runScheme(t, 71, scheme{name: "FDIP"}, nil)
	hp := runScheme(t, 71, scheme{name: "HP", mk: func(m prefetch.Machine) prefetch.Prefetcher {
		return core.New(core.DefaultConfig(), m)
	}}, nil)
	ledger(t, "FDIP", base)
	ledger(t, "HP", hp)
}

func TestEFetchLedger(t *testing.T) {
	st := runScheme(t, 71, schemes()[1], nil)
	ledger(t, "EFetch", st)
}
