package sim_test

// Integration tests: every prefetcher runs on the default workload and
// the paper's qualitative orderings are checked end to end. These tests
// exercise the full stack: generator -> linker (Bundle identification) ->
// loader (tagging) -> execution engine -> front-end simulator ->
// prefetcher.

import (
	"testing"

	"hprefetch/internal/core"
	"hprefetch/internal/linker"
	"hprefetch/internal/loader"
	"hprefetch/internal/prefetch"
	"hprefetch/internal/prefetch/efetch"
	"hprefetch/internal/prefetch/eip"
	"hprefetch/internal/prefetch/mana"
	"hprefetch/internal/program"
	"hprefetch/internal/sim"
	"hprefetch/internal/trace"
)

const (
	warmInstr    = 5_000_000
	measureInstr = 8_000_000
)

func newEngine(t testing.TB, seed uint64) *trace.Engine {
	t.Helper()
	cfg := program.DefaultConfig()
	cfg.Name = "integration"
	cfg.Seed = seed
	p, err := program.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := linker.Link(p, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return trace.New(loader.LoadLinked(p, l.Image), 7)
}

type scheme struct {
	name string
	mk   func(m prefetch.Machine) prefetch.Prefetcher
}

func schemes() []scheme {
	return []scheme{
		{"FDIP", nil},
		{"EFetch", func(m prefetch.Machine) prefetch.Prefetcher { return efetch.New(efetch.DefaultConfig(), m) }},
		{"MANA", func(m prefetch.Machine) prefetch.Prefetcher { return mana.New(mana.DefaultConfig(), m) }},
		{"EIP", func(m prefetch.Machine) prefetch.Prefetcher { return eip.New(eip.DefaultConfig(), m) }},
		{"Hierarchical", func(m prefetch.Machine) prefetch.Prefetcher { return core.New(core.DefaultConfig(), m) }},
	}
}

func runScheme(t testing.TB, seed uint64, s scheme, mutate func(*sim.Params)) *sim.Stats {
	t.Helper()
	prm := sim.DefaultParams()
	if mutate != nil {
		mutate(&prm)
	}
	eng := newEngine(t, seed)
	var pf prefetch.Prefetcher
	mk := func(m prefetch.Machine) prefetch.Prefetcher {
		if s.mk == nil {
			return nil
		}
		return s.mk(m)
	}
	m, err := sim.New(prm, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	pf = mk(m)
	if pf != nil {
		m.SetPrefetcher(pf)
	}
	m.Run(warmInstr)
	m.ResetStats()
	m.Run(measureInstr)
	return m.Stats()
}

func TestPrefetcherShowdown(t *testing.T) {
	if testing.Short() {
		t.Skip("full showdown is slow")
	}
	results := map[string]*sim.Stats{}
	for _, s := range schemes() {
		results[s.name] = runScheme(t, 71, s, nil)
	}
	perfect := runScheme(t, 71, scheme{name: "Perfect"}, func(p *sim.Params) { p.PerfectL1I = true })

	base := results["FDIP"].IPC()
	t.Logf("%-14s %8s %8s %8s %8s %8s %8s %9s", "scheme", "IPC", "speedup", "acc", "covL1", "covL2", "late%", "dist")
	for _, s := range schemes() {
		st := results[s.name]
		t.Logf("%-14s %8.3f %+7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %9.1f",
			s.name, st.IPC(), (st.IPC()/base-1)*100,
			st.PFAccuracy()*100, st.PFCoverageL1()*100, st.PFCoverageL2()*100,
			st.PFLateFraction()*100, st.PFAvgDistance())
	}
	t.Logf("%-14s %8.3f %+7.1f%%", "PerfectL1I", perfect.IPC(), (perfect.IPC()/base-1)*100)

	hp := results["Hierarchical"].IPC()
	eipIPC := results["EIP"].IPC()
	if hp <= base {
		t.Errorf("Hierarchical (%.3f) does not beat FDIP (%.3f)", hp, base)
	}
	if hp <= eipIPC {
		t.Errorf("Hierarchical (%.3f) does not beat EIP (%.3f) — the paper's headline ordering", hp, eipIPC)
	}
	if results["MANA"].IPC() > hp {
		t.Errorf("MANA (%.3f) beats Hierarchical (%.3f)", results["MANA"].IPC(), hp)
	}
	// Known divergence from the paper: this reproduction's EFetch is
	// stronger than the original measured (see EXPERIMENTS.md); we only
	// require that it not dominate Hierarchical by a wide margin.
	if ef := results["EFetch"].IPC(); ef > hp*1.02 {
		t.Errorf("EFetch (%.3f) dominates Hierarchical (%.3f) beyond the documented margin", ef, hp)
	}
	// Hierarchical must cover far more L2-level misses than any
	// fine-grained scheme (Table 2: 54% vs 8-23%) — the long-range
	// mechanism at the heart of the paper.
	hpCovL2 := results["Hierarchical"].PFCoverageL2()
	for _, name := range []string{"MANA", "EFetch", "EIP"} {
		if c := results[name].PFCoverageL2(); c >= hpCovL2 {
			t.Errorf("%s L2 coverage %.2f not below Hierarchical's %.2f", name, c, hpCovL2)
		}
	}
}

func TestHierarchicalBundleStats(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := core.DefaultConfig()
	cfg.TrackStats = true
	var hp *core.Hier
	_ = runScheme(t, 72, scheme{
		name: "HP",
		mk: func(m prefetch.Machine) prefetch.Prefetcher {
			hp = core.New(cfg, m)
			return hp
		},
	}, nil)
	sum := hp.BundleSummary()
	if sum.DistinctBundles < 5 {
		t.Fatalf("only %d distinct bundles executed", sum.DistinctBundles)
	}
	if sum.Executions < 20 {
		t.Errorf("only %d bundle executions; reuse too rare", sum.Executions)
	}
	if sum.AvgJaccard < 0.5 || sum.AvgJaccard > 1.0 {
		t.Errorf("bundle Jaccard %.3f implausible (paper: ~0.8-0.95)", sum.AvgJaccard)
	}
	if sum.AvgFootprintKB < 1 {
		t.Errorf("bundle footprint %.2fKB implausibly small", sum.AvgFootprintKB)
	}
	t.Logf("bundles: distinct=%d execs=%d footprint=%.1fKB cycles=%.0f jaccard=%.3f",
		sum.DistinctBundles, sum.Executions, sum.AvgFootprintKB, sum.AvgExecCycles, sum.AvgJaccard)
}
