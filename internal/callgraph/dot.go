package callgraph

import (
	"fmt"
	"io"

	"hprefetch/internal/isa"
	"hprefetch/internal/program"
)

// WriteDOT renders a neighbourhood of the call graph in Graphviz DOT
// form, highlighting Bundle entry points — a debugging and paper-figure
// aid (Figure 5 of the paper is exactly such a drawing). The rendering
// starts from root and walks up to depth levels and at most maxNodes
// nodes, so the half-million-function graphs stay viewable.
func WriteDOT(w io.Writer, g *Graph, p *program.Program, a *Analysis, root isa.FuncID, depth, maxNodes int) error {
	if int(root) >= g.NumNodes() {
		return fmt.Errorf("callgraph: root %d out of range", root)
	}
	if depth <= 0 {
		depth = 3
	}
	if maxNodes <= 0 {
		maxNodes = 200
	}
	type qent struct {
		id isa.FuncID
		d  int
	}
	visited := map[isa.FuncID]bool{root: true}
	queue := []qent{{root, 0}}
	var nodes []isa.FuncID
	var edges [][2]isa.FuncID
	for len(queue) > 0 && len(nodes) < maxNodes {
		cur := queue[0]
		queue = queue[1:]
		nodes = append(nodes, cur.id)
		if cur.d >= depth {
			continue
		}
		for _, c := range g.Callees(cur.id) {
			cid := isa.FuncID(c)
			edges = append(edges, [2]isa.FuncID{cur.id, cid})
			if !visited[cid] {
				visited[cid] = true
				queue = append(queue, qent{cid, cur.d + 1})
			}
		}
	}

	if _, err := fmt.Fprintln(w, "digraph callgraph {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  rankdir=TB; node [shape=box, fontsize=10];`)
	inSet := map[isa.FuncID]bool{}
	for _, n := range nodes {
		inSet[n] = true
		label := fmt.Sprintf("%s\\n%dKB", p.FuncName(n), a.Reach[n]>>10)
		attrs := ""
		if a.IsEntry(n) {
			attrs = `, style=filled, fillcolor=lightgrey`
		}
		fmt.Fprintf(w, "  n%d [label=\"%s\"%s];\n", n, label, attrs)
	}
	for _, e := range edges {
		if inSet[e[0]] && inSet[e[1]] {
			fmt.Fprintf(w, "  n%d -> n%d;\n", e[0], e[1])
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
