// Package callgraph implements the paper's software-side analysis (§5.1,
// Algorithm 1): building the static call graph of a binary, computing
// per-function reachable sizes, and identifying Bundle entry points.
//
// Reachable size is defined by the paper as the total code size of a
// function and everything reachable from it (a set-union size, so shared
// callees count once). Computing it exactly for every node of a
// half-million-function graph is quadratic, so this package computes it
// with a saturating search: sizes are exact until they exceed a cap (a
// small multiple of the Bundle threshold, default 4x), beyond which the
// node is marked saturated. Saturated father/child comparisons fall back
// to an exclusion search that measures how much code the father reaches
// without descending into the child — which is precisely the "divergence"
// Algorithm 1 is probing for. On graphs small enough to stay below the
// cap, the analysis is bit-for-bit the paper's Algorithm 1; tests verify
// this against a brute-force reference.
package callgraph

import (
	"fmt"

	"hprefetch/internal/isa"
	"hprefetch/internal/program"
)

// Graph is a static call graph in compressed sparse row form.
type Graph struct {
	n         int
	size      []uint32 // code bytes per function
	edgeStart []int32  // CSR offsets, len n+1
	edges     []int32  // distinct callees
	predStart []int32
	preds     []int32
}

// NumNodes returns the function count.
func (g *Graph) NumNodes() int { return g.n }

// Size returns the code size of function v.
func (g *Graph) Size(v isa.FuncID) uint32 { return g.size[v] }

// Callees returns the distinct static callees of v. The slice aliases
// internal storage and must not be modified.
func (g *Graph) Callees(v isa.FuncID) []int32 {
	return g.edges[g.edgeStart[v]:g.edgeStart[v+1]]
}

// Callers returns the distinct static callers of v. The slice aliases
// internal storage and must not be modified.
func (g *Graph) Callers(v isa.FuncID) []int32 {
	return g.preds[g.predStart[v]:g.predStart[v+1]]
}

// FromProgram builds the call graph of a program: every direct callee and
// every possible indirect target contributes an edge, including
// probability-zero (cold) edges — the static graph overestimates the
// dynamic one, as the paper notes real static call graphs do.
func FromProgram(p *program.Program) *Graph {
	n := p.NumFuncs()
	g := &Graph{n: n, size: make([]uint32, n)}

	// First pass: count edges per node (with dedup via a scratch set
	// keyed by epoch to avoid per-node allocations).
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	counts := make([]int32, n+1)
	dedupCallees := func(v int, f *program.Function, emit func(int32)) {
		for ci := range f.Calls {
			c := &f.Calls[ci]
			if c.Indirect() {
				for _, t := range p.TargetSets[c.Targets].Funcs {
					if int(t) != v && mark[t] != int32(v) {
						mark[t] = int32(v)
						emit(int32(t))
					}
				}
			} else if int(c.Callee) != v && mark[c.Callee] != int32(v) {
				mark[c.Callee] = int32(v)
				emit(int32(c.Callee))
			}
		}
	}
	for v := 0; v < n; v++ {
		f := &p.Funcs[v]
		g.size[v] = f.Size
		dedupCallees(v, f, func(int32) { counts[v+1]++ })
	}
	g.edgeStart = make([]int32, n+1)
	for v := 0; v < n; v++ {
		g.edgeStart[v+1] = g.edgeStart[v] + counts[v+1]
	}
	g.edges = make([]int32, g.edgeStart[n])
	for i := range mark {
		mark[i] = -1
	}
	cursor := make([]int32, n)
	copy(cursor, g.edgeStart[:n])
	for v := 0; v < n; v++ {
		dedupCallees(v, &p.Funcs[v], func(t int32) {
			g.edges[cursor[v]] = t
			cursor[v]++
		})
	}
	g.buildPreds()
	return g
}

// buildPreds fills the reverse CSR from the forward one.
func (g *Graph) buildPreds() {
	n := g.n
	counts := make([]int32, n+1)
	for _, t := range g.edges {
		counts[t+1]++
	}
	g.predStart = make([]int32, n+1)
	for v := 0; v < n; v++ {
		g.predStart[v+1] = g.predStart[v] + counts[v+1]
	}
	g.preds = make([]int32, len(g.edges))
	cursor := make([]int32, n)
	copy(cursor, g.predStart[:n])
	for v := 0; v < n; v++ {
		for _, t := range g.Callees(isa.FuncID(v)) {
			g.preds[cursor[t]] = int32(v)
			cursor[t]++
		}
	}
}

// Options configures the analysis.
type Options struct {
	// Threshold is the Bundle divergence threshold in bytes (paper
	// default: 200KB).
	Threshold uint64
	// Cap is the saturation bound for reachable-size computation.
	// Zero means 4*Threshold. Graphs whose largest reachable size
	// stays below Cap are analysed exactly.
	Cap uint64
}

// DefaultThreshold is the paper's 200KB divergence threshold.
const DefaultThreshold = 200 << 10

// Analysis is the result of running Algorithm 1 over a graph.
type Analysis struct {
	// Reach holds per-function reachable sizes in bytes; values at or
	// above the cap are partial sums (see Saturated).
	Reach []uint64
	// Saturated marks functions whose reachable size hit the cap.
	Saturated []bool
	// Entries lists Bundle entry functions in ascending ID order.
	Entries []isa.FuncID
	// Threshold echoes the threshold used.
	Threshold uint64
}

// IsEntry reports whether v was identified as a Bundle entry point.
func (a *Analysis) IsEntry(v isa.FuncID) bool {
	lo, hi := 0, len(a.Entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.Entries[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a.Entries) && a.Entries[lo] == v
}

// Analyze runs reachable-size computation and Bundle entry identification
// (Algorithm 1) over the graph.
func Analyze(g *Graph, opt Options) (*Analysis, error) {
	if opt.Threshold == 0 {
		return nil, fmt.Errorf("callgraph: zero threshold")
	}
	cap := opt.Cap
	if cap == 0 {
		cap = 4 * opt.Threshold
	}
	if cap < opt.Threshold {
		return nil, fmt.Errorf("callgraph: cap %d below threshold %d", cap, opt.Threshold)
	}
	comp, compOf := scc(g)
	reachC, satC := comp.reachable(cap)

	a := &Analysis{
		Reach:     make([]uint64, g.n),
		Saturated: make([]bool, g.n),
		Threshold: opt.Threshold,
	}
	for v := 0; v < g.n; v++ {
		a.Reach[v] = reachC[compOf[v]]
		a.Saturated[v] = satC[compOf[v]]
	}

	excl := newExcluder(comp)
	for v := 0; v < g.n; v++ {
		if a.Reach[v] < opt.Threshold {
			continue // Algorithm 1 line 5: below threshold
		}
		callers := g.Callers(isa.FuncID(v))
		if len(callers) == 0 {
			// Root-node rule: roots meeting the size requirement are
			// Bundles in their own right.
			a.Entries = append(a.Entries, isa.FuncID(v))
			continue
		}
		for _, u := range callers {
			if compOf[u] == compOf[v] {
				continue // recursion: father reaches exactly what child does
			}
			var diverges bool
			if !satC[compOf[u]] {
				// Exact sizes on both sides: the literal Algorithm 1
				// test (child is never saturated when father is not,
				// since reach(father) >= reach(child)).
				diverges = a.Reach[u]-a.Reach[v] > opt.Threshold
			} else {
				// Saturated father: measure the code the father
				// reaches without descending into the child at all.
				diverges = excl.exceeds(compOf[u], compOf[v], opt.Threshold)
			}
			if diverges {
				a.Entries = append(a.Entries, isa.FuncID(v))
				break
			}
		}
	}
	return a, nil
}

// condensation is the SCC-condensed DAG of a call graph.
type condensation struct {
	n         int      // component count
	size      []uint64 // summed code size per component
	edgeStart []int32
	edges     []int32 // distinct inter-component edges
}

// scc computes strongly connected components with an iterative Tarjan
// walk and returns the condensation plus the node->component map.
// Component IDs are assigned in reverse topological order: every edge of
// the condensation goes from a higher ID to a lower one.
func scc(g *Graph) (*condensation, []int32) {
	n := g.n
	const unvisited = int32(-1)
	index := make([]int32, n)
	low := make([]int32, n)
	compOf := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		compOf[i] = -1
	}
	var (
		counter int32
		ncomp   int32
		stack   []int32 // Tarjan stack
	)
	type frame struct {
		v  int32
		ei int32 // next edge index to explore
	}
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: int32(root)})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			es, ee := g.edgeStart[v], g.edgeStart[v+1]
			advanced := false
			for f.ei < ee-es {
				w := g.edges[es+f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && low[v] > index[w] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					compOf[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[p] > low[v] {
					low[p] = low[v]
				}
			}
		}
	}

	// Build the condensation CSR with deduplicated edges.
	c := &condensation{n: int(ncomp), size: make([]uint64, ncomp)}
	for v := 0; v < n; v++ {
		c.size[compOf[v]] += uint64(g.size[v])
	}
	mark := make([]int32, ncomp)
	for i := range mark {
		mark[i] = -1
	}
	counts := make([]int32, ncomp+1)
	for v := 0; v < n; v++ {
		cv := compOf[v]
		for _, w := range g.Callees(isa.FuncID(v)) {
			cw := compOf[w]
			if cw != cv && mark[cw] != cv {
				mark[cw] = cv
				counts[cv+1]++
			}
		}
	}
	c.edgeStart = make([]int32, ncomp+1)
	for i := int32(0); i < ncomp; i++ {
		c.edgeStart[i+1] = c.edgeStart[i] + counts[i+1]
	}
	c.edges = make([]int32, c.edgeStart[ncomp])
	for i := range mark {
		mark[i] = -1
	}
	cursor := make([]int32, ncomp)
	copy(cursor, c.edgeStart[:ncomp])
	// Reset marks per source component: iterate nodes grouped by comp
	// is awkward, so use a second mark array keyed by source comp.
	mark2 := make([]int32, ncomp)
	for i := range mark2 {
		mark2[i] = -1
	}
	for v := 0; v < n; v++ {
		cv := compOf[v]
		for _, w := range g.Callees(isa.FuncID(v)) {
			cw := compOf[w]
			if cw != cv && mark2[cw] != cv {
				mark2[cw] = cv
				c.edges[cursor[cv]] = cw
				cursor[cv]++
			}
		}
	}
	return c, compOf
}

// reachable computes, for every component, the total code size reachable
// from it (itself included), saturating at cap. Since component IDs are
// in reverse topological order, components reachable from c all have
// IDs < c — but overlap between children forbids simple summation, so
// each component runs its own capped depth-first search with an epoch
// array to avoid reallocation.
func (c *condensation) reachable(cap uint64) ([]uint64, []bool) {
	reach := make([]uint64, c.n)
	sat := make([]bool, c.n)
	epoch := make([]int32, c.n)
	for i := range epoch {
		epoch[i] = -1
	}
	var stack []int32
	for v := 0; v < c.n; v++ {
		var acc uint64
		stack = append(stack[:0], int32(v))
		epoch[v] = int32(v)
		for len(stack) > 0 && acc < cap {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			acc += c.size[u]
			for _, w := range c.edges[c.edgeStart[u]:c.edgeStart[u+1]] {
				if epoch[w] != int32(v) {
					epoch[w] = int32(v)
					stack = append(stack, w)
				}
			}
		}
		reach[v] = acc
		sat[v] = acc >= cap
	}
	return reach, sat
}

// excluder answers "does the code reachable from father, never entering
// child, exceed the threshold?" queries on the condensation.
type excluder struct {
	c     *condensation
	epoch []int32
	gen   int32
	stack []int32
}

func newExcluder(c *condensation) *excluder {
	e := &excluder{c: c, epoch: make([]int32, c.n)}
	for i := range e.epoch {
		e.epoch[i] = -1
	}
	return e
}

// exceeds reports whether the bytes reachable from father while skipping
// the child component exceed the threshold. The search stops as soon as
// the threshold is crossed, bounding the work per query.
func (e *excluder) exceeds(father, child int32, threshold uint64) bool {
	e.gen++
	gen := e.gen
	var acc uint64
	e.stack = append(e.stack[:0], father)
	e.epoch[father] = gen
	e.epoch[child] = gen // pre-marked: never entered
	for len(e.stack) > 0 {
		u := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		acc += e.c.size[u]
		if acc > threshold {
			return true
		}
		for _, w := range e.c.edges[e.c.edgeStart[u]:e.c.edgeStart[u+1]] {
			if e.epoch[w] != gen {
				e.epoch[w] = gen
				e.stack = append(e.stack, w)
			}
		}
	}
	return false
}
