package callgraph

import (
	"strings"
	"testing"

	"hprefetch/internal/program"
)

func TestWriteDOT(t *testing.T) {
	cfg := program.DefaultConfig()
	cfg.Name = "dot-test"
	cfg.Seed = 91
	cfg.OrphanFuncs = 100
	p, err := program.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := FromProgram(p)
	a, err := Analyze(g, Options{Threshold: DefaultThreshold})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteDOT(&b, g, p, a, p.Entry, 2, 50); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "serve_loop", "->", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Entry highlighting appears when any entry is within the window.
	if !strings.Contains(out, "fillcolor") && len(a.Entries) > 0 {
		t.Log("no entries within 2 levels of root (acceptable)")
	}
	// Bounds respected.
	if n := strings.Count(out, "label="); n > 50 {
		t.Errorf("maxNodes exceeded: %d nodes", n)
	}
	if err := WriteDOT(&b, g, p, a, 1<<30, 2, 50); err == nil {
		t.Error("out-of-range root accepted")
	}
}
