package callgraph

import (
	"sort"
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/program"
	"hprefetch/internal/xrand"
)

// graphFromEdges builds a Graph directly for hand-written topologies.
func graphFromEdges(sizes []uint32, edges map[int][]int) *Graph {
	n := len(sizes)
	g := &Graph{n: n, size: sizes}
	g.edgeStart = make([]int32, n+1)
	for v := 0; v < n; v++ {
		g.edgeStart[v+1] = g.edgeStart[v] + int32(len(edges[v]))
	}
	g.edges = make([]int32, g.edgeStart[n])
	cur := 0
	for v := 0; v < n; v++ {
		for _, w := range edges[v] {
			g.edges[cur] = int32(w)
			cur++
		}
	}
	g.buildPreds()
	return g
}

// bruteReach computes exact reachable sizes by full DFS from every node.
func bruteReach(g *Graph) []uint64 {
	out := make([]uint64, g.n)
	seen := make([]bool, g.n)
	for v := 0; v < g.n; v++ {
		for i := range seen {
			seen[i] = false
		}
		stack := []int32{int32(v)}
		seen[v] = true
		var acc uint64
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			acc += uint64(g.size[u])
			for _, w := range g.Callees(isa.FuncID(u)) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		out[v] = acc
	}
	return out
}

// bruteEntries is the literal Algorithm 1 on exact reachable sizes.
func bruteEntries(g *Graph, threshold uint64) []isa.FuncID {
	reach := bruteReach(g)
	var entries []isa.FuncID
	for v := 0; v < g.n; v++ {
		if reach[v] < threshold {
			continue
		}
		callers := g.Callers(isa.FuncID(v))
		if len(callers) == 0 {
			entries = append(entries, isa.FuncID(v))
			continue
		}
		for _, u := range callers {
			if reach[u]-reach[v] > threshold && reach[u] >= reach[v] {
				entries = append(entries, isa.FuncID(v))
				break
			}
		}
	}
	return entries
}

func TestPaperFigure5Example(t *testing.T) {
	// Figure 5 of the paper: A calls B and C; C calls D; D calls E.
	// Reachable sizes (KB): A=500, B=220, C=280, D=230, E=150.
	// Threshold 200KB. Entries: A (root over threshold), B and C
	// (divergence at A), but not D (C-D difference is small) or E.
	// We realise those reachable sizes with own-sizes:
	// E=150, D=80 (D+E=230), C=50 (C+D+E=280), B=220, A=0 -> use 10
	// to keep nodes non-empty: A=10 gives A_reach=510; differences:
	// A-B=290>200, A-C=230>200, C-D=50<200, D-E=80<200.
	kb := func(x uint32) uint32 { return x << 10 }
	sizes := []uint32{kb(10), kb(220), kb(50), kb(80), kb(150)}
	g := graphFromEdges(sizes, map[int][]int{
		0: {1, 2}, // A -> B, C
		2: {3},    // C -> D
		3: {4},    // D -> E
	})
	a, err := Analyze(g, Options{Threshold: 200 << 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.FuncID{0, 1, 2}
	if len(a.Entries) != len(want) {
		t.Fatalf("entries = %v, want %v", a.Entries, want)
	}
	for i := range want {
		if a.Entries[i] != want[i] {
			t.Fatalf("entries = %v, want %v", a.Entries, want)
		}
	}
	if !a.IsEntry(1) || a.IsEntry(3) || a.IsEntry(4) {
		t.Error("IsEntry disagrees with Entries")
	}
}

func TestReachableWithSharing(t *testing.T) {
	// Diamond: 0 -> 1,2; 1 -> 3; 2 -> 3. Shared node 3 counts once.
	sizes := []uint32{10, 20, 30, 40}
	g := graphFromEdges(sizes, map[int][]int{0: {1, 2}, 1: {3}, 2: {3}})
	a, err := Analyze(g, Options{Threshold: 5, Cap: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if a.Reach[0] != 100 {
		t.Errorf("diamond root reach = %d, want 100 (shared child once)", a.Reach[0])
	}
	if a.Reach[1] != 60 || a.Reach[2] != 70 || a.Reach[3] != 40 {
		t.Errorf("reach = %v", a.Reach)
	}
}

func TestReachableWithCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (cycle), 2 -> 3.
	sizes := []uint32{5, 10, 20, 40}
	g := graphFromEdges(sizes, map[int][]int{0: {1}, 1: {2}, 2: {1, 3}})
	a, err := Analyze(g, Options{Threshold: 1, Cap: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if a.Reach[1] != 70 || a.Reach[2] != 70 {
		t.Errorf("cycle members must share reach: %v", a.Reach)
	}
	if a.Reach[0] != 75 {
		t.Errorf("root reach = %d, want 75", a.Reach[0])
	}
	// Recursion edge inside the SCC must not create entries via the
	// same-component father rule.
	for _, e := range a.Entries {
		if e == 2 {
			// 2's only father is 1, same SCC: reach difference zero.
			t.Error("node inside SCC marked entry through intra-SCC edge")
		}
	}
}

func TestAnalyzeMatchesBruteForceOnRandomDAGs(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 30; trial++ {
		n := rng.Range(5, 120)
		sizes := make([]uint32, n)
		edges := map[int][]int{}
		for v := 0; v < n; v++ {
			sizes[v] = uint32(rng.Range(1, 100)) << 10
			fan := rng.IntN(4)
			for e := 0; e < fan && v+1 < n; e++ {
				w := v + 1 + rng.IntN(n-v-1)
				edges[v] = append(edges[v], w)
			}
		}
		g := graphFromEdges(sizes, edges)
		threshold := uint64(rng.Range(50, 400)) << 10
		a, err := Analyze(g, Options{Threshold: threshold, Cap: 1 << 40})
		if err != nil {
			t.Fatal(err)
		}
		exact := bruteReach(g)
		for v := range exact {
			if a.Reach[v] != exact[v] {
				t.Fatalf("trial %d: reach[%d] = %d, brute %d", trial, v, a.Reach[v], exact[v])
			}
		}
		want := bruteEntries(g, threshold)
		if len(want) != len(a.Entries) {
			t.Fatalf("trial %d: entries %v, brute %v", trial, a.Entries, want)
		}
		for i := range want {
			if want[i] != a.Entries[i] {
				t.Fatalf("trial %d: entries %v, brute %v", trial, a.Entries, want)
			}
		}
	}
}

func TestSaturationPreservesDivergenceDetection(t *testing.T) {
	// A dispatcher with several huge children must keep marking the
	// children as entries even when everything saturates: the exclusion
	// search sees the sibling subtrees.
	const kb = 1 << 10
	sizes := []uint32{4 * kb}
	edges := map[int][]int{}
	// Node 0 dispatches to 4 children, each heading a deep chain of
	// 50 nodes x 20KB = 1MB.
	next := 1
	for c := 0; c < 4; c++ {
		head := next
		for i := 0; i < 50; i++ {
			sizes = append(sizes, 20*kb)
			if i > 0 {
				edges[next-1] = append(edges[next-1], next)
			}
			next++
		}
		edges[0] = append(edges[0], head)
	}
	g := graphFromEdges(sizes, edges)
	a, err := Analyze(g, Options{Threshold: 200 * kb, Cap: 400 * kb})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Saturated[0] {
		t.Fatal("dispatcher should saturate at a 400KB cap")
	}
	// The four chain heads diverge at node 0: each must be an entry.
	for c := 0; c < 4; c++ {
		head := isa.FuncID(1 + c*50)
		if !a.IsEntry(head) {
			t.Errorf("chain head %d not marked entry", head)
		}
	}
	// Chain interiors must not be entries: their only father reaches
	// barely more than they do.
	if a.IsEntry(2) || a.IsEntry(3) {
		t.Error("chain interior wrongly marked entry despite saturation")
	}
	// Root rule under saturation.
	if !a.IsEntry(0) {
		t.Error("saturated root not marked entry")
	}
}

func TestFromProgramEdges(t *testing.T) {
	cfg := program.DefaultConfig()
	cfg.Name = "cg-test"
	cfg.Seed = 3
	cfg.OrphanFuncs = 100
	p, err := program.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := FromProgram(p)
	if g.NumNodes() != p.NumFuncs() {
		t.Fatalf("node count %d != func count %d", g.NumNodes(), p.NumFuncs())
	}
	// Indirect dispatch edges must be present: the Dispatch stage links
	// to every handler.
	var dispatch *program.Stage
	for i := range p.Stages {
		if p.Stages[i].Diverges {
			dispatch = &p.Stages[i]
			break
		}
	}
	if dispatch == nil {
		t.Fatal("no diverging stage in default config")
	}
	callees := g.Callees(dispatch.Func)
	got := map[int32]bool{}
	for _, c := range callees {
		got[c] = true
	}
	for _, h := range dispatch.Handlers {
		if !got[int32(h)] {
			t.Errorf("handler %d missing from dispatch stage callees", h)
		}
	}
	// Edges are deduplicated.
	sorted := append([]int32(nil), callees...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatalf("duplicate edge to %d", sorted[i])
		}
	}
	// Callers must mirror callees.
	for _, h := range dispatch.Handlers {
		found := false
		for _, u := range g.Callers(h) {
			if u == int32(dispatch.Func) {
				found = true
			}
		}
		if !found {
			t.Errorf("handler %d callers missing dispatch stage", h)
		}
	}
}

func TestAnalyzeRejectsBadOptions(t *testing.T) {
	g := graphFromEdges([]uint32{1}, nil)
	if _, err := Analyze(g, Options{}); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := Analyze(g, Options{Threshold: 100, Cap: 50}); err == nil {
		t.Error("cap below threshold accepted")
	}
}

func TestEntryFractionOnGeneratedProgram(t *testing.T) {
	// The paper reports 2-6% of functions become Bundle entries at the
	// 200KB threshold (Table 4). The default generated program should
	// land in a plausible band (we allow a wide one here; workload
	// presets are tuned separately).
	cfg := program.DefaultConfig()
	cfg.Name = "cg-frac"
	cfg.Seed = 5
	p, err := program.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := FromProgram(p)
	a, err := Analyze(g, Options{Threshold: DefaultThreshold})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(a.Entries)) / float64(g.NumNodes())
	if frac <= 0 || frac > 0.30 {
		t.Errorf("entry fraction %.4f out of plausible range (%d of %d)",
			frac, len(a.Entries), g.NumNodes())
	}
}
