// Package bpu implements the branch prediction unit of the simulated core
// (Table 1): a set-associative BTB (optionally infinite, for the Figure 14
// study), a gshare-style global-history direction predictor standing in
// for L-TAGE, an ITTAGE-style tagged indirect-target predictor, and a
// return address stack. The decoupled front-end keeps two history/RAS
// views (speculative at the prediction cursor, architectural at retire);
// this package exposes the state needed for that split.
package bpu

import (
	"hprefetch/internal/isa"
)

// Config sizes the prediction structures.
type Config struct {
	// BTBEntries and BTBWays size the branch target buffer
	// (paper: 8K entries, 8-way).
	BTBEntries, BTBWays int
	// BTBInfinite disables BTB capacity misses (Figure 14 study).
	BTBInfinite bool
	// GshareBits is log2 of the direction-counter table size.
	GshareBits int
	// HistoryBits is the global-history length folded into the index.
	HistoryBits int
	// IndirectEntries sizes the indirect-target table.
	IndirectEntries int
	// RASDepth is the return address stack depth.
	RASDepth int
}

// DefaultConfig mirrors the paper's front-end parameters.
func DefaultConfig() Config {
	return Config{
		BTBEntries:      8192,
		BTBWays:         8,
		GshareBits:      17, // 128K 2-bit counters = 32KB, L-TAGE class budget
		HistoryBits:     16,
		IndirectEntries: 4096,
		RASDepth:        64,
	}
}

// Unit is one core's branch prediction state.
type Unit struct {
	cfg Config

	// BTB: sets x ways of (tag, target). Valid entries occupy a prefix
	// of each set in recency order (most recent first, btbCnt per set),
	// so a hit is found early and the LRU victim is simply the last
	// entry — observationally identical to explicit per-way age bits.
	btbSets int
	btbTag  []uint64
	btbTgt  []isa.Addr
	btbCnt  []uint8
	btbInf  map[isa.Addr]isa.Addr

	// Direction predictor: 2-bit counters indexed by pc ^ history.
	dir     []uint8
	dirMask uint64

	// Indirect: tagged target entries indexed by pc ^ history.
	indTag []uint64
	indTgt []isa.Addr
	indCnt []uint8
	indMsk uint64

	histMask uint64
}

// New builds a prediction unit.
func New(cfg Config) *Unit {
	u := &Unit{cfg: cfg}
	if cfg.BTBInfinite {
		u.btbInf = make(map[isa.Addr]isa.Addr, 1<<16)
	} else {
		u.btbSets = cfg.BTBEntries / cfg.BTBWays
		n := u.btbSets * cfg.BTBWays
		u.btbTag = make([]uint64, n)
		u.btbTgt = make([]isa.Addr, n)
		u.btbCnt = make([]uint8, u.btbSets)
	}
	u.dir = make([]uint8, 1<<cfg.GshareBits)
	for i := range u.dir {
		u.dir[i] = 2 // weakly taken
	}
	u.dirMask = uint64(len(u.dir) - 1)
	u.indTag = make([]uint64, cfg.IndirectEntries)
	u.indTgt = make([]isa.Addr, cfg.IndirectEntries)
	u.indCnt = make([]uint8, cfg.IndirectEntries)
	u.indMsk = uint64(cfg.IndirectEntries - 1)
	u.histMask = (1 << cfg.HistoryBits) - 1
	return u
}

// History is a global branch-history register. The front-end maintains a
// speculative copy at the prediction cursor and an architectural copy at
// retire, restoring the former from the latter on pipeline flushes.
type History uint64

// Update shifts a branch outcome into the history.
func (h History) Update(taken bool) History {
	h <<= 1
	if taken {
		h |= 1
	}
	return h
}

// UpdatePath folds target bits into the history for indirect correlation.
func (h History) UpdatePath(target isa.Addr) History {
	return (h << 2) ^ History(uint64(target)>>isa.BlockBits)
}

// dirIndex folds pc and history into the counter table index.
func (u *Unit) dirIndex(pc isa.Addr, h History) uint64 {
	p := uint64(pc) >> 2
	hist := uint64(h) & u.histMask
	return (p ^ (hist << 1) ^ (p >> 13)) & u.dirMask
}

// PredictDir predicts the direction of a conditional branch.
func (u *Unit) PredictDir(pc isa.Addr, h History) bool {
	return u.dir[u.dirIndex(pc, h)] >= 2
}

// TrainDir updates the direction counters with the resolved outcome.
func (u *Unit) TrainDir(pc isa.Addr, h History, taken bool) {
	i := u.dirIndex(pc, h)
	c := u.dir[i]
	if taken {
		if c < 3 {
			u.dir[i] = c + 1
		}
	} else if c > 0 {
		u.dir[i] = c - 1
	}
}

// BTBLookup returns the predicted target for a taken direct branch, if
// the BTB holds it. Without a hit, a decoupled front-end cannot follow a
// taken branch — the FDIP limitation at the heart of the paper's §2.1.
func (u *Unit) BTBLookup(pc isa.Addr) (isa.Addr, bool) {
	if u.btbInf != nil {
		t, ok := u.btbInf[pc]
		return t, ok
	}
	set := u.btbSet(pc)
	base := set * u.cfg.BTBWays
	tag := u.btbTagOf(pc)
	n := int(u.btbCnt[set])
	for w := 0; w < n; w++ {
		if u.btbTag[base+w] == tag {
			tgt := u.btbTgt[base+w]
			u.btbTouch(base, w)
			return tgt, true
		}
	}
	return 0, false
}

// BTBInsert records a resolved taken-branch target.
func (u *Unit) BTBInsert(pc, target isa.Addr) {
	if u.btbInf != nil {
		u.btbInf[pc] = target
		return
	}
	set := u.btbSet(pc)
	base := set * u.cfg.BTBWays
	tag := u.btbTagOf(pc)
	n := int(u.btbCnt[set])
	for w := 0; w < n; w++ {
		if u.btbTag[base+w] == tag {
			u.btbTgt[base+w] = target
			u.btbTouch(base, w)
			return
		}
	}
	if n == u.cfg.BTBWays {
		n-- // evict the last (least recently used) entry
	} else {
		u.btbCnt[set]++
	}
	copy(u.btbTag[base+1:base+n+1], u.btbTag[base:base+n])
	copy(u.btbTgt[base+1:base+n+1], u.btbTgt[base:base+n])
	u.btbTag[base] = tag
	u.btbTgt[base] = target
}

func (u *Unit) btbSet(pc isa.Addr) int {
	p := uint64(pc) >> 2
	return int((p ^ (p >> 11)) % uint64(u.btbSets))
}

func (u *Unit) btbTagOf(pc isa.Addr) uint64 { return uint64(pc) >> 2 }

// btbTouch moves the hit way to the front of its set's recency prefix.
func (u *Unit) btbTouch(base, way int) {
	if way == 0 {
		return
	}
	t := u.btbTag[base+way]
	g := u.btbTgt[base+way]
	copy(u.btbTag[base+1:base+way+1], u.btbTag[base:base+way])
	copy(u.btbTgt[base+1:base+way+1], u.btbTgt[base:base+way])
	u.btbTag[base] = t
	u.btbTgt[base] = g
}

// PredictIndirect predicts an indirect branch target using path history.
func (u *Unit) PredictIndirect(pc isa.Addr, h History) (isa.Addr, bool) {
	i := u.indIndex(pc, h)
	if u.indTag[i] == u.indTagOf(pc) && u.indCnt[i] > 0 {
		return u.indTgt[i], true
	}
	return 0, false
}

// TrainIndirect updates the indirect predictor with a resolved target.
func (u *Unit) TrainIndirect(pc isa.Addr, h History, target isa.Addr) {
	i := u.indIndex(pc, h)
	tag := u.indTagOf(pc)
	if u.indTag[i] == tag && u.indTgt[i] == target {
		if u.indCnt[i] < 3 {
			u.indCnt[i]++
		}
		return
	}
	if u.indCnt[i] > 0 {
		u.indCnt[i]--
		return
	}
	u.indTag[i] = tag
	u.indTgt[i] = target
	u.indCnt[i] = 1
}

func (u *Unit) indIndex(pc isa.Addr, h History) uint64 {
	p := uint64(pc) >> 2
	return (p ^ uint64(h)<<2 ^ (p >> 9)) & u.indMsk
}

func (u *Unit) indTagOf(pc isa.Addr) uint64 { return uint64(pc) >> 2 }

// RAS is a fixed-depth return address stack. Overflow wraps and silently
// clobbers the oldest entries, as hardware stacks do.
type RAS struct {
	buf []isa.Addr
	top int // index of the next push slot
	len int
}

// NewRAS builds a stack of the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{buf: make([]isa.Addr, depth)}
}

// Push records a call's return address.
func (r *RAS) Push(ret isa.Addr) {
	r.buf[r.top] = ret
	r.top = (r.top + 1) % len(r.buf)
	if r.len < len(r.buf) {
		r.len++
	}
}

// Pop predicts a return target; ok is false when the stack is empty.
func (r *RAS) Pop() (isa.Addr, bool) {
	if r.len == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.buf)) % len(r.buf)
	r.len--
	return r.buf[r.top], true
}

// Peek returns the top entry without popping it.
func (r *RAS) Peek() (isa.Addr, bool) {
	if r.len == 0 {
		return 0, false
	}
	return r.buf[(r.top-1+len(r.buf))%len(r.buf)], true
}

// CopyFrom restores this stack from another (pipeline flush repair).
func (r *RAS) CopyFrom(o *RAS) {
	copy(r.buf, o.buf)
	r.top = o.top
	r.len = o.len
}

// Depth returns the current occupancy.
func (r *RAS) Depth() int { return r.len }
