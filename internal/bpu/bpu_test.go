package bpu

import (
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/xrand"
)

func TestDirPredictorLearnsBias(t *testing.T) {
	u := New(DefaultConfig())
	pc := isa.Addr(0x40001C)
	var h History
	// Strongly taken branch: after warmup, predictions must be taken.
	for i := 0; i < 16; i++ {
		u.TrainDir(pc, h, true)
		h = h.Update(true)
	}
	if !u.PredictDir(pc, h) {
		t.Error("saturated-taken branch predicted not-taken")
	}
}

func TestDirPredictorLearnsLoopExit(t *testing.T) {
	// Fixed trip-count loop: history at the exit iteration differs from
	// mid-loop iterations, so a gshare-style predictor learns the exit.
	u := New(DefaultConfig())
	pc := isa.Addr(0x77777C)
	const trips = 5
	var h History
	train := func() {
		for i := 0; i < trips; i++ {
			taken := i < trips-1
			u.TrainDir(pc, h, taken)
			h = h.Update(taken)
		}
	}
	for r := 0; r < 50; r++ {
		train()
	}
	correct := 0
	for i := 0; i < trips; i++ {
		taken := i < trips-1
		if u.PredictDir(pc, h) == taken {
			correct++
		}
		u.TrainDir(pc, h, taken)
		h = h.Update(taken)
	}
	if correct < trips {
		t.Errorf("loop exit prediction: %d/%d correct after training", correct, trips)
	}
}

func TestBTBHitAfterInsert(t *testing.T) {
	u := New(DefaultConfig())
	if _, ok := u.BTBLookup(0x1000); ok {
		t.Error("cold BTB hit")
	}
	u.BTBInsert(0x1000, 0x2000)
	tgt, ok := u.BTBLookup(0x1000)
	if !ok || tgt != 0x2000 {
		t.Errorf("BTB lookup = %v,%v", tgt, ok)
	}
	// Re-insert with new target updates in place.
	u.BTBInsert(0x1000, 0x3000)
	if tgt, _ := u.BTBLookup(0x1000); tgt != 0x3000 {
		t.Error("BTB target not updated")
	}
}

func TestBTBCapacityEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 64
	cfg.BTBWays = 4
	u := New(cfg)
	// Insert far more branches than capacity; early ones must vanish.
	for i := 0; i < 4096; i++ {
		pc := isa.Addr(0x400000 + i*64)
		u.BTBInsert(pc, pc+4)
	}
	hits := 0
	for i := 0; i < 4096; i++ {
		pc := isa.Addr(0x400000 + i*64)
		if _, ok := u.BTBLookup(pc); ok {
			hits++
		}
	}
	if hits > 64 {
		t.Errorf("finite BTB retains %d of 4096 entries, capacity 64", hits)
	}
	if hits == 0 {
		t.Error("BTB retained nothing")
	}
}

func TestBTBLRUWithinSet(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 8
	cfg.BTBWays = 4 // 2 sets
	u := New(cfg)
	// Fill one set with 4 entries mapping to the same set, then touch
	// the first and insert a fifth: the untouched oldest must go.
	base := isa.Addr(0x1000)
	step := isa.Addr(8) // pc>>2 differing in low bits; set = hash % 2
	var sameSet []isa.Addr
	for pc := base; len(sameSet) < 5; pc += step {
		if u.btbSet(pc) == u.btbSet(base) {
			sameSet = append(sameSet, pc)
		}
	}
	for _, pc := range sameSet[:4] {
		u.BTBInsert(pc, pc+4)
	}
	if _, ok := u.BTBLookup(sameSet[0]); !ok { // refresh entry 0
		t.Fatal("expected hit")
	}
	u.BTBInsert(sameSet[4], sameSet[4]+4)
	if _, ok := u.BTBLookup(sameSet[0]); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := u.BTBLookup(sameSet[1]); ok {
		t.Error("LRU entry survived eviction")
	}
}

func TestInfiniteBTB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBInfinite = true
	u := New(cfg)
	for i := 0; i < 100000; i++ {
		pc := isa.Addr(0x400000 + i*4)
		u.BTBInsert(pc, pc+64)
	}
	for i := 0; i < 100000; i++ {
		pc := isa.Addr(0x400000 + i*4)
		if tgt, ok := u.BTBLookup(pc); !ok || tgt != pc+64 {
			t.Fatalf("infinite BTB lost entry %d", i)
		}
	}
}

func TestIndirectPredictor(t *testing.T) {
	u := New(DefaultConfig())
	pc := isa.Addr(0x500000)
	hA := History(0xAAAA)
	hB := History(0x5555)
	for i := 0; i < 8; i++ {
		u.TrainIndirect(pc, hA, 0x111000)
		u.TrainIndirect(pc, hB, 0x222000)
	}
	if tgt, ok := u.PredictIndirect(pc, hA); !ok || tgt != 0x111000 {
		t.Errorf("context A: %v,%v", tgt, ok)
	}
	if tgt, ok := u.PredictIndirect(pc, hB); !ok || tgt != 0x222000 {
		t.Errorf("context B: %v,%v", tgt, ok)
	}
}

func TestRASMatchesCallStack(t *testing.T) {
	r := NewRAS(16)
	var ref []isa.Addr
	rng := xrand.New(5)
	for i := 0; i < 10000; i++ {
		if len(ref) == 0 || (len(ref) < 12 && rng.Bool(0.55)) {
			a := isa.Addr(rng.Uint64())
			r.Push(a)
			ref = append(ref, a)
		} else {
			want := ref[len(ref)-1]
			ref = ref[:len(ref)-1]
			got, ok := r.Pop()
			if !ok || got != want {
				t.Fatalf("step %d: Pop = %v,%v want %v", i, got, ok, want)
			}
		}
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 1; i <= 6; i++ {
		r.Push(isa.Addr(i))
	}
	// Only the 4 most recent survive: 6,5,4,3.
	for want := 6; want >= 3; want-- {
		got, ok := r.Pop()
		if !ok || got != isa.Addr(want) {
			t.Fatalf("Pop = %v,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("overflowed entries resurrected")
	}
}

func TestRASCopyFrom(t *testing.T) {
	a, b := NewRAS(8), NewRAS(8)
	a.Push(0x10)
	a.Push(0x20)
	b.Push(0x99)
	b.CopyFrom(a)
	if b.Depth() != 2 {
		t.Fatalf("depth = %d", b.Depth())
	}
	if v, _ := b.Pop(); v != 0x20 {
		t.Errorf("top = %v", v)
	}
	// The copy must be independent.
	a.Push(0x30)
	if v, _ := b.Pop(); v != 0x10 {
		t.Errorf("copy aliased source: %v", v)
	}
}

func TestHistoryUpdate(t *testing.T) {
	var h History
	h = h.Update(true).Update(false).Update(true)
	if h != 0b101 {
		t.Errorf("history = %b", h)
	}
	if h.UpdatePath(0x40000) == h {
		t.Error("path update must change history")
	}
}
