// Package xrand provides the small, fast, deterministic random-number
// utilities used throughout the simulator. Every stochastic choice in the
// repository — program generation, per-function behaviour, request mixes,
// branch outcomes — flows through these helpers so that a (seed, workload)
// pair always reproduces the identical instruction stream, which is what
// makes the experiment harness and the tests deterministic.
package xrand

import "math"

// SplitMix64 advances the state and returns the next 64-bit output of the
// splitmix64 generator. It is the backbone of all derived seeds.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix returns a well-distributed 64-bit hash of the given words, used to
// derive independent sub-seeds (e.g. per-function behaviour seeds) from a
// master seed without correlation.
func Mix(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		h = SplitMix64(&h)
	}
	return h
}

// RNG is a tiny xoshiro256**-style generator. The zero value is invalid;
// construct with New.
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from the given seed via splitmix64, as the
// xoshiro authors recommend.
func New(seed uint64) *RNG {
	var r RNG
	r.Seed(seed)
	return &r
}

// Seed resets the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	for i := range r.s {
		r.s[i] = SplitMix64(&seed)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// IntN returns a uniform integer in [0, n). n must be positive.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("xrand: IntN with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform integer in [lo, hi]. Requires lo <= hi.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("xrand: Range with hi < lo")
	}
	return lo + r.IntN(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// FixedBool returns true with probability prob/65535, matching the
// fixed-point probability encoding used by program call sites and
// branch biases.
func (r *RNG) FixedBool(prob uint16) bool {
	return uint16(r.Uint64()&0xFFFF) < prob || prob == 0xFFFF
}

// Zipf draws from a discrete Zipf-like distribution over [0, n) with
// exponent s, using inverse-CDF over precomputed weights held by the
// caller. For hot-path use, prefer WeightedChoice with cached cumulative
// weights; this helper exists for small n.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse transform on the harmonic CDF computed on the fly; n is
	// small (request types, dispatch fan-outs), so the loop is cheap.
	var total float64
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
	}
	u := r.Float64() * total
	var acc float64
	for i := 1; i <= n; i++ {
		acc += 1 / math.Pow(float64(i), s)
		if u < acc {
			return i - 1
		}
	}
	return n - 1
}

// ZipfWeights returns normalised Zipf weights over [0,n) with exponent s,
// for callers that need a cached request-mix distribution.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// Cumulative converts weights into a cumulative distribution for
// WeightedChoice. The final entry is forced to 1 to absorb rounding.
func Cumulative(weights []float64) []float64 {
	c := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w
		c[i] = acc
	}
	if len(c) > 0 {
		c[len(c)-1] = 1
	}
	return c
}

// WeightedChoice draws an index from a cumulative distribution produced
// by Cumulative.
func (r *RNG) WeightedChoice(cum []float64) int {
	u := r.Float64()
	// Binary search for the first entry >= u.
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
