package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestMixIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Mix(1, i)
		if seen[h] {
			t.Fatalf("Mix collision at %d", i)
		}
		seen[h] = true
	}
	if Mix(1, 2) == Mix(2, 1) {
		t.Error("Mix is order-insensitive")
	}
}

func TestIntNBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.IntN(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		v := r.Range(10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("Range(10,20) = %d", v)
		}
	}
	if r.Range(5, 5) != 5 {
		t.Error("degenerate range must return its only value")
	}
}

func TestFloat64Distribution(t *testing.T) {
	r := New(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
}

func TestFixedBoolEdges(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if r.FixedBool(0) {
			t.Fatal("FixedBool(0) returned true")
		}
	}
	for i := 0; i < 1000; i++ {
		if !r.FixedBool(0xFFFF) {
			t.Fatal("FixedBool(max) returned false")
		}
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.FixedBool(0x8000) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.5) > 0.01 {
		t.Errorf("FixedBool(0x8000) rate = %v, want ~0.5", p)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(8, 0.9)
	var total float64
	for i := range w {
		total += w[i]
		if i > 0 && w[i] > w[i-1] {
			t.Errorf("Zipf weights not decreasing at %d", i)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("Zipf weights sum to %v", total)
	}
	u := ZipfWeights(4, 0)
	for _, v := range u {
		if math.Abs(v-0.25) > 1e-9 {
			t.Errorf("zero-exponent Zipf not uniform: %v", u)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	cum := Cumulative([]float64{0.5, 0.3, 0.2})
	r := New(17)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(cum)]++
	}
	want := []float64{0.5, 0.3, 0.2}
	for i, c := range counts {
		if p := float64(c) / n; math.Abs(p-want[i]) > 0.01 {
			t.Errorf("choice %d rate %v, want %v", i, p, want[i])
		}
	}
}

func TestZipfSmallN(t *testing.T) {
	r := New(19)
	if r.Zipf(1, 1.0) != 0 {
		t.Error("Zipf(1) must return 0")
	}
	for i := 0; i < 100; i++ {
		v := r.Zipf(5, 0.8)
		if v < 0 || v >= 5 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}
