// Package workloads defines the eleven server-application configurations
// evaluated in the paper (§6.2) — three Go web frameworks (beego, gin,
// echo), the Caddy web server, the DGraph graph database, the gorm ORM,
// and database/OLTP setups (MySQL and TiDB under sysbench, TPC-C, YCSB
// and sibench) — as presets of the synthetic program generator, scaled to
// echo each application's structural character: function counts and
// static-bundle fractions in the neighbourhood of Table 4, pipeline
// shapes following each system's request flow, and request mixes
// following each benchmark driver.
//
// Linked programs are expensive to build for the large presets (the
// static analysis walks call graphs with up to hundreds of thousands of
// functions), so Build memoises per name.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"hprefetch/internal/isa"
	"hprefetch/internal/linker"
	"hprefetch/internal/loader"
	"hprefetch/internal/program"
	"hprefetch/internal/trace"
)

// Engine is the event-stream interface a workload's engine produces:
// sim.EventSource plus the sim.RequestMarker per-request marks.
// trace.Engine satisfies it; registered workloads may substitute their
// own implementation (e.g. the microservice interleaver).
type Engine interface {
	Next() isa.BlockEvent
	Instructions() uint64
	Requests() uint64
	CurrentType() int
	Stage() int16
	Depth() int
	CurrentRequest() uint64
	RequestDone() bool
}

// Workload couples a generator preset with its driver parameters.
type Workload struct {
	// Name is the benchmark name used throughout the paper's figures.
	Name string
	// Config is the program-generator preset.
	Config program.Config
	// TraceSeed drives the request stream (fixed per workload so every
	// experiment sees the same execution).
	TraceSeed uint64
	// Generator, when non-nil, replaces program.Generate(Config) as the
	// program builder (chain workloads use program.GenerateChain).
	Generator func() (*program.Program, error)
	// EngineFactory, when non-nil, replaces trace.New as the execution
	// engine over a loaded image (the microservice suite substitutes its
	// open-loop interleaver here).
	EngineFactory func(ld *loader.Loaded, seed uint64) Engine
}

// Names returns all workload names in the paper's figure order.
func Names() []string {
	return []string{
		"beego", "caddy", "dgraph", "echo", "gin", "gorm",
		"mysql-sysbench", "tidb-sysbench", "tidb-tpcc", "mysql-ycsb", "mysql-sibench",
	}
}

// Table4Names returns the eight binaries of Table 4 (per-binary static
// statistics; the three extra driver variants share binaries).
func Table4Names() []string {
	return []string{"beego", "caddy", "dgraph", "echo", "gin", "gorm", "mysql-sysbench", "tidb-sysbench"}
}

// base returns the shared preset all workloads derive from.
func base(name string, seed uint64) program.Config {
	cfg := program.DefaultConfig()
	cfg.Name = name
	cfg.Seed = seed
	return cfg
}

// Get returns the workload preset by name: a builtin paper preset, or
// a registered extension workload.
func Get(name string) (Workload, error) {
	if w, err := builtin(name); err == nil {
		return w, nil
	}
	regMu.RLock()
	w, ok := registry[name]
	regMu.RUnlock()
	if ok {
		return w, nil
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q (known: %s)",
		name, joinNames(AllSorted()))
}

// builtin returns the paper's workload presets by name.
func builtin(name string) (Workload, error) {
	switch name {
	case "beego":
		// Full-featured Go web framework: rich middleware pipeline.
		cfg := base(name, 0xBEE60)
		cfg.RequestTypes = 9
		cfg.Stages = []program.StageSpec{
			{Name: "Read", CommonFuncs: 150},
			{Name: "Route", Diverges: true, CommonFuncs: 90, HandlerFuncs: 75},
			{Name: "Filter", CommonFuncs: 330},
			{Name: "Exec", Diverges: true, CommonFuncs: 140, HandlerFuncs: 95},
			{Name: "Render", CommonFuncs: 170},
		}
		cfg.OrphanFuncs = 34_000
		cfg.ColdTrees = 10
		cfg.ColdTreeFuncs = 420
		return Workload{Name: name, Config: cfg, TraceSeed: 11}, nil
	case "gin":
		// Minimal router, hot middleware chain, skewed endpoint mix.
		cfg := base(name, 0x61709)
		cfg.RequestTypes = 8
		cfg.TypeZipf = 0.9
		cfg.Stages = []program.StageSpec{
			{Name: "Read", CommonFuncs: 130},
			{Name: "Route", Diverges: true, CommonFuncs: 70, HandlerFuncs: 80},
			{Name: "Handle", Diverges: true, CommonFuncs: 150, HandlerFuncs: 95},
			{Name: "Render", CommonFuncs: 200},
		}
		cfg.OrphanFuncs = 34_000
		cfg.ColdTrees = 10
		cfg.ColdTreeFuncs = 420
		return Workload{Name: name, Config: cfg, TraceSeed: 13}, nil
	case "echo":
		// Echo framework: similar scale to gin, different structure.
		cfg := base(name, 0xEC40)
		cfg.RequestTypes = 10
		cfg.Stages = []program.StageSpec{
			{Name: "Read", CommonFuncs: 140},
			{Name: "Route", Diverges: true, CommonFuncs: 80, HandlerFuncs: 70},
			{Name: "Middleware", CommonFuncs: 280},
			{Name: "Handle", Diverges: true, CommonFuncs: 120, HandlerFuncs: 90},
			{Name: "Render", CommonFuncs: 160},
		}
		cfg.OrphanFuncs = 36_000
		cfg.ColdTrees = 12
		cfg.ColdTreeFuncs = 550
		return Workload{Name: name, Config: cfg, TraceSeed: 17}, nil
	case "caddy":
		// HTTP/1-2-3 server under nghttp2 load: deep protocol stages,
		// few request types.
		cfg := base(name, 0xCADD1)
		cfg.RequestTypes = 6
		cfg.TypeZipf = 0.6
		cfg.Stages = []program.StageSpec{
			{Name: "Accept", CommonFuncs: 180},
			{Name: "Decode", CommonFuncs: 260},
			{Name: "Match", Diverges: true, CommonFuncs: 100, HandlerFuncs: 90},
			{Name: "Serve", Diverges: true, CommonFuncs: 160, HandlerFuncs: 110},
			{Name: "Encode", CommonFuncs: 220},
		}
		cfg.OrphanFuncs = 50_000
		cfg.ColdTrees = 12
		cfg.ColdTreeFuncs = 600
		return Workload{Name: name, Config: cfg, TraceSeed: 19}, nil
	case "dgraph":
		// Graph database: the largest web-side binary, diverse queries.
		cfg := base(name, 0xD64A9)
		cfg.RequestTypes = 12
		cfg.Stages = []program.StageSpec{
			{Name: "Read", CommonFuncs: 160},
			{Name: "Parse", CommonFuncs: 340},
			{Name: "Plan", Diverges: true, CommonFuncs: 130, HandlerFuncs: 85},
			{Name: "Exec", Diverges: true, CommonFuncs: 190, HandlerFuncs: 105},
			{Name: "Reply", CommonFuncs: 170},
		}
		cfg.OrphanFuncs = 160_000
		cfg.OrphanTreeFuncs = 80
		cfg.ColdTrees = 16
		cfg.ColdTreeFuncs = 550
		return Workload{Name: name, Config: cfg, TraceSeed: 23}, nil
	case "gorm":
		// ORM over PostgreSQL: reflective query building, moderate size.
		cfg := base(name, 0x609101)
		cfg.RequestTypes = 7
		cfg.Stages = []program.StageSpec{
			{Name: "Bind", CommonFuncs: 170},
			{Name: "Build", Diverges: true, CommonFuncs: 110, HandlerFuncs: 90},
			{Name: "Query", CommonFuncs: 300},
			{Name: "Scan", Diverges: true, CommonFuncs: 130, HandlerFuncs: 85},
			{Name: "Finish", CommonFuncs: 140},
		}
		cfg.OrphanFuncs = 35_000
		cfg.ColdTrees = 10
		cfg.ColdTreeFuncs = 420
		return Workload{Name: name, Config: cfg, TraceSeed: 29}, nil
	case "mysql-sysbench", "mysql-ycsb", "mysql-sibench":
		// One MySQL-like binary, three drivers with different request
		// mixes (sysbench read-write, YCSB, sibench).
		cfg := base(name, 0x5153AD)
		cfg.RequestTypes = 8
		cfg.Stages = []program.StageSpec{
			{Name: "Read", CommonFuncs: 150},
			{Name: "Parse", CommonFuncs: 320},
			{Name: "Optimize", Diverges: true, CommonFuncs: 150, HandlerFuncs: 80},
			{Name: "Exec", Diverges: true, CommonFuncs: 180, HandlerFuncs: 100},
			{Name: "Commit", CommonFuncs: 160},
		}
		cfg.OrphanFuncs = 100_000
		cfg.OrphanTreeFuncs = 70
		cfg.ColdTrees = 14
		cfg.ColdTreeFuncs = 500
		var seed uint64
		switch name {
		case "mysql-sysbench":
			cfg.TypeZipf = 0.55
			seed = 31
		case "mysql-ycsb":
			cfg.TypeZipf = 0.99 // YCSB's zipfian default
			seed = 37
		default: // sibench
			cfg.TypeZipf = 0.3
			seed = 41
		}
		return Workload{Name: name, Config: cfg, TraceSeed: seed}, nil
	case "tidb-sysbench", "tidb-tpcc":
		// TiDB: the largest binary, the Figure 1 pipeline.
		cfg := base(name, 0x71DB)
		cfg.RequestTypes = 10
		cfg.Stages = []program.StageSpec{
			{Name: "Read", CommonFuncs: 160},
			{Name: "Dispatch", Diverges: true, CommonFuncs: 90, HandlerFuncs: 75},
			{Name: "Compile", CommonFuncs: 420},
			{Name: "Exec", Diverges: true, CommonFuncs: 150, HandlerFuncs: 95},
			{Name: "Finish", CommonFuncs: 150},
		}
		cfg.OrphanFuncs = 420_000
		cfg.OrphanTreeFuncs = 90
		cfg.ColdTrees = 20
		cfg.ColdTreeFuncs = 600
		seed := uint64(43)
		if name == "tidb-tpcc" {
			cfg.TypeZipf = 0.45 // TPC-C's fixed transaction mix
			seed = 47
		}
		return Workload{Name: name, Config: cfg, TraceSeed: seed}, nil
	}
	return Workload{}, fmt.Errorf("workloads: unknown builtin workload %q", name)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
)

// Register adds a workload preset to the registry, making it reachable
// by name through Get/Build and therefore through every harness,
// service, fleet and trace path. Builtin names and duplicates are
// rejected.
func Register(w Workload) error {
	if w.Name == "" {
		return fmt.Errorf("workloads: cannot register a workload without a name")
	}
	if _, err := builtin(w.Name); err == nil {
		return fmt.Errorf("workloads: %q collides with a builtin workload", w.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[w.Name]; dup {
		return fmt.Errorf("workloads: %q is already registered", w.Name)
	}
	registry[w.Name] = w
	return nil
}

// Registered returns the registered (non-builtin) workload names,
// sorted — never in map iteration order, so -list output and error
// messages are stable across processes.
func Registered() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}

// AllSorted returns every known workload name — the paper's eleven plus
// everything registered — sorted alphabetically.
func AllSorted() []string {
	all := append(Names(), Registered()...)
	sort.Strings(all)
	return all
}

// joinNames renders a name list for error messages.
func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Built is a generated, linked, loadable workload.
type Built struct {
	Workload Workload
	Linked   *linker.Linked
	Loaded   *loader.Loaded
}

// NewEngine creates a fresh deterministic execution engine for the
// workload (same stream every call).
func (b *Built) NewEngine() Engine {
	return b.EngineOver(b.Loaded)
}

// EngineOver creates the workload's engine over an alternative loaded
// image (e.g. the fault-degraded loader path), honouring the workload's
// engine factory.
func (b *Built) EngineOver(ld *loader.Loaded) Engine {
	if b.Workload.EngineFactory != nil {
		return b.Workload.EngineFactory(ld, b.Workload.TraceSeed)
	}
	return trace.New(ld, b.Workload.TraceSeed)
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Built{}
)

// Build generates, links and loads a workload, memoising the result: the
// large presets take seconds to analyse and every experiment reuses them.
func Build(name string) (*Built, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if b, ok := cache[name]; ok {
		return b, nil
	}
	w, err := Get(name)
	if err != nil {
		return nil, err
	}
	gen := w.Generator
	if gen == nil {
		gen = func() (*program.Program, error) { return program.Generate(w.Config) }
	}
	p, err := gen()
	if err != nil {
		return nil, fmt.Errorf("workloads %s: %w", name, err)
	}
	l, err := linker.Link(p, linker.Options{})
	if err != nil {
		return nil, fmt.Errorf("workloads %s: %w", name, err)
	}
	b := &Built{Workload: w, Linked: l, Loaded: loader.LoadLinked(p, l.Image)}
	cache[name] = b
	return b, nil
}

// DropCache releases all memoised workloads (tests and memory-sensitive
// tools).
func DropCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cache = map[string]*Built{}
}

// SortedNames returns Names() sorted alphabetically, for stable table
// output where the paper's order is not required.
func SortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
