package workloads

import (
	"testing"

	"hprefetch/internal/isa"
)

func TestAllPresetsResolve(t *testing.T) {
	for _, n := range Names() {
		w, err := Get(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if w.Name != n || w.Config.Name != n {
			t.Errorf("%s: name mismatch", n)
		}
		if err := w.Config.Validate(); err != nil {
			t.Errorf("%s: invalid config: %v", n, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestBuildUnknownNameErrors(t *testing.T) {
	if _, err := Build("nope"); err == nil {
		t.Error("Build accepted an unknown workload name")
	}
}

func TestBuildSmallPresetAndMemoise(t *testing.T) {
	a, err := Build("gin")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("gin")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Build not memoised")
	}
	if a.Loaded.Tags.Len() == 0 {
		t.Error("no tagged instructions")
	}
	// Entry fraction in a plausible band around the paper's 2.3-6.1%.
	frac := float64(len(a.Linked.Analysis.Entries)) / float64(a.Loaded.Prog.NumFuncs())
	if frac < 0.003 || frac > 0.15 {
		t.Errorf("gin entry fraction %.4f outside plausible band", frac)
	}
}

func TestEnginesAreIndependentAndDeterministic(t *testing.T) {
	b, err := Build("gorm")
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := b.NewEngine(), b.NewEngine()
	for i := 0; i < 50_000; i++ {
		a, bb := e1.Next(), e2.Next()
		if a != bb {
			t.Fatalf("engines diverged at event %d", i)
		}
	}
}

func TestMySQLVariantsShareBinaryShape(t *testing.T) {
	// The three mysql drivers model one binary: same structural seed,
	// same function count, different request mixes.
	a, err := Build("mysql-sysbench")
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Build("mysql-ycsb")
	if err != nil {
		t.Fatal(err)
	}
	if a.Loaded.Prog.NumFuncs() != bb.Loaded.Prog.NumFuncs() {
		t.Error("mysql variants differ structurally")
	}
	wa, _ := Get("mysql-sysbench")
	wb, _ := Get("mysql-ycsb")
	if wa.Config.TypeZipf == wb.Config.TypeZipf {
		t.Error("mysql variants share the same request mix")
	}
}

func TestTable4NamesSubset(t *testing.T) {
	all := map[string]bool{}
	for _, n := range Names() {
		all[n] = true
	}
	for _, n := range Table4Names() {
		if !all[n] {
			t.Errorf("Table 4 name %s not a workload", n)
		}
	}
	if len(Table4Names()) != 8 {
		t.Errorf("Table 4 has 8 binaries, got %d", len(Table4Names()))
	}
	if len(SortedNames()) != len(Names()) {
		t.Error("SortedNames dropped entries")
	}
}

func TestDropCache(t *testing.T) {
	a, err := Build("gin")
	if err != nil {
		t.Fatal(err)
	}
	DropCache()
	b, err := Build("gin")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("DropCache kept the old build")
	}
	// Identical regardless of cache state.
	if a.Loaded.Prog.TextSize != b.Loaded.Prog.TextSize {
		t.Error("rebuild differs")
	}
	_ = isa.Addr(0)
}
