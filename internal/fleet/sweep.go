package fleet

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hprefetch/internal/harness"
	"hprefetch/internal/service"
	"hprefetch/internal/workloads"
)

// SweepSpec names the cross product a sweep simulates: every workload ×
// every scheme, one job per pair.
type SweepSpec struct {
	// Workloads to sweep (empty = all).
	Workloads []string `json:"workloads,omitempty"`
	// Schemes to sweep (empty = the figure-order scheme list).
	Schemes []string `json:"schemes,omitempty"`
	// Quick selects the scaled-down smoke configuration.
	Quick bool `json:"quick,omitempty"`
	// WarmInstr / MeasureInstr override run length (0 keeps defaults).
	WarmInstr    uint64 `json:"warm_instr,omitempty"`
	MeasureInstr uint64 `json:"measure_instr,omitempty"`
	// CorpusDir resolves jobs through a local content-addressed trace
	// corpus (self-healing replay; see internal/corpus). It applies to
	// in-process execution (RunLocal) only and is never forwarded to
	// backends — each hpserved names its own store via -corpus, since a
	// coordinator has no business dictating backend filesystem paths.
	CorpusDir string `json:"-"`
}

// withDefaults resolves the empty axes.
func (sp SweepSpec) withDefaults() SweepSpec {
	if len(sp.Workloads) == 0 {
		sp.Workloads = workloads.Names()
	}
	if len(sp.Schemes) == 0 {
		for _, sc := range harness.Schemes() {
			sp.Schemes = append(sp.Schemes, string(sc))
		}
	}
	return sp
}

// Validate rejects unknown workloads and schemes at submission, and
// duplicate axis entries (a duplicated key would make "every job
// exactly once" ambiguous).
func (sp SweepSpec) Validate() error {
	sp = sp.withDefaults()
	seenW := map[string]bool{}
	for _, w := range sp.Workloads {
		if _, err := workloads.Get(w); err != nil {
			return err
		}
		if seenW[w] {
			return fmt.Errorf("duplicate workload %q in sweep", w)
		}
		seenW[w] = true
	}
	valid := map[string]bool{}
	for _, sc := range harness.AllSchemes() {
		valid[string(sc)] = true
	}
	seenS := map[string]bool{}
	for _, sc := range sp.Schemes {
		if !valid[sc] {
			return fmt.Errorf("unknown scheme %q (known: %s)", sc, harness.SchemeNames())
		}
		if seenS[sc] {
			return fmt.Errorf("duplicate scheme %q in sweep", sc)
		}
		seenS[sc] = true
	}
	return nil
}

// Keys expands the spec into its job keys, workload-major — the order
// rows and columns appear in the aggregated table.
func (sp SweepSpec) Keys() []string {
	sp = sp.withDefaults()
	out := make([]string, 0, len(sp.Workloads)*len(sp.Schemes))
	for _, w := range sp.Workloads {
		for _, sc := range sp.Schemes {
			out = append(out, JobKey(w, sc))
		}
	}
	return out
}

// JobKey names one (workload, scheme) job; the inverse is SplitKey.
// The key doubles as the consistent-hash routing input, so the same
// pair always prefers the same backend across sweeps and coordinator
// lives.
func JobKey(workload, scheme string) string { return workload + "/" + scheme }

// SplitKey splits a job key back into its pair.
func SplitKey(key string) (workload, scheme string, err error) {
	i := strings.IndexByte(key, '/')
	if i <= 0 || i == len(key)-1 {
		return "", "", fmt.Errorf("malformed job key %q", key)
	}
	return key[:i], key[i+1:], nil
}

// runConfig resolves the spec into the harness configuration — the SAME
// resolution hpserved performs for a RunRequest carrying these fields,
// so a local run and a fleet run simulate identical machines.
func (sp SweepSpec) runConfig() harness.RunConfig {
	rc := harness.DefaultRunConfig()
	if sp.Quick {
		rc = harness.QuickRunConfig()
		rc.Workloads = nil
	}
	if sp.WarmInstr > 0 {
		rc.WarmInstr = sp.WarmInstr
	}
	if sp.MeasureInstr > 0 {
		rc.MeasureInstr = sp.MeasureInstr
	}
	rc.CorpusDir = sp.CorpusDir
	return rc
}

// jobRequest is the RunRequest a backend receives for one job of this
// sweep.
func (sp SweepSpec) jobRequest(workload, scheme string) service.RunRequest {
	return service.RunRequest{
		Workload:     workload,
		Scheme:       scheme,
		Quick:        sp.Quick,
		WarmInstr:    sp.WarmInstr,
		MeasureInstr: sp.MeasureInstr,
	}
}

// specRequest is the journal form of the whole sweep (Kind "sweep").
func (sp SweepSpec) specRequest() service.RunRequest {
	return service.RunRequest{
		Workloads:    sp.Workloads,
		Schemes:      sp.Schemes,
		Quick:        sp.Quick,
		WarmInstr:    sp.WarmInstr,
		MeasureInstr: sp.MeasureInstr,
	}
}

// specFromRequest inverts specRequest for journal replay.
func specFromRequest(req service.RunRequest) SweepSpec {
	return SweepSpec{
		Workloads:    req.Workloads,
		Schemes:      req.Schemes,
		Quick:        req.Quick,
		WarmInstr:    req.WarmInstr,
		MeasureInstr: req.MeasureInstr,
	}
}

// RunLocal executes the whole sweep in-process through the shared
// harness Runner — the single-node reference a fleet run must match
// byte for byte. Used by hpsim -sweep and by tests cross-checking
// coordinator output.
func RunLocal(ctx context.Context, sp SweepSpec) (*harness.Table, error) {
	sp = sp.withDefaults()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	rc := sp.runConfig()
	results := map[string]*service.RunResult{}
	for _, w := range sp.Workloads {
		for _, sc := range sp.Schemes {
			res, err := service.ComputeRunResult(ctx, w, sc, rc)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", JobKey(w, sc), err)
			}
			results[JobKey(w, sc)] = res
		}
	}
	return SweepTable(sp, results)
}

// SweepTable aggregates per-job results into the sweep's table: one row
// per workload, one IPC column per scheme, and a note per job recording
// its stats digest — so byte-comparing two renderings compares every
// digest too. Formatting is fixed here and nowhere else; a table built
// from local results and one built from fleet-returned results are
// byte-identical whenever the underlying runs were (JSON round-trips
// float64 exactly).
func SweepTable(sp SweepSpec, results map[string]*service.RunResult) (*harness.Table, error) {
	sp = sp.withDefaults()
	t := &harness.Table{
		ID:     "sweep",
		Title:  "Sweep: IPC by workload and scheme",
		Header: append([]string{"Workload"}, sp.Schemes...),
	}
	for _, w := range sp.Workloads {
		row := []string{w}
		for _, sc := range sp.Schemes {
			key := JobKey(w, sc)
			res, ok := results[key]
			if !ok || res == nil {
				return nil, fmt.Errorf("sweep table: missing result for %s", key)
			}
			row = append(row, fmt.Sprintf("%.4f", res.IPC))
		}
		t.Rows = append(t.Rows, row)
	}
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.Notes = append(t.Notes, fmt.Sprintf("digest %s = %s", k, results[k].StatsDigest))
	}
	return t, nil
}
