package fleet

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hprefetch/internal/harness"
	"hprefetch/internal/service"
	"hprefetch/internal/xrand"
)

// Config sizes a Coordinator. Backends is the only required field.
type Config struct {
	// Backends are the hpserved base URLs the fleet dispatches to.
	Backends []string
	// Vnodes is the consistent-hash virtual-node count per backend
	// (default 64).
	Vnodes int

	// JournalPath enables coordinator crash recovery through the same
	// write-ahead journal format hpserved uses: sweep submissions,
	// per-job backend assignments, and sweep completions are logged, and
	// a restarted coordinator re-runs the sweeps that were in flight —
	// preferring the journaled backend per job, whose result cache the
	// lost life already warmed. Empty disables durability.
	JournalPath string

	// Retry shapes the redispatch backoff (decorrelated jitter, same
	// policy the server applies to its own retries); RetrySeed fixes the
	// jitter stream.
	Retry     service.RetryPolicy
	RetrySeed uint64
	// MaxAttempts bounds dispatch attempts per job across all backends
	// (default 4).
	MaxAttempts int

	// HedgeAfter launches a second dispatch of a still-running job on
	// the next healthy backend after this delay; first terminal result
	// wins, the loser is cancelled. 0 disables hedging.
	HedgeAfter time.Duration

	// QuorumFraction double-runs this fraction of jobs (deterministic
	// per-key sample seeded by QuorumSeed) on a second backend and fails
	// the job loudly when the two stats digests disagree — a continuous
	// cross-machine reproducibility audit. 0 disables; fleets of one
	// backend skip quorum regardless.
	QuorumFraction float64
	QuorumSeed     uint64

	// ProbeInterval is the health-probe period feeding each backend's
	// circuit breaker (default 2s; negative disables probing).
	ProbeInterval time.Duration

	// MaxInFlight bounds concurrently dispatched jobs (default
	// 2×backends).
	MaxInFlight int

	// Breaker knobs for per-backend health (fleet-tuned defaults:
	// window 16, min 3, threshold 0.6, cooldown 3s — a fleet should
	// re-route faster than an admission controller sheds).
	BreakerWindow     int
	BreakerMinSamples int
	BreakerThreshold  float64
	BreakerCooldown   time.Duration

	// HTTP overrides the backend HTTP client (tests).
	HTTP *http.Client
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * len(c.Backends)
		if c.MaxInFlight < 2 {
			c.MaxInFlight = 2
		}
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 16
	}
	if c.BreakerMinSamples <= 0 {
		c.BreakerMinSamples = 3
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 0.6
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 3 * time.Second
	}
	return c
}

// Coordinator shards sweeps across the backend fleet. Create with New,
// expose via Handler, stop with Close.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	clients map[string]*Client
	health  map[string]*service.Breaker
	metrics *Metrics
	journal *service.Journal
	start   time.Time

	nextID   atomic.Uint64
	retryMu  sync.Mutex
	retryRNG *xrand.RNG

	mu     sync.Mutex
	sweeps map[string]*Sweep
	order  []string

	sem       chan struct{}
	ctx       context.Context
	cancel    context.CancelFunc
	draining  atomic.Bool
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Coordinator over the configured backends, replays its
// journal (when configured) — restarting every sweep that was in flight
// when the previous life died — and starts the health prober.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ring := NewRing(cfg.Backends, cfg.Vnodes)
	if len(ring.Backends()) == 0 {
		return nil, fmt.Errorf("fleet: no backends configured")
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:      cfg,
		ring:     ring,
		clients:  map[string]*Client{},
		health:   map[string]*service.Breaker{},
		metrics:  &Metrics{},
		retryRNG: xrand.New(xrand.Mix(cfg.RetrySeed, 0xF1EE7)),
		sweeps:   map[string]*Sweep{},
		sem:      make(chan struct{}, cfg.MaxInFlight),
		ctx:      ctx,
		cancel:   cancel,
		start:    time.Now(),
	}
	for _, b := range ring.Backends() {
		c.clients[b] = newClient(b, cfg.HTTP)
		c.health[b] = service.NewBreaker(cfg.BreakerWindow, cfg.BreakerMinSamples,
			cfg.BreakerThreshold, cfg.BreakerCooldown)
	}

	if cfg.JournalPath != "" {
		jl, pending, maxSeq, err := service.OpenJournal(cfg.JournalPath)
		if err != nil {
			cancel()
			return nil, err
		}
		c.journal = jl
		c.nextID.Store(maxSeq)
		for _, rj := range pending {
			if rj.Kind != "sweep" {
				// A foreign journal (hpserved's own) — refuse rather than
				// silently dropping someone's jobs.
				jl.Close() //nolint:errcheck // refusing startup anyway
				cancel()
				return nil, fmt.Errorf("fleet: journal %s holds a pending %q job (%s); it belongs to an hpserved instance, not a coordinator",
					cfg.JournalPath, rj.Kind, rj.ID)
			}
			spec := specFromRequest(rj.Req)
			sw := c.newSweep(rj.ID, spec, rj.Assignments)
			c.metrics.SweepsReplayed.Add(1)
			c.startSweep(sw)
		}
	}

	if cfg.ProbeInterval > 0 {
		c.wg.Add(1)
		go c.prober()
	}
	return c, nil
}

// Metrics exposes the coordinator's counters (tests and embedders).
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// Sweep returns a sweep by id (embedders awaiting replayed sweeps).
func (c *Coordinator) Sweep(id string) (*Sweep, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[id]
	return sw, ok
}

// Sweeps lists every known sweep id, submission order.
func (c *Coordinator) Sweeps() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Close stops dispatching, cancels in-flight work, and seals the
// journal. Like hpserved, sweeps cut short by Close are NOT journaled
// terminal: they stay pending and replay when a coordinator reopens the
// same journal.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		c.draining.Store(true)
		c.cancel()
	})
	c.wg.Wait()
	if c.journal != nil {
		c.journal.Close() //nolint:errcheck // sticky error already counted
	}
}

// prober feeds each backend's breaker with periodic health checks, so
// a dead backend opens its breaker even when no dispatch is touching
// it, and a recovered backend's half-open probe can succeed without
// risking a real job.
func (c *Coordinator) prober() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			for b, br := range c.health {
				// Allow gates the probe exactly like a dispatch: in the
				// half-open state only one in-flight admission exists, and
				// this probe may be it.
				if ok, _ := br.Allow(); !ok {
					continue
				}
				ctx, cancel := context.WithTimeout(c.ctx, c.cfg.ProbeInterval)
				err := c.clients[b].Healthz(ctx)
				cancel()
				if err != nil {
					c.metrics.ProbeFailures.Add(1)
				}
				br.Record(err != nil)
			}
		}
	}
}

// Submit validates and admits a sweep, journals it, and starts its
// dispatch fan-out. The returned Sweep reports progress via View and
// completion via Done.
func (c *Coordinator) Submit(spec SweepSpec) (*Sweep, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	select {
	case <-c.ctx.Done():
		return nil, fmt.Errorf("fleet: coordinator is shutting down")
	default:
	}
	id := fmt.Sprintf("swp-%06d", c.nextID.Add(1))
	spec = spec.withDefaults()
	if c.journal != nil {
		if err := c.journal.AppendSubmit(id, "sweep", spec.specRequest()); err != nil {
			c.metrics.JournalErrors.Add(1)
			return nil, fmt.Errorf("fleet: journal append: %w", err)
		}
	}
	sw := c.newSweep(id, spec, nil)
	c.metrics.SweepsAccepted.Add(1)
	c.startSweep(sw)
	return sw, nil
}

// newSweep registers a sweep and its job set. replayAssign carries the
// journaled backend per key for recovered sweeps (nil otherwise).
func (c *Coordinator) newSweep(id string, spec SweepSpec, replayAssign map[string]string) *Sweep {
	spec = spec.withDefaults()
	sw := &Sweep{
		ID:           id,
		Spec:         spec,
		jobs:         map[string]*sweepJob{},
		keys:         spec.Keys(),
		state:        service.JobRunning,
		submitted:    time.Now(),
		replayAssign: replayAssign,
		done:         make(chan struct{}),
	}
	for _, key := range sw.keys {
		w, sc, _ := SplitKey(key)
		sw.jobs[key] = &sweepJob{key: key, workload: w, scheme: sc, state: service.JobQueued}
	}
	c.mu.Lock()
	c.sweeps[id] = sw
	c.order = append(c.order, id)
	c.mu.Unlock()
	return sw
}

// startSweep fans the sweep's jobs out to the fleet in a background
// goroutine and settles the sweep when the last job lands.
func (c *Coordinator) startSweep(sw *Sweep) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		var jobs sync.WaitGroup
		for _, key := range sw.keys {
			jb := sw.jobs[key]
			jobs.Add(1)
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				defer jobs.Done()
				select {
				case c.sem <- struct{}{}:
					defer func() { <-c.sem }()
				case <-c.ctx.Done():
					sw.failJob(jb, "coordinator shutting down")
					return
				}
				c.runJob(sw, jb)
			}()
		}
		jobs.Wait()
		c.settleSweep(sw)
	}()
}

// settleSweep assembles the final table (all jobs done) or marks the
// sweep failed, and journals the terminal transition — unless the
// coordinator is draining, in which case the sweep stays pending in the
// journal and replays on restart.
func (c *Coordinator) settleSweep(sw *Sweep) {
	results := map[string]*service.RunResult{}
	failed := ""
	sw.mu.Lock()
	for _, key := range sw.keys {
		jb := sw.jobs[key]
		if jb.state == service.JobDone && jb.result != nil {
			results[key] = jb.result
		} else if failed == "" {
			failed = fmt.Sprintf("%s: %s", key, jb.err)
		}
	}
	sw.mu.Unlock()

	var tbl *harness.Table
	var err error
	if failed == "" {
		tbl, err = SweepTable(sw.Spec, results)
		if err != nil {
			failed = err.Error()
		}
	}

	sw.mu.Lock()
	if failed == "" {
		sw.state = service.JobDone
		sw.table = tbl
		sw.tableText = tbl.String()
		sw.tableDigest = tbl.Digest()
	} else {
		sw.state = service.JobFailed
		sw.errMsg = failed
	}
	sw.finished = time.Now()
	digest := sw.tableDigest
	state := sw.state
	errMsg := sw.errMsg
	close(sw.done)
	sw.mu.Unlock()

	if state == service.JobDone {
		c.metrics.SweepsDone.Add(1)
	} else {
		c.metrics.SweepsFailed.Add(1)
	}
	if c.journal != nil && !c.draining.Load() {
		if err := c.journal.AppendFinish(sw.ID, state, errMsg, digest); err != nil {
			c.metrics.JournalErrors.Add(1)
		}
	}
}

// runJob drives one (workload, scheme) job to a terminal state:
// consistent-hash routing with failover down the preference list,
// decorrelated-jitter backoff between redispatches, optional hedging,
// and the digest-quorum cross-check.
func (c *Coordinator) runJob(sw *Sweep, jb *sweepJob) {
	prefs := c.ring.Order(jb.key)
	// A recovering coordinator prefers the journaled backend: its cache
	// already holds this job's result from the previous life.
	if b, ok := sw.replayAssign[jb.key]; ok {
		prefs = promote(prefs, b)
	}
	req := sw.Spec.jobRequest(jb.workload, jb.scheme)

	sw.mu.Lock()
	jb.state = service.JobRunning
	sw.mu.Unlock()

	var prev time.Duration
	var lastErr string
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if c.ctx.Err() != nil {
			sw.failJob(jb, "coordinator shutting down")
			return
		}
		if attempt > 0 {
			c.metrics.JobsRedispatched.Add(1)
			prev = c.nextBackoff(prev)
			select {
			case <-time.After(prev):
			case <-c.ctx.Done():
				sw.failJob(jb, "coordinator shutting down")
				return
			}
		}
		backend := c.pickBackend(prefs, attempt, nil)
		if backend == "" {
			lastErr = "no healthy backend"
			continue
		}
		sw.noteAttempt(jb, backend)
		c.journalAssign(sw.ID, jb.key, backend)

		winner, view, err := c.dispatchHedged(sw, jb, backend, prefs, req)
		switch {
		case err == nil && view.State == service.JobDone && view.Result != nil:
			if !c.quorumCheck(sw, jb, winner, prefs, req, view.Result) {
				return // quorumCheck already failed the job loudly
			}
			sw.completeJob(jb, winner, view.Result)
			c.metrics.JobsDone.Add(1)
			return
		case err == nil:
			// The backend answered but the job failed there (it already
			// burned its own retry budget); try the next backend.
			lastErr = fmt.Sprintf("%s on %s: %s", view.State, winner, view.Error)
			// A shard failing on a corrupt or quarantined trace artifact
			// means shared corpus storage is suspect for this job; the
			// redispatch bypasses the corpus entirely and records live,
			// which produces the identical digest.
			if !req.NoCorpus && corpusFailure(view.Error) {
				req.NoCorpus = true
				c.metrics.CorpusFallbacks.Add(1)
			}
		default:
			lastErr = err.Error()
		}
	}
	sw.failJob(jb, fmt.Sprintf("exhausted %d dispatch attempts: %s", c.cfg.MaxAttempts, lastErr))
	c.metrics.JobsFailed.Add(1)
}

// corpusFailure reports whether a backend's job error names trace
// corruption or a quarantined corpus artifact — the failure classes the
// coordinator routes around by re-dispatching the job corpus-free.
func corpusFailure(msg string) bool {
	return strings.Contains(msg, "corrupt trace") ||
		strings.Contains(msg, "quarantine")
}

// nextBackoff draws the next redispatch delay from the shared jitter
// stream.
func (c *Coordinator) nextBackoff(prev time.Duration) time.Duration {
	c.retryMu.Lock()
	defer c.retryMu.Unlock()
	return c.cfg.Retry.Next(c.retryRNG, prev)
}

// pickBackend walks the preference list starting at rotation offset,
// returning the first backend whose breaker admits (skipping exclude).
// Allow doubles as the half-open probe claim: a dispatch through a
// recovering backend IS its probe, and its Record resolves it.
func (c *Coordinator) pickBackend(prefs []string, offset int, exclude map[string]bool) string {
	for i := 0; i < len(prefs); i++ {
		b := prefs[(offset+i)%len(prefs)]
		if exclude[b] {
			continue
		}
		if ok, _ := c.health[b].Allow(); ok {
			return b
		}
	}
	return ""
}

// dispatchHedged submits the job to primary and, if HedgeAfter elapses
// without a terminal result, to the next healthy backend as well. The
// first arm to return a terminal result wins; the loser's context is
// cancelled and its backend job best-effort cancelled. Every arm's
// outcome feeds its backend's health breaker.
func (c *Coordinator) dispatchHedged(sw *Sweep, jb *sweepJob, primary string, prefs []string, req service.RunRequest) (string, service.JobView, error) {
	type outcome struct {
		backend string
		view    service.JobView
		err     error
	}
	dctx, cancelAll := context.WithCancel(c.ctx)
	defer cancelAll()
	results := make(chan outcome, 2)

	launch := func(backend string) {
		go func() {
			view, err := c.dispatchOne(dctx, backend, req)
			results <- outcome{backend, view, err}
		}()
	}
	c.metrics.JobsDispatched.Add(1)
	launch(primary)
	launched := 1

	var hedgeTimer <-chan time.Time
	if c.cfg.HedgeAfter > 0 && len(prefs) > 1 {
		hedgeTimer = time.After(c.cfg.HedgeAfter)
	}

	var firstLoss *outcome
	for {
		select {
		case o := <-results:
			won := o.err == nil && o.view.State == service.JobDone
			if won {
				if o.backend != primary {
					c.metrics.HedgeWins.Add(1)
				}
				return o.backend, o.view, o.err
			}
			if launched == 2 && firstLoss == nil {
				// One arm failed; the other may still win.
				firstLoss = &o
				continue
			}
			return o.backend, o.view, o.err
		case <-hedgeTimer:
			hedgeTimer = nil
			if b := c.pickBackend(prefs, 0, map[string]bool{primary: true}); b != "" {
				c.metrics.Hedges.Add(1)
				sw.noteHedge(jb, b)
				launch(b)
				launched++
			}
		case <-dctx.Done():
			return primary, service.JobView{}, dctx.Err()
		}
	}
}

// dispatchOne runs submit→await against one backend and feeds its
// health breaker: transport failures and shed responses count against
// the backend; a well-formed answer (even "your job failed") counts
// for it. A cancelled context records nothing — hedging losers must
// not poison a healthy backend's window.
func (c *Coordinator) dispatchOne(ctx context.Context, backend string, req service.RunRequest) (service.JobView, error) {
	cl := c.clients[backend]
	view, err := cl.SubmitRun(ctx, req)
	if err == nil {
		id := view.ID
		view, err = cl.Await(ctx, id)
		if ctx.Err() != nil && id != "" {
			// Lost a hedge race (or the coordinator is closing): stop the
			// backend's copy so its worker frees up.
			cl.Cancel(context.Background(), id)
		}
	}
	if ctx.Err() != nil {
		return view, ctx.Err()
	}
	c.health[backend].Record(err != nil)
	return view, err
}

// quorumCheck double-runs a deterministic sample of jobs on a second
// backend and compares stats digests. Returns false after failing the
// job when verification found a mismatch or could not complete — both
// are loud by design: a digest divergence between two backends means
// non-determinism or corruption somewhere, and silence would bury it.
func (c *Coordinator) quorumCheck(sw *Sweep, jb *sweepJob, primary string, prefs []string, req service.RunRequest, res *service.RunResult) bool {
	if c.cfg.QuorumFraction <= 0 || len(prefs) < 2 || !c.quorumSampled(jb.key) {
		return true
	}
	c.metrics.QuorumRuns.Add(1)

	var lastErr string
	var prev time.Duration
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			prev = c.nextBackoff(prev)
			select {
			case <-time.After(prev):
			case <-c.ctx.Done():
				sw.failJob(jb, "coordinator shutting down during quorum verification")
				c.metrics.JobsFailed.Add(1)
				return false
			}
		}
		backend := c.pickBackend(prefs, attempt, map[string]bool{primary: true})
		if backend == "" {
			lastErr = "no healthy second backend"
			continue
		}
		sw.noteQuorum(jb, backend)
		view, err := c.dispatchOne(c.ctx, backend, req)
		if err != nil || view.State != service.JobDone || view.Result == nil {
			if err != nil {
				lastErr = err.Error()
			} else {
				lastErr = fmt.Sprintf("%s on %s: %s", view.State, backend, view.Error)
			}
			continue
		}
		if view.Result.StatsDigest != res.StatsDigest {
			c.metrics.QuorumMismatches.Add(1)
			sw.failJob(jb, fmt.Sprintf(
				"digest quorum MISMATCH for %s: %s reported %s, %s reported %s — backends disagree on a deterministic run",
				jb.key, primary, res.StatsDigest, backend, view.Result.StatsDigest))
			c.metrics.JobsFailed.Add(1)
			return false
		}
		return true
	}
	sw.failJob(jb, fmt.Sprintf("digest quorum for %s could not complete a verification run: %s", jb.key, lastErr))
	c.metrics.JobsFailed.Add(1)
	return false
}

// quorumSampled deterministically selects the quorum sample: stable
// across coordinator restarts (the seed is configuration) so a
// recovered sweep re-verifies the same keys.
func (c *Coordinator) quorumSampled(key string) bool {
	h := hash64(fmt.Sprintf("quorum|%d|%s", c.cfg.QuorumSeed, key))
	return float64(h%1_000_000) < c.cfg.QuorumFraction*1_000_000
}

// journalAssign records a job → backend routing decision (best effort).
func (c *Coordinator) journalAssign(sweepID, key, backend string) {
	if c.journal == nil {
		return
	}
	if err := c.journal.AppendAssign(sweepID, key, backend); err != nil {
		c.metrics.JournalErrors.Add(1)
	}
}

// promote moves b to the front of prefs (no-op when absent).
func promote(prefs []string, b string) []string {
	for i, p := range prefs {
		if p == b {
			out := make([]string, 0, len(prefs))
			out = append(out, b)
			out = append(out, prefs[:i]...)
			return append(out, prefs[i+1:]...)
		}
	}
	return prefs
}
