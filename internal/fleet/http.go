package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hprefetch/internal/service"
)

// Handler returns the coordinator's HTTP API:
//
//	POST /v1/sweeps           submit a sweep (SweepSpec body)
//	GET  /v1/sweeps           list sweeps (newest first)
//	GET  /v1/sweeps/{id}      poll a sweep (?wait=5s long-polls)
//	GET  /healthz             coordinator + per-backend breaker state
//	GET  /metrics             fleet counters (JSON)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", c.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps", c.handleListSweeps)
	mux.HandleFunc("GET /v1/sweeps/{id}", c.handlePollSweep)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(strings.TrimSpace(string(data))) > 0 {
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
			return
		}
	}
	sw, err := c.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+sw.ID)
	writeJSON(w, http.StatusAccepted, sw.View())
}

func (c *Coordinator) handlePollSweep(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	sw, ok := c.sweeps[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, err := time.ParseDuration(waitSpec)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait duration %q: %v", waitSpec, err)
			return
		}
		if d > 30*time.Second {
			d = 30 * time.Second
		}
		select {
		case <-sw.Done():
		case <-time.After(d):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, sw.View())
}

func (c *Coordinator) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	views := make([]SweepView, 0, len(c.order))
	for i := len(c.order) - 1; i >= 0; i-- {
		views = append(views, c.sweeps[c.order[i]].View())
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": views})
}

// BackendHealth snapshots every backend's breaker.
func (c *Coordinator) BackendHealth() map[string]service.BreakerStatus {
	out := map[string]service.BreakerStatus{}
	for b, br := range c.health {
		out[b] = br.Status()
	}
	return out
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"role":      "coordinator",
		"backends":  c.BackendHealth(),
		"journal":   c.journal != nil,
		"uptime_ms": time.Since(c.start).Milliseconds(),
	})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.metrics.Snapshot(c.BackendHealth()))
}
