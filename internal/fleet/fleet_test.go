package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"hprefetch/internal/harness"
	"hprefetch/internal/service"
)

// testBackend is an in-process hpserved instance on a stable address:
// stop() kills it abruptly (connections dropped, job state lost) and
// restart() brings a fresh instance up on the SAME address, like a
// crashed machine rejoining the fleet.
type testBackend struct {
	t    *testing.T
	addr string

	mu  sync.Mutex
	svc *service.Server
	srv *http.Server
}

func startBackend(t *testing.T) *testBackend {
	t.Helper()
	b := &testBackend{t: t}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.addr = ln.Addr().String()
	b.serve(ln)
	t.Cleanup(b.stop)
	return b
}

func (b *testBackend) url() string { return "http://" + b.addr }

func (b *testBackend) serve(ln net.Listener) {
	svc, err := service.New(service.Config{
		Workers: 2, QueueDepth: 32,
		Retry: service.RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	if err != nil {
		b.t.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	b.mu.Lock()
	b.svc, b.srv = svc, srv
	b.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // closed on stop
}

// stop kills the backend: listener and connections close immediately,
// in-flight jobs are cancelled, all job state is lost.
func (b *testBackend) stop() {
	b.mu.Lock()
	svc, srv := b.svc, b.srv
	b.svc, b.srv = nil, nil
	b.mu.Unlock()
	if srv != nil {
		srv.Close() //nolint:errcheck // abrupt by design
	}
	if svc != nil {
		svc.Close()
	}
}

// restart brings a fresh instance up on the same address.
func (b *testBackend) restart() {
	b.stop()
	ln, err := net.Listen("tcp", b.addr)
	if err != nil {
		b.t.Errorf("restart %s: %v", b.addr, err)
		return
	}
	b.serve(ln)
}

// tinySweep is a fast real sweep: 2 workloads × 2 schemes at smoke run
// lengths, a few seconds cold and milliseconds warm (the shared harness
// cache memoises across backends in-process).
func tinySweep() SweepSpec {
	return SweepSpec{
		Workloads:    []string{"gin", "echo"},
		Schemes:      []string{"FDIP", "Hierarchical"},
		WarmInstr:    50_000,
		MeasureInstr: 100_000,
	}
}

// fastFleetConfig tunes the coordinator for test time scales.
func fastFleetConfig(backends ...string) Config {
	return Config{
		Backends:      backends,
		Retry:         service.RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond},
		RetrySeed:     7,
		MaxAttempts:   12,
		ProbeInterval: 100 * time.Millisecond,
		BreakerWindow: 8, BreakerMinSamples: 2, BreakerThreshold: 0.6,
		BreakerCooldown: 300 * time.Millisecond,
		HTTP:            &http.Client{Timeout: 30 * time.Second},
	}
}

// awaitSweep polls a sweep to a terminal state.
func awaitSweep(t *testing.T, sw *Sweep, timeout time.Duration) SweepView {
	t.Helper()
	select {
	case <-sw.Done():
	case <-time.After(timeout):
		t.Fatalf("sweep %s did not settle in %v: %+v", sw.ID, timeout, sw.View())
	}
	return sw.View()
}

// TestSweepMatchesLocal is the core fleet contract: a sweep sharded
// over two backends aggregates to the byte-identical table a
// single-node local run produces — digests included, via the table
// notes.
func TestSweepMatchesLocal(t *testing.T) {
	harness.DropCache()
	b1, b2 := startBackend(t), startBackend(t)
	c, err := New(fastFleetConfig(b1.url(), b2.url()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sw, err := c.Submit(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	v := awaitSweep(t, sw, 2*time.Minute)
	if v.State != service.JobDone {
		t.Fatalf("sweep finished %s: %s", v.State, v.Error)
	}
	if v.Done != v.Total || v.Total != 4 {
		t.Fatalf("done %d of %d, want 4/4", v.Done, v.Total)
	}

	local, err := RunLocal(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if v.Table != local.String() {
		t.Fatalf("fleet table differs from single-node run:\nfleet:\n%s\nlocal:\n%s", v.Table, local.String())
	}
	if v.TableDigest != local.Digest() {
		t.Fatalf("table digest %s != local %s", v.TableDigest, local.Digest())
	}
	// Routing is consistent-hash: both backends should have seen work in
	// a 4-job sweep with high probability... but that is distribution,
	// not correctness. What IS correctness: every job exactly once.
	seen := map[string]int{}
	for _, js := range v.Jobs {
		seen[js.Key]++
		if js.State != service.JobDone {
			t.Fatalf("job %s state %s", js.Key, js.State)
		}
	}
	for _, key := range tinySweep().Keys() {
		if seen[key] != 1 {
			t.Fatalf("job %s appears %d times", key, seen[key])
		}
	}
}

// TestSweepHTTPAPI drives the same contract through the coordinator's
// HTTP front door, including the long-poll wait and partial-result
// streaming fields.
func TestSweepHTTPAPI(t *testing.T) {
	harness.DropCache()
	b1 := startBackend(t)
	c, err := New(fastFleetConfig(b1.url()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mux := c.Handler()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // closed below
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	spec := tinySweep()
	spec.Workloads = []string{"gin"}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/sweeps", "application/json", newReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted SweepView
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	json.NewDecoder(resp.Body).Decode(&accepted) //nolint:errcheck
	resp.Body.Close()

	deadline := time.Now().Add(2 * time.Minute)
	var view SweepView
	for {
		r2, err := http.Get(base + "/v1/sweeps/" + accepted.ID + "?wait=5s")
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r2.Body).Decode(&view) //nolint:errcheck
		r2.Body.Close()
		if view.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck: %+v", view)
		}
	}
	if view.State != service.JobDone || view.Table == "" || view.TableDigest == "" {
		t.Fatalf("sweep view: state=%s table=%d bytes", view.State, len(view.Table))
	}
	for _, js := range view.Jobs {
		if js.Digest == "" || js.IPC == 0 {
			t.Fatalf("job %s missing streamed result fields: %+v", js.Key, js)
		}
	}

	// Unknown sweeps and bad specs are client errors.
	if r, _ := http.Get(base + "/v1/sweeps/swp-999999"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep returned %d", r.StatusCode)
	}
	bad, _ := json.Marshal(SweepSpec{Workloads: []string{"no-such-workload"}})
	if r, _ := http.Post(base+"/v1/sweeps", "application/json", newReader(bad)); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec returned %d", r.StatusCode)
	}
}

// TestFailoverDeadBackend kills one of two backends before the sweep:
// every job must land on the survivor (health breaker + preference-list
// walk), and the table must still match the local run.
func TestFailoverDeadBackend(t *testing.T) {
	harness.DropCache()
	b1, b2 := startBackend(t), startBackend(t)
	b2.stop() // dead before any dispatch

	c, err := New(fastFleetConfig(b1.url(), b2.url()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sw, err := c.Submit(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	v := awaitSweep(t, sw, 2*time.Minute)
	if v.State != service.JobDone {
		t.Fatalf("sweep with dead backend finished %s: %s", v.State, v.Error)
	}
	for _, js := range v.Jobs {
		if js.Backend != b1.url() {
			t.Fatalf("job %s landed on %s, want survivor %s", js.Key, js.Backend, b1.url())
		}
	}
	local, err := RunLocal(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if v.Table != local.String() {
		t.Fatalf("failover table differs from local run")
	}
}

// TestCoordinatorCrashRecovery kills the coordinator mid-sweep and
// restarts it against the same journal: the sweep replays under its
// original id, prefers its journaled backend assignments, and completes
// with the byte-identical table.
func TestCoordinatorCrashRecovery(t *testing.T) {
	harness.DropCache()
	b1, b2 := startBackend(t), startBackend(t)
	jpath := t.TempDir() + "/coord.wal"

	// First life: the only backend is a stalled fake, so the sweep
	// deterministically cannot finish before the crash.
	stalled := newFakeBackend(t, "fnv1a64:0")
	stalled.setDelay(time.Hour)
	cfg1 := fastFleetConfig(stalled.url())
	cfg1.JournalPath = jpath
	c1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := c1.Submit(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	// Let dispatches journal their backend assignments, then crash. Close
	// keeps the sweep pending in the journal (shutdown is not terminal).
	time.Sleep(150 * time.Millisecond)
	c1.Close()

	// Second life: reconfigured with healthy backends, same journal. The
	// journaled assignments point at a backend no longer in the ring and
	// must be ignored, not chased.
	cfg := fastFleetConfig(b1.url(), b2.url())
	cfg.JournalPath = jpath
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.Metrics().SweepsReplayed.Load(); got != 1 {
		t.Fatalf("replayed %d sweeps, want 1", got)
	}
	replayed, ok := c2.Sweep(sw.ID)
	if !ok {
		t.Fatalf("sweep %s not replayed (known: %v)", sw.ID, c2.Sweeps())
	}
	v := awaitSweep(t, replayed, 2*time.Minute)
	if v.State != service.JobDone {
		t.Fatalf("replayed sweep finished %s: %s", v.State, v.Error)
	}
	local, err := RunLocal(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if v.Table != local.String() {
		t.Fatalf("recovered table differs from local run:\n%s\nvs\n%s", v.Table, local.String())
	}

	// A third life finds nothing pending: the finish record landed.
	c2.Close()
	c3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if got := c3.Metrics().SweepsReplayed.Load(); got != 0 {
		t.Fatalf("finished sweep replayed %d times", got)
	}
}

// TestCoordinatorRefusesForeignJournal pins the startup guard: a
// coordinator pointed at an hpserved job journal must refuse rather
// than adopt (and mangle) pending jobs it cannot run.
func TestCoordinatorRefusesForeignJournal(t *testing.T) {
	jpath := t.TempDir() + "/jobs.wal"
	jl, _, _, err := service.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.AppendSubmit("job-000001", "run", service.RunRequest{Workload: "gin", Scheme: "FDIP"}); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := fastFleetConfig("http://127.0.0.1:1")
	cfg.JournalPath = jpath
	if _, err := New(cfg); err == nil {
		t.Fatal("coordinator adopted an hpserved journal")
	}
}

func newReader(b []byte) *bytes.Reader { return bytes.NewReader(b) }
