package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hprefetch/internal/service"
)

// fakeBackend speaks just enough of the hpserved API to let tests
// script backend behaviour the real simulator cannot produce on demand:
// configurable completion delay (stragglers for hedging) and a
// configurable stats digest (divergence for quorum tests).
type fakeBackend struct {
	ts *httptest.Server

	mu      sync.Mutex
	digest  string
	delay   time.Duration
	next    int
	jobs    map[string]fakeJob
	cancels int
}

type fakeJob struct {
	req service.RunRequest
	at  time.Time
}

func newFakeBackend(t *testing.T, digest string) *fakeBackend {
	f := &fakeBackend{digest: digest, jobs: map[string]fakeJob{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", f.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", f.handlePoll)
	mux.HandleFunc("POST /v1/runs/{id}/cancel", f.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeBackend) url() string { return f.ts.URL }

func (f *fakeBackend) setDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

func (f *fakeBackend) cancelCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cancels
}

func (f *fakeBackend) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req service.RunRequest
	json.NewDecoder(r.Body).Decode(&req) //nolint:errcheck // test fake
	f.mu.Lock()
	f.next++
	id := fmt.Sprintf("job-%06d", f.next)
	f.jobs[id] = fakeJob{req: req, at: time.Now()}
	f.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(service.JobView{ID: id, Kind: "run", State: service.JobQueued, Request: req}) //nolint:errcheck
}

func (f *fakeBackend) handlePoll(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f.mu.Lock()
	j, ok := f.jobs[id]
	delay, digest := f.delay, f.digest
	f.mu.Unlock()
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintf(w, `{"error":"unknown job %q"}`, id)
		return
	}
	view := service.JobView{ID: id, Kind: "run", State: service.JobRunning, Request: j.req}
	if remaining := delay - time.Since(j.at); remaining > 0 {
		// Honour the long-poll the way a real server does, without ever
		// claiming completion early.
		if wait := r.URL.Query().Get("wait"); wait != "" {
			d, _ := time.ParseDuration(wait)
			if d > remaining {
				d = remaining
			}
			select {
			case <-time.After(d):
			case <-r.Context().Done():
			}
		}
		if time.Since(j.at) < delay {
			json.NewEncoder(w).Encode(view) //nolint:errcheck
			return
		}
	}
	view.State = service.JobDone
	view.Result = &service.RunResult{
		Workload:    j.req.Workload,
		Scheme:      j.req.Scheme,
		IPC:         1.2345,
		StatsDigest: digest,
	}
	json.NewEncoder(w).Encode(view) //nolint:errcheck
}

func (f *fakeBackend) handleCancel(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.cancels++
	f.mu.Unlock()
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprint(w, `{}`)
}

// oneJobSpec is the minimal sweep: one workload, one scheme.
func oneJobSpec() SweepSpec {
	return SweepSpec{Workloads: []string{"gin"}, Schemes: []string{"FDIP"}}
}

// TestHedgedDispatchStraggler makes the ring-preferred backend a
// straggler: the hedge must fire, the second backend must win, and the
// straggler's orphaned job must be cancelled.
func TestHedgedDispatchStraggler(t *testing.T) {
	digest := "fnv1a64:feedfacecafebeef"
	a := newFakeBackend(t, digest)
	b := newFakeBackend(t, digest)

	key := JobKey("gin", "FDIP")
	ring := NewRing([]string{a.url(), b.url()}, 0)
	primary, fast := a, b
	if ring.Owner(key) == b.url() {
		primary, fast = b, a
	}
	primary.setDelay(time.Hour) // never finishes without intervention

	cfg := fastFleetConfig(a.url(), b.url())
	cfg.HedgeAfter = 50 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sw, err := c.Submit(oneJobSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := awaitSweep(t, sw, 30*time.Second)
	if v.State != service.JobDone {
		t.Fatalf("hedged sweep finished %s: %s", v.State, v.Error)
	}
	if v.Jobs[0].Backend != fast.url() {
		t.Fatalf("winner %s, want hedge backend %s", v.Jobs[0].Backend, fast.url())
	}
	if !v.Jobs[0].Hedged {
		t.Fatal("job not marked hedged")
	}
	m := c.Metrics()
	if m.Hedges.Load() != 1 || m.HedgeWins.Load() != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", m.Hedges.Load(), m.HedgeWins.Load())
	}
	// The straggler's job is cancelled best-effort once the race settles.
	deadline := time.Now().Add(5 * time.Second)
	for primary.cancelCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("straggler job never cancelled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDigestQuorumAgrees double-runs every job on two agreeing backends:
// the sweep completes and the quorum counters show the audit happened.
func TestDigestQuorumAgrees(t *testing.T) {
	digest := "fnv1a64:feedfacecafebeef"
	a := newFakeBackend(t, digest)
	b := newFakeBackend(t, digest)
	cfg := fastFleetConfig(a.url(), b.url())
	cfg.QuorumFraction = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sw, err := c.Submit(oneJobSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := awaitSweep(t, sw, 30*time.Second)
	if v.State != service.JobDone {
		t.Fatalf("quorum sweep finished %s: %s", v.State, v.Error)
	}
	if !v.Jobs[0].Quorum {
		t.Fatal("job not marked quorum-verified")
	}
	m := c.Metrics()
	if m.QuorumRuns.Load() != 1 || m.QuorumMismatches.Load() != 0 {
		t.Fatalf("quorum runs=%d mismatches=%d, want 1/0", m.QuorumRuns.Load(), m.QuorumMismatches.Load())
	}
}

// TestDigestQuorumMismatchFailsLoudly gives the two backends different
// digests for the same deterministic job — the reproducibility
// violation quorum exists to catch. The job (and sweep) must fail with
// an error naming both backends and both digests.
func TestDigestQuorumMismatchFailsLoudly(t *testing.T) {
	a := newFakeBackend(t, "fnv1a64:aaaaaaaaaaaaaaaa")
	b := newFakeBackend(t, "fnv1a64:bbbbbbbbbbbbbbbb")
	cfg := fastFleetConfig(a.url(), b.url())
	cfg.QuorumFraction = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sw, err := c.Submit(oneJobSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := awaitSweep(t, sw, 30*time.Second)
	if v.State != service.JobFailed {
		t.Fatalf("mismatched quorum sweep finished %s, want failed", v.State)
	}
	for _, want := range []string{"MISMATCH", "aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb"} {
		if !strings.Contains(v.Error, want) {
			t.Fatalf("quorum error %q missing %q", v.Error, want)
		}
	}
	if got := c.Metrics().QuorumMismatches.Load(); got != 1 {
		t.Fatalf("mismatch counter %d, want 1", got)
	}
}

// TestCorpusQuarantineRedispatch: a shard reporting a corrupt/
// quarantined corpus artifact gets the job back with NoCorpus set, so
// the retry records live instead of trusting shared storage again.
func TestCorpusQuarantineRedispatch(t *testing.T) {
	var (
		mu   sync.Mutex
		reqs []service.RunRequest
	)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var req service.RunRequest
		json.NewDecoder(r.Body).Decode(&req) //nolint:errcheck // test fake
		mu.Lock()
		reqs = append(reqs, req)
		id := fmt.Sprintf("job-%06d", len(reqs))
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(service.JobView{ID: id, Kind: "run", State: service.JobQueued, Request: req}) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		mu.Lock()
		n := len(reqs)
		var req service.RunRequest
		if n > 0 {
			req = reqs[n-1]
		}
		mu.Unlock()
		if id == "job-000001" {
			// First attempt: the shard's trace artifact turned out rotten.
			json.NewEncoder(w).Encode(service.JobView{ID: id, Kind: "run", State: service.JobFailed,
				Error: "run failed: tracefile: corrupt trace (object quarantined)"}) //nolint:errcheck
			return
		}
		json.NewEncoder(w).Encode(service.JobView{ID: id, Kind: "run", State: service.JobDone, //nolint:errcheck
			Result: &service.RunResult{Workload: req.Workload, Scheme: req.Scheme, IPC: 1.5,
				StatsDigest: "fnv1a64:feedfacecafebeef", TraceSource: "live"}})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	shard := httptest.NewServer(mux)
	t.Cleanup(shard.Close)

	c, err := New(fastFleetConfig(shard.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sw, err := c.Submit(oneJobSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := awaitSweep(t, sw, 30*time.Second)
	if v.State != service.JobDone {
		t.Fatalf("sweep finished %s: %s", v.State, v.Error)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(reqs) < 2 {
		t.Fatalf("shard saw %d submissions, want >=2", len(reqs))
	}
	if reqs[0].NoCorpus {
		t.Fatal("first dispatch already carried NoCorpus")
	}
	if !reqs[1].NoCorpus {
		t.Fatal("redispatch after quarantine report did not set NoCorpus")
	}
	if got := c.Metrics().CorpusFallbacks.Load(); got != 1 {
		t.Fatalf("CorpusFallbacks = %d, want 1", got)
	}
}

// TestRedispatchOnBackendJobFailure: a backend that answers correctly
// but reports the job failed (its own retry budget burned) must not
// sink the sweep — the coordinator re-dispatches to the next backend.
func TestRedispatchOnBackendJobFailure(t *testing.T) {
	digest := "fnv1a64:feedfacecafebeef"
	good := newFakeBackend(t, digest)
	// A backend that instantly fails every job.
	badMux := http.NewServeMux()
	badMux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(service.JobView{ID: "job-000001", Kind: "run", State: service.JobQueued}) //nolint:errcheck
	})
	badMux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobView{ID: r.PathValue("id"), Kind: "run",
			State: service.JobFailed, Error: "synthetic permanent failure"}) //nolint:errcheck
	})
	badMux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	bad := httptest.NewServer(badMux)
	t.Cleanup(bad.Close)

	cfg := fastFleetConfig(bad.URL, good.url())
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Whatever the ring prefers, the sweep must end on the good backend.
	sw, err := c.Submit(oneJobSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := awaitSweep(t, sw, 30*time.Second)
	if v.State != service.JobDone {
		t.Fatalf("sweep finished %s: %s", v.State, v.Error)
	}
	if v.Jobs[0].Backend != good.url() {
		t.Fatalf("job landed on %s, want %s", v.Jobs[0].Backend, good.url())
	}
}
