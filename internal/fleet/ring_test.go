package fleet

import (
	"fmt"
	"testing"
)

func TestRingOrder(t *testing.T) {
	backends := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(backends, 0)

	if got := len(r.Backends()); got != 3 {
		t.Fatalf("backends %d, want 3", got)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("wl-%d/FDIP", i)
		order := r.Order(key)
		if len(order) != 3 {
			t.Fatalf("Order(%q) = %v, want all 3 distinct backends", key, order)
		}
		seen := map[string]bool{}
		for _, b := range order {
			if seen[b] {
				t.Fatalf("Order(%q) repeats %s", key, b)
			}
			seen[b] = true
		}
		if order[0] != r.Owner(key) {
			t.Fatalf("Order(%q)[0] = %s, Owner = %s", key, order[0], r.Owner(key))
		}
	}
}

// TestRingDeterminism pins the routing function: two rings built from
// the same inputs route every key identically — the property that
// makes coordinator restarts and repeat sweeps land on warm caches.
func TestRingDeterminism(t *testing.T) {
	backends := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r1 := NewRing(backends, 32)
	r2 := NewRing(backends, 32)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("gin/scheme-%d", i)
		a, b := r1.Order(key), r2.Order(key)
		if len(a) != len(b) {
			t.Fatalf("order lengths differ for %q", key)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("ring is not deterministic for %q: %v vs %v", key, a, b)
			}
		}
	}
}

// TestRingStability checks consistent hashing's reason to exist: losing
// one backend must not reshuffle keys owned by the survivors.
func TestRingStability(t *testing.T) {
	full := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	reduced := NewRing([]string{"http://a:1", "http://b:1"}, 0)
	moved := 0
	const n = 300
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("wl-%d/Hier", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != "http://c:1" && before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d of %d surviving-backend keys moved when c left the ring", moved, n)
	}
}

// TestRingSpread sanity-checks distribution: no backend owns an
// outsized share of keys.
func TestRingSpread(t *testing.T) {
	backends := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(backends, 0)
	counts := map[string]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for b, got := range counts {
		if got < n/4/3 || got > n*3/4 {
			t.Fatalf("backend %s owns %d of %d keys — spread collapsed: %v", b, got, n, counts)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 0)
	if empty.Owner("k") != "" || empty.Order("k") != nil {
		t.Fatal("empty ring must route nowhere")
	}
	dup := NewRing([]string{"http://a:1", "http://a:1", ""}, 0)
	if got := len(dup.Backends()); got != 1 {
		t.Fatalf("dedup kept %d backends, want 1", got)
	}
	single := NewRing([]string{"http://a:1"}, 0)
	if single.Owner("anything") != "http://a:1" {
		t.Fatal("single-backend ring must own every key")
	}
}

func TestSplitKey(t *testing.T) {
	w, s, err := SplitKey(JobKey("gin", "FDIP"))
	if err != nil || w != "gin" || s != "FDIP" {
		t.Fatalf("SplitKey round trip: %q %q %v", w, s, err)
	}
	for _, bad := range []string{"", "gin", "/FDIP", "gin/"} {
		if _, _, err := SplitKey(bad); err == nil {
			t.Fatalf("SplitKey(%q) accepted", bad)
		}
	}
}
