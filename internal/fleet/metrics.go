package fleet

import (
	"sync/atomic"

	"hprefetch/internal/service"
)

// Metrics counts the coordinator's observable events. All fields are
// monotonic; read via Snapshot.
type Metrics struct {
	SweepsAccepted atomic.Uint64
	SweepsReplayed atomic.Uint64
	SweepsDone     atomic.Uint64
	SweepsFailed   atomic.Uint64

	JobsDispatched   atomic.Uint64
	JobsRedispatched atomic.Uint64
	JobsDone         atomic.Uint64
	JobsFailed       atomic.Uint64

	Hedges    atomic.Uint64
	HedgeWins atomic.Uint64

	QuorumRuns       atomic.Uint64
	QuorumMismatches atomic.Uint64

	// CorpusFallbacks counts jobs re-dispatched with NoCorpus set after
	// a backend reported a quarantined/corrupt trace artifact.
	CorpusFallbacks atomic.Uint64

	ProbeFailures atomic.Uint64
	JournalErrors atomic.Uint64
}

// MetricsSnapshot is the JSON projection of Metrics plus per-backend
// breaker state.
type MetricsSnapshot struct {
	SweepsAccepted   uint64 `json:"sweeps_accepted"`
	SweepsReplayed   uint64 `json:"sweeps_replayed"`
	SweepsDone       uint64 `json:"sweeps_done"`
	SweepsFailed     uint64 `json:"sweeps_failed"`
	JobsDispatched   uint64 `json:"jobs_dispatched"`
	JobsRedispatched uint64 `json:"jobs_redispatched"`
	JobsDone         uint64 `json:"jobs_done"`
	JobsFailed       uint64 `json:"jobs_failed"`
	Hedges           uint64 `json:"hedges"`
	HedgeWins        uint64 `json:"hedge_wins"`
	QuorumRuns       uint64 `json:"quorum_runs"`
	QuorumMismatches uint64 `json:"quorum_mismatches"`
	CorpusFallbacks  uint64 `json:"corpus_fallbacks"`
	ProbeFailures    uint64 `json:"probe_failures"`
	JournalErrors    uint64 `json:"journal_errors"`

	Backends map[string]service.BreakerStatus `json:"backends"`
}

// Snapshot captures every counter at one instant (per counter; the set
// is not atomic across counters, which metrics scrapes never need).
func (m *Metrics) Snapshot(backends map[string]service.BreakerStatus) MetricsSnapshot {
	return MetricsSnapshot{
		SweepsAccepted:   m.SweepsAccepted.Load(),
		SweepsReplayed:   m.SweepsReplayed.Load(),
		SweepsDone:       m.SweepsDone.Load(),
		SweepsFailed:     m.SweepsFailed.Load(),
		JobsDispatched:   m.JobsDispatched.Load(),
		JobsRedispatched: m.JobsRedispatched.Load(),
		JobsDone:         m.JobsDone.Load(),
		JobsFailed:       m.JobsFailed.Load(),
		Hedges:           m.Hedges.Load(),
		HedgeWins:        m.HedgeWins.Load(),
		QuorumRuns:       m.QuorumRuns.Load(),
		QuorumMismatches: m.QuorumMismatches.Load(),
		CorpusFallbacks:  m.CorpusFallbacks.Load(),
		ProbeFailures:    m.ProbeFailures.Load(),
		JournalErrors:    m.JournalErrors.Load(),
		Backends:         backends,
	}
}
