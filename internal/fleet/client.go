package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"hprefetch/internal/service"
)

// Client speaks the hpserved HTTP/JSON API to one backend. The zero
// value is not usable; construct with newClient.
type Client struct {
	base string
	http *http.Client
}

func newClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Minute}
	}
	return &Client{base: base, http: hc}
}

// Base returns the backend's base URL.
func (c *Client) Base() string { return c.base }

// backendError is a failure the backend reported (as opposed to a
// transport failure reaching it); the coordinator treats both as
// re-dispatchable but health-scores them the same way.
type backendError struct {
	status int
	msg    string
}

func (e *backendError) Error() string {
	return fmt.Sprintf("backend returned %d: %s", e.status, e.msg)
}

// SubmitRun submits one (workload, scheme) job, returning its accepted
// view (the job id routes the follow-up poll).
func (c *Client) SubmitRun(ctx context.Context, req service.RunRequest) (service.JobView, error) {
	return c.postJob(ctx, c.base+"/v1/runs", req)
}

func (c *Client) postJob(ctx context.Context, url string, req service.RunRequest) (service.JobView, error) {
	var view service.JobView
	body, err := json.Marshal(req)
	if err != nil {
		return view, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return view, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return view, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return view, readError(resp)
	}
	return view, json.NewDecoder(resp.Body).Decode(&view)
}

// Await polls a job until it reaches a terminal state or ctx ends,
// using the server's blocking ?wait= parameter so each round trip rides
// a long poll instead of a busy loop.
func (c *Client) Await(ctx context.Context, id string) (service.JobView, error) {
	var view service.JobView
	for {
		if err := ctx.Err(); err != nil {
			return view, err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
			c.base+"/v1/runs/"+id+"?wait=5s", nil)
		if err != nil {
			return view, err
		}
		resp, err := c.http.Do(hreq)
		if err != nil {
			return view, err
		}
		if resp.StatusCode != http.StatusOK {
			err := readError(resp)
			resp.Body.Close()
			return view, err
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return view, err
		}
		if view.State.Terminal() {
			return view, nil
		}
	}
}

// Cancel asks the backend to stop a job (best effort — the hedging
// loser's work is wasted anyway; this just frees the backend sooner).
func (c *Client) Cancel(ctx context.Context, id string) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/runs/"+id+"/cancel", nil)
	if err != nil {
		return
	}
	if resp, err := c.http.Do(hreq); err == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // best effort
		resp.Body.Close()
	}
}

// Healthz probes the backend's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(resp)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	return nil
}

// readError extracts the API error envelope from a non-2xx response.
func readError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &env) == nil && env.Error != "" {
		return &backendError{status: resp.StatusCode, msg: env.Error}
	}
	return &backendError{status: resp.StatusCode, msg: string(data)}
}
