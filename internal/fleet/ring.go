// Package fleet shards simulation sweeps across a fleet of hpserved
// backends: a coordinator expands a sweep specification into
// (workload, scheme) jobs, routes each job to a backend with consistent
// hashing (so a backend's single-flight result cache keeps deduplicating
// repeat work), and aggregates the results into the same tables a
// single-node run produces — byte for byte, because every backend's
// simulation is deterministic.
//
// Robustness is the point: per-backend health feeds the same
// sliding-window circuit breaker the server uses for admission control,
// failed dispatches re-route to the next backend on the ring under the
// service retry policy's decorrelated jitter, stragglers can be hedged
// onto a second backend, a configurable sample of jobs is double-run on
// two backends and cross-checked by stats digest (digest quorum), and
// the coordinator journals sweep submissions and backend assignments
// through the service write-ahead journal so a crashed coordinator
// resumes its sweeps — re-dispatching preferentially to the journaled
// (cache-warm) backends.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the virtual-node count per backend. Enough to spread
// keys evenly across small fleets without making Order scans expensive.
const defaultVnodes = 64

// Ring is a consistent-hash ring over backend addresses. Immutable
// after construction; rebalancing is a new Ring.
type Ring struct {
	backends []string
	hashes   []uint64          // sorted vnode positions
	owner    map[uint64]string // vnode position → backend
}

// NewRing places each backend at vnodes positions on the ring.
// Backends are deduplicated; vnodes <= 0 picks the default.
func NewRing(backends []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	seen := map[string]bool{}
	r := &Ring{owner: map[uint64]string{}}
	for _, b := range backends {
		if b == "" || seen[b] {
			continue
		}
		seen[b] = true
		r.backends = append(r.backends, b)
		for i := 0; i < vnodes; i++ {
			h := hash64(fmt.Sprintf("%s#%d", b, i))
			// A full 64-bit collision between distinct vnode labels is
			// effectively impossible; first placement wins if it happens.
			if _, taken := r.owner[h]; taken {
				continue
			}
			r.owner[h] = b
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	return r
}

// Backends returns the distinct backends on the ring, insertion order.
func (r *Ring) Backends() []string { return append([]string(nil), r.backends...) }

// Owner returns the backend owning key (the first vnode at or after the
// key's hash), or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	return r.owner[r.hashes[r.search(key)]]
}

// Order returns the key's preference list: every distinct backend in
// ring order starting from the key's position. Failover and hedging
// walk this list, so a key's work lands on a stable backend sequence —
// retries hit caches the first choice's neighbours already warmed from
// earlier sweeps.
func (r *Ring) Order(key string) []string {
	if len(r.hashes) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.backends))
	seen := map[string]bool{}
	start := r.search(key)
	for i := 0; i < len(r.hashes) && len(out) < len(r.backends); i++ {
		b := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// search finds the index of the first vnode at or after hash(key),
// wrapping to 0 past the last.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		return 0
	}
	return i
}

// hash64 is FNV-64a — the same family the simulator's stats digests
// use; no cryptographic strength needed, only spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	return h.Sum64()
}
