package fleet

import (
	"context"
	"sync"
	"testing"
	"time"

	"hprefetch/internal/harness"
	"hprefetch/internal/service"
	"hprefetch/internal/xrand"
)

// TestFleetChaosSoak is the fleet's capstone: a real sweep over three
// backends while a chaos loop kills and restarts random backends AND
// the coordinator itself dies mid-sweep and recovers from its journal.
// The bar afterwards is absolute, not statistical:
//
//   - the sweep completes (no job lost),
//   - every job key appears exactly once (no job duplicated),
//   - the aggregated table is byte-identical to a single-node run,
//   - the digest quorum saw zero mismatches.
//
// soakSweep runs long enough (seconds per cold job) that backend kills
// and the coordinator crash land while jobs are genuinely in flight.
func soakSweep() SweepSpec {
	return SweepSpec{
		Workloads:    []string{"gin", "echo"},
		Schemes:      []string{"FDIP", "Hierarchical"},
		WarmInstr:    2_000_000,
		MeasureInstr: 6_000_000,
	}
}

func TestFleetChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	harness.DropCache()
	backends := []*testBackend{startBackend(t), startBackend(t), startBackend(t)}
	urls := []string{backends[0].url(), backends[1].url(), backends[2].url()}

	cfg := fastFleetConfig(urls...)
	cfg.JournalPath = t.TempDir() + "/coord.wal"
	cfg.HedgeAfter = 300 * time.Millisecond
	cfg.QuorumFraction = 0.25
	cfg.QuorumSeed = 11

	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := c1.Submit(soakSweep())
	if err != nil {
		t.Fatal(err)
	}

	// Chaos loop: six kill/restart cycles against seeded-random victims.
	// Bounded so the fleet gets calm air to converge at the end.
	var chaos sync.WaitGroup
	chaos.Add(1)
	t.Cleanup(chaos.Wait) // never let the loop outlive the test
	go func() {
		defer chaos.Done()
		rng := xrand.New(99)
		for i := 0; i < 6; i++ {
			time.Sleep(250 * time.Millisecond)
			victim := backends[rng.IntN(len(backends))]
			victim.stop()
			time.Sleep(300 * time.Millisecond)
			victim.restart()
		}
	}()

	// Meanwhile the coordinator itself crashes mid-sweep and a successor
	// adopts the journal while backends are still being shot.
	time.Sleep(400 * time.Millisecond)
	c1.Close()
	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("coordinator restart: %v", err)
	}
	defer c2.Close()
	if got := c2.Metrics().SweepsReplayed.Load(); got != 1 {
		t.Fatalf("successor replayed %d sweeps, want 1", got)
	}
	replayed, ok := c2.Sweep(sw.ID)
	if !ok {
		t.Fatalf("sweep %s lost across coordinator crash (known: %v)", sw.ID, c2.Sweeps())
	}

	v := awaitSweep(t, replayed, 3*time.Minute)
	if v.State != service.JobDone {
		t.Fatalf("soak sweep finished %s: %s\njobs: %+v", v.State, v.Error, v.Jobs)
	}

	// No job lost, no job duplicated.
	seen := map[string]int{}
	for _, js := range v.Jobs {
		seen[js.Key]++
		if js.State != service.JobDone {
			t.Fatalf("job %s ended %s: %s", js.Key, js.State, js.Error)
		}
	}
	keys := soakSweep().Keys()
	if len(v.Jobs) != len(keys) {
		t.Fatalf("sweep tracked %d jobs, want %d", len(v.Jobs), len(keys))
	}
	for _, key := range keys {
		if seen[key] != 1 {
			t.Fatalf("job %s completed %d times, want exactly once", key, seen[key])
		}
	}

	if got := c2.Metrics().QuorumMismatches.Load(); got != 0 {
		t.Fatalf("digest quorum saw %d mismatches during chaos", got)
	}

	// Byte-identical to a single node, digests included (table notes).
	local, err := RunLocal(context.Background(), soakSweep())
	if err != nil {
		t.Fatal(err)
	}
	if v.Table != local.String() {
		t.Fatalf("chaos-soaked table differs from single-node run:\nfleet:\n%s\nlocal:\n%s", v.Table, local.String())
	}
	if v.TableDigest != local.Digest() {
		t.Fatalf("table digest %s != local %s", v.TableDigest, local.Digest())
	}
}
