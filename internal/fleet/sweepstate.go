package fleet

import (
	"sync"
	"time"

	"hprefetch/internal/harness"
	"hprefetch/internal/service"
)

// Sweep is one admitted sweep and its eventual aggregated table. All
// mutable state is guarded by mu; done closes exactly once when the
// sweep settles.
type Sweep struct {
	ID   string
	Spec SweepSpec

	mu          sync.Mutex
	jobs        map[string]*sweepJob
	keys        []string
	state       service.JobState
	errMsg      string
	table       *harness.Table
	tableText   string
	tableDigest string
	submitted   time.Time
	finished    time.Time
	// replayAssign is the journaled key → backend map for recovered
	// sweeps (read-only after construction).
	replayAssign map[string]string

	done chan struct{}
}

// sweepJob is one (workload, scheme) unit of a sweep.
type sweepJob struct {
	key      string
	workload string
	scheme   string

	state         service.JobState
	backend       string
	attempts      int
	hedged        bool
	hedgeBackend  string
	quorum        bool
	quorumBackend string
	err           string
	result        *service.RunResult
}

// Done returns a channel closed when the sweep settles.
func (sw *Sweep) Done() <-chan struct{} { return sw.done }

// Table returns the aggregated table, or nil while running/failed.
func (sw *Sweep) Table() *harness.Table {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.table
}

// noteAttempt records a dispatch attempt and its chosen backend.
func (sw *Sweep) noteAttempt(jb *sweepJob, backend string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	jb.attempts++
	jb.backend = backend
}

// noteHedge records the hedge arm's backend.
func (sw *Sweep) noteHedge(jb *sweepJob, backend string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	jb.hedged = true
	jb.hedgeBackend = backend
}

// noteQuorum records the quorum verification backend.
func (sw *Sweep) noteQuorum(jb *sweepJob, backend string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	jb.quorum = true
	jb.quorumBackend = backend
}

// completeJob lands a job's result (partial results are visible through
// View immediately, before the sweep settles).
func (sw *Sweep) completeJob(jb *sweepJob, backend string, res *service.RunResult) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	jb.state = service.JobDone
	jb.backend = backend
	jb.result = res
	jb.err = ""
}

// failJob marks a job terminally failed.
func (sw *Sweep) failJob(jb *sweepJob, msg string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	jb.state = service.JobFailed
	jb.err = msg
}

// JobStatus is the JSON projection of one sweep job. Result fields
// appear as soon as the job lands, streaming partial sweep results to
// pollers.
type JobStatus struct {
	Key      string           `json:"key"`
	State    service.JobState `json:"state"`
	Backend  string           `json:"backend,omitempty"`
	Attempts int              `json:"attempts,omitempty"`
	Hedged   bool             `json:"hedged,omitempty"`
	Quorum   bool             `json:"quorum,omitempty"`
	IPC      float64          `json:"ipc,omitempty"`
	Digest   string           `json:"digest,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// SweepView is the JSON projection of a Sweep (GET /v1/sweeps/{id}).
type SweepView struct {
	ID          string           `json:"id"`
	State       service.JobState `json:"state"`
	Spec        SweepSpec        `json:"spec"`
	Jobs        []JobStatus      `json:"jobs"`
	Done        int              `json:"done"`
	Total       int              `json:"total"`
	Table       string           `json:"table,omitempty"`
	TableDigest string           `json:"table_digest,omitempty"`
	Error       string           `json:"error,omitempty"`
	Submitted   time.Time        `json:"submitted"`
	Finished    *time.Time       `json:"finished,omitempty"`
}

// View snapshots the sweep for serialisation.
func (sw *Sweep) View() SweepView {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	v := SweepView{
		ID:          sw.ID,
		State:       sw.state,
		Spec:        sw.Spec,
		Total:       len(sw.keys),
		Table:       sw.tableText,
		TableDigest: sw.tableDigest,
		Error:       sw.errMsg,
		Submitted:   sw.submitted,
	}
	if !sw.finished.IsZero() {
		t := sw.finished
		v.Finished = &t
	}
	for _, key := range sw.keys {
		jb := sw.jobs[key]
		js := JobStatus{
			Key:      jb.key,
			State:    jb.state,
			Backend:  jb.backend,
			Attempts: jb.attempts,
			Hedged:   jb.hedged,
			Quorum:   jb.quorum,
			Error:    jb.err,
		}
		if jb.result != nil {
			js.IPC = jb.result.IPC
			js.Digest = jb.result.StatsDigest
			v.Done++
		}
		v.Jobs = append(v.Jobs, js)
	}
	return v
}
