package microsvc

import (
	"fmt"
	"testing"

	"hprefetch/internal/workloads"
)

// sample is the full observable state after one Next call: the event and
// every attribution accessor. Byte-identical streams mean equal samples.
type sample struct {
	Ev    string
	Type  int
	Stage int16
	Depth int
	Req   uint64
	Done  bool
	Insts uint64
	Reqs  uint64
}

func drain(e workloads.Engine, n int) []sample {
	out := make([]sample, n)
	for i := range out {
		ev := e.Next()
		out[i] = sample{
			Ev:    fmt.Sprintf("%+v", ev),
			Type:  e.CurrentType(),
			Stage: e.Stage(),
			Depth: e.Depth(),
			Req:   e.CurrentRequest(),
			Done:  e.RequestDone(),
			Insts: e.Instructions(),
			Reqs:  e.Requests(),
		}
	}
	return out
}

// TestArrivalsDeterministic: the arrival process is a pure function of
// (config, seed) — two generators with the same seed produce the
// identical schedule, and times never decrease.
func TestArrivalsDeterministic(t *testing.T) {
	for _, kind := range []ArrivalKind{Steady, Bursty, Diurnal} {
		cfg := ArrivalConfig{Kind: kind, MeanGap: 5_000}
		a := newArrivals(cfg, 42)
		b := newArrivals(cfg, 42)
		c := newArrivals(cfg, 43)
		var prev uint64
		diverged := false
		for i := 0; i < 10_000; i++ {
			ta, tb, tc := a.next(), b.next(), c.next()
			if ta != tb {
				t.Fatalf("%s: arrival %d diverged under the same seed: %d vs %d", kind, i, ta, tb)
			}
			if ta != tc {
				diverged = true
			}
			if i == 0 && ta != 0 {
				t.Fatalf("%s: first arrival at %d, want 0", kind, ta)
			}
			if ta < prev {
				t.Fatalf("%s: arrival %d went backwards: %d after %d", kind, i, ta, prev)
			}
			prev = ta
		}
		if !diverged {
			t.Errorf("%s: 10k arrivals identical under different seeds", kind)
		}
	}
}

// TestArrivalValidation: New rejects bad arrival configs and lane counts.
func TestArrivalValidation(t *testing.T) {
	b, err := workloads.Build("chain-d2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(b.Loaded, 1, 4, ArrivalConfig{Kind: "tidal", MeanGap: 100}); err == nil {
		t.Error("unknown arrival kind accepted")
	}
	if _, err := New(b.Loaded, 1, 4, ArrivalConfig{Kind: Steady}); err == nil {
		t.Error("zero MeanGap accepted")
	}
	if _, err := New(b.Loaded, 1, 0, ArrivalConfig{Kind: Steady, MeanGap: 100}); err == nil {
		t.Error("zero lanes accepted")
	}
}

// TestEngineDeterministic is the seeded-determinism guarantee behind the
// suite: two completely fresh interleaving engines with the same seed
// produce byte-identical streams — every event and every attribution
// sample — exactly as two separate processes would (CI checks the
// cross-process half via digest diffs).
func TestEngineDeterministic(t *testing.T) {
	b, err := workloads.Build("chain-burst")
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	sa := drain(b.NewEngine(), n)
	sb := drain(b.NewEngine(), n)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("event %d diverged between identical engines:\n a: %+v\n b: %+v", i, sa[i], sb[i])
		}
	}
}

// TestEngineInterleaves: the open-loop stream must actually multiplex
// requests — events from at least two different in-flight requests
// appear before the first request completes, and completed ids cover a
// contiguous prefix-free set bounded by Requests().
func TestEngineInterleaves(t *testing.T) {
	b, err := workloads.Build("chain-d2")
	if err != nil {
		t.Fatal(err)
	}
	eng := b.NewEngine()
	seen := map[uint64]bool{}
	done := map[uint64]bool{}
	var hops int
	var lastReq uint64
	const n = 400_000
	for i := 0; i < n; i++ {
		eng.Next()
		req := eng.CurrentRequest()
		if i > 0 && req != lastReq {
			hops++
		}
		lastReq = req
		seen[req] = true
		if eng.RequestDone() {
			if done[req] {
				t.Fatalf("request %d completed twice", req)
			}
			done[req] = true
		}
		if req >= eng.Requests() {
			t.Fatalf("event attributed to request %d but only %d started", req, eng.Requests())
		}
	}
	if len(seen) < 3 {
		t.Errorf("only %d distinct requests observed in %d events; stream is not interleaving", len(seen), n)
	}
	if hops < 2*len(done) {
		t.Errorf("only %d request switches for %d completions; lanes are not multiplexing mid-request", hops, len(done))
	}
	if len(done) == 0 {
		t.Errorf("no request completed in %d events", n)
	}
}

// TestPresets: every preset is registered and resolvable through the
// workload registry by name, with intact metadata.
func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) == 0 {
		t.Fatal("no presets")
	}
	for i, p := range ps {
		if i > 0 && !(ps[i-1].Name < p.Name) {
			t.Errorf("presets out of name order: %q before %q", ps[i-1].Name, p.Name)
		}
		w, err := workloads.Get(p.Name)
		if err != nil {
			t.Errorf("preset %s not registered: %v", p.Name, err)
			continue
		}
		if w.Generator == nil || w.EngineFactory == nil {
			t.Errorf("preset %s registered without generator/engine factory", p.Name)
		}
		got, ok := PresetByName(p.Name)
		if !ok || got != p {
			t.Errorf("PresetByName(%s) = %+v, %v", p.Name, got, ok)
		}
	}
	if _, ok := PresetByName("chain-nope"); ok {
		t.Error("PresetByName invented a preset")
	}
}
