package microsvc

import (
	"fmt"

	"hprefetch/internal/isa"
	"hprefetch/internal/loader"
	"hprefetch/internal/program"
	"hprefetch/internal/trace"
	"hprefetch/internal/xrand"
)

// Engine interleaves the request chains of an open-loop load into one
// deterministic instruction stream. Each lane is an independent
// trace.Engine over the shared program image (its own seed, so lanes
// execute different request sequences); the interleaver admits requests
// on the arrival process's schedule, runs one lane at a time, and
// switches lanes on every RPC hop (Stage change) and request
// completion. Concurrency is what creates the footprint thrash: lane
// A's service-2 code evicts lane B's service-0 code mid-request.
//
// Engine satisfies workloads.Engine (and therefore sim.EventSource,
// sim.RequestMarker and tracefile.Source): recording, replay, fault
// paths and the fleet treat it exactly like the plain engine.
type Engine struct {
	lanes []*lane
	arr   *arrivals

	runq    []int // lanes with an admitted request, in scheduling order
	idle    []int // lanes awaiting a request (stack)
	pending uint64
	started uint64 // requests admitted to a lane so far (monotonic)
	nextArr uint64
	haveArr bool

	clock  uint64 // emitted instructions: the arrival clock
	instrs uint64

	// Sampled state of the most recently returned event.
	curType  int
	curStage int16
	curDepth int
	curReq   uint64
	curDone  bool
}

// lane is one concurrent execution context.
type lane struct {
	eng       *trace.Engine
	req       uint64 // global id of the request the lane is serving
	prevStage int16
}

// New builds an interleaving engine over a loaded chain program with
// the given lane count and arrival process. The stream is a pure
// function of (program, seed, lanes, arrival config).
func New(ld *loader.Loaded, seed uint64, lanes int, ac ArrivalConfig) (*Engine, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("microsvc: lane count must be >= 1")
	}
	if err := ac.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		lanes:    make([]*lane, lanes),
		arr:      newArrivals(ac, seed),
		curStage: program.NoStage,
	}
	for i := range e.lanes {
		e.lanes[i] = &lane{
			eng:       trace.New(ld, xrand.Mix(seed, uint64(i), 0x14AE)),
			prevStage: program.NoStage,
		}
	}
	// Idle stack popped from the end: lane 0 serves the first request.
	for i := lanes - 1; i >= 0; i-- {
		e.idle = append(e.idle, i)
	}
	return e, nil
}

// MustNew is New for registration-time configs known to be valid.
func MustNew(ld *loader.Loaded, seed uint64, lanes int, ac ArrivalConfig) *Engine {
	e, err := New(ld, seed, lanes, ac)
	if err != nil {
		panic(err)
	}
	return e
}

// admit accepts one arrival: onto an idle lane if one exists, else into
// the open-loop backlog (a counter — queued requests have no state
// until a lane picks them up).
func (e *Engine) admit() {
	if n := len(e.idle); n > 0 {
		li := e.idle[n-1]
		e.idle = e.idle[:n-1]
		e.assign(li)
		return
	}
	e.pending++
}

// assign starts the next request on lane li. Ids are handed out in
// start order; the lane's underlying engine supplies the request's
// type and execution deterministically.
func (e *Engine) assign(li int) {
	l := e.lanes[li]
	l.req = e.started
	e.started++
	l.prevStage = l.eng.Stage()
	e.runq = append(e.runq, li)
}

// Next returns the next retired block event of the interleaved stream.
// The stream is unbounded: arrivals never stop.
func (e *Engine) Next() isa.BlockEvent {
	// Admit everything the arrival process scheduled up to now.
	if !e.haveArr {
		e.nextArr = e.arr.next()
		e.haveArr = true
	}
	for e.nextArr <= e.clock {
		e.admit()
		e.nextArr = e.arr.next()
	}
	// All lanes idle: fast-forward the clock to the next arrival.
	if len(e.runq) == 0 {
		e.clock = e.nextArr
		for e.nextArr <= e.clock {
			e.admit()
			e.nextArr = e.arr.next()
		}
	}

	li := e.runq[0]
	l := e.lanes[li]
	ev := l.eng.Next()
	e.clock += uint64(ev.NumInstr)
	e.instrs += uint64(ev.NumInstr)

	// Sample the producing lane's state for this event.
	e.curType = l.eng.CurrentType()
	e.curDepth = l.eng.Depth()
	e.curStage = l.eng.Stage()
	e.curReq = l.req
	e.curDone = l.eng.RequestDone()

	if e.curDone {
		// Request complete: free the lane, or hand it the oldest
		// backlogged arrival immediately.
		e.runq = e.runq[1:]
		if e.pending > 0 {
			e.pending--
			e.assign(li)
		} else {
			e.idle = append(e.idle, li)
		}
	} else if st := l.eng.Stage(); st != l.prevStage {
		// RPC hop: yield the stream to the next runnable lane.
		l.prevStage = st
		if len(e.runq) > 1 {
			e.runq = append(e.runq[1:], li)
		}
	}
	return ev
}

// Instructions returns the total instructions emitted so far.
func (e *Engine) Instructions() uint64 { return e.instrs }

// Requests returns how many requests have been started (admitted to a
// lane) so far — monotonic, like the plain engine's counter.
func (e *Engine) Requests() uint64 { return e.started }

// Pending returns the open-loop backlog: requests that have arrived but
// found no free lane yet.
func (e *Engine) Pending() uint64 { return e.pending }

// CurrentType, Stage, Depth, CurrentRequest and RequestDone follow the
// sampling contract: they describe the most recently returned event
// (its producing lane's state).
func (e *Engine) CurrentType() int       { return e.curType }
func (e *Engine) Stage() int16           { return e.curStage }
func (e *Engine) Depth() int             { return e.curDepth }
func (e *Engine) CurrentRequest() uint64 { return e.curReq }
func (e *Engine) RequestDone() bool      { return e.curDone }
