// Package microsvc is the cloud-microservice scenario suite: chain
// workloads built from program.GenerateChain topologies, an open-loop
// load generator with seeded arrival processes, and a deterministic
// interleaving engine that multiplexes concurrent request chains into
// one instruction stream. The interleaver is an ordinary event source —
// it plugs into the simulator, the trace recorder and the fleet exactly
// where trace.Engine does — but its stream hops between the footprints
// of concurrently executing requests, which is the instruction-cache
// behaviour that defeats record-based prefetchers on serving systems.
package microsvc

import (
	"fmt"
	"math"

	"hprefetch/internal/xrand"
)

// ArrivalKind names an arrival process shape.
type ArrivalKind string

const (
	// Steady is a Poisson process: exponential gaps around MeanGap.
	Steady ArrivalKind = "steady"
	// Bursty alternates tight bursts of BurstLen arrivals with long
	// quiet gaps, keeping the long-run rate near 1/MeanGap.
	Bursty ArrivalKind = "bursty"
	// Diurnal modulates the Poisson rate sinusoidally over Period,
	// swinging by Amplitude around the mean.
	Diurnal ArrivalKind = "diurnal"
)

// ArrivalConfig parameterises the open-loop load generator. Time is
// measured in emitted instructions — the only clock a deterministic
// instruction stream has.
type ArrivalConfig struct {
	Kind ArrivalKind
	// MeanGap is the long-run mean inter-arrival gap in instructions.
	MeanGap uint64
	// BurstLen is the arrivals per burst (Bursty; default 8).
	BurstLen int
	// Period is the instructions per modulation cycle (Diurnal;
	// default 64 * MeanGap).
	Period uint64
	// Amplitude is the rate swing in (0,1) (Diurnal; default 0.8).
	Amplitude float64
}

// validate reports the first configuration problem, or nil.
func (c *ArrivalConfig) validate() error {
	switch c.Kind {
	case Steady, Bursty, Diurnal:
	default:
		return fmt.Errorf("microsvc: unknown arrival kind %q", c.Kind)
	}
	if c.MeanGap == 0 {
		return fmt.Errorf("microsvc: arrival MeanGap must be positive")
	}
	return nil
}

// arrivals generates a deterministic sequence of absolute arrival times
// (instructions since stream start) for a seeded arrival process. The
// first arrival is always at time 0, so every run begins with work.
type arrivals struct {
	cfg   ArrivalConfig
	rng   *xrand.RNG
	idx   uint64 // arrivals generated so far
	t     uint64 // absolute time of the last generated arrival
	first bool
}

func newArrivals(cfg ArrivalConfig, seed uint64) *arrivals {
	if cfg.BurstLen <= 0 {
		cfg.BurstLen = 8
	}
	if cfg.Period == 0 {
		cfg.Period = 64 * cfg.MeanGap
	}
	if cfg.Amplitude <= 0 || cfg.Amplitude >= 1 {
		cfg.Amplitude = 0.8
	}
	return &arrivals{
		cfg:   cfg,
		rng:   xrand.New(xrand.Mix(seed, 0xA881)),
		first: true,
	}
}

// exp draws an exponential gap with the given mean, at least 1.
func (a *arrivals) exp(mean float64) uint64 {
	g := -math.Log(1-a.rng.Float64()) * mean
	if g < 1 {
		return 1
	}
	return uint64(g)
}

// next returns the next absolute arrival time (non-decreasing).
func (a *arrivals) next() uint64 {
	if a.first {
		a.first = false
		a.idx++
		return 0
	}
	mean := float64(a.cfg.MeanGap)
	var gap uint64
	switch a.cfg.Kind {
	case Bursty:
		if a.idx%uint64(a.cfg.BurstLen) == 0 {
			// Quiet stretch between bursts: the burst's deferred budget.
			gap = a.exp(mean * float64(a.cfg.BurstLen) * 7 / 8)
		} else {
			gap = a.exp(mean / 8)
		}
	case Diurnal:
		phase := 2 * math.Pi * float64(a.t%a.cfg.Period) / float64(a.cfg.Period)
		rate := 1 + a.cfg.Amplitude*math.Sin(phase)
		gap = a.exp(mean / rate)
	default: // Steady
		gap = a.exp(mean)
	}
	a.idx++
	a.t += gap
	return a.t
}
