package microsvc

import (
	"fmt"

	"hprefetch/internal/loader"
	"hprefetch/internal/program"
	"hprefetch/internal/workloads"
)

// Preset describes one registered chain workload: its topology and load
// shape, the metadata the microservice experiment's table columns show.
type Preset struct {
	Name    string
	Depth   int
	Fanout  int
	Arrival ArrivalKind
	Lanes   int
}

// presetList is the registered chain suite, in name order. It spans the
// experiment's three axes: chain depth (d2 vs d4), fan-out (f2), and
// arrival pattern (burst, diurnal vs the steady default).
var presetList = []Preset{
	{Name: "chain-burst", Depth: 3, Fanout: 1, Arrival: Bursty, Lanes: 6},
	{Name: "chain-d2", Depth: 2, Fanout: 1, Arrival: Steady, Lanes: 4},
	{Name: "chain-d4", Depth: 4, Fanout: 1, Arrival: Steady, Lanes: 4},
	{Name: "chain-diurnal", Depth: 3, Fanout: 1, Arrival: Diurnal, Lanes: 4},
	{Name: "chain-f2", Depth: 3, Fanout: 2, Arrival: Steady, Lanes: 4},
}

// Presets returns the chain workload suite in stable (name) order.
func Presets() []Preset {
	out := make([]Preset, len(presetList))
	copy(out, presetList)
	return out
}

// chainConfig builds the program topology for a preset. Sizes are kept
// moderate — and library digressions rare — so one chained request
// retires in the low tens of thousands of instructions: tail percentiles
// need hundreds of completed requests per measurement window. The thrash
// the suite studies comes from interleaving concurrent requests across
// the per-service footprints, not from any single service being huge.
func chainConfig(p Preset, seed uint64) program.ChainConfig {
	base := program.DefaultConfig()
	base.Name = p.Name
	base.Seed = seed
	base.RequestTypes = 6
	base.TypeZipf = 0.8
	base.LibCallsMin = 0
	base.LibCallsMax = 1
	base.OrphanFuncs = 8_000
	base.ColdTrees = 6
	base.ColdTreeFuncs = 200
	cc := program.ChainConfig{Base: base, Depth: p.Depth, Fanout: p.Fanout}
	// Per-service trees scale inversely with the service count: a request
	// walks every service, so this keeps request length (and therefore
	// completions per measurement window) comparable across presets while
	// the combined hot footprint still exceeds the L1-I.
	n := cc.Services()
	cc.ServiceCommonFuncs = 72 / n
	if cc.ServiceCommonFuncs < 12 {
		cc.ServiceCommonFuncs = 12
	}
	cc.ServiceHandlerFuncs = 36 / n
	if cc.ServiceHandlerFuncs < 6 {
		cc.ServiceHandlerFuncs = 6
	}
	return cc
}

// arrivalConfig builds the load shape for a preset. MeanGap is small
// relative to a chained request's length (roughly 25k instructions for
// a depth-3 chain), so lanes overlap and the backlog stays non-trivially
// occupied — an open-loop generator does not slow down because the
// system is busy.
func arrivalConfig(p Preset) ArrivalConfig {
	return ArrivalConfig{Kind: p.Arrival, MeanGap: 8_000}
}

// PresetByName returns the preset metadata for a registered chain
// workload name.
func PresetByName(name string) (Preset, bool) {
	for _, p := range presetList {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

func init() {
	for i, p := range presetList {
		p := p
		cc := chainConfig(p, 0xC4A1_0000+uint64(i))
		lanes := p.Lanes
		ac := arrivalConfig(p)
		w := workloads.Workload{
			Name:      p.Name,
			Config:    cc.Base,
			TraceSeed: 101 + 2*uint64(i),
			Generator: func() (*program.Program, error) {
				return program.GenerateChain(cc)
			},
			EngineFactory: func(ld *loader.Loaded, seed uint64) workloads.Engine {
				return MustNew(ld, seed, lanes, ac)
			},
		}
		if err := workloads.Register(w); err != nil {
			panic(fmt.Sprintf("microsvc: registering %s: %v", p.Name, err))
		}
	}
}
