package fault

import (
	"reflect"
	"strings"
	"testing"

	"hprefetch/internal/binfmt"
	"hprefetch/internal/isa"
	"hprefetch/internal/xrand"
)

// sampleSegment builds a plausible .bundles segment for perturbation.
func sampleSegment() binfmt.BundleSegment {
	seg := binfmt.BundleSegment{Threshold: 200 << 10}
	for i := 0; i < 400; i++ {
		seg.Entries = append(seg.Entries, isa.FuncID(i*3))
		seg.TaggedAddrs = append(seg.TaggedAddrs, isa.Addr(0x400000+i*0x40))
	}
	return seg
}

// signature drives every hook a few thousand times and hashes the
// decisions, giving one value that captures the injector's behaviour.
func signature(t *testing.T, cfg Config) uint64 {
	t.Helper()
	in, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	var h uint64
	seg := in.PerturbBundles(sampleSegment())
	h = xrand.Mix(h, seg.Threshold, uint64(len(seg.Entries)), uint64(len(seg.TaggedAddrs)))
	for _, a := range seg.TaggedAddrs {
		h = xrand.Mix(h, uint64(a))
	}
	for i := 0; i < 4096; i++ {
		if in.FlipTag() {
			h = xrand.Mix(h, 1, uint64(i))
		}
		if in.DropPrefetch() {
			h = xrand.Mix(h, 2, uint64(i))
		}
		h = xrand.Mix(h, 3, in.DelayPrefetch())
		h = xrand.Mix(h, 4, in.JitterLatency(50))
		h = xrand.Mix(h, 5, uint64(in.MSHRReserve(16)))
	}
	return h
}

// TestDeterminismPerClass proves every fault class replays identically
// for a fixed seed and diverges for a different seed.
func TestDeterminismPerClass(t *testing.T) {
	for _, c := range Classes() {
		c := c
		t.Run(string(c), func(t *testing.T) {
			cfg := Config{Class: c, Seed: 42}
			a, b := signature(t, cfg), signature(t, cfg)
			if a != b {
				t.Fatalf("class %s: same seed produced different fault patterns (%#x vs %#x)", c, a, b)
			}
			other := signature(t, Config{Class: c, Seed: 43})
			if other == a {
				t.Errorf("class %s: seed change did not change the fault pattern", c)
			}
		})
	}
}

// TestNoneInjectsNothing asserts the disabled injector is a strict
// no-op at every hook.
func TestNoneInjectsNothing(t *testing.T) {
	in, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	seg := sampleSegment()
	got := in.PerturbBundles(seg)
	if !reflect.DeepEqual(got, seg) {
		t.Error("ClassNone perturbed the bundle segment")
	}
	for i := 0; i < 1000; i++ {
		if in.FlipTag() || in.DropPrefetch() || in.DelayPrefetch() != 0 ||
			in.JitterLatency(50) != 50 || in.MSHRReserve(16) != 0 {
			t.Fatal("ClassNone injected a fault")
		}
	}
}

// TestPerturbBundlesEffects sanity-checks the bundle classes actually
// change the segment in the documented way.
func TestPerturbBundlesEffects(t *testing.T) {
	seg := sampleSegment()

	in, _ := New(Config{Class: ClassBundleCorrupt, Seed: 7})
	out := in.PerturbBundles(seg)
	if len(out.TaggedAddrs) >= len(seg.TaggedAddrs) {
		t.Errorf("bundle-corrupt did not truncate: %d -> %d tags", len(seg.TaggedAddrs), len(out.TaggedAddrs))
	}
	flipped := 0
	for i := range out.TaggedAddrs {
		if out.TaggedAddrs[i] != seg.TaggedAddrs[i] {
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("bundle-corrupt flipped no tag bits")
	}
	// Repeated calls on one injector must agree (the hook re-derives its
	// stream from the seed).
	if again := in.PerturbBundles(seg); !reflect.DeepEqual(again, out) {
		t.Error("PerturbBundles is not idempotent across calls")
	}

	in, _ = New(Config{Class: ClassBundleStale, Seed: 7})
	out = in.PerturbBundles(seg)
	if len(out.TaggedAddrs) >= len(seg.TaggedAddrs) {
		t.Errorf("bundle-stale dropped no tags: %d -> %d", len(seg.TaggedAddrs), len(out.TaggedAddrs))
	}

	// Non-bundle classes must leave the segment untouched.
	in, _ = New(Config{Class: ClassTagFlip, Seed: 7})
	if out := in.PerturbBundles(seg); !reflect.DeepEqual(out, seg) {
		t.Error("tag-flip perturbed the bundle segment")
	}
}

// TestRatesRoughlyHonoured checks stochastic hooks track their
// configured rate within loose bounds.
func TestRatesRoughlyHonoured(t *testing.T) {
	const n = 200_000
	in, _ := New(Config{Class: ClassPrefetchDrop, Rate: 0.3, Seed: 1})
	drops := 0
	for i := 0; i < n; i++ {
		if in.DropPrefetch() {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.27 || got > 0.33 {
		t.Errorf("prefetch-drop rate %.3f, want ~0.30", got)
	}

	in, _ = New(Config{Class: ClassMSHRStarve, Rate: 0.5, Seed: 1})
	starved := 0
	for i := 0; i < n; i++ {
		if in.MSHRReserve(16) > 0 {
			starved++
		}
	}
	got = float64(starved) / n
	if got < 0.45 || got > 0.55 {
		t.Errorf("mshr-starve duty %.3f, want ~0.50", got)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Config
		err  bool
	}{
		{"", Config{}, false},
		{"none", Config{}, false},
		{"prefetch-drop", Config{Class: ClassPrefetchDrop}, false},
		{"latency-jitter:0.4", Config{Class: ClassLatencyJitter, Rate: 0.4}, false},
		{"tag-flip:0.001:99", Config{Class: ClassTagFlip, Rate: 0.001, Seed: 99}, false},
		{"bundle-corrupt::7", Config{Class: ClassBundleCorrupt, Seed: 7}, false},
		{"bogus", Config{}, true},
		{"tag-flip:2", Config{}, true},
		{"tag-flip:0.1:x", Config{}, true},
		{"tag-flip:0.1:1:extra", Config{}, true},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseSpec(%q) err=%v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, c := range Classes() {
		cfg, err := ParseSpec(string(c))
		if err != nil || cfg.Class != c {
			t.Errorf("ParseSpec(%q) = %+v, %v", c, cfg, err)
		}
		if cfg.EffectiveRate() <= 0 {
			t.Errorf("class %s has no default rate", c)
		}
	}
}

// TestServiceClasses covers the serving-layer chaos classes: parse,
// defaults, deterministic decision streams, and strict no-op behaviour
// at every simulator hook (they perturb the service, not the machine).
func TestServiceClasses(t *testing.T) {
	for _, c := range ServiceClasses() {
		if !c.Valid() {
			t.Errorf("service class %s not Valid()", c)
		}
		cfg, err := ParseSpec(string(c) + ":0.5:9")
		if err != nil || cfg.Class != c || cfg.Rate != 0.5 || cfg.Seed != 9 {
			t.Errorf("ParseSpec(%s:0.5:9) = %+v, %v", c, cfg, err)
		}
		if DefaultRate(c) <= 0 {
			t.Errorf("service class %s has no default rate", c)
		}
	}

	stream := func(seed uint64) (jobs, kills string) {
		inJ, _ := New(Config{Class: ClassJobTransient, Rate: 0.3, Seed: seed})
		inK, _ := New(Config{Class: ClassWorkerKill, Rate: 0.3, Seed: seed})
		var j, k []byte
		for i := 0; i < 256; i++ {
			j = append(j, byte('0'+b2i(inJ.FailJob())))
			k = append(k, byte('0'+b2i(inK.KillWorker())))
		}
		return string(j), string(k)
	}
	j1, k1 := stream(42)
	j2, k2 := stream(42)
	if j1 != j2 || k1 != k2 {
		t.Fatal("service chaos decisions are not deterministic for a fixed seed")
	}
	j3, k3 := stream(43)
	if j1 == j3 || k1 == k3 {
		t.Error("seed change did not change the service chaos pattern")
	}
	if !strings.ContainsRune(j1, '1') || !strings.ContainsRune(j1, '0') {
		t.Error("job-transient at rate 0.3 should mix failures and passes")
	}

	// Service classes are inert inside a simulation; simulator classes
	// are inert at the service hooks.
	in, _ := New(Config{Class: ClassJobTransient, Rate: 1, Seed: 1})
	seg := sampleSegment()
	if out := in.PerturbBundles(seg); !reflect.DeepEqual(out, seg) {
		t.Error("job-transient perturbed the bundle segment")
	}
	if in.FlipTag() || in.DropPrefetch() || in.DelayPrefetch() != 0 ||
		in.JitterLatency(50) != 50 || in.MSHRReserve(16) != 0 || in.KillWorker() {
		t.Error("job-transient leaked into a foreign hook")
	}
	sim, _ := New(Config{Class: ClassPrefetchDrop, Rate: 1, Seed: 1})
	if sim.FailJob() || sim.KillWorker() {
		t.Error("simulator class leaked into the service hooks")
	}
	none, _ := New(Config{})
	if none.FailJob() || none.KillWorker() {
		t.Error("ClassNone injected a service fault")
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestConfigString(t *testing.T) {
	if got := (Config{}).String(); got != "none" {
		t.Errorf("zero Config.String() = %q", got)
	}
	cfg := Config{Class: ClassPrefetchDrop, Rate: 0.3, Seed: 5}
	back, err := ParseSpec(cfg.String())
	if err != nil || back != cfg {
		t.Errorf("round trip %+v -> %q -> %+v (%v)", cfg, cfg.String(), back, err)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	for _, cfg := range []Config{
		{Class: "nope"},
		{Class: ClassTagFlip, Rate: 1.5},
		{Class: ClassTagFlip, Rate: -0.1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
}
