package fault

import (
	"fmt"

	"hprefetch/internal/tracefile"
	"hprefetch/internal/xrand"
)

// Storage-fault classes damage a recorded trace's byte image the way
// real storage does — bit rot, torn writes, lost tails, misplaced
// extents — so the corpus scrubber and the harness's self-healing
// replay path can be soaked deterministically. They perturb bytes, not
// simulations: inside a running simulation they are no-ops.
const (
	// ClassTraceBitRot flips single bits at seeded offsets inside frame
	// records (latent sector decay; every record keeps its length, so
	// only checksums can catch it).
	ClassTraceBitRot Class = "trace-bitrot"
	// ClassTraceTornTail cuts the file's tail — trailer, index and a
	// rate-fraction of trailing frames — the signature of a torn write
	// or a lost extent at the end of the file.
	ClassTraceTornTail Class = "trace-torn-tail"
	// ClassTraceTruncFrame cuts the file mid-record inside a seeded
	// interior frame (a partial overwrite that ends in the middle of a
	// record rather than at a boundary).
	ClassTraceTruncFrame Class = "trace-trunc-frame"
	// ClassTraceSwapFrames exchanges two adjacent frame records whole.
	// Every checksum stays valid — only the frame-continuity counters
	// can detect the damage (a misdirected write landing on the wrong
	// extent).
	ClassTraceSwapFrames Class = "trace-swap-frames"
)

// StorageClasses returns the trace-image fault classes, applied to
// recorded artifacts by the corruption soak (hptrace corrupt) rather
// than injected into a simulation.
func StorageClasses() []Class {
	return []Class{ClassTraceBitRot, ClassTraceTornTail, ClassTraceTruncFrame, ClassTraceSwapFrames}
}

const saltStore = 0x5704

// PerturbTrace returns a damaged copy of a sealed trace's byte image
// according to the configured storage-fault class. The damage is a pure
// function of (Config, data): repeated calls return identical bytes.
// The input must be a structurally clean sealed trace (it is verified
// first — corrupting an already-corrupt image would make "scrub detects
// 100% of injected faults" unfalsifiable).
func (in *Injector) PerturbTrace(data []byte) ([]byte, error) {
	switch in.cfg.Class {
	case ClassTraceBitRot, ClassTraceTornTail, ClassTraceTruncFrame, ClassTraceSwapFrames:
	default:
		return nil, fmt.Errorf("fault: %q is not a storage-fault class (valid: %v)", in.cfg.Class, StorageClasses())
	}
	lo, err := tracefile.LayoutOf(data)
	if err != nil {
		return nil, fmt.Errorf("fault: refusing to corrupt an unclean trace: %w", err)
	}
	rng := xrand.New(xrand.Mix(in.cfg.Seed, saltStore))
	out := append([]byte(nil), data...)
	frames := lo.Frames

	switch in.cfg.Class {
	case ClassTraceBitRot:
		rotted := 0
		for _, fr := range frames {
			if !rng.Bool(in.rate) {
				continue
			}
			flipBit(out, fr, rng)
			rotted++
		}
		if rotted == 0 { // the class must always injure something
			flipBit(out, frames[rng.IntN(len(frames))], rng)
		}
	case ClassTraceTornTail:
		lost := int(float64(len(frames)) * in.rate)
		if lost >= len(frames) {
			lost = len(frames) - 1
		}
		out = out[:frames[len(frames)-lost-1].Off+frames[len(frames)-lost-1].Len]
	case ClassTraceTruncFrame:
		fr := frames[rng.IntN(len(frames))]
		// Cut strictly inside the record: past its length prefix, short
		// of its final CRC byte.
		cut := fr.Off + 4 + int64(rng.IntN(int(fr.Len-5)))
		out = out[:cut]
	case ClassTraceSwapFrames:
		if len(frames) < 2 {
			return nil, fmt.Errorf("fault: %s needs at least 2 frames, trace has %d", in.cfg.Class, len(frames))
		}
		i := rng.IntN(len(frames) - 1)
		a, b := frames[i], frames[i+1]
		swapped := append([]byte(nil), out[:a.Off]...)
		swapped = append(swapped, out[b.Off:b.Off+b.Len]...)
		swapped = append(swapped, out[a.Off:a.Off+a.Len]...)
		swapped = append(swapped, out[b.Off+b.Len:]...)
		out = swapped
	}
	return out, nil
}

// flipBit flips one seeded bit inside the record's payload region.
func flipBit(data []byte, fr tracefile.Span, rng *xrand.RNG) {
	off := fr.Off + 4 + int64(rng.IntN(int(fr.Len-8)))
	data[off] ^= 1 << uint(rng.IntN(8))
}
