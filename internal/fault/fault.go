// Package fault is the deterministic fault-injection layer for the
// software→hardware Bundle channel. The paper's mechanism trusts
// link-time metadata at runtime (§5.2); in a production deployment that
// trust can be violated — a rebuilt binary paired with a stale Bundle
// table, a flipped tag bit, a dropped or delayed prefetch, a memory
// system under pressure. The injector perturbs every layer of that
// channel so the degradation experiments can demonstrate the contract
// the prefetcher must keep: degrade to FDIP, never worse, never crash.
//
// Every decision flows from a seeded xrand stream, one independent
// stream per hook, so a (Config, call-sequence) pair always reproduces
// the identical fault pattern and one hook's consumption never shifts
// another's — the same property that makes the rest of the simulator
// deterministic.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"hprefetch/internal/binfmt"
	"hprefetch/internal/isa"
	"hprefetch/internal/xrand"
)

// Class names one fault class.
type Class string

const (
	// ClassNone injects nothing (the zero value).
	ClassNone Class = ""
	// ClassBundleCorrupt flips tag-address bits and truncates the
	// .bundles segment before loading (bit rot, torn writes).
	ClassBundleCorrupt Class = "bundle-corrupt"
	// ClassBundleStale pairs the binary with a Bundle table from an
	// older build: a fraction of tags shifted by a constant layout skew,
	// a fraction dropped entirely (renamed or deleted functions).
	ClassBundleStale Class = "bundle-stale"
	// ClassTagFlip flips the Bundle-entry bit on retired instructions at
	// runtime (soft errors in the reserved bit).
	ClassTagFlip Class = "tag-flip"
	// ClassPrefetchDrop drops or delays individual prefetch issues at
	// the sim.Machine boundary (interconnect pressure).
	ClassPrefetchDrop Class = "prefetch-drop"
	// ClassLatencyJitter multiplies LLC/DRAM fill latency on a fraction
	// of fills (co-runner interference).
	ClassLatencyJitter Class = "latency-jitter"
	// ClassMSHRStarve periodically reserves most of the MSHR file,
	// starving asynchronous fills (demand traffic from sibling threads).
	ClassMSHRStarve Class = "mshr-starve"

	// Service-level classes perturb the serving layer rather than the
	// simulated machine: the chaos harness composes them with the
	// simulator classes above to prove jobs survive infrastructure
	// failures. They are no-ops inside a simulation.

	// ClassJobTransient makes a job execution fail with a retryable
	// (transient) error before the simulation starts — a stand-in for an
	// environmental blip: an OOM kill, a filesystem hiccup, a dependency
	// timeout.
	ClassJobTransient Class = "job-transient"
	// ClassWorkerKill panics the worker goroutine mid-job (the recovered
	// equivalent of a worker process dying under the scheduler).
	ClassWorkerKill Class = "worker-kill"
)

// Classes returns every injectable fault class, in documentation order.
func Classes() []Class {
	return []Class{
		ClassBundleCorrupt, ClassBundleStale, ClassTagFlip,
		ClassPrefetchDrop, ClassLatencyJitter, ClassMSHRStarve,
	}
}

// ServiceClasses returns the serving-layer fault classes, injected by
// the job service (hpserved -chaos) rather than the simulator.
func ServiceClasses() []Class {
	return []Class{ClassJobTransient, ClassWorkerKill}
}

// Valid reports whether c is ClassNone or a known injectable class.
func (c Class) Valid() bool {
	if c == ClassNone {
		return true
	}
	for _, k := range Classes() {
		if c == k {
			return true
		}
	}
	for _, k := range ServiceClasses() {
		if c == k {
			return true
		}
	}
	for _, k := range StorageClasses() {
		if c == k {
			return true
		}
	}
	return false
}

// DefaultRate returns the class's default intensity, chosen to be
// clearly visible in the degradation table without being a caricature.
func DefaultRate(c Class) float64 {
	switch c {
	case ClassBundleCorrupt:
		return 0.25 // fraction of tagged addresses bit-flipped
	case ClassBundleStale:
		return 0.35 // fraction of tags skewed or dropped
	case ClassTagFlip:
		return 0.0005 // per-retired-event flip probability
	case ClassPrefetchDrop:
		return 0.30 // per-prefetch drop probability
	case ClassLatencyJitter:
		return 0.25 // per-fill jitter probability
	case ClassMSHRStarve:
		return 0.50 // duty fraction of time starved
	case ClassJobTransient:
		return 0.20 // per-attempt transient failure probability
	case ClassWorkerKill:
		return 0.05 // per-attempt worker panic probability
	case ClassTraceBitRot:
		return 0.25 // per-frame single-bit-flip probability
	case ClassTraceTornTail:
		return 0.25 // fraction of trailing frames lost with the tail
	case ClassTraceTruncFrame:
		return 0.50 // (unused position knob) seeded cut inside a frame
	case ClassTraceSwapFrames:
		return 0.50 // (unused position knob) seeded adjacent-frame swap
	}
	return 0
}

// Config selects a fault class, its intensity, and the injection seed.
// The zero value injects nothing, so it can live inside other
// configuration structs without ceremony.
type Config struct {
	// Class is the fault class (ClassNone = disabled).
	Class Class
	// Rate is the class-specific intensity in (0,1]; 0 selects
	// DefaultRate(Class).
	Rate float64
	// Seed drives every injection decision.
	Seed uint64
}

// Enabled reports whether the configuration injects anything.
func (c Config) Enabled() bool { return c.Class != ClassNone }

// EffectiveRate resolves the configured or default intensity.
func (c Config) EffectiveRate() float64 {
	if c.Rate > 0 {
		return c.Rate
	}
	return DefaultRate(c.Class)
}

// String renders the spec form accepted by ParseSpec.
func (c Config) String() string {
	if !c.Enabled() {
		return "none"
	}
	return fmt.Sprintf("%s:%g:%d", c.Class, c.EffectiveRate(), c.Seed)
}

// ParseSpec parses the CLI spec "class[:rate[:seed]]"; "none" and the
// empty string disable injection.
func ParseSpec(s string) (Config, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return Config{}, nil
	}
	parts := strings.Split(s, ":")
	cfg := Config{Class: Class(parts[0])}
	if !cfg.Valid() || !cfg.Enabled() {
		return Config{}, fmt.Errorf("fault: unknown class %q (valid: %v)",
			parts[0], append(append(Classes(), ServiceClasses()...), StorageClasses()...))
	}
	if len(parts) >= 2 && parts[1] != "" {
		r, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || r < 0 || r > 1 {
			return Config{}, fmt.Errorf("fault: bad rate %q (want 0..1)", parts[1])
		}
		cfg.Rate = r
	}
	if len(parts) >= 3 {
		seed, err := strconv.ParseUint(parts[2], 0, 64)
		if err != nil {
			return Config{}, fmt.Errorf("fault: bad seed %q", parts[2])
		}
		cfg.Seed = seed
	}
	if len(parts) > 3 {
		return Config{}, fmt.Errorf("fault: malformed spec %q (want class[:rate[:seed]])", s)
	}
	return cfg, nil
}

// Valid reports whether the configuration names a known class with a
// sane rate.
func (c Config) Valid() bool {
	return c.Class.Valid() && c.Rate >= 0 && c.Rate <= 1
}

// Per-hook sub-seed salts: each hook draws from its own stream so the
// decision sequences are mutually independent.
const (
	saltBundle = 0xB0B1
	saltTag    = 0x7A67
	saltDrop   = 0xD309
	saltDelay  = 0xDE1A
	saltLat    = 0x1A77
	saltStarve = 0x57A4
	saltJob    = 0x10B5
	saltKill   = 0x6B11
)

// Injector makes the injection decisions for one simulated run. It is
// not safe for concurrent use; every run builds its own.
type Injector struct {
	cfg  Config
	rate float64

	tag   *xrand.RNG
	drop  *xrand.RNG
	delay *xrand.RNG
	lat   *xrand.RNG
	job   *xrand.RNG
	kill  *xrand.RNG

	starveTick  uint64
	starvePhase uint64
}

// starvePeriod is the MSHR starvation duty-cycle period in occupancy
// queries; bursts this long alternate with free intervals.
const starvePeriod = 4096

// New builds an injector for cfg. A ClassNone config yields a valid
// injector whose every hook is a no-op.
func New(cfg Config) (*Injector, error) {
	if !cfg.Valid() {
		return nil, fmt.Errorf("fault: invalid config %+v", cfg)
	}
	return &Injector{
		cfg:         cfg,
		rate:        cfg.EffectiveRate(),
		tag:         xrand.New(xrand.Mix(cfg.Seed, saltTag)),
		drop:        xrand.New(xrand.Mix(cfg.Seed, saltDrop)),
		delay:       xrand.New(xrand.Mix(cfg.Seed, saltDelay)),
		lat:         xrand.New(xrand.Mix(cfg.Seed, saltLat)),
		job:         xrand.New(xrand.Mix(cfg.Seed, saltJob)),
		kill:        xrand.New(xrand.Mix(cfg.Seed, saltKill)),
		starvePhase: xrand.Mix(cfg.Seed, saltStarve) % starvePeriod,
	}, nil
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// PerturbBundles returns a perturbed deep copy of the .bundles segment
// — the pre-load corruption hook. It draws from a fresh stream derived
// from the seed alone, so repeated calls produce identical output.
func (in *Injector) PerturbBundles(seg binfmt.BundleSegment) binfmt.BundleSegment {
	out := binfmt.BundleSegment{
		Threshold:   seg.Threshold,
		Entries:     append([]isa.FuncID(nil), seg.Entries...),
		TaggedAddrs: append([]isa.Addr(nil), seg.TaggedAddrs...),
	}
	rng := xrand.New(xrand.Mix(in.cfg.Seed, saltBundle))
	switch in.cfg.Class {
	case ClassBundleCorrupt:
		// Bit rot: flip a low address bit on a fraction of tags, then
		// lose the segment tail (a torn write truncates the table).
		for i := range out.TaggedAddrs {
			if rng.Bool(in.rate) {
				bit := uint(rng.Range(2, 11))
				out.TaggedAddrs[i] ^= isa.Addr(1) << bit
			}
		}
		cut := len(out.TaggedAddrs) - int(float64(len(out.TaggedAddrs))*in.rate/2)
		out.TaggedAddrs = out.TaggedAddrs[:cut]
	case ClassBundleStale:
		// Old-build table: a constant layout skew moves a fraction of
		// the tags off their instructions; another fraction vanished in
		// the rebuild.
		skew := isa.Addr(rng.Range(1, 16)) * isa.InstrSize
		kept := out.TaggedAddrs[:0]
		for _, a := range out.TaggedAddrs {
			switch {
			case rng.Bool(in.rate / 2): // dropped
			case rng.Bool(in.rate):
				kept = append(kept, a+skew)
			default:
				kept = append(kept, a)
			}
		}
		out.TaggedAddrs = kept
	}
	return out
}

// FlipTag reports whether the current retired event's Bundle-entry bit
// should be inverted.
func (in *Injector) FlipTag() bool {
	if in.cfg.Class != ClassTagFlip {
		return false
	}
	return in.tag.Bool(in.rate)
}

// DropPrefetch reports whether the current prefetch issue should be
// dropped at the machine boundary.
func (in *Injector) DropPrefetch() bool {
	if in.cfg.Class != ClassPrefetchDrop {
		return false
	}
	return in.drop.Bool(in.rate)
}

// DelayPrefetch returns extra fill latency in cycles for a surviving
// prefetch issue (0 = on time).
func (in *Injector) DelayPrefetch() uint64 {
	if in.cfg.Class != ClassPrefetchDrop {
		return 0
	}
	if !in.delay.Bool(in.rate / 2) {
		return 0
	}
	return uint64(in.delay.Range(20, 120))
}

// JitterLatency perturbs an LLC/memory fill latency (cycles): a
// fraction of fills pay a 2-4x interference multiplier.
func (in *Injector) JitterLatency(lat uint64) uint64 {
	if in.cfg.Class != ClassLatencyJitter {
		return lat
	}
	if !in.lat.Bool(in.rate) {
		return lat
	}
	return lat * uint64(in.lat.Range(2, 4))
}

// FailJob reports whether the current job attempt should fail with a
// synthetic transient error (service-level chaos).
func (in *Injector) FailJob() bool {
	if in.cfg.Class != ClassJobTransient {
		return false
	}
	return in.job.Bool(in.rate)
}

// KillWorker reports whether the current job attempt should panic its
// worker goroutine (service-level chaos).
func (in *Injector) KillWorker() bool {
	if in.cfg.Class != ClassWorkerKill {
		return false
	}
	return in.kill.Bool(in.rate)
}

// MSHRReserve returns how many of the capacity MSHR entries are
// currently held by the injected co-runner. The starvation follows a
// deterministic duty cycle over occupancy queries, with a seed-derived
// phase; at least one entry is always left usable.
func (in *Injector) MSHRReserve(capacity int) int {
	if in.cfg.Class != ClassMSHRStarve || capacity <= 1 {
		return 0
	}
	pos := (in.starveTick + in.starvePhase) % starvePeriod
	in.starveTick++
	if float64(pos) < in.rate*starvePeriod {
		return capacity - 1
	}
	return 0
}
