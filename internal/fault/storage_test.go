package fault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hprefetch/internal/tracefile"
	"hprefetch/internal/workloads"
)

// storageFixture records one small multi-frame trace shared by the
// storage-fault tests.
func storageFixture(t *testing.T) []byte {
	t.Helper()
	built, err := workloads.Build("gin")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gin.hpt")
	meta := tracefile.Meta{Workload: "gin", Seed: built.Workload.TraceSeed, TargetInstructions: 30_000}
	if _, err := tracefile.Record(path, built.NewEngine(), meta, 30_000, 64, tracefile.Options{FrameEvents: 256}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPerturbTraceDeterministic(t *testing.T) {
	clean := storageFixture(t)
	for _, class := range StorageClasses() {
		t.Run(string(class), func(t *testing.T) {
			perturb := func(seed uint64) []byte {
				in, err := New(Config{Class: class, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				out, err := in.PerturbTrace(append([]byte(nil), clean...))
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			a, b := perturb(42), perturb(42)
			if !bytes.Equal(a, b) {
				t.Fatal("same seed produced different damage")
			}
			if bytes.Equal(a, clean) {
				t.Fatal("injection left the trace untouched")
			}
			// Coarse classes (a torn tail cuts at frame granularity) can
			// collide across seeds; only bit-rot's fine-grained stream
			// must diverge.
			if class == ClassTraceBitRot {
				if c := perturb(43); bytes.Equal(a, c) {
					t.Fatal("different seeds produced identical damage")
				}
			}
		})
	}
}

// TestPerturbTraceDamageIsDetectable: every storage class produces a
// file deep verification rejects — no class can manufacture damage the
// scrubber would wave through. (Swapped frames keep every record
// structurally intact, so the structural layout walk alone is not
// enough; the deep pass decodes the stream and catches the
// discontinuity.)
func TestPerturbTraceDamageIsDetectable(t *testing.T) {
	clean := storageFixture(t)
	if _, err := tracefile.LayoutOf(clean); err != nil {
		t.Fatalf("fixture not clean: %v", err)
	}
	for _, class := range StorageClasses() {
		t.Run(string(class), func(t *testing.T) {
			in, err := New(Config{Class: class, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			damaged, err := in.PerturbTrace(append([]byte(nil), clean...))
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "damaged.hpt")
			if err := os.WriteFile(path, damaged, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := tracefile.VerifyDeep(path); err == nil {
				t.Fatalf("%s damage passed deep verification", class)
			}
		})
	}
}

// TestPerturbTraceRefusesUncleanInput: corrupting an already-damaged
// trace would make fault attribution ambiguous, so the injector
// fail-stops instead.
func TestPerturbTraceRefusesUncleanInput(t *testing.T) {
	clean := storageFixture(t)
	dirty := append([]byte(nil), clean...)
	dirty[len(dirty)/2] ^= 0x01
	in, err := New(Config{Class: ClassTraceBitRot, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.PerturbTrace(dirty); !errors.Is(err, tracefile.ErrCorrupt) {
		t.Fatalf("PerturbTrace(dirty) = %v, want ErrCorrupt", err)
	}
}

func TestStorageClassSpecsParse(t *testing.T) {
	for _, class := range StorageClasses() {
		cfg, err := ParseSpec(string(class) + ":0.5:9")
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if cfg.Class != class || cfg.Rate != 0.5 || cfg.Seed != 9 {
			t.Fatalf("%s parsed as %+v", class, cfg)
		}
		if !cfg.Valid() {
			t.Fatalf("%s spec invalid", class)
		}
	}
}
