// Package linker performs the link step of the paper's software pipeline
// (§5.2): it lays out the program's functions in the text segment, builds
// the static call graph "from the binary", runs the Bundle identification
// pass (Algorithm 1, internal/callgraph), and appends the .bundles segment
// recording the Bundle entry functions and the exact addresses of the
// call/return instructions to tag. Running the analysis at link time is
// what lets the scheme cover dynamically linked library code, which the
// generator models as the shared library pool.
package linker

import (
	"fmt"
	"sort"

	"hprefetch/internal/binfmt"
	"hprefetch/internal/callgraph"
	"hprefetch/internal/isa"
	"hprefetch/internal/program"
	"hprefetch/internal/xrand"
)

// DefaultTextBase is where the text segment is placed.
const DefaultTextBase = isa.Addr(0x0040_0000)

// funcAlign aligns every function start; real linkers align to 16 bytes.
const funcAlign = 16

// Options configures the link step.
type Options struct {
	// Threshold is the Bundle divergence threshold in bytes
	// (default: callgraph.DefaultThreshold, the paper's 200KB).
	Threshold uint64
	// Cap overrides the reachable-size saturation cap (0 = 4x threshold).
	Cap uint64
	// TextBase overrides the text segment base (0 = DefaultTextBase).
	TextBase isa.Addr
	// NoShuffle lays functions out in FuncID order instead of the
	// default deterministic shuffle. Real binaries do not place whole
	// call trees contiguously; shuffling keeps spatial locality honest
	// for the prefetchers under study.
	NoShuffle bool
	// SkipBundles disables the Bundle identification pass, producing a
	// plain binary (used for baselines that need no tagging).
	SkipBundles bool
}

// Linked is the output of the link step.
type Linked struct {
	// Prog is the input program, now with assigned addresses.
	Prog *program.Program
	// Graph is the static call graph built during linking.
	Graph *callgraph.Graph
	// Analysis is the Bundle identification result (nil if skipped).
	Analysis *callgraph.Analysis
	// Image is the linked binary image including the .bundles segment.
	Image *binfmt.Image
}

// Link lays out the program and runs the Bundle identification pass.
// The program is modified in place (addresses assigned).
func Link(p *program.Program, opt Options) (*Linked, error) {
	if p.NumFuncs() == 0 {
		return nil, fmt.Errorf("linker: empty program")
	}
	threshold := opt.Threshold
	if threshold == 0 {
		threshold = callgraph.DefaultThreshold
	}
	base := opt.TextBase
	if base == 0 {
		base = DefaultTextBase
	}

	layout(p, base, !opt.NoShuffle)

	g := callgraph.FromProgram(p)
	out := &Linked{Prog: p, Graph: g}

	im := binfmt.FromProgram(p)
	if !opt.SkipBundles {
		a, err := callgraph.Analyze(g, callgraph.Options{Threshold: threshold, Cap: opt.Cap})
		if err != nil {
			return nil, fmt.Errorf("linker: bundle analysis: %w", err)
		}
		out.Analysis = a
		im.Bundles = binfmt.BundleSegment{
			Threshold:   threshold,
			Entries:     append([]isa.FuncID(nil), a.Entries...),
			TaggedAddrs: taggedAddrs(p, a),
		}
	}
	out.Image = im
	return out, nil
}

// layout assigns function addresses. The default deterministic shuffle
// interleaves unrelated functions the way independent compilation units
// do, so a handler's working set spans scattered cache blocks and spatial
// regions rather than one convenient contiguous range.
func layout(p *program.Program, base isa.Addr, shuffle bool) {
	// Two-zone layout: executable (hot-candidate) code first, cold and
	// orphan code after it — the clustering real linkers produce, which
	// keeps the hot working set within a compact address range even in
	// 100MB binaries. Each zone is shuffled internally so related
	// functions still land on scattered cache blocks and pages.
	var hot, cold []isa.FuncID
	for i := range p.Funcs {
		if p.Funcs[i].Kind == program.KindCold {
			cold = append(cold, isa.FuncID(i))
		} else {
			hot = append(hot, isa.FuncID(i))
		}
	}
	if shuffle {
		rng := xrand.New(xrand.Mix(p.Seed, 0x1A10_07))
		for _, zone := range [][]isa.FuncID{hot, cold} {
			for i := len(zone) - 1; i > 0; i-- {
				j := rng.IntN(i + 1)
				zone[i], zone[j] = zone[j], zone[i]
			}
		}
	}
	order := append(hot, cold...)
	addr := base
	for _, id := range order {
		f := p.Func(id)
		f.Addr = addr
		addr += isa.Addr(f.Size)
		addr = (addr + funcAlign - 1) &^ (funcAlign - 1)
	}
	p.TextBase = base
	p.TextSize = uint64(addr - base)
	p.BuildAddrIndex()
}

// taggedAddrs computes the instruction addresses to tag: the return
// instruction of every Bundle entry function, and every call instruction
// that can invoke an entry function (for indirect calls, any target being
// an entry suffices — the Bundle ID is derived at runtime from the
// address following the tagged instruction, so each dynamic target still
// yields its own Bundle).
func taggedAddrs(p *program.Program, a *callgraph.Analysis) []isa.Addr {
	var addrs []isa.Addr
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if a.IsEntry(isa.FuncID(i)) {
			addrs = append(addrs, f.Addr+isa.Addr(f.RetOff()))
		}
		for ci := range f.Calls {
			c := &f.Calls[ci]
			tagged := false
			if c.Indirect() {
				for _, t := range p.TargetSets[c.Targets].Funcs {
					if a.IsEntry(t) {
						tagged = true
						break
					}
				}
			} else {
				tagged = a.IsEntry(c.Callee)
			}
			if tagged {
				addrs = append(addrs, f.Addr+isa.Addr(c.Off)+program.CallInstrOff)
			}
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}
