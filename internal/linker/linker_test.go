package linker

import (
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/program"
)

func testProgram(t *testing.T, seed uint64) *program.Program {
	t.Helper()
	cfg := program.DefaultConfig()
	cfg.Name = "link-test"
	cfg.Seed = seed
	cfg.OrphanFuncs = 300
	p, err := program.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLayoutNonOverlapping(t *testing.T) {
	p := testProgram(t, 31)
	l, err := Link(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Linked() {
		t.Fatal("program not marked linked")
	}
	type span struct{ lo, hi isa.Addr }
	spans := make([]span, 0, p.NumFuncs())
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if f.Addr < p.TextBase {
			t.Fatalf("function %d below text base", i)
		}
		if f.Addr%16 != 0 {
			t.Fatalf("function %d unaligned at %v", i, f.Addr)
		}
		spans = append(spans, span{f.Addr, f.Addr + isa.Addr(f.Size)})
	}
	// Sort by start and check pairwise disjointness.
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("functions overlap: [%v,%v) and [%v,%v)", a.lo, a.hi, b.lo, b.hi)
			}
		}
		if i > 200 {
			break // quadratic check bounded; FuncAt test covers the rest
		}
	}
	_ = l
}

func TestFuncAtAfterLink(t *testing.T) {
	p := testProgram(t, 32)
	if _, err := Link(p, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range p.Funcs {
		f := &p.Funcs[i]
		for _, probe := range []isa.Addr{f.Addr, f.Addr + isa.Addr(f.Size) - 1, f.Addr + isa.Addr(f.Size/2)} {
			id, ok := p.FuncAt(probe)
			if !ok || id != isa.FuncID(i) {
				t.Fatalf("FuncAt(%v) = %d,%v; want %d", probe, id, ok, i)
			}
		}
	}
	if _, ok := p.FuncAt(p.TextBase - 1); ok {
		t.Error("FuncAt before text base succeeded")
	}
	if _, ok := p.FuncAt(p.TextBase + isa.Addr(p.TextSize)); ok {
		t.Error("FuncAt past text end succeeded")
	}
}

func TestShuffleChangesLayoutButNotStructure(t *testing.T) {
	a := testProgram(t, 33)
	b := testProgram(t, 33)
	if _, err := Link(a, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Link(b, Options{NoShuffle: true}); err != nil {
		t.Fatal(err)
	}
	different := false
	for i := range a.Funcs {
		if a.Funcs[i].Addr != b.Funcs[i].Addr {
			different = true
			break
		}
	}
	if !different {
		t.Error("shuffled layout identical to ID-order layout")
	}
	// The shuffle must be deterministic.
	c := testProgram(t, 33)
	if _, err := Link(c, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range a.Funcs {
		if a.Funcs[i].Addr != c.Funcs[i].Addr {
			t.Fatal("shuffled layout not deterministic")
		}
	}
}

func TestBundleSegmentContents(t *testing.T) {
	p := testProgram(t, 34)
	l, err := Link(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seg := &l.Image.Bundles
	if seg.Empty() {
		t.Fatal("bundle segment empty on default config")
	}
	if seg.Threshold != 200<<10 {
		t.Errorf("threshold = %d", seg.Threshold)
	}
	// Every entry function's return instruction must be tagged.
	tagged := map[isa.Addr]bool{}
	for _, a := range seg.TaggedAddrs {
		tagged[a] = true
	}
	for _, e := range seg.Entries {
		f := p.Func(e)
		retAddr := f.Addr + isa.Addr(f.RetOff())
		if !tagged[retAddr] {
			t.Errorf("entry %d return at %v not tagged", e, retAddr)
		}
	}
	// Every direct call to an entry must be tagged; calls to non-entries
	// must not be (unless the same address somehow aliases, which the
	// disjoint layout precludes).
	for i := range p.Funcs {
		f := &p.Funcs[i]
		for _, c := range f.Calls {
			if c.Indirect() {
				continue
			}
			addr := f.Addr + isa.Addr(c.Off) + program.CallInstrOff
			if l.Analysis.IsEntry(c.Callee) != tagged[addr] {
				t.Errorf("call at %v to %d: tag mismatch (entry=%v)",
					addr, c.Callee, l.Analysis.IsEntry(c.Callee))
			}
		}
	}
	// Tagged addrs sorted ascending.
	for i := 1; i < len(seg.TaggedAddrs); i++ {
		if seg.TaggedAddrs[i] <= seg.TaggedAddrs[i-1] {
			t.Fatal("tagged addresses not strictly sorted")
		}
	}
}

func TestSkipBundles(t *testing.T) {
	p := testProgram(t, 35)
	l, err := Link(p, Options{SkipBundles: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.Analysis != nil || !l.Image.Bundles.Empty() {
		t.Error("SkipBundles still produced bundle data")
	}
}

func TestLinkEmptyProgram(t *testing.T) {
	if _, err := Link(&program.Program{}, Options{}); err == nil {
		t.Error("empty program linked without error")
	}
}

func TestLinkOptions(t *testing.T) {
	p := testProgram(t, 36)
	l, err := Link(p, Options{TextBase: 0x10000000, Threshold: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.TextBase != 0x10000000 {
		t.Errorf("text base %v", p.TextBase)
	}
	if l.Image.Bundles.Threshold != 64<<10 {
		t.Errorf("threshold %d", l.Image.Bundles.Threshold)
	}
	// A lower threshold must find at least as many entries as the
	// default 200KB one.
	q := testProgram(t, 36)
	ld, err := Link(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Analysis.Entries) < len(ld.Analysis.Entries) {
		t.Errorf("64KB threshold found %d entries, 200KB found %d",
			len(l.Analysis.Entries), len(ld.Analysis.Entries))
	}
}

func TestHotColdZoning(t *testing.T) {
	p := testProgram(t, 37)
	if _, err := Link(p, Options{}); err != nil {
		t.Fatal(err)
	}
	// Every non-cold function must be laid out below every cold one.
	var maxHot, minCold isa.Addr = 0, ^isa.Addr(0)
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if f.Kind == program.KindCold {
			if f.Addr < minCold {
				minCold = f.Addr
			}
		} else if f.Addr > maxHot {
			maxHot = f.Addr
		}
	}
	if maxHot >= minCold {
		t.Errorf("hot zone (max %v) overlaps cold zone (min %v)", maxHot, minCold)
	}
}
