package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// stubRunner returns a Runner whose simulations are replaced by fn, so
// scheduling behaviour is observable without real runs.
func stubRunner(max int, fn func(ctx context.Context, workload string, scheme Scheme, rc RunConfig) (*Result, error)) *Runner {
	r := NewRunner(max)
	r.runFn = fn
	return r
}

// TestRunnerSingleFlight is the regression test for the duplicate-work
// race the old memo map had: two concurrent callers with the same key
// both simulated (check-then-compute with no in-flight tracking). The
// Runner must make the second caller wait and share the one result.
func TestRunnerSingleFlight(t *testing.T) {
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	r := stubRunner(8, func(ctx context.Context, w string, s Scheme, rc RunConfig) (*Result, error) {
		if runs.Add(1) == 1 {
			close(started)
		}
		<-release
		return &Result{TagDrops: 42}, nil
	})

	rc := QuickRunConfig()
	const callers = 8
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run("gin", SchemeFDIP, rc)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	<-started // the leader is inside the simulation...
	for r.Stats().SharedWaits < callers-1 {
		// ...spin until every other caller has parked on its flight.
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("%d concurrent identical calls performed %d simulations, want 1", callers, got)
	}
	for i, res := range results {
		if res != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
	st := r.Stats()
	if st.Misses != 1 || st.SharedWaits != callers-1 {
		t.Fatalf("stats %+v, want 1 miss and %d shared waits", st, callers-1)
	}
}

// TestRunnerLRUBound verifies the cache cannot grow past its limit and
// evicts least-recently-used results first.
func TestRunnerLRUBound(t *testing.T) {
	var runs atomic.Int64
	r := stubRunner(2, func(ctx context.Context, w string, s Scheme, rc RunConfig) (*Result, error) {
		runs.Add(1)
		return &Result{}, nil
	})
	rc := QuickRunConfig()
	for i, w := range []string{"a", "b", "c"} {
		if _, err := r.Run(w, SchemeFDIP, rc); err != nil {
			t.Fatal(err)
		}
		if got := r.Stats().Entries; got > 2 {
			t.Fatalf("after insert %d: %d entries, bound is 2", i+1, got)
		}
	}
	st := r.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction and 2 entries", st)
	}
	// "a" was evicted: running it again simulates; "c" is still cached.
	if _, err := r.Run("c", SchemeFDIP, rc); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 3 {
		t.Fatalf("cached re-run simulated (runs=%d)", got)
	}
	if _, err := r.Run("a", SchemeFDIP, rc); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 4 {
		t.Fatalf("evicted entry not re-simulated (runs=%d)", got)
	}
}

// TestRunnerErrorNotCached verifies failures are reported but never
// cached, so a transient failure does not poison the key.
func TestRunnerErrorNotCached(t *testing.T) {
	var runs atomic.Int64
	r := stubRunner(8, func(ctx context.Context, w string, s Scheme, rc RunConfig) (*Result, error) {
		if runs.Add(1) == 1 {
			return nil, fmt.Errorf("transient")
		}
		return &Result{}, nil
	})
	rc := QuickRunConfig()
	if _, err := r.Run("gin", SchemeFDIP, rc); err == nil {
		t.Fatal("first run should fail")
	}
	if res, err := r.Run("gin", SchemeFDIP, rc); err != nil || res == nil {
		t.Fatalf("second run: %v", err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("error was cached (runs=%d)", got)
	}
}

// TestRunnerWaiterCancellation verifies a waiter whose context expires
// stops waiting with its own error while the leader's run completes and
// is cached for later callers.
func TestRunnerWaiterCancellation(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	r := stubRunner(8, func(ctx context.Context, w string, s Scheme, rc RunConfig) (*Result, error) {
		close(started)
		<-release
		return &Result{}, nil
	})

	rc := QuickRunConfig()
	leaderDone := make(chan error, 1)
	go func() {
		_, err := r.Run("gin", SchemeFDIP, rc)
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterRC := rc
	waiterRC.Ctx = ctx
	waiterDone := make(chan error, 1)
	go func() {
		_, err := r.Run("gin", SchemeFDIP, waiterRC)
		waiterDone <- err
	}()
	for r.Stats().SharedWaits == 0 {
		// spin until the waiter has parked on the leader's flight
	}
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	// The completed run is cached despite the waiter's departure.
	if res, err := r.Run("gin", SchemeFDIP, rc); err != nil || res == nil {
		t.Fatalf("post-flight lookup: %v", err)
	}
	if st := r.Stats(); st.Misses != 1 {
		t.Fatalf("stats %+v, want exactly 1 miss", st)
	}
}

// TestRunnerRealSingleFlight drives the real simulation path (no stub)
// with concurrent identical requests under -race: exactly one simulation
// happens and everyone shares its Result.
func TestRunnerRealSingleFlight(t *testing.T) {
	r := NewRunner(8)
	rc := quick()
	rc.WarmInstr = 100_000
	rc.MeasureInstr = 200_000
	const callers = 6
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run("gin", SchemeFDIP, rc)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	st := r.Stats()
	if st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 simulation for %d concurrent identical calls", st, callers)
	}
	for i, res := range results {
		if res == nil || res != results[0] {
			t.Fatalf("caller %d result %p differs from %p", i, res, results[0])
		}
	}
}

// TestWarmPopulatesCache verifies Warm fills the cache so a following
// serial pass is pure hits.
func TestWarmPopulatesCache(t *testing.T) {
	var runs atomic.Int64
	r := stubRunner(64, func(ctx context.Context, w string, s Scheme, rc RunConfig) (*Result, error) {
		runs.Add(1)
		return &Result{}, nil
	})
	rc := QuickRunConfig()
	rc.Workloads = []string{"gin", "tidb-tpcc"}
	r.Warm(rc, 4)
	want := int64(2 * (len(Schemes()) + 1)) // schemes + PerfectL1I
	if got := runs.Load(); got != want {
		t.Fatalf("Warm performed %d runs, want %d", got, want)
	}
	before := runs.Load()
	for _, w := range rc.Workloads {
		for _, s := range Schemes() {
			if _, err := r.Run(w, s, rc); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := runs.Load(); got != before {
		t.Fatalf("serial pass after Warm re-simulated (%d -> %d runs)", before, got)
	}
}
