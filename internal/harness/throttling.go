package harness

import (
	"fmt"

	"hprefetch/internal/sim"
)

// throttlingDegrees is the static-degree sweep the adaptive governor is
// judged against: GHB issue degree (and Hierarchical burst budget).
var throttlingDegrees = []int{1, 2, 4, 8}

// throttlingWorkloads resolves the experiment's workload set: the
// configured restriction, or the full matrix plus chain-burst (the
// bursty microservice scenario exercises exactly the phase behaviour a
// feedback governor exists for).
func throttlingWorkloads(rc RunConfig) []string {
	if len(rc.Workloads) > 0 {
		return rc.Workloads
	}
	names := rc.workloadList()
	out := make([]string, 0, len(names)+1)
	seen := map[string]bool{}
	for _, w := range names {
		out = append(out, w)
		seen[w] = true
	}
	if !seen["chain-burst"] {
		out = append(out, "chain-burst")
	}
	return out
}

// throttlingRow renders one run of the experiment.
func throttlingRow(workload string, scheme Scheme, mode string, r *Result) []string {
	st := r.Stats
	row := []string{
		workload, string(scheme), mode,
		f3(st.IPC()),
		fmt.Sprintf("%d", st.PFIssued),
		fmt.Sprintf("%d", st.PFUseless),
		pct(st.PFAccuracy()),
		pct(st.PFLateFraction()),
		pct(st.PFTLBMissFraction()),
		fmt.Sprintf("%d", st.PFTLBDropped),
		f2(float64(st.StallScaled) / sim.CycleScale / 1e6),
	}
	if r.Governor != nil {
		row = append(row,
			fmt.Sprintf("%d", r.Governor.StepUps),
			fmt.Sprintf("%d", r.Governor.StepDowns),
			r.Governor.Level)
	} else {
		row = append(row, "-", "-", "-")
	}
	return row
}

// ThrottlingTable compares static prefetch degrees against the adaptive
// feedback governor, per workload: the GHB baseline across the static
// degree sweep and governed, the TLB-aware GHB variant, and the
// Hierarchical prefetcher's bundle-issue policy static and governed. A
// note per workload states whether adaptive beat the best static GHB
// degree — fewer useless prefetches at equal-or-better fetch stall.
func ThrottlingTable(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "throttling",
		Title: "Static vs. feedback-directed adaptive prefetch degree",
		Header: []string{
			"Workload", "Scheme", "Mode", "IPC", "PFIssued", "PFUseless",
			"Acc", "Late", "TLBMiss", "TLBDrop", "StallMCyc",
			"GovUp", "GovDown", "GovLevel",
		},
	}
	for _, w := range throttlingWorkloads(rc) {
		type staticRun struct {
			degree int
			res    *Result
		}
		var statics []staticRun
		for _, d := range throttlingDegrees {
			sub := rc
			sub.PFDegree = d
			r, err := Run(w, SchemeGHB, sub)
			if err != nil {
				return nil, err
			}
			statics = append(statics, staticRun{d, r})
			t.Rows = append(t.Rows, throttlingRow(w, SchemeGHB, fmt.Sprintf("static-%d", d), r))
		}
		gcfg := rc
		gcfg.Governed = true
		adaptive, err := Run(w, SchemeGHB, gcfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, throttlingRow(w, SchemeGHB, "adaptive", adaptive))

		tlb, err := Run(w, SchemeGHBTLB, rc)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, throttlingRow(w, SchemeGHBTLB, "static-4", tlb))

		hierStatic, err := Run(w, SchemeHier, rc)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, throttlingRow(w, SchemeHier, "static-8", hierStatic))
		hg := rc
		hg.Governed = true
		hierAdaptive, err := Run(w, SchemeHier, hg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, throttlingRow(w, SchemeHier, "adaptive", hierAdaptive))

		// Best static GHB degree = lowest fetch stall, ties broken by
		// fewer useless prefetches; the verdict the acceptance criterion
		// reads.
		best := statics[0]
		for _, s := range statics[1:] {
			bs, ss := best.res.Stats, s.res.Stats
			if ss.StallScaled < bs.StallScaled ||
				(ss.StallScaled == bs.StallScaled && ss.PFUseless < bs.PFUseless) {
				best = s
			}
		}
		as, bs := adaptive.Stats, best.res.Stats
		verdict := "no"
		if as.PFUseless < bs.PFUseless && as.StallScaled <= bs.StallScaled {
			verdict = "WIN"
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: GHB adaptive vs best static (degree %d): useless %d vs %d, stall %.2f vs %.2f Mcyc — %s",
			w, best.degree, as.PFUseless, bs.PFUseless,
			float64(as.StallScaled)/sim.CycleScale/1e6,
			float64(bs.StallScaled)/sim.CycleScale/1e6, verdict))
	}
	t.Notes = append(t.Notes,
		"Mode static-N fixes the issue degree (GHB) or replay burst budget (Hierarchical); adaptive lets the feedback governor move degree/lookahead between conservative, moderate and aggressive from interval accuracy/lateness/pollution.",
		"TLBMiss is the share of issued prefetches whose page missed the ITLB at issue; TLBDrop counts prefetches the TLB-aware scheme withheld instead.",
	)
	return t, nil
}

// ThrottlingWins reports, per workload, whether the adaptive GHB run
// beat the best static degree (fewer PFUseless at equal-or-better fetch
// stall). Tests assert at least one win.
func ThrottlingWins(rc RunConfig) (map[string]bool, error) {
	wins := map[string]bool{}
	for _, w := range throttlingWorkloads(rc) {
		var best *sim.Stats
		for _, d := range throttlingDegrees {
			sub := rc
			sub.PFDegree = d
			r, err := Run(w, SchemeGHB, sub)
			if err != nil {
				return nil, err
			}
			if best == nil || r.Stats.StallScaled < best.StallScaled ||
				(r.Stats.StallScaled == best.StallScaled && r.Stats.PFUseless < best.PFUseless) {
				best = r.Stats
			}
		}
		gcfg := rc
		gcfg.Governed = true
		a, err := Run(w, SchemeGHB, gcfg)
		if err != nil {
			return nil, err
		}
		wins[w] = a.Stats.PFUseless < best.PFUseless && a.Stats.StallScaled <= best.StallScaled
	}
	return wins, nil
}
