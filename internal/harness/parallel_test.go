package harness

import "testing"

// TestExperimentsParallelDeterministic verifies the satellite guarantee
// of the -parallel sweep mode: tables produced with concurrent
// experiment generators are byte-identical to a serial run.
func TestExperimentsParallelDeterministic(t *testing.T) {
	rc := quick()
	rc.WarmInstr = 60_000
	rc.MeasureInstr = 120_000
	ids := []string{"fig9", "fig10", "table2"}

	DropCache()
	serial, err := Experiments(ids, rc, 1)
	if err != nil {
		t.Fatal(err)
	}
	DropCache()
	parallel, err := Experiments(ids, rc, 4)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(ids) || len(parallel) != len(ids) {
		t.Fatalf("got %d serial / %d parallel tables, want %d", len(serial), len(parallel), len(ids))
	}
	for i := range ids {
		s, p := serial[i].String(), parallel[i].String()
		if s != p {
			t.Errorf("%s differs between serial and parallel runs:\n--- serial ---\n%s--- parallel ---\n%s", ids[i], s, p)
		}
	}
	// Parallelism must not have duplicated work: each distinct
	// (workload, scheme) pair simulates once despite three concurrent
	// generators sharing runs.
	st := CacheStats()
	if st.Misses == 0 || int(st.Misses) > st.Entries {
		t.Fatalf("runner stats inconsistent after parallel sweep: %+v", st)
	}
}
