package harness

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// goldenSampleSpec is the interval configuration the sampled-mode tests
// run against the golden matrix window (200k warm / 400k measure): five
// to six intervals of 10k warm + 20k measure, ~50k mean skip.
func goldenSampleSpec() SampleSpec {
	return SampleSpec{WarmInstr: 10_000, MeasureInstr: 20_000, SkipInstr: 40_000, Seed: 7}
}

func TestSampleScheduleDeterministic(t *testing.T) {
	sp := goldenSampleSpec()
	a := sampleSkips(sp, 400_000)
	b := sampleSkips(sp, 400_000)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if len(a) < 3 {
		t.Fatalf("only %d intervals fit; the spec is supposed to yield several", len(a))
	}
	for i, k := range a {
		if k < sp.SkipInstr/2 || k > sp.SkipInstr+sp.SkipInstr/2 {
			t.Errorf("skip %d = %d outside jitter band [%d, %d]", i, k, sp.SkipInstr/2, sp.SkipInstr+sp.SkipInstr/2)
		}
	}
	sp2 := sp
	sp2.Seed = 8
	c := sampleSkips(sp2, 400_000)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced the identical schedule; jitter is not seeded")
	}
	if got := sampleSkips(SampleSpec{MeasureInstr: 500_000}, 400_000); len(got) != 0 {
		t.Errorf("oversized interval fit %d times into a smaller window", len(got))
	}
}

func TestParseSampleSpec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SampleSpec
		ok   bool
	}{
		{"", SampleSpec{}, true},
		{"10000,20000,40000", SampleSpec{WarmInstr: 10000, MeasureInstr: 20000, SkipInstr: 40000}, true},
		{"1,2,3,9", SampleSpec{WarmInstr: 1, MeasureInstr: 2, SkipInstr: 3, Seed: 9}, true},
		{"1,0,3", SampleSpec{}, false},
		{"1,2", SampleSpec{}, false},
		{"bogus", SampleSpec{}, false},
	} {
		got, err := ParseSampleSpec(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseSampleSpec(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseSampleSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if err == nil && tc.in != "" {
			if rt, err2 := ParseSampleSpec(got.String()); err2 != nil || rt != got {
				t.Errorf("round-trip of %q through String() = %+v (%v)", tc.in, rt, err2)
			}
		}
	}
}

// TestSampleRecordingRejected pins the record/sample exclusion: a
// sampled run covers only part of the stream, so both the tee path and
// the record-only path must refuse the combination instead of sealing
// an incomplete trace.
func TestSampleRecordingRejected(t *testing.T) {
	rc := goldenRunConfig()
	rc.Sample = goldenSampleSpec()
	rc.RecordPath = filepath.Join(t.TempDir(), "x"+TraceExt)
	if _, err := RunUncached("gin", SchemeFDIP, rc); err == nil {
		t.Error("RunUncached accepted RecordPath+Sample; want rejection")
	}
	if _, err := RecordTrace("gin", rc.RecordPath, rc); err == nil {
		t.Error("RecordTrace accepted an enabled Sample; want rejection")
	}
	if _, err := os.Stat(rc.RecordPath); err == nil {
		t.Error("a rejected recording still left a trace file behind")
	}
}

// TestSampledVsExactGoldenMatrix bounds sampled-mode error against the
// committed exact golden IPCs for every scheme on the full golden
// workload matrix (incl. chain-burst), and pins sampled determinism:
// the same sampled configuration twice must agree on every counter.
func TestSampledVsExactGoldenMatrix(t *testing.T) {
	data, err := os.ReadFile(filepath.FromSlash(goldenPath))
	if err != nil {
		t.Fatalf("reading goldens: %v", err)
	}
	var golden []goldenEntry
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	exact := make(map[string]float64, len(golden))
	for _, e := range golden {
		ipc, err := strconv.ParseFloat(e.IPC, 64)
		if err != nil {
			t.Fatalf("golden %s/%s IPC %q: %v", e.Workload, e.Scheme, e.IPC, err)
		}
		exact[e.Workload+"/"+e.Scheme] = ipc
	}

	rc := goldenRunConfig()
	rc.Sample = goldenSampleSpec()
	// Sampling trades exactness for speed; the tolerance says how much.
	// The golden window is tiny (400k instructions, ~5 intervals), so
	// the bound is loose; real sweeps use far more intervals.
	const relTol = 0.25
	for _, w := range rc.Workloads {
		for _, s := range append(Schemes(), SchemePerfect) {
			res, err := runOne(context.Background(), w, s, rc)
			if err != nil {
				t.Fatalf("%s/%s sampled: %v", w, s, err)
			}
			rep := res.Sample
			if rep == nil {
				t.Fatalf("%s/%s: sampled run returned no SampleReport", w, s)
			}
			if rep.Intervals < 3 {
				t.Errorf("%s/%s: only %d intervals", w, s, rep.Intervals)
			}
			if rep.DetailedFrac <= 0 || rep.DetailedFrac >= 0.5 {
				t.Errorf("%s/%s: detailed fraction %.3f out of (0, 0.5)", w, s, rep.DetailedFrac)
			}
			if rep.Intervals > 1 && !(rep.IPCStdErr >= 0) {
				t.Errorf("%s/%s: bad stderr %v", w, s, rep.IPCStdErr)
			}
			want, ok := exact[w+"/"+string(s)]
			if !ok {
				t.Fatalf("no golden IPC for %s/%s", w, s)
			}
			got := res.Stats.IPC()
			if relErr := math.Abs(got-want) / want; relErr > relTol {
				t.Errorf("%s/%s: sampled IPC %.4f vs exact %.4f — rel error %.1f%% exceeds %.0f%% (stderr %.4f over %d intervals)",
					w, s, got, want, relErr*100, relTol*100, rep.IPCStdErr, rep.Intervals)
			} else {
				t.Logf("%s/%s: sampled %.4f exact %.4f relerr %.2f%% ± %.4f (%d intervals, %.0f%% detailed)",
					w, s, got, want, math.Abs(got-want)/want*100, rep.IPCStdErr, rep.Intervals, rep.DetailedFrac*100)
			}
		}
	}

	// Determinism: a second sampled pass must reproduce every counter.
	for _, pair := range [][2]string{{"gin", string(SchemeHier)}, {"chain-burst", string(SchemeFDIP)}} {
		a, err := runOne(context.Background(), pair[0], Scheme(pair[1]), rc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := runOne(context.Background(), pair[0], Scheme(pair[1]), rc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Stats, b.Stats) {
			t.Errorf("%s/%s: sampled Stats diverged between identical runs", pair[0], pair[1])
		}
		if !reflect.DeepEqual(a.Sample, b.Sample) {
			t.Errorf("%s/%s: SampleReport diverged: %+v vs %+v", pair[0], pair[1], a.Sample, b.Sample)
		}
	}
}

// TestSampledReplayMatchesLiveSampled pins that the batch replay path
// and the live interface path agree under sampling too: the same
// sampled spec over a recorded trace and over the live engine produces
// identical statistics.
func TestSampledReplayMatchesLiveSampled(t *testing.T) {
	dir := t.TempDir()
	rc := goldenRunConfig()
	rc.Workloads = []string{"gin"}
	path := filepath.Join(dir, "gin"+TraceExt)
	if _, err := RecordTrace("gin", path, rc); err != nil {
		t.Fatal(err)
	}
	rc.Sample = goldenSampleSpec()
	live, err := runOne(context.Background(), "gin", SchemeHier, rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.TracePath = path
	replay, err := runOne(context.Background(), "gin", SchemeHier, rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live.Stats, replay.Stats) {
		t.Errorf("sampled replay diverged from sampled live:\n--- live\n%s--- replay\n%s",
			live.Stats.Canonical(), replay.Stats.Canonical())
	}
}
