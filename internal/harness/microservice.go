package harness

import (
	"fmt"

	"hprefetch/internal/microsvc"
)

// MicroserviceTable is the cloud-microservice scenario experiment: every
// scheme over the chain workload suite (depth × fan-out × arrival
// pattern), reporting throughput alongside the per-request fetch-stall
// tail (p50/p99/p99.9 cycles of front-end stall accumulated per request
// chain). Importing microsvc here also registers the chain workloads
// with the workload registry for every binary built on the harness.
func MicroserviceTable(rc RunConfig) (*Table, error) {
	presets := microsvc.Presets()
	if len(rc.Workloads) > 0 {
		// Honour an explicit restriction to chain workloads; a workload
		// list naming none of them (e.g. QuickRunConfig's paper pair)
		// falls back to the full suite.
		var sel []microsvc.Preset
		for _, p := range presets {
			for _, w := range rc.Workloads {
				if w == p.Name {
					sel = append(sel, p)
					break
				}
			}
		}
		if len(sel) > 0 {
			presets = sel
		}
	}
	t := &Table{
		ID:    "Microservice",
		Title: "Per-request fetch-stall tail across chain depth, fan-out and arrival pattern",
		Header: []string{
			"workload", "depth", "fanout", "arrival", "scheme",
			"IPC", "speedup", "requests", "stall mean", "stall p50", "stall p99", "stall p99.9",
		},
	}
	for _, p := range presets {
		base, err := Run(p.Name, SchemeFDIP, rc)
		if err != nil {
			return nil, err
		}
		for _, s := range Schemes() {
			r, err := Run(p.Name, s, rc)
			if err != nil {
				return nil, err
			}
			st := r.Stats
			t.Rows = append(t.Rows, []string{
				p.Name, fmt.Sprint(p.Depth), fmt.Sprint(p.Fanout), string(p.Arrival), string(s),
				f3(st.IPC()), spd(st.IPC()/base.Stats.IPC() - 1),
				fmt.Sprint(st.ReqCompleted),
				f1(st.ReqStallMeanCycles()),
				f1(st.ReqStallPercentileCycles(0.50)),
				f1(st.ReqStallPercentileCycles(0.99)),
				f1(st.ReqStallPercentileCycles(0.999)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"stall columns are fetch-stall cycles per completed request; open-loop arrivals, so load does not adapt to the scheme")
	return t, nil
}
