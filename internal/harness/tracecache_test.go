package harness

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"hprefetch/internal/tracefile"
	"hprefetch/internal/workloads"
)

// TestTraceCacheRereadsInPlaceRewrite pins the staleness fix: an
// in-place re-record of the same byte length whose mtime is forced back
// to the original's (the collision coarse-timestamp filesystems produce
// within one tick) must still be decoded fresh, because the cache keys
// on the trace header fingerprint, not size+mtime.
func TestTraceCacheRereadsInPlaceRewrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gin"+TraceExt)
	built, err := workloads.Build("gin")
	if err != nil {
		t.Fatal(err)
	}
	const target = 50_000
	record := func(seed uint64) {
		t.Helper()
		meta := tracefile.Meta{Workload: "gin", Seed: seed, TargetInstructions: target}
		if _, err := tracefile.Record(path, built.NewEngine(), meta, target, 8, tracefile.Options{}); err != nil {
			t.Fatal(err)
		}
	}

	record(1001)
	st1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Meta().Seed != 1001 {
		t.Fatalf("first load has seed %d, want 1001", l1.Meta().Seed)
	}

	// Rewrite in place: identical engine stream, a different header seed
	// of the same varint length — the file's byte size does not change —
	// then force the mtime back so the old size+mtime identity collides.
	record(1002)
	if err := os.Chtimes(path, time.Now(), st1.ModTime()); err != nil {
		t.Fatal(err)
	}
	st2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Size() != st2.Size() {
		t.Fatalf("fixture no longer collides: sizes %d vs %d", st1.Size(), st2.Size())
	}
	if !st1.ModTime().Equal(st2.ModTime()) {
		t.Fatalf("fixture no longer collides: mtimes %v vs %v", st1.ModTime(), st2.ModTime())
	}

	l2, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Meta().Seed != 1002 {
		t.Errorf("stale decode served after in-place rewrite: seed %d, want 1002", l2.Meta().Seed)
	}
}
