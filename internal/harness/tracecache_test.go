package harness

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hprefetch/internal/tracefile"
	"hprefetch/internal/workloads"
)

// TestTraceCacheRereadsInPlaceRewrite pins the staleness fix: an
// in-place re-record of the same byte length whose mtime is forced back
// to the original's (the collision coarse-timestamp filesystems produce
// within one tick) must still be decoded fresh, because the cache keys
// on the trace header fingerprint, not size+mtime.
func TestTraceCacheRereadsInPlaceRewrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gin"+TraceExt)
	built, err := workloads.Build("gin")
	if err != nil {
		t.Fatal(err)
	}
	const target = 50_000
	record := func(seed uint64) {
		t.Helper()
		meta := tracefile.Meta{Workload: "gin", Seed: seed, TargetInstructions: target}
		if _, err := tracefile.Record(path, built.NewEngine(), meta, target, 8, tracefile.Options{}); err != nil {
			t.Fatal(err)
		}
	}

	record(1001)
	st1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Meta().Seed != 1001 {
		t.Fatalf("first load has seed %d, want 1001", l1.Meta().Seed)
	}

	// Rewrite in place: identical engine stream, a different header seed
	// of the same varint length — the file's byte size does not change —
	// then force the mtime back so the old size+mtime identity collides.
	record(1002)
	if err := os.Chtimes(path, time.Now(), st1.ModTime()); err != nil {
		t.Fatal(err)
	}
	st2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Size() != st2.Size() {
		t.Fatalf("fixture no longer collides: sizes %d vs %d", st1.Size(), st2.Size())
	}
	if !st1.ModTime().Equal(st2.ModTime()) {
		t.Fatalf("fixture no longer collides: mtimes %v vs %v", st1.ModTime(), st2.ModTime())
	}

	l2, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Meta().Seed != 1002 {
		t.Errorf("stale decode served after in-place rewrite: seed %d, want 1002", l2.Meta().Seed)
	}
}

// TestTraceCacheNegativeCaching extends the staleness contract to
// decode failures: a corrupt trace is negative-cached briefly (every
// job of a sweep is about to trip over the same bytes), the self-heal
// path's loadTraceFresh bypasses that entry, and an expired TTL or an
// explicit eviction drops it. The damage sits beyond the header, so the
// fingerprint cannot distinguish the corrupt bytes from the repaired
// ones — exactly the case the TTL and the bypass exist for.
func TestTraceCacheNegativeCaching(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gin"+TraceExt)
	built, err := workloads.Build("gin")
	if err != nil {
		t.Fatal(err)
	}
	const target = 50_000
	meta := tracefile.Meta{Workload: "gin", Seed: built.Workload.TraceSeed, TargetInstructions: target}
	if _, err := tracefile.Record(path, built.NewEngine(), meta, target, 8, tracefile.Options{FrameEvents: 256}); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := tracefile.LayoutOf(clean)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), clean...)
	mid := lo.Frames[len(lo.Frames)/2]
	corrupt[mid.Off+4+mid.Len/2] ^= 0x20 // frame interior: fingerprint unchanged

	fpClean, _ := tracefile.HeaderFingerprint(path)
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if fp, _ := tracefile.HeaderFingerprint(path); fp != fpClean {
		t.Fatalf("fixture broke: corruption changed the fingerprint (%s vs %s)", fp, fpClean)
	}

	EvictTrace(path)
	_, err1 := loadTrace(path)
	if !errors.Is(err1, tracefile.ErrCorrupt) {
		t.Fatalf("corrupt trace loaded with err=%v, want ErrCorrupt", err1)
	}

	// Repair in place. Same fingerprint, so only the negative entry's
	// TTL or a bypass can see the fresh bytes.
	if err := os.WriteFile(path, clean, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err2 := loadTrace(path)
	if err2 == nil {
		t.Fatal("negative entry not served within its TTL")
	}
	if !errors.Is(err2, tracefile.ErrCorrupt) {
		t.Fatalf("negative hit returned %v, want the cached ErrCorrupt", err2)
	}

	// The heal path's bypass decodes fresh and replaces the entry...
	if _, err := loadTraceFresh(path); err != nil {
		t.Fatalf("loadTraceFresh after repair: %v", err)
	}
	// ...so ordinary loads see the repaired trace too.
	if _, err := loadTrace(path); err != nil {
		t.Fatalf("loadTrace after fresh reload: %v", err)
	}

	// An expired TTL re-decodes without any bypass.
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	EvictTrace(path)
	defer func(d time.Duration) { traceNegTTL = d }(traceNegTTL)
	traceNegTTL = 0
	if _, err := loadTrace(path); !errors.Is(err, tracefile.ErrCorrupt) {
		t.Fatalf("corrupt reload: %v", err)
	}
	if err := os.WriteFile(path, clean, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrace(path); err != nil {
		t.Fatalf("zero-TTL negative entry still served: %v", err)
	}
	EvictTrace(path)
}
