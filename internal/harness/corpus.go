package harness

import (
	"fmt"
	"os"
	"sync"

	"hprefetch/internal/corpus"
	"hprefetch/internal/sim"
	"hprefetch/internal/tracefile"
	"hprefetch/internal/workloads"
)

// Corpus resolution and self-healing replay.
//
// With RunConfig.CorpusDir set, a run with no explicit trace resolves
// its workload through the content-addressed store: if a published
// object covers the run's warm+measure window, the run replays from it
// instead of interpreting the program live. Because replay is
// digest-identical to live, the corpus is purely an accelerator — and
// that is exactly what makes corruption handling simple: when an object
// turns out to be damaged (bit rot, torn tail, swapped extents), the
// run quarantines it, evicts it from the in-process trace cache, and
// re-records the identical stream from the live engine, publishing the
// replacement back into the store. Recording is deterministic, so the
// replacement is byte-identical to the original object and lands at
// the same content address. Either way the run's digest never changes;
// a corrupt artifact costs time, not correctness.

// corpusPathFor resolves workload through the corpus at dir, returning
// the object path for the best published recording that covers
// minInstructions ("" = none; fall back to live).
func corpusPathFor(dir, workload string, minInstructions uint64) string {
	store, err := corpus.Open(dir)
	if err != nil {
		return ""
	}
	e, ok := store.Resolve(workload, minInstructions)
	if !ok {
		return ""
	}
	return store.ObjectPath(e.Key)
}

// healFlight is one in-progress quarantine+re-record; concurrent runs
// that trip over the same damaged object share it instead of each
// re-recording the stream.
type healFlight struct {
	done chan struct{}
	path string // replacement object path ("" when re-record failed)
	err  error
}

var (
	healMu      sync.Mutex
	healFlights = map[string]*healFlight{}
)

// healCorpusObject is the self-heal path: quarantine the damaged
// object, evict it from the trace cache, re-record the workload's
// stream live and publish it back into the store, and return the
// replacement's path. Concurrent calls for the same (corpus, workload)
// share one flight. On failure the caller falls back to pure live
// simulation — the result is identical either way.
func healCorpusObject(corpusDir, workload, badPath, reason string, rc RunConfig) (string, error) {
	key := corpusDir + "\x00" + workload
	healMu.Lock()
	if f, ok := healFlights[key]; ok {
		healMu.Unlock()
		<-f.done
		return f.path, f.err
	}
	f := &healFlight{done: make(chan struct{})}
	healFlights[key] = f
	healMu.Unlock()

	f.path, f.err = healObject(corpusDir, workload, badPath, reason, rc)

	healMu.Lock()
	delete(healFlights, key)
	healMu.Unlock()
	close(f.done)
	return f.path, f.err
}

func healObject(corpusDir, workload, badPath, reason string, rc RunConfig) (string, error) {
	store, err := corpus.Open(corpusDir)
	if err != nil {
		return "", err
	}
	// Quarantine first so no other process resolves the damaged bytes.
	// A losing race (another process moved it already) is fine.
	if _, err := store.QuarantinePath(badPath, reason); err != nil {
		return "", err
	}
	EvictTrace(badPath)

	// Someone may have republished a healthy object between our failed
	// load and here (the identical stream re-ingests to the identical
	// address); re-resolve before paying for a recording.
	target := rc.WarmInstr + rc.MeasureInstr
	if e, ok := store.Resolve(workload, target); ok {
		return store.ObjectPath(e.Key), nil
	}

	tmp, err := os.CreateTemp("", "hpcorpus-heal-*.hpt")
	if err != nil {
		return "", err
	}
	tmpPath := tmp.Name()
	tmp.Close()
	defer os.Remove(tmpPath)
	rrc := rc
	rrc.TracePath, rrc.TraceDir, rrc.RecordPath, rrc.CorpusDir = "", "", "", ""
	rrc.Sample = SampleSpec{}
	if _, err := RecordTrace(workload, tmpPath, rrc); err != nil {
		return "", fmt.Errorf("harness: re-recording %s after quarantine: %w", workload, err)
	}
	e, _, err := store.Ingest(tmpPath)
	if err != nil {
		return "", fmt.Errorf("harness: re-ingesting %s after quarantine: %w", workload, err)
	}
	path := store.ObjectPath(e.Key)
	// A stale negative cache entry for this path may still be live if
	// the replacement landed at the damaged object's own address (the
	// usual case: identical stream, identical bytes, identical key).
	EvictTrace(path)
	return path, nil
}

// corpusSource builds the event source for a corpus-resolved run: a
// replay cursor over the object, or — when the object turns out to be
// damaged — the self-healed replacement, or the live engine as the
// last resort. healed reports that damage was detected and survived.
func corpusSource(workload string, built *workloads.Built, objectPath string, rc RunConfig) (src sim.EventSource, healed bool, err error) {
	tr, lerr := loadTrace(objectPath)
	if lerr == nil {
		if tm := tr.Meta(); tm.Workload != workload || tm.Seed != built.Workload.TraceSeed {
			lerr = fmt.Errorf("harness: corpus object %s header names workload %q seed %d, manifest resolved it for %q seed %d",
				objectPath, tm.Workload, tm.Seed, workload, built.Workload.TraceSeed)
		} else if !tr.Complete() {
			lerr = fmt.Errorf("harness: corpus object %s: %w (object lost its tail after ingest)", objectPath, tracefile.ErrTruncated)
		}
	}
	if lerr == nil {
		return tr.Replay(), false, nil
	}

	// Damage. Heal: quarantine + re-record + republish; never replay a
	// prefix, never fail the run for an artifact problem the live
	// engine can route around.
	healedPath, herr := healCorpusObject(rc.CorpusDir, workload, objectPath, lerr.Error(), rc)
	if herr == nil && healedPath != "" {
		if tr, err := loadTraceFresh(healedPath); err == nil {
			if tm := tr.Meta(); tm.Workload == workload && tm.Seed == built.Workload.TraceSeed && tr.Complete() {
				return tr.Replay(), true, nil
			}
		}
	}
	// Live fallback: identical digest, no corpus dependency.
	return built.EngineOver(built.Loaded), true, nil
}
