package harness

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_digests.json from the current behaviour")

// goldenEntry is one committed (workload, scheme) fingerprint. IPC and
// the late fraction ride along as formatted strings so a digest
// mismatch comes with human-readable context in the diff.
type goldenEntry struct {
	Workload       string `json:"workload"`
	Scheme         string `json:"scheme"`
	Digest         string `json:"digest"`
	IPC            string `json:"ipc"`
	PFLateFraction string `json:"pf_late_fraction"`
}

const goldenPath = "testdata/golden_digests.json"

// goldenRunConfig is the tiny, fixed configuration behind the committed
// matrix. Changing anything here invalidates every golden digest —
// refresh with `go test ./internal/harness -run TestGoldenDigestMatrix
// -update` and commit the diff alongside the behaviour change that
// caused it.
func goldenRunConfig() RunConfig {
	rc := DefaultRunConfig()
	rc.WarmInstr = 200_000
	rc.MeasureInstr = 400_000
	// chain-burst pins the microservice suite: its interleaved stream,
	// per-request stall histogram and trace round-trip are all under the
	// same digest contract as the paper workloads.
	rc.Workloads = []string{"gin", "tidb-tpcc", "chain-burst"}
	return rc
}

// goldenSchemes is the scheme set under the digest contract: the paper
// figure set plus the perfect-L1I bound and the two feedback-subsystem
// baselines (GHB and its TLB-aware variant).
func goldenSchemes() []Scheme {
	return append(append([]Scheme{}, Schemes()...), SchemePerfect, SchemeGHB, SchemeGHBTLB)
}

// goldenMatrix simulates the full scheme × workload mini-matrix with
// fresh machines (bypassing the Runner cache, as a new process would).
func goldenMatrix(t *testing.T) []goldenEntry {
	t.Helper()
	rc := goldenRunConfig()
	var out []goldenEntry
	for _, w := range rc.Workloads {
		for _, s := range goldenSchemes() {
			res, err := runOne(context.Background(), w, s, rc)
			if err != nil {
				t.Fatalf("%s/%s: %v", w, s, err)
			}
			out = append(out, goldenEntry{
				Workload:       w,
				Scheme:         string(s),
				Digest:         res.Stats.Digest(),
				IPC:            fmt.Sprintf("%.6f", res.Stats.IPC()),
				PFLateFraction: fmt.Sprintf("%.6f", res.Stats.PFLateFraction()),
			})
		}
	}
	return out
}

// TestGoldenDigestMatrix locks the simulator's observable behaviour to
// the committed fingerprints: any change to what any scheme measures on
// any workload — intended or not — fails here and must be acknowledged
// by refreshing the goldens with -update.
func TestGoldenDigestMatrix(t *testing.T) {
	got := goldenMatrix(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.FromSlash(goldenPath), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(got))
		return
	}
	data, err := os.ReadFile(filepath.FromSlash(goldenPath))
	if err != nil {
		t.Fatalf("reading goldens (refresh with -update): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if len(got) != len(want) {
		t.Fatalf("matrix size %d, goldens have %d entries; refresh with -update", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s/%s drifted:\n  golden: %+v\n  got:    %+v",
				want[i].Workload, want[i].Scheme, want[i], got[i])
		}
	}

	// The matrix must exercise the late-prefetch metric: at least one
	// scheme × workload reports a nonzero late fraction, guarding the
	// regression where PFLateFraction silently read a dead counter.
	anyLate := false
	for _, e := range got {
		if v, err := strconv.ParseFloat(e.PFLateFraction, 64); err == nil && v > 0 {
			anyLate = true
			break
		}
	}
	if !anyLate {
		t.Error("no golden run reports a late prefetch; PFLateFraction is dead again")
	}
}

// TestRunOneFullStatsDeterministic is the cross-process stand-in: two
// completely fresh simulations of the same pair must agree on every
// counter, not just IPC.
func TestRunOneFullStatsDeterministic(t *testing.T) {
	rc := goldenRunConfig()
	for _, w := range []string{"gin", "chain-burst"} {
		for _, s := range []Scheme{SchemeEIP, SchemeHier} {
			a, err := runOne(context.Background(), w, s, rc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := runOne(context.Background(), w, s, rc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Stats, b.Stats) {
				t.Errorf("%s/%s: full Stats diverged:\n--- run A\n%s--- run B\n%s",
					w, s, a.Stats.Canonical(), b.Stats.Canonical())
			}
		}
	}
}
