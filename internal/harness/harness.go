// Package harness regenerates every table and figure of the paper's
// evaluation (§7). Each experiment is a function returning a Table of
// rows matching what the paper plots; the bench suite at the repository
// root invokes one per figure. Results are cached per (workload, scheme,
// parameter) within the process — a size-bounded LRU behind a
// single-flight Runner — so experiments that share runs (most share the
// FDIP baseline) do not repeat them, and concurrent identical requests
// perform exactly one simulation.
package harness

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hprefetch/internal/core"
	"hprefetch/internal/fault"
	"hprefetch/internal/isa"
	"hprefetch/internal/loader"
	"hprefetch/internal/prefetch"
	"hprefetch/internal/prefetch/efetch"
	"hprefetch/internal/prefetch/eip"
	"hprefetch/internal/prefetch/feedback"
	"hprefetch/internal/prefetch/ghb"
	"hprefetch/internal/prefetch/mana"
	"hprefetch/internal/sim"
	"hprefetch/internal/tracefile"
	"hprefetch/internal/workloads"
)

// Scheme names a prefetching configuration under evaluation.
type Scheme string

// The evaluated schemes (§6.3), plus the GHB baselines added alongside
// the throttling subsystem.
const (
	SchemeFDIP    Scheme = "FDIP"
	SchemeEFetch  Scheme = "EFetch"
	SchemeMANA    Scheme = "MANA"
	SchemeEIP     Scheme = "EIP"
	SchemeHier    Scheme = "Hierarchical"
	SchemePerfect Scheme = "PerfectL1I"
	SchemeGHB     Scheme = "GHB"
	SchemeGHBTLB  Scheme = "GHB-TLB"
)

// Schemes returns the figure-order scheme list (FDIP first) — the rows
// the paper's tables compare. The GHB baselines are deliberately not
// here: they would change every figure. Use AllSchemes for the full
// registry.
func Schemes() []Scheme {
	return []Scheme{SchemeFDIP, SchemeEFetch, SchemeMANA, SchemeEIP, SchemeHier}
}

// AllSchemes returns every runnable scheme, sorted by name — the
// registry CLIs list and validation errors cite.
func AllSchemes() []Scheme {
	all := append(Schemes(), SchemePerfect, SchemeGHB, SchemeGHBTLB)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// SchemeNames renders the sorted registry as a comma-separated string
// for error messages and -list output.
func SchemeNames() string {
	var names []string
	for _, sc := range AllSchemes() {
		names = append(names, string(sc))
	}
	return strings.Join(names, ", ")
}

// RunConfig controls simulation length and machine parameters.
type RunConfig struct {
	// WarmInstr instructions run before statistics reset.
	WarmInstr uint64
	// MeasureInstr instructions measured after warmup.
	MeasureInstr uint64
	// Params is the machine configuration.
	Params sim.Params
	// Workloads restricts the workload set (nil = all eleven).
	Workloads []string

	// ManaLookahead / EFetchLookahead override the schemes' look-ahead
	// depth (Figure 2 sweeps). Zero keeps defaults.
	ManaLookahead, EFetchLookahead int
	// HierConfig overrides the Hierarchical Prefetcher configuration
	// (Figure 13 sweeps); nil keeps defaults.
	HierConfig *core.Config
	// TrackBundles turns on per-Bundle instrumentation (Table 4).
	TrackBundles bool
	// PFDegree overrides the scheme's static prefetch aggressiveness
	// (throttling sweeps): GHB degree for the GHB schemes, replay burst
	// budget for Hierarchical. Zero keeps defaults; other schemes have
	// their own lookahead knobs above.
	PFDegree int
	// Governed wraps the scheme's prefetcher with the feedback-directed
	// throttling governor (internal/prefetch/feedback): degree and
	// lookahead adapt online from interval accuracy/lateness/pollution.
	// Only prefetch.Tunable schemes (GHB, GHB-TLB, Hierarchical) accept
	// it; other schemes fail loudly.
	Governed bool
	// Fault injects a deterministic fault into the run (degradation
	// experiments); the zero value injects nothing. Faults apply to
	// every scheme — the FDIP baseline of a faulted comparison runs
	// under the same machine-level faults, so speedups stay
	// like-for-like (bundle-channel faults are naturally no-ops for
	// schemes that ignore tags).
	Fault fault.Config

	// TracePath replays the event stream from this recorded trace file
	// instead of interpreting the program live. The trace must have
	// been captured from the same workload and engine seed; a replayed
	// run produces the identical StatsDigest as its live counterpart.
	TracePath string
	// TraceDir enables replay-backed experiments: a workload whose
	// trace exists at <TraceDir>/<workload>.hpt replays from it, the
	// rest run live.
	TraceDir string
	// RecordPath tees the run's event stream to a trace file while
	// simulating live, appending a lookahead tail so the trace can
	// later feed any scheme over the same warm+measure window. Mutually
	// exclusive with replay; incompatible with fault injection (loader
	// faults perturb the stream itself).
	RecordPath string
	// CorpusDir resolves workloads through a content-addressed trace
	// corpus (internal/corpus): a run with no explicit TracePath or
	// TraceDir match replays from the best published object covering
	// its warm+measure window, falling back to live interpretation when
	// none exists. A damaged object self-heals — quarantine, re-record,
	// republish — without changing the run's digest. Ignored for
	// recording and faulted runs (those need the live engine).
	CorpusDir string

	// Sample enables interval-sampled simulation over the same stream
	// extent as an exact run: the warm-up and inter-interval gaps
	// advance functionally and only short intervals are timed. Results
	// are approximate (Result.Sample carries the error bars) but
	// deterministic. The zero value runs the exact protocol.
	Sample SampleSpec

	// Ctx, when non-nil, bounds every run performed under this
	// configuration: cancellation or deadline expiry stops the
	// simulator's cycle loop cooperatively. It rides inside the config
	// (rather than a parameter) so the deadline reaches every
	// harness.Run call an experiment makes without threading a context
	// through each table generator. It is NOT part of the memoisation
	// key.
	Ctx context.Context
}

// context resolves the configured context.
func (rc *RunConfig) context() context.Context {
	if rc.Ctx != nil {
		return rc.Ctx
	}
	return context.Background()
}

// DefaultRunConfig mirrors the paper's warmup/measure protocol, scaled
// to the simulator: warm up, then measure.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		WarmInstr:    4_000_000,
		MeasureInstr: 8_000_000,
		Params:       sim.DefaultParams(),
	}
}

// QuickRunConfig is a scaled-down configuration for tests.
func QuickRunConfig() RunConfig {
	rc := DefaultRunConfig()
	rc.WarmInstr = 1_500_000
	rc.MeasureInstr = 2_500_000
	rc.Workloads = []string{"gin", "tidb-tpcc"}
	return rc
}

// workloadList resolves the configured workload set.
func (rc *RunConfig) workloadList() []string {
	if len(rc.Workloads) > 0 {
		return rc.Workloads
	}
	return workloads.Names()
}

// Result couples run statistics with optional Bundle instrumentation.
type Result struct {
	Stats  *sim.Stats
	Bundle core.Summary
	// BundleRejects counts malformed Bundle hints the prefetcher
	// ignored (Hierarchical runs only).
	BundleRejects uint64
	// TagDrops counts tagged addresses the loader discarded (faulted
	// runs only).
	TagDrops int
	// Sample holds the interval-sampling report (coverage and IPC error
	// bars) for sampled runs; nil for exact runs.
	Sample *SampleReport
	// TraceSource reports where the run's event stream came from:
	// "live", "replay" (explicit TracePath or TraceDir), "corpus"
	// (resolved through RunConfig.CorpusDir), or "record" (live, teed
	// to RecordPath).
	TraceSource string
	// CorpusHealed reports that the corpus object this run resolved was
	// damaged and the run self-healed: the artifact was quarantined and
	// re-recorded (or the run fell back to live simulation). The
	// statistics are identical either way — this flag is operational
	// visibility, not a caveat.
	CorpusHealed bool
	// Governor holds the throttling governor's end-of-run snapshot
	// (level, transition counters, schedule) for governed runs; nil
	// otherwise.
	Governor *feedback.Summary
}

// key builds the memoisation key for a run.
func (rc *RunConfig) key(workload string, scheme Scheme) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d|%d|%v", workload, scheme,
		rc.WarmInstr, rc.MeasureInstr, rc.ManaLookahead, rc.EFetchLookahead, rc.TrackBundles)
	fmt.Fprintf(h, "|%d|%v", rc.PFDegree, rc.Governed)
	fmt.Fprintf(h, "|%s|%g|%d", rc.Fault.Class, rc.Fault.Rate, rc.Fault.Seed)
	fmt.Fprintf(h, "|%s|%s|%s|%s", rc.TracePath, rc.TraceDir, rc.RecordPath, rc.CorpusDir)
	fmt.Fprintf(h, "|%d|%d|%d|%d", rc.Sample.WarmInstr, rc.Sample.MeasureInstr, rc.Sample.SkipInstr, rc.Sample.Seed)
	fmt.Fprintf(h, "%+v", rc.Params)
	if rc.HierConfig != nil {
		fmt.Fprintf(h, "%+v", *rc.HierConfig)
	}
	return string(h.Sum(nil))
}

// defaultRunner is the process-wide Runner behind the package-level Run:
// a single-flight, LRU-bounded replacement for the old unbounded memo
// map. Experiments, the CLI and the serving layer all share it, so
// identical work is deduplicated across every entry point.
var defaultRunner = NewRunner(DefaultCacheEntries)

// DefaultRunner returns the shared Runner (metrics endpoints read its
// stats; servers tune its bound via SetCacheLimit).
func DefaultRunner() *Runner { return defaultRunner }

// SetCacheLimit re-bounds the shared Runner's result cache (values < 1
// restore DefaultCacheEntries).
func SetCacheLimit(maxEntries int) { defaultRunner.SetLimit(maxEntries) }

// CacheStats snapshots the shared Runner's counters.
func CacheStats() RunnerStats { return defaultRunner.Stats() }

// DropCache clears cached results and counters (tests).
func DropCache() { defaultRunner.Reset() }

// Run simulates one (workload, scheme) pair under rc through the shared
// Runner: results are cached (bounded LRU), concurrent identical calls
// share one simulation, and rc.Ctx cancels cooperatively. Failures —
// including panics escaping the simulation — come back as errors, so one
// bad run cannot take a whole experiment suite down.
func Run(workload string, scheme Scheme, rc RunConfig) (*Result, error) {
	return defaultRunner.Run(workload, scheme, rc)
}

// RunUncached performs one simulation bypassing the shared Runner —
// benchmarks that must time real work and golden tests comparing live
// against replayed runs use it.
func RunUncached(workload string, scheme Scheme, rc RunConfig) (*Result, error) {
	return runOne(rc.context(), workload, scheme, rc)
}

// TraceExt is the conventional extension for recorded traces; TraceDir
// resolution looks for <dir>/<workload> + TraceExt.
const TraceExt = ".hpt"

// tracePathFor resolves the replay trace for workload under dir,
// returning "" (fall back to live) when none has been recorded there.
func tracePathFor(dir, workload string) string {
	p := filepath.Join(dir, workload+TraceExt)
	if st, err := os.Stat(p); err == nil && st.Mode().IsRegular() {
		return p
	}
	return ""
}

// sourceErr extracts a finite event source's terminal error, treating a
// clean end of stream (tracefile.ErrExhausted) as success.
func sourceErr(src sim.EventSource) error {
	e, ok := src.(interface{ Err() error })
	if !ok {
		return nil
	}
	if err := e.Err(); err != nil && !errors.Is(err, tracefile.ErrExhausted) {
		return err
	}
	return nil
}

// RecordTrace captures workload's event stream to path without running a
// simulator: the live engine is pulled until rc.WarmInstr+rc.MeasureInstr
// instructions are covered, plus a tail of tracefile.TailEvents so the
// trace can feed any scheme's lookahead over that window. The returned
// summary describes the sealed file.
func RecordTrace(workload, path string, rc RunConfig) (tracefile.Summary, error) {
	if rc.Fault.Enabled() {
		return tracefile.Summary{}, fmt.Errorf("harness: recording %s: traces capture the clean stream; fault injection is not recordable", workload)
	}
	if rc.Sample.Enabled() {
		return tracefile.Summary{}, fmt.Errorf("harness: recording %s: a sampled run covers only part of the stream; record exact, then sample the replay", workload)
	}
	built, err := workloads.Build(workload)
	if err != nil {
		return tracefile.Summary{}, err
	}
	target := rc.WarmInstr + rc.MeasureInstr
	meta := tracefile.Meta{Workload: workload, Seed: built.Workload.TraceSeed, TargetInstructions: target}
	return tracefile.Record(path, built.NewEngine(), meta, target, tracefile.TailEvents, tracefile.Options{})
}

// runOne performs the simulation behind Run. Any panic raised inside
// the stack (loader, engine, simulator, prefetcher) is recovered into a
// wrapped error; only genuinely successful runs are memoised.
func runOne(ctx context.Context, workload string, scheme Scheme, rc RunConfig) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			// A panic is environmental, not structural: the same inputs
			// simulate cleanly elsewhere (fault injection, memory
			// pressure), so mark it retryable.
			err = MarkTransient(fmt.Errorf("harness: %s/%s panicked: %v", workload, scheme, r))
		}
	}()

	built, err := workloads.Build(workload)
	if err != nil {
		return nil, err
	}

	// Event-source selection: explicit replay beats directory-resolved
	// replay beats corpus-resolved replay beats live interpretation.
	// Replay, record and fault injection do not mix — a teed or replayed
	// stream must be the clean one the trace header promises.
	tracePath := rc.TracePath
	if tracePath == "" && rc.TraceDir != "" {
		tracePath = tracePathFor(rc.TraceDir, workload)
	}
	fromCorpus := false
	if tracePath == "" && rc.CorpusDir != "" && rc.RecordPath == "" && !rc.Fault.Enabled() {
		if p := corpusPathFor(rc.CorpusDir, workload, rc.WarmInstr+rc.MeasureInstr); p != "" {
			tracePath, fromCorpus = p, true
		}
	}
	if tracePath != "" && rc.RecordPath != "" {
		return nil, fmt.Errorf("harness: %s/%s: trace replay and recording are mutually exclusive", workload, scheme)
	}
	if rc.RecordPath != "" && rc.Sample.Enabled() {
		return nil, fmt.Errorf("harness: %s/%s: a sampled run covers only part of the stream; record exact, then sample the replay", workload, scheme)
	}
	if (tracePath != "" || rc.RecordPath != "") && rc.Fault.Enabled() {
		return nil, fmt.Errorf("harness: %s/%s: trace replay/recording cannot be combined with fault injection", workload, scheme)
	}

	// Fault wiring: perturb the .bundles segment through the degraded
	// loader path and hand the injector to the machine.
	var inj *fault.Injector
	ld := built.Loaded
	if rc.Fault.Enabled() {
		inj, err = fault.New(rc.Fault)
		if err != nil {
			return nil, err
		}
		ld = loader.LoadLinkedDegraded(built.Loaded.Prog, built.Linked.Image, inj.PerturbBundles)
	}

	var src sim.EventSource
	var rec *tracefile.Recorder
	finished := false
	traceSource := "live"
	corpusHealed := false
	switch {
	case fromCorpus:
		// Corpus objects self-heal on damage instead of failing the run;
		// an explicit TracePath stays fail-stop (below) because the user
		// asked for that exact file.
		src, corpusHealed, err = corpusSource(workload, built, tracePath, rc)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", workload, scheme, err)
		}
		traceSource = "corpus"
	case tracePath != "":
		tr, err := loadTrace(tracePath)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", workload, scheme, err)
		}
		if tm := tr.Meta(); tm.Workload != workload || tm.Seed != built.Workload.TraceSeed {
			return nil, fmt.Errorf("harness: %s/%s: trace %s was recorded from workload %q seed %d, want %q seed %d",
				workload, scheme, tracePath, tm.Workload, tm.Seed, workload, built.Workload.TraceSeed)
		}
		src = tr.Replay()
		traceSource = "replay"
	case rc.RecordPath != "":
		meta := tracefile.Meta{
			Workload:           workload,
			Seed:               built.Workload.TraceSeed,
			TargetInstructions: rc.WarmInstr + rc.MeasureInstr,
		}
		rec, err = tracefile.RecordTo(rc.RecordPath, built.EngineOver(ld), meta, tracefile.Options{})
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", workload, scheme, err)
		}
		defer func() {
			if !finished {
				rec.Abort()
			}
		}()
		src = rec
		traceSource = "record"
	default:
		src = built.EngineOver(ld)
	}

	prm := rc.Params
	if scheme == SchemePerfect {
		prm.PerfectL1I = true
	}
	m, err := sim.New(prm, src, nil)
	if err != nil {
		return nil, err
	}
	if inj != nil {
		m.SetFaults(inj)
	}
	if ctx != nil {
		m.SetContext(ctx)
	}
	var hier *core.Hier
	var pf prefetch.Prefetcher
	switch scheme {
	case SchemeFDIP, SchemePerfect:
		// no evaluated prefetcher
	case SchemeEFetch:
		cfg := efetch.DefaultConfig()
		if rc.EFetchLookahead > 0 {
			cfg.Lookahead = rc.EFetchLookahead
		}
		pf = efetch.New(cfg, m)
	case SchemeMANA:
		cfg := mana.DefaultConfig()
		if rc.ManaLookahead > 0 {
			cfg.Lookahead = rc.ManaLookahead
		}
		pf = mana.New(cfg, m)
	case SchemeEIP:
		pf = eip.New(eip.DefaultConfig(), m)
	case SchemeGHB, SchemeGHBTLB:
		cfg := ghb.DefaultConfig()
		cfg.RequireTLB = scheme == SchemeGHBTLB
		if rc.PFDegree > 0 {
			cfg.Degree = rc.PFDegree
		}
		pf = ghb.New(cfg, m)
	case SchemeHier:
		cfg := core.DefaultConfig()
		if rc.HierConfig != nil {
			cfg = *rc.HierConfig
		}
		cfg.TrackStats = cfg.TrackStats || rc.TrackBundles
		if rc.PFDegree > 0 {
			cfg.BurstPrefetches = rc.PFDegree
		}
		hier = core.New(cfg, m)
		// Arm degraded-mode validation: the prefetcher knows the text
		// bounds and refuses hints pointing elsewhere.
		p := ld.Prog
		hier.SetTextBounds(p.TextBase, p.TextBase+isa.Addr(p.TextSize))
		pf = hier
	default:
		return nil, fmt.Errorf("harness: unknown scheme %q (known: %s)", scheme, SchemeNames())
	}
	var gov *feedback.Governor
	if rc.Governed {
		tun, ok := pf.(prefetch.Tunable)
		if !ok {
			return nil, fmt.Errorf("harness: %s/%s: scheme does not support adaptive throttling (not prefetch.Tunable)", workload, scheme)
		}
		gov = feedback.New(feedback.DefaultConfig(), m)
		pf = prefetch.NewGoverned(tun, gov)
	}
	if pf != nil {
		m.SetPrefetcher(pf)
	}
	if rc.Sample.Enabled() {
		if rec != nil {
			return nil, fmt.Errorf("harness: %s/%s: sampled runs cannot record traces (skipped sections never reach the recorder correctly)", workload, scheme)
		}
		agg, rep, err := runSampled(m, rc)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s sampled: %w", workload, scheme, err)
		}
		res = &Result{Stats: agg, Sample: rep, TagDrops: ld.TagDrops, TraceSource: traceSource, CorpusHealed: corpusHealed}
		if hier != nil {
			res.Bundle = hier.BundleSummary()
			res.BundleRejects = hier.Counters.BundleRejects
		}
		if gov != nil {
			res.Governor = gov.Summary()
		}
		return res, nil
	}
	if err := m.Run(rc.WarmInstr); err != nil {
		return nil, fmt.Errorf("harness: %s/%s warmup: %w", workload, scheme, err)
	}
	m.ResetStats()
	if err := m.Run(rc.MeasureInstr); err != nil {
		return nil, fmt.Errorf("harness: %s/%s measure: %w", workload, scheme, err)
	}
	if rec != nil {
		// Pull the lookahead tail past the measure window so the trace
		// can later feed any scheme's FTQ over the same instructions,
		// then seal index and trailer.
		if _, err := rec.Finish(tracefile.TailEvents); err != nil {
			return nil, fmt.Errorf("harness: %s/%s: sealing trace: %w", workload, scheme, err)
		}
		finished = true
	}
	res = &Result{Stats: m.Stats(), TagDrops: ld.TagDrops, TraceSource: traceSource, CorpusHealed: corpusHealed}
	if hier != nil {
		res.Bundle = hier.BundleSummary()
		res.BundleRejects = hier.Counters.BundleRejects
	}
	if gov != nil {
		res.Governor = gov.Summary()
	}
	return res, nil
}

// Speedup returns scheme IPC relative to the FDIP baseline for the same
// workload and configuration.
func Speedup(workload string, scheme Scheme, rc RunConfig) (float64, error) {
	// The FDIP baseline has no prefetcher: throttling knobs neither
	// apply nor should fragment its cache entry across degree variants.
	brc := rc
	brc.PFDegree = 0
	brc.Governed = false
	base, err := Run(workload, SchemeFDIP, brc)
	if err != nil {
		return 0, err
	}
	r, err := Run(workload, scheme, rc)
	if err != nil {
		return 0, err
	}
	return r.Stats.IPC()/base.Stats.IPC() - 1, nil
}

// Table is a printable experiment result.
type Table struct {
	// ID labels the experiment ("Figure 9", "Table 2", ...).
	ID string
	// Title describes what the rows show.
	Title string
	// Header holds column names.
	Header []string
	// Rows holds formatted cells.
	Rows [][]string
	// Notes holds free-form caveats appended after the table.
	Notes []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	line(dashes(widths))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func spd(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// sortStrings is a tiny alias used by experiments that aggregate maps.
func sortStrings(s []string) { sort.Strings(s) }

// Digest returns a stable fingerprint of the table's full content (id,
// title, cells, notes). Experiments are deterministic functions of
// their RunConfig, so the same experiment in two processes must yield
// the same digest; CI diffs exactly this.
func (t *Table) Digest() string {
	h := fnv.New64a()
	write := func(s string) { io.WriteString(h, s) } //nolint:errcheck // hash writes cannot fail
	write(t.ID)
	write("\n")
	write(t.Title)
	write("\n")
	write(t.CSV())
	for _, n := range t.Notes {
		write("note:" + n + "\n")
	}
	return fmt.Sprintf("%s:%016x", sim.DigestPrefix, h.Sum64())
}

// CSV renders the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
