package harness

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hprefetch/internal/fault"
	"hprefetch/internal/tracefile"
)

// recordGoldenTraces records one trace per workload covering the golden
// warm+measure window, into a fresh temp dir.
func recordGoldenTraces(t *testing.T, rc RunConfig) string {
	t.Helper()
	dir := t.TempDir()
	for _, w := range rc.Workloads {
		if _, err := RecordTrace(w, filepath.Join(dir, w+TraceExt), rc); err != nil {
			t.Fatalf("recording %s: %v", w, err)
		}
	}
	return dir
}

// TestReplayMatchesLiveGolden is the tentpole guarantee: a replayed run
// produces byte-identical canonical stats — and therefore the identical
// StatsDigest — as its live counterpart, for every scheme, across the
// golden workload matrix. The digests are also checked against the
// committed golden file, tying replay to the repository's long-term
// behaviour contract.
func TestReplayMatchesLiveGolden(t *testing.T) {
	rc := goldenRunConfig()
	dir := recordGoldenTraces(t, rc)

	golden := map[[2]string]string{}
	if data, err := os.ReadFile(filepath.FromSlash(goldenPath)); err == nil {
		var entries []goldenEntry
		if err := json.Unmarshal(data, &entries); err != nil {
			t.Fatalf("parsing %s: %v", goldenPath, err)
		}
		for _, e := range entries {
			golden[[2]string{e.Workload, e.Scheme}] = e.Digest
		}
	}

	for _, w := range rc.Workloads {
		for _, s := range goldenSchemes() {
			live, err := runOne(context.Background(), w, s, rc)
			if err != nil {
				t.Fatalf("live %s/%s: %v", w, s, err)
			}
			rcR := rc
			rcR.TracePath = filepath.Join(dir, w+TraceExt)
			replay, err := runOne(context.Background(), w, s, rcR)
			if err != nil {
				t.Fatalf("replay %s/%s: %v", w, s, err)
			}
			if lc, rp := live.Stats.Canonical(), replay.Stats.Canonical(); lc != rp {
				t.Errorf("%s/%s: replayed canonical stats differ from live:\n--- live\n%s--- replay\n%s", w, s, lc, rp)
			}
			if want, ok := golden[[2]string{w, string(s)}]; ok && replay.Stats.Digest() != want {
				t.Errorf("%s/%s: replay digest %s != committed golden %s", w, s, replay.Stats.Digest(), want)
			}
		}
	}
}

// TestFig1IdenticalFromTrace: the stage-footprint view (Figure 1)
// computed from a recorded trace must equal the live one — per-stage
// attribution rides in the trace, not just the event stream.
func TestFig1IdenticalFromTrace(t *testing.T) {
	rc := goldenRunConfig()
	rc.Workloads = []string{"gin"}
	dir := recordGoldenTraces(t, rc)

	live, err := Fig1StageFootprints(rc)
	if err != nil {
		t.Fatal(err)
	}
	rcR := rc
	rcR.TraceDir = dir
	replayed, err := Fig1StageFootprints(rcR)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Errorf("Figure 1 from trace differs from live:\n--- live\n%s--- replay\n%s", live, replayed)
	}
}

// TestRecordTeeAndCrossSchemeReplay: RecordPath tees a live run without
// perturbing it, and — because the trace captures the stream, not the
// scheme — a trace teed from an FDIP run replays any other scheme with
// live-identical stats.
func TestRecordTeeAndCrossSchemeReplay(t *testing.T) {
	rc := goldenRunConfig()
	const w = "gin"
	path := filepath.Join(t.TempDir(), w+TraceExt)

	rcRec := rc
	rcRec.RecordPath = path
	teed, err := runOne(context.Background(), w, SchemeFDIP, rcRec)
	if err != nil {
		t.Fatal(err)
	}
	live, err := runOne(context.Background(), w, SchemeFDIP, rc)
	if err != nil {
		t.Fatal(err)
	}
	if teed.Stats.Canonical() != live.Stats.Canonical() {
		t.Error("teeing the event stream perturbed the simulation")
	}
	info, err := tracefile.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Indexed || info.Truncated {
		t.Fatalf("teed trace not sealed: %+v", info)
	}

	liveHier, err := runOne(context.Background(), w, SchemeHier, rc)
	if err != nil {
		t.Fatal(err)
	}
	rcR := rc
	rcR.TracePath = path
	replayHier, err := runOne(context.Background(), w, SchemeHier, rcR)
	if err != nil {
		t.Fatal(err)
	}
	if lc, rp := liveHier.Stats.Canonical(), replayHier.Stats.Canonical(); lc != rp {
		t.Errorf("Hierarchical replayed from an FDIP-teed trace differs from live:\n--- live\n%s--- replay\n%s", lc, rp)
	}
}

// TestReplayValidation covers the refusal paths: foreign traces,
// missing files, and configurations that cannot honour the trace's
// clean-stream promise.
func TestReplayValidation(t *testing.T) {
	rc := goldenRunConfig()
	rc.Workloads = []string{"gin"}
	dir := recordGoldenTraces(t, rc)
	ginTrace := filepath.Join(dir, "gin"+TraceExt)

	t.Run("wrong workload", func(t *testing.T) {
		sub := rc
		sub.TracePath = ginTrace
		if _, err := runOne(context.Background(), "tidb-tpcc", SchemeFDIP, sub); err == nil {
			t.Fatal("replaying a gin trace as tidb-tpcc succeeded")
		}
	})
	t.Run("missing file", func(t *testing.T) {
		sub := rc
		sub.TracePath = filepath.Join(dir, "nope.hpt")
		if _, err := runOne(context.Background(), "gin", SchemeFDIP, sub); err == nil {
			t.Fatal("replaying a missing trace succeeded")
		}
	})
	t.Run("replay with fault", func(t *testing.T) {
		sub := rc
		sub.TracePath = ginTrace
		sub.Fault = fault.Config{Class: fault.ClassTagFlip, Rate: 0.01, Seed: 1}
		if _, err := runOne(context.Background(), "gin", SchemeFDIP, sub); err == nil {
			t.Fatal("replay combined with fault injection succeeded")
		}
	})
	t.Run("record with replay", func(t *testing.T) {
		sub := rc
		sub.TracePath = ginTrace
		sub.RecordPath = filepath.Join(dir, "out.hpt")
		if _, err := runOne(context.Background(), "gin", SchemeFDIP, sub); err == nil {
			t.Fatal("simultaneous record and replay succeeded")
		}
	})
	t.Run("record with fault", func(t *testing.T) {
		sub := rc
		sub.RecordPath = filepath.Join(dir, "out2.hpt")
		sub.Fault = fault.Config{Class: fault.ClassTagFlip, Rate: 0.01, Seed: 1}
		if _, err := runOne(context.Background(), "gin", SchemeFDIP, sub); err == nil {
			t.Fatal("recording a faulted stream succeeded")
		}
	})
}

// TestTraceDirFallback: workloads without a trace under TraceDir run
// live, with results identical to an all-live configuration.
func TestTraceDirFallback(t *testing.T) {
	rc := goldenRunConfig()
	recRC := rc
	recRC.Workloads = []string{"gin"} // record gin only; tidb-tpcc falls back
	dir := recordGoldenTraces(t, recRC)

	sub := rc
	sub.TraceDir = dir
	for _, w := range rc.Workloads {
		live, err := runOne(context.Background(), w, SchemeFDIP, rc)
		if err != nil {
			t.Fatal(err)
		}
		mixed, err := runOne(context.Background(), w, SchemeFDIP, sub)
		if err != nil {
			t.Fatalf("%s under TraceDir: %v", w, err)
		}
		if live.Stats.Canonical() != mixed.Stats.Canonical() {
			t.Errorf("%s: TraceDir run differs from live", w)
		}
	}
}

// TestTruncatedTraceFailsRun: a trace shorter than the requested window
// fails the run with a typed exhaustion error instead of hanging.
func TestTruncatedTraceFailsRun(t *testing.T) {
	short := goldenRunConfig()
	short.WarmInstr = 50_000
	short.MeasureInstr = 50_000
	short.Workloads = []string{"gin"}
	dir := recordGoldenTraces(t, short)

	long := goldenRunConfig()
	long.TracePath = filepath.Join(dir, "gin"+TraceExt)
	_, err := runOne(context.Background(), "gin", SchemeFDIP, long)
	if err == nil {
		t.Fatal("600k-instruction replay of a 100k-instruction trace succeeded")
	}
}
