package harness

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hprefetch/internal/corpus"
	"hprefetch/internal/fault"
)

// corpusRunConfig is the small window every corpus test shares; the
// recording covers warm+measure, so corpus resolution picks it up.
func corpusRunConfig() RunConfig {
	rc := DefaultRunConfig()
	rc.WarmInstr = 50_000
	rc.MeasureInstr = 100_000
	rc.Workloads = []string{"gin"}
	return rc
}

// seedCorpus records workload with rc's window and ingests it, returning
// the store and the published object path.
func seedCorpus(t *testing.T, dir, workload string, rc RunConfig) (*corpus.Store, string) {
	t.Helper()
	store, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), workload+TraceExt)
	if _, err := RecordTrace(workload, tmp, rc); err != nil {
		t.Fatal(err)
	}
	e, _, err := store.Ingest(tmp)
	if err != nil {
		t.Fatal(err)
	}
	return store, store.ObjectPath(e.Key)
}

// TestCorpusReplayMatchesLive: a corpus-resolved run replays the
// published object and produces the identical digest as the live run;
// an empty corpus silently degrades to live interpretation.
func TestCorpusReplayMatchesLive(t *testing.T) {
	rc := corpusRunConfig()
	live, err := runOne(context.Background(), "gin", SchemeHier, rc)
	if err != nil {
		t.Fatal(err)
	}

	rcEmpty := rc
	rcEmpty.CorpusDir = filepath.Join(t.TempDir(), "empty")
	res, err := runOne(context.Background(), "gin", SchemeHier, rcEmpty)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceSource != "live" || res.Stats.Digest() != live.Stats.Digest() {
		t.Fatalf("empty corpus: source=%q digest=%s, want live/%s", res.TraceSource, res.Stats.Digest(), live.Stats.Digest())
	}

	rcC := rc
	rcC.CorpusDir = filepath.Join(t.TempDir(), "corpus")
	seedCorpus(t, rcC.CorpusDir, "gin", rc)
	res, err = runOne(context.Background(), "gin", SchemeHier, rcC)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceSource != "corpus" || res.CorpusHealed {
		t.Fatalf("corpus-backed run: source=%q healed=%v, want corpus/false", res.TraceSource, res.CorpusHealed)
	}
	if res.Stats.Digest() != live.Stats.Digest() {
		t.Fatalf("corpus replay digest %s != live %s", res.Stats.Digest(), live.Stats.Digest())
	}
}

// TestCorpusSelfHealsEveryStorageClass is the corruption-resilience
// loop: for each deterministic storage fault class, a corpus object is
// damaged in place and the next run must quarantine it, re-record the
// stream, republish it at the identical content address, and still
// emit the byte-identical digest — never a silent prefix replay, never
// a failed run.
func TestCorpusSelfHealsEveryStorageClass(t *testing.T) {
	for _, class := range fault.StorageClasses() {
		t.Run(string(class), func(t *testing.T) {
			rc := corpusRunConfig()
			if class == fault.ClassTraceSwapFrames {
				// Swapping frames needs a recording long enough to span
				// two of them (~65k events per frame at the default size).
				rc.MeasureInstr = 900_000
			}
			live, err := runOne(context.Background(), "gin", SchemeHier, rc)
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(t.TempDir(), "corpus")
			store, objPath := seedCorpus(t, dir, "gin", rc)
			clean, err := os.ReadFile(objPath)
			if err != nil {
				t.Fatal(err)
			}
			in, err := fault.New(fault.Config{Class: class, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			damaged, err := in.PerturbTrace(append([]byte(nil), clean...))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(objPath, damaged, 0o644); err != nil {
				t.Fatal(err)
			}
			EvictTrace(objPath) // the seed ingest never cached it, but be explicit

			rcC := rc
			rcC.CorpusDir = dir
			res, err := runOne(context.Background(), "gin", SchemeHier, rcC)
			if err != nil {
				t.Fatalf("%s: corpus run failed instead of healing: %v", class, err)
			}
			if res.Stats.Digest() != live.Stats.Digest() {
				t.Fatalf("%s: digest %s != live %s (silent corruption)", class, res.Stats.Digest(), live.Stats.Digest())
			}
			if !res.CorpusHealed {
				t.Fatalf("%s: damage went unnoticed (healed=false, source=%q)", class, res.TraceSource)
			}

			// The store healed: the damaged bytes are quarantined and the
			// identical recording is republished at the same address.
			quar, err := os.ReadDir(filepath.Join(dir, "quarantine"))
			if err != nil || len(quar) == 0 {
				t.Fatalf("%s: nothing quarantined (%v)", class, err)
			}
			healed, err := os.ReadFile(objPath)
			if err != nil {
				t.Fatalf("%s: healed object missing: %v", class, err)
			}
			if string(healed) != string(clean) {
				t.Fatalf("%s: healed object differs from the original recording", class)
			}
			if e, ok := store.Resolve("gin", rc.WarmInstr+rc.MeasureInstr); !ok {
				t.Fatalf("%s: healed object not resolvable", class)
			} else if err := store.Verify(e); err != nil {
				t.Fatalf("%s: healed object fails verification: %v", class, err)
			}
		})
	}
}

// TestCorpusHealSingleflight: concurrent runs tripping over the same
// damaged object share one quarantine+re-record and all emit the live
// digest. Run under -race this also pins the heal path's locking.
func TestCorpusHealSingleflight(t *testing.T) {
	rc := corpusRunConfig()
	dir := filepath.Join(t.TempDir(), "corpus")
	_, objPath := seedCorpus(t, dir, "gin", rc)

	clean, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.New(fault.Config{Class: fault.ClassTraceBitRot, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	damaged, err := in.PerturbTrace(append([]byte(nil), clean...))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(objPath, damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	rcC := rc
	rcC.CorpusDir = dir
	schemes := []Scheme{SchemeFDIP, SchemeHier, SchemeEFetch, SchemeEIP}
	want := map[Scheme]string{}
	for _, s := range schemes {
		res, err := runOne(context.Background(), "gin", s, rc)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = res.Stats.Digest()
	}

	var wg sync.WaitGroup
	errs := make([]error, len(schemes))
	got := make([]*Result, len(schemes))
	for i, s := range schemes {
		wg.Add(1)
		go func(i int, s Scheme) {
			defer wg.Done()
			got[i], errs[i] = runOne(context.Background(), "gin", s, rcC)
		}(i, s)
	}
	wg.Wait()
	for i, s := range schemes {
		if errs[i] != nil {
			t.Fatalf("%s: %v", s, errs[i])
		}
		if got[i].Stats.Digest() != want[s] {
			t.Errorf("%s: digest %s != live %s", s, got[i].Stats.Digest(), want[s])
		}
	}
	healed, err := os.ReadFile(objPath)
	if err != nil || string(healed) != string(clean) {
		t.Fatalf("object not healed back to the original bytes (%v)", err)
	}
}

// TestCorpusIgnoredWhenIncompatible: explicit traces, recording and
// fault injection all bypass corpus resolution — the corpus only ever
// substitutes for live interpretation of the clean stream.
func TestCorpusIgnoredWhenIncompatible(t *testing.T) {
	rc := corpusRunConfig()
	dir := filepath.Join(t.TempDir(), "corpus")
	seedCorpus(t, dir, "gin", rc)

	rcF := rc
	rcF.CorpusDir = dir
	rcF.Fault = fault.Config{Class: fault.ClassTagFlip, Rate: 0.001, Seed: 1}
	res, err := runOne(context.Background(), "gin", SchemeHier, rcF)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceSource != "live" {
		t.Fatalf("faulted run used source %q, want live", res.TraceSource)
	}
}
