package harness

import (
	"sync"

	"hprefetch/internal/tracefile"
)

// Replayed traces are decoded once per process and cached in memory,
// for the same reason built workloads are: a replay-backed experiment
// streams the same trace through every scheme of a comparison, and the
// decode (CRC, inflate, delta reconstruction) is the only part of
// replay that costs anything. The cache is a small LRU keyed by file
// identity — path plus the trace's header fingerprint (size + header
// CRC), so an in-place re-record is picked up even when it lands within
// one mtime tick on a coarse-timestamp filesystem — and bounded by
// entry count: traces are a few tens of megabytes decoded, and
// experiments touch at most a handful of distinct files.
const traceCacheCap = 4

type traceCacheEntry struct {
	fp     string // tracefile.HeaderFingerprint at decode time
	loaded *tracefile.Loaded
	used   uint64 // LRU clock
}

var (
	traceCacheMu   sync.Mutex
	traceCache     = map[string]*traceCacheEntry{}
	traceCacheTick uint64
)

// loadTrace returns the decoded in-memory form of the trace at path,
// decoding it on first use.
func loadTrace(path string) (*tracefile.Loaded, error) {
	fp, err := tracefile.HeaderFingerprint(path)
	if err != nil {
		return nil, err
	}

	traceCacheMu.Lock()
	traceCacheTick++
	if e, ok := traceCache[path]; ok && e.fp == fp {
		e.used = traceCacheTick
		l := e.loaded
		traceCacheMu.Unlock()
		return l, nil
	}
	traceCacheMu.Unlock()

	// Decode outside the lock; concurrent first loads of the same path
	// duplicate work harmlessly (the single-flight Runner above already
	// collapses identical runs).
	l, err := tracefile.Load(path)
	if err != nil {
		return nil, err
	}

	traceCacheMu.Lock()
	defer traceCacheMu.Unlock()
	traceCacheTick++
	traceCache[path] = &traceCacheEntry{fp: fp, loaded: l, used: traceCacheTick}
	for len(traceCache) > traceCacheCap {
		oldPath, oldUsed := "", ^uint64(0)
		for p, e := range traceCache {
			if e.used < oldUsed {
				oldPath, oldUsed = p, e.used
			}
		}
		delete(traceCache, oldPath)
	}
	return l, nil
}
