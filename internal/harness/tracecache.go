package harness

import (
	"sync"
	"time"

	"hprefetch/internal/tracefile"
)

// Replayed traces are decoded once per process and cached in memory,
// for the same reason built workloads are: a replay-backed experiment
// streams the same trace through every scheme of a comparison, and the
// decode (CRC, inflate, delta reconstruction) is the only part of
// replay that costs anything. The cache is a small LRU keyed by file
// identity — path plus the trace's header fingerprint (size + header
// CRC), so an in-place re-record is picked up even when it lands within
// one mtime tick on a coarse-timestamp filesystem — and bounded by
// entry count: traces are a few tens of megabytes decoded, and
// experiments touch at most a handful of distinct files.
//
// Decode failures are negative-cached briefly: when a corrupt trace is
// discovered, every concurrent job of a sweep is about to trip over the
// same file, and re-running the full decode (CRC + inflate over
// megabytes) per job just to re-learn the same corruption would stack
// wasted work on top of a failure. A fingerprint change (the file was
// re-recorded or healed) invalidates a negative entry like any other;
// the TTL catches same-fingerprint repairs (damage beyond the header
// leaves the fingerprint unchanged).
const traceCacheCap = 4

// traceNegTTL bounds how long a decode failure is served from cache.
// It is a variable so the staleness test can compress time.
var traceNegTTL = 5 * time.Second

type traceCacheEntry struct {
	fp     string // tracefile.HeaderFingerprint at decode time
	loaded *tracefile.Loaded
	err    error     // non-nil: negative entry (decode failed)
	when   time.Time // negative entries: when the failure was observed
	used   uint64    // LRU clock
}

var (
	traceCacheMu   sync.Mutex
	traceCache     = map[string]*traceCacheEntry{}
	traceCacheTick uint64
)

// loadTrace returns the decoded in-memory form of the trace at path,
// decoding it on first use.
func loadTrace(path string) (*tracefile.Loaded, error) {
	return loadTraceOpt(path, false)
}

// loadTraceFresh is loadTrace minus the negative cache: the self-heal
// path uses it right after republishing an object, when a stale
// failure entry for the same path (and, for damage beyond the header,
// the same fingerprint) may still be inside its TTL.
func loadTraceFresh(path string) (*tracefile.Loaded, error) {
	return loadTraceOpt(path, true)
}

func loadTraceOpt(path string, skipNegative bool) (*tracefile.Loaded, error) {
	fp, err := tracefile.HeaderFingerprint(path)
	if err != nil {
		return nil, err
	}

	traceCacheMu.Lock()
	traceCacheTick++
	if e, ok := traceCache[path]; ok && e.fp == fp {
		if e.err == nil {
			e.used = traceCacheTick
			l := e.loaded
			traceCacheMu.Unlock()
			return l, nil
		}
		if !skipNegative && time.Since(e.when) < traceNegTTL {
			e.used = traceCacheTick
			err := e.err
			traceCacheMu.Unlock()
			return nil, err
		}
		// Expired (or bypassed) negative entry: drop it and re-decode.
		delete(traceCache, path)
	}
	traceCacheMu.Unlock()

	// Decode outside the lock; concurrent first loads of the same path
	// duplicate work harmlessly (the single-flight Runner above already
	// collapses identical runs).
	l, err := tracefile.Load(path)

	traceCacheMu.Lock()
	defer traceCacheMu.Unlock()
	traceCacheTick++
	e := &traceCacheEntry{fp: fp, loaded: l, err: err, used: traceCacheTick}
	if err != nil {
		e.loaded = nil
		e.when = time.Now()
	}
	traceCache[path] = e
	for len(traceCache) > traceCacheCap {
		oldPath, oldUsed := "", ^uint64(0)
		for p, ent := range traceCache {
			if ent.used < oldUsed {
				oldPath, oldUsed = p, ent.used
			}
		}
		delete(traceCache, oldPath)
	}
	if err != nil {
		return nil, err
	}
	return l, nil
}

// EvictTrace drops any cached decode (positive or negative) for path.
// The self-heal path calls it the moment an artifact is quarantined so
// no job replays, or keeps failing from, a cached view of a file that
// is gone or about to be replaced.
func EvictTrace(path string) {
	traceCacheMu.Lock()
	delete(traceCache, path)
	traceCacheMu.Unlock()
}
