package harness

import (
	"fmt"
	"os"
	"sync"
	"time"

	"hprefetch/internal/tracefile"
)

// Replayed traces are decoded once per process and cached in memory,
// for the same reason built workloads are: a replay-backed experiment
// streams the same trace through every scheme of a comparison, and the
// decode (CRC, inflate, delta reconstruction) is the only part of
// replay that costs anything. The cache is a small LRU keyed by file
// identity — path plus size and modification time, so re-recording a
// trace in place is picked up — and bounded by entry count: traces are
// a few tens of megabytes decoded, and experiments touch at most a
// handful of distinct files.
const traceCacheCap = 4

type traceCacheEntry struct {
	size   int64
	mtime  time.Time
	loaded *tracefile.Loaded
	used   uint64 // LRU clock
}

var (
	traceCacheMu   sync.Mutex
	traceCache     = map[string]*traceCacheEntry{}
	traceCacheTick uint64
)

// loadTrace returns the decoded in-memory form of the trace at path,
// decoding it on first use.
func loadTrace(path string) (*tracefile.Loaded, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}

	traceCacheMu.Lock()
	traceCacheTick++
	if e, ok := traceCache[path]; ok && e.size == st.Size() && e.mtime.Equal(st.ModTime()) {
		e.used = traceCacheTick
		l := e.loaded
		traceCacheMu.Unlock()
		return l, nil
	}
	traceCacheMu.Unlock()

	// Decode outside the lock; concurrent first loads of the same path
	// duplicate work harmlessly (the single-flight Runner above already
	// collapses identical runs).
	l, err := tracefile.Load(path)
	if err != nil {
		return nil, err
	}

	traceCacheMu.Lock()
	defer traceCacheMu.Unlock()
	traceCacheTick++
	traceCache[path] = &traceCacheEntry{size: st.Size(), mtime: st.ModTime(), loaded: l, used: traceCacheTick}
	for len(traceCache) > traceCacheCap {
		oldPath, oldUsed := "", ^uint64(0)
		for p, e := range traceCache {
			if e.used < oldUsed {
				oldPath, oldUsed = p, e.used
			}
		}
		delete(traceCache, oldPath)
	}
	return l, nil
}
