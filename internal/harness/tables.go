package harness

import (
	"fmt"
	"sync"

	"hprefetch/internal/core"
	"hprefetch/internal/workloads"
)

// Table2Summary reproduces Table 2: average prefetch distance, accuracy,
// and L1-I/L2 coverage per scheme across the workloads.
func Table2Summary(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:     "Table 2",
		Title:  "Average prefetch distance, accuracy and coverage",
		Header: []string{"metric", "EFetch", "MANA", "EIP", "Hierarchical"},
	}
	schemes := []Scheme{SchemeEFetch, SchemeMANA, SchemeEIP, SchemeHier}
	var dist, acc, covL1, covL2 []string
	for _, s := range schemes {
		var ds, as, c1s, c2s []float64
		for _, w := range rc.workloadList() {
			r, err := Run(w, s, rc)
			if err != nil {
				return nil, err
			}
			ds = append(ds, r.Stats.PFAvgDistance())
			as = append(as, r.Stats.PFAccuracy())
			c1s = append(c1s, r.Stats.PFCoverageL1())
			c2s = append(c2s, r.Stats.PFCoverageL2())
		}
		dist = append(dist, f1(mean(ds)))
		acc = append(acc, pct(mean(as)))
		covL1 = append(covL1, pct(mean(c1s)))
		covL2 = append(covL2, pct(mean(c2s)))
	}
	t.Rows = append(t.Rows,
		append([]string{"Distance (blocks)"}, dist...),
		append([]string{"Accuracy (L1-I)"}, acc...),
		append([]string{"Coverage (L1-I)"}, covL1...),
		append([]string{"Coverage (L2)"}, covL2...),
	)
	t.Notes = append(t.Notes,
		"paper: distance 3.4/4.3/6.1/90; accuracy 58/55/30/53%; covL1 10/14/48/37%; covL2 8/12/23/54%")
	return t, nil
}

// Table3L1ISweep reproduces Table 3: accuracy, coverage and speedup of
// every prefetcher under varying L1-I capacities.
func Table3L1ISweep(rc RunConfig, sizesKB []int) (*Table, error) {
	if len(sizesKB) == 0 {
		sizesKB = []int{32, 64, 128, 256}
	}
	t := &Table{
		ID:     "Table 3",
		Title:  "Prefetcher accuracy, coverage and speedup across L1-I sizes",
		Header: []string{"scheme", "L1-I", "accuracy", "coverage", "speedup"},
	}
	for _, s := range []Scheme{SchemeEFetch, SchemeMANA, SchemeEIP, SchemeHier} {
		for _, kb := range sizesKB {
			sub := rc
			sub.Params.L1ISets = kb * 1024 / 64 / sub.Params.L1IWays
			accs, covs, spds, _ := collect(sub, s)
			t.Rows = append(t.Rows, []string{
				string(s), fmt.Sprintf("%dKB", kb),
				pct(mean(accs)), pct(mean(covs)), spd(mean(spds)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper: IPC gains shrink as the L1-I grows; Hierarchical keeps a 5.1% edge even at 256KB")
	return t, nil
}

// Table4BundleStats reproduces Table 4: per-binary static Bundle counts
// and dynamic Bundle behaviour (footprint, execution cycles, Jaccard).
func Table4BundleStats(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "Table 4",
		Title: "Bundle statistics (static identification + dynamic behaviour)",
		Header: []string{
			"benchmark", "static bundles", "total funcs", "% bundles",
			"avg footprint (KB)", "avg exe cycles", "avg Jaccard",
		},
	}
	names := rc.Workloads
	if len(names) == 0 {
		names = workloads.Table4Names()
	}
	sub := rc
	sub.TrackBundles = true
	var fps, cycs, jacs, pcts []float64
	var statics, totals float64
	for _, w := range names {
		built, err := workloads.Build(w)
		if err != nil {
			return nil, err
		}
		nStatic := len(built.Linked.Analysis.Entries)
		total := built.Loaded.Prog.NumFuncs()
		frac := float64(nStatic) / float64(total)
		r, err := Run(w, SchemeHier, sub)
		if err != nil {
			return nil, err
		}
		b := r.Bundle
		t.Rows = append(t.Rows, []string{
			w, fmt.Sprint(nStatic), fmt.Sprint(total), pct(frac),
			f1(b.AvgFootprintKB), f1(b.AvgExecCycles), f3(b.AvgJaccard),
		})
		statics += float64(nStatic)
		totals += float64(total)
		pcts = append(pcts, frac)
		fps = append(fps, b.AvgFootprintKB)
		cycs = append(cycs, b.AvgExecCycles)
		jacs = append(jacs, b.AvgJaccard)
	}
	t.Rows = append(t.Rows, []string{
		"MEAN", f1(statics / float64(len(names))), f1(totals / float64(len(names))),
		pct(mean(pcts)), f1(mean(fps)), f1(mean(cycs)), f3(mean(jacs)),
	})
	t.Notes = append(t.Notes,
		"paper means: 3861 bundles of 126378 funcs (3.67%), 42.4KB footprint, 63045 cycles, Jaccard 0.881")
	return t, nil
}

// paperIDs are the evaluation's experiments in paper order — the set
// cmd/hpsim's `all` mode regenerates (ablation and degradation are
// extras, run by id only).
var paperIDs = []string{
	"fig1", "fig2a", "fig2b", "fig2c", "fig3", "fig4", "fig9", "fig10",
	"fig11", "fig12", "fig13", "fig14", "fig15a", "fig15b", "fig16",
	"fig17", "table2", "table3", "table4",
}

// AllExperiments runs every figure and table at the given configuration,
// in paper order. It is the engine behind cmd/hpsim's `all` mode.
func AllExperiments(rc RunConfig) ([]*Table, error) {
	return Experiments(paperIDs, rc, 1)
}

// AllExperimentsParallel is AllExperiments with up to parallel
// experiment generators running concurrently.
func AllExperimentsParallel(rc RunConfig, parallel int) ([]*Table, error) {
	return Experiments(paperIDs, rc, parallel)
}

// Experiments runs the named experiments, with up to parallel generators
// in flight at once (parallel <= 1 runs serially). Output is
// deterministic regardless of scheduling: tables come back in ids order,
// each table's rows are produced by its generator's own serial loop, and
// the shared single-flight Runner guarantees concurrent generators that
// need the same (workload, scheme) run share one simulation rather than
// racing. On failure the tables for every id before the first failing
// one are returned alongside the error.
func Experiments(ids []string, rc RunConfig, parallel int) ([]*Table, error) {
	if parallel <= 1 {
		var out []*Table
		for _, id := range ids {
			tbl, err := Experiment(id, rc)
			if err != nil {
				return out, err
			}
			out = append(out, tbl)
		}
		return out, nil
	}
	type slot struct {
		tbl *Table
		err error
	}
	slots := make([]slot, len(ids))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id string) {
			defer wg.Done()
			defer func() { <-sem }()
			tbl, err := Experiment(id, rc)
			slots[i] = slot{tbl, err}
		}(i, id)
	}
	wg.Wait()
	var out []*Table
	for i := range slots {
		if slots[i].err != nil {
			return out, slots[i].err
		}
		out = append(out, slots[i].tbl)
	}
	return out, nil
}

// Experiment looks an experiment up by its figure/table identifier
// ("fig9", "table4", ...), for the CLI.
func Experiment(id string, rc RunConfig) (*Table, error) {
	switch id {
	case "fig1":
		return Fig1StageFootprints(rc)
	case "fig2a":
		return Fig2aManaLookahead(rc, nil)
	case "fig2b":
		return Fig2bEFetchLookahead(rc, nil)
	case "fig2c":
		return Fig2cEIPDistance(rc)
	case "fig3":
		return Fig3DistanceAccuracyCoverage(rc)
	case "fig4":
		return Fig4TriggerSimilarity(rc, nil)
	case "fig9":
		return Fig9Speedup(rc)
	case "fig10":
		return Fig10LatePrefetches(rc)
	case "fig11":
		return Fig11MissLatency(rc)
	case "fig12":
		return Fig12LongRange(rc)
	case "fig13":
		return Fig13MetadataSensitivity(rc, nil, nil)
	case "fig14":
		return Fig14InfiniteBTB(rc)
	case "fig15a":
		return Fig15aFTQ(rc, nil)
	case "fig15b":
		return Fig15bITLB(rc, nil)
	case "fig16":
		return Fig16Bandwidth(rc)
	case "fig17":
		return Fig17L2Prefetch(rc)
	case "table2":
		return Table2Summary(rc)
	case "table3":
		return Table3L1ISweep(rc, nil)
	case "table4":
		return Table4BundleStats(rc)
	case "ablation":
		return Ablations(rc)
	case "degradation":
		return DegradationTable(rc)
	case "microservice":
		return MicroserviceTable(rc)
	case "throttling":
		return ThrottlingTable(rc)
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (fig1..fig17, table2..table4, ablation, degradation, microservice, throttling)", id)
}

// ExperimentIDs lists valid Experiment identifiers in paper order.
func ExperimentIDs() []string {
	return append(append([]string{}, paperIDs...), "ablation", "degradation", "microservice", "throttling")
}

// Ablations exercises the Hierarchical Prefetcher's design choices the
// paper argues for: superseding records with the most recent execution
// (vs recording once) and num-insts pacing (vs unpaced streaming).
func Ablations(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:     "Ablation",
		Title:  "Hierarchical design-choice ablations (mean over workloads)",
		Header: []string{"variant", "speedup", "accuracy", "covL1", "covL2"},
	}
	variants := []struct {
		name string
		mut  func(c *core.Config)
	}{
		{"replay-latest + pacing (paper)", func(c *core.Config) {}},
		{"record-once", func(c *core.Config) { c.RecordOnce = true }},
		{"no pacing", func(c *core.Config) { c.DisablePacing = true }},
		{"record-once + no pacing", func(c *core.Config) { c.RecordOnce = true; c.DisablePacing = true }},
	}
	for _, v := range variants {
		cfg := core.DefaultConfig()
		v.mut(&cfg)
		sub := rc
		sub.HierConfig = &cfg
		accs, covs, spds, _ := collect(sub, SchemeHier)
		var cov2s []float64
		for _, w := range sub.workloadList() {
			r, err := Run(w, SchemeHier, sub)
			if err != nil {
				return nil, err
			}
			cov2s = append(cov2s, r.Stats.PFCoverageL2())
		}
		t.Rows = append(t.Rows, []string{
			v.name, spd(mean(spds)), pct(mean(accs)), pct(mean(covs)), pct(mean(cov2s)),
		})
	}
	t.Notes = append(t.Notes,
		"the paper's §5.3.4-5.3.5 rationale: most-recent records unlearn sporadic paths; pacing protects the L1-I")
	return t, nil
}
