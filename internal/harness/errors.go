package harness

import (
	"context"
	"errors"
)

// Transient-vs-permanent error classification. A serving layer retrying
// a failed run needs to know whether the failure was environmental (an
// injected fault, a panic escaping the simulation stack, a deadline that
// expired while the machine was saturated) or structural (a bad
// workload, an unknown scheme, an invalid configuration). Environmental
// failures are worth retrying — determinism guarantees a retried run
// that succeeds produces the exact result the failed attempt would have
// — while structural ones will fail identically forever.

// transientErr marks an error as retryable without hiding its cause.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// MarkTransient wraps err so IsTransient reports true for it (and for
// anything that later wraps it). A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err is worth retrying: explicitly marked
// transient, or a deadline expiry (the run may fit the budget once the
// queue drains). Explicit cancellation is NOT transient — the caller
// asked the run to stop.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var te *transientErr
	if errors.As(err, &te) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}
