package harness

import (
	"strings"
	"testing"

	"hprefetch/internal/core"
	"hprefetch/internal/fault"
)

// TestDegradationTableQuick runs the full degradation experiment on the
// quick workload and checks the graceful-degradation contract: every
// fault class completes without panics and keeps Hierarchical at or
// above its same-fault FDIP baseline (within noise).
func TestDegradationTableQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rc := quick()
	tbl, err := DegradationTable(rc)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 1 + len(fault.Classes())
	if len(tbl.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d (clean + every fault class)", len(tbl.Rows), wantRows)
	}
	for _, n := range tbl.Notes {
		if strings.Contains(n, "failed") {
			t.Errorf("run failed under injection: %s", n)
		}
	}

	// The speedup floor: ε covers simulation noise at quick run lengths.
	const eps = 0.05
	for _, c := range fault.Classes() {
		sub := rc
		sub.Fault = fault.Config{Class: c}
		s, err := Speedup("gin", SchemeHier, sub)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if s < -eps {
			t.Errorf("class %s: speedup %.1f%% fell below FDIP-ε", c, s*100)
		}
	}

	// The bundle-table faults must actually have perturbed the channel.
	for _, c := range []fault.Class{fault.ClassBundleCorrupt, fault.ClassBundleStale} {
		sub := rc
		sub.Fault = fault.Config{Class: c}
		r, err := Run("gin", SchemeHier, sub)
		if err != nil {
			t.Fatal(err)
		}
		if r.TagDrops == 0 {
			t.Errorf("class %s: loader dropped no tags — injection inert?", c)
		}
	}
}

// TestDegradationSurvivesFailingRun asserts the suite completes when
// one injected (workload, scheme) run errors: the failure becomes a
// Notes entry, the remaining runs still produce rows.
func TestDegradationSurvivesFailingRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rc := quick()
	rc.Workloads = []string{"gin", "no-such-workload"}
	tbl, err := DegradationTable(rc)
	if err != nil {
		t.Fatalf("suite aborted instead of degrading: %v", err)
	}
	if len(tbl.Rows) != 1+len(fault.Classes()) {
		t.Errorf("rows = %d, want %d", len(tbl.Rows), 1+len(fault.Classes()))
	}
	failures := 0
	for _, n := range tbl.Notes {
		if strings.Contains(n, "no-such-workload") && strings.Contains(n, "failed") {
			failures++
		}
	}
	if failures == 0 {
		t.Error("failing run left no Notes entry")
	}
	for _, row := range tbl.Rows {
		if got := row[len(row)-1]; got != "1/2" {
			t.Errorf("row %q shows %q runs ok, want 1/2", row[0], got)
		}
	}
}

// TestRunRecoversPanics asserts a panic below harness.Run comes back as
// an error, not a crash. An out-of-range MAT configuration makes the
// Hierarchical core panic on construction.
func TestRunRecoversPanics(t *testing.T) {
	rc := quick()
	bad := core.DefaultConfig()
	bad.MATWays = 0 // division by zero inside core.New
	rc.HierConfig = &bad
	if _, err := Run("gin", SchemeHier, rc); err == nil {
		t.Fatal("panicking run returned no error")
	} else if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error %q does not mention the recovered panic", err)
	}
}
