package harness

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestTransientClassification(t *testing.T) {
	base := errors.New("boom")
	if IsTransient(base) {
		t.Fatal("plain error classified transient")
	}
	marked := MarkTransient(base)
	if !IsTransient(marked) {
		t.Fatal("marked error not transient")
	}
	if !errors.Is(marked, base) {
		t.Fatal("MarkTransient hides the cause")
	}
	// The mark survives further wrapping — the service sees errors after
	// the harness adds run context.
	wrapped := fmt.Errorf("gin/FDIP measure: %w", marked)
	if !IsTransient(wrapped) {
		t.Fatal("wrapping stripped the transient mark")
	}
	if IsTransient(nil) || MarkTransient(nil) != nil {
		t.Fatal("nil handling wrong")
	}
	// Deadline expiry is transient; explicit cancellation is not.
	if !IsTransient(fmt.Errorf("warmup: %w", context.DeadlineExceeded)) {
		t.Fatal("deadline expiry not transient")
	}
	if IsTransient(fmt.Errorf("warmup: %w", context.Canceled)) {
		t.Fatal("cancellation classified transient")
	}
}

// TestRunOnePanicIsTransient forces a panic through the simulation stack
// and checks the recovered error carries the transient mark.
func TestRunOnePanicIsTransient(t *testing.T) {
	rc := QuickRunConfig()
	_, err := runOne(nil, "gin", Scheme("no-such-scheme-panic-proxy"), rc)
	if err == nil {
		t.Fatal("unknown scheme did not error")
	}
	// Unknown scheme is a structural error, not transient.
	if IsTransient(err) {
		t.Fatal("structural error classified transient")
	}
}
