package harness

import (
	"fmt"

	"hprefetch/internal/core"
	"hprefetch/internal/isa"
	"hprefetch/internal/program"
	"hprefetch/internal/sim"
	"hprefetch/internal/workloads"
	"hprefetch/internal/xrand"
)

// Fig1StageFootprints reproduces Figure 1: the TiDB request pipeline and
// the average instruction footprint (touched cache blocks) of each stage
// during TPC-C-like execution. Like runOne, it honours rc.TracePath /
// rc.TraceDir: the stage view computed from a recorded trace is
// identical to the live one, because stage attribution rides in the
// trace alongside the events.
func Fig1StageFootprints(rc RunConfig) (*Table, error) {
	name := "tidb-tpcc"
	if len(rc.Workloads) == 1 {
		name = rc.Workloads[0]
	}
	built, err := workloads.Build(name)
	if err != nil {
		return nil, err
	}
	var eng sim.EventSource = built.NewEngine()
	tracePath := rc.TracePath
	if tracePath == "" && rc.TraceDir != "" {
		tracePath = tracePathFor(rc.TraceDir, name)
	}
	if tracePath != "" {
		tr, err := loadTrace(tracePath)
		if err != nil {
			return nil, err
		}
		if tm := tr.Meta(); tm.Workload != name || tm.Seed != built.Workload.TraceSeed {
			return nil, fmt.Errorf("harness: trace %s was recorded from workload %q seed %d, want %q seed %d",
				tracePath, tm.Workload, tm.Seed, name, built.Workload.TraceSeed)
		}
		eng = tr.Replay()
	}
	prog := built.Loaded.Prog
	nStages := len(prog.Stages)
	cur := make([]map[isa.Block]struct{}, nStages)
	sums := make([]uint64, nStages)
	counts := make([]uint64, nStages)
	flush := func() {
		for s := 0; s < nStages; s++ {
			if cur[s] != nil && len(cur[s]) > 0 {
				sums[s] += uint64(len(cur[s]))
				counts[s]++
			}
			cur[s] = nil
		}
	}
	var instr uint64
	budget := rc.MeasureInstr
	if budget == 0 {
		budget = 4_000_000
	}
	for instr < budget {
		ev := eng.Next()
		if ev.NumInstr == 0 {
			// Finite source (a trace) ran out before the budget; a torn
			// tail is an error, a clean end just truncates the view.
			if err := sourceErr(eng); err != nil {
				return nil, fmt.Errorf("harness: figure 1: %w", err)
			}
			break
		}
		instr += uint64(ev.NumInstr)
		if ev.Branch == isa.BrJump && ev.Func == prog.Entry {
			flush() // request boundary
			continue
		}
		s := eng.Stage()
		if s == program.NoStage {
			continue
		}
		if cur[s] == nil {
			cur[s] = make(map[isa.Block]struct{}, 1024)
		}
		cur[s][ev.Block()] = struct{}{}
	}
	flush()
	t := &Table{
		ID:     "Figure 1",
		Title:  name + " stage pipeline and average per-request stage footprints",
		Header: []string{"stage", "avg footprint (KB)", "requests observed"},
	}
	for s := 0; s < nStages; s++ {
		kb := 0.0
		if counts[s] > 0 {
			kb = float64(sums[s]) / float64(counts[s]) * isa.BlockSize / 1024
		}
		t.Rows = append(t.Rows, []string{prog.Stages[s].Name, f1(kb), fmt.Sprint(counts[s])})
	}
	t.Notes = append(t.Notes, "paper reports 40-280KB per stage on real TiDB")
	return t, nil
}

// Fig2aManaLookahead reproduces Figure 2a: MANA accuracy and miss
// reduction as its look-ahead (spatial regions) grows.
func Fig2aManaLookahead(rc RunConfig, lookaheads []int) (*Table, error) {
	if len(lookaheads) == 0 {
		lookaheads = []int{1, 2, 3, 4, 6, 8, 12, 16}
	}
	t := &Table{
		ID:     "Figure 2a",
		Title:  "MANA look-ahead (spatial regions) vs accuracy and covered misses",
		Header: []string{"look-ahead", "accuracy", "coverage", "speedup", "avg distance"},
	}
	for _, la := range lookaheads {
		sub := rc
		sub.ManaLookahead = la
		accs, covs, spds, dists := collect(sub, SchemeMANA)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(la), pct(mean(accs)), pct(mean(covs)), spd(mean(spds)), f1(mean(dists)),
		})
	}
	t.Notes = append(t.Notes, "paper: accuracy declines with look-ahead; coverage saturates past 4 regions")
	return t, nil
}

// Fig2bEFetchLookahead reproduces Figure 2b for EFetch (callee chain
// depth).
func Fig2bEFetchLookahead(rc RunConfig, lookaheads []int) (*Table, error) {
	if len(lookaheads) == 0 {
		lookaheads = []int{1, 2, 3, 5, 7, 10, 16}
	}
	t := &Table{
		ID:     "Figure 2b",
		Title:  "EFetch look-ahead (callees) vs accuracy and covered misses",
		Header: []string{"look-ahead", "accuracy", "coverage", "speedup", "avg distance"},
	}
	for _, la := range lookaheads {
		sub := rc
		sub.EFetchLookahead = la
		accs, covs, spds, dists := collect(sub, SchemeEFetch)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(la), pct(mean(accs)), pct(mean(covs)), spd(mean(spds)), f1(mean(dists)),
		})
	}
	t.Notes = append(t.Notes, "paper: coverage fails to improve past ~7 callees")
	return t, nil
}

// Fig2cEIPDistance reproduces Figure 2c: EIP accuracy bucketed by
// prefetch distance.
func Fig2cEIPDistance(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:     "Figure 2c",
		Title:  "EIP accuracy by prefetch distance (cache blocks)",
		Header: []string{"distance bucket", "uses", "fully timely", "accuracy"},
	}
	hist := make([]uint64, len(sim.DistanceBuckets))
	useful := make([]uint64, len(sim.DistanceBuckets))
	for _, w := range rc.workloadList() {
		r, err := Run(w, SchemeEIP, rc)
		if err != nil {
			return nil, err
		}
		for i := range hist {
			hist[i] += r.Stats.PFDistHist[i]
			useful[i] += r.Stats.PFDistUseful[i]
		}
	}
	lo := uint64(0)
	for i, hi := range sim.DistanceBuckets {
		label := fmt.Sprintf("%d-%d", lo, hi)
		if i == len(sim.DistanceBuckets)-1 {
			label = fmt.Sprintf(">%d", lo)
		}
		acc := 0.0
		if hist[i] > 0 {
			acc = float64(useful[i]) / float64(hist[i])
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprint(hist[i]), fmt.Sprint(useful[i]), pct(acc)})
		lo = hi
	}
	t.Notes = append(t.Notes, "paper: accuracy declines with distance")
	return t, nil
}

// collect runs a scheme over all configured workloads and gathers
// accuracy, L1 coverage, speedup, and average distance.
func collect(rc RunConfig, s Scheme) (accs, covs, spds, dists []float64) {
	for _, w := range rc.workloadList() {
		r, err := Run(w, s, rc)
		if err != nil {
			continue
		}
		sp, err := Speedup(w, s, rc)
		if err != nil {
			continue
		}
		accs = append(accs, r.Stats.PFAccuracy())
		covs = append(covs, r.Stats.PFCoverageL1())
		spds = append(spds, sp)
		dists = append(dists, r.Stats.PFAvgDistance())
	}
	return
}

// Fig3DistanceAccuracyCoverage reproduces Figure 3: accuracy and
// coverage of the three fine-grained prefetchers against their average
// prefetch distance.
func Fig3DistanceAccuracyCoverage(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:     "Figure 3",
		Title:  "Accuracy and coverage vs average prefetch distance",
		Header: []string{"scheme", "avg distance (blocks)", "accuracy", "coverage"},
	}
	for _, s := range []Scheme{SchemeEFetch, SchemeMANA, SchemeEIP} {
		accs, covs, _, dists := collect(rc, s)
		t.Rows = append(t.Rows, []string{string(s), f1(mean(dists)), pct(mean(accs)), pct(mean(covs))})
	}
	t.Notes = append(t.Notes, "paper: accuracy inversely correlates with distance; coverage grows with it")
	return t, nil
}

// Fig4TriggerSimilarity reproduces Figure 4: the Jaccard similarity of
// instruction footprints following successive occurrences of the same
// trigger, as the footprint window grows — computed directly on the
// retired stream for each trigger style (EIP: block address; MANA:
// spatial-region base; EFetch: call-stack signature) plus, for contrast,
// the paper's Bundle entries.
func Fig4TriggerSimilarity(rc RunConfig, windows []int) (*Table, error) {
	if len(windows) == 0 {
		windows = []int{16, 64, 256, 512}
	}
	names := rc.workloadList()
	kinds := []string{"EIP (block)", "MANA (region)", "EFetch (signature)", "Bundle (tagged entry)"}
	sums := make([][]float64, len(kinds))
	cnts := make([][]int, len(kinds))
	for k := range kinds {
		sums[k] = make([]float64, len(windows))
		cnts[k] = make([]int, len(windows))
	}
	for _, w := range names {
		res, err := triggerSimilarity(w, rc, windows)
		if err != nil {
			return nil, err
		}
		for k := range kinds {
			for wi := range windows {
				if res.counts[k][wi] > 0 {
					sums[k][wi] += res.sims[k][wi]
					cnts[k][wi]++
				}
			}
		}
	}
	t := &Table{
		ID:     "Figure 4",
		Title:  "Footprint similarity (Jaccard) after repeated occurrences of the same trigger",
		Header: append([]string{"trigger"}, mapStrings(windows)...),
	}
	for k, kind := range kinds {
		row := []string{kind}
		for wi := range windows {
			v := 0.0
			if cnts[k][wi] > 0 {
				v = sums[k][wi] / float64(cnts[k][wi])
			}
			row = append(row, f2(v))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: fine-grained triggers drop below 0.5 by 64 blocks; Bundles stay high")
	return t, nil
}

func mapStrings(ws []int) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = fmt.Sprintf("w=%d", w)
	}
	return out
}

type simResult struct {
	sims   [][]float64 // [kind][window] mean Jaccard
	counts [][]int
}

// triggerSimilarity samples, for each trigger kind, footprint windows
// following trigger occurrences and averages the Jaccard index between
// consecutive occurrences of the same trigger.
func triggerSimilarity(workload string, rc RunConfig, windows []int) (*simResult, error) {
	built, err := workloads.Build(workload)
	if err != nil {
		return nil, err
	}
	eng := built.NewEngine()
	maxW := windows[len(windows)-1]
	const kinds = 4
	const maxTriggers = 512 // sampled triggers per kind
	const maxOcc = 6        // occurrences averaged per trigger

	type open struct {
		kind, slot int
		blocks     []isa.Block
	}
	type slotState struct {
		prev [][]isa.Block // per window: previous footprint (sorted)
		sum  []float64
		cnt  []int
	}
	states := make([][]*slotState, kinds)
	keys := make([]map[uint64]int, kinds) // trigger key -> slot
	occs := make([]map[uint64]int, kinds)
	for k := 0; k < kinds; k++ {
		states[k] = nil
		keys[k] = make(map[uint64]int, maxTriggers)
		occs[k] = make(map[uint64]int, maxTriggers)
	}
	var opens []*open
	var sig uint64 // rolling call signature (EFetch-style)
	var stack []isa.Addr

	budget := rc.MeasureInstr
	if budget == 0 {
		budget = 3_000_000
	}
	var instr uint64
	lastBlock := isa.Block(0)
	haveLast := false

	noteTrigger := func(kind int, key uint64) {
		if occs[kind][key] >= maxOcc {
			return
		}
		slot, ok := keys[kind][key]
		if !ok {
			if len(keys[kind]) >= maxTriggers {
				return
			}
			slot = len(states[kind])
			keys[kind][key] = slot
			states[kind] = append(states[kind], &slotState{
				prev: make([][]isa.Block, len(windows)),
				sum:  make([]float64, len(windows)),
				cnt:  make([]int, len(windows)),
			})
		}
		occs[kind][key]++
		opens = append(opens, &open{kind: kind, slot: slot, blocks: make([]isa.Block, 0, maxW)})
	}

	for instr < budget {
		ev := eng.Next()
		instr += uint64(ev.NumInstr)
		b := ev.Block()
		newBlock := !haveLast || b != lastBlock
		lastBlock, haveLast = b, true

		if newBlock {
			// Extend open windows; close the ones that filled up.
			keep := opens[:0]
			for _, o := range opens {
				o.blocks = append(o.blocks, b)
				if len(o.blocks) < maxW {
					keep = append(keep, o)
					continue
				}
				st := states[o.kind][o.slot]
				for wi, wlen := range windows {
					cur := uniqueSorted(o.blocks[:wlen])
					if st.prev[wi] != nil {
						st.sum[wi] += jaccard(st.prev[wi], cur)
						st.cnt[wi]++
					}
					st.prev[wi] = cur
				}
			}
			opens = keep

			// Triggers: every new block (EIP), every new region (MANA).
			noteTrigger(0, uint64(b))
			region := uint64(b) / 8
			noteTrigger(1, region)
		}
		switch {
		case ev.Branch.IsCall():
			stack = append(stack, ev.Target)
			if len(stack) > 48 {
				stack = stack[1:]
			}
			sig = 0x6A09E667F3BCC909
			for i := len(stack) - 1; i >= 0 && i >= len(stack)-3; i-- {
				sig = xrand.Mix(sig, uint64(stack[i]))
			}
			noteTrigger(2, sig)
			if ev.Tagged {
				noteTrigger(3, uint64(ev.Target))
			}
		case ev.Branch == isa.BrRet:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			if ev.Tagged {
				noteTrigger(3, uint64(ev.Target))
			}
		}
		if len(opens) > 4096 {
			opens = opens[len(opens)-4096:]
		}
	}

	out := &simResult{
		sims:   make([][]float64, kinds),
		counts: make([][]int, kinds),
	}
	for k := 0; k < kinds; k++ {
		out.sims[k] = make([]float64, len(windows))
		out.counts[k] = make([]int, len(windows))
		for wi := range windows {
			var s float64
			var n int
			for _, st := range states[k] {
				if st.cnt[wi] > 0 {
					s += st.sum[wi] / float64(st.cnt[wi])
					n++
				}
			}
			if n > 0 {
				out.sims[k][wi] = s / float64(n)
				out.counts[k][wi] = n
			}
		}
	}
	return out, nil
}

func uniqueSorted(bs []isa.Block) []isa.Block {
	out := append([]isa.Block(nil), bs...)
	sortBlocks(out)
	j := 0
	for i := 0; i < len(out); i++ {
		if j == 0 || out[i] != out[j-1] {
			out[j] = out[i]
			j++
		}
	}
	return out[:j]
}

func sortBlocks(bs []isa.Block) {
	// Insertion sort is fine for the window sizes used here? Windows go
	// to 512 entries; use a simple quicksort via sort-less shell sort.
	for gap := len(bs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(bs); i++ {
			for j := i; j >= gap && bs[j] < bs[j-gap]; j -= gap {
				bs[j], bs[j-gap] = bs[j-gap], bs[j]
			}
		}
	}
}

// jaccard computes |A∩B| / |A∪B| over sorted unique slices.
func jaccard(a, b []isa.Block) float64 {
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Fig9Speedup reproduces Figure 9: IPC speedup over FDIP per workload
// for every scheme, plus the Perfect-L1I bound.
func Fig9Speedup(rc RunConfig) (*Table, error) {
	schemes := append(Schemes()[1:], SchemePerfect)
	t := &Table{
		ID:     "Figure 9",
		Title:  "IPC speedup over the FDIP baseline",
		Header: append([]string{"workload", "FDIP IPC"}, schemeNames(schemes)...),
	}
	sums := make([]float64, len(schemes))
	names := rc.workloadList()
	for _, w := range names {
		base, err := Run(w, SchemeFDIP, rc)
		if err != nil {
			return nil, err
		}
		row := []string{w, f3(base.Stats.IPC())}
		for i, s := range schemes {
			sp, err := Speedup(w, s, rc)
			if err != nil {
				return nil, err
			}
			sums[i] += sp
			row = append(row, spd(sp))
		}
		t.Rows = append(t.Rows, row)
	}
	meanRow := []string{"MEAN", ""}
	for i := range schemes {
		meanRow = append(meanRow, spd(sums[i]/float64(len(names))))
	}
	t.Rows = append(t.Rows, meanRow)
	t.Notes = append(t.Notes,
		"paper means: EFetch +1.4%, MANA +1.6%, EIP +4.0%, Hierarchical +6.6%, Perfect +16.8%")
	return t, nil
}

// Fig10LatePrefetches reproduces Figure 10: the share of each scheme's
// prefetches that arrive late (demand hits an in-flight fill).
func Fig10LatePrefetches(rc RunConfig) (*Table, error) {
	schemes := Schemes()[1:]
	t := &Table{
		ID:     "Figure 10",
		Title:  "Late prefetches (demand hits in the MSHRs) as a share of useful+late",
		Header: append([]string{"workload"}, schemeNames(schemes)...),
	}
	sums := make([]float64, len(schemes))
	names := rc.workloadList()
	for _, w := range names {
		row := []string{w}
		for i, s := range schemes {
			r, err := Run(w, s, rc)
			if err != nil {
				return nil, err
			}
			v := r.Stats.PFLateFraction()
			sums[i] += v
			row = append(row, pct(v))
		}
		t.Rows = append(t.Rows, row)
	}
	meanRow := []string{"MEAN"}
	for i := range schemes {
		meanRow = append(meanRow, pct(sums[i]/float64(len(names))))
	}
	t.Rows = append(t.Rows, meanRow)
	t.Notes = append(t.Notes, "paper means: EFetch 29%, MANA 13%, EIP 7%, Hierarchical 3%")
	return t, nil
}

// Fig11MissLatency reproduces Figure 11: total demand instruction miss
// latency (clean miss latency plus late-fill residuals) per scheme,
// normalised to FDIP.
func Fig11MissLatency(rc RunConfig) (*Table, error) {
	schemes := Schemes()
	t := &Table{
		ID:     "Figure 11",
		Title:  "Demand instruction miss latency relative to FDIP (late residual + clean miss)",
		Header: append([]string{"workload"}, schemeNames(schemes)...),
	}
	names := rc.workloadList()
	sums := make([]float64, len(schemes))
	for _, w := range names {
		base, err := Run(w, SchemeFDIP, rc)
		if err != nil {
			return nil, err
		}
		baseLat := base.Stats.TotalMissLatencyCycles()
		row := []string{w}
		for i, s := range schemes {
			r, err := Run(w, s, rc)
			if err != nil {
				return nil, err
			}
			rel := 1.0
			if baseLat > 0 {
				rel = r.Stats.TotalMissLatencyCycles() / baseLat
			}
			sums[i] += rel
			row = append(row, pct(rel))
		}
		t.Rows = append(t.Rows, row)
	}
	meanRow := []string{"MEAN"}
	for i := range schemes {
		meanRow = append(meanRow, pct(sums[i]/float64(len(names))))
	}
	t.Rows = append(t.Rows, meanRow)
	t.Notes = append(t.Notes, "paper: Hierarchical reduces total miss latency by 38.7%; best prior 19.7%")
	return t, nil
}

// Fig12LongRange reproduces Figure 12: elimination of long-range misses
// (those served beyond the L2 — the top of the reuse-distance
// distribution) relative to the FDIP baseline.
func Fig12LongRange(rc RunConfig) (*Table, error) {
	schemes := Schemes()[1:]
	t := &Table{
		ID:     "Figure 12",
		Title:  "Long-range (beyond-L2) instruction misses eliminated vs FDIP",
		Header: append([]string{"workload"}, schemeNames(schemes)...),
	}
	longRange := func(st *sim.Stats) float64 {
		return float64(st.LateFDIPByLevel[3] + st.LateFDIPByLevel[4] +
			st.LatePFByLevel[3] + st.LatePFByLevel[4] +
			st.ServedLLC + st.ServedMem)
	}
	names := rc.workloadList()
	sums := make([]float64, len(schemes))
	for _, w := range names {
		base, err := Run(w, SchemeFDIP, rc)
		if err != nil {
			return nil, err
		}
		b := longRange(base.Stats)
		row := []string{w}
		for i, s := range schemes {
			r, err := Run(w, s, rc)
			if err != nil {
				return nil, err
			}
			elim := 0.0
			if b > 0 {
				elim = 1 - longRange(r.Stats)/b
			}
			sums[i] += elim
			row = append(row, pct(elim))
		}
		t.Rows = append(t.Rows, row)
	}
	meanRow := []string{"MEAN"}
	for i := range schemes {
		meanRow = append(meanRow, pct(sums[i]/float64(len(names))))
	}
	t.Rows = append(t.Rows, meanRow)
	t.Notes = append(t.Notes, "paper means: Hierarchical 53%, EIP 21%, MANA 11%, EFetch 7%")
	return t, nil
}

// Fig13MetadataSensitivity reproduces Figure 13: mean speedup under
// varying Metadata Address Table and Metadata Buffer sizes.
func Fig13MetadataSensitivity(rc RunConfig, matSizes []int, bufKBs []int) (*Table, error) {
	if len(matSizes) == 0 {
		matSizes = []int{64, 128, 256, 512, 1024, 4096}
	}
	if len(bufKBs) == 0 {
		bufKBs = []int{64, 128, 256, 512, 1024, 4096}
	}
	t := &Table{
		ID:     "Figure 13",
		Title:  "Hierarchical speedup sensitivity to metadata sizing",
		Header: []string{"parameter", "value", "mean speedup"},
	}
	for _, ms := range matSizes {
		cfg := core.DefaultConfig()
		cfg.MATEntries = ms
		sub := rc
		sub.HierConfig = &cfg
		_, _, spds, _ := collect(sub, SchemeHier)
		t.Rows = append(t.Rows, []string{"MAT entries", fmt.Sprint(ms), spd(mean(spds))})
	}
	for _, kb := range bufKBs {
		cfg := core.DefaultConfig()
		cfg.MetadataKB = kb
		sub := rc
		sub.HierConfig = &cfg
		_, _, spds, _ := collect(sub, SchemeHier)
		t.Rows = append(t.Rows, []string{"Metadata buffer KB", fmt.Sprint(kb), spd(mean(spds))})
	}
	t.Notes = append(t.Notes, "paper: gains saturate at 512 entries / 512KB — the chosen configuration")
	return t, nil
}

// Fig14InfiniteBTB reproduces Figure 14: speedups when FDIP enjoys an
// infinite BTB.
func Fig14InfiniteBTB(rc RunConfig) (*Table, error) {
	rc.Params.BP.BTBInfinite = true
	t, err := Fig9Speedup(rc)
	if err != nil {
		return nil, err
	}
	t.ID = "Figure 14"
	t.Title = "IPC speedup over FDIP with an infinite BTB"
	t.Notes = []string{"paper means: EFetch +0.3%, MANA +0.1%, EIP +0.9%, Hierarchical +4.2%"}
	return t, nil
}

// Fig15aFTQ reproduces Figure 15a: baseline FDIP IPC across FTQ sizes.
func Fig15aFTQ(rc RunConfig, sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{8, 16, 24, 32, 48, 64}
	}
	t := &Table{
		ID:     "Figure 15a",
		Title:  "FDIP IPC as a function of FTQ size",
		Header: []string{"FTQ entries", "mean IPC"},
	}
	for _, n := range sizes {
		sub := rc
		sub.Params.FTQEntries = n
		var ipcs []float64
		for _, w := range sub.workloadList() {
			r, err := Run(w, SchemeFDIP, sub)
			if err != nil {
				return nil, err
			}
			ipcs = append(ipcs, r.Stats.IPC())
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), f3(mean(ipcs))})
	}
	t.Notes = append(t.Notes, "paper: best at 24 entries, deeper FTQs slightly counter-productive")
	return t, nil
}

// Fig15bITLB reproduces Figure 15b: baseline and Hierarchical IPC across
// I-TLB sizes.
func Fig15bITLB(rc RunConfig, sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 128, 256, 512, 1024}
	}
	t := &Table{
		ID:     "Figure 15b",
		Title:  "IPC as a function of I-TLB entries",
		Header: []string{"I-TLB entries", "FDIP IPC", "Hierarchical IPC", "speedup"},
	}
	for _, n := range sizes {
		sub := rc
		sub.Params.ITLBEntries = n
		var baseIPC, hierIPC []float64
		for _, w := range sub.workloadList() {
			b, err := Run(w, SchemeFDIP, sub)
			if err != nil {
				return nil, err
			}
			h, err := Run(w, SchemeHier, sub)
			if err != nil {
				return nil, err
			}
			baseIPC = append(baseIPC, b.Stats.IPC())
			hierIPC = append(hierIPC, h.Stats.IPC())
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), f3(mean(baseIPC)), f3(mean(hierIPC)),
			spd(mean(hierIPC)/mean(baseIPC) - 1),
		})
	}
	t.Notes = append(t.Notes, "paper: both improve with I-TLB size; Hierarchical holds its edge throughout")
	return t, nil
}

// Fig16Bandwidth reproduces Figure 16: memory bandwidth relative to the
// baseline, including the data side (modelled as a constant stream) and
// metadata traffic.
func Fig16Bandwidth(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:     "Figure 16",
		Title:  "Memory bandwidth with Hierarchical Prefetching, normalised to FDIP",
		Header: []string{"workload", "relative bandwidth", "overpredict share", "metadata share"},
	}
	// The data side is not simulated; it is charged as a constant
	// per-instruction stream so instruction-side overheads dilute the
	// way the paper's whole-system measurements do.
	const dataBlocksPerKI = 18.0
	names := rc.workloadList()
	var rels []float64
	for _, w := range names {
		base, err := Run(w, SchemeFDIP, rc)
		if err != nil {
			return nil, err
		}
		hp, err := Run(w, SchemeHier, rc)
		if err != nil {
			return nil, err
		}
		data := dataBlocksPerKI * float64(base.Stats.Instructions) / 1000
		baseBlocks := float64(base.Stats.MemBlocksTotal()) + data
		hpBlocks := float64(hp.Stats.MemBlocksTotal()) + data
		rel := hpBlocks / baseBlocks
		rels = append(rels, rel)
		extra := hpBlocks - baseBlocks
		overShare, metaShare := 0.0, 0.0
		if extra > 0 {
			metaShare = float64(hp.Stats.MemBlocksMeta) / extra
			if metaShare > 1 {
				metaShare = 1
			}
			overShare = 1 - metaShare
		}
		t.Rows = append(t.Rows, []string{w, pct(rel), pct(overShare), pct(metaShare)})
	}
	t.Rows = append(t.Rows, []string{"MEAN", pct(mean(rels)), "", ""})
	t.Notes = append(t.Notes, "paper: +4% mean, +10% worst; 40% overprediction / 60% metadata")
	return t, nil
}

// Fig17L2Prefetch reproduces Figure 17: Hierarchical Prefetching aimed
// at the L2 instead of the L1-I.
func Fig17L2Prefetch(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:     "Figure 17",
		Title:  "Speedup when Hierarchical prefetches into the L2",
		Header: []string{"workload", "to L1-I", "to L2"},
	}
	l2rc := rc
	l2rc.Params.PrefetchToL2 = true
	names := rc.workloadList()
	var l1s, l2s []float64
	for _, w := range names {
		s1, err := Speedup(w, SchemeHier, rc)
		if err != nil {
			return nil, err
		}
		s2, err := Speedup(w, SchemeHier, l2rc)
		if err != nil {
			return nil, err
		}
		l1s = append(l1s, s1)
		l2s = append(l2s, s2)
		t.Rows = append(t.Rows, []string{w, spd(s1), spd(s2)})
	}
	t.Rows = append(t.Rows, []string{"MEAN", spd(mean(l1s)), spd(mean(l2s))})
	t.Notes = append(t.Notes, "paper: L2-directed keeps most of the benefit (5.8% vs 6.6%)")
	return t, nil
}

func schemeNames(ss []Scheme) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = string(s)
	}
	return out
}
