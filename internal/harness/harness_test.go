package harness

import (
	"strings"
	"testing"
)

// quick returns a fast configuration shared by the harness tests.
func quick() RunConfig {
	rc := QuickRunConfig()
	rc.Workloads = []string{"gin"}
	rc.WarmInstr = 800_000
	rc.MeasureInstr = 1_200_000
	return rc
}

func TestRunAndMemoise(t *testing.T) {
	rc := quick()
	a, err := Run("gin", SchemeFDIP, rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("gin", SchemeFDIP, rc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs not memoised")
	}
	if a.Stats.IPC() <= 0 {
		t.Error("zero IPC")
	}
	// Different parameters must not collide in the memo.
	rc2 := rc
	rc2.Params.FTQEntries = 8
	c, err := Run("gin", SchemeFDIP, rc2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different parameters hit the same memo entry")
	}
}

func TestSpeedupAllSchemes(t *testing.T) {
	rc := quick()
	for _, s := range []Scheme{SchemeEFetch, SchemeMANA, SchemeEIP, SchemeHier, SchemePerfect} {
		sp, err := Speedup("gin", s, rc)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if sp < -0.5 || sp > 1.0 {
			t.Errorf("%s speedup %.3f implausible", s, sp)
		}
	}
}

func TestUnknownSchemeAndExperiment(t *testing.T) {
	rc := quick()
	if _, err := Run("gin", Scheme("bogus"), rc); err == nil {
		t.Error("bogus scheme accepted")
	}
	if _, err := Run("no-such-workload", SchemeFDIP, rc); err == nil {
		t.Error("bogus workload accepted")
	}
	if _, err := Experiment("fig99", rc); err == nil {
		t.Error("bogus experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "Test 1",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	out := tbl.String()
	for _, want := range []string{"Test 1", "demo", "333", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFig1StageFootprints(t *testing.T) {
	rc := quick()
	rc.Workloads = nil // Figure 1 defaults to the TiDB pipeline
	rc.MeasureInstr = 2_500_000
	tbl, err := Fig1StageFootprints(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("tidb has 5 stages, table has %d rows", len(tbl.Rows))
	}
	// The Compile stage must carry the largest footprint (as in the
	// paper's Figure 1, where Compile is 280KB).
	if !strings.Contains(tbl.String(), "Compile") {
		t.Error("Compile stage missing")
	}
}

func TestFig9AndFig10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rc := quick()
	f9, err := Fig9Speedup(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Rows) != 2 { // 1 workload + MEAN
		t.Fatalf("fig9 rows = %d", len(f9.Rows))
	}
	f10, err := Fig10LatePrefetches(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Rows) != 2 {
		t.Fatalf("fig10 rows = %d", len(f10.Rows))
	}
}

func TestFig4TriggerSimilarityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rc := quick()
	rc.MeasureInstr = 2_000_000
	tbl, err := Fig4TriggerSimilarity(rc, []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("fig4 rows = %d", len(tbl.Rows))
	}
	t.Log("\n" + tbl.String())
}

func TestTable4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rc := quick()
	rc.Workloads = []string{"gin"}
	tbl, err := Table4BundleStats(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("table4 rows = %d", len(tbl.Rows))
	}
	t.Log("\n" + tbl.String())
}

func TestExperimentDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rc := quick()
	for _, id := range []string{"fig3", "table2"} {
		tbl, err := Experiment(id, rc)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
	if len(ExperimentIDs()) != 23 {
		t.Errorf("experiment list has %d entries", len(ExperimentIDs()))
	}
}

func TestMoreExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rc := quick()
	// Tiny sweeps keep this test fast while exercising every generator.
	if tbl, err := Fig2aManaLookahead(rc, []int{1, 3}); err != nil || len(tbl.Rows) != 2 {
		t.Fatalf("fig2a: %v", err)
	}
	if tbl, err := Fig2bEFetchLookahead(rc, []int{1, 3}); err != nil || len(tbl.Rows) != 2 {
		t.Fatalf("fig2b: %v", err)
	}
	if tbl, err := Fig2cEIPDistance(rc); err != nil || len(tbl.Rows) == 0 {
		t.Fatalf("fig2c: %v", err)
	}
	if tbl, err := Fig11MissLatency(rc); err != nil || len(tbl.Rows) != 2 {
		t.Fatalf("fig11: %v", err)
	}
	if tbl, err := Fig12LongRange(rc); err != nil || len(tbl.Rows) != 2 {
		t.Fatalf("fig12: %v", err)
	}
	if tbl, err := Fig13MetadataSensitivity(rc, []int{128, 512}, []int{128}); err != nil || len(tbl.Rows) != 3 {
		t.Fatalf("fig13: %v", err)
	}
	if tbl, err := Fig15aFTQ(rc, []int{16, 24}); err != nil || len(tbl.Rows) != 2 {
		t.Fatalf("fig15a: %v", err)
	}
	if tbl, err := Fig15bITLB(rc, []int{256}); err != nil || len(tbl.Rows) != 1 {
		t.Fatalf("fig15b: %v", err)
	}
	if tbl, err := Fig16Bandwidth(rc); err != nil || len(tbl.Rows) != 2 {
		t.Fatalf("fig16: %v", err)
	}
	if tbl, err := Fig17L2Prefetch(rc); err != nil || len(tbl.Rows) != 2 {
		t.Fatalf("fig17: %v", err)
	}
	if tbl, err := Fig14InfiniteBTB(rc); err != nil || len(tbl.Rows) != 2 {
		t.Fatalf("fig14: %v", err)
	}
	if tbl, err := Table3L1ISweep(rc, []int{32, 64}); err != nil || len(tbl.Rows) != 8 {
		t.Fatalf("table3: %v", err)
	}
	if tbl, err := Ablations(rc); err != nil || len(tbl.Rows) != 4 {
		t.Fatalf("ablation: %v", err)
	}
}

func TestCSVRendering(t *testing.T) {
	tbl := &Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1,2", `say "hi"`}},
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, `"1,2"`) || !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("CSV quoting broken:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header missing:\n%s", csv)
	}
}
