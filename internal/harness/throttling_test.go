package harness

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestGovernorDeterministicSchedule: two completely fresh governed runs
// of the same workload produce byte-identical state-transition schedules
// and identical full stats — the governor is part of the deterministic
// machine, not a heuristic beside it.
func TestGovernorDeterministicSchedule(t *testing.T) {
	rc := goldenRunConfig()
	rc.Governed = true
	for _, w := range []string{"gin", "chain-burst"} {
		for _, s := range []Scheme{SchemeGHB, SchemeHier} {
			a, err := runOne(context.Background(), w, s, rc)
			if err != nil {
				t.Fatalf("%s/%s: %v", w, s, err)
			}
			b, err := runOne(context.Background(), w, s, rc)
			if err != nil {
				t.Fatalf("%s/%s: %v", w, s, err)
			}
			if a.Governor == nil || b.Governor == nil {
				t.Fatalf("%s/%s: governed run carries no governor summary", w, s)
			}
			if as, bs := a.Governor.Schedule(), b.Governor.Schedule(); as != bs {
				t.Errorf("%s/%s: transition schedules diverged:\n--- run A\n%s\n--- run B\n%s", w, s, as, bs)
			}
			if !reflect.DeepEqual(a.Stats, b.Stats) {
				t.Errorf("%s/%s: governed stats diverged:\n--- run A\n%s--- run B\n%s",
					w, s, a.Stats.Canonical(), b.Stats.Canonical())
			}
			if a.Stats.Digest() != b.Stats.Digest() {
				t.Errorf("%s/%s: governed digests diverged", w, s)
			}
		}
	}
}

// TestGovernedChangesBehaviour: the governor actually moves the knobs —
// a governed GHB run differs from the static default and records
// transitions.
func TestGovernedChangesBehaviour(t *testing.T) {
	rc := goldenRunConfig()
	static, err := runOne(context.Background(), "gin", SchemeGHB, rc)
	if err != nil {
		t.Fatal(err)
	}
	g := rc
	g.Governed = true
	adaptive, err := runOne(context.Background(), "gin", SchemeGHB, g)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Governor == nil {
		t.Fatal("no governor summary on a governed run")
	}
	if adaptive.Governor.StepUps+adaptive.Governor.StepDowns == 0 {
		t.Error("governor never transitioned on gin")
	}
	if adaptive.Stats.Digest() == static.Stats.Digest() {
		t.Error("governed run is byte-identical to static: knobs never moved")
	}
	if static.Governor != nil {
		t.Error("ungoverned run carries a governor summary")
	}
}

// TestUngovernableSchemeErrors: schemes without a Tunable prefetcher
// (FDIP has no prefetcher at all) refuse Governed with a typed message
// instead of silently running static.
func TestUngovernableSchemeErrors(t *testing.T) {
	rc := QuickRunConfig()
	rc.Governed = true
	_, err := runOne(context.Background(), "gin", SchemeFDIP, rc)
	if err == nil {
		t.Fatal("governing FDIP succeeded")
	}
	if !strings.Contains(err.Error(), "adaptive throttling") {
		t.Fatalf("error does not explain the refusal: %v", err)
	}
}

// TestThrottlingAdaptiveWins is the acceptance gate: on at least one
// workload the adaptive governor beats the best static GHB degree —
// fewer useless prefetches at equal-or-better fetch-stall cycles. The
// tidb-tpcc stall knee sits between static degrees 4 and 8, so the
// governor's moderate↔aggressive dither lands where no static sweep
// point can.
func TestThrottlingAdaptiveWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full static sweep is expensive")
	}
	rc := QuickRunConfig()
	wins, err := ThrottlingWins(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !wins["tidb-tpcc"] {
		t.Errorf("adaptive does not beat the best static degree on tidb-tpcc: %v", wins)
	}
}

// TestThrottlingTableShape: the experiment renders every mode row per
// workload and a verdict note per workload.
func TestThrottlingTableShape(t *testing.T) {
	rc := QuickRunConfig()
	rc.Workloads = []string{"gin"}
	tbl, err := ThrottlingTable(rc)
	if err != nil {
		t.Fatal(err)
	}
	// 4 static GHB + adaptive GHB + GHB-TLB + Hier static + Hier adaptive.
	if len(tbl.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(tbl.Rows))
	}
	if len(tbl.Header) != len(tbl.Rows[0]) {
		t.Fatalf("header width %d, row width %d", len(tbl.Header), len(tbl.Rows[0]))
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.HasPrefix(n, "gin: GHB adaptive vs best static") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no per-workload verdict note: %v", tbl.Notes)
	}
}
