package harness

import (
	"fmt"

	"hprefetch/internal/fault"
)

// DegradationTable is the graceful-degradation experiment: it runs the
// Hierarchical Prefetcher under every fault class the injector knows —
// corrupted and stale Bundle tables, runtime tag flips, dropped and
// delayed prefetches, jittered memory latency, a starved MSHR file —
// and reports its speedup over an FDIP baseline running under the same
// faults. The contract the table demonstrates: under any fault in the
// software→hardware Bundle channel the prefetcher degrades toward
// FDIP, never materially below it, and never crashes; corrupted hints
// are rejected (TagDrops at the loader, BundleRejects in the core), not
// trusted. Runs that fail land in Notes instead of aborting the suite.
func DegradationTable(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:    "Degradation",
		Title: "Hierarchical under Bundle-channel faults (speedup vs same-fault FDIP)",
		Header: []string{
			"fault class", "rate", "speedup", "tag drops",
			"bundle rejects", "injected", "runs ok",
		},
	}
	classes := append([]fault.Class{fault.ClassNone}, fault.Classes()...)
	names := rc.workloadList()
	for _, c := range classes {
		sub := rc
		sub.Fault = fault.Config{Class: c, Rate: rc.Fault.Rate, Seed: rc.Fault.Seed}
		var spds []float64
		var tagDrops, rejects, injected uint64
		ok := 0
		for _, w := range names {
			base, err := Run(w, SchemeFDIP, sub)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s/%s/FDIP failed: %v", label(c), w, err))
				continue
			}
			hp, err := Run(w, SchemeHier, sub)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s/%s/Hier failed: %v", label(c), w, err))
				continue
			}
			spds = append(spds, hp.Stats.IPC()/base.Stats.IPC()-1)
			tagDrops += uint64(hp.TagDrops)
			rejects += hp.BundleRejects
			injected += hp.Stats.FaultPFDrops + hp.Stats.FaultPFDelays +
				hp.Stats.FaultJitteredFills + hp.Stats.FaultMSHRBlocks +
				hp.Stats.FaultTagFlips
			ok++
		}
		t.Rows = append(t.Rows, []string{
			label(c), rate(sub.Fault), spd(mean(spds)),
			fmt.Sprint(tagDrops), fmt.Sprint(rejects), fmt.Sprint(injected),
			fmt.Sprintf("%d/%d", ok, len(names)),
		})
	}
	t.Notes = append(t.Notes,
		"contract: every class degrades toward the same-fault FDIP baseline, never materially below it, with zero panics")
	return t, nil
}

// label renders a fault class for the table.
func label(c fault.Class) string {
	if c == fault.ClassNone {
		return "none (clean)"
	}
	return string(c)
}

// rate renders the effective injection rate for the table.
func rate(cfg fault.Config) string {
	if !cfg.Enabled() {
		return "-"
	}
	return fmt.Sprintf("%g", cfg.EffectiveRate())
}
