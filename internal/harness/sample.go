package harness

import (
	"fmt"
	"math"
	"math/rand"

	"hprefetch/internal/sim"
)

// SampleSpec configures interval (SMARTS-style) sampled simulation.
// Instead of timing every instruction of the measure window, the run
// tiles it with [skip, warm, measure] intervals: the skip advances the
// stream functionally (caches, BTB and predictors stay warm, no cycles
// accrue), the warm re-heats timed state the functional skip cannot
// (in-flight fills, prefetcher timing), and only the measure section
// contributes statistics. The zero value disables sampling.
type SampleSpec struct {
	// WarmInstr is the detailed (timed, unmeasured) warm-up before each
	// measured interval.
	WarmInstr uint64
	// MeasureInstr is the measured instructions per interval; zero
	// disables sampling.
	MeasureInstr uint64
	// SkipInstr is the mean functionally-skipped instructions before
	// each interval. Actual skips are jittered uniformly in
	// [SkipInstr/2, 3*SkipInstr/2] by a PRNG seeded with Seed, so the
	// sample points cannot phase-lock with program periodicity.
	SkipInstr uint64
	// Seed drives the skip-jitter schedule (deterministic per seed).
	Seed int64
}

// Enabled reports whether the spec requests sampling.
func (sp SampleSpec) Enabled() bool { return sp.MeasureInstr > 0 }

// String renders the spec in the "warm,measure,skip[,seed]" form
// ParseSampleSpec accepts.
func (sp SampleSpec) String() string {
	if sp.Seed != 0 {
		return fmt.Sprintf("%d,%d,%d,%d", sp.WarmInstr, sp.MeasureInstr, sp.SkipInstr, sp.Seed)
	}
	return fmt.Sprintf("%d,%d,%d", sp.WarmInstr, sp.MeasureInstr, sp.SkipInstr)
}

// ParseSampleSpec parses "warm,measure,skip[,seed]" (instruction
// counts) into a SampleSpec. An empty string disables sampling.
func ParseSampleSpec(s string) (SampleSpec, error) {
	var sp SampleSpec
	if s == "" {
		return sp, nil
	}
	n, err := fmt.Sscanf(s, "%d,%d,%d,%d", &sp.WarmInstr, &sp.MeasureInstr, &sp.SkipInstr, &sp.Seed)
	if err != nil && n < 3 {
		return SampleSpec{}, fmt.Errorf("harness: sample spec %q: want warm,measure,skip[,seed]", s)
	}
	if sp.MeasureInstr == 0 {
		return SampleSpec{}, fmt.Errorf("harness: sample spec %q: measure interval must be positive", s)
	}
	return sp, nil
}

// SampleReport describes how a sampled run covered the stream and the
// spread of its per-interval IPC — the error bars around the aggregate.
type SampleReport struct {
	// Intervals is how many measured intervals ran.
	Intervals int
	// IPCMean and IPCStdErr are the mean and standard error of the
	// per-interval IPC values (the aggregate Stats weight intervals by
	// cycles; these treat them equally, which is what the error bar on
	// a sampled estimate means).
	IPCMean, IPCStdErr float64
	// DetailedFrac is the fraction of covered stream instructions that
	// were simulated in detail (warm + measure over total) — the
	// inverse of the sampling speedup ceiling.
	DetailedFrac float64
}

// sampleSkips returns the deterministic jittered skip schedule for a
// spec over a measure window: one skip length per interval that fits.
// Exposed to tests as the fixture for schedule determinism.
func sampleSkips(sp SampleSpec, measure uint64) []uint64 {
	prng := rand.New(rand.NewSource(sp.Seed))
	var skips []uint64
	var covered uint64
	for {
		var k uint64
		if sp.SkipInstr > 0 {
			k = sp.SkipInstr/2 + uint64(prng.Int63n(int64(sp.SkipInstr)+1))
		}
		need := k + sp.WarmInstr + sp.MeasureInstr
		if covered+need > measure {
			return skips
		}
		skips = append(skips, k)
		covered += need
	}
}

// runSampled drives the interval-sampling protocol on a prepared
// machine: the run-level warm-up is skipped functionally, then
// [skip, warm, measure] intervals tile the measure window (never
// consuming more stream than the exact protocol would, so any trace
// long enough for an exact run replays sampled too). It returns the
// aggregate of the measured intervals' statistics and the report.
func runSampled(m *sim.Machine, rc RunConfig) (*sim.Stats, *SampleReport, error) {
	sp := rc.Sample
	skips := sampleSkips(sp, rc.MeasureInstr)
	if len(skips) == 0 {
		return nil, nil, fmt.Errorf("harness: sample interval (%d skip + %d warm + %d measure) does not fit in the %d-instruction measure window",
			sp.SkipInstr, sp.WarmInstr, sp.MeasureInstr, rc.MeasureInstr)
	}
	if err := m.SkipFunctional(rc.WarmInstr); err != nil {
		return nil, nil, fmt.Errorf("functional warmup: %w", err)
	}
	agg := sim.NewStats()
	ipcs := make([]float64, 0, len(skips))
	for _, k := range skips {
		if k > 0 {
			if err := m.SkipFunctional(k); err != nil {
				return nil, nil, fmt.Errorf("interval %d skip: %w", len(ipcs), err)
			}
		}
		if sp.WarmInstr > 0 {
			if err := m.Run(sp.WarmInstr); err != nil {
				return nil, nil, fmt.Errorf("interval %d warmup: %w", len(ipcs), err)
			}
		}
		m.ResetStats()
		if err := m.Run(sp.MeasureInstr); err != nil {
			return nil, nil, fmt.Errorf("interval %d measure: %w", len(ipcs), err)
		}
		agg.AddFrom(m.Stats())
		ipcs = append(ipcs, m.Stats().IPC())
	}
	rep := &SampleReport{Intervals: len(ipcs)}
	var sum float64
	for _, v := range ipcs {
		sum += v
	}
	rep.IPCMean = sum / float64(len(ipcs))
	if len(ipcs) > 1 {
		var ss float64
		for _, v := range ipcs {
			d := v - rep.IPCMean
			ss += d * d
		}
		rep.IPCStdErr = math.Sqrt(ss/float64(len(ipcs)-1)) / math.Sqrt(float64(len(ipcs)))
	}
	detailed := uint64(len(ipcs)) * (sp.WarmInstr + sp.MeasureInstr)
	var skipped uint64
	for _, k := range skips {
		skipped += k
	}
	total := rc.WarmInstr + detailed + skipped
	if total > 0 {
		rep.DetailedFrac = float64(detailed) / float64(total)
	}
	return agg, rep, nil
}
