package harness

import (
	"container/list"
	"context"
	"sync"
)

// DefaultCacheEntries bounds the default Runner's result cache. A Result
// is a few kilobytes of counters, so the default is generous: enough for
// every run the full evaluation performs several times over, while still
// guaranteeing a long-lived server cannot grow without limit.
const DefaultCacheEntries = 4096

// RunnerStats is a snapshot of a Runner's caching behaviour.
type RunnerStats struct {
	// Hits counts calls served straight from the result cache.
	Hits uint64
	// SharedWaits counts callers that found an identical run already in
	// flight and waited for its result instead of simulating again.
	SharedWaits uint64
	// Misses counts calls that actually performed a simulation.
	Misses uint64
	// Evictions counts results displaced by the LRU bound.
	Evictions uint64
	// Entries and InFlight are current occupancy gauges.
	Entries  int
	InFlight int
}

// flight is one in-progress simulation that late-arriving identical
// callers wait on. res/err are written exactly once, before done closes.
type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// cacheEntry is one LRU cache slot (the element value of Runner.order).
type cacheEntry struct {
	key string
	res *Result
}

// Runner runs (workload, scheme, config) simulations with single-flight
// deduplication and a size-bounded LRU result cache. It is safe for
// concurrent use; the zero value is not valid — use NewRunner. The
// package-level Run uses a shared default Runner, so every consumer
// (experiment tables, the hpsim CLI, the hpserved service) sees one
// coherent cache.
type Runner struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*flight
	stats    RunnerStats

	// runFn performs the actual simulation; tests substitute a stub to
	// observe scheduling without paying for real runs.
	runFn func(ctx context.Context, workload string, scheme Scheme, rc RunConfig) (*Result, error)
}

// NewRunner builds a Runner whose cache holds at most maxEntries results
// (values < 1 fall back to DefaultCacheEntries).
func NewRunner(maxEntries int) *Runner {
	if maxEntries < 1 {
		maxEntries = DefaultCacheEntries
	}
	return &Runner{
		max:      maxEntries,
		entries:  map[string]*list.Element{},
		order:    list.New(),
		inflight: map[string]*flight{},
		runFn:    runOne,
	}
}

// Run simulates one (workload, scheme) pair under rc. Identical calls
// are deduplicated two ways: completed runs come from the LRU cache, and
// a call arriving while the same run is in flight waits for that run's
// result instead of starting a second simulation. Cancellation comes
// from rc.Ctx — the leader's context is threaded into the simulator's
// cycle loop, and a waiter whose own context expires stops waiting (the
// leader keeps running for everyone else). Only successful runs are
// cached; errors are returned to every caller that shared the flight.
func (r *Runner) Run(workload string, scheme Scheme, rc RunConfig) (*Result, error) {
	ctx := rc.context()
	k := rc.key(workload, scheme)

	r.mu.Lock()
	if el, ok := r.entries[k]; ok {
		r.order.MoveToFront(el)
		r.stats.Hits++
		res := el.Value.(*cacheEntry).res
		r.mu.Unlock()
		return res, nil
	}
	if f, ok := r.inflight[k]; ok {
		r.stats.SharedWaits++
		r.mu.Unlock()
		select {
		case <-f.done:
			return f.res, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	r.inflight[k] = f
	r.stats.Misses++
	r.mu.Unlock()

	f.res, f.err = r.runFn(ctx, workload, scheme, rc)

	r.mu.Lock()
	delete(r.inflight, k)
	if f.err == nil {
		r.insert(k, f.res)
	}
	r.mu.Unlock()
	close(f.done)
	return f.res, f.err
}

// insert adds a result under r.mu, evicting from the LRU tail past the
// size bound.
func (r *Runner) insert(key string, res *Result) {
	if el, ok := r.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		r.order.MoveToFront(el)
		return
	}
	r.entries[key] = r.order.PushFront(&cacheEntry{key: key, res: res})
	for r.order.Len() > r.max {
		tail := r.order.Back()
		r.order.Remove(tail)
		delete(r.entries, tail.Value.(*cacheEntry).key)
		r.stats.Evictions++
	}
}

// SetLimit changes the cache bound, evicting immediately if the cache is
// already over the new bound. Values < 1 fall back to
// DefaultCacheEntries.
func (r *Runner) SetLimit(maxEntries int) {
	if maxEntries < 1 {
		maxEntries = DefaultCacheEntries
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.max = maxEntries
	for r.order.Len() > r.max {
		tail := r.order.Back()
		r.order.Remove(tail)
		delete(r.entries, tail.Value.(*cacheEntry).key)
		r.stats.Evictions++
	}
}

// Stats returns a snapshot of the Runner's counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Entries = r.order.Len()
	s.InFlight = len(r.inflight)
	return s
}

// Reset drops every cached result and zeroes the counters. In-flight
// runs finish normally but their results land in the fresh cache.
func (r *Runner) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = map[string]*list.Element{}
	r.order = list.New()
	r.stats = RunnerStats{}
}

// Warm concurrently simulates the base (workload × scheme) cross product
// of rc — the runs every experiment shares — with up to parallel workers,
// so a following serial experiment pass finds them cached. Individual
// run errors are deliberately dropped here: the serial pass repeats the
// failing pair (errors are never cached) and reports the error with its
// experiment context attached.
func (r *Runner) Warm(rc RunConfig, parallel int) {
	if parallel < 1 {
		parallel = 1
	}
	type pair struct {
		w string
		s Scheme
	}
	var pairs []pair
	for _, w := range rc.workloadList() {
		for _, s := range append(Schemes(), SchemePerfect) {
			pairs = append(pairs, pair{w, s})
		}
	}
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for _, p := range pairs {
		if rc.context().Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(p pair) {
			defer wg.Done()
			defer func() { <-sem }()
			r.Run(p.w, p.s, rc) //nolint:errcheck // resurfaces in the serial pass
		}(p)
	}
	wg.Wait()
}
