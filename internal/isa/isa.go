// Package isa defines the primitive machine-level vocabulary shared by the
// whole simulator: addresses, cache-block and page geometry, branch kinds,
// and the per-cache-block fetch event that the execution engine emits and
// the front-end consumes.
//
// The simulated machine follows the paper's setup (Table 1): a 64-bit
// address space, 64-byte cache blocks and 4KB pages, with fixed-size 4-byte
// instructions (the paper simulates x86-64; a fixed instruction size only
// rescales instruction counts, not block-level behaviour).
package isa

import "fmt"

const (
	// BlockBits is log2 of the cache block size.
	BlockBits = 6
	// BlockSize is the cache block (line) size in bytes.
	BlockSize = 1 << BlockBits
	// PageBits is log2 of the page size.
	PageBits = 12
	// PageSize is the virtual memory page size in bytes.
	PageSize = 1 << PageBits
	// InstrSize is the fixed encoded instruction size in bytes.
	InstrSize = 4
	// InstrPerBlock is how many instructions fit in one cache block.
	InstrPerBlock = BlockSize / InstrSize
)

// Addr is a byte address in the simulated 64-bit address space.
type Addr uint64

// Block returns the cache-block index containing a.
func (a Addr) Block() Block { return Block(a >> BlockBits) }

// Page returns the page number containing a.
func (a Addr) Page() Page { return Page(a >> PageBits) }

// BlockOffset returns the byte offset of a within its cache block.
func (a Addr) BlockOffset() uint64 { return uint64(a) & (BlockSize - 1) }

// AlignBlock returns a rounded down to its cache-block base.
func (a Addr) AlignBlock() Addr { return a &^ (BlockSize - 1) }

func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// Block is a cache-block index (address >> BlockBits).
type Block uint64

// Addr returns the base byte address of the block.
func (b Block) Addr() Addr { return Addr(b) << BlockBits }

// Page returns the page the block belongs to.
func (b Block) Page() Page { return Page(b >> (PageBits - BlockBits)) }

func (b Block) String() string { return fmt.Sprintf("blk:%#x", uint64(b)) }

// Page is a virtual page number (address >> PageBits).
type Page uint64

// BranchKind classifies the control-flow instruction that terminates a
// fetch region, if any.
type BranchKind uint8

const (
	// BrNone means the fetch region ends at a block boundary with
	// sequential fall-through into the next block.
	BrNone BranchKind = iota
	// BrCond is a conditional direct branch.
	BrCond
	// BrJump is an unconditional direct jump.
	BrJump
	// BrCall is a direct call.
	BrCall
	// BrIndCall is an indirect call (e.g. through a dispatch table or
	// interface method — the common coarse divergence mechanism in the
	// synthetic server programs).
	BrIndCall
	// BrRet is a function return.
	BrRet
)

func (k BranchKind) String() string {
	switch k {
	case BrNone:
		return "none"
	case BrCond:
		return "cond"
	case BrJump:
		return "jump"
	case BrCall:
		return "call"
	case BrIndCall:
		return "indcall"
	case BrRet:
		return "ret"
	default:
		return fmt.Sprintf("BranchKind(%d)", uint8(k))
	}
}

// IsCall reports whether the kind transfers control to a callee.
func (k BranchKind) IsCall() bool { return k == BrCall || k == BrIndCall }

// FuncID identifies a function in the synthetic program.
type FuncID uint32

// NoFunc is the invalid function ID.
const NoFunc = FuncID(0xFFFFFFFF)

// BlockEvent is one fetch region retired by the core: a run of
// instructions within a single cache block, optionally terminated by a
// control-flow instruction. The execution engine emits these in program
// order; Target always holds the address of the next event's first
// instruction (branch target, or sequential fall-through address).
type BlockEvent struct {
	// Addr is the address of the first instruction of the region.
	Addr Addr
	// NumInstr is the number of instructions retired in this region
	// (at least 1; the region never spans a block boundary).
	NumInstr uint16
	// Branch is the kind of control-flow instruction ending the region.
	Branch BranchKind
	// Taken reports, for BrCond, whether the branch was taken.
	Taken bool
	// BrPC is the address of the terminating branch instruction
	// (meaningful when Branch != BrNone).
	BrPC Addr
	// Target is the address of the next instruction to execute.
	Target Addr
	// Func is the function the region belongs to.
	Func FuncID
	// Tagged marks a call/return flagged by the loader as a Bundle
	// entry point (the reserved-bit tag from the paper's §5.2).
	Tagged bool
}

// Block returns the cache block the region's first instruction lies in.
func (e *BlockEvent) Block() Block { return e.Addr.Block() }

// EndAddr returns the address one past the last instruction of the region.
func (e *BlockEvent) EndAddr() Addr {
	return e.Addr + Addr(e.NumInstr)*InstrSize
}
