package isa

import (
	"testing"
	"testing/quick"
)

func TestAddrGeometry(t *testing.T) {
	cases := []struct {
		addr   Addr
		block  Block
		page   Page
		offset uint64
	}{
		{0, 0, 0, 0},
		{63, 0, 0, 63},
		{64, 1, 0, 0},
		{4095, 63, 0, 63},
		{4096, 64, 1, 0},
		{0x40001234, 0x1000048, 0x40001, 0x34},
	}
	for _, c := range cases {
		if got := c.addr.Block(); got != c.block {
			t.Errorf("%v.Block() = %v, want %v", c.addr, got, c.block)
		}
		if got := c.addr.Page(); got != c.page {
			t.Errorf("%v.Page() = %v, want %v", c.addr, got, c.page)
		}
		if got := c.addr.BlockOffset(); got != c.offset {
			t.Errorf("%v.BlockOffset() = %d, want %d", c.addr, got, c.offset)
		}
	}
}

func TestBlockAddrRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		b := a.Block()
		// The block base must contain the address and be block aligned.
		base := b.Addr()
		return base <= a && a < base+BlockSize && base.BlockOffset() == 0 &&
			a.AlignBlock() == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockPageConsistency(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		return a.Block().Page() == a.Page()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBranchKindStrings(t *testing.T) {
	kinds := []BranchKind{BrNone, BrCond, BrJump, BrCall, BrIndCall, BrRet}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("BranchKind %d has empty or duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if !BrCall.IsCall() || !BrIndCall.IsCall() || BrRet.IsCall() || BrCond.IsCall() {
		t.Error("IsCall misclassifies kinds")
	}
}

func TestBlockEventEndAddr(t *testing.T) {
	e := BlockEvent{Addr: 0x1000, NumInstr: 5}
	if got := e.EndAddr(); got != 0x1000+5*InstrSize {
		t.Errorf("EndAddr = %v", got)
	}
	if e.Block() != Addr(0x1000).Block() {
		t.Error("Block mismatch")
	}
}
