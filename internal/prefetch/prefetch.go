// Package prefetch defines the contract between the simulated core and
// the instruction prefetchers under study, plus the spatial-region
// compression machinery shared by the temporal schemes (MANA's regions,
// the Hierarchical Prefetcher's Compression Buffer — §5.3.1).
//
// All evaluated prefetchers run on top of the FDIP front-end, observing
// the retired instruction stream and issuing block prefetches through the
// Machine interface; the simulator charges real latency, MSHR occupancy
// and bandwidth for everything they do.
package prefetch

import "hprefetch/internal/isa"

// Machine is the hardware surface a prefetcher can touch. It is
// implemented by the simulator core.
type Machine interface {
	// Now returns the current cycle (in the simulator's scaled units;
	// use only for relative comparisons and pacing).
	Now() uint64
	// CycleScale returns the number of scaled units per CPU cycle.
	CycleScale() uint64
	// BlockSeq returns the count of retired fetch blocks so far — the
	// clock used for prefetch-distance measurements.
	BlockSeq() uint64
	// InstrSeq returns retired instructions so far (Bundle pacing).
	InstrSeq() uint64
	// Resident reports whether a block is in the L1-I or in flight.
	Resident(b isa.Block) bool
	// Prefetch requests a block fill into the L1-I (or the L2 when the
	// simulator runs in prefetch-to-L2 mode). It returns false if the
	// request was dropped (queue pressure) or redundant.
	Prefetch(b isa.Block) bool
	// PrefetchSpace returns how many further Prefetch calls can be
	// accepted right now; streaming prefetchers use it as back-pressure.
	PrefetchSpace() int
	// AvgMissLatency returns a running estimate of the demand miss
	// latency in scaled units (EIP's timeliness target).
	AvgMissLatency() uint64
	// BlockAgo returns the block that retired closest to `cycles` scaled
	// units ago, for latency-aware trigger selection (EIP).
	BlockAgo(cycles uint64) (isa.Block, bool)
	// MetadataRead models a prefetcher metadata fetch of n bytes at
	// addr, charged through the LLC/memory path; it returns the cycle
	// (scaled) at which the data is available.
	MetadataRead(addr isa.Addr, n int) uint64
	// MetadataWrite models a metadata writeback of n bytes at addr.
	MetadataWrite(addr isa.Addr, n int)
	// PrefetchMapped is Prefetch gated on the ITLB: the request is issued
	// only if the target block's page translation is already present, and
	// withheld (counted as PFTLBDropped) otherwise. TLB-aware schemes use
	// this instead of Prefetch so translation-blocked prefetches never
	// reach the fill path.
	PrefetchMapped(b isa.Block) bool
}

// Prefetcher is an instruction prefetcher under evaluation.
type Prefetcher interface {
	// Name identifies the scheme in reports.
	Name() string
	// OnRetire observes every retired fetch region in program order;
	// this is where training and trigger matching happen. Tagged
	// call/return events carry the Bundle entry bit (§5.2).
	OnRetire(ev *isa.BlockEvent)
	// OnResteer signals a pipeline flush (branch mispredict); schemes
	// that follow the fetch stream (e.g. MANA) must re-synchronise.
	OnResteer()
	// OnDemandMiss observes an L1-I demand miss and the latency (scaled
	// units) it paid; correlating schemes train on this.
	OnDemandMiss(b isa.Block, latency uint64)
	// StorageBits returns the on-chip metadata budget in bits, for the
	// storage-cost comparisons in the paper.
	StorageBits() int
}

// Tunable is a Prefetcher whose aggressiveness can be retargeted at run
// time. Degree is the scheme's fan-out per trigger (blocks per miss for
// GHB, bundle burst budget for Hierarchical); lookahead is how far ahead
// of the trigger it starts (history skip for GHB, unpaced replay
// segments for Hierarchical). Each scheme maps the pair onto its own
// knobs; values are clamped scheme-side, so controllers need not know
// per-scheme bounds.
type Tunable interface {
	Prefetcher
	SetAggressiveness(degree, lookahead int)
}

// Controller decides prefetch aggressiveness from observed behaviour.
// Observe is called once per retired fetch block; when it returns
// changed=true the new (degree, lookahead) pair is applied to the
// governed prefetcher. Knobs returns the controller's current operating
// point, applied once at attach time.
type Controller interface {
	Observe(ev *isa.BlockEvent) (degree, lookahead int, changed bool)
	Knobs() (degree, lookahead int)
	// StorageBits is the controller's own on-chip cost (interval
	// counters, state register), added to the governed scheme's budget.
	StorageBits() int
}

// Governed wraps a Tunable prefetcher with a Controller: the controller
// observes the retired stream alongside the scheme and retunes its
// degree/lookahead whenever the feedback calls for it. Schemes opt into
// adaptive throttling by being wrapped — no per-scheme surgery.
type Governed struct {
	inner Tunable
	ctrl  Controller
}

// NewGoverned attaches ctrl to inner and applies the controller's
// initial operating point immediately.
func NewGoverned(inner Tunable, ctrl Controller) *Governed {
	g := &Governed{inner: inner, ctrl: ctrl}
	d, l := ctrl.Knobs()
	inner.SetAggressiveness(d, l)
	return g
}

// Name reports the governed scheme's own name; rows in tables stay
// recognisable whether or not a governor is attached.
func (g *Governed) Name() string { return g.inner.Name() }

// OnRetire feeds the controller first — so a knob change decided on this
// block applies before the scheme reacts to it — then the scheme.
func (g *Governed) OnRetire(ev *isa.BlockEvent) {
	if d, l, changed := g.ctrl.Observe(ev); changed {
		g.inner.SetAggressiveness(d, l)
	}
	g.inner.OnRetire(ev)
}

// OnResteer forwards pipeline flushes to the scheme.
func (g *Governed) OnResteer() { g.inner.OnResteer() }

// OnDemandMiss forwards demand misses to the scheme.
func (g *Governed) OnDemandMiss(b isa.Block, latency uint64) {
	g.inner.OnDemandMiss(b, latency)
}

// StorageBits is the scheme's budget plus the controller's counters.
func (g *Governed) StorageBits() int {
	return g.inner.StorageBits() + g.ctrl.StorageBits()
}

// Inner returns the wrapped prefetcher (for tests and diagnostics).
func (g *Governed) Inner() Tunable { return g.inner }

var _ Prefetcher = (*Governed)(nil)

// RegionBlocks is the spatial-region span used throughout the paper: 32
// contiguous cache blocks per region.
const RegionBlocks = 32

// Region is a compressed spatial region: a base block plus a bit vector
// over the following RegionBlocks blocks (bit 0 = the base itself).
type Region struct {
	Base isa.Block
	Vec  uint32
}

// Contains reports whether the region can represent block b.
func (r *Region) Contains(b isa.Block) bool {
	return b >= r.Base && b < r.Base+RegionBlocks
}

// Set marks block b (which must be within range).
func (r *Region) Set(b isa.Block) {
	r.Vec |= 1 << uint(b-r.Base)
}

// Has reports whether block b is marked.
func (r *Region) Has(b isa.Block) bool {
	return r.Contains(b) && r.Vec&(1<<uint(b-r.Base)) != 0
}

// Count returns the number of marked blocks.
func (r *Region) Count() int {
	v := r.Vec
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// Blocks appends the marked blocks in ascending order to dst.
func (r *Region) Blocks(dst []isa.Block) []isa.Block {
	for i := 0; i < RegionBlocks; i++ {
		if r.Vec&(1<<uint(i)) != 0 {
			dst = append(dst, r.Base+isa.Block(i))
		}
	}
	return dst
}

// RegionBuffer is the fully-associative FIFO compression buffer of §5.3.1:
// retiring blocks coalesce into the matching region; when a new region is
// needed the oldest one is evicted and handed to the caller.
type RegionBuffer struct {
	regions []Region
	valid   []bool
	head    int // next FIFO eviction slot
	size    int
}

// NewRegionBuffer builds a buffer with the given entry count (the paper
// uses 16 entries per core).
func NewRegionBuffer(entries int) *RegionBuffer {
	return &RegionBuffer{
		regions: make([]Region, entries),
		valid:   make([]bool, entries),
	}
}

// Insert records a retired block. When the block opens a new region and
// the buffer is full, the oldest region is evicted and returned.
func (rb *RegionBuffer) Insert(b isa.Block) (evicted Region, ok bool) {
	for i := range rb.regions {
		if rb.valid[i] && rb.regions[i].Contains(b) {
			rb.regions[i].Set(b)
			return Region{}, false
		}
	}
	slot := rb.head
	if rb.valid[slot] {
		evicted, ok = rb.regions[slot], true
	} else {
		rb.size++
	}
	rb.regions[slot] = Region{Base: b, Vec: 1}
	rb.valid[slot] = true
	rb.head = (rb.head + 1) % len(rb.regions)
	return evicted, ok
}

// Flush evicts every valid region in FIFO order, oldest first.
func (rb *RegionBuffer) Flush() []Region {
	out := make([]Region, 0, rb.size)
	n := len(rb.regions)
	for i := 0; i < n; i++ {
		slot := (rb.head + i) % n
		if rb.valid[slot] {
			out = append(out, rb.regions[slot])
			rb.valid[slot] = false
		}
	}
	rb.size = 0
	rb.head = 0
	return out
}

// Len returns the number of valid regions buffered.
func (rb *RegionBuffer) Len() int { return rb.size }

// StorageBits returns the on-chip cost of the buffer: each entry holds a
// block-granular base address (58 bits at 64-bit addresses with 6 block
// bits) plus the 32-bit vector and a valid bit.
func (rb *RegionBuffer) StorageBits() int {
	return len(rb.regions) * (58 + 32 + 1)
}
