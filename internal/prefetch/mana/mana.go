// Package mana implements MANA (Ansari et al., IEEE TC 2022), the
// state-of-the-art temporal instruction prefetcher the paper compares
// against (§2.2, §6.3): the retired block stream is compressed into
// spatial regions, recorded as a temporal history, and indexed by region
// base. When execution re-enters a recorded region, the prefetcher
// replays the next look-ahead regions of the recorded stream. Like the
// original, it re-synchronises (and thus loses lookahead) whenever the
// front-end is resteered by a misprediction — the timeliness limitation
// §7.2 highlights.
package mana

import (
	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch"
)

// Config sizes the prefetcher (defaults follow the paper's §6.3 setup).
type Config struct {
	// IndexEntries and IndexWays size the trigger index table
	// (paper: 4K entries, 4-way).
	IndexEntries, IndexWays int
	// HistoryRegions is the recorded temporal stream length, in spatial
	// regions.
	HistoryRegions int
	// RegionBlocks is the spatial-region span (MANA uses small regions).
	RegionBlocks int
	// Lookahead is the replay depth in spatial regions (paper: 3).
	Lookahead int
}

// DefaultConfig mirrors the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		IndexEntries:   4096,
		IndexWays:      4,
		HistoryRegions: 8192,
		RegionBlocks:   8,
		Lookahead:      3,
	}
}

// region is one history element.
type region struct {
	base isa.Block
	vec  uint8 // RegionBlocks <= 8 in the default configuration
}

// Mana is the prefetcher state.
type Mana struct {
	cfg Config
	m   prefetch.Machine

	// Temporal history ring of spatial regions.
	hist []region
	pos  int

	// Index: region base -> history position, set-associative.
	idxKeys  []uint64
	idxVals  []int32
	idxValid []bool
	idxAge   []uint8
	sets     int

	// Recording state: the region being accumulated.
	cur      region
	curValid bool

	// Replay state: position of the active stream in the history.
	streamPos   int
	streamValid bool
	streamSent  int // regions already replayed on this stream

	curBlockValid bool
	curBlock      isa.Block
}

// New builds a MANA prefetcher attached to machine m.
func New(cfg Config, m prefetch.Machine) *Mana {
	if cfg.RegionBlocks <= 0 || cfg.RegionBlocks > 8 {
		cfg.RegionBlocks = 8
	}
	n := cfg.IndexEntries
	return &Mana{
		cfg:      cfg,
		m:        m,
		hist:     make([]region, cfg.HistoryRegions),
		idxKeys:  make([]uint64, n),
		idxVals:  make([]int32, n),
		idxValid: make([]bool, n),
		idxAge:   make([]uint8, n),
		sets:     n / cfg.IndexWays,
	}
}

// Name identifies the scheme.
func (p *Mana) Name() string { return "MANA" }

// StorageBits reports the on-chip budget: the index table (tag+pointer
// per entry) plus the compressed history storage, matching the ~15KB the
// paper quotes.
func (p *Mana) StorageBits() int {
	idx := p.cfg.IndexEntries * (16 + 14 + 1) // tag, pointer, valid
	hist := p.cfg.HistoryRegions * 10         // compressed region record
	return idx + hist
}

// regionBase returns the aligned region base of a block.
func (p *Mana) regionBase(b isa.Block) isa.Block {
	return b - b%isa.Block(p.cfg.RegionBlocks)
}

// OnRetire observes the retired stream: it compresses blocks into
// regions, records completed regions into the temporal history, and
// drives the active replay stream.
func (p *Mana) OnRetire(ev *isa.BlockEvent) {
	b := ev.Block()
	if p.curBlockValid && b == p.curBlock {
		return
	}
	p.curBlock = b
	p.curBlockValid = true

	base := p.regionBase(b)
	if p.curValid && p.cur.base == base {
		p.cur.vec |= 1 << uint(b-base)
		return
	}
	// Entering a new region: commit the previous one to history and
	// advance (or restart) the replay stream.
	if p.curValid {
		p.commit(p.cur)
	}
	p.cur = region{base: base, vec: 1 << uint(b-base)}
	p.curValid = true
	p.advanceStream(base)
}

// commit appends a finished region to the history and indexes it.
func (p *Mana) commit(r region) {
	p.hist[p.pos] = r
	p.indexInsert(uint64(r.base), int32(p.pos))
	p.pos = (p.pos + 1) % len(p.hist)
}

// advanceStream keeps the replay stream aligned with execution: if the
// new region matches the next recorded region the stream continues;
// otherwise the stream re-indexes from the trigger table.
func (p *Mana) advanceStream(base isa.Block) {
	if p.streamValid {
		next := (p.streamPos + 1) % len(p.hist)
		if p.hist[next].base == base {
			p.streamPos = next
			if p.streamSent > 0 {
				p.streamSent--
			}
			p.replay()
			return
		}
		p.streamValid = false
	}
	if pos, ok := p.indexLookup(uint64(base)); ok {
		p.streamPos = int(pos)
		p.streamValid = true
		p.streamSent = 0
		p.replay()
	}
}

// replay issues prefetches for the recorded regions up to the look-ahead
// depth beyond what was already sent on this stream.
func (p *Mana) replay() {
	for p.streamSent < p.cfg.Lookahead {
		idx := (p.streamPos + 1 + p.streamSent) % len(p.hist)
		r := p.hist[idx]
		if r.vec == 0 {
			return
		}
		for i := 0; i < p.cfg.RegionBlocks; i++ {
			if r.vec&(1<<uint(i)) != 0 {
				p.m.Prefetch(r.base + isa.Block(i))
			}
		}
		p.streamSent++
	}
}

// OnResteer models MANA's front-end reset behaviour: the stream must be
// re-indexed, losing its lookahead.
func (p *Mana) OnResteer() {
	p.streamValid = false
	p.curBlockValid = false
}

// OnDemandMiss is unused: MANA trains on the access stream.
func (p *Mana) OnDemandMiss(isa.Block, uint64) {}

// --- index table (set-associative, LRU) ---

func (p *Mana) idxSet(key uint64) int {
	h := key * 0x9E3779B97F4A7C15
	return int(h % uint64(p.sets))
}

func (p *Mana) indexLookup(key uint64) (int32, bool) {
	base := p.idxSet(key) * p.cfg.IndexWays
	for w := 0; w < p.cfg.IndexWays; w++ {
		i := base + w
		if p.idxValid[i] && p.idxKeys[i] == key {
			p.touch(base, w)
			return p.idxVals[i], true
		}
	}
	return 0, false
}

func (p *Mana) indexInsert(key uint64, val int32) {
	base := p.idxSet(key) * p.cfg.IndexWays
	victim := 0
	for w := 0; w < p.cfg.IndexWays; w++ {
		i := base + w
		if p.idxValid[i] && p.idxKeys[i] == key {
			p.idxVals[i] = val
			p.touch(base, w)
			return
		}
		if !p.idxValid[i] {
			victim = w
			break
		}
		if p.idxAge[i] > p.idxAge[base+victim] {
			victim = w
		}
	}
	i := base + victim
	if !p.idxValid[i] {
		p.idxAge[i] = 255
	}
	p.idxKeys[i] = key
	p.idxVals[i] = val
	p.idxValid[i] = true
	p.touch(base, victim)
}

func (p *Mana) touch(base, way int) {
	old := p.idxAge[base+way]
	for w := 0; w < p.cfg.IndexWays; w++ {
		if p.idxAge[base+w] < old {
			p.idxAge[base+w]++
		}
	}
	p.idxAge[base+way] = 0
}

var _ prefetch.Prefetcher = (*Mana)(nil)
