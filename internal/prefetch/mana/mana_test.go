package mana

import (
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch/prefetchtest"
)

// ev builds a minimal retire event for a block.
func ev(b isa.Block) *isa.BlockEvent {
	return &isa.BlockEvent{Addr: b.Addr(), NumInstr: 4}
}

func TestRecordAndReplay(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)

	// Walk a long region-aligned stream twice; the second pass must
	// replay the upcoming regions.
	stream := make([]isa.Block, 0, 256)
	for r := 0; r < 32; r++ {
		base := isa.Block(r * 8 * 10) // distinct regions (8-block span)
		for i := 0; i < 3; i++ {
			stream = append(stream, base+isa.Block(i))
		}
	}
	for _, b := range stream {
		p.OnRetire(ev(b))
	}
	m.Issued = nil
	for _, b := range stream[:len(stream)/2] {
		p.OnRetire(ev(b))
	}
	if len(m.Issued) == 0 {
		t.Fatal("no replay prefetches on a recorded stream")
	}
	issued := m.IssuedSet()
	// Replay must be drawn from the recorded stream (future regions).
	future := map[isa.Block]bool{}
	for _, b := range stream {
		future[b] = true
	}
	for b := range issued {
		if !future[b] {
			t.Fatalf("replayed block %v never recorded", b)
		}
	}
}

func TestLookaheadBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lookahead = 2
	m := prefetchtest.NewMockMachine()
	p := New(cfg, m)
	// Record a 20-region stream, one block per region.
	var stream []isa.Block
	for r := 0; r < 20; r++ {
		stream = append(stream, isa.Block(r*80))
	}
	for _, b := range stream {
		p.OnRetire(ev(b))
	}
	m.Issued = nil
	// Re-enter at the start: exactly Lookahead regions ahead allowed.
	p.OnRetire(ev(stream[0]))
	if len(m.Issued) > cfg.Lookahead {
		t.Fatalf("issued %d regions, lookahead %d", len(m.Issued), cfg.Lookahead)
	}
}

func TestResteerResync(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	var stream []isa.Block
	for r := 0; r < 30; r++ {
		stream = append(stream, isa.Block(r*80))
	}
	for _, b := range stream {
		p.OnRetire(ev(b))
	}
	m.Issued = nil
	p.OnRetire(ev(stream[0]))
	inStream := len(m.Issued)
	p.OnResteer()
	// After a resteer the stream is lost; the very next retire must
	// re-index before replaying, so at most lookahead issues again.
	m.Issued = nil
	p.OnRetire(ev(stream[5]))
	if len(m.Issued) == 0 && inStream > 0 {
		t.Error("no re-index after resteer despite recorded history")
	}
}

func TestStorageBudget(t *testing.T) {
	p := New(DefaultConfig(), prefetchtest.NewMockMachine())
	kb := float64(p.StorageBits()) / 8 / 1024
	if kb < 8 || kb > 40 {
		t.Errorf("MANA storage %.1fKB outside the paper's ~15KB class", kb)
	}
	if p.Name() != "MANA" {
		t.Error("name")
	}
}

func TestDuplicateBlocksIgnored(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	for i := 0; i < 100; i++ {
		p.OnRetire(ev(5))
	}
	if len(m.Issued) != 0 {
		t.Error("same-block retires caused traffic")
	}
}
