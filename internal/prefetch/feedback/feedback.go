// Package feedback implements a deterministic feedback-directed
// prefetch-throttling governor in the style of Srinath et al.'s
// feedback-directed prefetching (the GHB_FDP exemplar): every fixed
// interval of retired fetch blocks it samples the machine's prefetch
// counters, computes interval accuracy, lateness and pollution, and
// steps a conservative ↔ moderate ↔ aggressive state machine whose
// state maps to a (degree, lookahead) operating point. Attached to any
// prefetch.Tunable via prefetch.NewGoverned, it retunes the scheme
// online without per-scheme surgery.
//
// Everything is integer-counter driven and clocked by the retired
// stream, so two runs of the same workload produce byte-identical
// transition schedules — the governor is part of the deterministic
// machine, not a heuristic bolted on beside it.
package feedback

import (
	"fmt"
	"strings"

	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch"
)

// Sampler exposes the running prefetch feedback counters the governor
// samples each interval. *sim.Machine implements it; tests use fakes.
// Counts are monotonic except across a stats reset (warmup boundary),
// which the governor detects as a backwards sample and resyncs over.
type Sampler interface {
	PFSignals() (issued, useful, late, useless uint64)
}

// Level is the governor's aggressiveness state.
type Level int

// The three operating points, conservative to aggressive.
const (
	Conservative Level = iota
	Moderate
	Aggressive
	numLevels
)

// String names the level for schedules and reports.
func (l Level) String() string {
	switch l {
	case Conservative:
		return "conservative"
	case Moderate:
		return "moderate"
	case Aggressive:
		return "aggressive"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Knobs is the (degree, lookahead) pair a level maps to.
type Knobs struct {
	Degree    int
	Lookahead int
}

// Config sets the sampling cadence, decision thresholds and per-level
// operating points. The zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// IntervalBlocks is the sampling interval in retired fetch blocks.
	IntervalBlocks uint64
	// MinIssued is the minimum per-interval issue count needed to make a
	// decision; quieter intervals hold (too little signal to act on).
	MinIssued uint64
	// AccuracyLow: interval accuracy below this steps toward
	// conservative — the scheme is mostly guessing wrong.
	AccuracyLow float64
	// PollutionHigh: interval useless/issued above this also steps down,
	// independent of accuracy — evictions of never-used lines are the
	// cache-pollution signal.
	PollutionHigh float64
	// LateHigh: when the interval is accurate but more than this share
	// of its useful+late prefetches arrived late, step toward aggressive
	// (more degree/lookahead buys timeliness).
	LateHigh float64
	// DownStreak is the hysteresis depth: how many consecutive bad
	// intervals (low accuracy or high pollution) it takes to step down.
	// Useless prefetches are charged at eviction time, one interval after
	// the over-aggressive interval that issued them, so a single bad
	// sample right after a step is expected lag, not a trend.
	DownStreak int
	// Levels maps each state to its operating point.
	Levels [3]Knobs
	// MaxTransitions bounds the recorded transition schedule (the
	// counters keep counting past it).
	MaxTransitions int
}

// DefaultConfig returns the tuned defaults: sample every 8K retired
// blocks, Moderate start, and FDP-style thresholds.
func DefaultConfig() Config {
	return Config{
		IntervalBlocks: 8192,
		MinIssued:      32,
		AccuracyLow:    0.20,
		PollutionHigh:  0.60,
		LateHigh:       0.04,
		DownStreak:     2,
		Levels: [3]Knobs{
			Conservative: {Degree: 1, Lookahead: 1},
			Moderate:     {Degree: 4, Lookahead: 2},
			Aggressive:   {Degree: 8, Lookahead: 4},
		},
		MaxTransitions: 4096,
	}
}

// Transition records one state-machine edge, stamped with the interval
// ordinal it fired on.
type Transition struct {
	Interval uint64 `json:"interval"`
	From     Level  `json:"from"`
	To       Level  `json:"to"`
}

// Counters are the governor's always-on diagnostics, exported through
// harness results and /metrics.
type Counters struct {
	Intervals uint64 // decision intervals elapsed
	StepUps   uint64 // transitions toward aggressive
	StepDowns uint64 // transitions toward conservative
	Holds     uint64 // intervals that kept the current level
	Resyncs   uint64 // backwards samples skipped (stats reset)
}

// Governor is the feedback controller. It implements
// prefetch.Controller; attach it with prefetch.NewGoverned.
type Governor struct {
	cfg Config
	s   Sampler

	level  Level
	blocks uint64
	bad    int // consecutive bad intervals toward DownStreak

	lastIssued, lastUseful uint64
	lastLate, lastUseless  uint64

	Counters    Counters
	transitions []Transition
}

// New builds a governor over the machine's counters, starting Moderate.
func New(cfg Config, s Sampler) *Governor {
	if cfg.IntervalBlocks == 0 {
		cfg.IntervalBlocks = DefaultConfig().IntervalBlocks
	}
	if cfg.DownStreak < 1 {
		cfg.DownStreak = 1
	}
	return &Governor{cfg: cfg, s: s, level: Moderate}
}

// Level returns the current operating state.
func (g *Governor) Level() Level { return g.level }

// Knobs returns the current operating point (prefetch.Controller).
func (g *Governor) Knobs() (degree, lookahead int) {
	k := g.cfg.Levels[g.level]
	return k.Degree, k.Lookahead
}

// StorageBits is the hardware cost: four 32-bit interval shadow
// counters, four 32-bit delta registers, a 2-bit state, a 2-bit
// hysteresis streak and a 13-bit interval countdown.
func (g *Governor) StorageBits() int { return 4*32 + 4*32 + 2 + 2 + 13 }

// Observe advances the interval clock; on an interval boundary it
// samples the counters and decides (prefetch.Controller).
func (g *Governor) Observe(ev *isa.BlockEvent) (degree, lookahead int, changed bool) {
	g.blocks++
	if g.blocks%g.cfg.IntervalBlocks != 0 {
		return 0, 0, false
	}
	issued, useful, late, useless := g.s.PFSignals()
	if issued < g.lastIssued || useful < g.lastUseful ||
		late < g.lastLate || useless < g.lastUseless {
		// Counters went backwards: the harness reset stats at the warmup
		// boundary. Resync the shadow registers without deciding.
		g.Counters.Resyncs++
		g.resync(issued, useful, late, useless)
		return 0, 0, false
	}
	dIssued := issued - g.lastIssued
	dUseful := useful - g.lastUseful
	dLate := late - g.lastLate
	dUseless := useless - g.lastUseless
	g.resync(issued, useful, late, useless)
	g.Counters.Intervals++

	if dIssued < g.cfg.MinIssued {
		g.Counters.Holds++
		return 0, 0, false
	}
	accuracy := float64(dUseful) / float64(dIssued)
	pollution := float64(dUseless) / float64(dIssued)
	lateFrac := 0.0
	if dUseful+dLate > 0 {
		lateFrac = float64(dLate) / float64(dUseful+dLate)
	}

	next := g.level
	if accuracy < g.cfg.AccuracyLow || pollution > g.cfg.PollutionHigh {
		g.bad++
		if g.bad >= g.cfg.DownStreak {
			next = g.level - 1
			g.bad = 0
		}
	} else {
		g.bad = 0
		if lateFrac > g.cfg.LateHigh {
			next = g.level + 1
		}
	}
	if next < Conservative {
		next = Conservative
	}
	if next >= numLevels {
		next = numLevels - 1
	}
	if next == g.level {
		g.Counters.Holds++
		return 0, 0, false
	}
	if next > g.level {
		g.Counters.StepUps++
	} else {
		g.Counters.StepDowns++
	}
	if len(g.transitions) < g.cfg.MaxTransitions || g.cfg.MaxTransitions <= 0 {
		g.transitions = append(g.transitions, Transition{
			Interval: g.Counters.Intervals, From: g.level, To: next,
		})
	}
	g.level = next
	k := g.cfg.Levels[next]
	return k.Degree, k.Lookahead, true
}

func (g *Governor) resync(issued, useful, late, useless uint64) {
	g.lastIssued, g.lastUseful = issued, useful
	g.lastLate, g.lastUseless = late, useless
}

// Summary is the governor's end-of-run snapshot, carried on harness
// results and serialised into service responses.
type Summary struct {
	Level       string       `json:"level"`
	Intervals   uint64       `json:"intervals"`
	StepUps     uint64       `json:"step_ups"`
	StepDowns   uint64       `json:"step_downs"`
	Holds       uint64       `json:"holds"`
	Resyncs     uint64       `json:"resyncs,omitempty"`
	Transitions []Transition `json:"transitions,omitempty"`
}

// Summary snapshots the governor's state and transition history.
func (g *Governor) Summary() *Summary {
	out := &Summary{
		Level:     g.level.String(),
		Intervals: g.Counters.Intervals,
		StepUps:   g.Counters.StepUps,
		StepDowns: g.Counters.StepDowns,
		Holds:     g.Counters.Holds,
		Resyncs:   g.Counters.Resyncs,
	}
	out.Transitions = append(out.Transitions, g.transitions...)
	return out
}

// Schedule renders the transition history in a canonical text form
// ("7:moderate>aggressive;12:aggressive>moderate"); determinism tests
// byte-compare it across fresh runs.
func (s *Summary) Schedule() string {
	var b strings.Builder
	for i, t := range s.Transitions {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d:%s>%s", t.Interval, t.From, t.To)
	}
	return b.String()
}

var _ prefetch.Controller = (*Governor)(nil)
