package feedback

import (
	"reflect"
	"strings"
	"testing"

	"hprefetch/internal/isa"
)

// fakeSampler scripts one PFSignals sample per decision interval.
type fakeSampler struct {
	samples [][4]uint64
	i       int
}

func (f *fakeSampler) PFSignals() (issued, useful, late, useless uint64) {
	s := f.samples[f.i]
	if f.i < len(f.samples)-1 {
		f.i++
	}
	return s[0], s[1], s[2], s[3]
}

// tick advances the governor one full interval and returns its decision.
func tick(t *testing.T, g *Governor) (degree, lookahead int, changed bool) {
	t.Helper()
	ev := &isa.BlockEvent{}
	for i := uint64(0); i < g.cfg.IntervalBlocks-1; i++ {
		if _, _, ch := g.Observe(ev); ch {
			t.Fatal("governor decided off the interval boundary")
		}
	}
	return g.Observe(ev)
}

// cfg returns a test config with single-interval hysteresis so each
// state edge can be forced with one scripted sample.
func cfg() Config {
	c := DefaultConfig()
	c.IntervalBlocks = 16
	c.MinIssued = 10
	c.DownStreak = 1
	return c
}

// TestForcedTransitions drives every state-machine edge with scripted
// samples: up from each level on lateness, down from each level on
// pollution, clamping at both ends.
func TestForcedTransitions(t *testing.T) {
	late := [4]uint64{100, 50, 50, 0}  // lateFrac 0.5 ≫ LateHigh
	clean := [4]uint64{100, 90, 0, 5}  // accurate, timely: hold
	dirty := [4]uint64{100, 25, 0, 70} // pollution 0.7 > PollutionHigh
	cum := func(rows ...[4]uint64) [][4]uint64 {
		out := make([][4]uint64, len(rows))
		var acc [4]uint64
		for i, r := range rows {
			for j := range acc {
				acc[j] += r[j]
			}
			out[i] = acc
		}
		return out
	}

	steps := []struct {
		name    string
		sample  [4]uint64
		want    Level
		changed bool
	}{
		{"moderate>aggressive on late", late, Aggressive, true},
		{"clamp at aggressive", late, Aggressive, false},
		{"hold on clean", clean, Aggressive, false},
		{"aggressive>moderate on pollution", dirty, Moderate, true},
		{"moderate>conservative on pollution", dirty, Conservative, true},
		{"clamp at conservative", dirty, Conservative, false},
		{"conservative>moderate on late", late, Moderate, true},
	}
	var rows [][4]uint64
	for _, s := range steps {
		rows = append(rows, s.sample)
	}
	g := New(cfg(), &fakeSampler{samples: cum(rows...)})
	for _, s := range steps {
		deg, la, changed := tick(t, g)
		if changed != s.changed || g.Level() != s.want {
			t.Fatalf("%s: level %v changed %v, want %v/%v", s.name, g.Level(), changed, s.want, s.changed)
		}
		if changed {
			k := g.cfg.Levels[s.want]
			if deg != k.Degree || la != k.Lookahead {
				t.Fatalf("%s: knobs (%d,%d), want %+v", s.name, deg, la, k)
			}
		}
	}
	sum := g.Summary()
	if sum.StepUps != 2 || sum.StepDowns != 2 {
		t.Fatalf("counters %+v, want 2 ups / 2 downs", sum)
	}
	wantSched := "1:moderate>aggressive;4:aggressive>moderate;5:moderate>conservative;7:conservative>moderate"
	if got := sum.Schedule(); got != wantSched {
		t.Fatalf("schedule %q, want %q", got, wantSched)
	}
}

// TestDownStreakHysteresis: with DownStreak 2 a single bad interval is
// absorbed (eviction-lag tolerance) and only a second consecutive one
// steps down; a clean interval in between resets the streak.
func TestDownStreakHysteresis(t *testing.T) {
	c := cfg()
	c.DownStreak = 2
	g := New(c, &fakeSampler{samples: [][4]uint64{
		{100, 25, 0, 70},   // dirty #1: absorbed
		{200, 115, 0, 75},  // clean: streak resets
		{300, 140, 0, 145}, // dirty #1 again
		{400, 165, 0, 215}, // dirty #2: steps down
	}})
	for i, want := range []Level{Moderate, Moderate, Moderate, Conservative} {
		tick(t, g)
		if g.Level() != want {
			t.Fatalf("after interval %d: level %v, want %v", i+1, g.Level(), want)
		}
	}
}

// TestQuietIntervalHolds: fewer than MinIssued new prefetches is too
// little signal — the governor holds regardless of ratios.
func TestQuietIntervalHolds(t *testing.T) {
	g := New(cfg(), &fakeSampler{samples: [][4]uint64{{5, 0, 0, 5}}})
	if _, _, changed := tick(t, g); changed || g.Level() != Moderate {
		t.Fatalf("quiet interval moved the governor: %v", g.Level())
	}
	if g.Counters.Holds != 1 {
		t.Fatalf("holds %d, want 1", g.Counters.Holds)
	}
}

// TestResyncOnStatsReset: a backwards sample (harness stats reset at the
// warmup boundary) resynchronises the shadow counters without deciding.
func TestResyncOnStatsReset(t *testing.T) {
	g := New(cfg(), &fakeSampler{samples: [][4]uint64{
		{1000, 900, 0, 50}, // clean warmup interval: hold
		{100, 50, 50, 0},   // backwards: reset happened
		{200, 100, 100, 0}, // lateFrac 0.5 from the resynced base
	}})
	tick(t, g)
	if g.Level() != Moderate {
		t.Fatalf("warmup interval moved the governor: %v", g.Level())
	}
	if _, _, changed := tick(t, g); changed || g.Counters.Resyncs != 1 {
		t.Fatalf("backwards sample decided (changed=%v resyncs=%d)", changed, g.Counters.Resyncs)
	}
	tick(t, g)
	if g.Level() != Aggressive {
		t.Fatalf("post-resync interval did not decide: %v", g.Level())
	}
}

// TestSummaryIndependence: Summary snapshots are deep copies.
func TestSummaryIndependence(t *testing.T) {
	g := New(cfg(), &fakeSampler{samples: [][4]uint64{{100, 50, 50, 0}}})
	tick(t, g)
	a := g.Summary()
	b := g.Summary()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two snapshots of the same governor differ")
	}
	a.Transitions[0].Interval = 999
	if b.Transitions[0].Interval == 999 {
		t.Fatal("summaries share transition backing storage")
	}
}

// TestLevelString covers the diagnostic names.
func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		Conservative: "conservative", Moderate: "moderate", Aggressive: "aggressive",
	} {
		if l.String() != want {
			t.Errorf("%d.String() = %q", int(l), l.String())
		}
	}
	if !strings.Contains(Level(7).String(), "7") {
		t.Error("out-of-range level does not name itself")
	}
}
