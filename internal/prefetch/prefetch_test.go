package prefetch

import (
	"testing"
	"testing/quick"

	"hprefetch/internal/isa"
)

func TestRegionBasics(t *testing.T) {
	r := Region{Base: 100, Vec: 0}
	if !r.Contains(100) || !r.Contains(131) || r.Contains(132) || r.Contains(99) {
		t.Error("Contains bounds wrong")
	}
	r.Set(100)
	r.Set(131)
	if !r.Has(100) || !r.Has(131) || r.Has(101) {
		t.Error("Set/Has wrong")
	}
	if r.Count() != 2 {
		t.Errorf("Count = %d", r.Count())
	}
	blocks := r.Blocks(nil)
	if len(blocks) != 2 || blocks[0] != 100 || blocks[1] != 131 {
		t.Errorf("Blocks = %v", blocks)
	}
}

func TestRegionBufferCoalesces(t *testing.T) {
	rb := NewRegionBuffer(4)
	for b := isa.Block(0); b < 32; b++ {
		if _, ev := rb.Insert(b); ev {
			t.Fatal("eviction while coalescing a single region")
		}
	}
	if rb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", rb.Len())
	}
	regions := rb.Flush()
	if len(regions) != 1 || regions[0].Count() != 32 || regions[0].Base != 0 {
		t.Fatalf("flushed %v", regions)
	}
	if rb.Len() != 0 {
		t.Error("flush did not clear")
	}
}

func TestRegionBufferFIFOEviction(t *testing.T) {
	rb := NewRegionBuffer(2)
	rb.Insert(0)    // region A
	rb.Insert(1000) // region B
	ev, ok := rb.Insert(2000)
	if !ok || ev.Base != 0 {
		t.Fatalf("expected region A evicted, got %v,%v", ev, ok)
	}
	ev, ok = rb.Insert(3000)
	if !ok || ev.Base != 1000 {
		t.Fatalf("expected region B evicted, got %v,%v", ev, ok)
	}
}

func TestRegionBufferProperty(t *testing.T) {
	// Every inserted block is either in a buffered region or was evicted
	// inside exactly one region; no block is lost or duplicated.
	f := func(seed uint64, n uint8) bool {
		rb := NewRegionBuffer(4)
		counts := map[isa.Block]int{}
		state := seed
		record := func(r Region) {
			for _, b := range r.Blocks(nil) {
				counts[b]++
			}
		}
		blocks := map[isa.Block]bool{}
		for i := 0; i < int(n); i++ {
			state = state*6364136223846793005 + 1442695040888963407
			b := isa.Block(state % 4096)
			blocks[b] = true
			if ev, ok := rb.Insert(b); ok {
				record(ev)
			}
		}
		for _, r := range rb.Flush() {
			record(r)
		}
		for b := range blocks {
			if counts[b] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegionBufferStorage(t *testing.T) {
	rb := NewRegionBuffer(16)
	if rb.StorageBits() != 16*(58+32+1) {
		t.Errorf("storage = %d", rb.StorageBits())
	}
}
