package prefetch

import (
	"testing"

	"hprefetch/internal/isa"
)

// tunableSpy records the knob settings and events a Governed wrapper
// forwards to its inner scheme.
type tunableSpy struct {
	degree, lookahead int
	retires           int
	resteers          int
	misses            int
}

func (s *tunableSpy) Name() string                       { return "spy" }
func (s *tunableSpy) OnRetire(ev *isa.BlockEvent)        { s.retires++ }
func (s *tunableSpy) OnResteer()                         { s.resteers++ }
func (s *tunableSpy) OnDemandMiss(b isa.Block, l uint64) { s.misses++ }
func (s *tunableSpy) StorageBits() int                   { return 100 }
func (s *tunableSpy) SetAggressiveness(d, l int)         { s.degree, s.lookahead = d, l }

// ctrlScript changes the knobs on a chosen observation ordinal.
type ctrlScript struct {
	initial [2]int
	fireAt  int
	fired   [2]int
	seen    int
}

func (c *ctrlScript) Knobs() (int, int) { return c.initial[0], c.initial[1] }
func (c *ctrlScript) Observe(ev *isa.BlockEvent) (int, int, bool) {
	c.seen++
	if c.seen == c.fireAt {
		return c.fired[0], c.fired[1], true
	}
	return 0, 0, false
}
func (c *ctrlScript) StorageBits() int { return 42 }

// TestGovernedAppliesKnobs: attach applies the controller's initial
// operating point; a controller decision retunes the scheme before the
// scheme sees the deciding event; all events forward to the inner.
func TestGovernedAppliesKnobs(t *testing.T) {
	spy := &tunableSpy{}
	ctrl := &ctrlScript{initial: [2]int{4, 2}, fireAt: 3, fired: [2]int{8, 4}}
	g := NewGoverned(spy, ctrl)

	if spy.degree != 4 || spy.lookahead != 2 {
		t.Fatalf("initial knobs not applied: %+v", spy)
	}
	if g.Name() != "spy" {
		t.Fatalf("name %q", g.Name())
	}
	if g.StorageBits() != 142 {
		t.Fatalf("storage %d, want inner+controller = 142", g.StorageBits())
	}

	ev := &isa.BlockEvent{}
	g.OnRetire(ev)
	g.OnRetire(ev)
	if spy.degree != 4 {
		t.Fatalf("knobs moved before the controller decided: %+v", spy)
	}
	g.OnRetire(ev)
	if spy.degree != 8 || spy.lookahead != 4 {
		t.Fatalf("controller decision not applied: %+v", spy)
	}
	g.OnResteer()
	g.OnDemandMiss(7, 100)
	if spy.retires != 3 || spy.resteers != 1 || spy.misses != 1 {
		t.Fatalf("events not forwarded: %+v", spy)
	}
	if g.Inner() != Tunable(spy) {
		t.Fatal("Inner() does not expose the wrapped scheme")
	}
}
