package eip

import (
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch/prefetchtest"
)

func ev(b isa.Block) *isa.BlockEvent {
	return &isa.BlockEvent{Addr: b.Addr(), NumInstr: 8}
}

func TestEntangleAndReplay(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	// Script: block 7 retired one miss-latency before block 99 missed.
	target := m.MissLat * uint64(DefaultConfig().LatencyScalePct) / 100
	m.AgoBlocks[target] = 7
	p.OnDemandMiss(99, m.MissLat)
	// Next time block 7 retires, 99 must be prefetched.
	p.OnRetire(ev(7))
	if len(m.Issued) != 1 || m.Issued[0] != 99 {
		t.Fatalf("issued %v, want [99]", m.Issued)
	}
}

func TestMultipleDestinations(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	target := m.MissLat * uint64(DefaultConfig().LatencyScalePct) / 100
	m.AgoBlocks[target] = 7
	for d := isa.Block(100); d < 100+destsPerEntry; d++ {
		p.OnDemandMiss(d, m.MissLat)
	}
	p.OnRetire(ev(7))
	if len(m.Issued) != destsPerEntry {
		t.Fatalf("issued %d, want %d", len(m.Issued), destsPerEntry)
	}
	// Overflow rotates the oldest destination out.
	p.OnDemandMiss(555, m.MissLat)
	m.Issued = nil
	p.OnRetire(ev(8)) // different block: nothing
	p.OnRetire(ev(7))
	seen := m.IssuedSet()
	if !seen[555] {
		t.Error("new destination lost on overflow")
	}
	if seen[100] {
		t.Error("oldest destination survived overflow")
	}
}

func TestNoDuplicateDestinations(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	target := m.MissLat * uint64(DefaultConfig().LatencyScalePct) / 100
	m.AgoBlocks[target] = 7
	for i := 0; i < 10; i++ {
		p.OnDemandMiss(99, m.MissLat)
	}
	p.OnRetire(ev(7))
	if len(m.Issued) != 1 {
		t.Fatalf("duplicate destinations recorded: %v", m.Issued)
	}
	if d := p.AvgDestinations(); d != 1 {
		t.Errorf("avg destinations %v, want 1", d)
	}
}

func TestSelfEntangleSkipped(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	target := m.MissLat * uint64(DefaultConfig().LatencyScalePct) / 100
	m.AgoBlocks[target] = 99
	p.OnDemandMiss(99, m.MissLat)
	p.OnRetire(ev(99))
	if len(m.Issued) != 0 {
		t.Error("block entangled with itself")
	}
}

func TestStorageBudget(t *testing.T) {
	p := New(DefaultConfig(), prefetchtest.NewMockMachine())
	kb := float64(p.StorageBits()) / 8 / 1024
	if kb < 20 || kb > 60 {
		t.Errorf("EIP storage %.1fKB outside the paper's ~40KB class", kb)
	}
	if p.Name() != "EIP" {
		t.Error("name")
	}
}
