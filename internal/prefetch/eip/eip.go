// Package eip implements the Entangling Instruction Prefetcher (Ros &
// Jimborean, ISCA 2021), winner of the IPC-1 championship and the
// strongest fine-grained baseline in the paper (§2.4, §6.3). EIP selects,
// for every observed L1-I miss, a "source" block that executed roughly
// one miss latency earlier and entangles the missed block with it; when
// the source is fetched again, all its entangled destinations are
// prefetched. Entangling far-back sources buys timeliness at the cost of
// accuracy — the trade-off Figures 2c and 3 quantify and that lets
// Hierarchical Prefetching beat it.
package eip

import (
	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch"
)

// destsPerEntry is how many destinations one entangled-table entry holds
// (the balanced 40KB configuration packs a handful of compressed
// destinations per source).
const destsPerEntry = 4

// Config sizes EIP (defaults per §6.3: 4K-entry, 8-way entangled table
// with a 16-entry history buffer).
type Config struct {
	// TableEntries and TableWays size the entangled table.
	TableEntries, TableWays int
	// LatencyScalePct scales the miss-latency estimate used to pick the
	// source block: 100 entangles exactly one average miss latency back.
	LatencyScalePct int
}

// DefaultConfig mirrors the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		TableEntries:    4096,
		TableWays:       8,
		LatencyScalePct: 120,
	}
}

// entry is one source block and its entangled destinations.
type entry struct {
	tag   isa.Block
	dests [destsPerEntry]isa.Block
	nd    uint8
	age   uint8
	used  bool
}

// EIP is the prefetcher state.
type EIP struct {
	cfg  Config
	m    prefetch.Machine
	tab  []entry
	sets int

	lastBlock isa.Block
	haveLast  bool
}

// New builds an EIP prefetcher attached to machine m.
func New(cfg Config, m prefetch.Machine) *EIP {
	if cfg.LatencyScalePct <= 0 {
		cfg.LatencyScalePct = 100
	}
	return &EIP{
		cfg:  cfg,
		m:    m,
		tab:  make([]entry, cfg.TableEntries),
		sets: cfg.TableEntries / cfg.TableWays,
	}
}

// Name identifies the scheme.
func (p *EIP) Name() string { return "EIP" }

// StorageBits reports the on-chip budget: tag plus compressed
// destinations per entry, matching the 40KB balanced configuration.
func (p *EIP) StorageBits() int {
	return p.cfg.TableEntries * (20 + destsPerEntry*16 + 3 + 1)
}

// OnRetire replays: whenever a new block is fetched, every destination
// entangled with it is prefetched.
func (p *EIP) OnRetire(ev *isa.BlockEvent) {
	b := ev.Block()
	if p.haveLast && b == p.lastBlock {
		return
	}
	p.lastBlock = b
	p.haveLast = true
	e := p.lookup(b)
	if e == nil {
		return
	}
	for i := 0; i < int(e.nd); i++ {
		p.m.Prefetch(e.dests[i])
	}
}

// OnDemandMiss trains: the missed block is entangled with the block that
// retired roughly one (scaled) miss latency earlier, so the next
// occurrence of that source prefetches the miss just in time.
func (p *EIP) OnDemandMiss(b isa.Block, latency uint64) {
	target := p.m.AvgMissLatency()
	if latency > target {
		target = latency
	}
	target = target * uint64(p.cfg.LatencyScalePct) / 100
	src, ok := p.m.BlockAgo(target)
	if !ok || src == b {
		return
	}
	e := p.lookup(src)
	if e == nil {
		e = p.allocate(src)
	}
	for i := 0; i < int(e.nd); i++ {
		if e.dests[i] == b {
			return
		}
	}
	if e.nd < destsPerEntry {
		e.dests[e.nd] = b
		e.nd++
		return
	}
	// Entry full: rotate the oldest destination out.
	copy(e.dests[:], e.dests[1:])
	e.dests[destsPerEntry-1] = b
}

// OnResteer is a no-op: EIP's state keys off committed blocks.
func (p *EIP) OnResteer() {}

// AvgDestinations reports the mean valid destinations per used entry —
// the "paths per source" statistic §7.4 discusses (EIP averages ~2.4).
func (p *EIP) AvgDestinations() float64 {
	var used, dests int
	for i := range p.tab {
		if p.tab[i].used {
			used++
			dests += int(p.tab[i].nd)
		}
	}
	if used == 0 {
		return 0
	}
	return float64(dests) / float64(used)
}

func (p *EIP) set(b isa.Block) int {
	h := uint64(b) * 0x9E3779B97F4A7C15
	return int(h % uint64(p.sets))
}

func (p *EIP) lookup(b isa.Block) *entry {
	base := p.set(b) * p.cfg.TableWays
	for w := 0; w < p.cfg.TableWays; w++ {
		e := &p.tab[base+w]
		if e.used && e.tag == b {
			p.touch(base, w)
			return e
		}
	}
	return nil
}

func (p *EIP) allocate(b isa.Block) *entry {
	base := p.set(b) * p.cfg.TableWays
	victim := 0
	for w := 0; w < p.cfg.TableWays; w++ {
		e := &p.tab[base+w]
		if !e.used {
			victim = w
			break
		}
		if e.age > p.tab[base+victim].age {
			victim = w
		}
	}
	e := &p.tab[base+victim]
	*e = entry{tag: b, used: true, age: 255}
	p.touch(base, victim)
	return e
}

func (p *EIP) touch(base, way int) {
	old := p.tab[base+way].age
	for w := 0; w < p.cfg.TableWays; w++ {
		if p.tab[base+w].age < old {
			p.tab[base+w].age++
		}
	}
	p.tab[base+way].age = 0
}

var _ prefetch.Prefetcher = (*EIP)(nil)
