// Package prefetchtest provides a scriptable prefetch.Machine mock for
// unit-testing prefetchers in isolation.
package prefetchtest

import (
	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch"
)

// MockMachine is a minimal prefetch.Machine for unit-testing prefetchers.
// It records every accepted prefetch and lets tests script time, the
// retired-block history, and residency.
type MockMachine struct {
	NowV       uint64
	BlockSeqV  uint64
	InstrSeqV  uint64
	ResidentV  map[isa.Block]bool
	MappedV    map[uint64]bool // pages with an ITLB translation
	TLBDrops   int             // PrefetchMapped calls withheld
	Issued     []isa.Block
	Space      int
	MissLat    uint64
	AgoBlocks  map[uint64]isa.Block // cycles-ago -> block
	MetaReads  int
	MetaWrites int
	MetaDelay  uint64
}

// NewMockMachine returns a mock with unbounded queue space.
func NewMockMachine() *MockMachine {
	return &MockMachine{
		ResidentV: map[isa.Block]bool{},
		MappedV:   map[uint64]bool{},
		AgoBlocks: map[uint64]isa.Block{},
		Space:     1 << 30,
		MissLat:   50 * 48,
	}
}

func (m *MockMachine) Now() uint64        { return m.NowV }
func (m *MockMachine) CycleScale() uint64 { return 48 }
func (m *MockMachine) BlockSeq() uint64   { return m.BlockSeqV }
func (m *MockMachine) InstrSeq() uint64   { return m.InstrSeqV }

func (m *MockMachine) Resident(b isa.Block) bool { return m.ResidentV[b] }

func (m *MockMachine) Prefetch(b isa.Block) bool {
	if m.Space <= 0 {
		return false
	}
	m.Issued = append(m.Issued, b)
	return true
}

// PrefetchMapped mirrors the machine's TLB-gated issue path: blocks on
// pages absent from MappedV are withheld and counted in TLBDrops.
func (m *MockMachine) PrefetchMapped(b isa.Block) bool {
	if !m.MappedV[uint64(b.Page())] {
		m.TLBDrops++
		return false
	}
	return m.Prefetch(b)
}

func (m *MockMachine) PrefetchSpace() int { return m.Space }

func (m *MockMachine) AvgMissLatency() uint64 { return m.MissLat }

func (m *MockMachine) BlockAgo(cycles uint64) (isa.Block, bool) {
	b, ok := m.AgoBlocks[cycles]
	return b, ok
}

func (m *MockMachine) MetadataRead(addr isa.Addr, n int) uint64 {
	m.MetaReads++
	return m.NowV + m.MetaDelay
}

func (m *MockMachine) MetadataWrite(addr isa.Addr, n int) { m.MetaWrites++ }

// IssuedSet returns the distinct issued blocks.
func (m *MockMachine) IssuedSet() map[isa.Block]bool {
	out := map[isa.Block]bool{}
	for _, b := range m.Issued {
		out[b] = true
	}
	return out
}

var _ prefetch.Machine = (*MockMachine)(nil)
