package efetch

import (
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch/prefetchtest"
)

func call(target isa.Addr, pc isa.Addr) *isa.BlockEvent {
	return &isa.BlockEvent{Addr: pc - 12, NumInstr: 4, Branch: isa.BrCall, BrPC: pc, Target: target}
}

func ret(pc isa.Addr, to isa.Addr) *isa.BlockEvent {
	return &isa.BlockEvent{Addr: pc - 4, NumInstr: 2, Branch: isa.BrRet, BrPC: pc, Target: to}
}

func body(addr isa.Addr, n int) []*isa.BlockEvent {
	out := make([]*isa.BlockEvent, n)
	for i := range out {
		out[i] = &isa.BlockEvent{Addr: addr + isa.Addr(i*64), NumInstr: 16}
	}
	return out
}

// runSequence replays a fixed call chain A->B->C (with bodies) twice and
// returns the prefetches observed during the second pass.
func runSequence(t *testing.T, cfg Config) []isa.Block {
	m := prefetchtest.NewMockMachine()
	p := New(cfg, m)
	seq := func() {
		p.OnRetire(call(0x10000, 0x100)) // call A
		for _, e := range body(0x10010, 3) {
			p.OnRetire(e)
		}
		p.OnRetire(ret(0x10200, 0x104))  // A returns
		p.OnRetire(call(0x20000, 0x200)) // call B
		for _, e := range body(0x20010, 2) {
			p.OnRetire(e)
		}
		p.OnRetire(ret(0x20100, 0x204))
		p.OnRetire(call(0x30000, 0x300)) // call C
		p.OnRetire(ret(0x30040, 0x304))
	}
	for i := 0; i < 3; i++ {
		seq()
	}
	m.Issued = nil
	seq()
	return m.Issued
}

func TestPredictsNextCallee(t *testing.T) {
	issued := runSequence(t, DefaultConfig())
	if len(issued) == 0 {
		t.Fatal("no predictions after training")
	}
	// After the call to A, the next callee B (block of 0x20000) must be
	// among the prefetches; its recorded footprint anchors at its entry.
	seen := map[isa.Block]bool{}
	for _, b := range issued {
		seen[b] = true
	}
	if !seen[isa.Addr(0x20000).Block()] {
		t.Errorf("next callee entry not prefetched; issued %v", issued)
	}
}

func TestFootprintPrefetched(t *testing.T) {
	issued := runSequence(t, DefaultConfig())
	seen := map[isa.Block]bool{}
	for _, b := range issued {
		seen[b] = true
	}
	// B's body blocks were recorded while B ran; they must be issued
	// along with its entry.
	if !seen[isa.Addr(0x20010).Block()+1] {
		t.Errorf("callee footprint not prefetched; issued %v", issued)
	}
}

func TestLookaheadChains(t *testing.T) {
	shallow := runSequence(t, Config{TableEntries: 4096, TableWays: 4, FootEntries: 4096, SigDepth: 3, Lookahead: 1})
	deep := runSequence(t, Config{TableEntries: 4096, TableWays: 4, FootEntries: 4096, SigDepth: 3, Lookahead: 3})
	if len(deep) <= len(shallow) {
		t.Errorf("deeper lookahead issued %d <= shallow %d", len(deep), len(shallow))
	}
}

func TestStorageBudget(t *testing.T) {
	p := New(DefaultConfig(), prefetchtest.NewMockMachine())
	kb := float64(p.StorageBits()) / 8 / 1024
	if kb < 10 || kb > 45 {
		t.Errorf("EFetch storage %.1fKB outside the paper's <40KB class", kb)
	}
	if p.Name() != "EFetch" {
		t.Error("name")
	}
}

func TestUnbalancedReturnsTolerated(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	p := New(DefaultConfig(), m)
	for i := 0; i < 100; i++ {
		p.OnRetire(ret(0x1000, 0x2000))
	}
	// No panic, no traffic.
	if len(m.Issued) != 0 {
		t.Error("bare returns caused prefetches")
	}
}
