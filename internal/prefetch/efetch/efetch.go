// Package efetch implements EFetch (Chadha et al., PACT 2014), the
// state-of-the-art caller-callee prefetcher of the paper's comparison
// (§2.3, §6.3): a signature built from the top of the call stack predicts
// the next callee functions, whose recorded footprints (two 32-block bit
// vectors anchored at the function entry) are prefetched. Because each
// signature advances prediction only a callee or two into the future, its
// lookahead — and hence timeliness — is structurally limited, which is
// the behaviour §7.2 reports.
package efetch

import (
	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch"
	"hprefetch/internal/xrand"
)

// footVecs is the number of 32-block footprint vectors per callee.
const footVecs = 2

// Config sizes EFetch (defaults per §6.3: 4K-entry callee predictor,
// signature from the top 3 call-stack entries).
type Config struct {
	// TableEntries and TableWays size the signature table.
	TableEntries, TableWays int
	// FootEntries sizes the per-function footprint table.
	FootEntries int
	// SigDepth is how many call-stack entries form the signature.
	SigDepth int
	// Lookahead is how many predicted callees ahead to prefetch;
	// values beyond 1 chain through successor signatures (the Figure 2b
	// sweep goes to 16).
	Lookahead int
}

// DefaultConfig mirrors the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		TableEntries: 4096,
		TableWays:    4,
		FootEntries:  2048,
		SigDepth:     3,
		Lookahead:    1,
	}
}

// sigEntry maps a call-stack signature to the callee observed next and
// to the signature formed at that next call (the chain link used for
// deeper look-ahead).
type sigEntry struct {
	tag      uint64
	callee   isa.Block
	nextSig  uint64
	calleeOK bool
	nextOK   bool
	age      uint8
	used     bool
}

// footEntry is a recorded function footprint: blocks touched relative to
// the function's entry block.
type footEntry struct {
	tag isa.Block
	vec [footVecs]uint32
	ok  bool
}

// EFetch is the prefetcher state.
type EFetch struct {
	cfg Config
	m   prefetch.Machine

	table []sigEntry
	sets  int
	foot  []footEntry

	// Shadow call stack of callee entry blocks.
	stack []isa.Block
	// Signature formed at the previous call (chain training).
	prevSig  uint64
	havePrev bool

	// Footprint recorders aligned with the shadow stack.
	recs []footRec
}

type footRec struct {
	base isa.Block
	vec  [footVecs]uint32
}

// New builds an EFetch prefetcher attached to machine m.
func New(cfg Config, m prefetch.Machine) *EFetch {
	if cfg.Lookahead < 1 {
		cfg.Lookahead = 1
	}
	return &EFetch{
		cfg:   cfg,
		m:     m,
		table: make([]sigEntry, cfg.TableEntries),
		sets:  cfg.TableEntries / cfg.TableWays,
		foot:  make([]footEntry, cfg.FootEntries),
	}
}

// Name identifies the scheme.
func (p *EFetch) Name() string { return "EFetch" }

// StorageBits reports the on-chip budget: the signature table (compact
// tag, compressed callee pointer, successor-signature hash) plus the
// footprint store (tag + 2x32-bit vectors), landing near the "under
// 40KB" band the paper quotes for EFetch.
func (p *EFetch) StorageBits() int {
	return p.cfg.TableEntries*(14+18+14+2) + p.cfg.FootEntries*(14+footVecs*32)
}

// signature hashes the top SigDepth call-stack entries.
func (p *EFetch) signature() uint64 {
	h := uint64(0x6A09E667F3BCC909)
	n := len(p.stack)
	for i := 0; i < p.cfg.SigDepth; i++ {
		var v uint64
		if n-1-i >= 0 {
			v = uint64(p.stack[n-1-i])
		}
		h = xrand.Mix(h, v)
	}
	return h
}

// OnRetire tracks calls and returns, trains the signature table, records
// callee footprints, and issues predictions.
func (p *EFetch) OnRetire(ev *isa.BlockEvent) {
	// Record the touched block into the active footprint recorder.
	if n := len(p.recs); n > 0 {
		r := &p.recs[n-1]
		off := int64(ev.Block()) - int64(r.base)
		if off >= 0 && off < footVecs*32 {
			r.vec[off/32] |= 1 << uint(off%32)
		}
	}

	switch {
	case ev.Branch.IsCall():
		callee := ev.Target.Block()
		p.stack = append(p.stack, callee)
		if len(p.stack) > 64 {
			p.stack = p.stack[1:]
		}
		p.recs = append(p.recs, footRec{base: callee})
		if len(p.recs) > 64 {
			p.recs = p.recs[1:]
		}
		sig := p.signature()
		// Train the previous call point: its next callee is this one,
		// and its successor signature is the one just formed.
		if p.havePrev {
			p.train(p.prevSig, callee, sig)
		}
		p.prevSig = sig
		p.havePrev = true
		p.predict(sig)

	case ev.Branch == isa.BrRet:
		if n := len(p.recs); n > 0 {
			p.saveFootprint(p.recs[n-1])
			p.recs = p.recs[:n-1]
		}
		if n := len(p.stack); n > 0 {
			p.stack = p.stack[:n-1]
		}
	}
}

// predict prefetches the footprints of the next Lookahead callees by
// walking the signature chain.
func (p *EFetch) predict(sig uint64) {
	cur := sig
	for k := 0; k < p.cfg.Lookahead; k++ {
		e := p.lookup(cur)
		if e == nil || !e.calleeOK {
			return
		}
		p.prefetchFunc(e.callee)
		if !e.nextOK {
			return
		}
		cur = e.nextSig
	}
}

// prefetchFunc issues the recorded footprint of a callee, falling back
// to its first two blocks when no footprint is known yet.
func (p *EFetch) prefetchFunc(base isa.Block) {
	f := &p.foot[p.footIdx(base)]
	if f.ok && f.tag == base {
		for v := 0; v < footVecs; v++ {
			vec := f.vec[v]
			for i := 0; i < 32; i++ {
				if vec&(1<<uint(i)) != 0 {
					p.m.Prefetch(base + isa.Block(v*32+i))
				}
			}
		}
		return
	}
	p.m.Prefetch(base)
	p.m.Prefetch(base + 1)
}

// saveFootprint stores a returned callee's observed footprint.
func (p *EFetch) saveFootprint(r footRec) {
	f := &p.foot[p.footIdx(r.base)]
	f.tag = r.base
	f.vec = r.vec
	f.ok = true
}

func (p *EFetch) footIdx(base isa.Block) int {
	return int(uint64(base) * 0x9E3779B97F4A7C15 % uint64(len(p.foot)))
}

// train records sig's next callee and successor signature.
func (p *EFetch) train(sig uint64, callee isa.Block, nextSig uint64) {
	e := p.lookup(sig)
	if e == nil {
		e = p.allocate(sig)
	}
	e.callee = callee
	e.calleeOK = true
	e.nextSig = nextSig
	e.nextOK = true
}

func (p *EFetch) set(sig uint64) int { return int(sig % uint64(p.sets)) }

func (p *EFetch) lookup(sig uint64) *sigEntry {
	base := p.set(sig) * p.cfg.TableWays
	for w := 0; w < p.cfg.TableWays; w++ {
		e := &p.table[base+w]
		if e.used && e.tag == sig {
			p.touch(base, w)
			return e
		}
	}
	return nil
}

func (p *EFetch) allocate(sig uint64) *sigEntry {
	base := p.set(sig) * p.cfg.TableWays
	victim := 0
	for w := 0; w < p.cfg.TableWays; w++ {
		e := &p.table[base+w]
		if !e.used {
			victim = w
			break
		}
		if e.age > p.table[base+victim].age {
			victim = w
		}
	}
	e := &p.table[base+victim]
	*e = sigEntry{tag: sig, used: true, age: 255}
	p.touch(base, victim)
	return e
}

func (p *EFetch) touch(base, way int) {
	old := p.table[base+way].age
	for w := 0; w < p.cfg.TableWays; w++ {
		if p.table[base+w].age < old {
			p.table[base+w].age++
		}
	}
	p.table[base+way].age = 0
}

// OnResteer is a no-op: EFetch keys off committed calls, not the fetch
// stream.
func (p *EFetch) OnResteer() {}

// OnDemandMiss is unused by EFetch.
func (p *EFetch) OnDemandMiss(isa.Block, uint64) {}

var _ prefetch.Prefetcher = (*EFetch)(nil)
