// Package ghb implements a Global History Buffer instruction
// prefetcher (Nesbit & Smith), adapted from the classic data-side GHB
// exemplar to the instruction stream: the global history is the
// sequence of discontinuous fetch-block transitions (branch targets
// landing in a new block) in retire order, indexed by block address
// (G/AC organisation). On each discontinuity — and on every L1-I
// demand miss — the prefetcher finds the previous occurrence of the
// same block in the history and prefetches the blocks that followed it
// last time: the recurring control-flow sequences of server
// instruction working sets. Sequential-next blocks are FDIP's job and
// are not recorded. When a miss has no history it falls back to
// next-line.
//
// The scheme is prefetch.Tunable: degree (blocks issued per trigger)
// and lookahead (how far past the previous occurrence issuing starts)
// can be retargeted online by a feedback governor. A TLB-aware variant
// (Config.RequireTLB, after Jamet et al.) issues through the machine's
// TLB-gated path so translation-blocked prefetches are withheld and
// counted (PFTLBDropped) instead of going out blind.
package ghb

import (
	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch"
)

// Config sizes the buffer and sets the issue policy.
type Config struct {
	// GHBEntries is the circular global-history size (power of two).
	GHBEntries int
	// ITEntries is the direct-mapped index-table size (power of two).
	ITEntries int
	// Degree is how many history successors are prefetched per trigger.
	Degree int
	// Lookahead is the 1-based offset past the previous occurrence where
	// issuing starts (1 = the immediate successor).
	Lookahead int
	// Width is how many chained previous occurrences are walked per
	// trigger (the linked list through the index table).
	Width int
	// RequireTLB gates every issue on ITLB residency (the TLB-aware
	// variant): untranslated targets are withheld, not prefetched.
	RequireTLB bool
}

// DefaultConfig matches the governor's Moderate operating point so
// static and adaptive runs share a centre.
func DefaultConfig() Config {
	return Config{
		GHBEntries: 2048,
		ITEntries:  2048,
		Degree:     4,
		Lookahead:  2,
		Width:      2,
		RequireTLB: false,
	}
}

const (
	maxDegree    = 64
	maxLookahead = 32
)

type entry struct {
	block isa.Block
	prev  uint64 // seq of the previous occurrence of the same block
	ok    bool   // prev is meaningful
}

type itEntry struct {
	tag   isa.Block
	seq   uint64
	valid bool
}

// GHB is the prefetcher state.
type GHB struct {
	cfg  Config
	m    prefetch.Machine
	hist []entry
	it   []itEntry
	head uint64 // next global sequence number (total pushes)
	last isa.Block
}

// New builds the prefetcher; sizes are clamped to powers of two.
func New(cfg Config, m prefetch.Machine) *GHB {
	def := DefaultConfig()
	if cfg.GHBEntries <= 0 {
		cfg.GHBEntries = def.GHBEntries
	}
	if cfg.ITEntries <= 0 {
		cfg.ITEntries = def.ITEntries
	}
	cfg.GHBEntries = pow2(cfg.GHBEntries)
	cfg.ITEntries = pow2(cfg.ITEntries)
	if cfg.Width <= 0 {
		cfg.Width = def.Width
	}
	g := &GHB{
		cfg:  cfg,
		m:    m,
		hist: make([]entry, cfg.GHBEntries),
		it:   make([]itEntry, cfg.ITEntries),
	}
	g.SetAggressiveness(cfg.Degree, cfg.Lookahead)
	return g
}

func pow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Name identifies the scheme (the TLB-aware variant reports its own).
func (g *GHB) Name() string {
	if g.cfg.RequireTLB {
		return "GHB-TLB"
	}
	return "GHB"
}

// SetAggressiveness retargets degree and lookahead (prefetch.Tunable).
func (g *GHB) SetAggressiveness(degree, lookahead int) {
	if degree < 1 {
		degree = 1
	}
	if degree > maxDegree {
		degree = maxDegree
	}
	if lookahead < 1 {
		lookahead = 1
	}
	if lookahead > maxLookahead {
		lookahead = maxLookahead
	}
	g.cfg.Degree, g.cfg.Lookahead = degree, lookahead
}

// OnRetire trains on the retired fetch stream: a region starting in a
// block that is neither the previous block nor its sequential successor
// is a discontinuity — the I-stream event the GHB records and triggers
// on. Sequential advances are left to FDIP.
func (g *GHB) OnRetire(ev *isa.BlockEvent) {
	b := ev.Addr.Block()
	prev := g.last
	g.last = b
	if b == prev || b == prev+1 {
		return
	}
	g.trigger(b, false)
}

// OnResteer is a no-op: triggers key on block addresses, not fetch path.
func (g *GHB) OnResteer() {}

// OnDemandMiss triggers on the miss stream too — a miss the retire-side
// history failed to cover refreshes its chain and prefetches the
// successors immediately, with a next-line fallback for history-less
// misses.
func (g *GHB) OnDemandMiss(b isa.Block, latency uint64) {
	g.trigger(b, true)
}

// trigger links b into the global history and prefetches the blocks
// that followed its previous occurrences.
func (g *GHB) trigger(b isa.Block, nextLineFallback bool) {
	slot := uint64(b) & uint64(len(g.it)-1)
	var prevSeq uint64
	havePrev := false
	if e := &g.it[slot]; e.valid && e.tag == b && g.inWindow(e.seq) {
		prevSeq, havePrev = e.seq, true
	}
	seq := g.head
	g.hist[seq&uint64(len(g.hist)-1)] = entry{block: b, prev: prevSeq, ok: havePrev}
	g.head++
	g.it[slot] = itEntry{tag: b, seq: seq, valid: true}

	// Sequential footprint spray: a discontinuity lands at the top of a
	// region whose body spans the following blocks — pull in the next
	// degree-1 lines behind the target. Large functions reward it; small
	// ones make it over-fetch. This is the degree knob's pollution
	// trade-off, exactly what a feedback governor throttles.
	for i := 1; i < g.cfg.Degree; i++ {
		if !g.issue(b + isa.Block(i)) {
			return
		}
	}
	if !havePrev {
		if nextLineFallback {
			// A history-less miss: next-line fallback covers the target
			// line's successor even at degree 1.
			g.issue(b + 1)
		}
		return
	}
	// Walk up to Width chained occurrences, most recent first, and
	// prefetch the degree blocks that followed each (skipping the first
	// lookahead-1 — they are already in the demand shadow).
	occ := prevSeq
	for w := 0; w < g.cfg.Width; w++ {
		for i := 0; i < g.cfg.Degree; i++ {
			s := occ + uint64(g.cfg.Lookahead) + uint64(i)
			if s >= seq || !g.inWindow(s) {
				break
			}
			t := g.hist[s&uint64(len(g.hist)-1)].block
			if t != b && !g.issue(t) {
				return
			}
		}
		e := g.hist[occ&uint64(len(g.hist)-1)]
		if !e.ok || e.block != b || !g.inWindow(e.prev) {
			break
		}
		occ = e.prev
	}
}

// inWindow reports whether seq still resides in the circular buffer.
func (g *GHB) inWindow(seq uint64) bool {
	return seq < g.head && g.head-seq <= uint64(len(g.hist))
}

// issue sends one block down the configured issue path; false means
// back-pressure (stop the burst).
func (g *GHB) issue(b isa.Block) bool {
	if g.m.PrefetchSpace() <= 0 {
		return false
	}
	if g.m.Resident(b) {
		return true
	}
	if g.cfg.RequireTLB {
		g.m.PrefetchMapped(b)
		return true
	}
	g.m.Prefetch(b)
	return true
}

// StorageBits prices the metadata: each GHB entry holds a 58-bit block,
// a log2(GHBEntries)-bit prev pointer and a valid bit; each index-table
// entry holds a 58-bit tag, a pointer and a valid bit.
func (g *GHB) StorageBits() int {
	ptr := log2(len(g.hist))
	return len(g.hist)*(58+ptr+1) + len(g.it)*(58+ptr+1)
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

var (
	_ prefetch.Prefetcher = (*GHB)(nil)
	_ prefetch.Tunable    = (*GHB)(nil)
)
