package ghb

import (
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/prefetch/prefetchtest"
)

// ev builds a retired-block event at block b.
func ev(b isa.Block) *isa.BlockEvent {
	return &isa.BlockEvent{Addr: isa.Addr(b) * 64}
}

// retire feeds a sequence of retired blocks.
func retire(g *GHB, blocks ...isa.Block) {
	for _, b := range blocks {
		g.OnRetire(ev(b))
	}
}

// TestSequentialAdvancesDoNotTrigger: straight-line fetch (same block or
// next block) is FDIP's job and must not reach the issue path.
func TestSequentialAdvancesDoNotTrigger(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	g := New(DefaultConfig(), m)
	retire(g, 1, 1, 2, 3, 4)
	if len(m.Issued) != 0 {
		t.Fatalf("sequential stream issued %v", m.Issued)
	}
}

// TestFootprintSpray: a discontinuity pulls in the next degree-1 lines
// behind the target even with no history.
func TestFootprintSpray(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	cfg := DefaultConfig()
	cfg.Degree = 4
	g := New(cfg, m)
	retire(g, 1, 2, 100) // jump 2 -> 100: discontinuity at 100
	want := []isa.Block{101, 102, 103}
	if len(m.Issued) != len(want) {
		t.Fatalf("issued %v, want %v", m.Issued, want)
	}
	for i, b := range want {
		if m.Issued[i] != b {
			t.Fatalf("issued %v, want %v", m.Issued, want)
		}
	}
}

// TestHistoryFollowing: a repeated discontinuity prefetches the blocks
// that followed its previous occurrence, offset by lookahead.
func TestHistoryFollowing(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	cfg := DefaultConfig()
	cfg.Degree = 2
	cfg.Lookahead = 1
	cfg.Width = 1
	g := New(cfg, m)
	// First pass: 100 -> 200 -> 300 (three discontinuities recorded).
	retire(g, 1, 100, 200, 300)
	m.Issued = nil
	// Re-entering 100 must replay its recorded successors 200, 300.
	retire(g, 1, 100)
	issued := m.IssuedSet()
	if !issued[200] || !issued[300] {
		t.Fatalf("history successors not prefetched: %v", m.Issued)
	}
}

// TestNextLineFallbackOnMiss: a history-less demand miss still covers
// the target's next line.
func TestNextLineFallbackOnMiss(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	cfg := DefaultConfig()
	cfg.Degree = 1 // no spray: isolates the fallback
	g := New(cfg, m)
	g.OnDemandMiss(500, 100)
	if len(m.Issued) != 1 || m.Issued[0] != 501 {
		t.Fatalf("issued %v, want [501]", m.Issued)
	}
}

// TestResidentBlocksSkipped: resident targets are filtered, not issued.
func TestResidentBlocksSkipped(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	cfg := DefaultConfig()
	cfg.Degree = 3
	g := New(cfg, m)
	m.ResidentV[101] = true
	retire(g, 1, 100)
	issued := m.IssuedSet()
	if issued[101] {
		t.Fatalf("resident block issued: %v", m.Issued)
	}
	if !issued[102] {
		t.Fatalf("non-resident block dropped: %v", m.Issued)
	}
}

// TestBackPressureStopsBurst: exhausted prefetch queue space ends the
// trigger's burst immediately.
func TestBackPressureStopsBurst(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	cfg := DefaultConfig()
	cfg.Degree = 8
	g := New(cfg, m)
	m.Space = 0
	retire(g, 1, 100)
	if len(m.Issued) != 0 {
		t.Fatalf("issued %v with no queue space", m.Issued)
	}
}

// TestTLBAwareDrops: the RequireTLB variant withholds prefetches to
// unmapped pages and issues mapped ones.
func TestTLBAwareDrops(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	cfg := DefaultConfig()
	cfg.Degree = 3
	cfg.RequireTLB = true
	g := New(cfg, m)
	if g.Name() != "GHB-TLB" {
		t.Fatalf("name %q", g.Name())
	}
	m.MappedV[uint64(isa.Block(101).Page())] = true
	// 102's page left unmapped; with 64-block pages 101 and 102 usually
	// share one, so force a far spray target instead.
	retire(g, 1, 100)
	if m.TLBDrops == 0 && len(m.Issued) == 0 {
		t.Fatal("TLB-aware variant neither issued nor dropped")
	}
	for _, b := range m.Issued {
		if !m.MappedV[uint64(b.Page())] {
			t.Fatalf("issued unmapped block %d", b)
		}
	}
}

// TestSetAggressivenessClamps: Tunable retargeting clamps to the
// supported ranges and takes effect on the next trigger.
func TestSetAggressivenessClamps(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	g := New(DefaultConfig(), m)
	g.SetAggressiveness(0, 0)
	if g.cfg.Degree != 1 || g.cfg.Lookahead != 1 {
		t.Fatalf("low clamp: %+v", g.cfg)
	}
	g.SetAggressiveness(1<<20, 1<<20)
	if g.cfg.Degree != maxDegree || g.cfg.Lookahead != maxLookahead {
		t.Fatalf("high clamp: %+v", g.cfg)
	}
	g.SetAggressiveness(6, 2)
	retire(g, 1, 100)
	if len(m.Issued) != 5 { // spray 101..105
		t.Fatalf("degree 6 sprayed %d blocks: %v", len(m.Issued), m.Issued)
	}
}

// TestStorageBitsScalesWithConfig: the metadata budget reflects the
// configured (power-of-two-rounded) sizes.
func TestStorageBitsScalesWithConfig(t *testing.T) {
	small := New(Config{GHBEntries: 512, ITEntries: 512}, prefetchtest.NewMockMachine())
	big := New(Config{GHBEntries: 4096, ITEntries: 4096}, prefetchtest.NewMockMachine())
	if small.StorageBits() >= big.StorageBits() {
		t.Fatalf("storage bits do not scale: %d vs %d", small.StorageBits(), big.StorageBits())
	}
	rounded := New(Config{GHBEntries: 600, ITEntries: 600}, prefetchtest.NewMockMachine())
	if len(rounded.hist) != 1024 || len(rounded.it) != 1024 {
		t.Fatalf("sizes not rounded to powers of two: %d/%d", len(rounded.hist), len(rounded.it))
	}
}

// TestStaleHistoryIgnored: an index-table hit whose occurrence has been
// overwritten in the circular history must not be followed.
func TestStaleHistoryIgnored(t *testing.T) {
	m := prefetchtest.NewMockMachine()
	cfg := DefaultConfig()
	cfg.GHBEntries = 4 // tiny window: entries age out fast
	cfg.ITEntries = 16
	cfg.Degree = 1
	cfg.Width = 1
	g := New(cfg, m)
	retire(g, 10, 100, 200, 300) // 100's occurrence soon evicted
	retire(g, 1, 400, 500, 600)  // overwrite the 4-deep window
	m.Issued = nil
	retire(g, 10, 100) // IT still maps 100, but its seq is stale
	for _, b := range m.Issued {
		if b == 200 || b == 300 {
			t.Fatalf("followed evicted history: %v", m.Issued)
		}
	}
}
