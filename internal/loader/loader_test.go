package loader

import (
	"testing"

	"hprefetch/internal/binfmt"
	"hprefetch/internal/isa"
	"hprefetch/internal/linker"
	"hprefetch/internal/program"
)

func linkedImage(t *testing.T) (*program.Program, *binfmt.Image) {
	t.Helper()
	cfg := program.DefaultConfig()
	cfg.Name = "load-test"
	cfg.Seed = 41
	cfg.OrphanFuncs = 100
	p, err := program.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := linker.Link(p, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, l.Image
}

func TestLoadRoundTrip(t *testing.T) {
	p, im := linkedImage(t)
	// Full fidelity path: marshal, unmarshal, load.
	back, err := binfmt.Unmarshal(im.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	ld, err := Load(back)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Prog.NumFuncs() != p.NumFuncs() {
		t.Fatal("function count changed across load")
	}
	if ld.Tags.Len() != len(im.Bundles.TaggedAddrs) {
		t.Fatalf("tag count %d != segment %d", ld.Tags.Len(), len(im.Bundles.TaggedAddrs))
	}
	for _, a := range im.Bundles.TaggedAddrs {
		if !ld.Tags.Contains(a) {
			t.Fatalf("tag %v lost in load", a)
		}
	}
	if ld.Threshold != im.Bundles.Threshold || len(ld.Entries) != len(im.Bundles.Entries) {
		t.Error("bundle metadata lost in load")
	}
}

func TestTagSetContains(t *testing.T) {
	s := NewTagSet([]isa.Addr{0x30, 0x10, 0x20})
	for _, a := range []isa.Addr{0x10, 0x20, 0x30} {
		if !s.Contains(a) {
			t.Errorf("missing %v", a)
		}
	}
	for _, a := range []isa.Addr{0x0, 0x11, 0x1F, 0x31, 0xFFFF} {
		if s.Contains(a) {
			t.Errorf("false positive at %v", a)
		}
	}
	var empty TagSet
	if empty.Contains(0x10) || empty.Len() != 0 {
		t.Error("zero-value TagSet misbehaves")
	}
}

func TestLoadRejectsUnlinked(t *testing.T) {
	cfg := program.DefaultConfig()
	cfg.Name = "unlinked"
	p, err := program.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(binfmt.FromProgram(p)); err == nil {
		t.Error("unlinked image loaded")
	}
}

func TestLoadRejectsBadTag(t *testing.T) {
	_, im := linkedImage(t)
	im.Bundles.TaggedAddrs = append(im.Bundles.TaggedAddrs, isa.Addr(0x1))
	if _, err := Load(im); err == nil {
		t.Error("tag outside text accepted")
	}
}

func TestLoadLinkedSharesProgram(t *testing.T) {
	p, im := linkedImage(t)
	ld := LoadLinked(p, im)
	if ld.Prog != p {
		t.Error("LoadLinked must share the program")
	}
	if ld.Tags.Len() == 0 {
		t.Error("LoadLinked lost tags")
	}
}

// TestLoadLinkedDegraded asserts the lenient path applies the perturb
// hook, drops out-of-function tags with a count, and never errors on a
// corrupted Bundle table.
func TestLoadLinkedDegraded(t *testing.T) {
	p, im := linkedImage(t)

	// Nil hook, clean table: identical to LoadLinked.
	ld := LoadLinkedDegraded(p, im, nil)
	if ld.TagDrops != 0 || ld.Tags.Len() != len(im.Bundles.TaggedAddrs) {
		t.Fatalf("clean degraded load dropped %d of %d tags", ld.TagDrops, len(im.Bundles.TaggedAddrs))
	}

	// Hook that shoves half the tags outside the text segment.
	rogue := isa.Addr(p.TextBase) + isa.Addr(p.TextSize) + 0x1000
	perturb := func(seg binfmt.BundleSegment) binfmt.BundleSegment {
		out := seg
		out.TaggedAddrs = append([]isa.Addr(nil), seg.TaggedAddrs...)
		for i := range out.TaggedAddrs {
			if i%2 == 0 {
				out.TaggedAddrs[i] = rogue
			}
		}
		return out
	}
	before := len(im.Bundles.TaggedAddrs)
	ld = LoadLinkedDegraded(p, im, perturb)
	want := (before + 1) / 2
	if ld.TagDrops != want {
		t.Errorf("TagDrops = %d, want %d", ld.TagDrops, want)
	}
	if ld.Tags.Len() != before-want {
		t.Errorf("kept %d tags, want %d", ld.Tags.Len(), before-want)
	}
	if ld.Tags.Contains(rogue) {
		t.Error("out-of-function tag survived the degraded load")
	}
	// The original image must be untouched (the hook copies).
	if len(im.Bundles.TaggedAddrs) != before {
		t.Error("perturbation leaked into the source image")
	}

	// The strict path still refuses the same corruption.
	im2 := *im
	im2.Bundles = perturb(im.Bundles)
	if _, err := Load(&im2); err == nil {
		t.Error("strict Load accepted an out-of-function tag")
	}
}
