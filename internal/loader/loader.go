// Package loader models the application-loading step of the paper's
// pipeline (§5.2): it consumes a linked binary image, reconstructs the
// runnable program, and applies the .bundles segment by "setting the
// reserved bit" on the flagged call/return instructions — realised here as
// a TagSet the execution engine consults when emitting those instructions.
package loader

import (
	"fmt"
	"sort"

	"hprefetch/internal/binfmt"
	"hprefetch/internal/isa"
	"hprefetch/internal/program"
)

// TagSet is the set of tagged instruction addresses, queryable in
// O(log n). The zero value is an empty set.
type TagSet struct {
	addrs []isa.Addr // sorted ascending
}

// NewTagSet builds a set from addresses (copied and sorted).
func NewTagSet(addrs []isa.Addr) *TagSet {
	s := &TagSet{addrs: append([]isa.Addr(nil), addrs...)}
	sort.Slice(s.addrs, func(i, j int) bool { return s.addrs[i] < s.addrs[j] })
	return s
}

// Contains reports whether addr carries the Bundle-entry tag.
func (s *TagSet) Contains(addr isa.Addr) bool {
	lo, hi := 0, len(s.addrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.addrs[mid] < addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.addrs) && s.addrs[lo] == addr
}

// Len returns the number of tagged instructions.
func (s *TagSet) Len() int { return len(s.addrs) }

// Loaded is a program ready for execution.
type Loaded struct {
	// Prog is the linked program.
	Prog *program.Program
	// Tags holds the tagged call/return instruction addresses.
	Tags *TagSet
	// Entries lists the Bundle entry functions from the image.
	Entries []isa.FuncID
	// Threshold echoes the link-time divergence threshold.
	Threshold uint64
	// TagDrops counts tagged addresses the loader discarded because
	// they fell outside any function (degraded-mode loads only; the
	// strict Load path errors instead).
	TagDrops int
}

// Load reconstructs and validates a runnable program from a linked image.
func Load(im *binfmt.Image) (*Loaded, error) {
	if im.TextSize == 0 {
		return nil, fmt.Errorf("loader: image %q is not linked", im.Name)
	}
	p := im.Program()
	if int(im.Entry) >= p.NumFuncs() {
		return nil, fmt.Errorf("loader: entry %d out of range", im.Entry)
	}
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if f.Addr < p.TextBase || uint64(f.Addr)+uint64(f.Size) > uint64(p.TextBase)+p.TextSize {
			return nil, fmt.Errorf("loader: function %d outside text segment", i)
		}
		for _, c := range f.Calls {
			if c.Indirect() {
				if int(c.Targets) >= len(p.TargetSets) {
					return nil, fmt.Errorf("loader: function %d has dangling target set %d", i, c.Targets)
				}
			} else if int(c.Callee) >= p.NumFuncs() {
				return nil, fmt.Errorf("loader: function %d has dangling callee %d", i, c.Callee)
			}
		}
	}
	for _, a := range im.Bundles.TaggedAddrs {
		if _, ok := p.FuncAt(a); !ok {
			return nil, fmt.Errorf("loader: tagged address %v outside any function", a)
		}
	}
	return &Loaded{
		Prog:      p,
		Tags:      NewTagSet(im.Bundles.TaggedAddrs),
		Entries:   append([]isa.FuncID(nil), im.Bundles.Entries...),
		Threshold: im.Bundles.Threshold,
	}, nil
}

// LoadLinked is a convenience for the common in-process path: it skips
// the image round-trip and loads directly from a linker result, sharing
// the already-linked program.
func LoadLinked(prog *program.Program, im *binfmt.Image) *Loaded {
	return &Loaded{
		Prog:      prog,
		Tags:      NewTagSet(im.Bundles.TaggedAddrs),
		Entries:   append([]isa.FuncID(nil), im.Bundles.Entries...),
		Threshold: im.Bundles.Threshold,
	}
}

// PerturbFn mutates a copy of the .bundles segment before the loader
// applies it — the injection point for fault experiments. It must not
// retain or modify its argument's backing arrays.
type PerturbFn func(binfmt.BundleSegment) binfmt.BundleSegment

// LoadLinkedDegraded is LoadLinked with a perturbation hook and lenient
// validation: the segment is first passed through perturb (nil = as
// is), then tagged addresses that land outside any function — the
// signature of a stale or corrupted Bundle table — are dropped and
// counted in TagDrops instead of failing the load. This models what a
// production loader must do: a binary whose prefetch metadata is bad
// still has to run, just without the bad hints.
func LoadLinkedDegraded(prog *program.Program, im *binfmt.Image, perturb PerturbFn) *Loaded {
	seg := im.Bundles
	if perturb != nil {
		seg = perturb(seg)
	}
	tags := seg.TaggedAddrs
	drops := 0
	kept := make([]isa.Addr, 0, len(tags))
	for _, a := range tags {
		if _, ok := prog.FuncAt(a); ok {
			kept = append(kept, a)
		} else {
			drops++
		}
	}
	return &Loaded{
		Prog:      prog,
		Tags:      NewTagSet(kept),
		Entries:   append([]isa.FuncID(nil), seg.Entries...),
		Threshold: seg.Threshold,
		TagDrops:  drops,
	}
}
