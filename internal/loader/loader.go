// Package loader models the application-loading step of the paper's
// pipeline (§5.2): it consumes a linked binary image, reconstructs the
// runnable program, and applies the .bundles segment by "setting the
// reserved bit" on the flagged call/return instructions — realised here as
// a TagSet the execution engine consults when emitting those instructions.
package loader

import (
	"fmt"
	"sort"

	"hprefetch/internal/binfmt"
	"hprefetch/internal/isa"
	"hprefetch/internal/program"
)

// TagSet is the set of tagged instruction addresses, queryable in
// O(log n). The zero value is an empty set.
type TagSet struct {
	addrs []isa.Addr // sorted ascending
}

// NewTagSet builds a set from addresses (copied and sorted).
func NewTagSet(addrs []isa.Addr) *TagSet {
	s := &TagSet{addrs: append([]isa.Addr(nil), addrs...)}
	sort.Slice(s.addrs, func(i, j int) bool { return s.addrs[i] < s.addrs[j] })
	return s
}

// Contains reports whether addr carries the Bundle-entry tag.
func (s *TagSet) Contains(addr isa.Addr) bool {
	lo, hi := 0, len(s.addrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.addrs[mid] < addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.addrs) && s.addrs[lo] == addr
}

// Len returns the number of tagged instructions.
func (s *TagSet) Len() int { return len(s.addrs) }

// Loaded is a program ready for execution.
type Loaded struct {
	// Prog is the linked program.
	Prog *program.Program
	// Tags holds the tagged call/return instruction addresses.
	Tags *TagSet
	// Entries lists the Bundle entry functions from the image.
	Entries []isa.FuncID
	// Threshold echoes the link-time divergence threshold.
	Threshold uint64
}

// Load reconstructs and validates a runnable program from a linked image.
func Load(im *binfmt.Image) (*Loaded, error) {
	if im.TextSize == 0 {
		return nil, fmt.Errorf("loader: image %q is not linked", im.Name)
	}
	p := im.Program()
	if int(im.Entry) >= p.NumFuncs() {
		return nil, fmt.Errorf("loader: entry %d out of range", im.Entry)
	}
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if f.Addr < p.TextBase || uint64(f.Addr)+uint64(f.Size) > uint64(p.TextBase)+p.TextSize {
			return nil, fmt.Errorf("loader: function %d outside text segment", i)
		}
		for _, c := range f.Calls {
			if c.Indirect() {
				if int(c.Targets) >= len(p.TargetSets) {
					return nil, fmt.Errorf("loader: function %d has dangling target set %d", i, c.Targets)
				}
			} else if int(c.Callee) >= p.NumFuncs() {
				return nil, fmt.Errorf("loader: function %d has dangling callee %d", i, c.Callee)
			}
		}
	}
	for _, a := range im.Bundles.TaggedAddrs {
		if _, ok := p.FuncAt(a); !ok {
			return nil, fmt.Errorf("loader: tagged address %v outside any function", a)
		}
	}
	return &Loaded{
		Prog:      p,
		Tags:      NewTagSet(im.Bundles.TaggedAddrs),
		Entries:   append([]isa.FuncID(nil), im.Bundles.Entries...),
		Threshold: im.Bundles.Threshold,
	}, nil
}

// LoadLinked is a convenience for the common in-process path: it skips
// the image round-trip and loads directly from a linker result, sharing
// the already-linked program.
func LoadLinked(prog *program.Program, im *binfmt.Image) *Loaded {
	return &Loaded{
		Prog:      prog,
		Tags:      NewTagSet(im.Bundles.TaggedAddrs),
		Entries:   append([]isa.FuncID(nil), im.Bundles.Entries...),
		Threshold: im.Bundles.Threshold,
	}
}
