// Package trace is the execution engine: it interprets a loaded synthetic
// program, driving it with a stream of typed requests, and emits the
// retired instruction stream as per-cache-block fetch events
// (isa.BlockEvent). The stream is deterministic for a given (program,
// seed) pair. The engine is the stand-in for gem5's full-system execution
// in the paper's methodology (§6.1): everything the front-end simulator
// and the prefetchers consume — fetch addresses, branch outcomes, call and
// return targets, Bundle entry tags at commit — is in this stream.
package trace

import (
	"hprefetch/internal/isa"
	"hprefetch/internal/loader"
	"hprefetch/internal/program"
	"hprefetch/internal/xrand"
)

// maxCallDepth bounds the simulated call stack. Hot call edges are
// acyclic by construction, so this is a safety net, not a policy.
const maxCallDepth = 192

// frame is one simulated call-stack entry.
type frame struct {
	fn    isa.FuncID
	base  isa.Addr
	items []program.Item
	idx   int // current body item

	// Per-item progress.
	loopLeft  uint32 // remaining LoopRun iterations (0 = not started)
	callLeft  uint32 // remaining call iterations
	polyPhase uint32 // random rotation phase for polymorphic targets
	inCall    bool   // the current ItemCall has started

	retTo isa.Addr // where this frame's return lands in the caller
	stage int16    // effective stage (inherited when the function has none)
}

// Engine interprets the program and produces the block-event stream.
type Engine struct {
	prog *program.Program
	tags *loader.TagSet
	rng  *xrand.RNG

	bodies  map[isa.FuncID][]program.Item
	typeCum []float64

	stack []frame

	// Emitter state: the span of straight-line code not yet emitted.
	runStart isa.Addr
	runEnd   isa.Addr

	queue []isa.BlockEvent
	qHead int

	curType  int
	requests uint64
	instrs   uint64

	// Per-request boundary marks, sampled per returned event: curReq is
	// the id (0-based, contiguous) of the request the most recently
	// returned event belongs to, curDone whether that event completed it.
	curReq  uint64
	curDone bool
}

// New creates an engine over a loaded program. Seed separates the dynamic
// request/branch randomness from the program's structural seed.
func New(ld *loader.Loaded, seed uint64) *Engine {
	e := &Engine{
		prog:    ld.Prog,
		tags:    ld.Tags,
		rng:     xrand.New(xrand.Mix(ld.Prog.Seed, seed, 0xE4EC)),
		bodies:  make(map[isa.FuncID][]program.Item),
		typeCum: xrand.Cumulative(ld.Prog.TypeWeights),
	}
	e.startRequest()
	return e
}

// Requests returns how many requests have been started so far.
func (e *Engine) Requests() uint64 { return e.requests }

// CurrentType returns the request type being processed.
func (e *Engine) CurrentType() int { return e.curType }

// Instructions returns the total instructions emitted so far.
func (e *Engine) Instructions() uint64 { return e.instrs }

// Depth returns the current simulated call-stack depth. The engine caps
// it at maxCallDepth: deeper call edges are skipped, not executed.
func (e *Engine) Depth() int { return len(e.stack) }

// Next returns the next retired block event. The stream is unbounded:
// the request loop restarts forever.
func (e *Engine) Next() isa.BlockEvent {
	for e.qHead >= len(e.queue) {
		e.queue = e.queue[:0]
		e.qHead = 0
		e.step()
	}
	ev := e.queue[e.qHead]
	e.qHead++
	e.instrs += uint64(ev.NumInstr)
	// Request ids advance one event late: step() has already started the
	// next request internally by the time the completing jump is returned,
	// so the flip is deferred until the event after it.
	if e.curDone {
		e.curReq++
		e.curDone = false
	}
	if ev.Branch == isa.BrJump && ev.Func == e.prog.Entry {
		e.curDone = true
	}
	return ev
}

// CurrentRequest returns the id of the request the most recently
// returned event belongs to. Ids are 0-based and contiguous.
func (e *Engine) CurrentRequest() uint64 { return e.curReq }

// RequestDone reports whether the most recently returned event was the
// final event of its request (the jump back to the request loop).
func (e *Engine) RequestDone() bool { return e.curDone }

// body returns the (cached) expanded body of a function.
func (e *Engine) body(id isa.FuncID) []program.Item {
	if b, ok := e.bodies[id]; ok {
		return b
	}
	b := program.Body(e.prog.Func(id))
	e.bodies[id] = b
	return b
}

// startRequest (re)enters the request loop root with a fresh request type.
func (e *Engine) startRequest() {
	e.curType = e.rng.WeightedChoice(e.typeCum)
	e.requests++
	root := e.prog.Entry
	f := e.prog.Func(root)
	e.stack = e.stack[:0]
	e.stack = append(e.stack, frame{
		fn:    root,
		base:  f.Addr,
		items: e.body(root),
		stage: program.NoStage,
	})
	e.runStart = f.Addr
	e.runEnd = f.Addr
}

// top returns the active frame.
func (e *Engine) top() *frame { return &e.stack[len(e.stack)-1] }

// step advances the interpreter until at least one event is queued.
func (e *Engine) step() {
	for len(e.queue) == 0 {
		fr := e.top()
		it := &fr.items[fr.idx]
		abs := fr.base + isa.Addr(it.Off)
		switch it.Kind {
		case program.ItemRun:
			e.runEnd += isa.Addr(it.Bytes)
			fr.idx++

		case program.ItemCondRun:
			// Branch at abs guards the run [abs+4, abs+Bytes).
			if e.rng.FixedBool(it.Bias) {
				// Execute the body: branch falls through.
				e.emitBranch(abs, isa.BrCond, false, abs+isa.InstrSize, false, fr.fn)
				e.runEnd += isa.Addr(it.Bytes) - isa.InstrSize
			} else {
				// Skip: branch taken over the body.
				e.emitBranch(abs, isa.BrCond, true, abs+isa.Addr(it.Bytes), false, fr.fn)
			}
			fr.idx++

		case program.ItemLoopRun:
			// Run [abs, abs+Bytes) with the backedge in the last slot.
			// Trip counts are fixed per site (see program.Body), so
			// history-based direction predictors can learn the exits.
			if fr.loopLeft == 0 {
				fr.loopLeft = it.Arg
			}
			e.runEnd += isa.Addr(it.Bytes) - isa.InstrSize
			backedge := abs + isa.Addr(it.Bytes) - isa.InstrSize
			fr.loopLeft--
			if fr.loopLeft > 0 {
				e.emitBranch(backedge, isa.BrCond, true, abs, false, fr.fn)
			} else {
				e.emitBranch(backedge, isa.BrCond, false, abs+isa.Addr(it.Bytes), false, fr.fn)
				fr.idx++
			}

		case program.ItemCall:
			e.stepCall(fr, it, abs)

		case program.ItemRet:
			retAddr := abs
			tagged := e.tags.Contains(retAddr)
			if len(e.stack) == 1 {
				// The request loop bottoms out: jump back to the top
				// and start the next request.
				entry := e.prog.Func(e.prog.Entry).Addr
				e.emitBranch(retAddr, isa.BrJump, true, entry, false, fr.fn)
				e.startRequest()
				return
			}
			target := fr.retTo
			fn := fr.fn
			e.emitBranch(retAddr, isa.BrRet, true, target, tagged, fn)
			e.stack = e.stack[:len(e.stack)-1]
		}
	}
}

// stepCall handles the call-region state machine: guard branch, call(s),
// repeat backedge, and the trailing slot.
func (e *Engine) stepCall(fr *frame, it *program.Item, abs isa.Addr) {
	f := e.prog.Func(fr.fn)
	c := &f.Calls[it.Arg]
	callPC := abs + program.CallInstrOff
	slotPC := abs + 2*isa.InstrSize
	regionEnd := abs + program.CallRegionBytes

	if !fr.inCall {
		// Decide whether and how often the call executes.
		reps := uint32(0)
		if e.rng.FixedBool(c.Prob) && len(e.stack) < maxCallDepth {
			reps = uint32(c.Repeat)
			if c.Repeat > 1 && !c.Indirect() && e.rng.Bool(0.10) {
				// Occasional data-dependent trip-count jitter on direct
				// repeated calls; polymorphic sites keep their counts so
				// the per-visit target union stays complete.
				reps = uint32(e.rng.Range(1, int(c.Repeat)*2-1))
			}
		}
		if reps == 0 {
			// Guard branch skips the whole region.
			e.emitBranch(abs, isa.BrCond, true, regionEnd, false, fr.fn)
			fr.idx++
			return
		}
		e.emitBranch(abs, isa.BrCond, false, callPC, false, fr.fn)
		fr.inCall = true
		fr.callLeft = reps
		fr.polyPhase = uint32(e.rng.Uint64())
		e.invoke(fr, c, callPC, slotPC)
		return
	}

	// Returned from an iteration of this call.
	fr.callLeft--
	if fr.callLeft > 0 {
		// Backedge re-invokes the callee.
		e.emitBranch(slotPC, isa.BrCond, true, callPC, false, fr.fn)
		e.invoke(fr, c, callPC, slotPC)
		return
	}
	fr.inCall = false
	if c.Repeat > 1 {
		// The final not-taken backedge.
		e.emitBranch(slotPC, isa.BrCond, false, regionEnd, false, fr.fn)
	} else {
		// The slot is a plain instruction; fold it into the run.
		e.runEnd = regionEnd
	}
	fr.idx++
}

// invoke emits the call branch and pushes the callee frame. The return
// target is the slot instruction after the call.
func (e *Engine) invoke(fr *frame, c *program.Call, callPC, retTo isa.Addr) {
	callee := c.Callee
	kind := isa.BrCall
	if c.Indirect() {
		kind = isa.BrIndCall
		ts := &e.prog.TargetSets[c.Targets]
		if ts.ByType {
			callee = ts.Funcs[e.curType%len(ts.Funcs)]
		} else {
			// Polymorphic sites rotate through their targets from a
			// random per-visit phase: the invocation-order is
			// unpredictable to sequence predictors, but one visit's
			// union covers the whole set.
			idx := (fr.polyPhase + fr.callLeft) % uint32(len(ts.Funcs))
			callee = ts.Funcs[idx]
		}
	}
	cf := e.prog.Func(callee)
	tagged := e.tags.Contains(callPC)
	e.emitBranch(callPC, kind, true, cf.Addr, tagged, fr.fn)
	stage := cf.Stage
	if stage == program.NoStage {
		stage = fr.stage
	}
	e.stack = append(e.stack, frame{
		fn:    callee,
		base:  cf.Addr,
		items: e.body(callee),
		retTo: retTo,
		stage: stage,
	})
}

// Stage returns the effective pipeline stage of the innermost frame
// (libraries inherit their caller's stage), or program.NoStage at the
// request loop itself. Valid between Next calls; instrumentation that
// needs per-event stages should sample after each event.
func (e *Engine) Stage() int16 {
	if len(e.stack) == 0 {
		return program.NoStage
	}
	return e.top().stage
}

// emitBranch flushes the pending straight-line run, terminated by the
// branch instruction at brPC, and retargets the emitter to the branch
// target. The run must end exactly at brPC.
func (e *Engine) emitBranch(brPC isa.Addr, kind isa.BranchKind, taken bool, target isa.Addr, tagged bool, fn isa.FuncID) {
	end := brPC + isa.InstrSize
	start := e.runStart
	// Split [start, end) at cache-block boundaries; only the final
	// region carries the branch.
	for start < end {
		blockEnd := (start + isa.BlockSize) &^ (isa.BlockSize - 1)
		regionEnd := blockEnd
		if regionEnd > end {
			regionEnd = end
		}
		ev := isa.BlockEvent{
			Addr:     start,
			NumInstr: uint16((regionEnd - start) / isa.InstrSize),
			Func:     fn,
			Branch:   isa.BrNone,
			Target:   regionEnd,
		}
		if regionEnd == end {
			ev.Branch = kind
			ev.Taken = taken
			ev.BrPC = brPC
			ev.Target = target
			ev.Tagged = tagged
		}
		e.queue = append(e.queue, ev)
		start = regionEnd
	}
	e.runStart = target
	e.runEnd = target
}
