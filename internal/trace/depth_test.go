package trace

import (
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/loader"
	"hprefetch/internal/program"
)

// recursiveProgram hand-builds a linked two-function program whose
// second function always calls itself: entry → f1 → f1 → ... The hot
// call graph of generated programs is acyclic, so unbounded recursion
// can only come from a hostile or corrupted image — exactly what the
// maxCallDepth safety net exists for.
func recursiveProgram() *program.Program {
	const base = isa.Addr(0x400000)
	p := &program.Program{
		Name:         "recursion",
		Seed:         99,
		Entry:        0,
		TextBase:     base,
		TextSize:     64,
		RequestTypes: 1,
		TypeWeights:  []float64{1},
		Funcs: []program.Function{
			{ // entry: always calls f1 once, then returns (loops forever).
				Addr: base, Size: 32, Seed: 1, Stage: program.NoStage,
				Calls: []program.Call{{Off: 8, Callee: 1, Prob: 0xFFFF, Repeat: 1}},
			},
			{ // f1: always calls itself.
				Addr: base + 32, Size: 32, Seed: 2, Stage: program.NoStage,
				Calls: []program.Call{{Off: 4, Callee: 1, Prob: 0xFFFF, Repeat: 1}},
			},
		},
	}
	p.BuildAddrIndex()
	return p
}

// TestCallDepthSafetyNet drives unbounded recursion into the engine and
// asserts the safety net holds: depth never exceeds maxCallDepth, the
// cap is actually reached (the test exercises the boundary), and the
// event stream keeps flowing — the recursion unwinds and the request
// loop restarts instead of the engine hanging or overflowing.
func TestCallDepthSafetyNet(t *testing.T) {
	ld := &loader.Loaded{Prog: recursiveProgram(), Tags: loader.NewTagSet(nil)}
	e := New(ld, 7)

	maxSeen := 0
	for i := 0; i < 400_000; i++ {
		ev := e.Next()
		if d := e.Depth(); d > maxSeen {
			maxSeen = d
		}
		if e.Depth() > maxCallDepth {
			t.Fatalf("event %d: depth %d exceeds maxCallDepth %d", i, e.Depth(), maxCallDepth)
		}
		if ev.NumInstr == 0 {
			t.Fatalf("event %d: empty block event", i)
		}
	}
	if maxSeen != maxCallDepth {
		t.Errorf("max depth %d, want the cap %d to be reached", maxSeen, maxCallDepth)
	}
	if e.Requests() < 2 {
		t.Errorf("requests = %d: stream did not continue past the recursion cap", e.Requests())
	}
	if e.Instructions() == 0 {
		t.Error("no instructions emitted")
	}
}
