package trace

import (
	"testing"

	"hprefetch/internal/isa"
	"hprefetch/internal/linker"
	"hprefetch/internal/loader"
	"hprefetch/internal/program"
)

func loadTest(t *testing.T, seed uint64) *loader.Loaded {
	t.Helper()
	cfg := program.DefaultConfig()
	cfg.Name = "trace-test"
	cfg.Seed = seed
	cfg.OrphanFuncs = 100
	p, err := program.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := linker.Link(p, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return loader.LoadLinked(p, l.Image)
}

func TestStreamContiguity(t *testing.T) {
	ld := loadTest(t, 51)
	e := New(ld, 1)
	prev := e.Next()
	for i := 0; i < 200000; i++ {
		ev := e.Next()
		if prev.Target != ev.Addr {
			t.Fatalf("event %d: previous target %v != addr %v", i, prev.Target, ev.Addr)
		}
		if ev.NumInstr == 0 {
			t.Fatalf("event %d: empty region", i)
		}
		if ev.Addr.Block() != (ev.EndAddr() - 1).Block() {
			t.Fatalf("event %d: region %v+%d spans blocks", i, ev.Addr, ev.NumInstr)
		}
		if ev.Branch == isa.BrNone && ev.Target != ev.EndAddr() {
			t.Fatalf("event %d: sequential region with non-sequential target", i)
		}
		if ev.Branch != isa.BrNone && ev.BrPC != ev.EndAddr()-isa.InstrSize {
			t.Fatalf("event %d: branch PC %v not at region end %v", i, ev.BrPC, ev.EndAddr())
		}
		prev = ev
	}
}

func TestEventsStayInsideFunctions(t *testing.T) {
	ld := loadTest(t, 52)
	e := New(ld, 1)
	for i := 0; i < 100000; i++ {
		ev := e.Next()
		id, ok := ld.Prog.FuncAt(ev.Addr)
		if !ok {
			t.Fatalf("event %d at %v outside text", i, ev.Addr)
		}
		if id != ev.Func {
			t.Fatalf("event %d at %v attributed to func %d, layout says %d", i, ev.Addr, ev.Func, id)
		}
		end := ev.EndAddr() - 1
		if id2, ok := ld.Prog.FuncAt(end); !ok || id2 != id {
			t.Fatalf("event %d spans functions", i)
		}
	}
}

func TestTaggedOnlyOnCallRet(t *testing.T) {
	ld := loadTest(t, 53)
	e := New(ld, 1)
	taggedSeen := 0
	for i := 0; i < 300000; i++ {
		ev := e.Next()
		if ev.Tagged {
			taggedSeen++
			if !ev.Branch.IsCall() && ev.Branch != isa.BrRet {
				t.Fatalf("tagged event with branch kind %v", ev.Branch)
			}
			if !ld.Tags.Contains(ev.BrPC) {
				t.Fatalf("event tagged but %v not in tag set", ev.BrPC)
			}
		}
	}
	if taggedSeen == 0 {
		t.Error("no tagged instructions in 300k events; bundle tags never fire")
	}
}

func TestDeterminism(t *testing.T) {
	ld1 := loadTest(t, 54)
	ld2 := loadTest(t, 54)
	a, b := New(ld1, 9), New(ld2, 9)
	for i := 0; i < 100000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at event %d", i)
		}
	}
	// Different dynamic seeds must diverge quickly.
	c := New(ld1, 10)
	d := New(ld1, 11)
	same := 0
	for i := 0; i < 10000; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same == 10000 {
		t.Error("different seeds produced identical streams")
	}
}

func TestRequestsProgress(t *testing.T) {
	ld := loadTest(t, 55)
	e := New(ld, 1)
	for i := 0; i < 500000; i++ {
		e.Next()
	}
	if e.Requests() < 3 {
		t.Fatalf("only %d requests in 500k events", e.Requests())
	}
	if e.Instructions() == 0 {
		t.Error("instruction counter stuck")
	}
}

func TestRequestTypeMixRoughlyZipf(t *testing.T) {
	ld := loadTest(t, 56)
	e := New(ld, 2)
	counts := make([]int, ld.Prog.RequestTypes)
	lastReq := uint64(0)
	for i := 0; i < 3000000 && e.Requests() < 300; i++ {
		e.Next()
		if e.Requests() != lastReq {
			lastReq = e.Requests()
			counts[e.CurrentType()]++
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total < 100 {
		t.Skipf("only %d requests completed", total)
	}
	// Type 0 has the largest weight; it must be the most frequent.
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[0]*2 {
			t.Errorf("type %d count %d dwarfs type 0 count %d despite Zipf mix",
				i, counts[i], counts[0])
		}
	}
}

func TestColdCodeNeverExecutes(t *testing.T) {
	ld := loadTest(t, 57)
	e := New(ld, 1)
	for i := 0; i < 300000; i++ {
		ev := e.Next()
		if ld.Prog.Func(ev.Func).Kind == program.KindCold {
			t.Fatalf("cold function %d executed", ev.Func)
		}
	}
}

func TestStageTracking(t *testing.T) {
	ld := loadTest(t, 58)
	e := New(ld, 1)
	seen := map[int16]bool{}
	for i := 0; i < 400000; i++ {
		e.Next()
		seen[e.Stage()] = true
	}
	for s := range ld.Prog.Stages {
		if !seen[int16(s)] {
			t.Errorf("stage %d never active in 400k events", s)
		}
	}
}

func TestCallReturnBalance(t *testing.T) {
	ld := loadTest(t, 59)
	e := New(ld, 1)
	depth := 0
	maxDepth := 0
	for i := 0; i < 500000; i++ {
		ev := e.Next()
		switch {
		case ev.Branch.IsCall():
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		case ev.Branch == isa.BrRet:
			depth--
			if depth < 0 {
				t.Fatalf("return without call at event %d", i)
			}
		case ev.Branch == isa.BrJump:
			if depth != 0 {
				t.Fatalf("request restart at depth %d", depth)
			}
		}
	}
	if maxDepth < 4 {
		t.Errorf("max call depth only %d; call trees too shallow", maxDepth)
	}
	if maxDepth >= maxCallDepth {
		t.Errorf("call depth hit the safety limit %d", maxDepth)
	}
}

func BenchmarkEngineNext(b *testing.B) {
	cfg := program.DefaultConfig()
	cfg.Name = "trace-bench"
	cfg.Seed = 60
	p, err := program.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	l, err := linker.Link(p, linker.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := New(loader.LoadLinked(p, l.Image), 1)
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		ev := e.Next()
		instr += uint64(ev.NumInstr)
	}
	b.ReportMetric(float64(instr)/float64(b.N), "instr/event")
}
