package hprefetch_test

import (
	"fmt"

	"hprefetch"
)

// ExampleAnalyzeWorkload runs the static, link-time half of Hierarchical
// Prefetching — call-graph construction and Algorithm 1 — on one of the
// paper's workloads, without any simulation.
func ExampleAnalyzeWorkload() {
	r, err := hprefetch.AnalyzeWorkload("gin")
	if err != nil {
		panic(err)
	}
	fmt.Printf("threshold: %dKB\n", r.ThresholdBytes>>10)
	fmt.Printf("entries found: %v\n", r.Entries > 100)
	fmt.Printf("tags cover entries: %v\n", r.TaggedInstructions >= r.Entries)
	// Output:
	// threshold: 200KB
	// entries found: true
	// tags cover entries: true
}

// ExampleSimulate measures one workload under the Hierarchical
// Prefetcher with a short smoke-test budget.
func ExampleSimulate() {
	st, err := hprefetch.Simulate("gin", hprefetch.Hierarchical, &hprefetch.Options{
		WarmInstructions:    500_000,
		MeasureInstructions: 500_000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("simulated at least the requested instructions: %v\n", st.Instructions >= 500_000)
	fmt.Printf("positive IPC: %v\n", st.IPC > 0)
	// Output:
	// simulated at least the requested instructions: true
	// positive IPC: true
}

// ExampleWorkloads lists the paper's benchmark suite.
func ExampleWorkloads() {
	for _, w := range hprefetch.Workloads()[:3] {
		fmt.Println(w)
	}
	// Output:
	// beego
	// caddy
	// dgraph
}
