// Bundle analysis across every workload: the static, link-time half of
// Hierarchical Prefetching (call-graph construction, reachable sizes,
// Algorithm 1) without any simulation — the Table 4 static columns.
//
//	go run ./examples/bundle-analysis
package main

import (
	"fmt"
	"log"

	"hprefetch"
)

func main() {
	fmt.Println("link-time Bundle identification (divergence threshold 200KB)")
	fmt.Printf("%-16s %12s %10s %9s %11s\n", "workload", "functions", "bundles", "bundle%", "tagged")
	var totalFuncs, totalEntries int
	for _, name := range hprefetch.Workloads() {
		r, err := hprefetch.AnalyzeWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		totalFuncs += r.TotalFunctions
		totalEntries += r.Entries
		fmt.Printf("%-16s %12d %10d %8.2f%% %11d\n",
			name, r.TotalFunctions, r.Entries, r.EntryFraction*100, r.TaggedInstructions)
	}
	fmt.Printf("%-16s %12d %10d %8.2f%%\n", "TOTAL", totalFuncs, totalEntries,
		100*float64(totalEntries)/float64(totalFuncs))
	fmt.Println("\npaper (Table 4): 2.3-6.1% of functions per binary, 3.67% on average")
}
