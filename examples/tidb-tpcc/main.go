// The paper's motivating scenario (Figure 1): TiDB processing a TPC-C
// mix. This example prints the per-stage instruction footprints that
// motivate Bundle-granularity prefetching, then shows what each
// prefetcher achieves on this workload.
//
//	go run ./examples/tidb-tpcc
package main

import (
	"fmt"
	"log"
	"os"

	"hprefetch"
)

func main() {
	opt := &hprefetch.Options{
		Workloads:           []string{"tidb-tpcc"},
		WarmInstructions:    2_000_000,
		MeasureInstructions: 5_000_000,
	}

	fig1, err := hprefetch.RunExperiment("fig1", opt)
	if err != nil {
		log.Fatal(err)
	}
	fig1.Fprint(os.Stdout)

	report, err := hprefetch.AnalyzeWorkload("tidb-tpcc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static analysis: %d of %d functions are Bundle entries (%.2f%%), %d tagged instructions\n\n",
		report.Entries, report.TotalFunctions, report.EntryFraction*100, report.TaggedInstructions)

	fmt.Println("prefetcher comparison on tidb-tpcc:")
	for _, s := range hprefetch.Schemes() {
		st, err := hprefetch.Simulate("tidb-tpcc", s, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s IPC %.3f  (%+.1f%%)\n", s, st.IPC, st.SpeedupOverFDIP*100)
	}
}
