// Prefetcher shoot-out: every scheme across a web workload, an OLTP
// workload and a graph database — the Figure 9 story in miniature, with
// the per-scheme coverage/timeliness detail of Table 2 and Figure 10.
//
//	go run ./examples/prefetcher-compare
package main

import (
	"fmt"
	"log"

	"hprefetch"
)

func main() {
	opt := &hprefetch.Options{
		WarmInstructions:    2_000_000,
		MeasureInstructions: 4_000_000,
	}
	workloadSet := []string{"gin", "mysql-sysbench", "dgraph"}

	for _, w := range workloadSet {
		fmt.Printf("== %s ==\n", w)
		fmt.Printf("  %-13s %7s %9s %7s %7s %7s %7s %8s\n",
			"scheme", "IPC", "speedup", "acc", "covL1", "covL2", "late", "dist")
		for _, s := range hprefetch.Schemes() {
			st, err := hprefetch.Simulate(w, s, opt)
			if err != nil {
				log.Fatal(err)
			}
			if s == hprefetch.FDIP {
				fmt.Printf("  %-13s %7.3f %9s\n", s, st.IPC, "—")
				continue
			}
			fmt.Printf("  %-13s %7.3f %+8.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %8.1f\n",
				s, st.IPC, st.SpeedupOverFDIP*100,
				st.PrefetchAccuracy*100, st.CoverageL1*100, st.CoverageL2*100,
				st.LateFraction*100, st.AvgPrefetchDistance)
		}
		perfect, err := hprefetch.Simulate(w, hprefetch.PerfectL1I, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s %7.3f %+8.1f%%\n\n", "PerfectL1I", perfect.IPC, perfect.SpeedupOverFDIP*100)
	}
}
