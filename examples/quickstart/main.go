// Quickstart: simulate one server workload under the FDIP baseline and
// under Hierarchical Prefetching, and print the headline comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hprefetch"
)

func main() {
	opt := &hprefetch.Options{
		WarmInstructions:    2_000_000,
		MeasureInstructions: 4_000_000,
	}
	const workload = "tidb-tpcc"

	fmt.Println("simulated machine:", hprefetch.MachineDescription())
	fmt.Printf("workload: %s\n\n", workload)

	base, err := hprefetch.Simulate(workload, hprefetch.FDIP, opt)
	if err != nil {
		log.Fatal(err)
	}
	hier, err := hprefetch.Simulate(workload, hprefetch.Hierarchical, opt)
	if err != nil {
		log.Fatal(err)
	}
	perfect, err := hprefetch.Simulate(workload, hprefetch.PerfectL1I, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("FDIP baseline:            IPC %.3f\n", base.IPC)
	fmt.Printf("Hierarchical Prefetching: IPC %.3f (%+.1f%%)\n", hier.IPC, hier.SpeedupOverFDIP*100)
	fmt.Printf("Perfect L1-I bound:       IPC %.3f (%+.1f%%)\n\n", perfect.IPC, perfect.SpeedupOverFDIP*100)
	fmt.Printf("Hierarchical prefetch behaviour: accuracy %.1f%%, L1 coverage %.1f%%, "+
		"L2 coverage %.1f%%, late %.1f%%, avg distance %.1f blocks\n",
		hier.PrefetchAccuracy*100, hier.CoverageL1*100,
		hier.CoverageL2*100, hier.LateFraction*100, hier.AvgPrefetchDistance)
}
