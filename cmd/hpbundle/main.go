// Command hpbundle runs the static, link-time half of Hierarchical
// Prefetching on its own: it generates a workload binary, builds the call
// graph, runs the Bundle identification pass (Algorithm 1), and reports
// what would be written into the .bundles segment.
//
// Usage:
//
//	hpbundle                    # analyse every workload
//	hpbundle -workload tidb-tpcc
package main

import (
	"flag"
	"fmt"
	"os"

	"hprefetch"
	"hprefetch/internal/callgraph"
	"hprefetch/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "workload to analyse (default: all)")
	dot := flag.String("dot", "", "write a Graphviz DOT neighbourhood of the request loop to this file (requires -workload)")
	depth := flag.Int("depth", 3, "DOT: levels below the request loop")
	maxNodes := flag.Int("maxnodes", 150, "DOT: node budget")
	flag.Parse()

	if *dot != "" {
		if *workload == "" {
			fmt.Fprintln(os.Stderr, "hpbundle: -dot requires -workload")
			os.Exit(2)
		}
		b, err := workloads.Build(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpbundle:", err)
			os.Exit(1)
		}
		f, err := os.Create(*dot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpbundle:", err)
			os.Exit(1)
		}
		defer f.Close()
		err = callgraph.WriteDOT(f, b.Linked.Graph, b.Loaded.Prog, b.Linked.Analysis,
			b.Loaded.Prog.Entry, *depth, *maxNodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpbundle:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (Bundle entries shaded, Figure 5 style)\n", *dot)
	}

	names := hprefetch.Workloads()
	if *workload != "" {
		names = []string{*workload}
	}
	fmt.Printf("%-16s %12s %10s %9s %10s %10s\n",
		"workload", "functions", "entries", "entry%", "tagged", "text(MB)")
	for _, n := range names {
		r, err := hprefetch.AnalyzeWorkload(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpbundle:", err)
			os.Exit(1)
		}
		fmt.Printf("%-16s %12d %10d %8.2f%% %10d %10.1f\n",
			r.Workload, r.TotalFunctions, r.Entries, r.EntryFraction*100,
			r.TaggedInstructions, float64(r.TextBytes)/1e6)
	}
}
