// Corpus administration and corruption injection subcommands.
//
//	hptrace corpus ingest -dir corpus a.hpt b.hpt
//	hptrace corpus ls -dir corpus
//	hptrace corpus verify -dir corpus [key ...]
//	hptrace corpus scrub -dir corpus [-parallel 8]
//	hptrace corpus gc -dir corpus
//	hptrace corrupt -spec trace-bitrot::7 [-o out.hpt] trace.hpt
//
// corrupt applies one of the deterministic storage fault classes to a
// clean trace file (in place unless -o names a copy), so CI can
// manufacture precisely the damage the scrubber must catch.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hprefetch/internal/corpus"
	"hprefetch/internal/fault"
)

func runCorpus(args []string) {
	if len(args) < 1 {
		fatal(fmt.Errorf("usage: hptrace corpus <ingest|ls|verify|scrub|gc> -dir <corpus-dir> [args]"))
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "ingest":
		corpusIngest(rest)
	case "ls":
		corpusLs(rest)
	case "verify":
		corpusVerify(rest)
	case "scrub":
		corpusScrub(rest)
	case "gc":
		corpusGC(rest)
	default:
		fatal(fmt.Errorf("unknown corpus verb %q (want ingest, ls, verify, scrub or gc)", verb))
	}
}

func corpusIngest(args []string) {
	fs := flag.NewFlagSet("hptrace corpus ingest", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus root directory")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *dir == "" || fs.NArg() == 0 {
		fatal(fmt.Errorf("usage: hptrace corpus ingest -dir <corpus-dir> <trace-file> ..."))
	}
	store, err := corpus.Open(*dir)
	if err != nil {
		fatal(err)
	}
	for _, path := range fs.Args() {
		e, added, err := store.Ingest(path)
		if err != nil {
			fatal(fmt.Errorf("ingest %s: %w", path, err))
		}
		verb := "ingested"
		if !added {
			verb = "already present"
		}
		fmt.Printf("%s %s: %s (%s, %d instructions, %d bytes)\n", verb, path, e.Key, e.Workload, e.Instructions, e.Bytes)
	}
}

func corpusLs(args []string) {
	fs := flag.NewFlagSet("hptrace corpus ls", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus root directory")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *dir == "" {
		fatal(fmt.Errorf("usage: hptrace corpus ls -dir <corpus-dir>"))
	}
	store, err := corpus.Open(*dir)
	if err != nil {
		fatal(err)
	}
	entries, err := store.List()
	if err != nil {
		fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("%s  %-16s seed=%d  target=%d  events=%d  instr=%d  %d bytes\n",
			e.Key, e.Workload, e.Seed, e.TargetInstructions, e.Events, e.Instructions, e.Bytes)
	}
	fmt.Printf("%d objects\n", len(entries))
}

func corpusVerify(args []string) {
	fs := flag.NewFlagSet("hptrace corpus verify", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus root directory")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *dir == "" {
		fatal(fmt.Errorf("usage: hptrace corpus verify -dir <corpus-dir> [key ...]"))
	}
	store, err := corpus.Open(*dir)
	if err != nil {
		fatal(err)
	}
	var entries []corpus.Entry
	if fs.NArg() == 0 {
		entries, err = store.List()
		if err != nil {
			fatal(err)
		}
	} else {
		for _, key := range fs.Args() {
			e, err := store.Manifest(key)
			if err != nil {
				fatal(err)
			}
			entries = append(entries, e)
		}
	}
	bad := 0
	for _, e := range entries {
		if err := store.Verify(e); err != nil {
			fmt.Printf("FAIL %s: %v\n", e.Key, err)
			bad++
		} else {
			fmt.Printf("ok   %s (%s)\n", e.Key, e.Workload)
		}
	}
	if bad > 0 {
		fatal(fmt.Errorf("%d of %d objects failed verification", bad, len(entries)))
	}
	fmt.Printf("verified %d objects\n", len(entries))
}

func corpusScrub(args []string) {
	fs := flag.NewFlagSet("hptrace corpus scrub", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus root directory")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "verification workers")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *dir == "" {
		fatal(fmt.Errorf("usage: hptrace corpus scrub -dir <corpus-dir> [-parallel N]"))
	}
	store, err := corpus.Open(*dir)
	if err != nil {
		fatal(err)
	}
	rep, err := store.Scrub(*parallel)
	if err != nil {
		fatal(err)
	}
	for _, f := range rep.Failures {
		fmt.Printf("quarantined %s: %s\n", f.Key, f.Reason)
	}
	fmt.Printf("scrubbed %d objects: %d ok, %d quarantined\n", rep.Scanned, rep.OK, rep.Quarantined)
}

func corpusGC(args []string) {
	fs := flag.NewFlagSet("hptrace corpus gc", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus root directory")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *dir == "" {
		fatal(fmt.Errorf("usage: hptrace corpus gc -dir <corpus-dir>"))
	}
	store, err := corpus.Open(*dir)
	if err != nil {
		fatal(err)
	}
	rep, err := store.GC()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("gc: %d temp files, %d orphan objects, %d orphan manifests removed\n",
		rep.TempFiles, rep.OrphanObjects, rep.OrphanManifests)
}

// runCorrupt applies a deterministic storage fault to a clean trace.
func runCorrupt(args []string) {
	fs := flag.NewFlagSet("hptrace corrupt", flag.ExitOnError)
	spec := fs.String("spec", "", "storage fault spec class[:rate[:seed]] (classes: trace-bitrot, trace-torn-tail, trace-trunc-frame, trace-swap-frames)")
	out := fs.String("o", "", "output path (default: overwrite the input)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *spec == "" || fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: hptrace corrupt -spec <class[:rate[:seed]]> [-o out.hpt] <trace-file>"))
	}
	cfg, err := fault.ParseSpec(*spec)
	if err != nil {
		fatal(err)
	}
	in, err := fault.New(cfg)
	if err != nil {
		fatal(err)
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	damaged, err := in.PerturbTrace(data)
	if err != nil {
		fatal(err)
	}
	target := *out
	if target == "" {
		target = path
	}
	if err := os.WriteFile(target, damaged, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("corrupted %s -> %s (%s, %d -> %d bytes)\n", path, target, cfg, len(data), len(damaged))
}
