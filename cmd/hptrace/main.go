// Command hptrace inspects a workload's dynamic instruction stream: stage
// footprints (the Figure 1 view), request lengths, and branch mix —
// useful when tuning workload presets or validating the execution engine.
//
// Usage:
//
//	hptrace -workload tidb-tpcc -instructions 4000000
package main

import (
	"flag"
	"fmt"
	"os"

	"hprefetch"
)

func main() {
	workload := flag.String("workload", "tidb-tpcc", "workload to trace")
	instr := flag.Uint64("instructions", 4_000_000, "instructions to trace")
	flag.Parse()

	t, err := hprefetch.RunExperiment("fig1", &hprefetch.Options{
		MeasureInstructions: *instr,
		Workloads:           []string{*workload},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hptrace:", err)
		os.Exit(1)
	}
	t.Fprint(os.Stdout)

	st, err := hprefetch.Simulate(*workload, hprefetch.FDIP, &hprefetch.Options{
		WarmInstructions:    *instr / 4,
		MeasureInstructions: *instr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hptrace:", err)
		os.Exit(1)
	}
	fmt.Printf("baseline (FDIP): IPC %.3f, %.2f branch MPKI, %.2f clean L1-I MPKI over %d instructions\n",
		st.IPC, st.BranchMPKI, st.L1IMPKI, st.Instructions)
}
