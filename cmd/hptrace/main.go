// Command hptrace works with workload instruction streams: the default
// mode inspects a stream (stage footprints — the Figure 1 view — plus a
// baseline simulation), and subcommands record, summarise and verify
// on-disk trace files.
//
// Usage:
//
//	hptrace -workload tidb-tpcc -instructions 4000000
//	hptrace record -workload gin -instructions 6000000 -o gin.hpt
//	hptrace info gin.hpt
//	hptrace verify gin.hpt
//	hptrace corpus ingest -dir corpus gin.hpt
//	hptrace corrupt -spec trace-bitrot::7 gin.hpt
//
// verify replays the trace against a fresh execution engine and checks
// every event and attribution sample for equality; it exits nonzero on
// any divergence or a truncated file, so CI can gate on it. corpus
// administers the content-addressed trace store (see corpus.go), and
// corrupt injects deterministic storage faults for resilience testing.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"hprefetch"
	"hprefetch/internal/harness"
	"hprefetch/internal/tracefile"
	"hprefetch/internal/workloads"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "record":
			runRecord(os.Args[2:])
			return
		case "info":
			runInfo(os.Args[2:])
			return
		case "verify":
			runVerify(os.Args[2:])
			return
		case "corpus":
			runCorpus(os.Args[2:])
			return
		case "corrupt":
			runCorrupt(os.Args[2:])
			return
		}
	}
	runReport(os.Args[1:])
}

// runReport is the original stream-inspection mode.
func runReport(args []string) {
	fs := flag.NewFlagSet("hptrace", flag.ExitOnError)
	workload := fs.String("workload", "tidb-tpcc", "workload to trace")
	instr := fs.Uint64("instructions", 4_000_000, "instructions to trace")
	replay := fs.String("replay", "", "compute the stage view from this recorded trace instead of a live engine")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	t, err := hprefetch.RunExperiment("fig1", &hprefetch.Options{
		MeasureInstructions: *instr,
		Workloads:           []string{*workload},
		ReplayTrace:         *replay,
	})
	if err != nil {
		fatal(err)
	}
	t.Fprint(os.Stdout)

	st, err := hprefetch.Simulate(*workload, hprefetch.FDIP, &hprefetch.Options{
		WarmInstructions:    *instr / 4,
		MeasureInstructions: *instr,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline (FDIP): IPC %.3f, %.2f branch MPKI, %.2f clean L1-I MPKI over %d instructions\n",
		st.IPC, st.BranchMPKI, st.L1IMPKI, st.Instructions)
}

// runRecord captures a trace covering exactly -instructions (plus the
// lookahead tail), with no warmup prefix — callers choose their own
// warm/measure split at replay time.
func runRecord(args []string) {
	fs := flag.NewFlagSet("hptrace record", flag.ExitOnError)
	workload := fs.String("workload", "tidb-tpcc", "workload to record")
	instr := fs.Uint64("instructions", 12_000_000, "instructions to capture (cover warm+measure of later replays)")
	out := fs.String("o", "", "output path (default <workload>"+harness.TraceExt+")")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	path := *out
	if path == "" {
		path = *workload + harness.TraceExt
	}
	rc := harness.DefaultRunConfig()
	rc.WarmInstr = 0
	rc.MeasureInstr = *instr
	sum, err := harness.RecordTrace(*workload, path, rc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %s: %d events (%d instructions, %d requests) in %d frames, %d bytes\n",
		path, sum.Events, sum.Instructions, sum.Requests, sum.Frames, sum.Bytes)
}

// runInfo summarises a trace file from its header and index.
func runInfo(args []string) {
	fs := flag.NewFlagSet("hptrace info", flag.ExitOnError)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: hptrace info <trace-file>"))
	}
	sum, err := hprefetch.TraceInfo(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload:      %s (seed %d)\n", sum.Workload, sum.Seed)
	fmt.Printf("events:        %d in %d frames\n", sum.Events, sum.Frames)
	fmt.Printf("instructions:  %d\n", sum.Instructions)
	fmt.Printf("requests:      %d\n", sum.Requests)
	if sum.Instructions > 0 {
		fmt.Printf("file size:     %d bytes (%.2f bits/instruction)\n",
			sum.FileBytes, float64(sum.FileBytes*8)/float64(sum.Instructions))
	} else {
		fmt.Printf("file size:     %d bytes\n", sum.FileBytes)
	}
	switch {
	case sum.Truncated:
		fmt.Println("state:         TRUNCATED (replayable up to the last complete frame)")
	case sum.Complete:
		fmt.Println("state:         complete, indexed")
	default:
		fmt.Println("state:         unindexed")
	}
}

// runVerify replays a trace against a fresh engine built from the
// trace's own header and compares every event and attribution sample.
func runVerify(args []string) {
	fs := flag.NewFlagSet("hptrace verify", flag.ExitOnError)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: hptrace verify <trace-file>"))
	}
	path := fs.Arg(0)
	r, err := tracefile.Open(path)
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	meta := r.Meta()
	built, err := workloads.Build(meta.Workload)
	if err != nil {
		fatal(fmt.Errorf("trace header names unknown workload %q: %w", meta.Workload, err))
	}
	if built.Workload.TraceSeed != meta.Seed {
		fatal(fmt.Errorf("trace seed %d does not match workload %s's preset seed %d",
			meta.Seed, meta.Workload, built.Workload.TraceSeed))
	}
	eng := built.NewEngine()
	var events uint64
	for {
		got := r.Next()
		if got.NumInstr == 0 {
			break
		}
		want := eng.Next()
		if got != want {
			fatal(fmt.Errorf("event %d diverges: trace %+v, live %+v", events, got, want))
		}
		if r.Requests() != eng.Requests() || r.CurrentType() != eng.CurrentType() ||
			r.Stage() != eng.Stage() || r.Depth() != eng.Depth() {
			fatal(fmt.Errorf("attribution after event %d diverges: trace (req %d type %d stage %d depth %d), live (req %d type %d stage %d depth %d)",
				events, r.Requests(), r.CurrentType(), r.Stage(), r.Depth(),
				eng.Requests(), eng.CurrentType(), eng.Stage(), eng.Depth()))
		}
		if r.CurrentRequest() != eng.CurrentRequest() || r.RequestDone() != eng.RequestDone() {
			fatal(fmt.Errorf("request mark after event %d diverges: trace (req id %d done %v), live (req id %d done %v)",
				events, r.CurrentRequest(), r.RequestDone(), eng.CurrentRequest(), eng.RequestDone()))
		}
		events++
	}
	if err := r.Err(); errors.Is(err, tracefile.ErrTruncated) {
		fatal(fmt.Errorf("trace is truncated after %d events (%d instructions): %v", events, r.Instructions(), err))
	} else if !errors.Is(err, tracefile.ErrExhausted) {
		fatal(fmt.Errorf("after %d events: %v", events, err))
	}
	fmt.Printf("verified %s: %d events, %d instructions match the live engine\n", path, events, r.Instructions())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hptrace:", err)
	os.Exit(1)
}
