// Command hpbench measures the repository's headline performance
// numbers and gates them against a committed baseline.
//
// It runs the same measurements as the root bench suite's
// BenchmarkReplayVsLive and BenchmarkSimulatorThroughput, plus the
// full-sweep sampled-vs-exact comparison, in-process (no `go test
// -bench` parsing), and emits them as a small JSON document:
//
//	hpbench -out BENCH_8.json              # write a new baseline
//	hpbench -check BENCH_8.json            # re-measure, gate ratios at 10%
//	hpbench -check BENCH_8.json -raw raw.json  # also dump per-iteration times
//
// Time-based metrics (ns/instr, instr/s, MB) are machine-dependent and
// informational: the committed file records the reference machine and
// -check reports them without judging. The *ratio* metrics —
// replay_speedup (batch replay vs live interpretation, same window) and
// sample_speedup (interval-sampled replay vs exact live on the default
// full-sweep window) — divide two wall times from the same process on
// the same machine, so they transfer across hosts; -check fails when a
// measured ratio drops more than -tolerance below the committed value,
// or below its hard floor (2x for replay, 5x for sampling). See
// EXPERIMENTS.md ("The benchmark baseline") for the schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"hprefetch/internal/harness"
)

// benchSchema identifies the BENCH_*.json format.
const benchSchema = "hpbench/v1"

// floors are the acceptance minimums for the gated ratios, independent
// of any committed baseline.
var floors = map[string]float64{
	"replay_speedup": 2.0,
	"sample_speedup": 5.0,
}

// BenchFile is the committed baseline document.
type BenchFile struct {
	Schema string `json:"schema"`
	// GoVersion and NumCPU record the reference environment; they are
	// not compared.
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Metrics holds every measured value by name.
	Metrics map[string]float64 `json:"metrics"`
	// Gated lists the Metrics keys -check compares under the tolerance
	// (higher is better for all of them).
	Gated []string `json:"gated"`
}

// rawRecord is one measurement's full detail for the -raw artifact.
type rawRecord struct {
	Name    string    `json:"name"`
	Instr   uint64    `json:"instructions"`
	TimesNS []int64   `json:"times_ns"`
	BestNS  int64     `json:"best_ns"`
	Derived []string  `json:"derived,omitempty"`
	When    time.Time `json:"when"`
}

func main() {
	var (
		out       = flag.String("out", "", "write a new baseline to this path")
		check     = flag.String("check", "", "measure and gate against the baseline at this path")
		raw       = flag.String("raw", "", "also write per-iteration raw measurements to this path")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional drop of a gated ratio below the baseline")
		iters     = flag.Int("iters", 5, "timed iterations per measurement (best-of)")
	)
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "hpbench: exactly one of -out or -check is required")
		os.Exit(2)
	}

	metrics, raws, err := measure(*iters)
	if err != nil {
		fatal(err)
	}
	if *raw != "" {
		data, _ := json.MarshalIndent(raws, "", "  ")
		if err := os.WriteFile(*raw, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	doc := BenchFile{
		Schema:    benchSchema,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Metrics:   metrics,
		Gated:     []string{"replay_speedup", "sample_speedup"},
	}
	for _, name := range doc.Gated {
		fmt.Printf("%-28s %8.2f (floor %.1fx)\n", name, metrics[name], floors[name])
	}
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		if _, gated := floors[name]; !gated {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-28s %8.2f (informational)\n", name, metrics[name])
	}

	if *out != "" {
		data, _ := json.MarshalIndent(doc, "", "  ")
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
		return
	}

	base, err := readBaseline(*check)
	if err != nil {
		fatal(err)
	}
	failed := false
	for _, name := range base.Gated {
		want, ok := base.Metrics[name]
		if !ok {
			fatal(fmt.Errorf("baseline %s gates %q but has no such metric", *check, name))
		}
		got := metrics[name]
		limit := want * (1 - *tolerance)
		// The floor is also noise-tolerant: measurement jitter on a busy
		// host must not fail a build whose true ratio clears the floor.
		floorLimit := floors[name] * (1 - *tolerance)
		switch {
		case got < floorLimit:
			fmt.Printf("FAIL %s: measured %.2fx below hard floor %.1fx (limit %.2fx)\n",
				name, got, floors[name], floorLimit)
			failed = true
		case got < limit:
			fmt.Printf("FAIL %s: measured %.2fx, baseline %.2fx, limit %.2fx (tolerance %.0f%%)\n",
				name, got, want, limit, *tolerance*100)
			failed = true
		default:
			fmt.Printf("ok   %s: measured %.2fx vs baseline %.2fx (limit %.2fx)\n", name, got, want, limit)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func readBaseline(path string) (BenchFile, error) {
	var f BenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return f, fmt.Errorf("%s: schema %q, this build reads %q", path, f.Schema, benchSchema)
	}
	return f, nil
}

// timeRun measures fn best-of-n after one untimed warm-up (which also
// populates the process-level build and trace caches).
func timeRun(name string, instr uint64, n int, fn func() error) (rawRecord, error) {
	rec := rawRecord{Name: name, Instr: instr, When: time.Now()}
	if err := fn(); err != nil {
		return rec, fmt.Errorf("%s: %w", name, err)
	}
	best := int64(1 << 62)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return rec, fmt.Errorf("%s: %w", name, err)
		}
		d := time.Since(t0).Nanoseconds()
		rec.TimesNS = append(rec.TimesNS, d)
		if d < best {
			best = d
		}
	}
	rec.BestNS = best
	return rec, nil
}

// measure produces every metric of the baseline document.
func measure(iters int) (map[string]float64, []rawRecord, error) {
	metrics := map[string]float64{}
	var raws []rawRecord

	dir, err := os.MkdirTemp("", "hpbench")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)

	// Replay vs live: the BenchmarkReplayVsLive pair — the same
	// (workload, scheme, window) from the live engine and from a
	// recorded trace consumed through the batch fast path.
	rc := harness.DefaultRunConfig()
	rc.Workloads = []string{"gin"}
	rc.WarmInstr = 500_000
	rc.MeasureInstr = 3_500_000
	pairInstr := rc.WarmInstr + rc.MeasureInstr
	path := filepath.Join(dir, "gin"+harness.TraceExt)
	if _, err := harness.RecordTrace("gin", path, rc); err != nil {
		return nil, nil, err
	}
	if st, err := os.Stat(path); err == nil {
		metrics["trace_file_mb"] = float64(st.Size()) / 1e6
	}

	live, err := timeRun("live", pairInstr, iters, func() error {
		_, err := harness.RunUncached("gin", harness.SchemeFDIP, rc)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	raws = append(raws, live)

	rcR := rc
	rcR.TracePath = path
	replay, err := timeRun("replay", pairInstr, iters, func() error {
		_, err := harness.RunUncached("gin", harness.SchemeFDIP, rcR)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	raws = append(raws, replay)
	metrics["live_ns_per_instr"] = float64(live.BestNS) / float64(pairInstr)
	metrics["replay_ns_per_instr"] = float64(replay.BestNS) / float64(pairInstr)
	metrics["replay_speedup"] = float64(live.BestNS) / float64(replay.BestNS)

	// Simulator throughput: the BenchmarkSimulatorThroughput window —
	// the full stack (engine, front-end, hierarchy, Hierarchical
	// Prefetcher) in simulated instructions per wall second.
	rcT := harness.DefaultRunConfig()
	rcT.Workloads = []string{"gin"}
	rcT.WarmInstr = 500_000
	rcT.MeasureInstr = 2_000_000
	thrInstr := rcT.WarmInstr + rcT.MeasureInstr
	thr, err := timeRun("throughput", thrInstr, iters, func() error {
		_, err := harness.RunUncached("gin", harness.SchemeHier, rcT)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	raws = append(raws, thr)
	metrics["sim_minstr_per_sec"] = float64(thrInstr) / (float64(thr.BestNS) / 1e9) / 1e6

	// Governed-GHB throughput on the same window: the feedback governor
	// samples stats once per interval, so adaptive throttling should cost
	// roughly nothing over a static run. Informational (not gated) — it
	// exists so a regression that makes the governor hot shows up in the
	// bench report before anyone chases it in a profile.
	rcG := rcT
	rcG.Governed = true
	gov, err := timeRun("governed-ghb", thrInstr, iters, func() error {
		_, err := harness.RunUncached("gin", harness.SchemeGHB, rcG)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	raws = append(raws, gov)
	metrics["governed_ghb_minstr_per_sec"] = float64(thrInstr) / (float64(gov.BestNS) / 1e9) / 1e6

	// Sampled vs exact on the full default sweep window (4M warm + 8M
	// measure): the exact protocol a user would otherwise run (live,
	// detailed throughout) against the durable pipeline this PR adds —
	// record once, then interval-sample the replay.
	rcF := harness.DefaultRunConfig()
	rcF.Workloads = []string{"gin"}
	sweepInstr := rcF.WarmInstr + rcF.MeasureInstr
	pathF := filepath.Join(dir, "gin-sweep"+harness.TraceExt)
	if _, err := harness.RecordTrace("gin", pathF, rcF); err != nil {
		return nil, nil, err
	}
	exact, err := timeRun("sweep-exact-live", sweepInstr, iters, func() error {
		_, err := harness.RunUncached("gin", harness.SchemeHier, rcF)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	raws = append(raws, exact)

	rcS := rcF
	rcS.TracePath = pathF
	rcS.Sample = harness.SampleSpec{WarmInstr: 50_000, MeasureInstr: 100_000, SkipInstr: 800_000, Seed: 1}
	sampled, err := timeRun("sweep-sampled-replay", sweepInstr, iters, func() error {
		_, err := harness.RunUncached("gin", harness.SchemeHier, rcS)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	raws = append(raws, sampled)
	metrics["sweep_exact_ns_per_instr"] = float64(exact.BestNS) / float64(sweepInstr)
	metrics["sweep_sampled_ns_per_instr"] = float64(sampled.BestNS) / float64(sweepInstr)
	metrics["sample_speedup"] = float64(exact.BestNS) / float64(sampled.BestNS)

	return metrics, raws, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpbench:", err)
	os.Exit(1)
}
