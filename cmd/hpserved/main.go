// Command hpserved serves simulations over HTTP: a bounded job queue, a
// worker pool executing harness runs concurrently, single-flight result
// caching, per-job deadlines, and self-observation endpoints.
//
// Usage:
//
//	hpserved                             # listen on :8080, one worker per core
//	hpserved -addr :9090 -workers 8 -queue 256
//	hpserved -journal /var/lib/hp/jobs.wal   # durable job journal + replay
//
// API:
//
//	POST /v1/runs              submit {"workload","scheme",...} → 202 {id}
//	GET  /v1/runs/{id}         poll (add ?wait=2s to block briefly)
//	POST /v1/runs/{id}/cancel  cancel a queued or running job
//	POST /v1/experiments/{id}  run a paper figure/table (fig9, table2, ...)
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus text (add ?format=json for JSON)
//
// A full queue answers 429 with a Retry-After derived from the observed
// p90 job latency; an open circuit breaker (worker pool only producing
// failures) answers 503. With -journal, every job transition is written
// ahead to an append-only log and jobs that were queued or running at
// shutdown/crash replay on the next start — determinism guarantees the
// replayed runs produce identical stats digests.
//
// Coordinator mode turns hpserved into the front of a fleet of backend
// hpserved instances instead of a simulator:
//
//	hpserved -coordinator -backends http://sim1:8080,http://sim2:8080
//	hpserved -coordinator -backends ... -journal /var/lib/hp/coord.wal \
//	         -hedge 30s -quorum 0.1 -probe-interval 2s
//
// The coordinator shards sweep jobs across the backends by consistent
// hash (repeat sweeps land on warm caches), fails over through each
// job's backend preference list with jittered backoff, optionally
// hedges stragglers, double-runs a digest-quorum sample of jobs on a
// second backend to audit cross-machine reproducibility, and — with
// -journal — recovers in-flight sweeps after a crash. API:
//
//	POST /v1/sweeps        submit {"workloads":[...],"schemes":[...]} → 202
//	GET  /v1/sweeps/{id}   poll (add ?wait=5s to block; streams partials)
//	GET  /healthz          coordinator + per-backend breaker state
//	GET  /metrics          fleet counters (JSON)
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hprefetch/internal/fault"
	"hprefetch/internal/fleet"
	"hprefetch/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "worker pool size (0 = one per CPU core)")
		queue    = flag.Int("queue", 64, "job queue depth (full queue answers 429)")
		cache    = flag.Int("cache", 0, "result cache entries (0 = default bound)")
		timeout  = flag.Duration("timeout", 15*time.Minute, "default per-job deadline")
		maxT     = flag.Duration("max-timeout", time.Hour, "ceiling for client-requested deadlines")
		retained = flag.Int("retained", 1024, "finished jobs kept pollable")

		journal    = flag.String("journal", "", "write-ahead job journal path (empty = no durability)")
		maxRetries = flag.Int("max-retries", 0, "default transient-failure retries per job (0 = built-in default)")
		drainT     = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight HTTP requests")
		chaos      = flag.String("chaos", "", "service chaos spec, dev only: class[:rate[:seed]] (job-transient, worker-kill)")
		corpusDir  = flag.String("corpus", "", "resolve run traces through the content-addressed trace corpus at this directory (self-healing replay)")

		coordinator = flag.Bool("coordinator", false, "coordinate a fleet of backend hpserved instances instead of simulating")
		backends    = flag.String("backends", "", "coordinator mode: comma-separated backend base URLs")
		hedge       = flag.Duration("hedge", 0, "coordinator mode: hedge straggler jobs on a second backend after this delay (0 = off)")
		quorum      = flag.Float64("quorum", 0, "coordinator mode: fraction of jobs double-run on a second backend for digest cross-checks (0 = off)")
		quorumSeed  = flag.Uint64("quorum-seed", 0, "coordinator mode: seed for the deterministic quorum sample")
		probeEvery  = flag.Duration("probe-interval", 2*time.Second, "coordinator mode: backend health-probe period (negative = off)")
	)
	flag.Parse()

	if *coordinator {
		runCoordinator(*addr, *backends, *journal, *hedge, *quorum, *quorumSeed, *probeEvery, *drainT)
		return
	}

	cfg := service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxT,
		MaxJobsRetained: *retained,
		JournalPath:     *journal,
		Retry:           service.RetryPolicy{MaxRetries: *maxRetries},
		CorpusDir:       *corpusDir,
	}
	if *chaos != "" {
		fc, err := fault.ParseSpec(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpserved:", err)
			os.Exit(2)
		}
		cfg.Chaos = fc
	}

	srv, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpserved:", err)
		os.Exit(1)
	}
	if n := srv.Metrics().Replayed.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "hpserved: replayed %d pending job(s) from %s\n", n, *journal)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting connections, then cancel live
	// jobs and drain the workers. With a journal, jobs cut short here
	// stay pending and replay on the next start.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "hpserved: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), *drainT)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "hpserved: shutdown:", err)
		}
		srv.Close()
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "hpserved: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "hpserved:", err)
		os.Exit(1)
	}
	<-done
}

// runCoordinator fronts a fleet of backend hpserved instances.
func runCoordinator(addr, backendList, journal string, hedge time.Duration, quorum float64, quorumSeed uint64, probeEvery, drainT time.Duration) {
	var urls []string
	for _, b := range strings.Split(backendList, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "hpserved: -coordinator requires -backends with at least one URL")
		os.Exit(2)
	}

	coord, err := fleet.New(fleet.Config{
		Backends:       urls,
		JournalPath:    journal,
		HedgeAfter:     hedge,
		QuorumFraction: quorum,
		QuorumSeed:     quorumSeed,
		ProbeInterval:  probeEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpserved:", err)
		os.Exit(1)
	}
	if n := coord.Metrics().SweepsReplayed.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "hpserved: coordinator replayed %d pending sweep(s) from %s\n", n, journal)
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "hpserved: coordinator shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), drainT)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "hpserved: shutdown:", err)
		}
		coord.Close()
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "hpserved: coordinating %d backend(s) on %s\n", len(urls), addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "hpserved:", err)
		os.Exit(1)
	}
	<-done
}
